// Adaptive caching demo: replay a phase-changing workload (alternating
// LFU-friendly and LRU-friendly phases, the paper's Figure 19 scenario) and
// watch the distributed adaptive caching scheme re-weight its experts at
// every phase switch.
//
//   ./examples/adaptive_webmail [--phases=4] [--phase_len=60000] [--clients=8]
#include <cstdio>

#include "common/flags.h"
#include "core/ditto_client.h"
#include "dm/pool.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/synthetic_traces.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const int phases = static_cast<int>(flags.GetInt("phases", 4));
  const uint64_t phase_len = flags.GetInt("phase_len", 60000);
  const int num_clients = static_cast<int>(flags.GetInt("clients", 8));
  const uint64_t footprint = 10000;

  const workload::Trace trace =
      workload::MakeChangingWorkload(phases, phase_len, footprint, 42);

  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 64 << 20;
  pool_config.num_buckets = 2048;
  pool_config.capacity_objects = footprint / 4;
  dm::MemoryPool pool(pool_config);

  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  core::DittoServer server(&pool, config);

  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;
  for (int i = 0; i < num_clients; ++i) {
    ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
    clients.push_back(std::make_unique<sim::DittoCacheClient>(&pool, ctxs.back().get(), config));
    raw.push_back(clients.back().get());
  }

  std::printf("replaying %d phases of %llu requests (phase 0, 2, ... are LFU-friendly;\n"
              "phase 1, 3, ... are LRU-friendly)\n\n",
              phases, static_cast<unsigned long long>(phase_len));
  std::printf("%-8s %-14s %10s %12s %12s %10s\n", "phase", "pattern", "hit_rate", "w_lru",
              "w_lfu", "regrets");

  for (int p = 0; p < phases; ++p) {
    const workload::Trace phase(trace.begin() + p * phase_len,
                                trace.begin() + (p + 1) * phase_len);
    sim::RunOptions options;
    options.miss_penalty_us = 500.0;
    const sim::RunResult r = sim::RunTrace(raw, phase, &pool.node(), options);
    uint64_t regrets = 0;
    for (const auto& client : clients) {
      regrets += client->ditto().stats().regrets;
    }
    const auto& w = clients[0]->ditto().expert_weights();
    std::printf("%-8d %-14s %10.4f %12.3f %12.3f %10llu\n", p,
                p % 2 == 0 ? "LFU-friendly" : "LRU-friendly", r.hit_rate, w[0], w[1],
                static_cast<unsigned long long>(regrets));
  }
  std::printf("\nregret minimization penalizes whichever expert keeps evicting objects\n"
              "that miss shortly afterwards, so the weights drift toward the\n"
              "phase-appropriate expert. Adaptation speed tracks the miss flow: in\n"
              "high-hit phases regrets are rare and the weights move slowly (which\n"
              "costs nothing, because decisions only matter when evictions happen).\n");
  return 0;
}
