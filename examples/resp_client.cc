// resp_client: a minimal blocking RESP2 client for the ditto_server front
// end — the smallest complete example of speaking the wire protocol without
// the epoll machinery of net::RunLoadgen.
//
//   ./ditto_server --port=6399 &
//   ./resp_client --port=6399
//
// Connects, then runs a scripted session (PING, SET, GET hit, DEL, GET miss,
// EXPIRE, MGET) printing each command and its decoded reply. Exits nonzero
// if any round trip fails, so it doubles as a hand-run conformance probe.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/flags.h"
#include "net/resp.h"
#include "net/ring_buffer.h"

namespace {

using namespace ditto;

class BlockingClient {
 public:
  bool Connect(const std::string& host, uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      std::perror("socket");
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      std::perror("connect");
      return false;
    }
    return true;
  }

  ~BlockingClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  // Sends one command and blocks for its reply; prints both. Returns false
  // on transport or protocol failure (an -ERR reply is a valid round trip).
  bool RoundTrip(std::initializer_list<std::string_view> args) {
    net::RingBuffer request;
    net::AppendCommand(&request, args);
    std::string rendered;
    for (const auto arg : args) {
      rendered.append(arg).push_back(' ');
    }
    while (!request.empty()) {
      const ssize_t n = ::write(fd_, request.data(), request.size());
      if (n <= 0) {
        std::perror("write");
        return false;
      }
      request.Consume(static_cast<size_t>(n));
    }
    while (true) {
      net::RespReply reply;
      std::vector<net::RespReply> elems;
      std::string error;
      const net::ParseStatus status = net::ParseReply(&in_, &reply, &elems, &error);
      if (status == net::ParseStatus::kOk) {
        std::printf("%-40s -> %s\n", rendered.c_str(), Render(reply, elems).c_str());
        return true;
      }
      if (status == net::ParseStatus::kError) {
        std::fprintf(stderr, "protocol error: %s\n", error.c_str());
        return false;
      }
      char* dst = in_.Reserve(4096);
      const ssize_t n = ::read(fd_, dst, 4096);
      if (n <= 0) {
        std::fprintf(stderr, "server closed the connection\n");
        return false;
      }
      in_.Commit(static_cast<size_t>(n));
    }
  }

 private:
  static std::string Render(const net::RespReply& reply,
                            const std::vector<net::RespReply>& elems) {
    switch (reply.type) {
      case net::RespReply::Type::kSimple:
        return "+" + std::string(reply.text);
      case net::RespReply::Type::kError:
        return "-" + std::string(reply.text);
      case net::RespReply::Type::kInteger:
        return ":" + std::to_string(reply.integer);
      case net::RespReply::Type::kBulk: {
        std::string text(reply.text.size() <= 32 ? reply.text : reply.text.substr(0, 29));
        if (reply.text.size() > 32) {
          text += "...";
        }
        return "\"" + text + "\" (" + std::to_string(reply.text.size()) + " bytes)";
      }
      case net::RespReply::Type::kNil:
        return "(nil)";
      case net::RespReply::Type::kArray: {
        std::string out = "[";
        for (size_t i = 0; i < elems.size(); ++i) {
          out += Render(elems[i], {});
          if (i + 1 < elems.size()) {
            out += ", ";
          }
        }
        return out + "]";
      }
    }
    return "?";
  }

  int fd_ = -1;
  net::RingBuffer in_;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string host = flags.GetString("host", "127.0.0.1");
  const auto port = static_cast<uint16_t>(flags.GetInt("port", 6399));

  BlockingClient client;
  if (!client.Connect(host, port)) {
    std::fprintf(stderr, "resp_client: cannot reach %s:%u — is ditto_server running?\n",
                 host.c_str(), port);
    return 1;
  }

  const bool ok = client.RoundTrip({"PING"}) &&
                  client.RoundTrip({"SET", "greeting", "hello from resp_client"}) &&
                  client.RoundTrip({"GET", "greeting"}) &&
                  client.RoundTrip({"SET", "short-lived", "v", "EX", "8"}) &&
                  client.RoundTrip({"EXPIRE", "greeting", "16"}) &&
                  client.RoundTrip({"MGET", "greeting", "short-lived", "absent"}) &&
                  client.RoundTrip({"DEL", "greeting", "short-lived"}) &&
                  client.RoundTrip({"GET", "greeting"}) &&
                  client.RoundTrip({"QUIT"});
  return ok ? 0 : 1;
}
