// Trace replay tool: run Ditto (or a single fixed algorithm) over a trace
// file and report hit rate and penalized throughput. Useful for evaluating
// the adaptive cache on real production traces (Twitter cache-trace format
// and simple "OP,key" CSVs are auto-detected; see workloads/trace_file.h).
//
//   ./examples/replay_trace --trace=/path/to/trace.csv
//       [--cache_frac=0.1] [--clients=16] [--experts=lru,lfu]
//       [--penalty_us=500] [--warmup=0.3]
//
// Without --trace, a demonstration webmail-like synthetic trace is used.
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "core/ditto_client.h"
#include "dm/pool.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/synthetic_traces.h"
#include "workloads/trace_file.h"

namespace {

std::vector<std::string> SplitExperts(const std::string& list) {
  std::vector<std::string> experts;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      experts.push_back(list.substr(start));
      break;
    }
    experts.push_back(list.substr(start, comma - start));
    start = comma + 1;
  }
  return experts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const std::string path = flags.GetString("trace", "");
  const double cache_frac = flags.GetDouble("cache_frac", 0.1);
  const int num_clients = static_cast<int>(flags.GetInt("clients", 16));
  const double penalty_us = flags.GetDouble("penalty_us", 500.0);
  const double warmup = flags.GetDouble("warmup", 0.3);
  const std::vector<std::string> experts = SplitExperts(flags.GetString("experts", "lru,lfu"));

  workload::Trace trace;
  if (path.empty()) {
    std::printf("no --trace given; generating a demo webmail-like trace\n");
    trace = workload::MakeNamedTrace("webmail", 150000, 20000, 1);
  } else {
    workload::TraceFileStats stats;
    trace = workload::LoadTraceFile(path, &stats);
    if (trace.empty()) {
      std::fprintf(stderr, "failed to load any requests from %s\n", path.c_str());
      return 1;
    }
    std::printf("loaded %llu requests (%llu distinct keys, %llu lines skipped)\n",
                static_cast<unsigned long long>(stats.parsed),
                static_cast<unsigned long long>(stats.distinct_keys),
                static_cast<unsigned long long>(stats.skipped));
  }

  const uint64_t footprint = workload::Footprint(trace);
  const auto capacity =
      std::max<uint64_t>(64, static_cast<uint64_t>(cache_frac * static_cast<double>(footprint)));

  dm::PoolConfig pool_config;
  pool_config.num_buckets = 1;
  while (pool_config.num_buckets * 8 < capacity * 4) {
    pool_config.num_buckets *= 2;
  }
  pool_config.memory_bytes =
      std::max<size_t>(size_t{64} << 20, capacity * 1024 + (size_t{8} << 20));
  pool_config.capacity_objects = capacity;
  dm::MemoryPool pool(pool_config);

  core::DittoConfig config;
  config.experts = experts;
  core::DittoServer server(&pool, config);

  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;
  for (int i = 0; i < num_clients; ++i) {
    ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
    clients.push_back(std::make_unique<sim::DittoCacheClient>(&pool, ctxs.back().get(), config));
    raw.push_back(clients.back().get());
  }

  std::printf("replaying: footprint=%llu capacity=%llu clients=%d experts=%s penalty=%.0fus\n",
              static_cast<unsigned long long>(footprint),
              static_cast<unsigned long long>(capacity), num_clients,
              flags.GetString("experts", "lru,lfu").c_str(), penalty_us);

  sim::RunOptions options;
  options.miss_penalty_us = penalty_us;
  options.warmup_fraction = warmup;
  const sim::RunResult r = sim::RunTrace(raw, trace, &pool.node(), options);

  std::printf("\nresults (measured after %.0f%% warmup):\n", warmup * 100.0);
  std::printf("  hit rate              : %.4f\n", r.hit_rate);
  std::printf("  penalized throughput  : %.4f Mops\n", r.throughput_mops);
  std::printf("  latency p50 / p99     : %.1f / %.1f us\n", r.p50_us, r.p99_us);
  if (config.adaptive()) {
    std::printf("  final expert weights  :");
    for (size_t e = 0; e < experts.size(); ++e) {
      std::printf(" %s=%.3f", experts[e].c_str(), clients[0]->ditto().expert_weights()[e]);
    }
    std::printf("\n");
  }
  return 0;
}
