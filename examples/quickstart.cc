// Quickstart: stand up a memory pool, attach a Ditto client, and run basic
// Get/Set/Delete/TTL/MultiGet traffic with the adaptive LRU+LFU
// configuration, plus the typed CacheOp batch protocol the experiment runner
// uses.
//
//   ./examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "core/ditto_client.h"
#include "dm/pool.h"
#include "sim/adapters.h"

int main() {
  using namespace ditto;

  // 1. The memory pool: one memory node with 64 MiB of DRAM, a 1-core
  //    controller, and room for 20k cached objects.
  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 64 << 20;
  pool_config.num_buckets = 16384;
  pool_config.capacity_objects = 20000;
  dm::MemoryPool pool(pool_config);

  // 2. The Ditto server side: installs the adaptive-weight controller on the
  //    memory node. Construct exactly once per pool.
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};  // adaptive between two experts
  core::DittoServer server(&pool, config);

  // 3. A client (one per application thread in the compute pool). All cache
  //    operations execute as one-sided remote memory accesses.
  rdma::ClientContext ctx(/*id=*/0);
  core::DittoClient client(&pool, &ctx, config);

  // 4. Basic operations.
  client.Set("user:42", "{\"name\":\"ditto\",\"hp\":48}");
  std::string value;
  if (client.Get("user:42", &value)) {
    std::printf("hit : user:42 -> %s\n", value.c_str());
  }
  if (!client.Get("user:43", &value)) {
    std::printf("miss: user:43 (as expected)\n");
  }
  client.Delete("user:42");
  std::printf("del : user:42 cached=%llu\n",
              static_cast<unsigned long long>(pool.cached_objects()));

  // 4b. TTLs and pipelined multi-gets. A Set with ttl_ticks arms lazy expiry
  //     (the next lookup past the deadline reclaims the object); MultiGet
  //     chains the metadata verbs of the whole run behind one NIC doorbell.
  client.Set("session:1", "alive", /*ttl_ticks=*/100000);
  client.Set("user:44", "{\"name\":\"dittwo\"}");
  client.Set("user:45", "{\"name\":\"dittree\"}");
  const std::string_view mget_keys[] = {"user:44", "user:45", "user:46"};
  std::string mget_values[3];
  std::string* mget_out[] = {&mget_values[0], &mget_values[1], &mget_values[2]};
  bool mget_hits[3];
  const size_t mget_found = client.MultiGet(3, mget_keys, mget_out, mget_hits);
  std::printf("mget: %zu/3 hits (user:46 missing as expected)\n", mget_found);

  // 4c. The same operations as one typed batch through the CacheOp protocol
  //     (the surface the experiment runner and benches drive).
  sim::DittoCacheClient batch_client(&pool, &ctx, config);
  const std::vector<sim::CacheOp> batch = {
      sim::CacheOp::Set("proto:1", "v1"),
      sim::CacheOp::MultiGet("proto:1"),
      sim::CacheOp::MultiGet("user:44"),
      sim::CacheOp::Expire("proto:1", /*ttl_ticks=*/50000),
      sim::CacheOp::Delete("user:45"),
  };
  std::vector<sim::CacheResult> results(batch.size());
  batch_client.ExecuteBatch(batch, results.data());
  std::printf("proto: mget hit=%d/%d, expire ok=%d, delete ok=%d\n",
              results[1].status == sim::OpStatus::kHit,
              results[2].status == sim::OpStatus::kHit,
              results[3].status == sim::OpStatus::kStored,
              results[4].status == sim::OpStatus::kDeleted);

  // 5. Fill past capacity: the client evicts with sample-based multi-expert
  //    eviction and records history entries for regret learning.
  for (int i = 0; i < 40000; ++i) {
    client.Set("key-" + std::to_string(i), std::string(200, 'v'));
  }
  const core::DittoStats& stats = client.stats();
  std::printf("\nafter 40k inserts over a 20k-object cache:\n");
  std::printf("  cached objects : %llu\n",
              static_cast<unsigned long long>(pool.cached_objects()));
  std::printf("  evictions      : %llu\n", static_cast<unsigned long long>(stats.evictions));
  std::printf("  expert weights : lru=%.3f lfu=%.3f\n", client.expert_weights()[0],
              client.expert_weights()[1]);

  // 6. Virtual-time accounting: every verb was charged to the client clock.
  std::printf("  client busy    : %.2f ms of simulated time, %llu reads / %llu writes / "
              "%llu atomics\n",
              ctx.clock().busy_us() / 1000.0, static_cast<unsigned long long>(ctx.reads),
              static_cast<unsigned long long>(ctx.writes),
              static_cast<unsigned long long>(ctx.atomics));
  return 0;
}
