// Quickstart: stand up a memory pool, attach a Ditto client, and run basic
// Get/Set/Delete traffic with the adaptive LRU+LFU configuration.
//
//   ./examples/quickstart
#include <cstdio>
#include <string>

#include "core/ditto_client.h"
#include "dm/pool.h"

int main() {
  using namespace ditto;

  // 1. The memory pool: one memory node with 64 MiB of DRAM, a 1-core
  //    controller, and room for 20k cached objects.
  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 64 << 20;
  pool_config.num_buckets = 16384;
  pool_config.capacity_objects = 20000;
  dm::MemoryPool pool(pool_config);

  // 2. The Ditto server side: installs the adaptive-weight controller on the
  //    memory node. Construct exactly once per pool.
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};  // adaptive between two experts
  core::DittoServer server(&pool, config);

  // 3. A client (one per application thread in the compute pool). All cache
  //    operations execute as one-sided remote memory accesses.
  rdma::ClientContext ctx(/*id=*/0);
  core::DittoClient client(&pool, &ctx, config);

  // 4. Basic operations.
  client.Set("user:42", "{\"name\":\"ditto\",\"hp\":48}");
  std::string value;
  if (client.Get("user:42", &value)) {
    std::printf("hit : user:42 -> %s\n", value.c_str());
  }
  if (!client.Get("user:43", &value)) {
    std::printf("miss: user:43 (as expected)\n");
  }
  client.Delete("user:42");
  std::printf("del : user:42 cached=%llu\n",
              static_cast<unsigned long long>(pool.cached_objects()));

  // 5. Fill past capacity: the client evicts with sample-based multi-expert
  //    eviction and records history entries for regret learning.
  for (int i = 0; i < 40000; ++i) {
    client.Set("key-" + std::to_string(i), std::string(200, 'v'));
  }
  const core::DittoStats& stats = client.stats();
  std::printf("\nafter 40k inserts over a 20k-object cache:\n");
  std::printf("  cached objects : %llu\n",
              static_cast<unsigned long long>(pool.cached_objects()));
  std::printf("  evictions      : %llu\n", static_cast<unsigned long long>(stats.evictions));
  std::printf("  expert weights : lru=%.3f lfu=%.3f\n", client.expert_weights()[0],
              client.expert_weights()[1]);

  // 6. Virtual-time accounting: every verb was charged to the client clock.
  std::printf("  client busy    : %.2f ms of simulated time, %llu reads / %llu writes / "
              "%llu atomics\n",
              ctx.clock().busy_us() / 1000.0, static_cast<unsigned long long>(ctx.reads),
              static_cast<unsigned long long>(ctx.writes),
              static_cast<unsigned long long>(ctx.atomics));
  return 0;
}
