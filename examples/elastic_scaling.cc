// Elastic scaling demo: the operational win of caching on disaggregated
// memory. Compute (client threads) and memory (cache capacity) scale
// independently and take effect immediately — no resharding, no data
// migration, no minutes-long reclamation delay (contrast with the Redis
// timeline printed at the end).
//
//   ./examples/elastic_scaling
#include <cstdio>

#include "baselines/redis_model.h"
#include "core/ditto_client.h"
#include "dm/pool.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/ycsb.h"

int main() {
  using namespace ditto;

  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = 20000;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, 100000, 1);

  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 96 << 20;
  pool_config.num_buckets = 16384;
  pool_config.capacity_objects = 40000;
  dm::MemoryPool pool(pool_config);
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  core::DittoServer server(&pool, config);

  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;
  const auto resize = [&](int n) {
    uint64_t now_ns = 0;
    for (const auto& ctx : ctxs) {
      now_ns = std::max(now_ns, ctx->clock().busy_ns());
    }
    while (static_cast<int>(clients.size()) > n) {
      clients.pop_back();
      ctxs.pop_back();
      raw.pop_back();
    }
    while (static_cast<int>(clients.size()) < n) {
      ctxs.push_back(std::make_unique<rdma::ClientContext>(ctxs.size()));
      ctxs.back()->clock().AdvanceNs(now_ns);
      clients.push_back(std::make_unique<sim::DittoCacheClient>(&pool, ctxs.back().get(),
                                                                config));
      raw.push_back(clients.back().get());
    }
  };

  std::printf("Ditto on disaggregated memory: resources change instantly\n\n");
  std::printf("%-34s %8s %10s %11s\n", "phase", "clients", "capacity", "tput_mops");
  const auto phase = [&](const char* label, int n, uint64_t capacity) {
    resize(n);
    pool.SetCapacityObjects(capacity);
    sim::RunOptions options;
    options.set_on_miss = true;
    const sim::RunResult r = sim::RunTrace(raw, trace, &pool.node(), options);
    std::printf("%-34s %8d %10llu %11.3f\n", label, n,
                static_cast<unsigned long long>(capacity), r.throughput_mops);
  };
  phase("steady state", 16, 40000);
  phase("double compute (instant)", 32, 40000);
  phase("halve memory (instant)", 32, 20000);
  phase("restore both (instant)", 16, 40000);

  std::printf("\nthe same scale-out on a monolithic sharded cache (Redis model, paper's\n"
              "10M-key deployment):\n");
  baselines::RedisModelConfig redis_config;  // 10M keys, 32 shards (paper Figure 1 setup)
  baselines::RedisModel redis(redis_config);
  redis.Resize(64);
  std::printf("  migration in progress for %.1f minutes before the added nodes serve\n",
              redis.migration_remaining_s() / 60.0);
  const baselines::RedisSample during = redis.Tick(1.0);
  std::printf("  meanwhile throughput dips to %.2f Mops and p99 rises to %.0f us\n",
              during.throughput_mops, during.p99_us);
  return 0;
}
