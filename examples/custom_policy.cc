// Integrating a custom caching algorithm — the paper's headline flexibility
// claim: a new algorithm is a priority function (and optionally a metadata
// update rule), typically around a dozen lines.
//
// This example adds "wlfu", a cost-weighted LFU that protects objects that
// are expensive to refetch, registers it with the policy registry, and runs
// it both standalone and as a third adaptive expert next to LRU and LFU.
//
//   ./examples/custom_policy
#include <cstdio>

#include "core/ditto_client.h"
#include "dm/pool.h"
#include "policies/policy.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/synthetic_traces.h"

namespace {

using ditto::policy::CachePolicy;
using ditto::policy::Metadata;

// The entire integration effort for the new algorithm (12 lines):
class WeightedLfuPolicy : public CachePolicy {
 public:
  std::string name() const override { return "wlfu"; }
  double Priority(const Metadata& m) const override {
    // Refetch cost scales with object size; hotter and costlier objects
    // deserve to stay.
    return static_cast<double>(m.freq) *
           (m.cost + static_cast<double>(m.size_bytes) / 1024.0);
  }
};

std::unique_ptr<CachePolicy> MakeWeightedLfu() { return std::make_unique<WeightedLfuPolicy>(); }

}  // namespace

int main() {
  using namespace ditto;
  policy::RegisterPolicy("wlfu", MakeWeightedLfu);

  const workload::Trace trace = workload::MakeLfuFriendly(120000, 5000, 0.99, 0.3, 7);
  const uint64_t capacity = 1500;

  const auto run = [&](const std::vector<std::string>& experts) {
    dm::PoolConfig pool_config;
    pool_config.memory_bytes = 64 << 20;
    pool_config.num_buckets = 1024;
    pool_config.capacity_objects = capacity;
    dm::MemoryPool pool(pool_config);
    core::DittoConfig config;
    config.experts = experts;
    core::DittoServer server(&pool, config);
    rdma::ClientContext ctx(0);
    sim::DittoCacheClient client(&pool, &ctx, config);
    std::vector<sim::CacheClient*> raw = {&client};
    sim::RunOptions options;
    options.warmup_fraction = 0.25;
    return sim::RunTrace(raw, trace, &pool.node(), options).hit_rate;
  };

  std::printf("custom algorithm 'wlfu' (cost-weighted LFU), 12 lines of code:\n\n");
  std::printf("  %-24s hit rate\n", "configuration");
  std::printf("  %-24s %.4f\n", "ditto {lru}", run({"lru"}));
  std::printf("  %-24s %.4f\n", "ditto {lfu}", run({"lfu"}));
  std::printf("  %-24s %.4f\n", "ditto {wlfu}", run({"wlfu"}));
  std::printf("  %-24s %.4f\n", "ditto {lru,lfu,wlfu}", run({"lru", "lfu", "wlfu"}));
  std::printf("\nthe adaptive configuration treats the custom algorithm as a third\n"
              "expert and learns whether it helps on the live workload.\n");
  return 0;
}
