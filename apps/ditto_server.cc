// ditto_server: serves the Ditto cache over RESP2 on a real TCP port.
//
//   ./ditto_server --port=6399 --reactors=2 --shards=1 --capacity=65536
//
// Builds a Ditto deployment (one shared memory pool, or a ShardedPool when
// --shards > 1) with one cache client per reactor, starts the multi-reactor
// net::Server, and runs until SIGTERM/SIGINT. Shutdown is graceful: the
// signal stops the acceptors, closes every connection, joins the reactors,
// flushes the clients, prints the final stats line, and exits 0.
//
// With --reactors > 1 the reactors' clients contend on the shared pool, so
// DittoConfig::validate_inserts is forced on (same rule as any multi-client
// deployment).
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/server.h"

namespace {

void PrintUsage() {
  std::printf(
      "ditto_server: RESP2 front end for the Ditto cache\n"
      "  --host=ADDR        bind address (default 127.0.0.1)\n"
      "  --port=N           TCP port, 0 = kernel-assigned (default 6399)\n"
      "  --reactors=N       event-loop threads, one cache client each (default 1)\n"
      "  --shards=N         memory nodes in the pool (default 1)\n"
      "  --capacity=N       cache capacity in objects, per node (default 65536)\n"
      "  --max_conns=N      live-connection cap (default 1024)\n"
      "  --shed_watermark=N in-flight op cap before -LOADSHED, 0 = off (default 65536)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ditto;

  const Flags flags(argc, argv);
  if (flags.Has("help")) {
    PrintUsage();
    return 0;
  }
  const int reactors = static_cast<int>(flags.GetInt("reactors", 1));
  const int shards = static_cast<int>(flags.GetInt("shards", 1));
  const uint64_t capacity = static_cast<uint64_t>(flags.GetInt("capacity", 64 << 10));
  if (reactors < 1 || shards < 1 || capacity == 0) {
    std::fprintf(stderr, "ditto_server: --reactors, --shards, --capacity must be >= 1\n");
    return 2;
  }

  net::ServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetInt("port", 6399));
  options.max_conns = static_cast<size_t>(flags.GetInt("max_conns", 1024));
  options.shed_watermark = static_cast<size_t>(flags.GetInt("shed_watermark", 64 << 10));

  core::DittoConfig config;
  config.validate_inserts = reactors > 1;

  // Keep the deployment alive for the whole server lifetime. Each reactor
  // gets its own client (and virtual clock); with --shards > 1 every client
  // fans out across the pool's memory nodes by key hash.
  const dm::PoolConfig pool_config = bench::MakePoolConfig(capacity);
  bench::DittoDeployment single;
  std::unique_ptr<core::ShardedPool> sharded_pool;
  std::unique_ptr<core::ShardedDittoServer> sharded_server;
  std::vector<std::unique_ptr<rdma::ClientContext>> sharded_ctxs;
  std::vector<std::unique_ptr<sim::ShardedDittoCacheClient>> sharded_clients;
  std::vector<sim::CacheClient*> clients;
  if (shards == 1) {
    single = bench::MakeDitto(pool_config, config, reactors);
    clients = single.raw;
  } else {
    sharded_pool = std::make_unique<core::ShardedPool>(pool_config, shards);
    sharded_server = std::make_unique<core::ShardedDittoServer>(sharded_pool.get(), config);
    for (int i = 0; i < reactors; ++i) {
      sharded_ctxs.push_back(std::make_unique<rdma::ClientContext>(static_cast<uint32_t>(i)));
      sharded_clients.push_back(std::make_unique<sim::ShardedDittoCacheClient>(
          sharded_pool.get(), sharded_ctxs.back().get(), config));
      clients.push_back(sharded_clients.back().get());
    }
  }

  // Block the shutdown signals before Start so the reactor threads inherit
  // the mask and delivery lands in this thread's sigwait.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  net::Server server(clients, options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "ditto_server: %s\n", error.c_str());
    return 1;
  }
  std::printf("ditto_server: listening on %s:%u (reactors=%d shards=%d capacity=%llu "
              "max_conns=%zu shed_watermark=%zu)\n",
              options.host.c_str(), server.port(), reactors, shards,
              static_cast<unsigned long long>(capacity), options.max_conns,
              options.shed_watermark);
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("ditto_server: received %s, shutting down\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT");
  server.Stop();

  const net::ServerStats stats = server.stats();
  std::printf("ditto_server: served %llu commands (%llu ops, %llu shed) over %llu "
              "connections (%llu rejected)\n",
              static_cast<unsigned long long>(stats.commands),
              static_cast<unsigned long long>(stats.ops),
              static_cast<unsigned long long>(stats.shed_ops),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.rejected_conns));
  return 0;
}
