// Deterministic fault injection for the simulated RDMA fabric.
//
// A FaultPlan describes WHAT can go wrong on one memory node — probabilistic
// verb timeouts, dropped controller RPCs, and whole-node crash windows pinned
// to virtual time. A FaultState (one per RemoteNode) holds the plan plus the
// node's live crashed/alive bit, which the cluster lifecycle layer flips when
// it executes a scheduled crash or restart.
//
// Determinism contract: every probabilistic draw is a pure function of
// (plan.seed, client context id, per-QP draw counter), so two runs with the
// same plan and the same op interleaving fail the exact same verbs — and a
// run with an EMPTY plan takes a single relaxed-load fast path in every verb
// and is bit-identical (verb counts, NIC messages, hit rates) to a build
// without fault injection at all. Draw counters only advance when a
// probability is actually armed, so enabling the subsystem with zero
// probabilities perturbs nothing.
#ifndef DITTO_RDMA_FAULT_H_
#define DITTO_RDMA_FAULT_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace ditto::rdma {

// Outcome of a verb or RPC. kOk is the only success value; the failure kinds
// are distinguished so retry policies can treat "the node is gone" (fail over)
// differently from "this verb timed out" (retry with backoff).
enum class VerbStatus : uint8_t {
  kOk = 0,
  kTimeout = 1,      // one-sided verb exceeded its completion timeout
  kUnavailable = 2,  // node crashed: QP torn down, nothing reaches the NIC
  kRpcDropped = 3,   // two-sided RPC lost (request or response)
};

// Immutable-after-configuration description of the faults one node exhibits.
struct FaultPlan {
  // Seeds the per-QP deterministic draws; two plans with equal seeds and
  // probabilities produce identical failure sequences.
  uint64_t seed = 1;
  // Per-verb probability in [0,1) that a one-sided verb times out.
  double verb_timeout_prob = 0.0;
  // Per-call probability in [0,1) that a controller RPC is dropped.
  double rpc_drop_prob = 0.0;
  // Latency a client burns (virtual time) detecting one failed verb/RPC —
  // the completion-timeout budget of a real QP.
  double timeout_us = 100.0;

  // Scheduled whole-node outages in absolute virtual time: the node is down
  // for begin_ns <= now < end_ns. end_ns == UINT64_MAX means "until a
  // lifecycle Restart() revives it".
  struct CrashWindow {
    uint64_t begin_ns = 0;
    uint64_t end_ns = ~uint64_t{0};
  };
  std::vector<CrashWindow> crash_windows;

  bool HasFaults() const {
    return verb_timeout_prob > 0.0 || rpc_drop_prob > 0.0 || !crash_windows.empty();
  }
};

// Live fault state of one memory node. Configure() is called before traffic;
// Crash()/Restart() are flipped by the lifecycle layer while clients run, so
// the alive bit is atomic. The armed bit is the fast path: an unarmed node
// costs every verb exactly one relaxed load.
class FaultState {
 public:
  void Configure(const FaultPlan& plan) {
    plan_ = plan;
    if (plan.HasFaults()) {
      armed_.store(true, std::memory_order_relaxed);
    }
  }

  // Arms the fault checks without any probabilistic faults — used by cluster
  // deployments so a later Crash() is honored even under an empty plan.
  void Arm() { armed_.store(true, std::memory_order_relaxed); }

  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  const FaultPlan& plan() const { return plan_; }

  // Lifecycle-driven outage control (crash until further notice / revive).
  void Crash() { crashed_.store(true, std::memory_order_relaxed); }
  void Restart() { crashed_.store(false, std::memory_order_relaxed); }
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }

  // Whether the node is down at virtual time now_ns: either the lifecycle
  // layer crashed it, or a scheduled crash window covers now_ns.
  bool CrashedAt(uint64_t now_ns) const {
    if (crashed_.load(std::memory_order_relaxed)) {
      return true;
    }
    for (const FaultPlan::CrashWindow& w : plan_.crash_windows) {
      if (now_ns >= w.begin_ns && now_ns < w.end_ns) {
        return true;
      }
    }
    return false;
  }

 private:
  FaultPlan plan_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> crashed_{false};
};

}  // namespace ditto::rdma

#endif  // DITTO_RDMA_FAULT_H_
