// Cost parameters of the simulated interconnect and the memory-node CPU.
// Calibrated to 100 Gbps ConnectX-6-class hardware; every bench prints the
// model it ran with. Setting enabled=false turns all time accounting off
// (used by unit tests where only functional behaviour matters).
#ifndef DITTO_RDMA_COST_MODEL_H_
#define DITTO_RDMA_COST_MODEL_H_

#include <cstdint>

namespace ditto::rdma {

struct CostModel {
  bool enabled = true;

  // Round-trip latencies of one-sided verbs (client-observed).
  double read_rtt_us = 2.0;
  double write_rtt_us = 2.0;
  double atomic_rtt_us = 2.5;

  // Posting overhead of an asynchronous (unsignalled) verb: the client does
  // not wait for the completion, only pays the doorbell cost.
  double async_post_us = 0.2;

  // Doorbell batching: a chain of async WQEs posted with a single doorbell
  // pays async_post_us once plus this marginal cost per additional WQE
  // (building the WQE in the send queue is far cheaper than the MMIO ring).
  double batched_wqe_us = 0.02;

  // Payload bandwidth: 100 Gbps ~ 12.5 GB/s -> 12500 bytes/us.
  double bytes_per_us = 12500.0;

  // RNIC message-rate ceiling at the memory node, in million messages/s.
  // ConnectX-6 one-sided READ rate is ~75 Mops; atomics are more expensive
  // (internal NIC locking, Kalia et al.), modelled by atomic_msg_cost.
  double nic_mops = 75.0;
  double atomic_msg_cost = 3.0;  // one atomic consumes this many message slots

  // Memory-node controller CPU: per-core service time of one RPC. 1.2us/op
  // covers request parse + index/caching-structure maintenance.
  double rpc_service_us = 1.2;

  // Per-message NIC service time in nanoseconds.
  double NicServiceNs(double msg_cost) const { return msg_cost * 1000.0 / nic_mops; }

  static CostModel Disabled() {
    CostModel m;
    m.enabled = false;
    return m;
  }
};

}  // namespace ditto::rdma

#endif  // DITTO_RDMA_COST_MODEL_H_
