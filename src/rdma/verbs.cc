#include "rdma/verbs.h"

namespace ditto::rdma {

void Verbs::ChargeSync(double rtt_us, double msg_cost, size_t bytes) {
  const CostModel& cost = node_->cost();
  node_->nic().ChargeBytes(bytes);
  const uint64_t queue_ns = node_->nic().ChargeMessage(ctx_->now_ns(), msg_cost);
  if (!cost.enabled) {
    return;
  }
  const double wire_us = static_cast<double>(bytes) / cost.bytes_per_us;
  ctx_->clock().AdvanceNs(queue_ns + static_cast<uint64_t>((rtt_us + wire_us) * 1000.0));
}

void Verbs::ChargeAsync(double msg_cost, size_t bytes) {
  const CostModel& cost = node_->cost();
  node_->nic().ChargeBytes(bytes);
  node_->nic().ChargeMessage(ctx_->now_ns(), msg_cost);
  if (!cost.enabled) {
    return;
  }
  ctx_->clock().AdvanceUs(cost.async_post_us);
}

void Verbs::Read(uint64_t addr, void* dst, size_t len) {
  node_->arena().Read(addr, dst, len);
  ctx_->reads++;
  ChargeSync(node_->cost().read_rtt_us, 1.0, len);
}

void Verbs::Write(uint64_t addr, const void* src, size_t len) {
  node_->arena().Write(addr, src, len);
  ctx_->writes++;
  ChargeSync(node_->cost().write_rtt_us, 1.0, len);
}

void Verbs::WriteAsync(uint64_t addr, const void* src, size_t len) {
  node_->arena().Write(addr, src, len);
  ctx_->writes++;
  ChargeAsync(1.0, len);
}

uint64_t Verbs::CompareSwap(uint64_t addr, uint64_t expected, uint64_t desired) {
  const uint64_t observed = node_->arena().CompareSwap(addr, expected, desired);
  ctx_->atomics++;
  ChargeSync(node_->cost().atomic_rtt_us, node_->cost().atomic_msg_cost, 8);
  return observed;
}

uint64_t Verbs::FetchAdd(uint64_t addr, uint64_t delta) {
  const uint64_t prior = node_->arena().FetchAdd(addr, delta);
  ctx_->atomics++;
  ChargeSync(node_->cost().atomic_rtt_us, node_->cost().atomic_msg_cost, 8);
  return prior;
}

void Verbs::FetchAddAsync(uint64_t addr, uint64_t delta) {
  node_->arena().FetchAdd(addr, delta);
  ctx_->atomics++;
  ChargeAsync(node_->cost().atomic_msg_cost, 8);
}

std::string Verbs::Rpc(uint32_t handler_id, std::string_view request, double service_us) {
  const CostModel& cost = node_->cost();
  if (service_us <= 0.0) {
    service_us = cost.rpc_service_us;
  }
  ctx_->rpcs++;
  // Request and response messages.
  node_->nic().ChargeBytes(request.size());
  const uint64_t nic_queue_ns = node_->nic().ChargeMessage(ctx_->now_ns(), 1.0);
  node_->nic().ChargeMessage(ctx_->now_ns(), 1.0);
  const uint64_t cpu_queue_ns = node_->cpu().ChargeRpc(ctx_->now_ns(), service_us);
  std::string response = node_->DispatchRpc(handler_id, request);
  if (cost.enabled) {
    const double wire_us =
        static_cast<double>(request.size() + response.size()) / cost.bytes_per_us;
    ctx_->clock().AdvanceNs(nic_queue_ns + cpu_queue_ns +
                            static_cast<uint64_t>(
                                (cost.read_rtt_us + service_us + wire_us) * 1000.0));
  }
  return response;
}

}  // namespace ditto::rdma
