#include "rdma/verbs.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/hash.h"

namespace ditto::rdma {

void Verbs::AdvanceBaseNs(uint64_t ns) {
  if (in_op_) {
    op_cursor_ += ns;
  } else {
    ctx_->clock().AdvanceNs(ns);
  }
}

void Verbs::AdvanceBaseToNs(uint64_t ns) {
  if (in_op_) {
    op_cursor_ = std::max(op_cursor_, ns);
  } else {
    ctx_->clock().AdvanceToNs(ns);
  }
}

uint64_t Verbs::PostSignalled(double rtt_us, double msg_cost, size_t bytes) {
  const CostModel& cost = node_->cost();
  node_->nic().ChargeBytes(bytes);
  node_->nic().CountDoorbell();
  const uint64_t now = base_now_ns();
  const uint64_t queue_ns = node_->nic().ChargeMessage(now, msg_cost);
  uint64_t complete_ns = now;
  if (cost.enabled) {
    const double wire_us = static_cast<double>(bytes) / cost.bytes_per_us;
    complete_ns += queue_ns + static_cast<uint64_t>((rtt_us + wire_us) * 1000.0);
  }
  const uint64_t wr = next_wr_++;
  cq_.push_back(Completion{wr, complete_ns});
  return wr;
}

double Verbs::FaultDraw() {
  const FaultPlan& plan = node_->fault().plan();
  const uint64_t mix =
      Mix64(plan.seed ^ (uint64_t{ctx_->id()} << 32) ^ ++fault_draws_);
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(mix >> 11) * 0x1.0p-53;
}

bool Verbs::FaultFail(double prob, VerbStatus prob_status) {
  FaultState& fault = node_->fault();
  if (!fault.armed()) {
    return false;  // fast path: one relaxed load per verb when faults are off
  }
  VerbStatus status;
  if (fault.CrashedAt(base_now_ns())) {
    status = VerbStatus::kUnavailable;
    ctx_->unavailable++;
  } else if (prob > 0.0 && FaultDraw() < prob) {
    status = prob_status;
    if (prob_status == VerbStatus::kRpcDropped) {
      ctx_->rpc_drops++;
    } else {
      ctx_->verb_timeouts++;
    }
  } else {
    return false;
  }
  last_status_ = status;
  // The client burns its completion-timeout budget detecting the failure;
  // nothing reaches the NIC or controller models (the verb never completed).
  AdvanceBaseNs(static_cast<uint64_t>(fault.plan().timeout_us * 1000.0));
  return true;
}

uint64_t Verbs::WaitWr(uint64_t wr_id) {
  if (wr_id == 0) {
    // The "no wr" id a fault-failed Post* returns: nothing to wait for.
    return base_now_ns();
  }
  for (size_t i = 0; i < cq_.size(); ++i) {
    if (cq_[i].wr_id == wr_id) {
      const uint64_t complete_ns = cq_[i].complete_ns;
      cq_.erase(cq_.begin() + static_cast<ptrdiff_t>(i));
      AdvanceBaseToNs(complete_ns);
      return complete_ns;
    }
  }
  // Waiting on an unknown (or already-consumed) wr_id is a caller bug that
  // would silently corrupt time accounting; fail loudly in every build.
  std::fprintf(stderr, "Verbs::WaitWr: wr_id %llu is not pending\n",
               static_cast<unsigned long long>(wr_id));
  std::abort();
}

bool Verbs::PollCq(Completion* out) {
  if (cq_.empty()) {
    return false;
  }
  size_t best = 0;
  for (size_t i = 1; i < cq_.size(); ++i) {
    if (cq_[i].complete_ns < cq_[best].complete_ns ||
        (cq_[i].complete_ns == cq_[best].complete_ns && cq_[i].wr_id < cq_[best].wr_id)) {
      best = i;
    }
  }
  *out = cq_[best];
  cq_.erase(cq_.begin() + static_cast<ptrdiff_t>(best));
  AdvanceBaseToNs(out->complete_ns);
  return true;
}

void Verbs::BeginOp(uint64_t start_ns) {
  if (in_op_) {
    // Nesting would overwrite the outer op's cursor and corrupt time
    // accounting; like WaitWr on a stale wr_id, fail loudly in every build.
    std::fprintf(stderr, "Verbs::BeginOp: pipelined ops must not nest\n");
    std::abort();
  }
  in_op_ = true;
  op_cursor_ = std::max(start_ns, ctx_->now_ns());
}

uint64_t Verbs::EndOp() {
  if (!in_op_) {
    std::fprintf(stderr, "Verbs::EndOp: no pipelined op is active\n");
    std::abort();
  }
  in_op_ = false;
  return op_cursor_;
}

void Verbs::ChargeAsync(double msg_cost, size_t bytes) {
  const CostModel& cost = node_->cost();
  node_->nic().ChargeBytes(bytes);
  node_->nic().CountDoorbell();
  node_->nic().ChargeMessage(base_now_ns(), msg_cost);
  if (!cost.enabled) {
    return;
  }
  AdvanceBaseNs(static_cast<uint64_t>(cost.async_post_us * 1000.0));
}

void Verbs::SetBatchOps(size_t max_pending) {
  // Reconfiguring the chain always drains it, so callers can use this at a
  // measurement boundary to keep deferred costs out of the next window.
  FlushBatch();
  batch_max_ = max_pending;
}

void Verbs::EnqueueBatched(uint8_t kind, uint64_t addr, uint32_t bytes) {
  ++batch_posts_;
  for (PendingOp& op : pending_) {
    if (op.kind == kind && op.addr == addr) {
      // A later post to the same address supersedes the earlier one on the
      // wire (memory effects were already applied in program order).
      op.bytes = std::max(op.bytes, bytes);
      if (batch_posts_ >= batch_max_) {
        FlushBatch();
      }
      return;
    }
  }
  pending_.push_back(PendingOp{kind, addr, bytes});
  if (batch_posts_ >= batch_max_) {
    FlushBatch();
  }
}

void Verbs::FlushBatch() {
  batch_posts_ = 0;
  if (pending_.empty()) {
    return;
  }
  const CostModel& cost = node_->cost();
  node_->nic().CountDoorbell();
  for (const PendingOp& op : pending_) {
    const double msg_cost = op.kind == 0 ? 1.0 : cost.atomic_msg_cost;
    node_->nic().ChargeBytes(op.bytes);
    node_->nic().ChargeMessage(base_now_ns(), msg_cost);
  }
  if (cost.enabled) {
    AdvanceBaseNs(static_cast<uint64_t>(
        (cost.async_post_us + cost.batched_wqe_us * static_cast<double>(pending_.size() - 1)) *
        1000.0));
  }
  pending_.clear();
}

void Verbs::Read(uint64_t addr, void* dst, size_t len) {
  WaitWr(PostRead(addr, dst, len));
}

void Verbs::PrefetchRead(uint64_t addr, size_t len) const {
  node_->arena().PrefetchRead(addr, len);
}

void Verbs::Write(uint64_t addr, const void* src, size_t len) {
  WaitWr(PostWrite(addr, src, len));
}

uint64_t Verbs::PostRead(uint64_t addr, void* dst, size_t len) {
  if (FaultFail(node_->fault().plan().verb_timeout_prob, VerbStatus::kTimeout)) {
    // Zero the destination so the caller decodes an empty bucket / rejected
    // object instead of whatever stale bytes the scratch buffer held.
    std::memset(dst, 0, len);
    return 0;
  }
  node_->arena().Read(addr, dst, len);
  ctx_->reads++;
  return PostSignalled(node_->cost().read_rtt_us, 1.0, len);
}

uint64_t Verbs::PostWrite(uint64_t addr, const void* src, size_t len) {
  if (FaultFail(node_->fault().plan().verb_timeout_prob, VerbStatus::kTimeout)) {
    return 0;
  }
  node_->arena().Write(addr, src, len);
  ctx_->writes++;
  return PostSignalled(node_->cost().write_rtt_us, 1.0, len);
}

void Verbs::WriteAsync(uint64_t addr, const void* src, size_t len) {
  if (FaultFail(node_->fault().plan().verb_timeout_prob, VerbStatus::kTimeout)) {
    return;
  }
  node_->arena().Write(addr, src, len);
  ctx_->writes++;
  if (batch_max_ > 0) {
    EnqueueBatched(/*kind=*/0, addr, static_cast<uint32_t>(len));
    return;
  }
  ChargeAsync(1.0, len);
}

uint64_t Verbs::CompareSwap(uint64_t addr, uint64_t expected, uint64_t desired) {
  uint64_t observed = 0;
  WaitWr(PostCas(addr, expected, desired, &observed));
  return observed;
}

uint64_t Verbs::FetchAdd(uint64_t addr, uint64_t delta) {
  uint64_t prior = 0;
  WaitWr(PostFaa(addr, delta, &prior));
  return prior;
}

uint64_t Verbs::PostCas(uint64_t addr, uint64_t expected, uint64_t desired,
                        uint64_t* observed) {
  if (FaultFail(node_->fault().plan().verb_timeout_prob, VerbStatus::kTimeout)) {
    if (observed != nullptr) {
      // A failed CAS must read as "lost the race": observed != expected.
      *observed = ~expected;
    }
    return 0;
  }
  const uint64_t value = node_->arena().CompareSwap(addr, expected, desired);
  if (observed != nullptr) {
    *observed = value;
  }
  ctx_->atomics++;
  return PostSignalled(node_->cost().atomic_rtt_us, node_->cost().atomic_msg_cost, 8);
}

uint64_t Verbs::PostFaa(uint64_t addr, uint64_t delta, uint64_t* prior) {
  if (FaultFail(node_->fault().plan().verb_timeout_prob, VerbStatus::kTimeout)) {
    if (prior != nullptr) {
      *prior = 0;
    }
    return 0;
  }
  const uint64_t value = node_->arena().FetchAdd(addr, delta);
  if (prior != nullptr) {
    *prior = value;
  }
  ctx_->atomics++;
  return PostSignalled(node_->cost().atomic_rtt_us, node_->cost().atomic_msg_cost, 8);
}

void Verbs::FetchAddAsync(uint64_t addr, uint64_t delta) {
  if (FaultFail(node_->fault().plan().verb_timeout_prob, VerbStatus::kTimeout)) {
    return;
  }
  node_->arena().FetchAdd(addr, delta);
  ctx_->atomics++;
  if (batch_max_ > 0) {
    EnqueueBatched(/*kind=*/1, addr, 8);
    return;
  }
  ChargeAsync(node_->cost().atomic_msg_cost, 8);
}

void Verbs::Rpc(uint32_t handler_id, std::string_view request, std::string* response,
                double service_us) {
  if (FaultFail(node_->fault().plan().rpc_drop_prob, VerbStatus::kRpcDropped)) {
    response->clear();
    return;
  }
  const CostModel& cost = node_->cost();
  if (service_us <= 0.0) {
    service_us = cost.rpc_service_us;
  }
  ctx_->rpcs++;
  // Request and response messages; one doorbell for the send WQE.
  node_->nic().CountDoorbell();
  node_->nic().ChargeBytes(request.size());
  const uint64_t now = base_now_ns();
  const uint64_t nic_queue_ns = node_->nic().ChargeMessage(now, 1.0);
  node_->nic().ChargeMessage(now, 1.0);
  const uint64_t cpu_queue_ns = node_->cpu().ChargeRpc(now, service_us);
  node_->DispatchRpc(handler_id, request, response);
  if (cost.enabled) {
    const double wire_us =
        static_cast<double>(request.size() + response->size()) / cost.bytes_per_us;
    AdvanceBaseNs(nic_queue_ns + cpu_queue_ns +
                  static_cast<uint64_t>((cost.read_rtt_us + service_us + wire_us) * 1000.0));
  }
}

std::string Verbs::Rpc(uint32_t handler_id, std::string_view request, double service_us) {
  std::string response;
  Rpc(handler_id, request, &response, service_us);
  return response;
}

}  // namespace ditto::rdma
