#include "rdma/verbs.h"

#include <algorithm>

namespace ditto::rdma {

void Verbs::ChargeSync(double rtt_us, double msg_cost, size_t bytes) {
  const CostModel& cost = node_->cost();
  node_->nic().ChargeBytes(bytes);
  node_->nic().CountDoorbell();
  const uint64_t queue_ns = node_->nic().ChargeMessage(ctx_->now_ns(), msg_cost);
  if (!cost.enabled) {
    return;
  }
  const double wire_us = static_cast<double>(bytes) / cost.bytes_per_us;
  ctx_->clock().AdvanceNs(queue_ns + static_cast<uint64_t>((rtt_us + wire_us) * 1000.0));
}

void Verbs::ChargeAsync(double msg_cost, size_t bytes) {
  const CostModel& cost = node_->cost();
  node_->nic().ChargeBytes(bytes);
  node_->nic().CountDoorbell();
  node_->nic().ChargeMessage(ctx_->now_ns(), msg_cost);
  if (!cost.enabled) {
    return;
  }
  ctx_->clock().AdvanceUs(cost.async_post_us);
}

void Verbs::SetBatchOps(size_t max_pending) {
  // Reconfiguring the chain always drains it, so callers can use this at a
  // measurement boundary to keep deferred costs out of the next window.
  FlushBatch();
  batch_max_ = max_pending;
}

void Verbs::EnqueueBatched(uint8_t kind, uint64_t addr, uint32_t bytes) {
  ++batch_posts_;
  for (PendingOp& op : pending_) {
    if (op.kind == kind && op.addr == addr) {
      // A later post to the same address supersedes the earlier one on the
      // wire (memory effects were already applied in program order).
      op.bytes = std::max(op.bytes, bytes);
      if (batch_posts_ >= batch_max_) {
        FlushBatch();
      }
      return;
    }
  }
  pending_.push_back(PendingOp{kind, addr, bytes});
  if (batch_posts_ >= batch_max_) {
    FlushBatch();
  }
}

void Verbs::FlushBatch() {
  batch_posts_ = 0;
  if (pending_.empty()) {
    return;
  }
  const CostModel& cost = node_->cost();
  node_->nic().CountDoorbell();
  for (const PendingOp& op : pending_) {
    const double msg_cost = op.kind == 0 ? 1.0 : cost.atomic_msg_cost;
    node_->nic().ChargeBytes(op.bytes);
    node_->nic().ChargeMessage(ctx_->now_ns(), msg_cost);
  }
  if (cost.enabled) {
    ctx_->clock().AdvanceUs(cost.async_post_us +
                            cost.batched_wqe_us * static_cast<double>(pending_.size() - 1));
  }
  pending_.clear();
}

void Verbs::Read(uint64_t addr, void* dst, size_t len) {
  node_->arena().Read(addr, dst, len);
  ctx_->reads++;
  ChargeSync(node_->cost().read_rtt_us, 1.0, len);
}

void Verbs::Write(uint64_t addr, const void* src, size_t len) {
  node_->arena().Write(addr, src, len);
  ctx_->writes++;
  ChargeSync(node_->cost().write_rtt_us, 1.0, len);
}

void Verbs::WriteAsync(uint64_t addr, const void* src, size_t len) {
  node_->arena().Write(addr, src, len);
  ctx_->writes++;
  if (batch_max_ > 0) {
    EnqueueBatched(/*kind=*/0, addr, static_cast<uint32_t>(len));
    return;
  }
  ChargeAsync(1.0, len);
}

uint64_t Verbs::CompareSwap(uint64_t addr, uint64_t expected, uint64_t desired) {
  const uint64_t observed = node_->arena().CompareSwap(addr, expected, desired);
  ctx_->atomics++;
  ChargeSync(node_->cost().atomic_rtt_us, node_->cost().atomic_msg_cost, 8);
  return observed;
}

uint64_t Verbs::FetchAdd(uint64_t addr, uint64_t delta) {
  const uint64_t prior = node_->arena().FetchAdd(addr, delta);
  ctx_->atomics++;
  ChargeSync(node_->cost().atomic_rtt_us, node_->cost().atomic_msg_cost, 8);
  return prior;
}

void Verbs::FetchAddAsync(uint64_t addr, uint64_t delta) {
  node_->arena().FetchAdd(addr, delta);
  ctx_->atomics++;
  if (batch_max_ > 0) {
    EnqueueBatched(/*kind=*/1, addr, 8);
    return;
  }
  ChargeAsync(node_->cost().atomic_msg_cost, 8);
}

std::string Verbs::Rpc(uint32_t handler_id, std::string_view request, double service_us) {
  const CostModel& cost = node_->cost();
  if (service_us <= 0.0) {
    service_us = cost.rpc_service_us;
  }
  ctx_->rpcs++;
  // Request and response messages; one doorbell for the send WQE.
  node_->nic().CountDoorbell();
  node_->nic().ChargeBytes(request.size());
  const uint64_t nic_queue_ns = node_->nic().ChargeMessage(ctx_->now_ns(), 1.0);
  node_->nic().ChargeMessage(ctx_->now_ns(), 1.0);
  const uint64_t cpu_queue_ns = node_->cpu().ChargeRpc(ctx_->now_ns(), service_us);
  std::string response = node_->DispatchRpc(handler_id, request);
  if (cost.enabled) {
    const double wire_us =
        static_cast<double>(request.size() + response.size()) / cost.bytes_per_us;
    ctx_->clock().AdvanceNs(nic_queue_ns + cpu_queue_ns +
                            static_cast<uint64_t>(
                                (cost.read_rtt_us + service_us + wire_us) * 1000.0));
  }
  return response;
}

}  // namespace ditto::rdma
