// NicModel / CpuModel: virtual-time service accounts for the memory node's
// RNIC message rate and controller CPU. Both are fluid-queue servers: each
// request appends its service time to the server's cumulative work W, and a
// client at virtual time `now` observes queueing delay max(0, W_before -
// now). For closed-loop clients this is self-stabilizing — once demand
// exceeds capacity, W runs ahead of every client's clock and the delays
// throttle aggregate throughput to exactly the service rate — and, unlike an
// FCFS-horizon model, it has no artifact when clients at different virtual
// times share one server.
#ifndef DITTO_RDMA_NIC_MODEL_H_
#define DITTO_RDMA_NIC_MODEL_H_

#include <atomic>
#include <cstdint>

#include "rdma/cost_model.h"

namespace ditto::rdma {

class QueueingServer {
 public:
  // Appends service_ns of work. Returns the queueing delay in ns a request
  // issued at client-virtual-time now_ns observes.
  uint64_t Charge(uint64_t now_ns, uint64_t service_ns) {
    const uint64_t backlog = work_ns_.fetch_add(service_ns, std::memory_order_relaxed);
    return backlog > now_ns ? backlog - now_ns : 0;
  }

  // Total accumulated work: a lower bound on the elapsed time of any run
  // that pushed this much service through the server.
  uint64_t next_free_ns() const { return work_ns_.load(std::memory_order_relaxed); }
  void Reset() { work_ns_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> work_ns_{0};
};

class NicModel {
 public:
  explicit NicModel(const CostModel& cost) : cost_(cost) {}

  // Charges one message with the given slot cost (1.0 for READ/WRITE,
  // cost_.atomic_msg_cost for atomics). Returns queueing delay in ns.
  uint64_t ChargeMessage(uint64_t now_ns, double msg_cost) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    if (!cost_.enabled) {
      return 0;
    }
    return server_.Charge(now_ns, static_cast<uint64_t>(cost_.NicServiceNs(msg_cost)));
  }

  void ChargeBytes(uint64_t n) { bytes_.fetch_add(n, std::memory_order_relaxed); }

  // Counts one doorbell (MMIO ring). Unbatched posts ring once per verb;
  // doorbell-batched chains ring once per flush.
  void CountDoorbell() { doorbells_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t messages() const { return messages_.load(std::memory_order_relaxed); }
  uint64_t doorbells() const { return doorbells_.load(std::memory_order_relaxed); }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  // Serial completion horizon of the NIC, a lower bound on elapsed time.
  uint64_t busy_horizon_ns() const { return server_.next_free_ns(); }

  void Reset() {
    server_.Reset();
    messages_.store(0, std::memory_order_relaxed);
    doorbells_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  CostModel cost_;
  QueueingServer server_;
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> doorbells_{0};
  std::atomic<uint64_t> bytes_{0};
};

// The controller CPU of a memory node: `cores` servers approximated as one
// fast server (rate = cores / service_time).
class CpuModel {
 public:
  CpuModel(const CostModel& cost, int cores) : cost_(cost), cores_(cores) {}

  // Charges one RPC whose handler costs service_us of one core. Returns
  // queueing delay in ns observed by the caller.
  uint64_t ChargeRpc(uint64_t now_ns, double service_us) {
    ops_.fetch_add(1, std::memory_order_relaxed);
    if (!cost_.enabled) {
      return 0;
    }
    const auto effective_ns =
        static_cast<uint64_t>(service_us * 1000.0 / static_cast<double>(cores_));
    return server_.Charge(now_ns, effective_ns);
  }

  int cores() const { return cores_; }
  void set_cores(int cores) { cores_ = cores; }
  uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }
  uint64_t busy_horizon_ns() const { return server_.next_free_ns(); }

  void Reset() {
    server_.Reset();
    ops_.store(0, std::memory_order_relaxed);
  }

 private:
  CostModel cost_;
  int cores_;
  QueueingServer server_;
  std::atomic<uint64_t> ops_{0};
};

}  // namespace ditto::rdma

#endif  // DITTO_RDMA_NIC_MODEL_H_
