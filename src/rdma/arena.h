// MemoryArena: the memory node's DRAM, modelled as an array of 8-byte atomic
// cells. One-sided verbs operate on the arena with real atomic instructions,
// so concurrency behaviour (CAS races, torn multi-word reads) matches what
// RDMA hardware provides: 8-byte atomicity, no cross-cell atomicity.
#ifndef DITTO_RDMA_ARENA_H_
#define DITTO_RDMA_ARENA_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>

namespace ditto::rdma {

class MemoryArena {
 public:
  explicit MemoryArena(size_t size_bytes);

  size_t size() const { return size_; }

  // Copies len bytes from arena offset addr into dst. Word-atomic: each
  // 8-byte cell is read with a single relaxed load; the full range is not
  // atomic (as with RDMA_READ).
  void Read(uint64_t addr, void* dst, size_t len) const;

  // Host-cache prefetch hint for an upcoming Read of [addr, addr+len):
  // pulls the backing cells toward the cache one line at a time. Purely a
  // performance hint — no loads are observed, no memory-model or accounting
  // side effects (this is not a verb).
  void PrefetchRead(uint64_t addr, size_t len) const {
#if defined(__GNUC__) || defined(__clang__)
    const uint64_t end = addr + len <= size_ ? addr + len : size_;
    for (uint64_t a = addr & ~uint64_t{7}; a < end; a += 64) {
      __builtin_prefetch(&cells_[a / 8], /*rw=*/0, /*locality=*/1);
    }
#else
    (void)addr;
    (void)len;
#endif
  }

  // Copies len bytes from src into the arena. Word-atomic per cell.
  void Write(uint64_t addr, const void* src, size_t len);

  // 8-byte compare-and-swap at an 8-byte-aligned address. Returns the value
  // observed before the operation (equal to expected iff it succeeded).
  uint64_t CompareSwap(uint64_t addr, uint64_t expected, uint64_t desired);

  // 8-byte fetch-and-add at an 8-byte-aligned address. Returns the old value.
  uint64_t FetchAdd(uint64_t addr, uint64_t delta);

  // Direct 8-byte read/write helpers (single cell, atomic).
  uint64_t ReadU64(uint64_t addr) const;
  void WriteU64(uint64_t addr, uint64_t value);

 private:
  std::atomic<uint64_t>* CellFor(uint64_t addr);
  const std::atomic<uint64_t>* CellFor(uint64_t addr) const;

  size_t size_;
  std::unique_ptr<std::atomic<uint64_t>[]> cells_;
};

}  // namespace ditto::rdma

#endif  // DITTO_RDMA_ARENA_H_
