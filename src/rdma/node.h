// RemoteNode bundles the hardware of one memory node: DRAM arena, RNIC model
// and controller-CPU model, plus the RPC dispatch table served by the
// controller. ClientContext is the per-client-thread endpoint state (virtual
// clock, RNG, op counters).
#ifndef DITTO_RDMA_NODE_H_
#define DITTO_RDMA_NODE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "common/histogram.h"
#include "common/rand.h"
#include "rdma/arena.h"
#include "rdma/cost_model.h"
#include "rdma/fault.h"
#include "rdma/nic_model.h"

namespace ditto::rdma {

// A controller RPC handler: consumes a request payload and renders the
// response into *response (cleared by the dispatcher; the caller's buffer
// capacity is reused across calls so steady-state RPCs allocate nothing).
// Handlers run inline on the calling thread but are serialized by the
// dispatcher mutex (the controller is a small CPU; its parallelism is
// expressed in the CpuModel, not in handler concurrency).
using RpcHandler = std::function<void(std::string_view request, std::string* response)>;

class RemoteNode {
 public:
  RemoteNode(size_t memory_bytes, const CostModel& cost, int controller_cores = 1)
      : cost_(cost), arena_(memory_bytes), nic_(cost), cpu_(cost, controller_cores) {}

  MemoryArena& arena() { return arena_; }
  const MemoryArena& arena() const { return arena_; }
  NicModel& nic() { return nic_; }
  CpuModel& cpu() { return cpu_; }
  const CostModel& cost() const { return cost_; }
  FaultState& fault() { return fault_; }
  const FaultState& fault() const { return fault_; }

  void RegisterRpc(uint32_t id, RpcHandler handler) {
    ditto::MutexLock lock(&rpc_mu_);
    handlers_[id] = std::move(handler);
  }

  // Dispatches an RPC into the caller's response buffer. Aborts if unknown.
  // A request view aliasing *response (one scratch buffer used for both) is
  // detached into a copy first — clear()/handler writes below would
  // otherwise invalidate the request mid-dispatch.
  void DispatchRpc(uint32_t id, std::string_view request, std::string* response) {
    ditto::MutexLock lock(&rpc_mu_);
    std::string detached;
    if (request.data() >= response->data() &&
        request.data() < response->data() + response->size()) {
      detached.assign(request);
      request = detached;
    }
    response->clear();
    handlers_.at(id)(request, response);
  }

 private:
  CostModel cost_;
  MemoryArena arena_;
  NicModel nic_;
  CpuModel cpu_;
  FaultState fault_;
  ditto::Mutex rpc_mu_;
  std::map<uint32_t, RpcHandler> handlers_ GUARDED_BY(rpc_mu_);
};

// Per-client-thread context. Not thread-safe; one instance per client thread.
class ClientContext {
 public:
  explicit ClientContext(uint32_t id, uint64_t seed = 0) : id_(id), rng_(Mix64(seed + id + 1)) {}

  uint32_t id() const { return id_; }
  VirtualClock& clock() { return clock_; }
  Rng& rng() { return rng_; }
  Histogram& op_hist() { return op_hist_; }

  uint64_t now_ns() const { return clock_.busy_ns(); }

  // Verb issue counters (for reporting and tests).
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t atomics = 0;
  uint64_t rpcs = 0;
  // Injected-failure counters: verbs that timed out, RPCs dropped, and verbs
  // refused because the target node was crashed.
  uint64_t verb_timeouts = 0;
  uint64_t rpc_drops = 0;
  uint64_t unavailable = 0;

 private:
  uint32_t id_;
  VirtualClock clock_;
  Rng rng_;
  Histogram op_hist_;
};

}  // namespace ditto::rdma

#endif  // DITTO_RDMA_NODE_H_
