// Verbs: a client's queue pair to one memory node. Implements the one-sided
// verb set the paper assumes (READ, WRITE, ATOMIC_CAS, ATOMIC_FAA) plus
// asynchronous/unsignalled variants and an RDMA-based RPC to the controller.
//
// Every verb performs the real memory operation on the node's arena and
// charges virtual time: NIC queueing delay + round-trip latency + payload
// serialization. Async verbs charge only the posting overhead to the client
// but still consume NIC capacity.
#ifndef DITTO_RDMA_VERBS_H_
#define DITTO_RDMA_VERBS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rdma/node.h"

namespace ditto::rdma {

class Verbs {
 public:
  Verbs(RemoteNode* node, ClientContext* ctx) : node_(node), ctx_(ctx) {}

  RemoteNode& node() { return *node_; }
  ClientContext& ctx() { return *ctx_; }

  void Read(uint64_t addr, void* dst, size_t len);
  void Write(uint64_t addr, const void* src, size_t len);
  // Posted without waiting for completion (unsignalled WRITE).
  void WriteAsync(uint64_t addr, const void* src, size_t len);

  // Returns the observed prior value (== expected iff swap succeeded).
  uint64_t CompareSwap(uint64_t addr, uint64_t expected, uint64_t desired);
  // Returns the prior value.
  uint64_t FetchAdd(uint64_t addr, uint64_t delta);
  // Posted FAA whose result the client does not wait for.
  void FetchAddAsync(uint64_t addr, uint64_t delta);

  // Two-sided RPC to the controller: two network messages + controller CPU.
  // service_us scales with handler weight; <= 0 uses the model default.
  std::string Rpc(uint32_t handler_id, std::string_view request, double service_us = -1.0);

  // Charges a client-local think/backoff time (e.g. 5us lock backoff or the
  // 500us miss penalty) without touching the network.
  void Sleep(double us) { ctx_->clock().AdvanceUs(us); }

  // Doorbell batching of asynchronous verbs. When enabled (max_pending > 0),
  // async WRITE/FAA posts apply their memory effect immediately (and still
  // count as posted WQEs on the context) but their network cost is deferred
  // into a pending chain on a dedicated metadata QP; posts to the same
  // address coalesce into one wire message. The chain is flushed — one
  // doorbell, one NIC message per distinct (kind, address) — when it
  // accumulates max_pending posts or on an explicit FlushBatch(). Batched
  // message count therefore never exceeds the unbatched count.
  void SetBatchOps(size_t max_pending);
  void FlushBatch();
  size_t batch_ops() const { return batch_max_; }
  size_t batch_pending() const { return pending_.size(); }

 private:
  struct PendingOp {
    uint8_t kind;  // 0 = WRITE, 1 = atomic (FAA)
    uint64_t addr;
    uint32_t bytes;
  };

  void ChargeSync(double rtt_us, double msg_cost, size_t bytes);
  void ChargeAsync(double msg_cost, size_t bytes);
  void EnqueueBatched(uint8_t kind, uint64_t addr, uint32_t bytes);

  RemoteNode* node_;
  ClientContext* ctx_;
  size_t batch_max_ = 0;    // 0 = batching disabled
  uint64_t batch_posts_ = 0;  // raw WQEs in the current chain (pre-merge)
  std::vector<PendingOp> pending_;
};

}  // namespace ditto::rdma

#endif  // DITTO_RDMA_VERBS_H_
