// Verbs: a client's queue pair to one memory node. Implements the one-sided
// verb set the paper assumes (READ, WRITE, ATOMIC_CAS, ATOMIC_FAA) plus
// asynchronous/unsignalled variants and an RDMA-based RPC to the controller.
//
// Every verb performs the real memory operation on the node's arena and
// charges virtual time: NIC queueing delay + round-trip latency + payload
// serialization. Async verbs charge only the posting overhead to the client
// but still consume NIC capacity.
//
// Signalled verbs are modelled with a completion queue: PostRead / PostWrite
// / PostCas / PostFaa apply the memory effect immediately (the simulator's
// memory operations are instantaneous and execute in program order), charge
// NIC occupancy at post time, and enqueue a completion whose timestamp is
//   post time + NIC queueing delay + round-trip latency + wire time.
// The blocking verbs (Read/Write/CompareSwap/FetchAdd) are exactly
// post + wait wrappers, so their cost model is unchanged; pipelined clients
// instead keep several posts in flight and consume completions with
// PollCq/WaitWr, which is what lets one client overlap K independent
// operations per QP (the paper's latency-hiding technique).
#ifndef DITTO_RDMA_VERBS_H_
#define DITTO_RDMA_VERBS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rdma/node.h"

namespace ditto::rdma {

// One completion-queue entry: the work request id returned by a Post* verb
// and the virtual time at which the verb completes at the client.
struct Completion {
  uint64_t wr_id = 0;
  uint64_t complete_ns = 0;
};

class Verbs {
 public:
  Verbs(RemoteNode* node, ClientContext* ctx) : node_(node), ctx_(ctx) {}

  RemoteNode& node() { return *node_; }
  ClientContext& ctx() { return *ctx_; }

  // --- Fault status ---------------------------------------------------------
  // When the node's FaultState is armed, any verb can fail: a failed Post*
  // returns wr id 0 (WaitWr(0) is a no-op), a failed READ zeroes the
  // destination buffer (the caller decodes an empty bucket / torn object, not
  // stale scratch), a failed CAS reports observed != expected, and a failed
  // RPC clears the response. The status below is STICKY across verbs — it
  // records the first failure since the last ClearStatus(), so a multi-verb
  // operation checks ok() once per stage instead of after every verb. Failed
  // verbs charge plan.timeout_us to the client's time base only; nothing
  // reaches the NIC or controller models.
  VerbStatus last_status() const { return last_status_; }
  bool ok() const { return last_status_ == VerbStatus::kOk; }
  void ClearStatus() { last_status_ = VerbStatus::kOk; }

  void Read(uint64_t addr, void* dst, size_t len);
  // Host-cache prefetch of remote memory this client is about to READ (the
  // simulator analogue of warming DDIO lines while a posted verb is in
  // flight). Free by construction: posts no verb, charges no virtual time,
  // counts no NIC message — verb accounting is bit-identical with or
  // without it.
  void PrefetchRead(uint64_t addr, size_t len) const;
  void Write(uint64_t addr, const void* src, size_t len);
  // Posted without waiting for completion (unsignalled WRITE).
  void WriteAsync(uint64_t addr, const void* src, size_t len);

  // Returns the observed prior value (== expected iff swap succeeded).
  uint64_t CompareSwap(uint64_t addr, uint64_t expected, uint64_t desired);
  // Returns the prior value.
  uint64_t FetchAdd(uint64_t addr, uint64_t delta);
  // Posted FAA whose result the client does not wait for.
  void FetchAddAsync(uint64_t addr, uint64_t delta);

  // --- Signalled asynchronous verbs (completion-queue model) ---------------
  // Each Post* performs the memory operation immediately, charges the NIC,
  // and returns a work-request id whose completion lands on this QP's CQ at
  //   now + NIC queueing + RTT + wire time.
  // The result of an atomic (observed/prior value) is written through the
  // out-pointer at post time; semantically the caller must not read it until
  // the completion is consumed. Posting itself does not advance the clock —
  // the blocking wrappers above are literally Post* + WaitWr, so one signalled
  // verb costs the same whether issued sync or async-then-waited.
  uint64_t PostRead(uint64_t addr, void* dst, size_t len);
  uint64_t PostWrite(uint64_t addr, const void* src, size_t len);
  uint64_t PostCas(uint64_t addr, uint64_t expected, uint64_t desired, uint64_t* observed);
  uint64_t PostFaa(uint64_t addr, uint64_t delta, uint64_t* prior);

  // Blocks (advances this QP's time base) until wr_id completes, removes it
  // from the CQ, and returns its completion timestamp. wr_id must be pending.
  // wr_id 0 — the id a fault-failed Post* returns — is a no-op that returns
  // the current time base, so resumable state machines can wait on a stored
  // wr without branching on whether the post succeeded.
  uint64_t WaitWr(uint64_t wr_id);

  // Pops the earliest-completing pending entry (ties broken by post order)
  // and advances the time base to its completion. Returns false on an empty
  // CQ. This is the generic consumption order: completions are delivered in
  // completion-time order, which for same-cost verbs equals post order.
  bool PollCq(Completion* out);

  // Pending (posted, not yet consumed) signalled verbs on this QP.
  size_t cq_depth() const { return cq_.size(); }

  // --- Pipelined-op timeline ----------------------------------------------
  // A pipelined client executes each operation on a detached timeline: after
  // BeginOp(start_ns), every time charge (verb waits, async posting overhead,
  // RPC service, Sleep) advances the op cursor instead of the client's real
  // clock, and NIC occupancy is charged at cursor time. EndOp() returns the
  // op's completion timestamp and re-attaches the QP to the client clock.
  // The caller advances the real clock only when it RETIRES the op
  // (VirtualClock::AdvanceToNs), which is what lets K ops overlap in virtual
  // time while the cache logic itself still executes in issue order — the
  // property that keeps hit rates bit-identical across pipeline depths.
  void BeginOp(uint64_t start_ns);
  uint64_t EndOp();
  bool in_op() const { return in_op_; }
  uint64_t op_cursor_ns() const { return op_cursor_; }

  // Two-sided RPC to the controller: two network messages + controller CPU.
  // service_us scales with handler weight; <= 0 uses the model default.
  // The caller-buffer overload is the hot-path form: the handler renders its
  // response directly into *response (whose capacity is reused across calls),
  // so steady-state RPCs allocate nothing on the client.
  void Rpc(uint32_t handler_id, std::string_view request, std::string* response,
           double service_us = -1.0);
  std::string Rpc(uint32_t handler_id, std::string_view request, double service_us = -1.0);

  // Charges a client-local think/backoff time (e.g. 5us lock backoff or the
  // 500us miss penalty) without touching the network.
  void Sleep(double us) { AdvanceBaseNs(static_cast<uint64_t>(us * 1000.0)); }

  // Doorbell batching of asynchronous verbs. When enabled (max_pending > 0),
  // async WRITE/FAA posts apply their memory effect immediately (and still
  // count as posted WQEs on the context) but their network cost is deferred
  // into a pending chain on a dedicated metadata QP; posts to the same
  // address coalesce into one wire message. The chain is flushed — one
  // doorbell, one NIC message per distinct (kind, address) — when it
  // accumulates max_pending posts or on an explicit FlushBatch(). Batched
  // message count therefore never exceeds the unbatched count.
  void SetBatchOps(size_t max_pending);
  void FlushBatch();
  size_t batch_ops() const { return batch_max_; }
  size_t batch_pending() const { return pending_.size(); }

 private:
  struct PendingOp {
    uint8_t kind;  // 0 = WRITE, 1 = atomic (FAA)
    uint64_t addr;
    uint32_t bytes;
  };

  // The QP's current time base: the op cursor while a pipelined op is being
  // executed, the client's virtual clock otherwise.
  uint64_t base_now_ns() const { return in_op_ ? op_cursor_ : ctx_->now_ns(); }
  void AdvanceBaseNs(uint64_t ns);
  void AdvanceBaseToNs(uint64_t ns);

  // Shared Post* body: charges the NIC at base-now and enqueues the
  // completion entry. Returns the new wr id.
  uint64_t PostSignalled(double rtt_us, double msg_cost, size_t bytes);

  // Returns true (and records *status) if the fault layer fails this verb:
  // the node is crashed at the current time base, or a deterministic draw
  // lands under the plan's probability for this kind. Charges the plan's
  // timeout budget to the client time base and bumps the matching context
  // counter. `prob` selects the probabilistic leg (verb vs RPC drop).
  bool FaultFail(double prob, VerbStatus prob_status);
  // Deterministic per-QP uniform draw in [0,1): a pure function of
  // (plan.seed, ctx id, ++fault_draws_).
  double FaultDraw();

  void ChargeAsync(double msg_cost, size_t bytes);
  void EnqueueBatched(uint8_t kind, uint64_t addr, uint32_t bytes);

  RemoteNode* node_;
  ClientContext* ctx_;
  size_t batch_max_ = 0;    // 0 = batching disabled
  uint64_t batch_posts_ = 0;  // raw WQEs in the current chain (pre-merge)
  std::vector<PendingOp> pending_;

  uint64_t next_wr_ = 1;        // 0 is reserved for "no wr"
  std::vector<Completion> cq_;  // pending completions (unsorted; CQs are short)
  bool in_op_ = false;
  uint64_t op_cursor_ = 0;
  VerbStatus last_status_ = VerbStatus::kOk;
  uint64_t fault_draws_ = 0;  // advances only when a probabilistic leg is armed
};

}  // namespace ditto::rdma

#endif  // DITTO_RDMA_VERBS_H_
