#include "rdma/arena.h"

#include <cassert>

namespace ditto::rdma {

MemoryArena::MemoryArena(size_t size_bytes) : size_((size_bytes + 7) & ~size_t{7}) {
  cells_ = std::make_unique<std::atomic<uint64_t>[]>(size_ / 8);
  for (size_t i = 0; i < size_ / 8; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

std::atomic<uint64_t>* MemoryArena::CellFor(uint64_t addr) {
  assert(addr < size_);
  return &cells_[addr / 8];
}

const std::atomic<uint64_t>* MemoryArena::CellFor(uint64_t addr) const {
  assert(addr < size_);
  return &cells_[addr / 8];
}

// ditto-lint: hot-path-begin(arena-copy)
// Read/Write are under every simulated verb: one bucket READ copies 320 B
// through here per lookup. Nothing in these loops may allocate.
void MemoryArena::Read(uint64_t addr, void* dst, size_t len) const {
  assert(addr + len <= size_);
  auto* out = static_cast<uint8_t*>(dst);
  uint64_t cur = addr;
  size_t remaining = len;
  // Aligned bulk path: whole cells copy in a tight loop with none of the
  // edge-word offset math below. Bucket (320 B) and object READs are
  // 8-aligned, so the hot path runs entirely here.
  if ((cur & 7) == 0) {
    const std::atomic<uint64_t>* cell = &cells_[cur / 8];
    for (; remaining >= 8; remaining -= 8, cur += 8, out += 8, ++cell) {
      const uint64_t word = cell->load(std::memory_order_acquire);
      std::memcpy(out, &word, 8);
    }
  }
  while (remaining > 0) {
    const uint64_t word_base = cur & ~uint64_t{7};
    const size_t offset = cur - word_base;
    const size_t chunk = std::min(remaining, 8 - offset);
    const uint64_t word = CellFor(word_base)->load(std::memory_order_acquire);
    std::memcpy(out, reinterpret_cast<const uint8_t*>(&word) + offset, chunk);
    out += chunk;
    cur += chunk;
    remaining -= chunk;
  }
}

void MemoryArena::Write(uint64_t addr, const void* src, size_t len) {
  assert(addr + len <= size_);
  const auto* in = static_cast<const uint8_t*>(src);
  uint64_t cur = addr;
  size_t remaining = len;
  // Aligned bulk path, mirroring Read: object WRITEs are 8-aligned and
  // multi-hundred-byte, so the offset/edge math below is tail-only.
  if ((cur & 7) == 0) {
    std::atomic<uint64_t>* cell = &cells_[cur / 8];
    for (; remaining >= 8; remaining -= 8, cur += 8, in += 8, ++cell) {
      uint64_t word;
      std::memcpy(&word, in, 8);
      cell->store(word, std::memory_order_release);
    }
  }
  while (remaining > 0) {
    const uint64_t word_base = cur & ~uint64_t{7};
    const size_t offset = cur - word_base;
    const size_t chunk = std::min(remaining, 8 - offset);
    auto* cell = CellFor(word_base);
    if (chunk == 8) {
      uint64_t word;
      std::memcpy(&word, in, 8);
      cell->store(word, std::memory_order_release);
    } else {
      // Read-modify-write the edge word; CAS loop keeps concurrent edge
      // writers from losing bytes outside their range.
      uint64_t old_word = cell->load(std::memory_order_relaxed);
      uint64_t new_word;
      do {
        new_word = old_word;
        std::memcpy(reinterpret_cast<uint8_t*>(&new_word) + offset, in, chunk);
      } while (!cell->compare_exchange_weak(old_word, new_word, std::memory_order_release,
                                            std::memory_order_relaxed));
    }
    in += chunk;
    cur += chunk;
    remaining -= chunk;
  }
}
// ditto-lint: hot-path-end(arena-copy)

uint64_t MemoryArena::CompareSwap(uint64_t addr, uint64_t expected, uint64_t desired) {
  assert(addr % 8 == 0 && addr + 8 <= size_);
  uint64_t observed = expected;
  CellFor(addr)->compare_exchange_strong(observed, desired, std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  return observed;
}

uint64_t MemoryArena::FetchAdd(uint64_t addr, uint64_t delta) {
  assert(addr % 8 == 0 && addr + 8 <= size_);
  return CellFor(addr)->fetch_add(delta, std::memory_order_acq_rel);
}

uint64_t MemoryArena::ReadU64(uint64_t addr) const {
  assert(addr % 8 == 0 && addr + 8 <= size_);
  return CellFor(addr)->load(std::memory_order_acquire);
}

void MemoryArena::WriteU64(uint64_t addr, uint64_t value) {
  assert(addr % 8 == 0 && addr + 8 <= size_);
  CellFor(addr)->store(value, std::memory_order_release);
}

}  // namespace ditto::rdma
