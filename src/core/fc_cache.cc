#include "core/fc_cache.h"

namespace ditto::core {
namespace {
// Fixed per-entry bookkeeping bytes: slot address + delta + insert time.
constexpr size_t kEntryOverheadBytes = 24;
}  // namespace

void FcCache::RecordAccess(uint64_t slot_addr, size_t object_id_bytes) {
  if (!enabled_) {
    // Ablation passthrough: the FAA goes out per access without ever being
    // buffered, so it is not a flush — counting it skewed the flush metric
    // the benches compare against the enabled mode.
    table_->AddFreqAsync(slot_addr, 1);
    return;
  }
  auto [it, inserted] = entries_.try_emplace(slot_addr);
  Entry& entry = it->second;
  if (inserted) {
    entry.insert_seq = seq_++;
    entry.bytes = object_id_bytes + kEntryOverheadBytes;
    bytes_used_ += entry.bytes;
    fifo_.push_back(slot_addr);
  }
  entry.delta++;
  if (entry.delta >= static_cast<uint64_t>(threshold_)) {
    FlushEntry(slot_addr);
  }
  // Capacity eviction runs on every access — a threshold-flush access used to
  // skip it, which could leave bytes_used_ above capacity_bytes_ until the
  // next sub-threshold access.
  while (bytes_used_ > capacity_bytes_ && !entries_.empty()) {
    EvictOldest();
  }
  FlushAged();
}

void FcCache::FlushAged() {
  if (max_age_accesses_ == 0) {
    return;
  }
  // Amortized O(1): drain stale FIFO heads whose entries have lagged behind
  // the remote counter for too long.
  while (!fifo_.empty()) {
    const uint64_t addr = fifo_.front();
    const auto it = entries_.find(addr);
    if (it == entries_.end()) {
      fifo_.pop_front();  // stale FIFO record of an already-flushed entry
      continue;
    }
    if (seq_ - it->second.insert_seq < max_age_accesses_) {
      break;
    }
    fifo_.pop_front();
    FlushEntry(addr);
  }
}

void FcCache::FlushEntry(uint64_t slot_addr) {
  const auto it = entries_.find(slot_addr);
  if (it == entries_.end()) {
    return;
  }
  if (it->second.delta > 0) {
    table_->AddFreqAsync(slot_addr, it->second.delta);
    flushes_++;
  }
  bytes_used_ -= it->second.bytes;
  entries_.erase(it);
}

void FcCache::EvictOldest() {
  while (!fifo_.empty()) {
    const uint64_t addr = fifo_.front();
    fifo_.pop_front();
    if (entries_.count(addr) > 0) {
      FlushEntry(addr);
      return;
    }
  }
}

void FcCache::FlushAll() {
  while (!entries_.empty()) {
    FlushEntry(entries_.begin()->first);
  }
  fifo_.clear();
}

}  // namespace ditto::core
