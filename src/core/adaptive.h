// Distributed adaptive caching (paper §4.3): expert weights adjusted by
// regret minimization, with the lazy weight update scheme of §4.3.2.
//
// AdaptiveController is the memory-node side: it owns the authoritative
// expert weights and serves the batched-penalty RPC. AdaptiveState is the
// client side: it keeps a local copy of the weights for eviction decisions,
// applies penalties locally as regrets are found, buffers the (compressed,
// i.e. summed) penalties, and lazily flushes them to the controller every
// `penalty_batch` regrets, replacing the local weights with the returned
// global ones.
#ifndef DITTO_CORE_ADAPTIVE_H_
#define DITTO_CORE_ADAPTIVE_H_

#include <cmath>
#include <memory>
#include <vector>

#include "common/rand.h"
#include "common/thread_annotations.h"
#include "dm/pool.h"
#include "rdma/verbs.h"

namespace ditto::core {

struct AdaptiveConfig {
  int num_experts = 2;
  double learning_rate = 0.1;     // lambda
  double discount_base = 0.005;   // d = discount_base^(1/N), N = cache size
  uint64_t cache_size_objects = 1;
  int penalty_batch = 100;        // regrets buffered before the lazy flush
  bool lazy = true;               // false: flush on every regret (ablation)
};

// Host-side controller. Register exactly one per memory pool before clients
// start issuing weight-update RPCs.
class AdaptiveController {
 public:
  AdaptiveController(dm::MemoryPool* pool, int num_experts);

  std::vector<double> weights() const;
  // The counters are written under mu_ by the RPC handler; unlocked reads
  // here were a (benign-looking) race the thread-safety analysis flags.
  uint64_t updates_received() const {
    MutexLock lock(&mu_);
    return updates_;
  }
  // Malformed weight-update payloads rejected (wrong length, non-finite).
  uint64_t updates_rejected() const {
    MutexLock lock(&mu_);
    return rejected_;
  }

 private:
  void HandleUpdate(std::string_view request, std::string* response);

  mutable Mutex mu_;
  std::vector<double> weights_ GUARDED_BY(mu_);
  uint64_t updates_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_ GUARDED_BY(mu_) = 0;
};

// Per-client adaptive state.
class AdaptiveState {
 public:
  AdaptiveState(const AdaptiveConfig& config, rdma::Verbs* verbs);

  // Weight-proportional random choice of the deciding expert.
  int ChooseExpert(Rng& rng) const;

  // A regret was found: the missed object's history entry names the experts
  // in `bmap` and sits `age` entries deep in the logical FIFO queue.
  void OnRegret(uint64_t bmap, uint64_t age);

  // Penalty magnitude d^age (public for tests).
  double DiscountedPenalty(uint64_t age) const;

  const std::vector<double>& local_weights() const { return weights_; }
  uint64_t flushes() const { return flushes_; }

  // Forces a flush of buffered penalties (end of run).
  void Flush();

 private:
  void ApplyLocally(uint64_t bmap, double penalty);

  AdaptiveConfig config_;
  rdma::Verbs* verbs_;
  std::vector<double> weights_;
  std::vector<double> pending_penalties_;
  int pending_count_ = 0;
  uint64_t flushes_ = 0;
  double log_discount_;  // ln(d) = ln(base)/N
  // RPC scratch reused across flushes: the weight-update RPC sits on the
  // miss path, so steady-state flushes must not allocate.
  std::string rpc_request_;
  std::string rpc_response_;
};

}  // namespace ditto::core

#endif  // DITTO_CORE_ADAPTIVE_H_
