#include "core/cluster.h"

#include <algorithm>

#include "common/hash.h"
#include "core/object.h"
#include "hashtable/hash_table.h"

namespace ditto::core {

namespace {
// Slots fetched per migration READ: 64 slots = 2560 B, comfortably one
// segment-sized READ, so a full table sweep costs num_slots/64 messages plus
// one object READ per misplaced object.
constexpr int kMigrateChunkSlots = 64;
}  // namespace

ClusterPool::ClusterPool(const ClusterConfig& config)
    : config_(config),
      ring_(static_cast<uint32_t>(config.nodes), config.partition_seed) {
  generations_owned_ =
      std::make_unique<std::atomic<uint64_t>[]>(static_cast<size_t>(config_.nodes));
  generations_ = generations_owned_.get();
  pools_.reserve(static_cast<size_t>(config_.nodes));
  servers_.reserve(static_cast<size_t>(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    pools_.push_back(std::make_unique<dm::MemoryPool>(config_.pool));
    servers_.push_back(std::make_unique<DittoServer>(pools_.back().get(), config_.ditto));
    rdma::FaultState& fault = pools_.back()->node().fault();
    fault.Configure(config_.fault);
    // Always armed: scheduled Crash() must take effect even under an empty
    // plan. The armed fast path costs one relaxed load per verb and draws no
    // randomness while every probability is zero, so verb accounting stays
    // bit-identical to an unarmed pool.
    fault.Arm();
  }
}

void ClusterPool::ConfigureNodeFault(int i, const rdma::FaultPlan& plan) {
  pools_[static_cast<size_t>(i)]->node().fault().Configure(plan);
}

void ClusterPool::Crash(int i) {
  pools_[static_cast<size_t>(i)]->node().fault().Crash();
  ring_.SwapRemove(static_cast<uint32_t>(i));
}

void ClusterPool::Restart(int i) {
  dm::MemoryPool& pool = *pools_[static_cast<size_t>(i)];
  pool.WipeForRestart();
  pool.node().fault().Restart();
  // Publish the wipe BEFORE the node rejoins the ring: a client routed to the
  // fresh node must recreate its per-node state (allocator segment caches
  // from before the wipe would double-allocate the new heap).
  generations_[static_cast<size_t>(i)].fetch_add(1, std::memory_order_release);
  ring_.SwapAdd(static_cast<uint32_t>(i));
}

void ClusterPool::Leave(int i) { ring_.SwapRemove(static_cast<uint32_t>(i)); }

void ClusterPool::Join(int i) { ring_.SwapAdd(static_cast<uint32_t>(i)); }

bool ClusterPool::ClaimStep(uint64_t step_index) {
  MutexLock lock(&step_mu_);
  if (step_index < steps_claimed_) {
    return false;
  }
  steps_claimed_ = step_index + 1;
  return true;
}

uint64_t ClusterPool::cached_objects() const {
  uint64_t total = 0;
  for (const auto& pool : pools_) {
    total += pool->cached_objects();
  }
  return total;
}

// --- ClusterClient ----------------------------------------------------------

ClusterClient::ClusterClient(ClusterPool* pool, rdma::ClientContext* ctx,
                             const DittoConfig& config)
    : pool_(pool), ctx_(ctx), ditto_config_(config) {
  const int n = pool->num_nodes();
  clients_.resize(static_cast<size_t>(n));
  local_gen_.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    RefreshNode(i);
  }
  mig_buf_.resize(static_cast<size_t>(dm::kMaxRunBlocks) * dm::kBlockBytes);
}

DittoClient* ClusterClient::ClientFor(int node) {
  const size_t i = static_cast<size_t>(node);
  if (local_gen_[i] != pool_->generation(node)) {
    RefreshNode(node);
  }
  return clients_[i].get();
}

void ClusterClient::RefreshNode(int node) {
  const size_t i = static_cast<size_t>(node);
  if (clients_[i] != nullptr) {
    // Keep the retired client's non-logical counters: the wipe destroys the
    // client, not the history of what it did.
    const DittoStats& s = clients_[i]->stats();
    retired_.evictions += s.evictions;
    retired_.expired += s.expired;
    retired_.regrets += s.regrets;
    retired_.set_retries += s.set_retries;
    retired_.cas_failures += s.cas_failures;
    retired_.insert_retries += s.insert_retries;
    retired_.dup_resolved += s.dup_resolved;
  }
  clients_[i] = std::make_unique<DittoClient>(&pool_->node(node), ctx_, ditto_config_);
  if (batch_ops_ > 0) {
    clients_[i]->SetBatchOps(batch_ops_);
  }
  local_gen_[i] = pool_->generation(node);
}

void ClusterClient::RefreshAll() {
  for (int i = 0; i < pool_->num_nodes(); ++i) {
    ClientFor(i);
  }
}

void ClusterClient::Backoff(int attempt) {
  const double us =
      pool_->config().backoff_base_us * static_cast<double>(uint64_t{1} << attempt);
  ctx_->clock().AdvanceNs(static_cast<uint64_t>(us * 1000.0));
}

template <typename Op>
bool ClusterClient::RetryLoop(uint64_t hash, Op&& attempt) {
  last_unavailable_ = false;
  const int max_attempts = pool_->config().max_retries + 1;
  for (int a = 0; a < max_attempts; ++a) {
    if (a > 0) {
      Backoff(a - 1);
    }
    const int node = pool_->ring().NodeFor(hash);
    if (node < 0) {
      break;  // no live node: retrying cannot help
    }
    DittoClient* client = ClientFor(node);
    client->verbs().ClearStatus();
    const bool outcome = attempt(client);
    if (client->verbs().ok()) {
      return outcome;
    }
  }
  last_unavailable_ = true;
  return false;
}

bool ClusterClient::Get(std::string_view key, std::string* value) {
  const bool hit =
      RetryLoop(HashKey(key), [&](DittoClient* c) { return c->Get(key, value); });
  ops_.gets++;
  if (hit) {
    ops_.hits++;
  } else {
    ops_.misses++;
  }
  return hit;
}

bool ClusterClient::Set(std::string_view key, std::string_view value, uint64_t ttl_ticks) {
  // Safe to republish on retry: Set is an upsert, and a first attempt that
  // failed mid-publish left either nothing or a CAS-visible object the retry
  // simply updates.
  const bool stored = RetryLoop(
      HashKey(key), [&](DittoClient* c) { return c->Set(key, value, ttl_ticks); });
  ops_.sets++;
  return stored;
}

bool ClusterClient::Delete(std::string_view key) {
  const bool deleted =
      RetryLoop(HashKey(key), [&](DittoClient* c) { return c->Delete(key); });
  if (deleted) {
    ops_.deletes++;
  }
  return deleted;
}

bool ClusterClient::Expire(std::string_view key, uint64_t ttl_ticks) {
  return RetryLoop(HashKey(key),
                   [&](DittoClient* c) { return c->Expire(key, ttl_ticks); });
}

size_t ClusterClient::MultiGet(size_t n, const std::string_view* keys,
                               std::string* const* values, bool* hits) {
  const size_t num_nodes = static_cast<size_t>(pool_->num_nodes());
  mg_by_node_.resize(num_nodes);
  for (std::vector<size_t>& idxs : mg_by_node_) {
    idxs.clear();
  }
  mg_unavail_.assign(n, 0);
  const RingEpoch* ring = pool_->ring().current();
  for (size_t i = 0; i < n; ++i) {
    const int node = ring->NodeFor(HashKey(keys[i]));
    if (node < 0) {
      mg_unavail_[i] = 1;
      if (hits != nullptr) {
        hits[i] = false;
      }
      continue;
    }
    mg_by_node_[static_cast<size_t>(node)].push_back(i);
  }
  if (mg_hits_cap_ < n) {
    mg_hits_cap_ = std::max(n, mg_hits_cap_ * 2);
    mg_hits_ = std::make_unique<bool[]>(mg_hits_cap_);
  }
  size_t hit_count = 0;
  for (size_t node = 0; node < num_nodes; ++node) {
    const std::vector<size_t>& idxs = mg_by_node_[node];
    if (idxs.empty()) {
      continue;
    }
    mg_keys_.clear();
    mg_values_.clear();
    for (const size_t i : idxs) {
      mg_keys_.push_back(keys[i]);
      mg_values_.push_back(values == nullptr ? nullptr : values[i]);
    }
    DittoClient* client = ClientFor(static_cast<int>(node));
    client->verbs().ClearStatus();
    const size_t run_hits =
        client->MultiGet(idxs.size(), mg_keys_.data(),
                         values == nullptr ? nullptr : mg_values_.data(), mg_hits_.get());
    if (client->verbs().ok()) {
      hit_count += run_hits;
      if (hits != nullptr) {
        for (size_t j = 0; j < idxs.size(); ++j) {
          hits[idxs[j]] = mg_hits_[j];
        }
      }
      continue;
    }
    // The chained run hit a fault: fall back to per-key retried Gets so each
    // key gets the full retry/re-route policy.
    for (const size_t i : idxs) {
      std::string* out = values == nullptr ? nullptr : values[i];
      const bool hit =
          RetryLoop(HashKey(keys[i]), [&](DittoClient* c) { return c->Get(keys[i], out); });
      if (last_unavailable_) {
        mg_unavail_[i] = 1;
      }
      if (hits != nullptr) {
        hits[i] = hit;
      }
      hit_count += hit ? 1 : 0;
    }
  }
  ops_.gets += n;
  ops_.hits += hit_count;
  ops_.misses += n - hit_count;
  return hit_count;
}

bool ClusterClient::ResizeCapacity(uint64_t total_capacity_objects) {
  last_total_capacity_ = total_capacity_objects;
  const RingEpoch* ring = pool_->ring().current();
  const std::vector<uint32_t>& live = ring->live();
  if (live.empty()) {
    return false;
  }
  bool ok = true;
  for (size_t p = 0; p < live.size(); ++p) {
    DittoClient* client = ClientFor(static_cast<int>(live[p]));
    client->verbs().ClearStatus();
    const bool resized =
        client->ResizeCapacity(dm::CapacityShare(total_capacity_objects, p, live.size()));
    ok = (resized && client->verbs().ok()) && ok;
  }
  return ok;
}

void ClusterClient::ResplitCapacity() {
  if (last_total_capacity_ != 0) {
    ResizeCapacity(last_total_capacity_);
  }
}

template <typename Step>
void ClusterClient::ApplyStep(Step&& step) {
  const uint64_t idx = local_steps_seen_++;
  if (pool_->ClaimStep(idx)) {
    step();
    // Survivors absorb the share of departed nodes (and newcomers get
    // theirs): re-apply the last aggregate capacity over the new live set.
    ResplitCapacity();
  }
  RefreshAll();
}

void ClusterClient::ApplyCrash(uint32_t node) {
  ApplyStep([&] { pool_->Crash(static_cast<int>(node)); });
}

void ClusterClient::ApplyRestart(uint32_t node) {
  ApplyStep([&] {
    pool_->Restart(static_cast<int>(node));
    // Recreate our client for the wiped node before migration writes to it.
    RefreshNode(static_cast<int>(node));
    MigrateInto(node);
  });
}

void ClusterClient::ApplyLeave(uint32_t node) {
  ApplyStep([&] {
    // Remove from the ring FIRST so concurrent Sets route to the new owners,
    // then drain: the departing node stays healthy, just unrouted.
    pool_->Leave(static_cast<int>(node));
    MigrateMisplaced(static_cast<int>(node));
  });
}

void ClusterClient::ApplyJoin(uint32_t node) {
  ApplyStep([&] {
    pool_->Join(static_cast<int>(node));
    MigrateInto(node);
  });
}

void ClusterClient::MigrateInto(uint32_t node) {
  const RingEpoch* ring = pool_->ring().current();
  for (const uint32_t src : ring->live()) {
    if (src == node) {
      continue;
    }
    MigrateMisplaced(static_cast<int>(src));
  }
}

uint64_t ClusterClient::MigrateMisplaced(int src) {
  DittoClient* src_client = ClientFor(src);
  rdma::Verbs& verbs = src_client->verbs();
  ht::HashTable table(&pool_->node(src), &verbs);
  const RingEpoch* ring = pool_->ring().current();
  const uint64_t now = pool_->node(src).clock().Now();
  const uint64_t total_slots = table.num_slots();
  uint64_t moved = 0;
  // Chunk-wise table sweep. The slot metadata carries each object's full key
  // hash, so only objects whose ring owner moved pay an object READ; objects
  // are re-homed with a normal Set on the new owner (fresh policy metadata —
  // access history does not survive migration) followed by a Delete on the
  // source. A torn object READ (the object was concurrently deleted, moved,
  // or the node faulted) fails the checksum and is skipped; ReadSlots-level
  // faults skip the chunk. Racing writers are safe: Set/Delete go through the
  // CAS-published paths, and a re-scan of an already-moved slot finds it
  // empty.
  // ditto-lint: hot-path-begin(migrate-copy)
  for (uint64_t start = 0; start < total_slots; start += kMigrateChunkSlots) {
    const int count = static_cast<int>(
        std::min<uint64_t>(kMigrateChunkSlots, total_slots - start));
    verbs.ClearStatus();
    if (!table.ReadSlots(start, count, &mig_slots_) || !verbs.ok()) {
      continue;
    }
    for (const ht::SlotView& slot : mig_slots_) {
      if (!slot.IsObject()) {
        continue;
      }
      const int owner = ring->NodeFor(slot.hash);
      if (owner < 0 || owner == src) {
        continue;
      }
      const int blocks = slot.size_blocks();
      if (blocks <= 0 || blocks > dm::kMaxRunBlocks) {
        continue;
      }
      const size_t len = static_cast<size_t>(blocks) * dm::kBlockBytes;
      verbs.ClearStatus();
      verbs.Read(slot.pointer(), mig_buf_.data(), len);
      if (!verbs.ok()) {
        continue;
      }
      DecodedObject obj;
      if (!DecodeObject(mig_buf_.data(), len, &obj)) {
        continue;  // torn or stale: checksum rejected it
      }
      if (obj.ExpiredAt(now)) {
        continue;
      }
      uint64_t ttl = 0;
      if (obj.expiry_tick != 0) {
        if (obj.expiry_tick <= now) {
          continue;
        }
        ttl = obj.expiry_tick - now;
      }
      DittoClient* dst = ClientFor(owner);
      dst->verbs().ClearStatus();
      if (!dst->Set(obj.key, obj.value, ttl) || !dst->verbs().ok()) {
        continue;  // destination full or faulted: leave the source copy
      }
      src_client->Delete(obj.key);
      ++moved;
    }
  }
  // ditto-lint: hot-path-end(migrate-copy)
  pool_->AddMigrated(moved);
  migrated_ += moved;
  return moved;
}

void ClusterClient::FlushBuffers() {
  for (const auto& client : clients_) {
    client->FlushBuffers();
  }
}

void ClusterClient::SetBatchOps(size_t ops) {
  batch_ops_ = ops;
  for (const auto& client : clients_) {
    client->SetBatchOps(ops);
  }
}

void ClusterClient::BeginPipelinedOp(uint64_t start_ns) {
  RefreshAll();
  for (const auto& client : clients_) {
    client->BeginPipelinedOp(start_ns);
  }
}

uint64_t ClusterClient::EndPipelinedOp() {
  uint64_t complete_ns = 0;
  for (const auto& client : clients_) {
    complete_ns = std::max(complete_ns, client->EndPipelinedOp());
  }
  return complete_ns;
}

DittoStats ClusterClient::stats() const {
  DittoStats total = retired_;
  for (const auto& client : clients_) {
    const DittoStats& s = client->stats();
    total.evictions += s.evictions;
    total.expired += s.expired;
    total.regrets += s.regrets;
    total.set_retries += s.set_retries;
    total.cas_failures += s.cas_failures;
    total.insert_retries += s.insert_retries;
    total.dup_resolved += s.dup_resolved;
  }
  // Logical once-per-op counters: retried attempts and migration traffic do
  // not inflate the op mix the client actually served.
  total.gets = ops_.gets;
  total.hits = ops_.hits;
  total.misses = ops_.misses;
  total.sets = ops_.sets;
  total.deletes = ops_.deletes;
  return total;
}

void ClusterClient::ResetStats() {
  ops_ = DittoStats{};
  retired_ = DittoStats{};
  for (const auto& client : clients_) {
    client->ResetStats();
  }
}

}  // namespace ditto::core
