#include "core/ditto_client.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "common/hash.h"

namespace ditto::core {
namespace {

constexpr uint64_t kMask48 = (uint64_t{1} << 48) - 1;
constexpr uint64_t kMinusOne = ~uint64_t{0};
// Scratch area in the superblock used to emulate the verb traffic of a
// non-embedded history (ablation mode, see ChargeExternalHistory*).
constexpr uint64_t kExternalHistScratch = 512;

}  // namespace

DittoClient::DittoClient(dm::MemoryPool* pool, rdma::ClientContext* ctx,
                         const DittoConfig& config)
    : pool_(pool),
      ctx_(ctx),
      config_(config),
      verbs_(&pool->node(), ctx),
      table_(pool, &verbs_),
      alloc_(pool, &verbs_) {
  assert(!config_.experts.empty());
  for (const std::string& name : config_.experts) {
    auto policy = policy::MakePolicy(name);
    assert(policy != nullptr && "unknown caching algorithm");
    total_ext_words_ += policy->extension_words();
    experts_.push_back(std::move(policy));
  }
  assert(total_ext_words_ <= policy::Metadata::kMaxExtensionWords);

  AdaptiveConfig acfg;
  acfg.num_experts = static_cast<int>(experts_.size());
  acfg.learning_rate = config_.learning_rate;
  acfg.discount_base = config_.discount_base;
  acfg.cache_size_objects = std::max<uint64_t>(1, pool->capacity_objects());
  acfg.penalty_batch = config_.penalty_batch;
  acfg.lazy = config_.enable_lazy_weights;
  adaptive_ = std::make_unique<AdaptiveState>(acfg, &verbs_);

  fc_ = std::make_unique<FcCache>(&table_, config_.fc_threshold, config_.fc_capacity_bytes,
                                  config_.enable_fc_cache, config_.fc_max_age_accesses);
}

DittoClient::SuperblockView DittoClient::DecodeSuperblock(const uint64_t raw[4]) {
  return SuperblockView{raw[0], raw[1], raw[2], raw[3]};
}

DittoClient::SuperblockView DittoClient::ReadSuperblock() {
  uint64_t raw[4];
  verbs_.Read(dm::kHistCounterAddr, raw, sizeof(raw));
  return DecodeSuperblock(raw);
}

uint64_t DittoClient::NowTick() { return pool_->clock().Tick(); }

bool DittoClient::CasSlot(uint64_t slot_addr, uint64_t expected, uint64_t desired) {
  if (table_.CasAtomic(slot_addr, expected, desired)) {
    return true;
  }
  stats_.cas_failures++;
  return false;
}

void DittoClient::ResolveDuplicates(uint64_t bucket, uint64_t hash, uint8_t fp) {
  table_.ReadBucket(bucket, &dedup_buf_);
  int canonical = -1;
  for (int i = 0; i < table_.slots_per_bucket(); ++i) {
    const ht::SlotView& slot = dedup_buf_[i];
    if (!ht::MatchesObject(slot, fp, hash)) {
      continue;
    }
    if (canonical < 0) {
      canonical = i;  // lowest index wins: the same rule on every client
      continue;
    }
    // A duplicate copy from a concurrent insert race. Reclaim it; losing the
    // CAS means another resolver (or a Delete) got there first.
    if (CasSlot(table_.BucketSlotAddr(bucket, i), slot.atomic_word, 0)) {
      alloc_.FreeBlocks(slot.pointer(), slot.size_blocks());
      verbs_.FetchAddAsync(dm::kObjectCountAddr, kMinusOne);
      stats_.dup_resolved++;
    }
  }
}

policy::Metadata DittoClient::MetadataFor(const ht::SlotView& slot, const uint64_t* ext) const {
  policy::Metadata meta;
  meta.hash = slot.hash;
  meta.insert_ts = slot.insert_ts;
  meta.last_ts = slot.last_ts;
  meta.freq = slot.freq;
  meta.size_bytes = static_cast<uint32_t>(slot.size_blocks()) * dm::kBlockBytes;
  meta.now = pool_->clock().Now();
  if (ext != nullptr) {
    std::copy(ext, ext + policy::Metadata::kMaxExtensionWords, meta.ext);
  }
  return meta;
}

void DittoClient::TouchObject(uint64_t slot_addr, const ht::SlotView& slot,
                              const DecodedObject* obj, uint64_t obj_addr) {
  const uint64_t now = NowTick();
  // Stateless metadata: one combined async WRITE (the SFHT grouping).
  table_.WriteLastTsAsync(slot_addr, now);
  if (!config_.enable_sfht) {
    // Without the sample-friendly layout the stateless fields are scattered:
    // model the extra ungrouped metadata WRITE on the data path.
    verbs_.WriteAsync(slot_addr + ht::kInsertTsOff, &slot.insert_ts, 8);
  }
  // Stateful frequency counter via the FC cache.
  fc_->RecordAccess(slot_addr, 16);

  // Algorithm-specific extension metadata, persisted with the object.
  if (total_ext_words_ > 0 && obj != nullptr && obj->header.ext_words > 0) {
    policy::Metadata meta = MetadataFor(slot, obj->ext);
    meta.freq++;  // the access being recorded
    meta.last_ts = now;
    meta.now = now;
    int base = 0;
    uint64_t updated[policy::Metadata::kMaxExtensionWords];
    std::copy(meta.ext, meta.ext + policy::Metadata::kMaxExtensionWords, updated);
    for (const auto& expert : experts_) {
      const int words = expert->extension_words();
      if (words == 0) {
        continue;
      }
      policy::Metadata view = meta;
      std::copy(updated + base, updated + base + words, view.ext);
      expert->Update(view);
      std::copy(view.ext, view.ext + words, updated + base);
      base += words;
    }
    verbs_.WriteAsync(obj_addr + kExtWordsOff, updated,
                      static_cast<size_t>(obj->header.ext_words) * 8);
  }
}

bool DittoClient::Get(std::string_view key, std::string* value) {
  GetOp op;
  StartGet(&op, key, value);
  while (!StepGet(&op)) {
  }
  return op.hit;
}

void DittoClient::StartGet(GetOp* op, std::string_view key, std::string* value) {
  stats_.gets++;
  op->key = key;
  op->value = value;
  op->hash = HashKey(key);
  op->fp = Fingerprint(op->hash);
  op->bucket = table_.BucketIndexFor(op->hash);
  op->wr = table_.PostReadBucket(op->bucket, &bucket_buf_);
  // The bucket decodes at post time, so the matching object's address is
  // already known here — one verb ahead of the object READ. Prefetch its
  // blocks now: by the time the bucket completion is consumed and
  // kVerifyObject's READ copies the object, the lines are warm. Free in
  // verb/time accounting (see Verbs::PrefetchRead).
  const int match = ht::FindObjectSlot(bucket_buf_.data(), 0, table_.slots_per_bucket(),
                                       op->fp, op->hash);
  if (match >= 0) {
    const ht::SlotView& slot = bucket_buf_[match];
    verbs_.PrefetchRead(slot.pointer(),
                        static_cast<size_t>(slot.size_blocks()) * dm::kBlockBytes);
  }
  op->stage = GetOp::Stage::kMatchSlot;
}

void DittoClient::GetMatchNext(GetOp* op) {
  const int i = ht::FindObjectSlot(bucket_buf_.data(), op->scan_from,
                                   table_.slots_per_bucket(), op->fp, op->hash);
  if (i >= 0) {
    const ht::SlotView& slot = bucket_buf_[i];
    op->slot = i;
    op->scan_from = i + 1;
    const size_t obj_bytes = static_cast<size_t>(slot.size_blocks()) * dm::kBlockBytes;
    object_buf_.resize(obj_bytes);
    op->wr = verbs_.PostRead(slot.pointer(), object_buf_.data(), obj_bytes);
    op->stage = GetOp::Stage::kVerifyObject;
    return;
  }
  op->wr = 0;
  op->stage = GetOp::Stage::kMissHistory;
}

bool DittoClient::StepGet(GetOp* op) {
  switch (op->stage) {
    case GetOp::Stage::kMatchSlot:
      verbs_.WaitWr(op->wr);
      GetMatchNext(op);
      return false;

    case GetOp::Stage::kVerifyObject: {
      verbs_.WaitWr(op->wr);
      const ht::SlotView& slot = bucket_buf_[op->slot];
      const uint64_t obj_addr = slot.pointer();
      const size_t obj_bytes = static_cast<size_t>(slot.size_blocks()) * dm::kBlockBytes;
      DecodedObject obj;
      if (!DecodeObject(object_buf_.data(), obj_bytes, &obj) || obj.key != op->key) {
        // Fingerprint + hash collision with a different key: keep scanning.
        GetMatchNext(op);
        return false;
      }
      if (obj.ExpiredAt(pool_->clock().Now())) {
        // Lazy expiry: reclaim the dead object and report a miss. Losing the
        // CAS means a concurrent client already reclaimed or replaced it.
        if (CasSlot(table_.BucketSlotAddr(op->bucket, op->slot), slot.atomic_word, 0)) {
          alloc_.FreeBlocks(obj_addr, slot.size_blocks());
          verbs_.FetchAddAsync(dm::kObjectCountAddr, kMinusOne);
        }
        stats_.expired++;
        stats_.misses++;
        op->hit = false;
        op->stage = GetOp::Stage::kRetired;
        return true;
      }
      if (op->value != nullptr) {
        op->value->assign(obj.value);
      }
      TouchObject(table_.BucketSlotAddr(op->bucket, op->slot), slot, &obj, obj_addr);
      stats_.hits++;
      op->hit = true;
      op->stage = GetOp::Stage::kRetired;
      return true;
    }

    case GetOp::Stage::kMissHistory:
      stats_.misses++;
      // Regret collection: a missed key whose history entry is still within
      // the logical FIFO window penalizes the experts that evicted it.
      if (config_.adaptive()) {
        if (!config_.enable_history) {
          // A non-embedded history must be probed on every miss; the embedded
          // design collects regrets for free during the bucket scan.
          ChargeExternalHistoryLookup();
        }
        for (int i = 0; i < table_.slots_per_bucket(); ++i) {
          const ht::SlotView& slot = bucket_buf_[i];
          if (!slot.IsHistory() || slot.hash != op->hash) {
            continue;
          }
          const SuperblockView super = ReadSuperblock();
          const uint64_t age = (super.hist_counter - slot.history_id()) & kMask48;
          if (age <= super.hist_size) {
            adaptive_->OnRegret(slot.expert_bmap(), age);
            stats_.regrets++;
          }
          break;
        }
      }
      op->hit = false;
      op->stage = GetOp::Stage::kRetired;
      return true;

    case GetOp::Stage::kRetired:
      return true;
  }
  return true;
}

bool DittoClient::EvictOne() {
  const size_t num_slots = table_.num_slots();
  const int k = std::min(config_.num_samples, static_cast<int>(num_slots));
  const uint64_t start_span = num_slots - static_cast<uint64_t>(k) + 1;
  std::vector<EvictCandidate>& cands = cand_buf_;
  cands.reserve(k);

  for (int attempt = 0; attempt < 256; ++attempt) {
    if (!verbs_.ok()) {
      // A failed verb (node crashed / timed out) would make every sample read
      // below fail too; 256 attempts x 64 reads of dead air is the difference
      // between degrading and hanging.
      return false;
    }
    // Accumulate sampled objects until we hold k candidates. With a densely
    // loaded table one READ suffices (the paper's fast path); sparse tables
    // keep sampling so eviction quality does not degrade to random.
    cands.clear();
    int reads = 0;
    while (static_cast<int>(cands.size()) < k && reads < 64) {
      uint64_t start = ctx_->rng().NextBelow(start_span);
      if (!table_.ReadSlots(start, k, &sample_buf_, &start)) {
        break;  // degenerate geometry: nothing to sample
      }
      reads++;
      for (int i = 0; i < k && static_cast<int>(cands.size()) < k; ++i) {
        // Skip non-objects and slots whose metadata is not yet initialized
        // (an insert publishes the atomic word first, then writes metadata;
        // a zero last_ts means the object is seconds old, not ancient).
        if (!sample_buf_[i].IsObject() || sample_buf_[i].last_ts == 0) {
          continue;
        }
        const uint64_t slot_addr = table_.SlotAddr(start + i);
        bool duplicate = false;
        for (const EvictCandidate& c : cands) {
          if (c.slot_addr == slot_addr) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) {
          continue;
        }
        EvictCandidate c;
        c.slot = sample_buf_[i];
        c.slot_addr = slot_addr;
        c.meta = MetadataFor(sample_buf_[i], nullptr);
        c.meta.freq += fc_->PendingDelta(slot_addr);
        cands.push_back(c);
      }
    }
    if (cands.empty()) {
      continue;
    }
    if (!config_.enable_sfht) {
      // Without the co-designed table, each sampled object's metadata lives
      // with the object: one extra READ per sampled candidate.
      for (const EvictCandidate& c : cands) {
        uint64_t scratch;
        verbs_.Read(c.slot.pointer(), &scratch, 8);
      }
    }
    if (total_ext_words_ > 0) {
      // Fetch extension words from each sampled object (paper §4.4).
      for (EvictCandidate& c : cands) {
        verbs_.Read(c.slot.pointer() + kExtWordsOff, c.meta.ext,
                    static_cast<size_t>(total_ext_words_) * 8);
      }
    }

    // Each expert nominates its lowest-priority candidate.
    const int num_experts = static_cast<int>(experts_.size());
    nominee_buf_.assign(num_experts, 0);
    std::vector<int>& nominee = nominee_buf_;
    for (int e = 0; e < num_experts; ++e) {
      int ext_base = 0;
      for (int j = 0; j < e; ++j) {
        ext_base += experts_[j]->extension_words();
      }
      double best = 0.0;
      for (size_t c = 0; c < cands.size(); ++c) {
        policy::Metadata view = cands[c].meta;
        if (experts_[e]->extension_words() > 0) {
          std::copy(cands[c].meta.ext + ext_base,
                    cands[c].meta.ext + ext_base + experts_[e]->extension_words(), view.ext);
        }
        const double priority = experts_[e]->Priority(view);
        if (c == 0 || priority < best) {
          best = priority;
          nominee[e] = static_cast<int>(c);
        }
      }
    }

    const int chosen = config_.adaptive() ? adaptive_->ChooseExpert(ctx_->rng()) : 0;
    const int victim_cand = nominee[chosen];
    const ht::SlotView& victim = cands[victim_cand].slot;
    const uint64_t victim_addr = cands[victim_cand].slot_addr;

    uint64_t desired = 0;
    uint64_t bmap = 0;
    if (config_.adaptive() && config_.enable_history) {
      const uint64_t hist_id = verbs_.FetchAdd(dm::kHistCounterAddr, 1) & kMask48;
      desired = ht::PackAtomic(victim.fp(), ht::kHistorySizeTag, hist_id);
      for (int e = 0; e < num_experts; ++e) {
        if (nominee[e] == victim_cand) {
          bmap |= uint64_t{1} << e;
        }
      }
    }
    if (!CasSlot(victim_addr, victim.atomic_word, desired)) {
      continue;  // lost a race; resample
    }
    if (config_.adaptive() && config_.enable_history) {
      table_.WriteExpertBmapAsync(victim_addr, bmap);
    } else if (config_.adaptive()) {
      ChargeExternalHistoryInsert();
    }
    experts_[chosen]->OnEvict(cands[victim_cand].meta);
    alloc_.FreeBlocks(victim.pointer(), victim.size_blocks());
    verbs_.FetchAddAsync(dm::kObjectCountAddr, kMinusOne);
    stats_.evictions++;
    return true;
  }
  return false;
}

bool DittoClient::ClaimSlotAndPublish(uint64_t bucket, uint64_t hash, uint8_t fp,
                                      uint64_t obj_addr, int blocks, uint64_t now) {
  const uint64_t desired = ht::PackAtomic(fp, static_cast<uint8_t>(blocks), obj_addr);
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (!verbs_.ok()) {
      return false;  // fail fast: the node is unreachable, publishing can't succeed
    }
    table_.ReadBucket(bucket, &bucket_buf_);

    int target = -1;
    uint64_t expected = 0;
    bool target_is_object = false;
    bool target_is_duplicate = false;

    // A concurrent client may have inserted the same key since our lookup:
    // replace it in place instead of creating a duplicate (duplicates would
    // silently waste capacity and depress hit rates).
    const int dup = ht::FindObjectSlot(bucket_buf_.data(), 0, table_.slots_per_bucket(),
                                       fp, hash);
    if (dup >= 0) {
      target = dup;
      expected = bucket_buf_[dup].atomic_word;
      target_is_object = true;
      target_is_duplicate = true;
    }
    // Preference order: empty slot; our own history entry; expired history;
    // oldest history; finally evict the lowest-priority object in the bucket.
    if (target < 0) {
      for (int i = 0; i < table_.slots_per_bucket(); ++i) {
        if (bucket_buf_[i].IsEmpty()) {
          target = i;
          expected = 0;
          break;
        }
      }
    }
    if (target < 0) {
      for (int i = 0; i < table_.slots_per_bucket(); ++i) {
        if (bucket_buf_[i].IsHistory() && bucket_buf_[i].hash == hash) {
          target = i;
          expected = bucket_buf_[i].atomic_word;
          break;
        }
      }
    }
    if (target < 0) {
      // Expired or oldest history entry.
      bool have_history = false;
      uint64_t oldest_id = 0;
      int oldest = -1;
      for (int i = 0; i < table_.slots_per_bucket(); ++i) {
        if (!bucket_buf_[i].IsHistory()) {
          continue;
        }
        const uint64_t id = bucket_buf_[i].history_id();
        if (!have_history || ((oldest_id - id) & kMask48) < (uint64_t{1} << 47)) {
          // id is older than oldest_id (mod 2^48) or first seen.
          oldest_id = id;
          oldest = i;
          have_history = true;
        }
      }
      if (have_history) {
        target = oldest;
        expected = bucket_buf_[target].atomic_word;
      }
    }
    if (target < 0) {
      // Bucket is full of live objects: evict the lowest-priority one in
      // place (its slot is reused directly; no history entry is recorded for
      // bucket-pressure evictions).
      const int chosen = config_.adaptive() ? adaptive_->ChooseExpert(ctx_->rng()) : 0;
      double best = 0.0;
      for (int i = 0; i < table_.slots_per_bucket(); ++i) {
        if (!bucket_buf_[i].IsObject()) {
          continue;
        }
        policy::Metadata meta = MetadataFor(bucket_buf_[i], nullptr);
        meta.freq += fc_->PendingDelta(table_.BucketSlotAddr(bucket, i));
        const double priority = experts_[chosen]->Priority(meta);
        if (target < 0 || priority < best) {
          best = priority;
          target = i;
        }
      }
      if (target < 0) {
        stats_.insert_retries++;
        continue;  // raced into an inconsistent view; retry
      }
      expected = bucket_buf_[target].atomic_word;
      target_is_object = true;
    }

    const uint64_t slot_addr = table_.BucketSlotAddr(bucket, target);
    if (!CasSlot(slot_addr, expected, desired)) {
      stats_.set_retries++;
      stats_.insert_retries++;
      continue;
    }
    if (target_is_object) {
      const ht::SlotView& victim = bucket_buf_[target];
      alloc_.FreeBlocks(victim.pointer(), victim.size_blocks());
      // Replacing a duplicate of our own key cancels the insert's count
      // increment; evicting an unrelated object is a real eviction.
      verbs_.FetchAddAsync(dm::kObjectCountAddr, kMinusOne);
      if (!target_is_duplicate) {
        stats_.evictions++;
      }
    }
    table_.WriteAllMetadata(slot_addr, hash, now, now, 1);
    if (!config_.enable_sfht) {
      verbs_.WriteAsync(slot_addr + ht::kFreqOff, &now, 8);  // ungrouped metadata init
    }
    // A concurrent client may have published its own copy of this key between
    // our bucket scan and our CAS. Validate with one more bucket READ and
    // reclaim every copy but the canonical one (lowest slot index) so racing
    // inserters converge on a single live object. Config-gated: only shared-
    // pool deployments can race, and the extra READ would otherwise shift
    // every deterministic engine's modeled insert cost.
    if (config_.validate_inserts) {
      ResolveDuplicates(bucket, hash, fp);
    }
    return true;
  }
  return false;
}

bool DittoClient::Set(std::string_view key, std::string_view value, uint64_t ttl_ticks) {
  SetOp op;
  StartSet(&op, key, value, ttl_ticks);
  while (!StepSet(&op)) {
  }
  return op.stored;
}

void DittoClient::StartSet(SetOp* op, std::string_view key, std::string_view value,
                           uint64_t ttl_ticks) {
  stats_.sets++;
  op->key = key;
  op->value = value;
  op->blocks = ObjectBlocks(key.size(), value.size(), total_ext_words_);
  if (op->blocks > dm::kMaxRunBlocks) {
    // Larger than the longest allocatable block run: drop.
    op->stored = false;
    op->stage = SetOp::Stage::kRetired;
    return;
  }
  op->hash = HashKey(key);
  op->fp = Fingerprint(op->hash);
  op->bucket = table_.BucketIndexFor(op->hash);
  op->now = NowTick();
  op->expiry = ttl_ticks == 0 ? 0 : op->now + ttl_ticks;
  // Update path first: check whether the key is already cached.
  op->wr = table_.PostReadBucket(op->bucket, &bucket_buf_);
  op->stage = SetOp::Stage::kMatchForUpdate;
}

void DittoClient::SetEnterInsert(SetOp* op) {
  op->wr = verbs_.PostRead(dm::kHistCounterAddr, op->super_raw, sizeof(op->super_raw));
  op->stage = SetOp::Stage::kInsertReserve;
}

bool DittoClient::StepSet(SetOp* op) {
  switch (op->stage) {
    case SetOp::Stage::kMatchForUpdate: {
      verbs_.WaitWr(op->wr);
      op->found_slot = ht::FindObjectSlot(bucket_buf_.data(), 0, table_.slots_per_bucket(),
                                          op->fp, op->hash);
      if (op->found_slot >= 0) {
        const ht::SlotView& slot = bucket_buf_[op->found_slot];
        op->found_atomic = slot.atomic_word;
        op->found_pointer = slot.pointer();
        op->found_blocks = slot.size_blocks();
      }
      if (op->found_slot < 0) {
        SetEnterInsert(op);
        return false;
      }
      std::fill(op->ext, op->ext + policy::Metadata::kMaxExtensionWords, 0);
      op->have_ext_read = total_ext_words_ > 0;
      if (op->have_ext_read) {
        op->wr = verbs_.PostRead(op->found_pointer + kExtWordsOff, op->ext,
                                 static_cast<size_t>(total_ext_words_) * 8);
      }
      op->evict_budget = 128;
      op->stage = SetOp::Stage::kUpdateAlloc;
      return false;
    }

    case SetOp::Stage::kUpdateAlloc: {
      if (op->have_ext_read) {
        verbs_.WaitWr(op->wr);
        op->have_ext_read = false;
      }
      op->addr = alloc_.AllocBlocks(op->blocks);
      while (op->addr == 0 && op->evict_budget > 0) {
        op->evict_budget--;
        if (!EvictOne()) {
          break;
        }
        op->addr = alloc_.AllocBlocks(op->blocks);
      }
      if (op->addr == 0) {
        op->stored = false;  // pool exhausted beyond recovery; drop the Set
        op->stage = SetOp::Stage::kRetired;
        return true;
      }
      EncodeObject(op->key, op->value, op->ext, total_ext_words_, &encode_buf_, op->expiry);
      op->wr = verbs_.PostWrite(op->addr, encode_buf_.data(), encode_buf_.size());
      op->stage = SetOp::Stage::kUpdatePublish;
      return false;
    }

    case SetOp::Stage::kUpdatePublish: {
      verbs_.WaitWr(op->wr);
      const uint64_t desired =
          ht::PackAtomic(op->fp, static_cast<uint8_t>(op->blocks), op->addr);
      const uint64_t slot_addr = table_.BucketSlotAddr(op->bucket, op->found_slot);
      if (CasSlot(slot_addr, op->found_atomic, desired)) {
        alloc_.FreeBlocks(op->found_pointer, op->found_blocks);
        ht::SlotView updated = bucket_buf_[op->found_slot];
        updated.atomic_word = desired;
        object_buf_.assign(encode_buf_.begin(), encode_buf_.end());
        DecodedObject obj;
        DecodeObject(object_buf_.data(), object_buf_.size(), &obj);
        TouchObject(slot_addr, updated, &obj, op->addr);
        op->stored = true;
        op->stage = SetOp::Stage::kRetired;
        return true;
      }
      alloc_.FreeBlocks(op->addr, op->blocks);
      op->addr = 0;
      stats_.set_retries++;
      if (++op->attempt < 4) {
        // Re-read the bucket and retry the in-place update.
        op->wr = table_.PostReadBucket(op->bucket, &bucket_buf_);
        op->stage = SetOp::Stage::kMatchForUpdate;
      } else {
        SetEnterInsert(op);
      }
      return false;
    }

    case SetOp::Stage::kInsertReserve: {
      verbs_.WaitWr(op->wr);
      const uint64_t capacity = DecodeSuperblock(op->super_raw).capacity;
      const uint64_t prior = verbs_.FetchAdd(dm::kObjectCountAddr, 1);
      op->evict_budget = 0;
      if (prior + 1 > capacity) {
        op->evict_budget = static_cast<int>(std::min<uint64_t>(prior + 1 - capacity, 8));
      }
      op->stage = SetOp::Stage::kInsertEvict;
      return false;
    }

    case SetOp::Stage::kInsertEvict:
      // One sampled eviction per step until the capacity overshoot is paid.
      if (op->evict_budget > 0) {
        op->evict_budget--;
        if (EvictOne()) {
          return false;
        }
        op->evict_budget = 0;  // nothing evictable: stop paying
      }
      op->stage = SetOp::Stage::kInsertAlloc;
      op->evict_budget = 128;
      return false;

    case SetOp::Stage::kInsertAlloc: {
      std::fill(op->ext, op->ext + policy::Metadata::kMaxExtensionWords, 0);
      if (total_ext_words_ > 0) {
        policy::Metadata meta;
        meta.hash = op->hash;
        meta.insert_ts = op->now;
        meta.last_ts = op->now;
        meta.freq = 1;
        meta.size_bytes = static_cast<uint32_t>(
            ObjectBytes(op->key.size(), op->value.size(), total_ext_words_));
        meta.now = op->now;
        int base = 0;
        for (const auto& expert : experts_) {
          const int words = expert->extension_words();
          if (words == 0) {
            continue;
          }
          policy::Metadata view = meta;
          expert->OnInsert(view);
          expert->Update(view);
          std::copy(view.ext, view.ext + words, op->ext + base);
          base += words;
        }
      }
      op->addr = alloc_.AllocBlocks(op->blocks);
      while (op->addr == 0 && op->evict_budget > 0) {
        op->evict_budget--;
        if (!EvictOne()) {
          break;
        }
        op->addr = alloc_.AllocBlocks(op->blocks);
      }
      if (op->addr == 0) {
        verbs_.FetchAddAsync(dm::kObjectCountAddr, kMinusOne);
        op->stored = false;  // drop: memory exhausted and nothing evictable
        op->stage = SetOp::Stage::kRetired;
        return true;
      }
      EncodeObject(op->key, op->value, op->ext, total_ext_words_, &encode_buf_, op->expiry);
      op->wr = verbs_.PostWrite(op->addr, encode_buf_.data(), encode_buf_.size());
      op->stage = SetOp::Stage::kInsertPublish;
      return false;
    }

    case SetOp::Stage::kInsertPublish:
      verbs_.WaitWr(op->wr);
      if (!ClaimSlotAndPublish(op->bucket, op->hash, op->fp, op->addr, op->blocks, op->now)) {
        alloc_.FreeBlocks(op->addr, op->blocks);
        verbs_.FetchAddAsync(dm::kObjectCountAddr, kMinusOne);
        op->stored = false;
        op->stage = SetOp::Stage::kRetired;
        return true;
      }
      op->stored = true;
      op->stage = SetOp::Stage::kRetired;
      return true;

    case SetOp::Stage::kRetired:
      return true;
  }
  return true;
}

bool DittoClient::Delete(std::string_view key) {
  const uint64_t hash = HashKey(key);
  const uint8_t fp = Fingerprint(hash);
  const uint64_t bucket = table_.BucketIndexFor(hash);
  for (int attempt = 0; attempt < 4; ++attempt) {
    table_.ReadBucket(bucket, &bucket_buf_);
    const int found =
        ht::FindObjectSlot(bucket_buf_.data(), 0, table_.slots_per_bucket(), fp, hash);
    if (found < 0) {
      return false;
    }
    const ht::SlotView& slot = bucket_buf_[found];
    if (CasSlot(table_.BucketSlotAddr(bucket, found), slot.atomic_word, 0)) {
      alloc_.FreeBlocks(slot.pointer(), slot.size_blocks());
      verbs_.FetchAddAsync(dm::kObjectCountAddr, kMinusOne);
      stats_.deletes++;
      return true;
    }
  }
  return false;
}

bool DittoClient::Expire(std::string_view key, uint64_t ttl_ticks) {
  const uint64_t hash = HashKey(key);
  const uint8_t fp = Fingerprint(hash);
  const uint64_t bucket = table_.BucketIndexFor(hash);
  for (int attempt = 0; attempt < 4; ++attempt) {
    table_.ReadBucket(bucket, &bucket_buf_);
    const int found =
        ht::FindObjectSlot(bucket_buf_.data(), 0, table_.slots_per_bucket(), fp, hash);
    if (found < 0) {
      return false;
    }
    const ht::SlotView& slot = bucket_buf_[found];
    const uint64_t obj_addr = slot.pointer();
    const size_t obj_bytes = static_cast<size_t>(slot.size_blocks()) * dm::kBlockBytes;
    object_buf_.resize(obj_bytes);
    verbs_.Read(obj_addr, object_buf_.data(), obj_bytes);
    DecodedObject obj;
    if (!DecodeObject(object_buf_.data(), obj_bytes, &obj) || obj.key != key) {
      return false;  // fingerprint + hash collision with a different key
    }
    // Re-validate that the slot still publishes this object before touching
    // its blocks (a concurrent Delete/Set may have reused the run): a CAS to
    // the same word fails iff the slot changed underneath us.
    if (!CasSlot(table_.BucketSlotAddr(bucket, found), slot.atomic_word,
                 slot.atomic_word)) {
      continue;  // raced with a concurrent update; re-locate the key
    }
    // One small WRITE re-arms the expiry word in place (off the critical
    // path; the value is already durable in program order on the arena).
    const uint64_t expiry = ttl_ticks == 0 ? 0 : pool_->clock().Now() + ttl_ticks;
    verbs_.WriteAsync(obj_addr + kExpiryOff, &expiry, 8);
    return true;
  }
  return false;
}

bool DittoClient::ResizeCapacity(uint64_t capacity_objects) {
  std::string request(8, '\0');
  std::memcpy(request.data(), &capacity_objects, 8);
  std::string response;
  verbs_.Rpc(dm::kRpcResize, request, &response);
  if (response.size() != 8) {
    return false;  // controller rejected the resize
  }
  // Shrink path: evict down with the sampled-eviction path until the cached
  // count fits. The superblock is re-read every round so evictions performed
  // by concurrent clients (or a racing further resize) are observed instead
  // of over-evicting.
  while (true) {
    if (!verbs_.ok()) {
      return false;  // node unreachable mid-shrink; report failure, don't spin
    }
    const SuperblockView super = ReadSuperblock();
    if (super.object_count <= super.capacity) {
      return true;
    }
    const uint64_t over = super.object_count - super.capacity;
    for (uint64_t i = 0; i < over; ++i) {
      if (!EvictOne()) {
        return false;  // nothing evictable left but the count still exceeds
      }
    }
  }
}

size_t DittoClient::MultiGet(size_t n, const std::string_view* keys,
                             std::string* const* values, bool* hits) {
  // Chain the whole run's async metadata verbs behind one doorbell. When the
  // caller already enabled windowed batching, keep its window; otherwise open
  // an unbounded chain for the duration of the run and flush it once.
  const size_t saved = verbs_.batch_ops();
  if (saved == 0) {
    verbs_.SetBatchOps(std::numeric_limits<size_t>::max());
  }
  size_t hit_count = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool hit = Get(keys[i], values == nullptr ? nullptr : values[i]);
    if (hits != nullptr) {
      hits[i] = hit;
    }
    hit_count += hit ? 1 : 0;
  }
  if (saved == 0) {
    verbs_.SetBatchOps(0);  // flushes the chain: one doorbell for the run
  }
  return hit_count;
}

void DittoClient::FlushBuffers() {
  fc_->FlushAll();
  adaptive_->Flush();
  verbs_.FlushBatch();
}

void DittoClient::ChargeExternalHistoryInsert() {
  // A non-embedded history appends to a remote FIFO queue: FAA on the queue
  // tail plus a WRITE of the 40-byte entry.
  verbs_.FetchAdd(kExternalHistScratch, 0);
  uint8_t entry[40] = {0};
  verbs_.WriteAsync(kExternalHistScratch + 8, entry, sizeof(entry));
}

void DittoClient::ChargeExternalHistoryLookup() {
  // A non-embedded history needs its own index probe on every miss.
  uint8_t entry[40];
  verbs_.Read(kExternalHistScratch + 8, entry, sizeof(entry));
}

}  // namespace ditto::core
