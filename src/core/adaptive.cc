#include "core/adaptive.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ditto::core {
namespace {

constexpr double kWeightFloor = 1e-3;

void Normalize(std::vector<double>& w) {
  double sum = 0.0;
  for (const double x : w) {
    sum += x;
  }
  if (sum <= 0.0) {
    for (double& x : w) {
      x = 1.0 / static_cast<double>(w.size());
    }
    return;
  }
  for (double& x : w) {
    x /= sum;
  }
  // Keep every expert revivable: floor the weight (LeCaR does the same), then
  // redistribute the remaining mass over the unfloored entries so the vector
  // is still a distribution — ChooseExpert samples it and the controller
  // returns it to clients, so an unnormalized floored vector would bias both.
  // Rescaling can push a near-floor entry below the floor, so iterate; each
  // pass floors at least one more entry, bounding the loop by w.size().
  for (size_t pass = 0; pass < w.size(); ++pass) {
    size_t floored = 0;
    double free_mass = 0.0;
    for (const double x : w) {
      if (x <= kWeightFloor) {
        floored++;
      } else {
        free_mass += x;
      }
    }
    if (floored == 0) {
      return;  // nothing clamped: the plain normalization already sums to 1
    }
    const double target_free = 1.0 - static_cast<double>(floored) * kWeightFloor;
    if (free_mass <= 0.0 || target_free <= 0.0) {
      break;  // degenerate (every expert at the floor): fall back to uniform
    }
    const double scale = target_free / free_mass;
    bool rescale_crossed_floor = false;
    for (double& x : w) {
      if (x <= kWeightFloor) {
        x = kWeightFloor;
      } else {
        x *= scale;
        rescale_crossed_floor = rescale_crossed_floor || x < kWeightFloor;
      }
    }
    if (!rescale_crossed_floor) {
      return;  // sum == floored * kWeightFloor + target_free == 1
    }
  }
  for (double& x : w) {
    x = 1.0 / static_cast<double>(w.size());
  }
}

void EncodeDoubles(const std::vector<double>& values, std::string* out) {
  out->resize(values.size() * 8);
  std::memcpy(out->data(), values.data(), out->size());
}


// Decodes a packed array of doubles. A payload whose length is not a
// multiple of 8 is malformed (trailing bytes would be silently dropped), so
// it decodes to an empty vector and callers treat it as a rejection.
std::vector<double> DecodeDoubles(std::string_view in) {
  // The empty check is not just an optimization: an empty payload (or view)
  // can carry a null data(), and memcpy's arguments are attributed nonnull
  // even for a zero-byte copy, so UBSan flags the unguarded call.
  if (in.empty() || in.size() % 8 != 0) {
    return {};
  }
  std::vector<double> out(in.size() / 8);
  std::memcpy(out.data(), in.data(), out.size() * 8);
  return out;
}

}  // namespace

AdaptiveController::AdaptiveController(dm::MemoryPool* pool, int num_experts)
    : weights_(num_experts, 1.0 / static_cast<double>(num_experts)) {
  pool->RegisterRpc(dm::kRpcUpdateWeights,
                    [this](std::string_view request, std::string* response) {
                      HandleUpdate(request, response);
                    });
}

void AdaptiveController::HandleUpdate(std::string_view request, std::string* response) {
  // Validate the payload size before decoding: a length that is not a whole
  // number of doubles is malformed on its face (DecodeDoubles would reject it
  // too, but the linter pins the explicit pre-decode check).
  if (request.size() % 8 != 0) {
    MutexLock lock(&mu_);
    rejected_++;
    return;
  }
  const std::vector<double> penalties = DecodeDoubles(request);
  MutexLock lock(&mu_);
  // A malformed payload (trailing bytes, wrong expert count) is rejected with
  // an empty response and must not perturb the weights: a client speaking a
  // different expert configuration would otherwise silently skew everyone.
  if (penalties.size() != weights_.size()) {
    rejected_++;
    return;
  }
  for (double p : penalties) {
    if (!std::isfinite(p)) {
      rejected_++;
      return;
    }
  }
  updates_++;
  for (size_t i = 0; i < weights_.size(); ++i) {
    // Penalties arrive pre-summed (the compression described in §4.3.2).
    weights_[i] *= std::exp(-penalties[i]);
  }
  Normalize(weights_);
  EncodeDoubles(weights_, response);
}

std::vector<double> AdaptiveController::weights() const {
  MutexLock lock(&mu_);
  return weights_;
}

AdaptiveState::AdaptiveState(const AdaptiveConfig& config, rdma::Verbs* verbs)
    : config_(config),
      verbs_(verbs),
      weights_(config.num_experts, 1.0 / static_cast<double>(config.num_experts)),
      pending_penalties_(config.num_experts, 0.0) {
  assert(config_.cache_size_objects > 0);
  log_discount_ =
      std::log(config_.discount_base) / static_cast<double>(config_.cache_size_objects);
}

int AdaptiveState::ChooseExpert(Rng& rng) const {
  double sum = 0.0;
  for (const double w : weights_) {
    sum += w;
  }
  double pick = rng.NextDouble() * sum;
  for (size_t i = 0; i < weights_.size(); ++i) {
    pick -= weights_[i];
    if (pick <= 0.0) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(weights_.size()) - 1;
}

double AdaptiveState::DiscountedPenalty(uint64_t age) const {
  // d^age with d = base^(1/N): older regrets are penalized less.
  return std::exp(log_discount_ * static_cast<double>(age));
}

void AdaptiveState::ApplyLocally(uint64_t bmap, double penalty) {
  for (int i = 0; i < config_.num_experts; ++i) {
    if ((bmap >> i) & 1) {
      weights_[i] *= std::exp(-config_.learning_rate * penalty);
      pending_penalties_[i] += config_.learning_rate * penalty;
    }
  }
  Normalize(weights_);
}

void AdaptiveState::OnRegret(uint64_t bmap, uint64_t age) {
  ApplyLocally(bmap, DiscountedPenalty(age));
  pending_count_++;
  const int batch = config_.lazy ? config_.penalty_batch : 1;
  if (pending_count_ >= batch) {
    Flush();
  }
}

void AdaptiveState::Flush() {
  if (pending_count_ == 0) {
    return;
  }
  EncodeDoubles(pending_penalties_, &rpc_request_);
  verbs_->Rpc(dm::kRpcUpdateWeights, rpc_request_, &rpc_response_);
  // Decode in place: the response is the controller's global weight vector.
  if (rpc_response_.size() == static_cast<size_t>(config_.num_experts) * 8) {
    std::memcpy(weights_.data(), rpc_response_.data(), rpc_response_.size());
  }
  std::fill(pending_penalties_.begin(), pending_penalties_.end(), 0.0);
  pending_count_ = 0;
  flushes_++;
}

}  // namespace ditto::core
