// DittoClient: the public API of the cache. One instance per client thread.
//
// Get/Set execute with one-sided verbs against the memory pool, maintain the
// access metadata of the sample-friendly hash table, run the sample-based
// eviction with multiple expert algorithms, keep the lightweight eviction
// history, collect regrets, and adapt the expert weights lazily.
//
// Typical use:
//   dm::MemoryPool pool(pool_config);
//   core::DittoServer server(&pool, ditto_config);   // once, host side
//   rdma::ClientContext ctx(/*id=*/0);
//   core::DittoClient client(&pool, &server, &ctx, ditto_config);
//   client.Set("key", "value");
//   std::string value;
//   bool hit = client.Get("key", &value);
#ifndef DITTO_CORE_DITTO_CLIENT_H_
#define DITTO_CORE_DITTO_CLIENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/adaptive.h"
#include "core/fc_cache.h"
#include "core/object.h"
#include "dm/allocator.h"
#include "dm/pool.h"
#include "hashtable/hash_table.h"
#include "policies/policy.h"
#include "rdma/verbs.h"

namespace ditto::core {

struct DittoConfig {
  // Expert caching algorithms. One entry disables adaptivity (Ditto-LRU /
  // Ditto-LFU in the paper are {"lru"} / {"lfu"}).
  std::vector<std::string> experts = {"lru", "lfu"};

  int num_samples = 5;            // sampled objects per eviction (Redis default)
  int fc_threshold = 10;          // FC-cache flush threshold t
  size_t fc_capacity_bytes = 10 << 20;
  // Staleness bound on buffered frequency deltas, in client accesses. Scales
  // with run length: 64 suits the scaled-down experiment sizes in this repo;
  // the paper's 10M+-request runs tolerate (and amortize) far larger lags.
  uint64_t fc_max_age_accesses = 64;
  double learning_rate = 0.1;     // lambda of regret minimization
  double discount_base = 0.005;   // d = base^(1/N)
  int penalty_batch = 100;        // local weight updates per lazy global flush

  // Ablation switches (paper Figure 24). All true for full Ditto.
  bool enable_sfht = true;        // metadata co-located in the hash index
  bool enable_history = true;     // lightweight (embedded) eviction history
  bool enable_fc_cache = true;    // frequency-counter cache
  bool enable_lazy_weights = true;

  // Contended-deployment switch: after publishing an insert, re-read the
  // bucket and reclaim racing duplicate copies of the key (RACE-hashing
  // style; +1 READ per insert). Required whenever multiple clients share one
  // pool with overlapping keys (RunTraceContended deployments). Off by
  // default so the single-writer-per-key engines keep the paper's insert
  // verb budget — duplicate races are structurally impossible there.
  bool validate_inserts = false;

  bool adaptive() const { return experts.size() > 1; }
};

struct DittoStats {
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t deletes = 0;
  uint64_t evictions = 0;
  uint64_t expired = 0;  // objects reclaimed by lazy TTL expiry on lookup
  uint64_t regrets = 0;
  uint64_t set_retries = 0;
  // Contention counters (nonzero only when clients race on one pool).
  uint64_t cas_failures = 0;    // slot CASes lost to a concurrent client
  uint64_t insert_retries = 0;  // claim-phase rounds repeated after a race
  uint64_t dup_resolved = 0;    // duplicate copies reclaimed after insert races

  double HitRate() const {
    return gets == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(gets);
  }
};

// Host-side server state shared by all clients of one pool: installs the
// adaptive-weight controller. Construct exactly once per pool.
class DittoServer {
 public:
  DittoServer(dm::MemoryPool* pool, const DittoConfig& config)
      : controller_(pool, static_cast<int>(config.experts.size())) {}

  AdaptiveController& controller() { return controller_; }

 private:
  AdaptiveController controller_;
};

// --- Resumable operation state machines ------------------------------------
// Get and Set execute as explicit-state operations: every stage posts at most
// one signalled verb (rdma::Verbs::Post*) and the following stage consumes
// its completion. The blocking Get/Set entry points drive the machine to
// retirement inline, reproducing the historical verb order, counts, and
// virtual-time cost exactly; the pipelined replay engine instead wraps the
// same drive loop in BeginPipelinedOp/EndPipelinedOp so the waits land on a
// detached per-op timeline and up to K independent ops overlap in virtual
// time. Ops still *execute* one at a time per client (they share the client's
// scratch buffers and the pipeline overlaps time, not execution), which is
// what keeps cache behaviour — and therefore hit rates — bit-identical
// across pipeline depths.

// Lookup: post bucket READ -> match slot -> post object READ -> verify
// checksum/key -> retire (or miss: regret collection against the embedded
// history, then retire).
struct GetOp {
  enum class Stage : uint8_t {
    kMatchSlot,     // bucket READ in flight; on completion scan for fp/hash
    kVerifyObject,  // object READ in flight; on completion checksum + key
    kMissHistory,   // no live copy: collect a regret, account the miss
    kRetired,
  };
  Stage stage = Stage::kMatchSlot;
  std::string_view key;
  std::string* value = nullptr;
  uint64_t hash = 0;
  uint64_t bucket = 0;
  uint8_t fp = 0;
  uint64_t wr = 0;    // completion the next stage consumes
  int slot = -1;      // slot whose object READ is in flight
  int scan_from = 0;  // bucket-scan resume point (fp/hash collisions)
  bool hit = false;
};

// Store: post bucket READ -> match for in-place update (found: alloc/evict ->
// post object WRITE -> publish CAS) or insert (post superblock READ ->
// reserve a capacity slot -> explicit eviction states -> alloc -> post object
// WRITE -> claim+publish) -> retire.
struct SetOp {
  enum class Stage : uint8_t {
    kMatchForUpdate,  // bucket READ in flight; on completion look for the key
    kUpdateAlloc,     // (optional ext READ in flight;) allocate, evicting
    kUpdatePublish,   // object WRITE in flight; on completion CAS the slot
    kInsertReserve,   // superblock READ in flight; on completion FAA count
    kInsertEvict,     // one over-capacity eviction per step
    kInsertAlloc,     // allocate the object run, evicting as needed
    kInsertPublish,   // object WRITE in flight; on completion claim a slot
    kRetired,
  };
  Stage stage = Stage::kMatchForUpdate;
  std::string_view key;
  std::string_view value;
  uint64_t hash = 0;
  uint64_t bucket = 0;
  uint8_t fp = 0;
  uint64_t now = 0;     // logical tick captured at issue
  uint64_t expiry = 0;  // 0 = no TTL
  uint64_t wr = 0;      // completion the next stage consumes
  int attempt = 0;      // update-path CAS retries (bounded at 4)
  int blocks = 0;
  uint64_t addr = 0;            // freshly allocated object run
  uint64_t found_atomic = 0;    // update path: published word being replaced
  uint64_t found_pointer = 0;   // update path: old object run
  int found_blocks = 0;
  int found_slot = -1;
  int evict_budget = 0;         // explicit-eviction steps remaining
  uint64_t ext[policy::Metadata::kMaxExtensionWords] = {};
  uint64_t super_raw[4] = {0, 0, 0, 0};  // posted superblock READ lands here
  bool have_ext_read = false;   // an ext-words READ is in flight
  bool stored = false;
};

class DittoClient {
 public:
  DittoClient(dm::MemoryPool* pool, rdma::ClientContext* ctx, const DittoConfig& config);

  // Looks up key. On hit fills *value (may be nullptr to skip the copy) and
  // updates access metadata. On miss collects a regret if the key's history
  // entry is still live. An object past its TTL is reclaimed here (lazy
  // expiry) and reported as a miss.
  bool Get(std::string_view key, std::string* value);

  // Resumable-op interface. StartGet/StartSet issue the op's first verb;
  // each StepGet/StepSet consumes one completion and advances one stage,
  // returning true once the op retired (outcome in op->hit / op->stored).
  // At most one op may be active per client at a time.
  void StartGet(GetOp* op, std::string_view key, std::string* value);
  bool StepGet(GetOp* op);
  void StartSet(SetOp* op, std::string_view key, std::string_view value, uint64_t ttl_ticks);
  bool StepSet(SetOp* op);

  // Pipelined-op timeline control (see rdma::Verbs::BeginOp): ops driven
  // between Begin/End charge their waits to a detached cursor starting at
  // start_ns; EndPipelinedOp returns the op's completion timestamp. The
  // caller retires ops in issue order with VirtualClock::AdvanceToNs.
  void BeginPipelinedOp(uint64_t start_ns) { verbs_.BeginOp(start_ns); }
  uint64_t EndPipelinedOp() { return verbs_.EndOp(); }

  // Inserts or updates key, evicting objects if the cache is at capacity.
  // ttl_ticks > 0 arms expiry that many logical-clock ticks from now.
  // Returns false if the store had to be dropped (memory exhausted and
  // nothing evictable).
  bool Set(std::string_view key, std::string_view value, uint64_t ttl_ticks = 0);

  // Removes key. Returns true if it was cached.
  bool Delete(std::string_view key);

  // (Re)arms the TTL of a cached key (ttl_ticks == 0 clears it). Returns
  // false if the key is not cached.
  bool Expire(std::string_view key, uint64_t ttl_ticks);

  // Elastic scaling: asks the controller to rewrite the pool's capacity (the
  // kRpcResize RPC), then — on shrink — evicts down to the new capacity via
  // the same sampled multi-expert eviction path normal admissions use, so the
  // surviving working set is the one the experts would have kept. Expansion
  // takes effect immediately: the next admissions simply stop evicting.
  // Returns false if the controller rejected the resize or eviction stalled.
  bool ResizeCapacity(uint64_t capacity_objects);

  // Pipelined lookup of keys[0..n): per-key semantics of Get, but the whole
  // run's async metadata verbs are chained behind a single NIC doorbell.
  // hits[i] receives the per-key outcome; values may be nullptr, or an array
  // of n string pointers (each possibly nullptr) filled on hit. Returns the
  // number of hits.
  size_t MultiGet(size_t n, const std::string_view* keys, std::string* const* values,
                  bool* hits);

  // Flushes client-side buffers (FC cache deltas, pending penalties, the
  // doorbell-batched verb chain).
  void FlushBuffers();

  // Doorbell-batches async metadata verbs every `ops` posts (0 disables).
  void SetBatchOps(size_t ops) { verbs_.SetBatchOps(ops); }

  const DittoStats& stats() const { return stats_; }
  DittoStats& mutable_stats() { return stats_; }
  void ResetStats() { stats_ = DittoStats{}; }
  const std::vector<double>& expert_weights() const { return adaptive_->local_weights(); }
  rdma::ClientContext& ctx() { return *ctx_; }
  rdma::Verbs& verbs() { return verbs_; }

 private:
  struct SuperblockView {
    uint64_t hist_counter;
    uint64_t object_count;
    uint64_t capacity;
    uint64_t hist_size;
  };

  // Single source of the superblock word order (hist_counter, object_count,
  // capacity, hist_size) for both the blocking read and posted-READ paths.
  static SuperblockView DecodeSuperblock(const uint64_t raw[4]);
  SuperblockView ReadSuperblock();
  uint64_t NowTick();

  // Get state machine: scans the fetched bucket from op->scan_from for the
  // next fp/hash match, posting its object READ (stage kVerifyObject) or
  // falling through to the miss path (stage kMissHistory).
  void GetMatchNext(GetOp* op);
  // Set state machine: transitions into the insert path by posting the
  // superblock READ (stage kInsertReserve).
  void SetEnterInsert(SetOp* op);

  // CAS on a slot's atomic word, counting failures (losses to concurrent
  // clients) in stats_.cas_failures.
  bool CasSlot(uint64_t slot_addr, uint64_t expected, uint64_t desired);

  // RACE-hashing-style duplicate resolution: after publishing a new copy of
  // `hash`, re-reads the bucket and reclaims every matching object slot other
  // than the lowest-indexed one. Concurrent inserters of one key run the same
  // deterministic rule, so the bucket converges to a single live copy.
  void ResolveDuplicates(uint64_t bucket, uint64_t hash, uint8_t fp);

  // Builds policy metadata for a slot view (object sizes come from the slot's
  // block count; extension words are passed in when known).
  policy::Metadata MetadataFor(const ht::SlotView& slot, const uint64_t* ext) const;

  // Records an access on a located object (stateless WRITE + FC-cached FAA +
  // extension updates). obj may be nullptr when extensions are not needed.
  void TouchObject(uint64_t slot_addr, const ht::SlotView& slot, const DecodedObject* obj,
                   uint64_t obj_addr);

  // Evicts one cached object chosen by sample-based multi-expert eviction.
  // Returns false if no victim could be evicted (empty cache).
  bool EvictOne();

  // Finds a slot in the bucket to claim for a new object and CASes it.
  // Returns true on success.
  bool ClaimSlotAndPublish(uint64_t bucket, uint64_t hash, uint8_t fp, uint64_t obj_addr,
                           int blocks, uint64_t now);

  // Extra verb traffic emulating a non-embedded (external FIFO) history, used
  // when enable_history is false but adaptivity is on (ablation LWH-off).
  void ChargeExternalHistoryInsert();
  void ChargeExternalHistoryLookup();

  dm::MemoryPool* pool_;
  rdma::ClientContext* ctx_;
  DittoConfig config_;
  rdma::Verbs verbs_;
  ht::HashTable table_;
  dm::RemoteAllocator alloc_;
  std::vector<std::unique_ptr<policy::CachePolicy>> experts_;
  std::unique_ptr<AdaptiveState> adaptive_;
  std::unique_ptr<FcCache> fc_;
  int total_ext_words_ = 0;

  DittoStats stats_;
  // Per-op scratch, reused across ops so the hot path allocates nothing once
  // warm (the client is single-threaded; see RunTraceContended for the
  // one-client-per-thread contract).
  std::vector<ht::SlotView> bucket_buf_;
  std::vector<ht::SlotView> sample_buf_;
  std::vector<ht::SlotView> dedup_buf_;
  std::vector<uint8_t> object_buf_;
  std::vector<uint8_t> encode_buf_;
  struct EvictCandidate {
    ht::SlotView slot;
    uint64_t slot_addr;
    policy::Metadata meta;
  };
  std::vector<EvictCandidate> cand_buf_;
  std::vector<int> nominee_buf_;
};

}  // namespace ditto::core

#endif  // DITTO_CORE_DITTO_CLIENT_H_
