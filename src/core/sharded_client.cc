#include "core/sharded_client.h"

#include <algorithm>

#include "common/hash.h"

namespace ditto::core {

ShardedPool::ShardedPool(const dm::PoolConfig& per_node_config, int nodes,
                         uint64_t partition_seed)
    : partition_seed_(partition_seed) {
  pools_.reserve(nodes);
  for (int i = 0; i < nodes; ++i) {
    pools_.push_back(std::make_unique<dm::MemoryPool>(per_node_config));
  }
}

uint64_t ShardedPool::cached_objects() const {
  uint64_t total = 0;
  for (const auto& pool : pools_) {
    total += pool->cached_objects();
  }
  return total;
}

void ShardedPool::SetCapacityObjectsPerNode(uint64_t capacity) {
  for (const auto& pool : pools_) {
    pool->SetCapacityObjects(capacity);
  }
}

ShardedDittoServer::ShardedDittoServer(ShardedPool* pool, const DittoConfig& config) {
  for (int i = 0; i < pool->num_nodes(); ++i) {
    servers_.push_back(std::make_unique<DittoServer>(&pool->node(i), config));
  }
}

ShardedDittoClient::ShardedDittoClient(ShardedPool* pool, rdma::ClientContext* ctx,
                                       const DittoConfig& config)
    : pool_(pool), ctx_(ctx) {
  for (int i = 0; i < pool->num_nodes(); ++i) {
    clients_.push_back(std::make_unique<DittoClient>(&pool->node(i), ctx, config));
  }
}

DittoClient& ShardedDittoClient::Route(std::string_view key) {
  return *clients_[pool_->NodeFor(HashKey(key))];
}

bool ShardedDittoClient::Get(std::string_view key, std::string* value) {
  return Route(key).Get(key, value);
}

bool ShardedDittoClient::Set(std::string_view key, std::string_view value,
                             uint64_t ttl_ticks) {
  return Route(key).Set(key, value, ttl_ticks);
}

bool ShardedDittoClient::Delete(std::string_view key) { return Route(key).Delete(key); }

bool ShardedDittoClient::Expire(std::string_view key, uint64_t ttl_ticks) {
  return Route(key).Expire(key, ttl_ticks);
}

size_t ShardedDittoClient::MultiGet(size_t n, const std::string_view* keys,
                                    std::string* const* values, bool* hits) {
  // Scatter the run over the owning nodes, then execute one chained multi-get
  // per node so each node's metadata verbs share a doorbell. All scratch is
  // member state reused across runs to keep the replay hot loop free of
  // per-run heap churn.
  mg_by_node_.resize(clients_.size());
  for (std::vector<size_t>& idxs : mg_by_node_) {
    idxs.clear();
  }
  for (size_t i = 0; i < n; ++i) {
    mg_by_node_[static_cast<size_t>(pool_->NodeFor(HashKey(keys[i])))].push_back(i);
  }
  if (mg_hits_cap_ < n) {
    mg_hits_cap_ = std::max(n, mg_hits_cap_ * 2);
    mg_hits_ = std::make_unique<bool[]>(mg_hits_cap_);
  }
  size_t hit_count = 0;
  for (size_t node = 0; node < mg_by_node_.size(); ++node) {
    const std::vector<size_t>& idxs = mg_by_node_[node];
    if (idxs.empty()) {
      continue;
    }
    mg_keys_.clear();
    mg_values_.clear();
    for (const size_t i : idxs) {
      mg_keys_.push_back(keys[i]);
      mg_values_.push_back(values == nullptr ? nullptr : values[i]);
    }
    hit_count += clients_[node]->MultiGet(idxs.size(), mg_keys_.data(),
                                          values == nullptr ? nullptr : mg_values_.data(),
                                          mg_hits_.get());
    if (hits != nullptr) {
      for (size_t j = 0; j < idxs.size(); ++j) {
        hits[idxs[j]] = mg_hits_[j];
      }
    }
  }
  return hit_count;
}

bool ShardedDittoClient::ResizeCapacity(uint64_t total_capacity_objects) {
  bool ok = true;
  for (size_t i = 0; i < clients_.size(); ++i) {
    ok = clients_[i]->ResizeCapacity(
             dm::CapacityShare(total_capacity_objects, i, clients_.size())) &&
         ok;
  }
  return ok;
}

void ShardedDittoClient::FlushBuffers() {
  for (const auto& client : clients_) {
    client->FlushBuffers();
  }
}

void ShardedDittoClient::SetBatchOps(size_t ops) {
  for (const auto& client : clients_) {
    client->SetBatchOps(ops);
  }
}

void ShardedDittoClient::BeginPipelinedOp(uint64_t start_ns) {
  for (const auto& client : clients_) {
    client->BeginPipelinedOp(start_ns);
  }
}

uint64_t ShardedDittoClient::EndPipelinedOp() {
  uint64_t complete_ns = 0;
  for (const auto& client : clients_) {
    complete_ns = std::max(complete_ns, client->EndPipelinedOp());
  }
  return complete_ns;
}

DittoStats ShardedDittoClient::stats() const {
  DittoStats total;
  for (const auto& client : clients_) {
    const DittoStats& s = client->stats();
    total.gets += s.gets;
    total.sets += s.sets;
    total.hits += s.hits;
    total.misses += s.misses;
    total.deletes += s.deletes;
    total.evictions += s.evictions;
    total.expired += s.expired;
    total.regrets += s.regrets;
    total.set_retries += s.set_retries;
    total.cas_failures += s.cas_failures;
    total.insert_retries += s.insert_retries;
    total.dup_resolved += s.dup_resolved;
  }
  return total;
}

void ShardedDittoClient::ResetStats() {
  for (const auto& client : clients_) {
    client->ResetStats();
  }
}

}  // namespace ditto::core
