#include "core/sharded_client.h"

#include "common/hash.h"

namespace ditto::core {

ShardedPool::ShardedPool(const dm::PoolConfig& per_node_config, int nodes,
                         uint64_t partition_seed)
    : partition_seed_(partition_seed) {
  pools_.reserve(nodes);
  for (int i = 0; i < nodes; ++i) {
    pools_.push_back(std::make_unique<dm::MemoryPool>(per_node_config));
  }
}

uint64_t ShardedPool::cached_objects() const {
  uint64_t total = 0;
  for (const auto& pool : pools_) {
    total += pool->cached_objects();
  }
  return total;
}

void ShardedPool::SetCapacityObjectsPerNode(uint64_t capacity) {
  for (const auto& pool : pools_) {
    pool->SetCapacityObjects(capacity);
  }
}

ShardedDittoServer::ShardedDittoServer(ShardedPool* pool, const DittoConfig& config) {
  for (int i = 0; i < pool->num_nodes(); ++i) {
    servers_.push_back(std::make_unique<DittoServer>(&pool->node(i), config));
  }
}

ShardedDittoClient::ShardedDittoClient(ShardedPool* pool, rdma::ClientContext* ctx,
                                       const DittoConfig& config)
    : pool_(pool), ctx_(ctx) {
  for (int i = 0; i < pool->num_nodes(); ++i) {
    clients_.push_back(std::make_unique<DittoClient>(&pool->node(i), ctx, config));
  }
}

DittoClient& ShardedDittoClient::Route(std::string_view key) {
  return *clients_[pool_->NodeFor(HashKey(key))];
}

bool ShardedDittoClient::Get(std::string_view key, std::string* value) {
  return Route(key).Get(key, value);
}

void ShardedDittoClient::Set(std::string_view key, std::string_view value) {
  Route(key).Set(key, value);
}

bool ShardedDittoClient::Delete(std::string_view key) { return Route(key).Delete(key); }

void ShardedDittoClient::FlushBuffers() {
  for (const auto& client : clients_) {
    client->FlushBuffers();
  }
}

void ShardedDittoClient::SetBatchOps(size_t ops) {
  for (const auto& client : clients_) {
    client->SetBatchOps(ops);
  }
}

DittoStats ShardedDittoClient::stats() const {
  DittoStats total;
  for (const auto& client : clients_) {
    const DittoStats& s = client->stats();
    total.gets += s.gets;
    total.sets += s.sets;
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.regrets += s.regrets;
    total.set_retries += s.set_retries;
  }
  return total;
}

void ShardedDittoClient::ResetStats() {
  for (const auto& client : clients_) {
    client->mutable_stats() = DittoStats{};
  }
}

}  // namespace ditto::core
