// Multi-memory-node deployments (paper §5.1: "Ditto is compatible with
// memory pools with multiple MNs as long as the memory pool offers the
// required interfaces").
//
// ShardedPool owns N independent memory nodes; keys are routed to nodes by
// hash. ShardedDittoClient fans a client thread out across per-node
// DittoClients that share one ClientContext (one virtual clock per client
// thread, one NIC/CPU model per memory node), so adding memory nodes scales
// the pool's aggregate NIC message rate — the resource that bounds Ditto's
// throughput on a single MN.
#ifndef DITTO_CORE_SHARDED_CLIENT_H_
#define DITTO_CORE_SHARDED_CLIENT_H_

#include <memory>
#include <vector>

#include "common/hash.h"
#include "core/ditto_client.h"
#include "dm/pool.h"

namespace ditto::core {

// ShardedPool is immutable after construction (nodes are created in the
// constructor and only ever read), so concurrent client threads may share
// one instance; all mutable state lives in the per-node MemoryPools, whose
// arenas/controllers are themselves thread-safe.
class ShardedPool {
 public:
  // Creates `nodes` memory nodes, each with the given per-node config.
  // capacity_objects in the config is interpreted PER NODE. A non-zero
  // partition_seed switches key routing to a seeded mix of the full hash,
  // giving reshufflable (and better-spread) partitions; 0 keeps the legacy
  // high-bit routing.
  ShardedPool(const dm::PoolConfig& per_node_config, int nodes, uint64_t partition_seed = 0);

  int num_nodes() const { return static_cast<int>(pools_.size()); }
  dm::MemoryPool& node(int i) { return *pools_[i]; }
  uint64_t partition_seed() const { return partition_seed_; }

  // Which node a key hash routes to.
  int NodeFor(uint64_t hash) const {
    if (partition_seed_ != 0) {
      return static_cast<int>(SeededPartition(hash, pools_.size(), partition_seed_));
    }
    // Use high bits: the low bits already pick the bucket within a node.
    return static_cast<int>((hash >> 48) % pools_.size());
  }

  uint64_t cached_objects() const;
  void SetCapacityObjectsPerNode(uint64_t capacity);

 private:
  std::vector<std::unique_ptr<dm::MemoryPool>> pools_;
  uint64_t partition_seed_;
};

// Host-side server state for every node of a sharded pool.
class ShardedDittoServer {
 public:
  ShardedDittoServer(ShardedPool* pool, const DittoConfig& config);

 private:
  std::vector<std::unique_ptr<DittoServer>> servers_;
};

class ShardedDittoClient {
 public:
  ShardedDittoClient(ShardedPool* pool, rdma::ClientContext* ctx, const DittoConfig& config);

  bool Get(std::string_view key, std::string* value);
  bool Set(std::string_view key, std::string_view value, uint64_t ttl_ticks = 0);
  bool Delete(std::string_view key);
  bool Expire(std::string_view key, uint64_t ttl_ticks);
  // Pipelined lookup of keys[0..n): keys are grouped by owning node and each
  // node's run chains its metadata verbs behind one doorbell (same contract
  // as DittoClient::MultiGet). Returns the number of hits.
  size_t MultiGet(size_t n, const std::string_view* keys, std::string* const* values,
                  bool* hits);
  // Elastic scaling: splits an aggregate capacity evenly over the nodes with
  // dm::CapacityShare (each node keeps >= 1 object, so an aggregate below the
  // node count rounds up to one per node) and resizes every node through its
  // kRpcResize controller RPC, evicting down on shrink. Returns false if any
  // node rejected or stalled.
  bool ResizeCapacity(uint64_t total_capacity_objects);
  void FlushBuffers();
  // Doorbell-batches async metadata verbs on every per-node QP.
  void SetBatchOps(size_t ops);

  // Pipelined-op timeline across all per-node QPs: an op routed to any node
  // charges its waits to that node's detached cursor; the op's completion is
  // the latest cursor across nodes (untouched nodes stay at start_ns).
  void BeginPipelinedOp(uint64_t start_ns);
  uint64_t EndPipelinedOp();

  // Aggregated statistics across the per-node clients.
  DittoStats stats() const;
  void ResetStats();
  rdma::ClientContext& ctx() { return *ctx_; }
  DittoClient& client_for_node(int i) { return *clients_[i]; }

 private:
  DittoClient& Route(std::string_view key);

  ShardedPool* pool_;
  rdma::ClientContext* ctx_;
  std::vector<std::unique_ptr<DittoClient>> clients_;

  // MultiGet scatter/gather scratch, reused across runs (a client instance
  // is single-threaded, like its DittoClients).
  std::vector<std::vector<size_t>> mg_by_node_;
  std::vector<std::string_view> mg_keys_;
  std::vector<std::string*> mg_values_;
  std::unique_ptr<bool[]> mg_hits_;
  size_t mg_hits_cap_ = 0;
};

}  // namespace ditto::core

#endif  // DITTO_CORE_SHARDED_CLIENT_H_
