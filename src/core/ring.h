// Epoch-swapped consistent-hash ring: the mutable replacement for
// ShardedPool's immutable node directory.
//
// Placement is directory-primary with rendezvous fallback:
//   1. Every key has a PRIMARY node given by the legacy directory function
//      (bit-identical to ShardedPool::NodeFor over the initial node count),
//      so a ring that never changes routes exactly like the sharded pool.
//   2. If the primary is not live (crashed or departed), the key falls back
//      to highest-random-weight (rendezvous) hashing over the live set, so
//      only the dead node's keys move — the consistent-hashing property —
//      and every client computes the same fallback without coordination.
//
// Concurrency: epochs are immutable once published. Mutation appends a new
// RingEpoch (copy + edit) under a mutex and swaps one atomic pointer;
// concurrent readers load the pointer once per routing decision and never
// observe a half-updated ring. Epoch storage is append-only for the life of
// the ring (lifecycle steps are rare; reclamation would buy bytes and cost a
// hazard-pointer scheme).
//
// Nodes joined beyond the initial directory (node id >= directory_size) are
// never primary; they serve keys only through rendezvous fallback of dead
// primaries. Growing the directory itself would remap nearly every key
// (the modulo changes) and is deliberately unsupported.
#ifndef DITTO_CORE_RING_H_
#define DITTO_CORE_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/hash.h"
#include "common/thread_annotations.h"

namespace ditto::core {

// Wire form of one membership event, as a gossip/announce message would carry
// it: which node changed state, and the epoch the change produced. Pinned
// trivially-copyable so it can be memcpy'd onto the wire.
struct RingEntry {
  uint32_t node_id;
  uint16_t live;  // 1 = joined/restarted, 0 = left/crashed
  uint16_t reserved;
  uint64_t epoch;
};
static_assert(std::is_trivially_copyable_v<RingEntry>,
              "RingEntry is memcpy'd to/from the wire; it must stay trivially copyable");
static_assert(sizeof(RingEntry) == 16, "RingEntry must match the 16-byte wire record");

// Wire form of an epoch summary (a full-membership announce): enough for a
// fresh client to reconstruct routing without replaying the event log.
struct RingEpochHeader {
  uint64_t epoch;
  uint64_t live_mask;       // bit i set = node i live
  uint32_t directory_size;  // legacy routing domain (initial node count)
  uint32_t num_live;
};
static_assert(std::is_trivially_copyable_v<RingEpochHeader>,
              "RingEpochHeader is memcpy'd to/from the wire; it must stay trivially copyable");
static_assert(sizeof(RingEpochHeader) == 24,
              "RingEpochHeader must match the 24-byte wire record");

// One immutable published ring state.
class RingEpoch {
 public:
  RingEpoch(uint64_t epoch, uint32_t directory_size, uint64_t partition_seed,
            uint64_t live_mask)
      : epoch_(epoch),
        directory_size_(directory_size),
        partition_seed_(partition_seed),
        live_mask_(live_mask) {
    for (uint32_t id = 0; id < 64; ++id) {
      if ((live_mask_ >> id) & 1) {
        live_.push_back(id);
      }
    }
  }

  uint64_t epoch() const { return epoch_; }
  uint64_t live_mask() const { return live_mask_; }
  const std::vector<uint32_t>& live() const { return live_; }
  bool IsLive(uint32_t node_id) const {
    return node_id < 64 && ((live_mask_ >> node_id) & 1) != 0;
  }

  RingEpochHeader header() const {
    return RingEpochHeader{epoch_, live_mask_, directory_size_,
                           static_cast<uint32_t>(live_.size())};
  }

  // The key's primary under the legacy directory function — bit-identical to
  // ShardedPool::NodeFor so an unchanged ring routes exactly like the
  // immutable sharded directory.
  uint32_t PrimaryFor(uint64_t hash) const {
    if (partition_seed_ != 0) {
      return static_cast<uint32_t>(SeededPartition(hash, directory_size_, partition_seed_));
    }
    return static_cast<uint32_t>((hash >> 48) % directory_size_);
  }

  // Routes a key: primary if live, rendezvous over the live set otherwise.
  // Returns -1 when no node is live.
  int NodeFor(uint64_t hash) const {
    const uint32_t primary = PrimaryFor(hash);
    if (IsLive(primary)) {
      return static_cast<int>(primary);
    }
    int best = -1;
    uint64_t best_score = 0;
    for (const uint32_t id : live_) {
      // Highest-random-weight: every client scores (key, node) identically,
      // so the fallback owner needs no coordination and moves only when the
      // live set changes.
      const uint64_t score = Mix64(hash ^ Mix64(partition_seed_ + id + 1));
      if (best < 0 || score > best_score) {
        best = static_cast<int>(id);
        best_score = score;
      }
    }
    return best;
  }

 private:
  uint64_t epoch_;
  uint32_t directory_size_;
  uint64_t partition_seed_;
  uint64_t live_mask_;
  std::vector<uint32_t> live_;
};

class HashRing {
 public:
  // Epoch 0: all `directory_size` directory nodes live.
  HashRing(uint32_t directory_size, uint64_t partition_seed)
      : directory_size_(directory_size), partition_seed_(partition_seed) {
    auto epoch0 = std::make_unique<RingEpoch>(
        0, directory_size, partition_seed,
        directory_size >= 64 ? ~uint64_t{0} : (uint64_t{1} << directory_size) - 1);
    current_.store(epoch0.get(), std::memory_order_release);
    MutexLock lock(&mu_);
    epochs_.push_back(std::move(epoch0));
  }

  // Lock-free read side: one acquire load per routing decision.
  const RingEpoch* current() const { return current_.load(std::memory_order_acquire); }
  int NodeFor(uint64_t hash) const { return current()->NodeFor(hash); }
  uint64_t epoch() const { return current()->epoch(); }
  uint32_t directory_size() const { return directory_size_; }

  // Publishes a new epoch with node_id removed/added. Returns the new epoch
  // number. Safe against concurrent readers; writers are serialized.
  uint64_t SwapRemove(uint32_t node_id) {
    return Swap(/*node_id=*/node_id, /*live=*/false);
  }
  uint64_t SwapAdd(uint32_t node_id) { return Swap(/*node_id=*/node_id, /*live=*/true); }

 private:
  uint64_t Swap(uint32_t node_id, bool live) {
    MutexLock lock(&mu_);
    const RingEpoch* cur = current_.load(std::memory_order_acquire);
    const uint64_t bit = uint64_t{1} << node_id;
    const uint64_t mask = live ? (cur->live_mask() | bit) : (cur->live_mask() & ~bit);
    auto next = std::make_unique<RingEpoch>(cur->epoch() + 1, directory_size_,
                                            partition_seed_, mask);
    const uint64_t epoch = next->epoch();
    current_.store(next.get(), std::memory_order_release);
    epochs_.push_back(std::move(next));
    return epoch;
  }

  uint32_t directory_size_;
  uint64_t partition_seed_;
  mutable Mutex mu_;
  // Append-only: old epochs stay alive so a reader holding a stale pointer
  // never dereferences freed memory.
  std::vector<std::unique_ptr<RingEpoch>> epochs_ GUARDED_BY(mu_);
  std::atomic<const RingEpoch*> current_;
};

}  // namespace ditto::core

#endif  // DITTO_CORE_RING_H_
