// Wire format of cached objects in the heap.
//
//   +0  ObjectHeader (8 B): key_len(2) | val_len(4) | ext_words(2)
//   +8  checksum     (8 B)  integrity word over header + key + value (see
//                           ObjectChecksum). Covers exactly the bytes that
//                           are immutable once the object is published —
//                           expiry and extension words are re-written in
//                           place and are deliberately excluded.
//   +16 expiry_tick  (8 B)  absolute logical-clock tick at which the object
//                           expires; 0 = never. Expiry is lazy: the next
//                           lookup that reads an expired object reclaims it.
//   +24 extension metadata words (8 B each, paper §4.4 "metadata header")
//   +24+8*ext  key bytes
//   ...        value bytes
//
// Objects occupy contiguous runs of 64-byte blocks; the run length is what
// the slot's 1-byte size field stores. The expiry tick and extension words
// live at fixed offsets so eviction sampling and Expire can access them with
// one small READ/WRITE.
//
// The checksum is what keeps the paper's two-READ Get safe under contention
// (FUSEE-style self-verifying objects): a reader that raced with an
// eviction/update may copy blocks that were freed and reused mid-READ;
// rather than spending a third verb re-validating the slot, DecodeObject
// recomputes the checksum and rejects torn buffers, which the lookup then
// treats as a miss (a legal linearization of the concurrent update).
#ifndef DITTO_CORE_OBJECT_H_
#define DITTO_CORE_OBJECT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/hash.h"
#include "dm/allocator.h"
#include "policies/policy.h"

namespace ditto::core {

struct ObjectHeader {
  uint32_t val_len;
  uint16_t key_len;
  uint16_t ext_words;
};
static_assert(std::is_trivially_copyable_v<ObjectHeader>,
              "ObjectHeader is memcpy'd to/from the wire; it must stay trivially copyable");
static_assert(sizeof(ObjectHeader) == 8, "ObjectHeader must match the 8-byte wire header");

inline constexpr uint64_t kChecksumOff = sizeof(ObjectHeader);
inline constexpr uint64_t kExpiryOff = kChecksumOff + 8;
inline constexpr uint64_t kExtWordsOff = kExpiryOff + 8;

inline size_t ObjectBytes(size_t key_len, size_t val_len, int ext_words) {
  return kExtWordsOff + static_cast<size_t>(ext_words) * 8 + key_len + val_len;
}

// Integrity word over the immutable bytes of a published object: the header
// word plus the contiguous key+value range. Expiry and extension words are
// excluded on purpose — Expire and TouchObject rewrite them in place after
// publication, and a checksum covering them would invalidate live objects.
inline uint64_t ObjectChecksum(const ObjectHeader& header, const void* key_and_value,
                               size_t key_and_value_len) {
  uint64_t header_word;
  std::memcpy(&header_word, &header, 8);
  return ditto::Mix64(ditto::ChecksumBytes(key_and_value, key_and_value_len) ^ header_word);
}

inline int ObjectBlocks(size_t key_len, size_t val_len, int ext_words) {
  return dm::RemoteAllocator::BlocksForBytes(ObjectBytes(key_len, val_len, ext_words));
}

// Serializes an object into buf (resized to the padded block size).
inline void EncodeObject(std::string_view key, std::string_view value,
                         const uint64_t* ext, int ext_words, std::vector<uint8_t>* buf,
                         uint64_t expiry_tick = 0) {
  const size_t bytes = ObjectBytes(key.size(), value.size(), ext_words);
  buf->assign(((bytes + dm::kBlockBytes - 1) / dm::kBlockBytes) * dm::kBlockBytes, 0);
  ObjectHeader header{static_cast<uint32_t>(value.size()), static_cast<uint16_t>(key.size()),
                      static_cast<uint16_t>(ext_words)};
  std::memcpy(buf->data(), &header, sizeof(header));
  std::memcpy(buf->data() + kExpiryOff, &expiry_tick, 8);
  if (ext_words > 0) {
    std::memcpy(buf->data() + kExtWordsOff, ext, static_cast<size_t>(ext_words) * 8);
  }
  uint8_t* key_start = buf->data() + kExtWordsOff + static_cast<size_t>(ext_words) * 8;
  // Empty views may carry a null data() (a default-constructed string_view
  // does); memcpy's pointer arguments are attributed nonnull even for n == 0,
  // so UBSan flags the unguarded call.
  if (!key.empty()) {
    std::memcpy(key_start, key.data(), key.size());
  }
  if (!value.empty()) {
    std::memcpy(key_start + key.size(), value.data(), value.size());
  }
  const uint64_t checksum = ObjectChecksum(header, key_start, key.size() + value.size());
  std::memcpy(buf->data() + kChecksumOff, &checksum, 8);
}

// Parsed view into a raw object buffer. Pointers alias the buffer.
struct DecodedObject {
  ObjectHeader header;
  uint64_t expiry_tick;
  const uint64_t* ext;
  std::string_view key;
  std::string_view value;

  // Whether the object is past its TTL at logical time `now`.
  bool ExpiredAt(uint64_t now) const { return expiry_tick != 0 && now >= expiry_tick; }
};

// Returns false if the buffer is too small / malformed, or if the embedded
// checksum does not match — the latter is how a reader that raced with a
// concurrent free/reuse of the object's blocks detects the torn copy.
inline bool DecodeObject(const uint8_t* buf, size_t len, DecodedObject* out) {
  if (len < kExtWordsOff) {
    return false;
  }
  std::memcpy(&out->header, buf, sizeof(ObjectHeader));
  const size_t need = ObjectBytes(out->header.key_len, out->header.val_len,
                                  out->header.ext_words);
  if (need > len || out->header.ext_words > policy::Metadata::kMaxExtensionWords) {
    return false;
  }
  std::memcpy(&out->expiry_tick, buf + kExpiryOff, 8);
  out->ext = reinterpret_cast<const uint64_t*>(buf + kExtWordsOff);
  const char* key_start =
      reinterpret_cast<const char*>(buf + kExtWordsOff + size_t{out->header.ext_words} * 8);
  out->key = std::string_view(key_start, out->header.key_len);
  out->value = std::string_view(key_start + out->header.key_len, out->header.val_len);
  uint64_t stored = 0;
  std::memcpy(&stored, buf + kChecksumOff, 8);
  if (stored != ObjectChecksum(out->header, key_start,
                               size_t{out->header.key_len} + out->header.val_len)) {
    return false;
  }
  return true;
}

}  // namespace ditto::core

#endif  // DITTO_CORE_OBJECT_H_
