// Frequency-counter cache (paper §4.2.2): a client-side write-combining
// buffer that absorbs increments to the remote `freq` counters and flushes
// them as one RDMA_FAA when either (a) an entry's buffered delta reaches the
// threshold t, or (b) the cache is at capacity, in which case the entry with
// the earliest insert time is flushed.
#ifndef DITTO_CORE_FC_CACHE_H_
#define DITTO_CORE_FC_CACHE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "hashtable/hash_table.h"

namespace ditto::core {

class FcCache {
 public:
  // enabled=false degrades to one async FAA per access (the ablation mode).
  // max_age_accesses bounds how long a buffered delta may lag behind the
  // remote counter (the paper tracks entry insert times for this purpose);
  // 0 disables age-based flushing.
  FcCache(ht::HashTable* table, int threshold, size_t capacity_bytes, bool enabled,
          uint64_t max_age_accesses = 512)
      : table_(table), threshold_(threshold), capacity_bytes_(capacity_bytes),
        enabled_(enabled), max_age_accesses_(max_age_accesses) {}

  // Records one access to the object indexed by slot_addr. object_id_bytes
  // sizes the entry (the entry stores the object id, paper Figure text).
  void RecordAccess(uint64_t slot_addr, size_t object_id_bytes);

  // Flushes every buffered delta (used at the end of runs and by tests).
  void FlushAll();

  // The delta buffered for slot_addr but not yet applied remotely. Eviction
  // priority evaluation adds this to the remote freq so the client's own
  // buffered accesses are not invisible to its LFU-family experts.
  uint64_t PendingDelta(uint64_t slot_addr) const {
    const auto it = entries_.find(slot_addr);
    return it == entries_.end() ? 0 : it->second.delta;
  }

  size_t entry_count() const { return entries_.size(); }
  size_t bytes_used() const { return bytes_used_; }
  uint64_t flushes() const { return flushes_; }

 private:
  struct Entry {
    uint64_t delta = 0;
    uint64_t insert_seq = 0;
    size_t bytes = 0;
  };

  void FlushEntry(uint64_t slot_addr);
  void EvictOldest();
  void FlushAged();

  ht::HashTable* table_;
  int threshold_;
  size_t capacity_bytes_;
  bool enabled_;
  uint64_t max_age_accesses_;

  std::unordered_map<uint64_t, Entry> entries_;  // keyed by slot address
  std::deque<uint64_t> fifo_;                    // insertion order (may hold stale addrs)
  size_t bytes_used_ = 0;
  uint64_t seq_ = 0;
  uint64_t flushes_ = 0;
};

}  // namespace ditto::core

#endif  // DITTO_CORE_FC_CACHE_H_
