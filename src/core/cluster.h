// Fault-tolerant multi-node deployment: the cluster lifecycle layer on top of
// the sharded pool design.
//
// ClusterPool owns N memory nodes (like ShardedPool), but routes keys through
// an epoch-swapped HashRing instead of an immutable directory, arms every
// node's FaultState so verbs can fail, and provides the lifecycle verbs —
// Crash / Restart / Leave / Join — that the simulated schedule applies.
//
// ClusterClient mirrors ShardedDittoClient's surface (so the same replay
// adapter drives both), adding:
//   * per-op retry with exponential backoff charged to virtual time: each
//     attempt clears the QP's sticky fault status, re-routes through the
//     current ring epoch, and backs off before re-issuing; Set republish is
//     idempotent (upsert), so retries are safe on every op kind;
//   * node-generation tracking: a restarted (wiped) node bumps its generation
//     and every client lazily recreates its per-node DittoClient before the
//     next verb — stale allocator segment caches from before the wipe would
//     otherwise double-allocate heap blocks;
//   * background key migration for join/leave: the client that claims a
//     lifecycle step scans source tables chunk-wise and re-homes objects whose
//     ring owner changed, racing safely against concurrent Gets/Sets because
//     torn object reads are rejected by the object checksum and Set/Delete go
//     through the normal CAS-published paths.
//
// With an empty FaultPlan and an unchanged ring, every op routes and executes
// exactly like ShardedDittoClient: verb counts, NIC messages, and hit rates
// are bit-identical (pinned by tests/cluster_test.cc).
#ifndef DITTO_CORE_CLUSTER_H_
#define DITTO_CORE_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "core/ditto_client.h"
#include "core/ring.h"
#include "dm/pool.h"
#include "hashtable/layout.h"
#include "rdma/fault.h"

namespace ditto::core {

struct ClusterConfig {
  int nodes = 4;
  // Seed of the ring's directory partition (see ShardedPool): non-zero mixes
  // the full hash, 0 keeps legacy high-bit routing.
  uint64_t partition_seed = 1;
  dm::PoolConfig pool;  // per-node configuration
  DittoConfig ditto;
  // Probabilistic fault legs applied to EVERY node (crash windows are usually
  // set per node via ClusterPool::ConfigureNodeFault instead). An empty plan
  // still arms the fault layer so scheduled Crash() calls take effect, but
  // keeps verb accounting bit-identical to the fault-free build.
  rdma::FaultPlan fault;
  // Client-side retry policy: an op is retried up to max_retries extra times,
  // backing off backoff_base_us * 2^attempt of virtual time between attempts.
  int max_retries = 3;
  double backoff_base_us = 50.0;
};

// N memory nodes + their Ditto servers + the shared hash ring + lifecycle
// state. Thread-safe: lifecycle verbs and ClaimStep are serialized internally;
// routing and generation reads are lock-free.
class ClusterPool {
 public:
  explicit ClusterPool(const ClusterConfig& config);

  int num_nodes() const { return static_cast<int>(pools_.size()); }
  dm::MemoryPool& node(int i) { return *pools_[i]; }
  const ClusterConfig& config() const { return config_; }
  HashRing& ring() { return ring_; }
  const HashRing& ring() const { return ring_; }
  bool IsLive(int i) const { return ring_.current()->IsLive(static_cast<uint32_t>(i)); }

  // Overrides node i's fault plan (e.g. per-node crash windows). Call before
  // traffic: plans are read lock-free by the verb layer.
  void ConfigureNodeFault(int i, const rdma::FaultPlan& plan);

  // Wipe-generation of node i: bumped by Restart. Clients compare against
  // their cached value and recreate per-node state when it moved.
  uint64_t generation(int i) const {
    return generations_[static_cast<size_t>(i)].load(std::memory_order_acquire);
  }

  // --- Lifecycle verbs ------------------------------------------------------
  // Crash: the node stops answering verbs (data effectively lost) and leaves
  // the ring. Restart: the crashed node's memory is wiped cold, verbs answer
  // again, the wipe generation is bumped, and the node rejoins the ring.
  // Leave: planned departure — the node stays healthy but leaves the ring
  // (callers then drain its keys with ClusterClient migration). Join: the
  // node (re)enters the ring.
  void Crash(int i);
  void Restart(int i);
  void Leave(int i);
  void Join(int i);

  // Global-once lifecycle application: every client of the deployment calls
  // ClaimStep(step_index) when its replay crosses a scheduled step; exactly
  // one caller per index gets true and performs the step + migration.
  bool ClaimStep(uint64_t step_index);

  // Aggregate cached objects over all nodes (live and dead).
  uint64_t cached_objects() const;

  // Migration telemetry (accumulated by ClusterClient migrations).
  void AddMigrated(uint64_t objects) {
    migrated_objects_.fetch_add(objects, std::memory_order_relaxed);
  }
  uint64_t migrated_objects() const {
    return migrated_objects_.load(std::memory_order_relaxed);
  }

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<dm::MemoryPool>> pools_;
  std::vector<std::unique_ptr<DittoServer>> servers_;
  HashRing ring_;
  std::unique_ptr<std::atomic<uint64_t>[]> generations_owned_;
  std::atomic<uint64_t>* generations_;  // [num_nodes]
  Mutex step_mu_;
  uint64_t steps_claimed_ GUARDED_BY(step_mu_) = 0;
  std::atomic<uint64_t> migrated_objects_{0};
};

// One client thread's view of the cluster. Mirrors ShardedDittoClient's
// surface; single-threaded like it (one instance per ClientContext).
class ClusterClient {
 public:
  ClusterClient(ClusterPool* pool, rdma::ClientContext* ctx, const DittoConfig& config);

  bool Get(std::string_view key, std::string* value);
  bool Set(std::string_view key, std::string_view value, uint64_t ttl_ticks = 0);
  bool Delete(std::string_view key);
  bool Expire(std::string_view key, uint64_t ttl_ticks);
  // Pipelined lookup; same contract as ShardedDittoClient::MultiGet. Keys
  // whose node run failed are retried individually through the Get path.
  size_t MultiGet(size_t n, const std::string_view* keys, std::string* const* values,
                  bool* hits);

  // True iff the LAST single-key op exhausted its retries (or no node was
  // live); the op reported a miss/drop, and a front end should answer
  // -UNAVAILABLE rather than a silent miss.
  bool last_op_unavailable() const { return last_unavailable_; }
  // Per-key unavailability of the last MultiGet run (index into that run).
  bool mg_unavailable(size_t i) const {
    return i < mg_unavail_.size() && mg_unavail_[i] != 0;
  }

  // Splits an aggregate capacity over the LIVE nodes with dm::CapacityShare
  // and resizes each through its controller. Remembered and re-applied after
  // every lifecycle step, so survivors absorb a crashed node's share.
  bool ResizeCapacity(uint64_t total_capacity_objects);

  // --- Lifecycle application ----------------------------------------------
  // Applies the next scheduled lifecycle step. Every client of the deployment
  // calls this when its replay crosses the step (like ResizeCapacity); the
  // pool's step counter makes application global-once, and every caller
  // refreshes its per-node clients afterwards. The claiming client performs
  // key migration inline (Join/Restart pull misplaced keys from all live
  // nodes; Leave drains the departing node).
  void ApplyCrash(uint32_t node);
  void ApplyRestart(uint32_t node);
  void ApplyLeave(uint32_t node);
  void ApplyJoin(uint32_t node);

  void FlushBuffers();
  void SetBatchOps(size_t ops);
  void BeginPipelinedOp(uint64_t start_ns);
  uint64_t EndPipelinedOp();

  // Aggregated statistics. gets/hits/misses/sets/deletes are counted once per
  // LOGICAL op (retries of a failed attempt do not inflate them); the
  // remaining counters aggregate the per-node clients, including clients
  // retired by a node wipe.
  DittoStats stats() const;
  void ResetStats();
  rdma::ClientContext& ctx() { return *ctx_; }
  DittoClient& client_for_node(int i) { return *clients_[i]; }
  uint64_t migrated_objects() const { return migrated_; }

 private:
  // The per-node client, recreated first if the node was wiped since we last
  // touched it (stale allocator caches would double-allocate the new heap).
  DittoClient* ClientFor(int node);
  void RefreshNode(int node);
  void RefreshAll();
  // Charges the attempt's exponential backoff to virtual time.
  void Backoff(int attempt);
  // True once per logical op: runs `attempt` against the ring until a node's
  // QP reports ok. The op outcome of the successful attempt is returned;
  // exhausting retries (or an empty ring) sets last_unavailable_.
  template <typename Op>
  bool RetryLoop(uint64_t hash, Op&& attempt);
  // Claims the next schedule index; on success applies `step` and re-applies
  // the remembered capacity split. All callers refresh local clients.
  template <typename Step>
  void ApplyStep(Step&& step);
  // Moves every object on `src` whose current ring owner is a different node
  // to that owner. Returns the number of objects moved.
  uint64_t MigrateMisplaced(int src);
  // Migration sweep for a node that just (re)joined: pulls its keys from all
  // other live nodes.
  void MigrateInto(uint32_t node);
  void ResplitCapacity();

  ClusterPool* pool_;
  rdma::ClientContext* ctx_;
  DittoConfig ditto_config_;
  std::vector<std::unique_ptr<DittoClient>> clients_;
  std::vector<uint64_t> local_gen_;
  size_t batch_ops_ = 0;
  uint64_t local_steps_seen_ = 0;
  uint64_t last_total_capacity_ = 0;
  bool last_unavailable_ = false;
  uint64_t migrated_ = 0;

  // Logical (once-per-op) counters + counters inherited from clients retired
  // by node wipes.
  DittoStats ops_;
  DittoStats retired_;

  // MultiGet scatter/gather scratch (mirrors ShardedDittoClient).
  std::vector<std::vector<size_t>> mg_by_node_;
  std::vector<std::string_view> mg_keys_;
  std::vector<std::string*> mg_values_;
  std::unique_ptr<bool[]> mg_hits_;
  size_t mg_hits_cap_ = 0;
  std::vector<uint8_t> mg_unavail_;

  // Migration scratch, preallocated so the copy loop stays allocation-free.
  std::vector<uint8_t> mig_buf_;
  std::vector<ht::SlotView> mig_slots_;
};

}  // namespace ditto::core

#endif  // DITTO_CORE_CLUSTER_H_
