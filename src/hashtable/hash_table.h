// Client-side driver of the sample-friendly hash table. Provides the
// one-READ bucket fetch, the one-READ contiguous-slot sampling, and the
// slot-level CAS/WRITE/FAA primitives used by the cache layers. One instance
// per client thread (wraps that thread's Verbs endpoint).
#ifndef DITTO_HASHTABLE_HASH_TABLE_H_
#define DITTO_HASHTABLE_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "dm/pool.h"
#include "hashtable/layout.h"
#include "rdma/verbs.h"

namespace ditto::ht {

class HashTable {
 public:
  HashTable(dm::MemoryPool* pool, rdma::Verbs* verbs)
      : pool_(pool),
        verbs_(verbs),
        table_addr_(pool->table_addr()),
        num_buckets_(pool->num_buckets()),
        slots_per_bucket_(pool->slots_per_bucket()) {}

  size_t num_buckets() const { return num_buckets_; }
  int slots_per_bucket() const { return slots_per_bucket_; }
  size_t num_slots() const { return num_buckets_ * static_cast<size_t>(slots_per_bucket_); }

  uint64_t BucketIndexFor(uint64_t hash) const { return hash % num_buckets_; }
  uint64_t SlotAddr(uint64_t global_slot_index) const {
    return table_addr_ + global_slot_index * kSlotBytes;
  }
  uint64_t BucketSlotAddr(uint64_t bucket, int slot) const {
    return SlotAddr(bucket * slots_per_bucket_ + slot);
  }

  // Fetches all slots of one bucket with a single READ. Returns false (and
  // clears *out) for an out-of-range bucket instead of silently reading a
  // neighbouring bucket.
  bool ReadBucket(uint64_t bucket, std::vector<SlotView>* out);

  // Signalled (completion-queue) variant of ReadBucket: decodes the bucket
  // into *out at post time and returns the bucket READ's work-request id —
  // the caller consumes the completion (Verbs::WaitWr) when its state machine
  // is ready to look at the slots. Returns 0 (no verb issued, *out cleared)
  // for an out-of-range bucket.
  uint64_t PostReadBucket(uint64_t bucket, std::vector<SlotView>* out);

  // Fetches `count` consecutive slots starting at a global slot index with a
  // single READ (the sampling primitive). The start is clamped down so the
  // range never wraps past the table end; the clamped start is reported
  // through `actual_start` (when non-null) so callers can map returned slots
  // back to global slot indices. Returns false — clearing *out and issuing
  // no READ — when count is non-positive or exceeds the table size (the old
  // unsigned `num_slots() - count` clamp underflowed there and aliased the
  // read into arbitrary slots).
  bool ReadSlots(uint64_t start_slot, int count, std::vector<SlotView>* out,
                 uint64_t* actual_start = nullptr);

  // Re-reads a single slot (all 40 bytes).
  SlotView ReadSlot(uint64_t slot_addr);

  // CAS on the atomic field. Returns true iff the swap succeeded.
  bool CasAtomic(uint64_t slot_addr, uint64_t expected, uint64_t desired);

  // Initializes hash + insert_ts + last_ts + freq with one combined WRITE
  // (the stateless group plus the freq reset share one contiguous range).
  void WriteAllMetadata(uint64_t slot_addr, uint64_t hash, uint64_t insert_ts, uint64_t last_ts,
                        uint64_t freq);

  // Updates the stateless last-access timestamp (single 8-byte WRITE).
  void WriteLastTs(uint64_t slot_addr, uint64_t last_ts);
  void WriteLastTsAsync(uint64_t slot_addr, uint64_t last_ts);

  // Stateful frequency update (FAA); async variant is fire-and-forget.
  void AddFreq(uint64_t slot_addr, uint64_t delta);
  void AddFreqAsync(uint64_t slot_addr, uint64_t delta);

  // Writes the expert bitmap of a history entry (async, paper Figure 11).
  void WriteExpertBmapAsync(uint64_t slot_addr, uint64_t bmap);

 private:
  static SlotView DecodeSlot(const uint8_t* raw);

  dm::MemoryPool* pool_;
  rdma::Verbs* verbs_;
  uint64_t table_addr_;
  size_t num_buckets_;
  int slots_per_bucket_;
  std::vector<uint8_t> scratch_;
};

}  // namespace ditto::ht

#endif  // DITTO_HASHTABLE_HASH_TABLE_H_
