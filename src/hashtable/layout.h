// On-arena layout of the sample-friendly hash table (paper Figure 7).
//
// Each 40-byte slot is:
//   +0  atomic field  (8 B)  fp(1 B) | size(1 B, in 64-B blocks) | pointer(6 B)
//   +8  hash          (8 B)  full 64-bit hash of the object id
//   +16 insert_ts     (8 B)  (expert_bmap for history entries)
//   +24 last_ts       (8 B)
//   +32 freq          (8 B)
//
// The atomic field is the only word modified with CAS; metadata fields are
// updated with (possibly combined) WRITEs and FAAs. The stateless metadata
// (hash, insert_ts, last_ts) is contiguous so an insert initializes all
// metadata with a single 32-byte WRITE.
//
// size == 0xFF tags the slot as an embedded history entry whose pointer field
// carries the 48-bit history id (paper Figure 9). size == 0 with a zero
// atomic word is an empty slot.
#ifndef DITTO_HASHTABLE_LAYOUT_H_
#define DITTO_HASHTABLE_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace ditto::ht {

inline constexpr size_t kSlotBytes = 40;
inline constexpr uint8_t kHistorySizeTag = 0xFF;
inline constexpr uint64_t kPointerMask = (uint64_t{1} << 48) - 1;

// Field offsets within a slot.
inline constexpr uint64_t kAtomicOff = 0;
inline constexpr uint64_t kHashOff = 8;
inline constexpr uint64_t kInsertTsOff = 16;  // expert_bmap for history entries
inline constexpr uint64_t kLastTsOff = 24;
inline constexpr uint64_t kFreqOff = 32;

constexpr uint64_t PackAtomic(uint8_t fp, uint8_t size_blocks, uint64_t pointer) {
  return (static_cast<uint64_t>(fp) << 56) | (static_cast<uint64_t>(size_blocks) << 48) |
         (pointer & kPointerMask);
}

constexpr uint8_t AtomicFp(uint64_t atomic_word) { return static_cast<uint8_t>(atomic_word >> 56); }
constexpr uint8_t AtomicSize(uint64_t atomic_word) {
  return static_cast<uint8_t>(atomic_word >> 48);
}
constexpr uint64_t AtomicPointer(uint64_t atomic_word) { return atomic_word & kPointerMask; }

// A client-side decoded view of one slot.
struct SlotView {
  uint64_t atomic_word = 0;
  uint64_t hash = 0;
  uint64_t insert_ts = 0;  // expert_bmap when IsHistory()
  uint64_t last_ts = 0;
  uint64_t freq = 0;

  bool IsEmpty() const { return atomic_word == 0; }
  bool IsHistory() const { return AtomicSize(atomic_word) == kHistorySizeTag; }
  bool IsObject() const { return !IsEmpty() && !IsHistory(); }
  uint8_t fp() const { return AtomicFp(atomic_word); }
  uint8_t size_blocks() const { return AtomicSize(atomic_word); }
  uint64_t pointer() const { return AtomicPointer(atomic_word); }
  uint64_t history_id() const { return AtomicPointer(atomic_word); }
  uint64_t expert_bmap() const { return insert_ts; }
};

// SlotView mirrors the wire layout field-for-field, so a whole slot (or a
// whole bucket) decodes with one memcpy from the READ scratch buffer.
static_assert(std::is_trivially_copyable_v<SlotView>,
              "SlotView is memcpy'd off the wire; it must stay trivially copyable");
static_assert(sizeof(SlotView) == kSlotBytes, "SlotView must match the wire slot size");
static_assert(offsetof(SlotView, atomic_word) == kAtomicOff &&
                  offsetof(SlotView, hash) == kHashOff &&
                  offsetof(SlotView, insert_ts) == kInsertTsOff &&
                  offsetof(SlotView, last_ts) == kLastTsOff &&
                  offsetof(SlotView, freq) == kFreqOff,
              "SlotView fields must sit at the wire offsets");

// ditto-lint: hot-path-begin(slot-scan)
// Branch-reduced object match, equivalent to
//   slot.IsObject() && slot.fp() == fp && slot.hash == hash
// but evaluated with flag arithmetic instead of short-circuit branches: a
// bucket scan compiles to a straight-line compare/set chain with one
// unpredictable branch per bucket rather than three per slot.
inline bool MatchesObject(const SlotView& slot, uint8_t fp, uint64_t hash) {
  const uint64_t w = slot.atomic_word;
  return static_cast<bool>(static_cast<int>(w != 0) &
                           static_cast<int>(static_cast<uint8_t>(w >> 48) != kHistorySizeTag) &
                           static_cast<int>(static_cast<uint8_t>(w >> 56) == fp) &
                           static_cast<int>(slot.hash == hash));
}

// Index of the first object slot in slots[from, n) matching (fp, hash), or
// -1 when none does. The shared scan of every lookup/update/claim path.
inline int FindObjectSlot(const SlotView* slots, int from, int n, uint8_t fp, uint64_t hash) {
  for (int i = from; i < n; ++i) {
    if (MatchesObject(slots[i], fp, hash)) {
      return i;
    }
  }
  return -1;
}
// ditto-lint: hot-path-end(slot-scan)

}  // namespace ditto::ht

#endif  // DITTO_HASHTABLE_LAYOUT_H_
