#include "hashtable/hash_table.h"

#include <algorithm>
#include <cstring>

namespace ditto::ht {

SlotView HashTable::DecodeSlot(const uint8_t* raw) {
  // SlotView mirrors the wire layout exactly (asserted in layout.h), so one
  // 40-byte copy decodes the whole slot — the per-field memcpys this
  // replaces were ~5x the work on the bucket-scan hot path.
  SlotView view;
  std::memcpy(&view, raw, kSlotBytes);
  return view;
}

bool HashTable::ReadBucket(uint64_t bucket, std::vector<SlotView>* out) {
  const uint64_t wr = PostReadBucket(bucket, out);
  if (wr == 0) {
    return false;
  }
  verbs_->WaitWr(wr);
  return true;
}

uint64_t HashTable::PostReadBucket(uint64_t bucket, std::vector<SlotView>* out) {
  if (bucket >= num_buckets_) {
    out->clear();
    return 0;
  }
  const int count = slots_per_bucket_;
  const size_t bytes = static_cast<size_t>(count) * kSlotBytes;
  scratch_.resize(bytes);
  const uint64_t wr =
      verbs_->PostRead(SlotAddr(bucket * slots_per_bucket_), scratch_.data(), bytes);
  out->resize(count);
  std::memcpy(out->data(), scratch_.data(), bytes);  // layout match: one bulk decode
  return wr;
}

bool HashTable::ReadSlots(uint64_t start_slot, int count, std::vector<SlotView>* out,
                          uint64_t* actual_start) {
  out->clear();
  if (count <= 0 || static_cast<size_t>(count) > num_slots()) {
    return false;
  }
  // Clamp down so the sampled range stays inside the table. Guarding count
  // above keeps this subtraction from underflowing.
  start_slot = std::min(start_slot, num_slots() - static_cast<size_t>(count));
  if (actual_start != nullptr) {
    *actual_start = start_slot;
  }
  const size_t bytes = static_cast<size_t>(count) * kSlotBytes;
  scratch_.resize(bytes);
  verbs_->Read(SlotAddr(start_slot), scratch_.data(), bytes);
  out->resize(count);
  std::memcpy(out->data(), scratch_.data(), bytes);  // layout match: one bulk decode
  return true;
}

SlotView HashTable::ReadSlot(uint64_t slot_addr) {
  uint8_t raw[kSlotBytes];
  verbs_->Read(slot_addr, raw, kSlotBytes);
  return DecodeSlot(raw);
}

bool HashTable::CasAtomic(uint64_t slot_addr, uint64_t expected, uint64_t desired) {
  return verbs_->CompareSwap(slot_addr + kAtomicOff, expected, desired) == expected;
}

void HashTable::WriteAllMetadata(uint64_t slot_addr, uint64_t hash, uint64_t insert_ts,
                                 uint64_t last_ts, uint64_t freq) {
  uint64_t group[4] = {hash, insert_ts, last_ts, freq};
  verbs_->Write(slot_addr + kHashOff, group, sizeof(group));
}

void HashTable::WriteLastTs(uint64_t slot_addr, uint64_t last_ts) {
  verbs_->Write(slot_addr + kLastTsOff, &last_ts, 8);
}

void HashTable::WriteLastTsAsync(uint64_t slot_addr, uint64_t last_ts) {
  verbs_->WriteAsync(slot_addr + kLastTsOff, &last_ts, 8);
}

void HashTable::AddFreq(uint64_t slot_addr, uint64_t delta) {
  verbs_->FetchAdd(slot_addr + kFreqOff, delta);
}

void HashTable::AddFreqAsync(uint64_t slot_addr, uint64_t delta) {
  verbs_->FetchAddAsync(slot_addr + kFreqOff, delta);
}

void HashTable::WriteExpertBmapAsync(uint64_t slot_addr, uint64_t bmap) {
  verbs_->WriteAsync(slot_addr + kInsertTsOff, &bmap, 8);
}

}  // namespace ditto::ht
