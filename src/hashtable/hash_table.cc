#include "hashtable/hash_table.h"

#include <cstring>

namespace ditto::ht {

SlotView HashTable::DecodeSlot(const uint8_t* raw) {
  SlotView view;
  std::memcpy(&view.atomic_word, raw + kAtomicOff, 8);
  std::memcpy(&view.hash, raw + kHashOff, 8);
  std::memcpy(&view.insert_ts, raw + kInsertTsOff, 8);
  std::memcpy(&view.last_ts, raw + kLastTsOff, 8);
  std::memcpy(&view.freq, raw + kFreqOff, 8);
  return view;
}

void HashTable::ReadBucket(uint64_t bucket, std::vector<SlotView>* out) {
  ReadSlots(bucket * slots_per_bucket_, slots_per_bucket_, out);
}

void HashTable::ReadSlots(uint64_t start_slot, int count, std::vector<SlotView>* out) {
  if (start_slot + count > num_slots()) {
    start_slot = num_slots() - count;
  }
  const size_t bytes = static_cast<size_t>(count) * kSlotBytes;
  scratch_.resize(bytes);
  verbs_->Read(SlotAddr(start_slot), scratch_.data(), bytes);
  out->clear();
  out->reserve(count);
  for (int i = 0; i < count; ++i) {
    out->push_back(DecodeSlot(scratch_.data() + static_cast<size_t>(i) * kSlotBytes));
  }
}

SlotView HashTable::ReadSlot(uint64_t slot_addr) {
  uint8_t raw[kSlotBytes];
  verbs_->Read(slot_addr, raw, kSlotBytes);
  return DecodeSlot(raw);
}

bool HashTable::CasAtomic(uint64_t slot_addr, uint64_t expected, uint64_t desired) {
  return verbs_->CompareSwap(slot_addr + kAtomicOff, expected, desired) == expected;
}

void HashTable::WriteAllMetadata(uint64_t slot_addr, uint64_t hash, uint64_t insert_ts,
                                 uint64_t last_ts, uint64_t freq) {
  uint64_t group[4] = {hash, insert_ts, last_ts, freq};
  verbs_->Write(slot_addr + kHashOff, group, sizeof(group));
}

void HashTable::WriteLastTs(uint64_t slot_addr, uint64_t last_ts) {
  verbs_->Write(slot_addr + kLastTsOff, &last_ts, 8);
}

void HashTable::WriteLastTsAsync(uint64_t slot_addr, uint64_t last_ts) {
  verbs_->WriteAsync(slot_addr + kLastTsOff, &last_ts, 8);
}

void HashTable::AddFreq(uint64_t slot_addr, uint64_t delta) {
  verbs_->FetchAdd(slot_addr + kFreqOff, delta);
}

void HashTable::AddFreqAsync(uint64_t slot_addr, uint64_t delta) {
  verbs_->FetchAddAsync(slot_addr + kFreqOff, delta);
}

void HashTable::WriteExpertBmapAsync(uint64_t slot_addr, uint64_t bmap) {
  verbs_->WriteAsync(slot_addr + kInsertTsOff, &bmap, 8);
}

}  // namespace ditto::ht
