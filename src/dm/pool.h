// MemoryPool: the memory node's address-space layout plus the controller
// services (segment allocation, adaptive-weight RPC endpoint registration).
//
// Layout of the arena:
//   [0, kSuperblockBytes)            superblock (global counters, freelists,
//                                    expert weights)
//   [kSuperblockBytes, heap_addr)    sample-friendly hash table
//   [heap_addr, memory_bytes)        object heap, 64-byte blocks
//
// Memory management follows the paper's two-level scheme (FUSEE-style): the
// weak controller hands out coarse segments via an ALLOC RPC; clients carve
// 64-byte block runs out of their segments and recycle freed runs through
// per-run-length lock-free freelists that live in remote memory.
//
// Thread safety: a MemoryPool may be shared by concurrent client threads
// (one ClientContext per thread), as the concurrent sharded engine and
// multi-threaded ShardedDittoClient deployments require. The arena is an
// array of atomic cells, segment allocation is serialized by alloc_mu_, RPC
// dispatch by the node's handler mutex, and all counters are atomics; this
// contract is exercised under ThreadSanitizer by
// tests/concurrent_runner_test.cc.
#ifndef DITTO_DM_POOL_H_
#define DITTO_DM_POOL_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "rdma/node.h"

namespace ditto::dm {

inline constexpr size_t kBlockBytes = 64;
inline constexpr int kMaxRunBlocks = 16;  // largest contiguous allocation: 1 KiB

// Superblock field offsets (all 8-byte fields).
inline constexpr uint64_t kHistCounterAddr = 0;    // 48-bit circular history counter
inline constexpr uint64_t kObjectCountAddr = 8;    // cached-object count
inline constexpr uint64_t kCapacityAddr = 16;      // capacity in objects
inline constexpr uint64_t kHistSizeAddr = 24;      // history length l
inline constexpr uint64_t kFreeListBase = 64;      // kMaxRunBlocks heads, 8 B each
inline constexpr uint64_t kExpertWeightBase = 256; // up to kMaxExperts doubles
inline constexpr int kMaxExperts = 8;
inline constexpr size_t kSuperblockBytes = 4096;

// RPC handler ids served by the controller.
inline constexpr uint32_t kRpcAllocSegment = 1;
inline constexpr uint32_t kRpcUpdateWeights = 2;
// Elastic scaling: rewrites kCapacityAddr in the superblock. Request is the
// new capacity in objects (u64, must be non-zero); response is the previous
// capacity (u64). Malformed requests get an empty (rejecting) response.
// Clients observe the new value on their next superblock READ and evict down
// themselves on shrink — the weak controller only flips the number.
inline constexpr uint32_t kRpcResize = 3;

// The even share of an aggregate object capacity owned by node/shard `owner`
// of `num_owners`: remainder objects go to the lowest-numbered owners, so
// the split is a pure function of the total. Every owner keeps at least one
// object (a zero capacity is invalid and would be rejected by kRpcResize),
// so an aggregate smaller than the owner count is effectively rounded up to
// one object per owner. Shared by ShardedDittoClient and the sharded replay
// engine so the two splits can never diverge.
inline uint64_t CapacityShare(uint64_t total, size_t owner, size_t num_owners) {
  const uint64_t base = total / num_owners;
  const uint64_t remainder = total % num_owners;
  const uint64_t share = base + (owner < remainder ? 1 : 0);
  return share == 0 ? 1 : share;
}

struct PoolConfig {
  size_t memory_bytes = 64 << 20;
  size_t num_buckets = 16384;    // should be a power of two
  int slots_per_bucket = 8;
  size_t segment_bytes = 64 << 10;
  int controller_cores = 1;
  uint64_t capacity_objects = 0;  // 0 = derive from heap size / 256 B objects
  rdma::CostModel cost;
};

class MemoryPool {
 public:
  explicit MemoryPool(const PoolConfig& config);

  rdma::RemoteNode& node() { return node_; }
  const PoolConfig& config() const { return config_; }

  // Registers a controller RPC handler (forwarded to the node).
  void RegisterRpc(uint32_t id, rdma::RpcHandler handler) {
    node_.RegisterRpc(id, std::move(handler));
  }

  uint64_t table_addr() const { return kSuperblockBytes; }
  size_t num_buckets() const { return config_.num_buckets; }
  int slots_per_bucket() const { return config_.slots_per_bucket; }
  size_t num_slots() const { return config_.num_buckets * config_.slots_per_bucket; }

  uint64_t heap_addr() const { return heap_addr_; }
  size_t heap_bytes() const { return heap_bytes_; }

  // Capacity control (elasticity experiments change this at run time). The
  // value lives in the superblock so clients observe it with a READ.
  void SetCapacityObjects(uint64_t capacity);
  uint64_t capacity_objects() const;
  uint64_t cached_objects() const;
  void SetHistorySize(uint64_t entries);

  // Host-side view of allocator pressure (segments handed out).
  uint64_t segments_allocated() const { return segments_allocated_.load(); }

  // Cold restart of a crashed node: zeroes the superblock and hash table
  // (every slot, counter, freelist head, and expert weight), resets the
  // segment bump allocator, and restores the capacity/history words that were
  // in effect before the wipe. The heap is NOT zeroed — with the table empty
  // nothing references it, and any torn re-read of stale blocks is rejected
  // by the object checksum. Callers must ensure no client holds allocator or
  // FC-cache state for this node across the wipe (the cluster layer bumps a
  // node generation and recreates per-node clients).
  void WipeForRestart();

  // Logical-time source shared by all clients of this pool; used as the
  // timestamp domain of cache metadata.
  LogicalClock& clock() { return clock_; }

 private:
  void HandleAllocSegment(std::string_view request, std::string* response);
  void HandleResize(std::string_view request, std::string* response);

  PoolConfig config_;
  rdma::RemoteNode node_;
  uint64_t heap_addr_;
  size_t heap_bytes_;
  Mutex alloc_mu_;
  uint64_t bump_ GUARDED_BY(alloc_mu_);  // next unallocated heap offset
  std::atomic<uint64_t> segments_allocated_{0};
  LogicalClock clock_;
};

}  // namespace ditto::dm

#endif  // DITTO_DM_POOL_H_
