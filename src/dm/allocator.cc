#include "dm/allocator.h"

#include <cassert>
#include <cstring>

namespace ditto::dm {
namespace {

// Freelist head encoding: low 48 bits = block address, high 16 bits = ABA tag.
constexpr uint64_t kAddrMask = (uint64_t{1} << 48) - 1;

uint64_t HeadAddr(uint64_t head) { return head & kAddrMask; }
uint64_t HeadTag(uint64_t head) { return head >> 48; }
uint64_t MakeHead(uint64_t addr, uint64_t tag) { return (tag << 48) | (addr & kAddrMask); }

uint64_t FreeListAddrFor(int blocks) {
  assert(blocks >= 1 && blocks <= kMaxRunBlocks);
  return kFreeListBase + static_cast<uint64_t>(blocks - 1) * 8;
}

}  // namespace

uint64_t RemoteAllocator::PopFreeList(int blocks) {
  const uint64_t list_addr = FreeListAddrFor(blocks);
  // Treiber pop: READ head, READ head->next, CAS head. Retries on contention.
  while (true) {
    if (!verbs_->ok()) {
      return 0;  // node unreachable: a failed CAS would retry forever
    }
    uint64_t head;
    verbs_->Read(list_addr, &head, 8);
    if (HeadAddr(head) == 0) {
      return 0;
    }
    uint64_t next;
    verbs_->Read(HeadAddr(head), &next, 8);
    const uint64_t desired = MakeHead(next, HeadTag(head) + 1);
    if (verbs_->CompareSwap(list_addr, head, desired) == head) {
      return HeadAddr(head);
    }
  }
}

uint64_t RemoteAllocator::AllocFromSegment(int blocks) {
  const uint64_t want = static_cast<uint64_t>(blocks) * kBlockBytes;
  if (segment_cursor_ + want > segment_end_) {
    // Ask the controller for a fresh segment.
    uint64_t seg_bytes = pool_->config().segment_bytes;
    rpc_request_.resize(8);
    std::memcpy(rpc_request_.data(), &seg_bytes, 8);
    verbs_->Rpc(kRpcAllocSegment, rpc_request_, &rpc_response_);
    uint64_t granted = 0;
    if (rpc_response_.size() == 8) {
      std::memcpy(&granted, rpc_response_.data(), 8);
    }
    if (granted == 0) {
      return 0;  // pool exhausted
    }
    segment_cursor_ = granted;
    segment_end_ = granted + seg_bytes;
  }
  const uint64_t addr = segment_cursor_;
  segment_cursor_ += want;
  return addr;
}

uint64_t RemoteAllocator::AllocBlocks(int blocks) {
  assert(blocks >= 1 && blocks <= kMaxRunBlocks);
  // Client-local recycled runs first: zero network cost.
  auto& cache = local_free_[blocks];
  if (!cache.empty()) {
    const uint64_t addr = cache.back();
    cache.pop_back();
    local_bytes_ -= static_cast<size_t>(blocks) * kBlockBytes;
    return addr;
  }
  const uint64_t fresh = AllocFromSegment(blocks);
  if (fresh != 0) {
    return fresh;
  }
  const uint64_t recycled = PopFreeList(blocks);
  if (recycled != 0) {
    return recycled;
  }
  // Split a longer run: local cache first, then the remote freelists. The
  // tail goes back to the local cache of its remaining length.
  for (int longer = blocks + 1; longer <= kMaxRunBlocks; ++longer) {
    uint64_t run = 0;
    if (!local_free_[longer].empty()) {
      run = local_free_[longer].back();
      local_free_[longer].pop_back();
      local_bytes_ -= static_cast<size_t>(longer) * kBlockBytes;
    } else {
      run = PopFreeList(longer);
    }
    if (run != 0) {
      FreeBlocks(run + static_cast<uint64_t>(blocks) * kBlockBytes, longer - blocks);
      return run;
    }
  }
  return 0;
}

void RemoteAllocator::PushFreeList(uint64_t addr, int blocks) {
  const uint64_t list_addr = FreeListAddrFor(blocks);
  // Treiber push: link the run to the current head, then CAS the head.
  while (true) {
    if (!verbs_->ok()) {
      return;  // node unreachable: drop the run rather than spin on a dead QP
    }
    uint64_t head;
    verbs_->Read(list_addr, &head, 8);
    const uint64_t next = HeadAddr(head);
    verbs_->Write(addr, &next, 8);
    const uint64_t desired = MakeHead(addr, HeadTag(head) + 1);
    if (verbs_->CompareSwap(list_addr, head, desired) == head) {
      return;
    }
  }
}

void RemoteAllocator::FreeBlocks(uint64_t addr, int blocks) {
  assert(addr != 0);
  const size_t bytes = static_cast<size_t>(blocks) * kBlockBytes;
  if (local_bytes_ + bytes <= kLocalCacheBytes) {
    local_free_[blocks].push_back(addr);
    local_bytes_ += bytes;
    return;
  }
  PushFreeList(addr, blocks);
}

void RemoteAllocator::ReleaseLocalCache() {
  for (int blocks = 1; blocks <= kMaxRunBlocks; ++blocks) {
    for (const uint64_t addr : local_free_[blocks]) {
      PushFreeList(addr, blocks);
    }
    local_free_[blocks].clear();
  }
  local_bytes_ = 0;
}

size_t RemoteAllocator::local_cached_runs() const {
  size_t total = 0;
  for (const auto& cache : local_free_) {
    total += cache.size();
  }
  return total;
}

}  // namespace ditto::dm
