// RemoteAllocator: the client-side second level of the two-level memory
// management scheme. Allocates runs of contiguous 64-byte blocks.
//
// Fast path: recycle a run from the client-local free cache (zero verbs —
// this is what keeps Ditto's Set at three round trips even though it
// allocates a fresh buffer per update). Next: carve from the client's
// current segment; when the segment is exhausted, request a new one from the
// controller via RPC. Last resort: pop the shared remote per-run-length
// freelist (a Treiber stack in the memory pool, ABA-guarded with a 16-bit
// tag) that absorbs cross-client frees and local-cache overflow.
//
// Returns address 0 when the pool is out of memory — the caller (the cache)
// reacts by evicting objects, which pushes runs back onto the freelists.
#ifndef DITTO_DM_ALLOCATOR_H_
#define DITTO_DM_ALLOCATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dm/pool.h"
#include "rdma/verbs.h"

namespace ditto::dm {

class RemoteAllocator {
 public:
  // Byte bound on the client-local recycled-run cache; frees beyond this
  // spill to the shared remote freelists so one client cannot hoard the
  // pool's spare capacity.
  static constexpr size_t kLocalCacheBytes = 16 << 10;

  RemoteAllocator(MemoryPool* pool, rdma::Verbs* verbs)
      : pool_(pool), verbs_(verbs), local_free_(kMaxRunBlocks + 1) {}

  // Allocates a run of `blocks` contiguous 64-byte blocks (1..kMaxRunBlocks).
  // Returns the arena address, or 0 if memory is exhausted.
  uint64_t AllocBlocks(int blocks);

  // Returns a run to the local free cache (spilling to the shared remote
  // freelist when the cache is full).
  void FreeBlocks(uint64_t addr, int blocks);

  // Pushes every locally cached run back to the shared freelists (client
  // shutdown / resource reclamation path).
  void ReleaseLocalCache();

  size_t local_cached_runs() const;

  static int BlocksForBytes(size_t bytes) {
    return static_cast<int>((bytes + kBlockBytes - 1) / kBlockBytes);
  }

 private:
  uint64_t PopFreeList(int blocks);
  void PushFreeList(uint64_t addr, int blocks);
  uint64_t AllocFromSegment(int blocks);

  MemoryPool* pool_;
  rdma::Verbs* verbs_;
  uint64_t segment_cursor_ = 0;
  uint64_t segment_end_ = 0;
  std::vector<std::vector<uint64_t>> local_free_;
  size_t local_bytes_ = 0;
  // Segment-RPC scratch reused across calls (controller path).
  std::string rpc_request_;
  std::string rpc_response_;
};

}  // namespace ditto::dm

#endif  // DITTO_DM_ALLOCATOR_H_
