#include "dm/pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ditto::dm {

MemoryPool::MemoryPool(const PoolConfig& config)
    : config_(config),
      node_(config.memory_bytes, config.cost, config.controller_cores) {
  const size_t table_bytes = num_slots() * 40;  // 40 B per slot (Figure 7)
  heap_addr_ = (kSuperblockBytes + table_bytes + kBlockBytes - 1) & ~(kBlockBytes - 1);
  assert(heap_addr_ < config_.memory_bytes);
  heap_bytes_ = config_.memory_bytes - heap_addr_;
  // Block index 0 is never handed out (0 means "null" in freelist links), so
  // bump allocation starts one block into the heap.
  bump_ = heap_addr_ + kBlockBytes;

  uint64_t capacity = config_.capacity_objects;
  if (capacity == 0) {
    capacity = heap_bytes_ / 256;
  }
  node_.arena().WriteU64(kCapacityAddr, capacity);
  node_.arena().WriteU64(kHistSizeAddr, capacity);  // default: history size == cache size

  node_.RegisterRpc(kRpcAllocSegment, [this](std::string_view request, std::string* response) {
    HandleAllocSegment(request, response);
  });
  node_.RegisterRpc(kRpcResize, [this](std::string_view request, std::string* response) {
    HandleResize(request, response);
  });
}

void MemoryPool::HandleResize(std::string_view request, std::string* response) {
  if (request.size() != 8) {
    return;  // malformed: reject with an empty response, capacity untouched
  }
  uint64_t capacity = 0;
  std::memcpy(&capacity, request.data(), 8);
  if (capacity == 0) {
    return;  // a zero capacity would wedge every admission
  }
  const uint64_t previous = node_.arena().ReadU64(kCapacityAddr);
  node_.arena().WriteU64(kCapacityAddr, capacity);
  response->resize(8);
  std::memcpy(response->data(), &previous, 8);
}

void MemoryPool::HandleAllocSegment(std::string_view request, std::string* response) {
  uint64_t want = config_.segment_bytes;
  if (request.size() == 8) {
    std::memcpy(&want, request.data(), 8);
  }
  uint64_t granted = 0;
  {
    MutexLock lock(&alloc_mu_);
    if (bump_ + want <= heap_addr_ + heap_bytes_) {
      granted = bump_;
      bump_ += want;
      segments_allocated_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  response->resize(8);
  std::memcpy(response->data(), &granted, 8);
}

void MemoryPool::WipeForRestart() {
  // Preserve the runtime capacity/history configuration across the wipe: a
  // restarted node comes back empty but at the size it was resized to.
  const uint64_t capacity = node_.arena().ReadU64(kCapacityAddr);
  const uint64_t hist_size = node_.arena().ReadU64(kHistSizeAddr);
  {
    MutexLock lock(&alloc_mu_);
    uint8_t zeros[kSuperblockBytes] = {0};
    for (uint64_t addr = 0; addr < heap_addr_; addr += sizeof(zeros)) {
      node_.arena().Write(addr, zeros,
                          std::min<size_t>(sizeof(zeros), heap_addr_ - addr));
    }
    bump_ = heap_addr_ + kBlockBytes;
  }
  node_.arena().WriteU64(kCapacityAddr, capacity);
  node_.arena().WriteU64(kHistSizeAddr, hist_size);
}

void MemoryPool::SetCapacityObjects(uint64_t capacity) {
  node_.arena().WriteU64(kCapacityAddr, capacity);
}

uint64_t MemoryPool::capacity_objects() const { return node_.arena().ReadU64(kCapacityAddr); }

uint64_t MemoryPool::cached_objects() const { return node_.arena().ReadU64(kObjectCountAddr); }

void MemoryPool::SetHistorySize(uint64_t entries) {
  node_.arena().WriteU64(kHistSizeAddr, entries);
}

}  // namespace ditto::dm
