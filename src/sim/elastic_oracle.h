// Precise-LRU oracle replays for elastic-scaling comparisons: the same
// resize schedule the replay engines apply (see RunOptions::resize_schedule)
// is replayed through an exact LRU cache that either survives each step warm
// (PreciseCache::Resize — the best a warm cache can do) or COLD-RESTARTS at
// every step (the monolithic-cluster behaviour, where a scale event rebuilds
// the node set and the cache starts empty). Thresholds come from the
// runner's own NormalizedResizeSchedule/ResizeStepIndex, so the oracle
// crosses phases at the identical request indices as RunTrace /
// RunTraceSharded — the bench columns and the tests' drop comparisons stay
// aligned by construction.
#ifndef DITTO_SIM_ELASTIC_ORACLE_H_
#define DITTO_SIM_ELASTIC_ORACLE_H_

#include <cstdint>
#include <vector>

#include "sim/runner.h"
#include "workloads/trace.h"

namespace ditto::sim {

// Per-phase hit counts of an oracle replay (schedule.size() + 1 phases).
struct OracleTrajectory {
  std::vector<uint64_t> gets;
  std::vector<uint64_t> hits;

  double HitRate(size_t phase) const {
    return gets[phase] == 0
               ? 0.0
               : static_cast<double>(hits[phase]) / static_cast<double>(gets[phase]);
  }
};

// Replays the whole trace through an exact LRU cache of `initial_capacity`
// objects, applying `schedule` at the runner's request indices; only the
// measured region [measure_begin, end) is counted into the trajectory.
OracleTrajectory ReplayLruOracle(const workload::Trace& trace, size_t measure_begin,
                                 const std::vector<ResizeStep>& schedule,
                                 uint64_t initial_capacity, bool cold_restart);

}  // namespace ditto::sim

#endif  // DITTO_SIM_ELASTIC_ORACLE_H_
