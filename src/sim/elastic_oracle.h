// Precise-LRU oracle replays for elastic-scaling comparisons: the same
// resize schedule the replay engines apply (see RunOptions::resize_schedule)
// is replayed through an exact LRU cache that either survives each step warm
// (PreciseCache::Resize — the best a warm cache can do) or COLD-RESTARTS at
// every step (the monolithic-cluster behaviour, where a scale event rebuilds
// the node set and the cache starts empty). Thresholds come from the
// runner's own NormalizedResizeSchedule/ResizeStepIndex, so the oracle
// crosses phases at the identical request indices as RunTrace /
// RunTraceSharded — the bench columns and the tests' drop comparisons stay
// aligned by construction.
#ifndef DITTO_SIM_ELASTIC_ORACLE_H_
#define DITTO_SIM_ELASTIC_ORACLE_H_

#include <cstdint>
#include <vector>

#include "sim/runner.h"
#include "workloads/trace.h"

namespace ditto::sim {

// Per-phase hit counts of an oracle replay (schedule.size() + 1 phases).
struct OracleTrajectory {
  std::vector<uint64_t> gets;
  std::vector<uint64_t> hits;

  double HitRate(size_t phase) const {
    return gets[phase] == 0
               ? 0.0
               : static_cast<double>(hits[phase]) / static_cast<double>(gets[phase]);
  }
};

// Replays the whole trace through an exact LRU cache of `initial_capacity`
// objects, applying `schedule` at the runner's request indices; only the
// measured region [measure_begin, end) is counted into the trajectory.
OracleTrajectory ReplayLruOracle(const workload::Trace& trace, size_t measure_begin,
                                 const std::vector<ResizeStep>& schedule,
                                 uint64_t initial_capacity, bool cold_restart);

// Windowed cold-restart oracle for the cluster lifecycle experiments: an
// exact LRU cache of fixed `capacity` that COLD-RESTARTS at every lifecycle
// step (the monolithic-cluster behaviour, where ANY membership change — a
// crash as much as a planned join — rebuilds the node set and the cache
// starts empty). The measured region is sampled every `window_ops` accesses,
// matching RunOptions::recovery_window_ops on a pure-Get trace, so the
// bench's trajectory columns align window-for-window with
// RunResult::recovery. Step indices come from the runner's own
// NormalizedLifecycleSchedule/ResizeStepIndex.
std::vector<RecoverySample> ReplayRecoveryOracle(const workload::Trace& trace,
                                                 size_t measure_begin,
                                                 const std::vector<LifecycleStep>& schedule,
                                                 uint64_t capacity, size_t window_ops);

}  // namespace ditto::sim

#endif  // DITTO_SIM_ELASTIC_ORACLE_H_
