// Adapter making core::DittoClient drivable by the experiment runner.
#ifndef DITTO_SIM_ADAPTERS_H_
#define DITTO_SIM_ADAPTERS_H_

#include <memory>

#include "core/ditto_client.h"
#include "core/sharded_client.h"
#include "sim/client_iface.h"

namespace ditto::sim {

class DittoCacheClient : public CacheClient {
 public:
  DittoCacheClient(dm::MemoryPool* pool, rdma::ClientContext* ctx,
                   const core::DittoConfig& config)
      : ctx_(ctx), client_(pool, ctx, config) {}

  bool Get(std::string_view key, std::string* value) override { return client_.Get(key, value); }
  void Set(std::string_view key, std::string_view value) override { client_.Set(key, value); }

  rdma::ClientContext& ctx() override { return *ctx_; }

  ClientCounters counters() const override {
    const core::DittoStats& s = client_.stats();
    return ClientCounters{s.gets, s.hits, s.misses, s.sets};
  }

  void Finish() override { client_.FlushBuffers(); }

  void ResetForMeasurement() override {
    client_.mutable_stats() = core::DittoStats{};
    ctx_->op_hist().Reset();
  }

  void SetBatchOps(size_t ops) override { client_.SetBatchOps(ops); }

  core::DittoClient& ditto() { return client_; }

 private:
  rdma::ClientContext* ctx_;
  core::DittoClient client_;
};

// Adapter for multi-memory-node deployments.
class ShardedDittoCacheClient : public CacheClient {
 public:
  ShardedDittoCacheClient(core::ShardedPool* pool, rdma::ClientContext* ctx,
                          const core::DittoConfig& config)
      : ctx_(ctx), client_(pool, ctx, config) {}

  bool Get(std::string_view key, std::string* value) override { return client_.Get(key, value); }
  void Set(std::string_view key, std::string_view value) override { client_.Set(key, value); }

  rdma::ClientContext& ctx() override { return *ctx_; }

  ClientCounters counters() const override {
    const core::DittoStats s = client_.stats();
    return ClientCounters{s.gets, s.hits, s.misses, s.sets};
  }

  void Finish() override { client_.FlushBuffers(); }

  void ResetForMeasurement() override {
    client_.ResetStats();
    ctx_->op_hist().Reset();
  }

  void SetBatchOps(size_t ops) override { client_.SetBatchOps(ops); }

  core::ShardedDittoClient& sharded() { return client_; }

 private:
  rdma::ClientContext* ctx_;
  core::ShardedDittoClient client_;
};

}  // namespace ditto::sim

#endif  // DITTO_SIM_ADAPTERS_H_
