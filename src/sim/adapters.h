// Adapters making core::DittoClient / core::ShardedDittoClient drivable by
// the experiment runner through the typed CacheOp protocol.
//
// Both adapters share DittoAdapterBase, which implements the whole
// CacheClient surface once: typed batch dispatch (including fusing
// consecutive kMultiGet ops into one chained multi-get), the
// DittoStats -> ClientCounters mapping, and the measurement-boundary reset.
// The two concrete adapters only differ in how the wrapped client is
// constructed.
#ifndef DITTO_SIM_ADAPTERS_H_
#define DITTO_SIM_ADAPTERS_H_

#include <memory>
#include <vector>

#include "core/cluster.h"
#include "core/ditto_client.h"
#include "core/sharded_client.h"
#include "sim/client_iface.h"

namespace ditto::sim {

// Single mapping from core statistics to runner counters; keep the two in
// sync when either side grows a field.
inline ClientCounters CountersFromStats(const core::DittoStats& s) {
  return ClientCounters{s.gets,      s.hits,    s.misses,       s.sets,
                        s.deletes,   s.evictions, s.expired,
                        s.cas_failures, s.insert_retries};
}

template <typename ClientT>
class DittoAdapterBase : public CacheClient {
 public:
  void ExecuteBatch(std::span<const CacheOp> ops, CacheResult* results) override {
    size_t i = 0;
    while (i < ops.size()) {
      if (ops[i].kind == OpKind::kMultiGet) {
        size_t run_end = i;
        while (run_end < ops.size() && ops[run_end].kind == OpKind::kMultiGet) {
          ++run_end;
        }
        ExecuteMultiGetRun(ops, i, run_end, results);
        i = run_end;
        continue;
      }
      ExecuteSingle(ops[i], &results[i]);
      ++i;
    }
  }

  // Pipelined issue: run the op's state machine on a detached timeline (see
  // rdma::Verbs::BeginOp). The op's verbs, allocator traffic, and metadata
  // updates all execute now — only the waits land on the op cursor — so the
  // cache's behaviour is bit-identical to blocking execution at any depth.
  uint64_t ExecutePipelined(const CacheOp& op, CacheResult* result,
                            uint64_t start_ns) override {
    client_.BeginPipelinedOp(start_ns);
    ExecuteSingle(op, result);
    const uint64_t complete_ns = client_.EndPipelinedOp();
    result->latency_us = static_cast<double>(complete_ns - start_ns) / 1000.0;
    return complete_ns;
  }

  rdma::ClientContext& ctx() override { return *ctx_; }

  ClientCounters counters() const override { return CountersFromStats(client_.stats()); }

  void Finish() override { client_.FlushBuffers(); }

  void ResetForMeasurement() override {
    client_.ResetStats();
    ctx_->op_hist().Reset();
  }

  void SetBatchOps(size_t ops) override { client_.SetBatchOps(ops); }

  bool ResizeCapacity(uint64_t capacity_objects) override {
    return client_.ResizeCapacity(capacity_objects);
  }

 protected:
  template <typename PoolT>
  DittoAdapterBase(PoolT* pool, rdma::ClientContext* ctx, const core::DittoConfig& config)
      : ctx_(ctx), client_(pool, ctx, config) {}

  rdma::ClientContext* ctx_;
  ClientT client_;

  // Protected (not private) so cluster-aware subclasses can re-drive the
  // same dispatch while stamping fault outcomes onto the results.
  void ExecuteSingle(const CacheOp& op, CacheResult* result) {
    DispatchSingleOp(
        *ctx_, op, result,
        [this](std::string_view key, std::string* value) { return client_.Get(key, value); },
        [this](std::string_view key, std::string_view value, uint64_t ttl) {
          return client_.Set(key, value, ttl);
        },
        [this](std::string_view key) { return client_.Delete(key); },
        [this](std::string_view key, uint64_t ttl) { return client_.Expire(key, ttl); });
  }

  void ExecuteMultiGetRun(std::span<const CacheOp> ops, size_t begin, size_t end,
                          CacheResult* results) {
    const size_t n = end - begin;
    mg_keys_.clear();
    mg_values_.clear();
    for (size_t i = begin; i < end; ++i) {
      mg_keys_.push_back(ops[i].key);
      mg_values_.push_back(ops[i].want_value ? &results[i].value : nullptr);
    }
    if (mg_hits_cap_ < n) {
      mg_hits_cap_ = std::max(n, mg_hits_cap_ * 2);
      mg_hits_ = std::make_unique<bool[]>(mg_hits_cap_);
    }
    const uint64_t begin_ns = ctx_->clock().busy_ns();
    client_.MultiGet(n, mg_keys_.data(), mg_values_.data(), mg_hits_.get());
    // Per-op attribution of a pipelined run: the run's mean cost.
    const double per_op_us =
        static_cast<double>(ctx_->clock().busy_ns() - begin_ns) / 1000.0 /
        static_cast<double>(n);
    for (size_t j = 0; j < n; ++j) {
      results[begin + j].status = mg_hits_[j] ? OpStatus::kHit : OpStatus::kMiss;
      results[begin + j].latency_us = per_op_us;
    }
  }

 private:
  // Multi-get gather scratch, reused across runs (adapters are
  // single-threaded like the clients they wrap).
  std::vector<std::string_view> mg_keys_;
  std::vector<std::string*> mg_values_;
  std::unique_ptr<bool[]> mg_hits_;
  size_t mg_hits_cap_ = 0;
};

class DittoCacheClient : public DittoAdapterBase<core::DittoClient> {
 public:
  DittoCacheClient(dm::MemoryPool* pool, rdma::ClientContext* ctx,
                   const core::DittoConfig& config)
      : DittoAdapterBase(pool, ctx, config) {}

  core::DittoClient& ditto() { return client_; }
};

// Adapter for multi-memory-node deployments.
class ShardedDittoCacheClient : public DittoAdapterBase<core::ShardedDittoClient> {
 public:
  ShardedDittoCacheClient(core::ShardedPool* pool, rdma::ClientContext* ctx,
                          const core::DittoConfig& config)
      : DittoAdapterBase(pool, ctx, config) {}

  core::ShardedDittoClient& sharded() { return client_; }
};

// Adapter for fault-tolerant cluster deployments. Re-uses the base dispatch
// (so fault-free behaviour is bit-identical to ShardedDittoCacheClient), then
// stamps OpStatus::kUnavailable onto ops whose retries were exhausted — a
// front end must distinguish "the cluster says miss" from "the cluster cannot
// answer". Lifecycle steps from the replay schedule are forwarded to the
// cluster client, which applies them globally-once and migrates keys.
class ClusterCacheClient : public DittoAdapterBase<core::ClusterClient> {
 public:
  ClusterCacheClient(core::ClusterPool* pool, rdma::ClientContext* ctx,
                     const core::DittoConfig& config)
      : DittoAdapterBase(pool, ctx, config) {}

  void ExecuteBatch(std::span<const CacheOp> ops, CacheResult* results) override {
    size_t i = 0;
    while (i < ops.size()) {
      if (ops[i].kind == OpKind::kMultiGet) {
        size_t run_end = i;
        while (run_end < ops.size() && ops[run_end].kind == OpKind::kMultiGet) {
          ++run_end;
        }
        ExecuteMultiGetRun(ops, i, run_end, results);
        for (size_t j = i; j < run_end; ++j) {
          if (client_.mg_unavailable(j - i)) {
            results[j].status = OpStatus::kUnavailable;
          }
        }
        i = run_end;
        continue;
      }
      ExecuteSingle(ops[i], &results[i]);
      if (client_.last_op_unavailable()) {
        results[i].status = OpStatus::kUnavailable;
      }
      ++i;
    }
  }

  void ApplyLifecycle(const LifecycleStep& step) override {
    switch (step.kind) {
      case LifecycleKind::kCrash:
        client_.ApplyCrash(step.node);
        break;
      case LifecycleKind::kRestart:
        client_.ApplyRestart(step.node);
        break;
      case LifecycleKind::kLeave:
        client_.ApplyLeave(step.node);
        break;
      case LifecycleKind::kJoin:
        client_.ApplyJoin(step.node);
        break;
    }
  }

  core::ClusterClient& cluster() { return client_; }
};

}  // namespace ditto::sim

#endif  // DITTO_SIM_ADAPTERS_H_
