// Bounded lock-free single-producer/single-consumer ring buffer, the
// request queue between the concurrent runner's dispatcher (producer) and a
// shard's worker thread (consumer). Classic two-index design with cached
// peer indices so the fast path touches only one cache line per side.
#ifndef DITTO_SIM_SPSC_QUEUE_H_
#define DITTO_SIM_SPSC_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace ditto::sim {

template <typename T>
class SpscQueue {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) {
      cap *= 2;
    }
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  // Producer side. Returns false when the ring is full.
  bool TryPush(const T& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) {
        return false;
      }
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return false;
      }
    }
    *out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side: true when no pushed element remains unpopped.
  bool Empty() const {
    return head_.load(std::memory_order_relaxed) == tail_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  size_t mask_;
  std::unique_ptr<T[]> slots_;

  alignas(64) std::atomic<uint64_t> head_{0};  // next index to pop
  alignas(64) uint64_t tail_cache_ = 0;        // consumer's view of tail_
  alignas(64) std::atomic<uint64_t> tail_{0};  // next index to push
  alignas(64) uint64_t head_cache_ = 0;        // producer's view of head_
};

}  // namespace ditto::sim

#endif  // DITTO_SIM_SPSC_QUEUE_H_
