// Single-machine hit-rate simulation used by the motivation studies (paper
// Figures 3, 4, 5): exact replacement policies replayed over (optionally
// client-interleaved) traces.
#ifndef DITTO_SIM_HIT_RATE_H_
#define DITTO_SIM_HIT_RATE_H_

#include <cstdint>
#include <vector>

#include "policies/precise.h"
#include "workloads/trace.h"

namespace ditto::sim {

// Replays the trace through an exact cache of `capacity` objects; when
// num_clients > 1 the trace is first interleaved the way that many
// concurrent clients replaying disjoint shards would reorder it.
double ReplayHitRate(const workload::Trace& trace, size_t capacity,
                     policy::PrecisePolicyKind kind, int num_clients = 1, uint64_t seed = 7);

// Relative hit-rate change (h_max - h_min) / h_max over the given client
// counts for one trace and policy (the Figure 5a statistic).
double RelativeHitRateChange(const workload::Trace& trace, size_t capacity,
                             policy::PrecisePolicyKind kind,
                             const std::vector<int>& client_counts);

}  // namespace ditto::sim

#endif  // DITTO_SIM_HIT_RATE_H_
