#include "sim/hit_rate.h"

#include <algorithm>

namespace ditto::sim {

double ReplayHitRate(const workload::Trace& trace, size_t capacity,
                     policy::PrecisePolicyKind kind, int num_clients, uint64_t seed) {
  const workload::Trace* replay = &trace;
  workload::Trace interleaved;
  if (num_clients > 1) {
    interleaved = workload::InterleaveClients(trace, num_clients, seed);
    replay = &interleaved;
  }
  policy::PreciseCache cache(capacity, kind, seed);
  for (const workload::Request& req : *replay) {
    cache.Access(req.key);
  }
  return cache.HitRate();
}

double RelativeHitRateChange(const workload::Trace& trace, size_t capacity,
                             policy::PrecisePolicyKind kind,
                             const std::vector<int>& client_counts) {
  double h_max = 0.0;
  double h_min = 1.0;
  for (const int clients : client_counts) {
    const double h = ReplayHitRate(trace, capacity, kind, clients);
    h_max = std::max(h_max, h);
    h_min = std::min(h_min, h);
  }
  return h_max <= 0.0 ? 0.0 : (h_max - h_min) / h_max;
}

}  // namespace ditto::sim
