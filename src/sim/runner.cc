#include "sim/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>

#include "common/hash.h"
#include "common/rand.h"
#include "common/small_vec.h"
#include "dm/pool.h"
#include "rdma/verbs.h"
#include "sim/spsc_queue.h"

namespace ditto::sim {

size_t RunOptions::ValueBytesFor(uint64_t key) const {
  if (value_bytes_max <= value_bytes) {
    return value_bytes;
  }
  return value_bytes + Mix64(key * 0x9e3779b97f4a7c15ULL) % (value_bytes_max - value_bytes + 1);
}

namespace {

// Resize + lifecycle schedules resolved against the measured region
// [begin, end): absolute trace-index thresholds (sorted ascending) plus the
// aggregate capacity / lifecycle event each step applies.
struct ResolvedSchedule {
  std::vector<size_t> thresholds;
  std::vector<uint64_t> capacities;
  std::vector<size_t> lifecycle_thresholds;
  std::vector<LifecycleStep> lifecycle_steps;

  size_t num_phases() const { return thresholds.size() + 1; }
  // Phase of request index i: the number of thresholds at or below i.
  size_t PhaseOf(size_t index) const {
    size_t p = 0;
    while (p < thresholds.size() && index >= thresholds[p]) {
      ++p;
    }
    return p;
  }
  // Lifecycle steps due at or before request index i.
  size_t LifecycleCountAt(size_t index) const {
    size_t p = 0;
    while (p < lifecycle_thresholds.size() && index >= lifecycle_thresholds[p]) {
      ++p;
    }
    return p;
  }
};

ResolvedSchedule ResolveSchedule(const RunOptions& options, size_t begin, size_t end) {
  ResolvedSchedule schedule;
  for (const ResizeStep& step : NormalizedResizeSchedule(options.resize_schedule)) {
    schedule.thresholds.push_back(ResizeStepIndex(step.at_op_fraction, begin, end));
    schedule.capacities.push_back(step.capacity_objects);
  }
  for (const LifecycleStep& step :
       NormalizedLifecycleSchedule(options.lifecycle_schedule)) {
    schedule.lifecycle_thresholds.push_back(ResizeStepIndex(step.at_op_fraction, begin, end));
    schedule.lifecycle_steps.push_back(step);
  }
  return schedule;
}

// Windowed Get-outcome sampler shared by every dispatcher of one interleaved
// replay (single host thread, so plain counters suffice). Closes a
// RecoverySample every window_ops Get outcomes in dispatch order, giving the
// fine-grained hit-rate trajectory lifecycle experiments plot.
struct RecoveryAccumulator {
  size_t window_ops = 0;
  std::vector<RecoverySample>* out = nullptr;
  RecoverySample cur;

  void Record(bool hit) {
    cur.gets++;
    cur.hits += hit ? 1 : 0;
    if (cur.gets >= window_ops) {
      out->push_back(cur);
      cur = RecoverySample{};
    }
  }
  // Emits the trailing short window, if any.
  void Finish() {
    if (cur.gets > 0) {
      out->push_back(cur);
      cur = RecoverySample{};
    }
  }
};

// The miss policy, shared by the blocking and pipelined paths: the penalty
// (the backing distributed-store fetch) and the set_on_miss re-insert op.
uint64_t MissPenaltyNs(const RunOptions& options) {
  // Guard the float-to-unsigned cast: a non-positive penalty means none.
  return options.miss_penalty_us > 0.0
             ? static_cast<uint64_t>(options.miss_penalty_us * 1000.0)
             : 0;
}

CacheOp MissSetOp(std::string_view key, uint64_t raw_key, const RunOptions& options,
                  const std::string& value) {
  return CacheOp::Set(key, std::string_view(value.data(), options.ValueBytesFor(raw_key)));
}

// On a Get/MultiGet miss, applies the miss-penalty/set-on-miss policy.
void HandleMiss(CacheClient* client, std::string_view key, uint64_t raw_key,
                const RunOptions& options, const std::string& value) {
  if (!options.set_on_miss) {
    return;
  }
  client->ctx().clock().AdvanceNs(MissPenaltyNs(options));
  const CacheOp set_op = MissSetOp(key, raw_key, options, value);
  CacheResult result;
  client->ExecuteBatch({&set_op, 1}, &result);
}

// Maps one trace request onto a typed CacheOp (the key view aliases the
// caller's KeyBuf storage).
CacheOp BuildCacheOp(const workload::Request& req, workload::Op op, const RunOptions& options,
                     std::string_view key, const std::string& value) {
  switch (op) {
    case workload::Op::kGet:
    case workload::Op::kMultiGet:  // an unfused multi-get of one key
      return CacheOp::Get(key, /*want_value=*/false);
    case workload::Op::kUpdate:
    case workload::Op::kInsert:
      return CacheOp::Set(key, std::string_view(value.data(), options.ValueBytesFor(req.key)));
    case workload::Op::kDelete:
      return CacheOp::Delete(key);
    case workload::Op::kExpire:
      return CacheOp::Expire(key, options.expire_ttl_ticks);
  }
  return CacheOp::Get(key, /*want_value=*/false);
}

// Executes one non-fused request on a client as a typed one-op batch,
// applying the miss-penalty/set-on-miss policy, and records the op latency
// (plus the phase trajectory slice when `phase` is non-null). Allocation-free:
// the key is rendered into stack storage instead of a heap std::string.
void ExecuteRequest(CacheClient* client, const workload::Request& req, workload::Op op,
                    const RunOptions& options, const std::string& value,
                    PhaseResult* phase, RecoveryAccumulator* recovery) {
  rdma::ClientContext& ctx = client->ctx();
  workload::KeyBuf key_buf;
  const std::string_view key = workload::FormatKey(req.key, &key_buf);
  const uint64_t begin_ns = ctx.clock().busy_ns();
  const CacheOp cache_op = BuildCacheOp(req, op, options, key, value);
  CacheResult result;
  client->ExecuteBatch({&cache_op, 1}, &result);
  if (cache_op.kind == OpKind::kGet && !result.hit()) {
    HandleMiss(client, key, req.key, options, value);
  }
  if (phase != nullptr) {
    phase->ops++;
    if (cache_op.kind == OpKind::kGet) {
      phase->gets++;
      (result.hit() ? phase->hits : phase->misses)++;
    }
  }
  if (recovery != nullptr && cache_op.kind == OpKind::kGet) {
    recovery->Record(result.hit());
  }
  ctx.op_hist().RecordNs(ctx.clock().busy_ns() - begin_ns);
}

// Per-client/per-shard accumulator fusing consecutive kMultiGet requests
// into pipelined runs of up to options.multiget_batch keys, applying the
// resize schedule as the owner's stream crosses each step index, and
// slicing results into the per-phase trajectory. Fusion, resize, and phase
// state all depend only on the owner's private request stream, so replay
// stays deterministic for any thread count.
class OpDispatcher {
 public:
  // schedule may be null (no resize steps, single-phase accounting). When
  // split_capacity is set each step applies CapacityShare(total, owner,
  // num_owners) — the sharded engine's private-cache split; otherwise the
  // aggregate is applied as-is (shared-state clients apply it idempotently).
  OpDispatcher(CacheClient* client, const workload::Trace& trace, const RunOptions& options,
               const std::string& value, const ResolvedSchedule* schedule = nullptr,
               size_t owner = 0, size_t num_owners = 1, bool split_capacity = false,
               RecoveryAccumulator* recovery = nullptr)
      : client_(client),
        trace_(trace),
        options_(options),
        value_(value),
        schedule_(schedule),
        recovery_(recovery),
        owner_(owner),
        num_owners_(num_owners),
        split_capacity_(split_capacity),
        pipeline_depth_(std::max<size_t>(options.pipeline_depth, 1)),
        pipelined_(options.pipeline_depth > 1 || options.pipeline_force),
        phases_(schedule != nullptr ? schedule->num_phases() : 1) {}

  // ditto-lint: hot-path-begin(op-dispatch)
  // Dispatch and its helpers run once per trace request in every engine's
  // replay loop; steady-state execution must not allocate (PR 4's invariant).
  void Dispatch(uint32_t index) {
    AdvancePhase(index);
    const workload::Request& req = trace_[index];
    const workload::Op op = workload::MixedOpAt(req.op, index, options_.op_mix);
    if (op == workload::Op::kMultiGet && options_.multiget_batch > 1) {
      // ditto-lint: allow(alloc): vector capacity is reused across fused runs
      pending_.push_back(index);
      if (pending_.size() >= options_.multiget_batch) {
        Flush();
      }
      return;
    }
    Flush(/*retire_pipeline=*/false);  // a non-fusable op closes the current run
    if (pipelined_) {
      ExecuteRequestPipelined(req, op);
      return;
    }
    ExecuteRequest(client_, req, op, options_, value_, &phases_[phase_], recovery_);
  }

  // Closes the current fused multi-get run and (by default) drains the verb
  // pipeline. A fused run serializes with the pipeline either way: in-flight
  // ops retire before the run issues, so execution order stays issue order.
  void Flush(bool retire_pipeline = true) {
    if (!pending_.empty()) {
      RetireAll();
      // Every pending index was enqueued in the current phase (AdvancePhase
      // flushes before the capacity changes), so the run is attributed whole.
      ExecuteMultiGetRun(&phases_[phase_]);
      pending_.clear();
    }
    if (retire_pipeline) {
      RetireAll();
    }
  }

  // Per-phase trajectory of this owner's stream (merged by the caller).
  const std::vector<PhaseResult>& phases() const { return phases_; }

 private:
  // Pipelined issue of one request: the op executes now (memory effects in
  // issue order, so cache behaviour matches the blocking path bit-for-bit),
  // but its verb waits accrue on a detached timeline starting at the current
  // clock; the completion timestamp joins the in-flight window and the clock
  // only advances when the window is full and the oldest op retires. A Get
  // miss chains the miss penalty and the set_on_miss re-insert onto the same
  // timeline, exactly as the blocking path charges them inline.
  void ExecuteRequestPipelined(const workload::Request& req, workload::Op op) {
    while (inflight_.size() >= pipeline_depth_) {
      RetireOldest();
    }
    rdma::ClientContext& ctx = client_->ctx();
    workload::KeyBuf key_buf;
    const std::string_view key = workload::FormatKey(req.key, &key_buf);
    const uint64_t start_ns = ctx.clock().busy_ns();
    const CacheOp cache_op = BuildCacheOp(req, op, options_, key, value_);
    CacheResult result;
    uint64_t complete_ns = client_->ExecutePipelined(cache_op, &result, start_ns);
    if (cache_op.kind == OpKind::kGet && !result.hit() && options_.set_on_miss) {
      const CacheOp set_op = MissSetOp(key, req.key, options_, value_);
      CacheResult set_result;
      complete_ns = client_->ExecutePipelined(set_op, &set_result,
                                              complete_ns + MissPenaltyNs(options_));
    }
    PhaseResult& phase = phases_[phase_];
    phase.ops++;
    if (cache_op.kind == OpKind::kGet) {
      phase.gets++;
      (result.hit() ? phase.hits : phase.misses)++;
      if (recovery_ != nullptr) {
        recovery_->Record(result.hit());
      }
    }
    ctx.op_hist().RecordNs(complete_ns - start_ns);
    // ditto-lint: allow(alloc): deque depth is bounded by pipeline_depth_
    inflight_.push_back(complete_ns);
  }

  // Retires the oldest in-flight op: the client blocks until its completion
  // (no-op when later work already moved the clock past it).
  void RetireOldest() {
    client_->ctx().clock().AdvanceToNs(inflight_.front());
    inflight_.pop_front();
  }

  void RetireAll() {
    while (!inflight_.empty()) {
      RetireOldest();
    }
  }

  // Executes the pending fused run of kMultiGet requests as one pipelined
  // batch, then applies the miss policy per missed key. Latency is recorded
  // per key (the run's mean, as reported by the client). Allocation-free at
  // steady state: keys render into a reused KeyBuf array, ops into a reused
  // vector, and results come from the small-vector buffer (inline storage for
  // runs up to its capacity — fused runs are bounded by multiget_batch).
  void ExecuteMultiGetRun(PhaseResult* phase) {
    const std::vector<uint32_t>& idxs = pending_;
    rdma::ClientContext& ctx = client_->ctx();
    const uint64_t begin_ns = ctx.clock().busy_ns();
    // Size the key storage before taking views into it: a later resize would
    // move the buffers the CacheOps alias.
    // ditto-lint: allow(alloc): capacity is reused; bounded by multiget_batch
    mg_keys_.resize(idxs.size());
    mg_ops_.clear();
    for (size_t j = 0; j < idxs.size(); ++j) {
      // ditto-lint: allow(alloc): vector capacity is reused across fused runs
      mg_ops_.push_back(CacheOp::MultiGet(workload::FormatKey(trace_[idxs[j]].key, &mg_keys_[j]),
                                          /*want_value=*/false));
    }
    CacheResult* results = mg_results_.Acquire(idxs.size());
    client_->ExecuteBatch({mg_ops_.data(), mg_ops_.size()}, results);
    for (size_t j = 0; j < idxs.size(); ++j) {
      if (!results[j].hit()) {
        HandleMiss(client_, mg_ops_[j].key, trace_[idxs[j]].key, options_, value_);
      }
      if (phase != nullptr) {
        phase->ops++;
        phase->gets++;
        (results[j].hit() ? phase->hits : phase->misses)++;
      }
      if (recovery_ != nullptr) {
        recovery_->Record(results[j].hit());
      }
    }
    const uint64_t total_ns = ctx.clock().busy_ns() - begin_ns;
    for (size_t j = 0; j < idxs.size(); ++j) {
      ctx.op_hist().RecordNs(total_ns / idxs.size());
    }
  }
  // ditto-lint: hot-path-end(op-dispatch)

  void AdvancePhase(uint32_t index) {
    if (schedule_ == nullptr) {
      return;
    }
    const size_t target = schedule_->PhaseOf(index);
    while (phase_ < target) {
      Flush();  // close the fused run before the capacity changes
      const uint64_t total = schedule_->capacities[phase_];
      client_->ResizeCapacity(split_capacity_ ? dm::CapacityShare(total, owner_, num_owners_)
                                              : total);
      phase_++;
    }
    // Lifecycle steps fire the same way resizes do: when this owner's private
    // stream crosses the step index. Every client calls ApplyLifecycle (so
    // the engines need no cross-thread coordination here); cluster clients
    // make the application itself global-once.
    const size_t lifecycle_target = schedule_->LifecycleCountAt(index);
    while (lifecycle_applied_ < lifecycle_target) {
      Flush();  // close the fused run before membership changes re-route keys
      client_->ApplyLifecycle(schedule_->lifecycle_steps[lifecycle_applied_]);
      lifecycle_applied_++;
    }
  }

  CacheClient* client_;
  const workload::Trace& trace_;
  const RunOptions& options_;
  const std::string& value_;
  const ResolvedSchedule* schedule_;
  RecoveryAccumulator* recovery_;
  size_t owner_;
  size_t num_owners_;
  bool split_capacity_;
  size_t pipeline_depth_;
  bool pipelined_;
  size_t phase_ = 0;
  size_t lifecycle_applied_ = 0;
  std::vector<PhaseResult> phases_;
  std::vector<uint32_t> pending_;
  // Completion timestamps of in-flight pipelined ops, in issue order.
  std::deque<uint64_t> inflight_;
  // Fused-run scratch, reused across runs (dispatchers are single-threaded).
  std::vector<workload::KeyBuf> mg_keys_;
  std::vector<CacheOp> mg_ops_;
  SmallBuf<CacheResult, 16> mg_results_;
};

// Sums per-owner phase slices into `out` (sized by the caller).
void MergePhases(const std::vector<PhaseResult>& phases, std::vector<PhaseResult>* out) {
  if (out == nullptr) {
    return;
  }
  out->resize(std::max(out->size(), phases.size()));
  for (size_t p = 0; p < phases.size(); ++p) {
    (*out)[p].ops += phases[p].ops;
    (*out)[p].gets += phases[p].gets;
    (*out)[p].hits += phases[p].hits;
    (*out)[p].misses += phases[p].misses;
  }
}

// Labels each merged phase with its schedule capacity and derives hit rates.
void FinalizePhases(const ResolvedSchedule& schedule, std::vector<PhaseResult>* phases) {
  phases->resize(schedule.num_phases());
  for (size_t p = 0; p < phases->size(); ++p) {
    PhaseResult& phase = (*phases)[p];
    phase.capacity_objects = p == 0 ? 0 : schedule.capacities[p - 1];
    phase.hit_rate = phase.gets == 0
                         ? 0.0
                         : static_cast<double>(phase.hits) / static_cast<double>(phase.gets);
  }
}

// Replays [begin, end) of the trace: client c owns the strided shard
// begin+c, begin+c+n, ... and the clients' progress is interleaved with the
// same deterministic burst model as workload::InterleaveClients, which
// stands in for unsynchronized concurrent execution. Replaying in one host
// thread keeps the merged access order (and thus hit rates) deterministic;
// timing is virtual, so throughput numbers are unaffected by host
// scheduling.
void ReplayInterleaved(const std::vector<CacheClient*>& clients, const workload::Trace& trace,
                       size_t begin, size_t end, const RunOptions& options,
                       const ResolvedSchedule* schedule = nullptr,
                       std::vector<PhaseResult>* phases_out = nullptr,
                       RecoveryAccumulator* recovery = nullptr) {
  const size_t n = clients.size();
  const std::string value(std::max(options.value_bytes, options.value_bytes_max), 'v');
  std::vector<size_t> cursor(n);
  std::vector<OpDispatcher> dispatch;
  dispatch.reserve(n);
  std::vector<int> live;
  for (size_t c = 0; c < n; ++c) {
    cursor[c] = begin + c;
    // Interleaved clients share one deployment, so each applies the
    // aggregate capacity (idempotent on the shared server state). The
    // recovery accumulator is shared too: the engine runs on one host
    // thread, so windows follow the merged dispatch order.
    dispatch.emplace_back(clients[c], trace, options, value, schedule, c, n,
                          /*split_capacity=*/false, recovery);
    if (cursor[c] < end) {
      live.push_back(static_cast<int>(c));
    }
  }
  Rng rng(0x9e3779b9 + end);
  while (!live.empty()) {
    const size_t pick = rng.NextBelow(live.size());
    const int c = live[pick];
    const uint64_t burst = 1 + rng.NextBelow(8);
    for (uint64_t b = 0; b < burst && cursor[c] < end; ++b) {
      dispatch[c].Dispatch(static_cast<uint32_t>(cursor[c]));
      cursor[c] += n;
    }
    if (static_cast<size_t>(cursor[c]) >= end) {
      dispatch[c].Flush();
      live[pick] = live.back();
      live.pop_back();
    }
  }
  for (const OpDispatcher& d : dispatch) {
    MergePhases(d.phases(), phases_out);
  }
  if (recovery != nullptr) {
    recovery->Finish();
  }
}

// Snapshot of per-client busy time and per-node horizons taken at the
// warmup/measurement boundary; shared by the interleaved and the sharded
// engine.
struct MeasureBaseline {
  std::vector<uint64_t> busy_before;
  std::vector<uint64_t> nic_before;
  std::vector<uint64_t> cpu_before;
  uint64_t nic_msgs_before = 0;
  uint64_t nic_doorbells_before = 0;
  uint64_t rpc_before = 0;
};

MeasureBaseline BeginMeasurement(const std::vector<CacheClient*>& clients,
                                 const std::vector<rdma::RemoteNode*>& nodes) {
  MeasureBaseline base;
  base.busy_before.resize(clients.size());
  for (size_t c = 0; c < clients.size(); ++c) {
    clients[c]->ResetForMeasurement();
    base.busy_before[c] = clients[c]->ctx().clock().busy_ns();
  }
  base.nic_before.resize(nodes.size());
  base.cpu_before.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    base.nic_before[i] = nodes[i]->nic().busy_horizon_ns();
    base.cpu_before[i] = nodes[i]->cpu().busy_horizon_ns();
    base.nic_msgs_before += nodes[i]->nic().messages();
    base.nic_doorbells_before += nodes[i]->nic().doorbells();
    base.rpc_before += nodes[i]->cpu().ops();
  }
  return base;
}

RunResult FinishMeasurement(const std::vector<CacheClient*>& clients,
                            const std::vector<rdma::RemoteNode*>& nodes,
                            const MeasureBaseline& base, uint64_t measured_ops) {
  RunResult result;
  Histogram merged;
  uint64_t sum_busy_delta = 0;
  for (size_t c = 0; c < clients.size(); ++c) {
    const ClientCounters counters = clients[c]->counters();
    result.gets += counters.gets;
    result.hits += counters.hits;
    result.misses += counters.misses;
    result.sets += counters.sets;
    result.deletes += counters.deletes;
    result.evictions += counters.evictions;
    result.expired += counters.expired;
    result.cas_failures += counters.cas_failures;
    result.insert_retries += counters.insert_retries;
    merged.Merge(clients[c]->ctx().op_hist());
    sum_busy_delta += clients[c]->ctx().clock().busy_ns() - base.busy_before[c];
  }
  result.ops = measured_ops;
  // Mean per-client busy time models the paper's fixed-duration runs (all
  // clients execute for the same wall time; miss-prone clients simply finish
  // fewer requests), avoiding a fixed-work straggler bias.
  const uint64_t mean_busy_delta = sum_busy_delta / std::max<size_t>(clients.size(), 1);
  uint64_t elapsed_ns = std::max(mean_busy_delta, uint64_t{1});
  uint64_t nic_msgs_after = 0;
  uint64_t nic_doorbells_after = 0;
  uint64_t rpc_after = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const uint64_t nic_h = nodes[i]->nic().busy_horizon_ns();
    const uint64_t cpu_h = nodes[i]->cpu().busy_horizon_ns();
    elapsed_ns = std::max(elapsed_ns, nic_h > base.nic_before[i] ? nic_h - base.nic_before[i] : 0);
    elapsed_ns = std::max(elapsed_ns, cpu_h > base.cpu_before[i] ? cpu_h - base.cpu_before[i] : 0);
    nic_msgs_after += nodes[i]->nic().messages();
    nic_doorbells_after += nodes[i]->nic().doorbells();
    rpc_after += nodes[i]->cpu().ops();
  }
  result.elapsed_s = static_cast<double>(elapsed_ns) / 1e9;
  result.throughput_mops = static_cast<double>(result.ops) / (result.elapsed_s * 1e6);
  result.hit_rate = result.gets == 0
                        ? 0.0
                        : static_cast<double>(result.hits) / static_cast<double>(result.gets);
  result.p50_us = merged.PercentileUs(50);
  result.p99_us = merged.PercentileUs(99);
  result.nic_messages = nic_msgs_after - base.nic_msgs_before;
  result.nic_doorbells = nic_doorbells_after - base.nic_doorbells_before;
  result.rpc_ops = rpc_after - base.rpc_before;
  return result;
}

// Host wall-clock timing of the measured region. Every engine brackets its
// measured replay (including the Finish() drain) with a WallBegin/FillWall
// pair; the quotient is the real host replay rate, as opposed to the
// virtual-time throughput FinishMeasurement derives from the network model.
using WallPoint = std::chrono::steady_clock::time_point;

WallPoint WallBegin() { return std::chrono::steady_clock::now(); }

void FillWall(RunResult* result, WallPoint begin, int threads) {
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  result->wall_s = wall_s;
  result->wall_mops =
      wall_s > 0.0 ? static_cast<double>(result->ops) / (wall_s * 1e6) : 0.0;
  result->threads = std::max(threads, 1);
  result->ops_per_core_mops = result->wall_mops / static_cast<double>(result->threads);
}

// One phase (warmup or measurement) of the concurrent sharded engine: a
// dispatcher (the calling thread) routes trace[begin, end) to per-shard SPSC
// queues by seeded key hash; worker t drains the queues of shards t, t+T,
// t+2T, ... Each shard's requests execute in trace order on its dedicated
// worker, so per-shard behaviour cannot depend on the thread count.
void ReplaySharded(const std::vector<CacheClient*>& shards, const workload::Trace& trace,
                   size_t begin, size_t end, const RunOptions& options,
                   const ResolvedSchedule* schedule = nullptr,
                   std::vector<PhaseResult>* phases_out = nullptr) {
  const size_t num_shards = shards.size();
  const int num_workers =
      std::max(1, std::min<int>(options.threads, static_cast<int>(num_shards)));
  const std::string value(std::max(options.value_bytes, options.value_bytes_max), 'v');

  std::vector<std::unique_ptr<SpscQueue<uint32_t>>> queues;
  queues.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    queues.push_back(std::make_unique<SpscQueue<uint32_t>>(1024));
  }
  std::atomic<bool> dispatch_done{false};

  // One fusion/phase accumulator per shard: fusion, resize, and phase state
  // follow the shard's private stream, never the worker's drain schedule, so
  // the replay (and the phase trajectory merged below) is identical for any
  // thread count. Shard s is touched only by worker s % num_workers, so the
  // shared vector needs no locking; each shard applies its even share of the
  // schedule's aggregate capacity (the shards are independent caches).
  std::vector<std::unique_ptr<OpDispatcher>> dispatch(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    dispatch[s] = std::make_unique<OpDispatcher>(shards[s], trace, options, value, schedule,
                                                 s, num_shards, /*split_capacity=*/true);
  }

  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (int t = 0; t < num_workers; ++t) {
    workers.emplace_back([&, t] {
      constexpr int kDrainBurst = 64;
      while (true) {
        bool made_progress = false;
        for (size_t s = static_cast<size_t>(t); s < num_shards;
             s += static_cast<size_t>(num_workers)) {
          uint32_t idx;
          for (int n = 0; n < kDrainBurst && queues[s]->TryPop(&idx); ++n) {
            dispatch[s]->Dispatch(idx);
            made_progress = true;
          }
        }
        if (made_progress) {
          continue;
        }
        if (dispatch_done.load(std::memory_order_acquire)) {
          bool drained = true;
          for (size_t s = static_cast<size_t>(t); s < num_shards;
               s += static_cast<size_t>(num_workers)) {
            drained = drained && queues[s]->Empty();
          }
          if (drained) {
            for (size_t s = static_cast<size_t>(t); s < num_shards;
                 s += static_cast<size_t>(num_workers)) {
              dispatch[s]->Flush();
            }
            return;
          }
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  for (size_t i = begin; i < end; ++i) {
    const uint32_t s = ShardForKey(trace[i].key, num_shards, options.partition_seed);
    while (!queues[s]->TryPush(static_cast<uint32_t>(i))) {
      std::this_thread::yield();
    }
  }
  dispatch_done.store(true, std::memory_order_release);
  for (std::thread& worker : workers) {
    worker.join();
  }
  for (const auto& d : dispatch) {
    MergePhases(d->phases(), phases_out);
  }
}

// One phase (warmup or measurement) of the contended engine: client c replays
// the strided sub-stream begin+c, begin+c+n, ... on its own host thread. No
// key partitioning — threads race on whatever slots their requests share, so
// CAS conflicts, duplicate-insert resolution, and eviction/victim races all
// run their real concurrent paths. Dispatcher state stays thread-private; only
// the pool (arena, freelists, superblock) is shared.
void ReplayContended(const std::vector<CacheClient*>& clients, const workload::Trace& trace,
                     size_t begin, size_t end, const RunOptions& options,
                     const ResolvedSchedule* schedule = nullptr,
                     std::vector<PhaseResult>* phases_out = nullptr) {
  const size_t n = clients.size();
  const std::string value(std::max(options.value_bytes, options.value_bytes_max), 'v');
  std::vector<std::unique_ptr<OpDispatcher>> dispatch(n);
  for (size_t c = 0; c < n; ++c) {
    // Contended clients share one deployment, so each applies the schedule's
    // aggregate capacity (idempotent on the shared superblock).
    dispatch[c] = std::make_unique<OpDispatcher>(clients[c], trace, options, value, schedule,
                                                 c, n, /*split_capacity=*/false);
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t c = 0; c < n; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = begin + c; i < end; i += n) {
        dispatch[c]->Dispatch(static_cast<uint32_t>(i));
      }
      dispatch[c]->Flush();
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const auto& d : dispatch) {
    MergePhases(d->phases(), phases_out);
  }
}

}  // namespace

std::vector<ResizeStep> NormalizedResizeSchedule(std::vector<ResizeStep> schedule) {
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ResizeStep& a, const ResizeStep& b) {
                     return a.at_op_fraction < b.at_op_fraction;
                   });
  for (ResizeStep& step : schedule) {
    step.at_op_fraction = std::min(std::max(step.at_op_fraction, 0.0), 1.0);
  }
  return schedule;
}

size_t ResizeStepIndex(double at_op_fraction, size_t begin, size_t end) {
  return begin + static_cast<size_t>(at_op_fraction * static_cast<double>(end - begin));
}

std::vector<LifecycleStep> NormalizedLifecycleSchedule(std::vector<LifecycleStep> schedule) {
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const LifecycleStep& a, const LifecycleStep& b) {
                     return a.at_op_fraction < b.at_op_fraction;
                   });
  for (LifecycleStep& step : schedule) {
    step.at_op_fraction = std::min(std::max(step.at_op_fraction, 0.0), 1.0);
  }
  return schedule;
}

uint32_t ShardForKey(uint64_t key, size_t num_shards, uint64_t seed) {
  return SeededPartition(key, num_shards, seed);
}

RunResult RunTrace(const std::vector<CacheClient*>& clients, const workload::Trace& trace,
                   rdma::RemoteNode* node, const RunOptions& options) {
  return RunTrace(clients, trace, std::vector<rdma::RemoteNode*>{node}, options);
}

RunResult RunTrace(const std::vector<CacheClient*>& clients, const workload::Trace& trace,
                   const std::vector<rdma::RemoteNode*>& nodes, const RunOptions& options) {
  for (CacheClient* client : clients) {
    client->SetBatchOps(options.batch_ops);
  }

  size_t measure_begin = 0;
  if (options.warmup_fraction > 0.0) {
    measure_begin =
        static_cast<size_t>(options.warmup_fraction * static_cast<double>(trace.size()));
    ReplayInterleaved(clients, trace, 0, measure_begin, options);
    for (CacheClient* client : clients) {
      // Drain doorbell chains pending from warmup so their deferred costs
      // are charged before the measurement baseline is snapshotted.
      client->SetBatchOps(options.batch_ops);
    }
  }

  const ResolvedSchedule schedule = ResolveSchedule(options, measure_begin, trace.size());
  const MeasureBaseline base = BeginMeasurement(clients, nodes);
  const WallPoint wall_begin = WallBegin();
  std::vector<PhaseResult> phases;
  std::vector<RecoverySample> recovery_samples;
  RecoveryAccumulator recovery;
  recovery.window_ops = options.recovery_window_ops;
  recovery.out = &recovery_samples;
  ReplayInterleaved(clients, trace, measure_begin, trace.size(), options, &schedule, &phases,
                    options.recovery_window_ops > 0 ? &recovery : nullptr);
  for (CacheClient* client : clients) {
    client->Finish();
  }
  RunResult result = FinishMeasurement(clients, nodes, base, trace.size() - measure_begin);
  // The interleaved engine (and thus pipelined replay) runs on one host
  // thread regardless of the client count.
  FillWall(&result, wall_begin, /*threads=*/1);
  FinalizePhases(schedule, &phases);
  result.phases = std::move(phases);
  result.recovery = std::move(recovery_samples);
  return result;
}

RunResult RunTraceSharded(const std::vector<CacheClient*>& shards, const workload::Trace& trace,
                          const std::vector<rdma::RemoteNode*>& nodes,
                          const RunOptions& options) {
  for (CacheClient* shard : shards) {
    shard->SetBatchOps(options.batch_ops);
  }

  size_t measure_begin = 0;
  if (options.warmup_fraction > 0.0) {
    measure_begin =
        static_cast<size_t>(options.warmup_fraction * static_cast<double>(trace.size()));
    ReplaySharded(shards, trace, 0, measure_begin, options);
    for (CacheClient* shard : shards) {
      // Drain doorbell chains pending from warmup so their deferred costs
      // are charged before the measurement baseline is snapshotted.
      shard->SetBatchOps(options.batch_ops);
    }
  }

  const ResolvedSchedule schedule = ResolveSchedule(options, measure_begin, trace.size());
  const MeasureBaseline base = BeginMeasurement(shards, nodes);
  const WallPoint wall_begin = WallBegin();
  std::vector<PhaseResult> phases;
  ReplaySharded(shards, trace, measure_begin, trace.size(), options, &schedule, &phases);
  for (CacheClient* shard : shards) {
    shard->Finish();
  }
  RunResult result = FinishMeasurement(shards, nodes, base, trace.size() - measure_begin);
  FillWall(&result, wall_begin,
           std::max(1, std::min<int>(options.threads, static_cast<int>(shards.size()))));
  FinalizePhases(schedule, &phases);
  result.phases = std::move(phases);
  return result;
}

RunResult RunTraceContended(const std::vector<CacheClient*>& clients,
                            const workload::Trace& trace,
                            const std::vector<rdma::RemoteNode*>& nodes,
                            const RunOptions& options,
                            std::vector<RunResult>* per_client) {
  for (CacheClient* client : clients) {
    client->SetBatchOps(options.batch_ops);
  }

  size_t measure_begin = 0;
  if (options.warmup_fraction > 0.0) {
    measure_begin =
        static_cast<size_t>(options.warmup_fraction * static_cast<double>(trace.size()));
    ReplayContended(clients, trace, 0, measure_begin, options);
    for (CacheClient* client : clients) {
      // Drain doorbell chains pending from warmup so their deferred costs
      // are charged before the measurement baseline is snapshotted.
      client->SetBatchOps(options.batch_ops);
    }
  }

  const ResolvedSchedule schedule = ResolveSchedule(options, measure_begin, trace.size());
  const MeasureBaseline base = BeginMeasurement(clients, nodes);
  const WallPoint wall_begin = WallBegin();
  std::vector<PhaseResult> phases;
  ReplayContended(clients, trace, measure_begin, trace.size(), options, &schedule, &phases);
  for (CacheClient* client : clients) {
    client->Finish();
  }
  const size_t measured = trace.size() - measure_begin;
  RunResult result = FinishMeasurement(clients, nodes, base, measured);
  FillWall(&result, wall_begin, static_cast<int>(clients.size()));
  FinalizePhases(schedule, &phases);
  result.phases = std::move(phases);

  if (per_client != nullptr) {
    per_client->clear();
    per_client->reserve(clients.size());
    for (size_t c = 0; c < clients.size(); ++c) {
      RunResult r;
      const ClientCounters counters = clients[c]->counters();
      r.gets = counters.gets;
      r.hits = counters.hits;
      r.misses = counters.misses;
      r.sets = counters.sets;
      r.deletes = counters.deletes;
      r.evictions = counters.evictions;
      r.expired = counters.expired;
      r.cas_failures = counters.cas_failures;
      r.insert_retries = counters.insert_retries;
      r.ops = measured / clients.size() + (c < measured % clients.size() ? 1 : 0);
      const uint64_t busy_delta = clients[c]->ctx().clock().busy_ns() - base.busy_before[c];
      r.elapsed_s = static_cast<double>(std::max(busy_delta, uint64_t{1})) / 1e9;
      r.throughput_mops = static_cast<double>(r.ops) / (r.elapsed_s * 1e6);
      r.hit_rate = r.gets == 0
                       ? 0.0
                       : static_cast<double>(r.hits) / static_cast<double>(r.gets);
      r.p50_us = clients[c]->ctx().op_hist().PercentileUs(50);
      r.p99_us = clients[c]->ctx().op_hist().PercentileUs(99);
      per_client->push_back(std::move(r));
    }
  }
  return result;
}

std::string FormatResult(const std::string& label, const RunResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-24s ops=%-9llu tput=%7.2f Mops  hit=%6.2f%%  p50=%7.1fus  p99=%7.1fus",
                label.c_str(), static_cast<unsigned long long>(r.ops), r.throughput_mops,
                r.hit_rate * 100.0, r.p50_us, r.p99_us);
  return buf;
}

}  // namespace ditto::sim
