// CacheClient: the uniform client interface the experiment runner drives.
// Ditto clients and every DM baseline implement it, so benches replay the
// identical trace against all systems.
#ifndef DITTO_SIM_CLIENT_IFACE_H_
#define DITTO_SIM_CLIENT_IFACE_H_

#include <string>
#include <string_view>

#include "rdma/node.h"

namespace ditto::sim {

struct ClientCounters {
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t sets = 0;
};

class CacheClient {
 public:
  virtual ~CacheClient() = default;

  virtual bool Get(std::string_view key, std::string* value) = 0;
  virtual void Set(std::string_view key, std::string_view value) = 0;

  virtual rdma::ClientContext& ctx() = 0;
  virtual ClientCounters counters() const = 0;

  // Flushes client-side buffers at the end of a run.
  virtual void Finish() {}
  // Clears counters/latency at the warmup/measurement boundary.
  virtual void ResetForMeasurement() = 0;
  // Enables doorbell batching of async metadata verbs every `ops` posts
  // (0 disables). Clients without batching support ignore it.
  virtual void SetBatchOps(size_t ops) { (void)ops; }
};

}  // namespace ditto::sim

#endif  // DITTO_SIM_CLIENT_IFACE_H_
