// CacheClient: the uniform client interface the experiment runner drives.
// Ditto clients and every DM baseline implement it, so benches replay the
// identical trace against all systems.
//
// The primary entry point is ExecuteBatch over typed CacheOps (see
// cache_op.h): implementations see whole batches, which lets them chain the
// metadata verbs of a pipelined kMultiGet run into one NIC doorbell. The
// blocking Get/Set/Delete/Expire members are convenience wrappers over a
// one-element batch, retained so pre-protocol call sites keep compiling.
#ifndef DITTO_SIM_CLIENT_IFACE_H_
#define DITTO_SIM_CLIENT_IFACE_H_

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rdma/node.h"
#include "sim/cache_op.h"

namespace ditto::sim {

// One step of a cluster-membership/fault schedule (mirrors ResizeStep): when
// the replay crosses `measure_begin + at_op_fraction * measured_ops`, the
// given lifecycle event is applied to `node`. Clients without a cluster
// lifecycle ignore the steps (ApplyLifecycle below defaults to a no-op).
enum class LifecycleKind : uint8_t {
  kCrash,    // node fails: data lost, ring routes around it
  kRestart,  // crashed node comes back cold (wiped) and rejoins the ring
  kLeave,    // planned departure: node leaves the ring, its keys migrate out
  kJoin,     // planned (re)join: node enters the ring, its keys migrate in
};

struct LifecycleStep {
  double at_op_fraction = 0.0;  // in [0, 1), fraction of the measured replay
  LifecycleKind kind = LifecycleKind::kCrash;
  uint32_t node = 0;
};

struct ClientCounters {
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t sets = 0;
  uint64_t deletes = 0;
  uint64_t evictions = 0;
  uint64_t expired = 0;  // objects reclaimed by lazy TTL expiry on lookup
  // Contention counters: CASes lost to concurrent clients of one shared pool
  // and insert claim rounds repeated after such races. Zero for clients that
  // never share mutable state (the key-partitioned sharded engine) and for
  // baselines without a CAS-based insert path.
  uint64_t cas_failures = 0;
  uint64_t insert_retries = 0;
};

// Shared single-op dispatch for implementations that map a CacheOp onto
// blocking per-kind primitives: runs the right callable, fills the typed
// status, and charges the op's virtual-time latency. Keeps the kind switch in
// one place so a new OpKind is added once, not once per implementation.
template <typename GetFn, typename SetFn, typename DeleteFn, typename ExpireFn>
void DispatchSingleOp(rdma::ClientContext& ctx, const CacheOp& op, CacheResult* result,
                      GetFn&& get, SetFn&& set, DeleteFn&& del, ExpireFn&& expire) {
  const uint64_t begin_ns = ctx.clock().busy_ns();
  switch (op.kind) {
    case OpKind::kGet:
    case OpKind::kMultiGet:  // a lone kMultiGet degenerates to a Get
      result->status = get(op.key, op.want_value ? &result->value : nullptr)
                           ? OpStatus::kHit
                           : OpStatus::kMiss;
      break;
    case OpKind::kSet:
      result->status = set(op.key, op.value, op.ttl_ticks) ? OpStatus::kStored
                                                           : OpStatus::kDropped;
      break;
    case OpKind::kDelete:
      result->status = del(op.key) ? OpStatus::kDeleted : OpStatus::kNotFound;
      break;
    case OpKind::kExpire:
      result->status = expire(op.key, op.ttl_ticks) ? OpStatus::kStored : OpStatus::kNotFound;
      break;
  }
  result->latency_us = static_cast<double>(ctx.clock().busy_ns() - begin_ns) / 1000.0;
}

class CacheClient {
 public:
  virtual ~CacheClient() = default;

  // Executes `ops` in order, writing ops.size() results to `results`.
  // Consecutive kMultiGet ops form one pipelined multi-key lookup whose
  // metadata verbs batching-capable clients chain behind a single doorbell.
  virtual void ExecuteBatch(std::span<const CacheOp> ops, CacheResult* results) = 0;

  // --- Blocking wrappers over a one-element batch --------------------------
  bool Get(std::string_view key, std::string* value) {
    const CacheOp op = CacheOp::Get(key, /*want_value=*/value != nullptr);
    CacheResult r;
    ExecuteBatch({&op, 1}, &r);
    if (value != nullptr && r.hit()) {
      *value = std::move(r.value);
    }
    return r.hit();
  }
  // Returns false if the store was dropped (memory exhausted, nothing
  // evictable).
  bool Set(std::string_view key, std::string_view value, uint64_t ttl_ticks = 0) {
    const CacheOp op = CacheOp::Set(key, value, ttl_ticks);
    CacheResult r;
    ExecuteBatch({&op, 1}, &r);
    return r.status == OpStatus::kStored;
  }
  bool Delete(std::string_view key) {
    const CacheOp op = CacheOp::Delete(key);
    CacheResult r;
    ExecuteBatch({&op, 1}, &r);
    return r.status == OpStatus::kDeleted;
  }
  bool Expire(std::string_view key, uint64_t ttl_ticks) {
    const CacheOp op = CacheOp::Expire(key, ttl_ticks);
    CacheResult r;
    ExecuteBatch({&op, 1}, &r);
    return r.status == OpStatus::kStored;
  }
  // Pipelined lookup of `keys`; results->at(i) corresponds to keys[i].
  // Returns the number of hits.
  size_t MultiGet(std::span<const std::string_view> keys, std::vector<CacheResult>* results) {
    std::vector<CacheOp> ops;
    ops.reserve(keys.size());
    for (const std::string_view key : keys) {
      ops.push_back(CacheOp::MultiGet(key));
    }
    results->assign(keys.size(), CacheResult{});
    ExecuteBatch(ops, results->data());
    size_t hits = 0;
    for (const CacheResult& r : *results) {
      hits += r.hit() ? 1 : 0;
    }
    return hits;
  }

  // Completion-queue pipelined issue (RunOptions::pipeline_depth > 1): the
  // op executes immediately (memory effects in issue order — cache behaviour
  // is identical to the blocking path), but its virtual-time cost accrues on
  // a detached timeline starting at start_ns instead of blocking the client
  // clock. Returns the op's completion timestamp; the caller keeps up to K
  // completions in flight and retires them in issue order with
  // VirtualClock::AdvanceToNs. Clients without a completion-queue model fall
  // back to blocking execution and return the clock, so a pipelined replay
  // degrades to depth-1 behaviour for them.
  virtual uint64_t ExecutePipelined(const CacheOp& op, CacheResult* result,
                                    uint64_t start_ns) {
    // A chained op may start in the future (e.g. a miss penalty offsets the
    // set_on_miss re-insert): block until then, exactly as depth-1 would.
    ctx().clock().AdvanceToNs(start_ns);
    ExecuteBatch({&op, 1}, result);
    return ctx().clock().busy_ns();
  }

  virtual rdma::ClientContext& ctx() = 0;
  virtual ClientCounters counters() const = 0;

  // Elastic scaling: changes this client's view of the cache's capacity (in
  // objects) at run time, evicting down before returning when shrinking.
  // Implementations sharing server-side state (a pool superblock, a
  // directory, a CliqueMap server) make this idempotent, so every client of
  // one deployment may apply the same step. Clients without a resize path
  // ignore the call and return false.
  virtual bool ResizeCapacity(uint64_t capacity_objects) {
    (void)capacity_objects;
    return false;
  }

  // Applies one cluster-lifecycle step (crash/restart/leave/join of a
  // backing node). Cluster deployments apply the step once globally (the
  // shared pool de-duplicates, so every client of one deployment may call
  // this, like ResizeCapacity) and run any key migration before returning.
  // Single-node clients and baselines ignore the call.
  virtual void ApplyLifecycle(const LifecycleStep& step) { (void)step; }

  // Flushes client-side buffers at the end of a run.
  virtual void Finish() {}
  // Clears counters/latency at the warmup/measurement boundary.
  virtual void ResetForMeasurement() = 0;
  // Enables doorbell batching of async metadata verbs every `ops` posts
  // (0 disables). Clients without batching support ignore it.
  virtual void SetBatchOps(size_t ops) { (void)ops; }
};

}  // namespace ditto::sim

#endif  // DITTO_SIM_CLIENT_IFACE_H_
