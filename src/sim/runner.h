// Experiment runner: replays a workload trace against a set of cache clients
// on real threads (one per client) and reports throughput / latency / hit
// rate in virtual time.
//
// Time accounting: every client accumulates busy time on its virtual clock;
// the NIC and controller-CPU models advance their own FCFS horizons. The
// elapsed time of a phase is
//   max( max_i Δbusy_i , Δnic_horizon , Δcpu_horizon )
// and throughput is ops / elapsed. A Get miss pays the configured miss
// penalty (the paper's 500 us distributed-storage fetch) and re-inserts the
// object with Set.
#ifndef DITTO_SIM_RUNNER_H_
#define DITTO_SIM_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rdma/node.h"
#include "sim/client_iface.h"
#include "workloads/trace.h"

namespace ditto::sim {

// One step of a deterministic elastic-scaling schedule: when the replay
// reaches request index `measure_begin + at_op_fraction * measured_ops`, the
// cache's aggregate capacity becomes `capacity_objects`. Steps are applied
// at identical request indices in RunTrace and RunTraceSharded; in the
// sharded engine every shard applies its even share of the aggregate when
// its own (thread-private) stream crosses the index, so the whole trajectory
// is invariant to the thread count.
struct ResizeStep {
  double at_op_fraction = 0.0;   // in [0, 1), fraction of the measured replay
  uint64_t capacity_objects = 0; // aggregate capacity after the step
};

struct RunOptions {
  size_t value_bytes = 232;
  // When > value_bytes, each key gets a deterministic (hash-derived) value
  // size in [value_bytes, value_bytes_max] — used by size-aware-policy
  // experiments (SIZE, GDS, GDSF).
  size_t value_bytes_max = 0;
  double miss_penalty_us = 0.0;  // 0 = no penalty; misses still Set
  bool set_on_miss = true;
  // Fraction of each client's shard replayed as warmup (not measured).
  double warmup_fraction = 0.0;

  // Concurrent sharded engine (RunTraceSharded) knobs.
  int threads = 1;               // host worker threads driving the shards
  uint64_t partition_seed = 1;   // seeds the key -> shard partition
  // When > 0, every client doorbell-batches its async metadata verbs with a
  // chain of this many posts (duplicate addresses coalesce on the wire).
  size_t batch_ops = 0;

  // Completion-queue verb pipelining: each client keeps up to pipeline_depth
  // independent ops in flight, retiring them in issue order. Ops still
  // *execute* (and mutate cache state) strictly in issue order — pipelining
  // overlaps only their virtual-time verb latencies via the clients' CQ model
  // (CacheClient::ExecutePipelined) — so hit rates, verb counts, and eviction
  // decisions are bit-identical for every depth; only throughput/latency
  // change. Depth 1 (the default) replays through the classic blocking path;
  // pipeline_force routes depth-1 replay through the pipelined issue loop
  // instead, which the equivalence tests use to pin that both paths agree
  // bit-for-bit. Clients without a CQ model degrade to depth-1 behaviour.
  // Fused multi-get runs serialize with the pipeline (the pipeline drains
  // before a fused run issues).
  size_t pipeline_depth = 1;
  bool pipeline_force = false;

  // Typed-op replay knobs. op_mix deterministically rewrites a fraction of
  // the trace's Gets into kDelete / kExpire / kMultiGet (a pure function of
  // the request index, so every engine and thread count replays the same op
  // stream). Consecutive kMultiGet requests of one client/shard fuse into a
  // pipelined multi-get of up to multiget_batch keys; kExpire arms
  // expire_ttl_ticks of TTL.
  workload::OpMix op_mix;
  size_t multiget_batch = 8;
  uint64_t expire_ttl_ticks = 64;

  // Elastic scaling schedule (empty = fixed capacity). Applied to the
  // measured region only; steps are sorted by at_op_fraction before use.
  // Each step calls CacheClient::ResizeCapacity — clients without a resize
  // path ignore it, and the phase trajectory in RunResult still reports the
  // per-phase hit rates.
  std::vector<ResizeStep> resize_schedule;

  // Cluster lifecycle schedule (empty = stable membership), mirroring
  // resize_schedule: when the measured replay crosses a step's index, every
  // client calls CacheClient::ApplyLifecycle (cluster deployments apply it
  // globally-once; other clients ignore it). Steps are sorted by
  // at_op_fraction before use and applied at identical request indices in
  // every engine, like resizes.
  std::vector<LifecycleStep> lifecycle_schedule;

  // When > 0, RunTrace samples the measured region's aggregate hit rate into
  // RunResult::recovery every recovery_window_ops Get outcomes — the
  // fine-grained trajectory fault/lifecycle experiments need to see hit-rate
  // collapse and recovery around a schedule step. Windows aggregate across
  // all clients of the (single-host-thread) interleaved replay and are
  // bit-deterministic; the concurrent engines ignore the knob.
  size_t recovery_window_ops = 0;

  size_t ValueBytesFor(uint64_t key) const;
};

// One recovery-trajectory sample: Get outcomes of one window of the measured
// replay (see RunOptions::recovery_window_ops).
struct RecoverySample {
  uint64_t gets = 0;
  uint64_t hits = 0;
  double HitRate() const {
    return gets == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(gets);
  }
};

// Per-phase slice of a run, where phases are delimited by the resize
// schedule: phase 0 runs at the deployment's initial capacity
// (capacity_objects reported as 0), phase p >= 1 after schedule step p-1.
struct PhaseResult {
  uint64_t capacity_objects = 0;  // 0 = initial (pre-first-step) capacity
  uint64_t ops = 0;
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double hit_rate = 0.0;
};

struct RunResult {
  uint64_t ops = 0;  // trace requests replayed (a miss's re-insert Set is not an extra op)
  double elapsed_s = 0.0;
  double throughput_mops = 0.0;
  double hit_rate = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t deletes = 0;
  uint64_t evictions = 0;
  uint64_t expired = 0;
  uint64_t nic_messages = 0;
  uint64_t nic_doorbells = 0;
  uint64_t rpc_ops = 0;
  // Contention counters (see ClientCounters): nonzero only when clients race
  // on shared slots, i.e. under RunTraceContended or multi-client RunTrace
  // deployments sharing one pool.
  uint64_t cas_failures = 0;
  uint64_t insert_retries = 0;
  // Host wall-clock view of the measured region. The virtual-time fields
  // above model the simulated network and are bit-deterministic; these four
  // measure how fast the replay loop itself runs on the host, which is the
  // number that moves when the hot path gets faster. wall_s covers the
  // measured replay plus the Finish() drain; threads is the number of host
  // threads that drove it (1 for RunTrace, the worker count for
  // RunTraceSharded, the client count for RunTraceContended).
  double wall_s = 0.0;
  double wall_mops = 0.0;
  int threads = 1;
  double ops_per_core_mops = 0.0;  // wall_mops / threads
  // Hit-rate trajectory across the resize schedule (resize_schedule.size()+1
  // entries; a single entry covering the whole run when no schedule is set).
  // Deterministic: identical for any RunTraceSharded thread count.
  std::vector<PhaseResult> phases;
  // Windowed hit-rate trajectory of the measured region (RunTrace only,
  // empty unless RunOptions::recovery_window_ops > 0). The final window may
  // be short. Deterministic for a fixed (trace, options, fault seed).
  std::vector<RecoverySample> recovery;
};

// Replays `trace` sharded round-robin over `clients`. `node` provides the
// NIC/CPU horizons (the memory node the clients talk to).
RunResult RunTrace(const std::vector<CacheClient*>& clients, const workload::Trace& trace,
                   rdma::RemoteNode* node, const RunOptions& options);

// Multi-memory-node variant: the elapsed-time bound uses every node's NIC
// and controller-CPU horizon.
RunResult RunTrace(const std::vector<CacheClient*>& clients, const workload::Trace& trace,
                   const std::vector<rdma::RemoteNode*>& nodes, const RunOptions& options);

// Normal form of a resize schedule as both replay engines apply it: steps
// stably sorted by at_op_fraction with fractions clamped to [0, 1]. Oracle
// replays (sim/elastic_oracle.h) use the same normal form so every consumer
// crosses phases at identical request indices.
std::vector<ResizeStep> NormalizedResizeSchedule(std::vector<ResizeStep> schedule);

// Normal form of a lifecycle schedule (same sort/clamp rules, so lifecycle
// and resize steps fire at indices computed identically).
std::vector<LifecycleStep> NormalizedLifecycleSchedule(std::vector<LifecycleStep> schedule);

// Absolute trace index at which a (normalized) step fires over the measured
// region [begin, end).
size_t ResizeStepIndex(double at_op_fraction, size_t begin, size_t end);

// Deterministic seeded key -> shard partition of the concurrent engine.
uint32_t ShardForKey(uint64_t key, size_t num_shards, uint64_t seed);

// Concurrent sharded replay on real host threads. shards[s] owns key
// partition s (ShardForKey with options.partition_seed) with shard-private
// cache state; requests are routed by key through per-shard lock-free SPSC
// queues fed by a single dispatcher, and options.threads workers each drive
// a static subset of the shards (shard s -> worker s % threads).
//
// Because every shard's request stream and cache state are thread-private,
// the per-shard access order — and therefore hits/misses/evictions — is
// independent of the thread count: a fixed (trace, seed) pair produces
// identical hit rates for any options.threads. When each shard also has its
// own memory node (nodes[s], the intended deployment), the virtual-time
// accounting is thread-private too and the whole RunResult is reproducible
// bit-for-bit. Shards must not share mutable cache state.
RunResult RunTraceSharded(const std::vector<CacheClient*>& shards, const workload::Trace& trace,
                          const std::vector<rdma::RemoteNode*>& nodes,
                          const RunOptions& options);

// Contended multi-client replay: options.threads is ignored — every client
// gets its own host thread, and unlike the sharded engine there is NO key
// partitioning. Client c replays the strided sub-stream begin+c, begin+c+n,
// ... of the trace, so clients race on whatever keys the trace makes them
// share: slot CAS conflicts, duplicate-insert resolution, and eviction/victim
// races all take their real concurrent paths against the shared pool(s).
//
// Clients must all be backed by the SAME dm::MemoryPool deployment (e.g.
// bench::DittoDeployment), each with its own ClientContext — the per-client
// FC cache, verbs endpoint, and scratch stay thread-private while the arena,
// allocator freelists, and hash-table slots are genuinely shared. Results are
// NOT bit-deterministic across runs (real races decide CAS winners); the
// aggregate counters are still exact sums of what each client observed.
// `per_client`, when non-null, receives one RunResult per client (ops, hit
// rate, latency percentiles, and that client's contention counters).
RunResult RunTraceContended(const std::vector<CacheClient*>& clients,
                            const workload::Trace& trace,
                            const std::vector<rdma::RemoteNode*>& nodes,
                            const RunOptions& options,
                            std::vector<RunResult>* per_client = nullptr);

// Convenience: formats a result row.
std::string FormatResult(const std::string& label, const RunResult& r);

}  // namespace ditto::sim

#endif  // DITTO_SIM_RUNNER_H_
