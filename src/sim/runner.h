// Experiment runner: replays a workload trace against a set of cache clients
// on real threads (one per client) and reports throughput / latency / hit
// rate in virtual time.
//
// Time accounting: every client accumulates busy time on its virtual clock;
// the NIC and controller-CPU models advance their own FCFS horizons. The
// elapsed time of a phase is
//   max( max_i Δbusy_i , Δnic_horizon , Δcpu_horizon )
// and throughput is ops / elapsed. A Get miss pays the configured miss
// penalty (the paper's 500 us distributed-storage fetch) and re-inserts the
// object with Set.
#ifndef DITTO_SIM_RUNNER_H_
#define DITTO_SIM_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rdma/node.h"
#include "sim/client_iface.h"
#include "workloads/trace.h"

namespace ditto::sim {

struct RunOptions {
  size_t value_bytes = 232;
  // When > value_bytes, each key gets a deterministic (hash-derived) value
  // size in [value_bytes, value_bytes_max] — used by size-aware-policy
  // experiments (SIZE, GDS, GDSF).
  size_t value_bytes_max = 0;
  double miss_penalty_us = 0.0;  // 0 = no penalty; misses still Set
  bool set_on_miss = true;
  // Fraction of each client's shard replayed as warmup (not measured).
  double warmup_fraction = 0.0;

  size_t ValueBytesFor(uint64_t key) const;
};

struct RunResult {
  uint64_t ops = 0;  // trace requests replayed (a miss's re-insert Set is not an extra op)
  double elapsed_s = 0.0;
  double throughput_mops = 0.0;
  double hit_rate = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t nic_messages = 0;
  uint64_t rpc_ops = 0;
};

// Replays `trace` sharded round-robin over `clients`. `node` provides the
// NIC/CPU horizons (the memory node the clients talk to).
RunResult RunTrace(const std::vector<CacheClient*>& clients, const workload::Trace& trace,
                   rdma::RemoteNode* node, const RunOptions& options);

// Multi-memory-node variant: the elapsed-time bound uses every node's NIC
// and controller-CPU horizon.
RunResult RunTrace(const std::vector<CacheClient*>& clients, const workload::Trace& trace,
                   const std::vector<rdma::RemoteNode*>& nodes, const RunOptions& options);

// Convenience: formats a result row.
std::string FormatResult(const std::string& label, const RunResult& r);

}  // namespace ditto::sim

#endif  // DITTO_SIM_RUNNER_H_
