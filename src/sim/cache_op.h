// The typed client operation protocol: every cache request a client can
// issue is a CacheOp, every response a CacheResult. CacheClient implementations
// consume whole batches (ExecuteBatch), which is what lets clients chain the
// metadata verbs of pipelined multi-key requests into a single NIC doorbell;
// the blocking Get/Set/Delete/Expire calls are thin wrappers over a
// one-element batch.
//
// A run of consecutive kMultiGet ops in one batch is treated as a single
// pipelined multi-get: clients that support doorbell batching issue the whole
// run's metadata verbs behind one doorbell.
#ifndef DITTO_SIM_CACHE_OP_H_
#define DITTO_SIM_CACHE_OP_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ditto::sim {

enum class OpKind : uint8_t {
  kGet,       // point lookup
  kSet,       // insert or update (ttl_ticks > 0 arms expiry)
  kDelete,    // remove the key
  kMultiGet,  // one key of a pipelined multi-key lookup
  kExpire,    // (re)arm the TTL of a cached key (ttl_ticks == 0 clears it)
};

enum class OpStatus : uint8_t {
  kHit,          // Get/MultiGet found the key
  kMiss,         // Get/MultiGet did not (includes lazily-expired objects)
  kStored,       // Set stored the value / Expire armed the TTL
  kDeleted,      // Delete removed a cached key
  kNotFound,     // Delete/Expire on a key that is not cached
  kDropped,      // Set could not store (memory exhausted, nothing evictable)
  kUnavailable,  // the backing node is crashed / retries exhausted (cluster
                 // deployments); front ends surface this as -UNAVAILABLE
                 // instead of serving a silent miss
};

// One typed request. Keys and values are views into caller-owned storage and
// must stay alive for the duration of the ExecuteBatch call.
struct CacheOp {
  OpKind kind = OpKind::kGet;
  std::string_view key;
  std::string_view value = {};
  // TTL in logical-clock ticks, relative to now; 0 = never expires. Expiry is
  // lazy: an expired object is reclaimed by the next lookup that touches it.
  uint64_t ttl_ticks = 0;
  // When false, a Get/MultiGet hit skips copying the value into the result
  // (the runner's replay path only needs hit/miss outcomes).
  bool want_value = true;

  static CacheOp Get(std::string_view key, bool want_value = true) {
    return CacheOp{OpKind::kGet, key, {}, 0, want_value};
  }
  static CacheOp Set(std::string_view key, std::string_view value, uint64_t ttl_ticks = 0) {
    return CacheOp{OpKind::kSet, key, value, ttl_ticks};
  }
  static CacheOp Delete(std::string_view key) { return CacheOp{OpKind::kDelete, key, {}, 0}; }
  static CacheOp MultiGet(std::string_view key, bool want_value = true) {
    return CacheOp{OpKind::kMultiGet, key, {}, 0, want_value};
  }
  static CacheOp Expire(std::string_view key, uint64_t ttl_ticks) {
    return CacheOp{OpKind::kExpire, key, {}, ttl_ticks};
  }
};

// One typed response. `value` is filled only for kHit results; `latency_us`
// is the virtual-time cost the executing client charged for the op (for ops
// fused into a pipelined run, the run's mean per-op cost).
struct CacheResult {
  OpStatus status = OpStatus::kMiss;
  std::string value;
  double latency_us = 0.0;

  bool hit() const { return status == OpStatus::kHit; }
  bool ok() const {
    return status != OpStatus::kMiss && status != OpStatus::kNotFound &&
           status != OpStatus::kDropped && status != OpStatus::kUnavailable;
  }
};

}  // namespace ditto::sim

#endif  // DITTO_SIM_CACHE_OP_H_
