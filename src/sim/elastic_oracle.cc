#include "sim/elastic_oracle.h"

#include <memory>

#include "policies/precise.h"

namespace ditto::sim {

OracleTrajectory ReplayLruOracle(const workload::Trace& trace, size_t measure_begin,
                                 const std::vector<ResizeStep>& schedule,
                                 uint64_t initial_capacity, bool cold_restart) {
  const std::vector<ResizeStep> steps = NormalizedResizeSchedule(schedule);
  std::vector<size_t> thresholds;
  thresholds.reserve(steps.size());
  for (const ResizeStep& step : steps) {
    thresholds.push_back(ResizeStepIndex(step.at_op_fraction, measure_begin, trace.size()));
  }

  OracleTrajectory out;
  out.gets.assign(steps.size() + 1, 0);
  out.hits.assign(steps.size() + 1, 0);
  auto cache = std::make_unique<policy::PreciseCache>(initial_capacity,
                                                      policy::PrecisePolicyKind::kLru);
  size_t phase = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    while (phase < thresholds.size() && i >= thresholds[phase]) {
      if (cold_restart) {
        cache = std::make_unique<policy::PreciseCache>(steps[phase].capacity_objects,
                                                       policy::PrecisePolicyKind::kLru);
      } else {
        cache->Resize(steps[phase].capacity_objects);
      }
      phase++;
    }
    const bool hit = cache->Access(trace[i].key);
    if (i >= measure_begin) {
      out.gets[phase]++;
      out.hits[phase] += hit ? 1 : 0;
    }
  }
  return out;
}

std::vector<RecoverySample> ReplayRecoveryOracle(const workload::Trace& trace,
                                                 size_t measure_begin,
                                                 const std::vector<LifecycleStep>& schedule,
                                                 uint64_t capacity, size_t window_ops) {
  const std::vector<LifecycleStep> steps = NormalizedLifecycleSchedule(schedule);
  std::vector<size_t> thresholds;
  thresholds.reserve(steps.size());
  for (const LifecycleStep& step : steps) {
    thresholds.push_back(ResizeStepIndex(step.at_op_fraction, measure_begin, trace.size()));
  }

  std::vector<RecoverySample> out;
  RecoverySample cur;
  auto cache =
      std::make_unique<policy::PreciseCache>(capacity, policy::PrecisePolicyKind::kLru);
  size_t next_step = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    while (next_step < thresholds.size() && i >= thresholds[next_step]) {
      cache = std::make_unique<policy::PreciseCache>(capacity,
                                                     policy::PrecisePolicyKind::kLru);
      next_step++;
    }
    const bool hit = cache->Access(trace[i].key);
    if (i >= measure_begin && window_ops > 0) {
      cur.gets++;
      cur.hits += hit ? 1 : 0;
      if (cur.gets >= window_ops) {
        out.push_back(cur);
        cur = RecoverySample{};
      }
    }
  }
  if (cur.gets > 0) {
    out.push_back(cur);
  }
  return out;
}

}  // namespace ditto::sim
