#include "workloads/synthetic_traces.h"

#include <algorithm>
#include <cassert>

#include "common/rand.h"

namespace ditto::workload {

Trace MakeStationaryZipf(uint64_t count, uint64_t num_keys, double theta, uint64_t seed,
                         uint64_t key_base) {
  Rng rng(seed);
  ScrambledZipfianGenerator zipf(num_keys, theta, seed);
  Trace trace;
  trace.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    trace.push_back(Request{Op::kGet, key_base + zipf.Next(rng)});
  }
  return trace;
}

Trace MakeShiftingHotSet(uint64_t count, uint64_t num_keys, uint64_t hot_keys,
                         uint64_t shift_every, uint64_t shift_keys, uint64_t seed,
                         uint64_t key_base) {
  assert(hot_keys > 0 && hot_keys <= num_keys);
  Rng rng(seed);
  Trace trace;
  trace.reserve(count);
  uint64_t window_start = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (shift_every > 0 && i > 0 && i % shift_every == 0) {
      window_start = (window_start + shift_keys) % num_keys;
    }
    // 90% of accesses hit the current hot window (skewed inside it), the
    // rest are uniform cold traffic.
    uint64_t key;
    if (rng.NextDouble() < 0.9) {
      // Mild skew within the window: prefer lower offsets.
      const uint64_t a = rng.NextBelow(hot_keys);
      const uint64_t b = rng.NextBelow(hot_keys);
      key = (window_start + std::min(a, b)) % num_keys;
    } else {
      key = rng.NextBelow(num_keys);
    }
    trace.push_back(Request{Op::kGet, key_base + key});
  }
  return trace;
}

Trace MakeLfuFriendly(uint64_t count, uint64_t num_keys, double theta, double noise_frac,
                      uint64_t seed, uint64_t key_base) {
  Rng rng(seed);
  ScrambledZipfianGenerator zipf(num_keys, theta, seed);
  Trace trace;
  trace.reserve(count);
  uint64_t noise_cursor = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (rng.NextDouble() < noise_frac) {
      // One-hit wonder: a fresh key that never repeats.
      trace.push_back(Request{Op::kGet, key_base + num_keys + noise_cursor++});
    } else {
      trace.push_back(Request{Op::kGet, key_base + zipf.Next(rng)});
    }
  }
  return trace;
}

Trace MakeZipfWithScans(uint64_t count, uint64_t num_keys, double theta, uint64_t scan_every,
                        uint64_t scan_len, uint64_t seed, uint64_t key_base) {
  Rng rng(seed);
  ScrambledZipfianGenerator zipf(num_keys, theta, seed);
  Trace trace;
  trace.reserve(count);
  uint64_t scan_cursor = 0;
  uint64_t i = 0;
  while (i < count) {
    if (scan_every > 0 && i > 0 && i % scan_every < scan_len) {
      // Sequential scan over never-repeating cold keys (the classic LRU
      // poison: each scanned key is touched exactly once).
      trace.push_back(Request{Op::kGet, key_base + num_keys + scan_cursor++});
      ++i;
      continue;
    }
    trace.push_back(Request{Op::kGet, key_base + zipf.Next(rng)});
    ++i;
  }
  return trace;
}

Trace MakeChangingWorkload(int phases, uint64_t phase_len, uint64_t num_keys, uint64_t seed) {
  Trace trace;
  trace.reserve(static_cast<size_t>(phases) * phase_len);
  for (int p = 0; p < phases; ++p) {
    Trace phase;
    if (p % 2 == 0) {
      // LFU-friendly phase: stable skewed core plus one-hit-wonder noise.
      phase = MakeLfuFriendly(phase_len, num_keys / 2, 0.99, 0.3,
                              seed + static_cast<uint64_t>(p));
    } else {
      // LRU-friendly phase: the hot window drifts quickly.
      phase = MakeShiftingHotSet(phase_len, num_keys, num_keys / 20,
                                 /*shift_every=*/phase_len / 40, /*shift_keys=*/num_keys / 50,
                                 seed + static_cast<uint64_t>(p));
    }
    trace.insert(trace.end(), phase.begin(), phase.end());
  }
  return trace;
}

namespace {

// Blends two traces request-by-request with the given probability of
// drawing from the first.
Trace Blend(const Trace& a, const Trace& b, double frac_a, uint64_t seed) {
  Rng rng(seed);
  Trace out;
  out.reserve(a.size() + b.size());
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.size() || ib < b.size()) {
    const bool from_a = ib >= b.size() || (ia < a.size() && rng.NextDouble() < frac_a);
    if (from_a) {
      out.push_back(a[ia++]);
    } else {
      out.push_back(b[ib++]);
    }
  }
  return out;
}

}  // namespace

Trace MakeNamedTrace(const std::string& name, uint64_t count, uint64_t footprint,
                     uint64_t seed) {
  if (name == "webmail") {
    // FIU webmail-like block I/O: a strong daily working set that drifts,
    // with a persistent skewed core. Mildly LRU-leaning; the best algorithm
    // flips with cache size (paper Figure 4).
    const Trace drift = MakeShiftingHotSet(count / 2, footprint, footprint / 8, count / 64,
                                           footprint / 24, seed);
    const Trace core = MakeStationaryZipf(count - count / 2, footprint / 2, 0.9, seed + 1);
    return Blend(drift, core, 0.5, seed + 2);
  }
  if (name == "twitter-transient") {
    // Transient caching cluster: recency-dominated, fast-moving content.
    return MakeShiftingHotSet(count, footprint, footprint / 12, count / 128, footprint / 32,
                              seed);
  }
  if (name == "twitter-storage") {
    // Storage cluster: stable skewed popularity with a long one-hit-wonder
    // tail -> LFU-friendly.
    return MakeLfuFriendly(count, footprint / 2, 0.99, 0.3, seed);
  }
  if (name == "twitter-compute") {
    // Compute cluster: skewed traffic with periodic scan-like batch jobs.
    return MakeZipfWithScans(count, footprint / 2, 1.0, count / 16, footprint / 8, seed);
  }
  if (name == "ibm") {
    // Object store: heavy skew plus a large one-hit-wonder tail.
    return MakeLfuFriendly(count, footprint / 3, 0.95, 0.25, seed);
  }
  if (name == "cloudphysics") {
    // VM block I/O: looping scans over VM images plus skewed metadata.
    const Trace loops = MakeZipfWithScans(count / 2, footprint / 3, 0.8, count / 24,
                                          footprint / 6, seed);
    const Trace drift = MakeShiftingHotSet(count - count / 2, footprint, footprint / 10,
                                           count / 96, footprint / 40, seed + 5);
    return Blend(loops, drift, 0.5, seed + 6);
  }
  assert(false && "unknown trace family");
  return {};
}

const std::vector<std::string>& NamedTraceFamilies() {
  static const std::vector<std::string> kFamilies = {
      "webmail", "twitter-transient", "twitter-storage", "twitter-compute", "ibm",
      "cloudphysics"};
  return kFamilies;
}

Trace MakeSuiteWorkload(int index, uint64_t count, uint64_t footprint, uint64_t seed) {
  // Deterministic parameter sweep: theta, drift cadence and blend fraction
  // vary with the index, yielding workloads across the LRU<->LFU spectrum.
  const uint64_t s = seed + static_cast<uint64_t>(index) * 97;
  const double theta = 0.7 + 0.03 * static_cast<double>(index % 9);
  const double noise_frac = 0.1 + 0.05 * static_cast<double>(index % 5);
  const double frac_stationary = static_cast<double>(index % 11) / 10.0;
  const uint64_t shift_every = count / (8 + static_cast<uint64_t>(index % 13) * 8);
  // Component sizes follow the mix fraction so extreme indices yield pure
  // LFU-friendly or pure LRU-friendly workloads.
  const uint64_t n_stationary = static_cast<uint64_t>(frac_stationary * static_cast<double>(count));
  const Trace stationary = MakeLfuFriendly(n_stationary, footprint / 2, theta, noise_frac, s);
  const Trace drift = MakeShiftingHotSet(count - n_stationary, footprint,
                                         footprint / (4 + index % 7), shift_every,
                                         footprint / (16 + index % 9), s + 1);
  return Blend(stationary, drift, frac_stationary, s + 2);
}

}  // namespace ditto::workload
