#include "workloads/trace_file.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace ditto::workload {
namespace {

// Splits a line on commas (no quoting; trace formats are plain).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

// Maps an op string (either format) to a request op. Returns false for ops
// that do not touch the cache the way our replay models (e.g. incr/decr).
bool OpFor(std::string op, Op* out) {
  for (char& c : op) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (op == "get" || op == "gets" || op == "read") {
    *out = Op::kGet;
    return true;
  }
  if (op == "set" || op == "update" || op == "write" || op == "replace" || op == "cas" ||
      op == "append" || op == "prepend") {
    *out = Op::kUpdate;
    return true;
  }
  if (op == "insert" || op == "add") {
    *out = Op::kInsert;
    return true;
  }
  if (op == "delete" || op == "del") {
    *out = Op::kDelete;
    return true;
  }
  if (op == "expire" || op == "touch") {
    *out = Op::kExpire;
    return true;
  }
  if (op == "mget" || op == "multiget") {
    *out = Op::kMultiGet;
    return true;
  }
  return false;  // incr / decr / unknown: skipped
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kGet:
      return "GET";
    case Op::kUpdate:
      return "UPDATE";
    case Op::kInsert:
      return "INSERT";
    case Op::kDelete:
      return "DELETE";
    case Op::kExpire:
      return "EXPIRE";
    case Op::kMultiGet:
      return "MGET";
  }
  return "GET";
}

}  // namespace

Trace ParseTrace(std::istream& in, TraceFileStats* stats) {
  Trace trace;
  std::unordered_map<std::string, uint64_t> intern;
  TraceFileStats local;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    local.lines++;
    const std::vector<std::string> fields = SplitCsv(line);

    std::string key;
    Op op = Op::kGet;
    bool ok = true;
    if (fields.size() >= 7) {
      // Twitter cache-trace format: ts,key,key_size,value_size,client,op,ttl
      key = fields[1];
      ok = OpFor(fields[5], &op);
    } else if (fields.size() == 2) {
      key = fields[1];
      ok = OpFor(fields[0], &op);
    } else if (fields.size() == 1) {
      key = fields[0];
      op = Op::kGet;
    } else {
      ok = false;
    }
    if (!ok || key.empty()) {
      local.skipped++;
      continue;
    }
    const auto [it, inserted] = intern.try_emplace(key, intern.size());
    trace.push_back(Request{op, it->second});
    local.parsed++;
  }
  local.distinct_keys = intern.size();
  if (stats != nullptr) {
    *stats = local;
  }
  return trace;
}

Trace LoadTraceFile(const std::string& path, TraceFileStats* stats) {
  std::ifstream in(path);
  if (!in.is_open()) {
    if (stats != nullptr) {
      *stats = TraceFileStats{};
    }
    return {};
  }
  return ParseTrace(in, stats);
}

void WriteTraceFile(const Trace& trace, std::ostream& out) {
  for (const Request& r : trace) {
    out << OpName(r.op) << ',' << r.key << '\n';
  }
}

}  // namespace ditto::workload
