// Workload traces: a trace is a sequence of requests over an integer key
// space. Generators produce traces with controlled algorithm affinity
// (LRU-friendly, LFU-friendly, phase-switching) standing in for the paper's
// real-world trace families (see DESIGN.md §1 for the substitution).
//
// Requests carry a typed op kind. Beyond the classic kGet/kUpdate/kInsert,
// traces can carry kDelete, kExpire (arm a TTL), and kMultiGet (a lookup the
// replay engines may fuse with adjacent kMultiGets of the same shard into one
// pipelined multi-key request). ApplyOpMix rewrites a deterministic fraction
// of a trace's Gets into these kinds.
#ifndef DITTO_WORKLOADS_TRACE_H_
#define DITTO_WORKLOADS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ditto::workload {

enum class Op : uint8_t { kGet, kUpdate, kInsert, kDelete, kExpire, kMultiGet };

struct Request {
  Op op;
  uint64_t key;
};

using Trace = std::vector<Request>;

// Number of distinct keys referenced by a trace (its footprint).
uint64_t Footprint(const Trace& trace);

// Renders an integer key as the cache key string ("k%016x" zero-padded so
// all keys have equal length).
std::string KeyString(uint64_t key);

// Allocation-free variant for replay hot paths: renders the same 17-byte key
// into caller-owned storage and returns a view aliasing *buf (valid until the
// next FormatKey into the same buffer). KeyString(k) == FormatKey(k, &buf)
// for every key.
struct KeyBuf {
  char data[18];
};
std::string_view FormatKey(uint64_t key, KeyBuf* buf);

// A deterministic op-kind mix applied over a trace's Gets. Fractions are
// cumulative-checked in the order delete, expire, multiget; their sum should
// stay <= 1. Only kGet requests are rewritten, so write ratios of YCSB-style
// traces are preserved.
struct OpMix {
  double delete_fraction = 0.0;
  double expire_fraction = 0.0;
  double multiget_fraction = 0.0;
  uint64_t seed = 0x6f706d6978ULL;  // "opmix"

  bool Active() const {
    return delete_fraction > 0.0 || expire_fraction > 0.0 || multiget_fraction > 0.0;
  }
};

// The op kind request `index` of a trace replays under `mix`: a pure function
// of (base op, index, mix), so every replay engine — sharded or interleaved,
// any thread count — sees the identical op stream.
Op MixedOpAt(Op base, uint64_t index, const OpMix& mix);

// Materializes MixedOpAt over a whole trace.
void ApplyOpMix(Trace* trace, const OpMix& mix);

// Deterministically interleaves per-client subsequences of `trace` the way
// `num_clients` concurrent clients replaying disjoint shards would: client i
// replays requests i, i+n, i+2n... and the interleaving round-robins with a
// per-client skew so the merged order differs from the original (this is the
// concurrency effect studied in Figures 5a/5b).
Trace InterleaveClients(const Trace& trace, int num_clients, uint64_t seed = 7);

}  // namespace ditto::workload

#endif  // DITTO_WORKLOADS_TRACE_H_
