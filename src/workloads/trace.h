// Workload traces: a trace is a sequence of requests over an integer key
// space. Generators produce traces with controlled algorithm affinity
// (LRU-friendly, LFU-friendly, phase-switching) standing in for the paper's
// real-world trace families (see DESIGN.md §1 for the substitution).
#ifndef DITTO_WORKLOADS_TRACE_H_
#define DITTO_WORKLOADS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ditto::workload {

enum class Op : uint8_t { kGet, kUpdate, kInsert };

struct Request {
  Op op;
  uint64_t key;
};

using Trace = std::vector<Request>;

// Number of distinct keys referenced by a trace (its footprint).
uint64_t Footprint(const Trace& trace);

// Renders an integer key as the cache key string ("k%016x" zero-padded so
// all keys have equal length).
std::string KeyString(uint64_t key);

// Deterministically interleaves per-client subsequences of `trace` the way
// `num_clients` concurrent clients replaying disjoint shards would: client i
// replays requests i, i+n, i+2n... and the interleaving round-robins with a
// per-client skew so the merged order differs from the original (this is the
// concurrency effect studied in Figures 5a/5b).
Trace InterleaveClients(const Trace& trace, int num_clients, uint64_t seed = 7);

}  // namespace ditto::workload

#endif  // DITTO_WORKLOADS_TRACE_H_
