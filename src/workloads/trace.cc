#include "workloads/trace.h"

#include <cstdio>
#include <unordered_set>

#include "common/hash.h"
#include "common/rand.h"

namespace ditto::workload {

uint64_t Footprint(const Trace& trace) {
  std::unordered_set<uint64_t> keys;
  keys.reserve(trace.size() / 4);
  for (const Request& r : trace) {
    keys.insert(r.key);
  }
  return keys.size();
}

std::string KeyString(uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "k%016llx", static_cast<unsigned long long>(key));
  return buf;
}

std::string_view FormatKey(uint64_t key, KeyBuf* buf) {
  static constexpr char kHexDigits[] = "0123456789abcdef";
  buf->data[0] = 'k';
  for (int i = 0; i < 16; ++i) {
    buf->data[1 + i] = kHexDigits[(key >> (60 - 4 * i)) & 0xF];
  }
  return std::string_view(buf->data, 17);
}

Op MixedOpAt(Op base, uint64_t index, const OpMix& mix) {
  if (base != Op::kGet || !mix.Active()) {
    return base;
  }
  // A pure hash of (index, seed) in [0, 1): independent of thread count and
  // replay order.
  const double u = static_cast<double>(Mix64(index ^ (mix.seed * 0x9e3779b97f4a7c15ULL))) /
                   static_cast<double>(UINT64_MAX);
  if (u < mix.delete_fraction) {
    return Op::kDelete;
  }
  if (u < mix.delete_fraction + mix.expire_fraction) {
    return Op::kExpire;
  }
  if (u < mix.delete_fraction + mix.expire_fraction + mix.multiget_fraction) {
    return Op::kMultiGet;
  }
  return Op::kGet;
}

void ApplyOpMix(Trace* trace, const OpMix& mix) {
  for (uint64_t i = 0; i < trace->size(); ++i) {
    (*trace)[i].op = MixedOpAt((*trace)[i].op, i, mix);
  }
}

Trace InterleaveClients(const Trace& trace, int num_clients, uint64_t seed) {
  if (num_clients <= 1) {
    return trace;
  }
  // Strided shards: client i replays requests i, i+n, i+2n, ...
  std::vector<size_t> cursor(num_clients);
  for (int i = 0; i < num_clients; ++i) {
    cursor[i] = static_cast<size_t>(i);
  }
  Trace out;
  out.reserve(trace.size());
  Rng rng(seed);
  std::vector<int> live;
  live.reserve(num_clients);
  for (int i = 0; i < num_clients; ++i) {
    if (cursor[i] < trace.size()) {
      live.push_back(i);
    }
  }
  // Clients proceed in random bursts, modelling unsynchronized concurrent
  // replay of the shards.
  while (!live.empty()) {
    const size_t pick = rng.NextBelow(live.size());
    const int c = live[pick];
    const uint64_t burst = 1 + rng.NextBelow(8);
    for (uint64_t b = 0; b < burst && cursor[c] < trace.size(); ++b) {
      out.push_back(trace[cursor[c]]);
      cursor[c] += static_cast<size_t>(num_clients);
    }
    if (cursor[c] >= trace.size()) {
      live[pick] = live.back();
      live.pop_back();
    }
  }
  return out;
}

}  // namespace ditto::workload
