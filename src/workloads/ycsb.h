// YCSB core workloads A-D over a Zipfian (theta = 0.99) key popularity
// distribution, matching the paper's synthetic benchmark setup: 10M keys,
// 256-byte key-value pairs.
#ifndef DITTO_WORKLOADS_YCSB_H_
#define DITTO_WORKLOADS_YCSB_H_

#include <cstdint>
#include <string>

#include "common/rand.h"
#include "workloads/trace.h"

namespace ditto::workload {

struct YcsbConfig {
  char workload = 'C';            // 'A' 50/50 GET/UPDATE, 'B' 95/5, 'C' 100 GET,
                                  // 'D' 95 GET / 5 INSERT with latest distribution
  uint64_t num_keys = 10'000'000;
  double zipf_theta = 0.99;
  size_t value_bytes = 232;       // 256-B KV pair: 17-B key + header + value
};

class YcsbGenerator {
 public:
  YcsbGenerator(const YcsbConfig& config, uint64_t seed);

  Request Next();

  const YcsbConfig& config() const { return config_; }
  uint64_t inserted_keys() const { return inserted_; }

 private:
  uint64_t NextKey();

  YcsbConfig config_;
  Rng rng_;
  ScrambledZipfianGenerator zipf_;
  ZipfianGenerator latest_zipf_;  // for workload D: skewed toward recent inserts
  uint64_t inserted_ = 0;
  double update_fraction_;
  bool insert_mode_ = false;      // D inserts instead of updates
};

// Materializes `count` requests (benches replay materialized traces so that
// every system under comparison sees the identical request sequence).
Trace MakeYcsbTrace(const YcsbConfig& config, uint64_t count, uint64_t seed);

}  // namespace ditto::workload

#endif  // DITTO_WORKLOADS_YCSB_H_
