#include "workloads/ycsb.h"

#include <cassert>

namespace ditto::workload {

YcsbGenerator::YcsbGenerator(const YcsbConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      zipf_(config.num_keys, config.zipf_theta, seed),
      latest_zipf_(config.num_keys, config.zipf_theta, seed) {
  switch (config.workload) {
    case 'A':
      update_fraction_ = 0.5;
      break;
    case 'B':
      update_fraction_ = 0.05;
      break;
    case 'C':
      update_fraction_ = 0.0;
      break;
    case 'D':
      update_fraction_ = 0.05;
      insert_mode_ = true;
      break;
    default:
      assert(false && "unknown YCSB workload");
      update_fraction_ = 0.0;
  }
}

uint64_t YcsbGenerator::NextKey() {
  if (insert_mode_) {
    // Workload D reads the "latest" distribution: rank 0 is the most
    // recently inserted key.
    const uint64_t total = config_.num_keys + inserted_;
    const uint64_t back = latest_zipf_.Next(rng_);
    return total - 1 - (back % total);
  }
  return zipf_.Next(rng_);
}

Request YcsbGenerator::Next() {
  const double roll = rng_.NextDouble();
  if (roll < update_fraction_) {
    if (insert_mode_) {
      const uint64_t key = config_.num_keys + inserted_;
      inserted_++;
      return Request{Op::kInsert, key};
    }
    return Request{Op::kUpdate, NextKey()};
  }
  return Request{Op::kGet, NextKey()};
}

Trace MakeYcsbTrace(const YcsbConfig& config, uint64_t count, uint64_t seed) {
  YcsbGenerator gen(config, seed);
  Trace trace;
  trace.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    trace.push_back(gen.Next());
  }
  return trace;
}

}  // namespace ditto::workload
