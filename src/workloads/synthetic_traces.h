// Synthetic trace generators standing in for the paper's real-world trace
// families (FIU webmail, Twitter transient/storage/compute, IBM ObjectStore,
// CloudPhysics). Each generator is constructed to exhibit the caching-
// algorithm affinity the corresponding family shows in the paper:
//
//   * Stationary Zipf popularity         -> LFU-friendly (stable hot set)
//   * Shifting working set               -> LRU-friendly (recency wins)
//   * Sequential scans / loops           -> poisons LRU, favors LFU/LIRS
//   * Phase mixtures                     -> best algorithm changes over time
//
// The generators are deterministic given (parameters, seed). Tests verify
// the intended affinity by measuring exact-LRU vs exact-LFU hit rates.
#ifndef DITTO_WORKLOADS_SYNTHETIC_TRACES_H_
#define DITTO_WORKLOADS_SYNTHETIC_TRACES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/trace.h"

namespace ditto::workload {

// Stationary Zipf over [key_base, key_base+num_keys). On its own LRU and LFU
// perform nearly identically here; combine with one-hit-wonder noise (below)
// for a decisively LFU-friendly pattern.
Trace MakeStationaryZipf(uint64_t count, uint64_t num_keys, double theta, uint64_t seed,
                         uint64_t key_base = 0);

// LFU-friendly: stationary Zipf core mixed with `noise_frac` one-hit-wonder
// traffic (fresh keys that never repeat). LRU wastes capacity caching the
// noise; LFU's frequency signal keeps the hot core resident.
Trace MakeLfuFriendly(uint64_t count, uint64_t num_keys, double theta, double noise_frac,
                      uint64_t seed, uint64_t key_base = 0);

// Hot working set of `hot_keys` keys that drifts by `shift_keys` every
// `shift_every` requests: LRU-friendly (frequency information goes stale).
Trace MakeShiftingHotSet(uint64_t count, uint64_t num_keys, uint64_t hot_keys,
                         uint64_t shift_every, uint64_t shift_keys, uint64_t seed,
                         uint64_t key_base = 0);

// Zipf traffic interrupted by full sequential scans of `scan_len` cold keys
// every `scan_every` requests: scans flush LRU but not LFU.
Trace MakeZipfWithScans(uint64_t count, uint64_t num_keys, double theta, uint64_t scan_every,
                        uint64_t scan_len, uint64_t seed, uint64_t key_base = 0);

// The LeCaR-style changing workload (paper Figure 19): `phases` alternating
// LRU-friendly and LFU-friendly segments of `phase_len` requests each.
Trace MakeChangingWorkload(int phases, uint64_t phase_len, uint64_t num_keys, uint64_t seed);

// Named trace families used throughout the evaluation benches. Valid names:
// webmail, twitter-transient, twitter-storage, twitter-compute, ibm,
// cloudphysics. `count` requests over roughly `footprint` distinct keys.
Trace MakeNamedTrace(const std::string& name, uint64_t count, uint64_t footprint,
                     uint64_t seed);

const std::vector<std::string>& NamedTraceFamilies();

// A parameterized suite of `count` distinct workloads (mix fractions, theta,
// shift cadence vary per index) used by the 74-workload and 33-workload
// studies (Figures 5 and 18).
Trace MakeSuiteWorkload(int index, uint64_t count, uint64_t footprint, uint64_t seed);

}  // namespace ditto::workload

#endif  // DITTO_WORKLOADS_SYNTHETIC_TRACES_H_
