// Loading workload traces from disk, for users who have access to real
// key-value traces (the paper's FIU/Twitter/IBM/CloudPhysics inputs are not
// redistributable, but their published formats are supported here).
//
// Two formats are auto-detected per line:
//   simple  : "<op>,<key>"   with op in {GET, SET, UPDATE, INSERT, DEL*}
//             or a bare "<key>" (treated as GET)
//   twitter : "<timestamp>,<key>,<key_size>,<value_size>,<client_id>,<op>,<ttl>"
//             (the open-sourced Twitter cache-trace format; op strings like
//             get/gets/set/add/replace/cas/append/prepend/delete/incr/decr)
//
// Keys are arbitrary strings and are interned to dense uint64 ids.
#ifndef DITTO_WORKLOADS_TRACE_FILE_H_
#define DITTO_WORKLOADS_TRACE_FILE_H_

#include <iosfwd>
#include <string>

#include "workloads/trace.h"

namespace ditto::workload {

struct TraceFileStats {
  uint64_t lines = 0;
  uint64_t parsed = 0;
  uint64_t skipped = 0;  // malformed or unsupported ops
  uint64_t distinct_keys = 0;
};

// Parses a trace from a stream. Returns the trace; fills *stats if non-null.
Trace ParseTrace(std::istream& in, TraceFileStats* stats = nullptr);

// Loads a trace file from disk. Returns an empty trace (and stats with
// lines == 0) if the file cannot be opened.
Trace LoadTraceFile(const std::string& path, TraceFileStats* stats = nullptr);

// Writes a trace in the simple "<op>,<key>" format (round-trip testing and
// exporting synthetic traces for other tools).
void WriteTraceFile(const Trace& trace, std::ostream& out);

}  // namespace ditto::workload

#endif  // DITTO_WORKLOADS_TRACE_FILE_H_
