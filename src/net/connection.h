// net::Connection: the per-socket protocol state machine of the front end.
//
// A connection owns its fd, an input ring the reactor reads socket bytes
// into, an output ring replies are staged in, and a RespParser. Each
// readable event runs one *batch*: every complete pipelined command is
// parsed out of the input ring first (acquiring a slot per cache op from
// the server's global in-flight budget — commands past the watermark are
// marked shed and answered `-LOADSHED` instead of executing), then the
// admitted commands execute in order against the reactor's CacheClient
// through the typed CacheOp protocol, and the replies are formatted into
// the output ring in command order. Argument views alias the input ring for
// the whole batch (see ring_buffer.h), so the hot path allocates nothing at
// steady state.
//
// Command -> CacheOp mapping (RESP2 subset):
//   GET k            -> kGet        -> $value | $-1
//   SET k v [EX t]   -> kSet(ttl=t) -> +OK | -OOM (kDropped)
//
// Any command whose cache op comes back kUnavailable (a cluster deployment's
// backing node crashed, or the op exhausted its retries) answers
// `-UNAVAILABLE <detail>` instead of its normal reply: a silent nil would
// read as "key absent" and poison negative caches. Multi-key commands
// (DEL/MGET) answer -UNAVAILABLE when ANY of their keys was unrouteable.
//   DEL k [k...]     -> kDelete xN  -> :deleted_count
//   EXPIRE k t       -> kExpire     -> :1 | :0
//   MGET k [k...]    -> kMultiGet run (doorbell-fused by the client) -> array
//   TTL k            -> kGet probe  -> :-1 (cached; ticks not readable) | :-2
//   PING [msg]       -> no op       -> +PONG | $msg
//   INFO             -> no op       -> $<stats text>
//   QUIT             -> no op       -> +OK, then close after flush
//
// Backpressure: when the output ring exceeds the per-connection pending-byte
// cap the reactor stops polling the connection for input until the peer
// drains below half the cap; a protocol error is answered with a RESP error
// and the connection closes after the flush.
#ifndef DITTO_NET_CONNECTION_H_
#define DITTO_NET_CONNECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/resp.h"
#include "net/ring_buffer.h"
#include "sim/cache_op.h"
#include "sim/client_iface.h"

namespace ditto::net {

// Services a Connection needs from its reactor/server. Implemented by the
// server's reactor; a test can implement it directly to drive a Connection
// without sockets.
class ConnectionHost {
 public:
  virtual ~ConnectionHost() = default;
  // Reserves `n` cache-op slots from the global in-flight budget. A false
  // return sheds the command.
  virtual bool AcquireOps(size_t n) = 0;
  virtual void ReleaseOps(size_t n) = 0;
  // The cache client this connection's ops execute on (one per reactor).
  virtual sim::CacheClient* client() = 0;
  // Fills `out` with the INFO payload.
  virtual void FormatInfo(std::string* out) = 0;
  // Command/op/shed accounting (server-wide stats).
  virtual void OnCommands(uint64_t commands, uint64_t ops, uint64_t shed_ops) = 0;
  virtual const RespLimits& limits() = 0;
};

class Connection {
 public:
  Connection(int fd, ConnectionHost* host) : fd_(fd), host_(host), parser_(host->limits()) {}

  int fd() const { return fd_; }
  RingBuffer& in() { return in_; }
  RingBuffer& out() { return out_; }

  // Parses and executes every complete command currently in the input ring,
  // staging replies in the output ring. Returns false when the connection
  // must close (QUIT, protocol error) once the output flushes.
  bool ProcessInput();

  // True once the peer asked to QUIT or a protocol error was answered: the
  // reactor flushes the output ring and then closes.
  bool closing() const { return closing_; }

 private:
  // One parsed-but-not-yet-executed command of the current batch. Argument
  // views alias the input ring and stay valid for the whole batch.
  struct PendingCmd {
    size_t args_begin = 0;  // range into batch_args_
    size_t args_end = 0;
    bool shed = false;
  };

  bool ExecuteCommand(const std::string_view* args, size_t argc);
  void ExecuteOps();
  // Appends `-ERR wrong number of arguments for '<verb>' command`.
  void WrongArity(std::string_view verb);
  // True when any result of the last ExecuteOps came back kUnavailable; the
  // caller answers `-UNAVAILABLE` for the whole command.
  bool AnyUnavailable() const;
  // Appends `-UNAVAILABLE '<verb>' aborted: ...`.
  void Unavailable(std::string_view verb);

  int fd_;
  ConnectionHost* host_;
  RespParser parser_;
  RingBuffer in_;
  RingBuffer out_;
  bool closing_ = false;

  // Batch scratch, reused across readable events (no steady-state allocs).
  RespCommand cmd_;
  std::vector<std::string_view> batch_args_;
  std::vector<PendingCmd> batch_;
  std::vector<sim::CacheOp> ops_;
  std::vector<sim::CacheResult> results_;
  std::string info_;
  uint64_t batch_ops_acquired_ = 0;
};

}  // namespace ditto::net

#endif  // DITTO_NET_CONNECTION_H_
