#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/connection.h"
#include "net/net_util.h"

namespace ditto::net {

namespace {

constexpr size_t kReadChunk = 16 << 10;

// Creates a nonblocking listener on host:port with SO_REUSEPORT (every
// reactor binds its own socket to the same port; the kernel load-balances
// accepts across them). Returns -1 with *error filled on failure.
int CreateListener(const std::string& host, uint16_t port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + net::ErrnoMessage(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    *error = std::string("setsockopt(SO_REUSEPORT): ") + net::ErrnoMessage(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid listen host '" + host + "'";
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind: ") + net::ErrnoMessage(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 511) != 0) {
    *error = std::string("listen: ") + net::ErrnoMessage(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

}  // namespace

// One event-loop thread: its own SO_REUSEPORT acceptor, epoll instance, and
// CacheClient. Implements ConnectionHost for the connections it owns; every
// shared-counter touch goes through the server's atomics.
class Server::Reactor : public ConnectionHost {
 public:
  Reactor(Server* server, sim::CacheClient* client, int index)
      : server_(server), client_(client), index_(index) {}

  ~Reactor() override { CloseFds(); }

  bool Init(uint16_t port, std::string* error) {
    listen_fd_ = CreateListener(server_->options_.host, port, error);
    if (listen_fd_ < 0) {
      return false;
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epoll_fd_ < 0 || wake_fd_ < 0) {
      *error = std::string("epoll/eventfd: ") + net::ErrnoMessage(errno);
      CloseFds();
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
    return true;
  }

  uint16_t bound_port() const { return BoundPort(listen_fd_); }

  void StartThread() {
    thread_ = std::thread([this] { Loop(); });
  }

  void Shutdown() {
    running_.store(false, std::memory_order_release);
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  // --- ConnectionHost -----------------------------------------------------
  bool AcquireOps(size_t n) override { return server_->AcquireOps(n); }
  void ReleaseOps(size_t n) override { server_->ReleaseOps(n); }
  sim::CacheClient* client() override { return client_; }
  const RespLimits& limits() override { return server_->options_.limits; }

  void OnCommands(uint64_t commands, uint64_t ops, uint64_t shed_ops) override {
    server_->commands_.fetch_add(commands, std::memory_order_relaxed);
    server_->ops_.fetch_add(ops, std::memory_order_relaxed);
    server_->shed_ops_.fetch_add(shed_ops, std::memory_order_relaxed);
  }

  void FormatInfo(std::string* out) override {
    const ServerStats s = server_->stats();
    const sim::ClientCounters c = client_->counters();
    char buf[768];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "# server\r\nreactors:%d\r\nport:%u\r\nlive_conns:%llu\r\naccepted:%llu\r\n"
        "rejected_conns:%llu\r\ncommands:%llu\r\nops:%llu\r\nshed_ops:%llu\r\n"
        "# reactor%d cache client\r\ngets:%llu\r\nhits:%llu\r\nmisses:%llu\r\n"
        "sets:%llu\r\ndeletes:%llu\r\nevictions:%llu\r\nexpired:%llu\r\n",
        server_->reactors(), server_->port(),
        static_cast<unsigned long long>(s.live_conns),
        static_cast<unsigned long long>(s.accepted),
        static_cast<unsigned long long>(s.rejected_conns),
        static_cast<unsigned long long>(s.commands),
        static_cast<unsigned long long>(s.ops),
        static_cast<unsigned long long>(s.shed_ops), index_,
        static_cast<unsigned long long>(c.gets), static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses), static_cast<unsigned long long>(c.sets),
        static_cast<unsigned long long>(c.deletes),
        static_cast<unsigned long long>(c.evictions),
        static_cast<unsigned long long>(c.expired));
    out->assign(buf, static_cast<size_t>(n));
  }

 private:
  // Reactor-level per-connection state: the protocol machine plus the epoll
  // interest set currently installed for it.
  struct Entry {
    std::unique_ptr<Connection> conn;
    uint32_t events = EPOLLIN;
    bool paused = false;  // input paused: output ring over max_pending_bytes
  };

  void Loop() {
    epoll_event events[128];
    while (running_.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epoll_fd_, events, 128, -1);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_fd_) {
          uint64_t drain;
          [[maybe_unused]] const ssize_t r = ::read(wake_fd_, &drain, sizeof(drain));
          continue;
        }
        if (fd == listen_fd_) {
          HandleAccept();
          continue;
        }
        const auto it = conns_.find(fd);
        if (it == conns_.end()) {
          continue;  // closed earlier in this batch
        }
        HandleConnEvent(&it->second, events[i].events);
      }
    }
    // Thread-exit cleanup: every connection closes here, on the thread that
    // owned it, before Shutdown()'s join returns.
    for (auto& [fd, entry] : conns_) {
      (void)entry;
      ::close(fd);
      server_->live_conns_.fetch_sub(1, std::memory_order_relaxed);
    }
    conns_.clear();
  }

  void HandleAccept() {
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        return;  // EAGAIN or transient error: the loop re-polls
      }
      // Connection cap: admit-or-reject is decided with one atomic bump so
      // racing reactors never over-admit.
      const uint64_t live = server_->live_conns_.fetch_add(1, std::memory_order_relaxed);
      if (live >= server_->options_.max_conns) {
        server_->live_conns_.fetch_sub(1, std::memory_order_relaxed);
        server_->rejected_conns_.fetch_add(1, std::memory_order_relaxed);
        static constexpr char kReject[] = "-ERR max connections reached\r\n";
        [[maybe_unused]] const ssize_t n = ::write(fd, kReject, sizeof(kReject) - 1);
        ::close(fd);
        continue;
      }
      server_->accepted_.fetch_add(1, std::memory_order_relaxed);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Entry entry;
      entry.conn = std::make_unique<Connection>(fd, this);
      epoll_event ev{};
      ev.events = entry.events;
      ev.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
      conns_.emplace(fd, std::move(entry));
    }
  }

  void HandleConnEvent(Entry* entry, uint32_t revents) {
    Connection* conn = entry->conn.get();
    if ((revents & (EPOLLHUP | EPOLLERR)) != 0) {
      CloseConn(conn->fd());
      return;
    }
    if ((revents & EPOLLIN) != 0) {
      if (!ReadInput(conn)) {
        CloseConn(conn->fd());
        return;
      }
      conn->ProcessInput();
    }
    FlushOutput(conn);
    if (conn->closing() && conn->out().empty()) {
      CloseConn(conn->fd());
      return;
    }
    UpdateInterest(entry);
  }

  // Drains the socket into the connection's input ring. False = peer gone.
  static bool ReadInput(Connection* conn) {
    while (true) {
      char* dst = conn->in().Reserve(kReadChunk);
      const ssize_t n = ::read(conn->fd(), dst, kReadChunk);
      if (n > 0) {
        conn->in().Commit(static_cast<size_t>(n));
        if (static_cast<size_t>(n) < kReadChunk) {
          return true;  // drained
        }
        continue;
      }
      if (n == 0) {
        return false;  // orderly peer close
      }
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
  }

  void FlushOutput(Connection* conn) {
    RingBuffer& out = conn->out();
    while (!out.empty()) {
      const ssize_t n = ::write(conn->fd(), out.data(), out.size());
      if (n > 0) {
        out.Consume(static_cast<size_t>(n));
        continue;
      }
      return;  // EAGAIN (or a real error — EPOLLOUT/EPOLLERR will follow)
    }
  }

  // Installs the interest set the connection's buffers call for: EPOLLOUT
  // while replies are queued; EPOLLIN unless the output ring is over the
  // pending-byte cap (with half-cap hysteresis, so a slow reader flips the
  // input gate at most once per cap's worth of replies).
  void UpdateInterest(Entry* entry) {
    Connection* conn = entry->conn.get();
    const size_t pending = conn->out().size();
    const size_t cap = server_->options_.max_pending_bytes;
    if (entry->paused) {
      entry->paused = pending >= cap / 2;
    } else {
      entry->paused = pending >= cap;
    }
    uint32_t want = entry->paused || conn->closing() ? 0 : static_cast<uint32_t>(EPOLLIN);
    if (pending > 0) {
      want |= EPOLLOUT;
    }
    if (want != entry->events) {
      entry->events = want;
      epoll_event ev{};
      ev.events = want;
      ev.data.fd = conn->fd();
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev);
    }
  }

  void CloseConn(int fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(fd);
    server_->live_conns_.fetch_sub(1, std::memory_order_relaxed);
  }

  void CloseFds() {
    for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
      if (*fd >= 0) {
        ::close(*fd);
        *fd = -1;
      }
    }
  }

  Server* server_;
  sim::CacheClient* client_;
  int index_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> running_{true};
  std::thread thread_;
  std::unordered_map<int, Entry> conns_;
};

Server::Server(std::vector<sim::CacheClient*> clients, const ServerOptions& options)
    : clients_(std::move(clients)), options_(options) {}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  if (started_) {
    *error = "server already started";
    return false;
  }
  if (clients_.empty()) {
    *error = "server needs at least one cache client (one per reactor)";
    return false;
  }
  for (size_t i = 0; i < clients_.size(); ++i) {
    auto reactor = std::make_unique<Reactor>(this, clients_[i], static_cast<int>(i));
    // Reactor 0 may bind an ephemeral port; every later reactor reuses the
    // port reactor 0 got.
    const uint16_t port = i == 0 ? options_.port : port_;
    if (!reactor->Init(port, error)) {
      reactors_.clear();
      return false;
    }
    if (i == 0) {
      port_ = reactor->bound_port();
    }
    reactors_.push_back(std::move(reactor));
  }
  for (auto& reactor : reactors_) {
    reactor->StartThread();
  }
  started_ = true;
  return true;
}

void Server::Stop() {
  if (!started_) {
    return;
  }
  for (auto& reactor : reactors_) {
    reactor->Shutdown();
  }
  reactors_.clear();
  // Reactor threads are joined: flushing the clients' buffered work is safe
  // and leaves their counters final for the caller to read.
  for (sim::CacheClient* client : clients_) {
    client->Finish();
  }
  started_ = false;
}

bool Server::AcquireOps(size_t n) {
  const uint64_t watermark = options_.shed_watermark;
  if (watermark == 0) {
    return true;
  }
  const uint64_t before = inflight_ops_.fetch_add(n, std::memory_order_relaxed);
  if (before + n > watermark) {
    inflight_ops_.fetch_sub(n, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void Server::ReleaseOps(size_t n) {
  if (options_.shed_watermark == 0 || n == 0) {
    return;
  }
  inflight_ops_.fetch_sub(n, std::memory_order_relaxed);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_conns = rejected_conns_.load(std::memory_order_relaxed);
  s.live_conns = live_conns_.load(std::memory_order_relaxed);
  s.commands = commands_.load(std::memory_order_relaxed);
  s.ops = ops_.load(std::memory_order_relaxed);
  s.shed_ops = shed_ops_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ditto::net
