// Incremental RESP2 protocol codec for the network front end.
//
// RespParser decodes client *commands* — multi-bulk frames
// (`*N\r\n$len\r\narg\r\n...`) and inline commands (`GET key\r\n`) — out of
// a connection's RingBuffer without per-request allocation: the parsed
// arguments are std::string_views aliasing the ring's storage, valid until
// the ring next compacts (see ring_buffer.h), and the argument vector's
// capacity is reused across commands. A parse that needs more bytes leaves
// the ring untouched; a successful parse consumes exactly the frame's
// bytes; a protocol violation (bad prefix, non-numeric or oversized length,
// too many arguments, overlong inline line) yields kError with a message
// the connection answers as a RESP error before closing — malformed input
// is never fatal to the server.
//
// ParseReply decodes one *reply* (simple string, error, integer, bulk, nil,
// or one level of array) for the load generator and example clients.
#ifndef DITTO_NET_RESP_H_
#define DITTO_NET_RESP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "net/ring_buffer.h"

namespace ditto::net {

enum class ParseStatus : uint8_t {
  kOk,        // one complete frame parsed and consumed
  kNeedMore,  // partial frame; feed more bytes and retry
  kError,     // protocol violation; see RespParser::error()
};

struct RespLimits {
  size_t max_args = 1024;              // elements per multi-bulk command
  size_t max_bulk_bytes = 4 << 20;     // declared length of one bulk string
  size_t max_inline_bytes = 64 << 10;  // inline command line length
};

// One decoded command: args[0] is the verb. Views alias the source ring.
struct RespCommand {
  std::vector<std::string_view> args;
};

class RespParser {
 public:
  explicit RespParser(const RespLimits& limits = RespLimits()) : limits_(limits) {}

  // Parses one command from the front of `rb`. On kOk the frame's bytes are
  // consumed and cmd->args alias rb's storage (valid until rb->Reserve()).
  ParseStatus Parse(RingBuffer* rb, RespCommand* cmd);

  // Human-readable description of the last kError.
  const std::string& error() const { return error_; }

 private:
  ParseStatus ParseOne(RingBuffer* rb, RespCommand* cmd);

  RespLimits limits_;
  std::string error_;
};

// One decoded server reply. For kArray, `count` holds the element count and
// the elements are appended to the caller's `elems` vector (one level of
// nesting — enough for MGET). Views alias the source ring.
struct RespReply {
  enum class Type : uint8_t { kSimple, kError, kInteger, kBulk, kNil, kArray };
  Type type = Type::kNil;
  std::string_view text;  // kSimple / kError / kBulk payload
  int64_t integer = 0;    // kInteger value
  size_t count = 0;       // kArray element count
};

// RespReply is copied by value into the caller's elems vector on every array
// reply (MGET fan-out); keep it a flat POD so that copy stays a memcpy.
static_assert(std::is_trivially_copyable_v<RespReply>,
              "RespReply is bulk-copied on the reply path; it must stay trivially copyable");
static_assert(sizeof(RespReply) == 40, "RespReply grew; check the reply-path copy cost");

// Parses one top-level reply from `rb`, consuming it on kOk. Array elements
// (bulk/nil/integer only) are appended to `elems` when non-null; a nested
// array inside an array is a kError.
ParseStatus ParseReply(RingBuffer* rb, RespReply* reply, std::vector<RespReply>* elems,
                       std::string* error);

// Reply/command formatting helpers shared by the server and the clients.
void AppendSimple(RingBuffer* out, std::string_view s);   // +s\r\n
void AppendError(RingBuffer* out, std::string_view msg);  // -msg\r\n
void AppendInteger(RingBuffer* out, int64_t v);           // :v\r\n
void AppendBulk(RingBuffer* out, std::string_view s);     // $len\r\ns\r\n
void AppendNil(RingBuffer* out);                          // $-1\r\n
void AppendArrayHeader(RingBuffer* out, size_t n);        // *n\r\n
// Formats a full multi-bulk command (the canonical client encoding).
void AppendCommand(RingBuffer* out, std::initializer_list<std::string_view> args);

}  // namespace ditto::net

#endif  // DITTO_NET_RESP_H_
