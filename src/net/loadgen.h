// net::RunLoadgen: an epoll-driven RESP load generator that replays a
// workload::Trace against a running front end over real sockets.
//
// Connection c replays the strided sub-stream c, c+C, c+2C, ... of the
// trace (the contended engine's client split), keeping up to `depth`
// commands in flight per connection. Trace ops map onto the protocol the
// server speaks: kGet/kMultiGet -> GET (a nil reply re-inserts the key with
// SET when set_on_miss, mirroring sim::RunTrace's miss policy),
// kUpdate/kInsert -> SET, kDelete -> DEL, kExpire -> EXPIRE. Values are 'v'
// bytes sized by the same deterministic per-key rule as the replay engines
// (RunOptions::ValueBytesFor), so a served replay is comparable —
// with one connection at depth 1, bit-identical — to the in-process run of
// the same trace.
//
// The result carries wall-clock QPS and nearest-rank latency percentiles
// measured from command enqueue to reply, plus the verb/hit counts observed
// on the wire (including -LOADSHED sheds, counted separately from misses).
#ifndef DITTO_NET_LOADGEN_H_
#define DITTO_NET_LOADGEN_H_

#include <cstdint>
#include <string>

#include "workloads/trace.h"

namespace ditto::net {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connections = 1;
  int depth = 1;  // pipelined commands in flight per connection
  size_t value_bytes = 232;
  size_t value_bytes_max = 0;  // > value_bytes: per-key deterministic sizes
  bool set_on_miss = true;
  uint64_t expire_ttl_ticks = 64;
  // Abort when the server makes no progress for this long (dead peer guard).
  int idle_timeout_ms = 10000;
};

struct LoadgenResult {
  bool ok = false;
  std::string error;
  uint64_t ops = 0;     // trace requests completed (miss re-inserts excluded)
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t sets = 0;    // trace SETs + miss re-inserts
  uint64_t deletes = 0;
  uint64_t expires = 0;
  uint64_t shed = 0;    // commands answered -LOADSHED
  uint64_t errors = 0;  // other error replies / protocol surprises
  double wall_s = 0.0;
  double qps = 0.0;     // ops / wall_s
  double p50_us = 0.0;  // nearest-rank over per-command wall latency
  double p99_us = 0.0;

  double hit_rate() const {
    return gets == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(gets);
  }
};

LoadgenResult RunLoadgen(const workload::Trace& trace, const LoadgenOptions& options);

}  // namespace ditto::net

#endif  // DITTO_NET_LOADGEN_H_
