// net::Server: the multi-reactor TCP front end serving the Ditto cache over
// RESP2 (see connection.h for the protocol subset).
//
// Architecture: `reactors` event-loop threads, each owning
//   * its own listening socket bound with SO_REUSEPORT to the same port, so
//     the kernel spreads incoming connections across reactors with no
//     shared accept lock,
//   * an epoll instance polling that acceptor plus every connection the
//     reactor owns (level-triggered),
//   * one CacheClient all of the reactor's connections execute ops on.
// Connections never migrate between reactors, so each CacheClient stays
// single-threaded; reactors of one server share the memory pool exactly
// like the contended replay engine's clients (deployments with more than
// one reactor need DittoConfig::validate_inserts, same as any shared-pool
// multi-client deployment).
//
// Overload behaviour (all explicit, never a stall or a crash):
//   * past `max_conns` live connections, an acceptor answers
//     `-ERR max connections reached` and closes immediately;
//   * past the global `shed_watermark` of in-flight cache ops, a parsed
//     command is answered `-LOADSHED ...` instead of executing;
//   * past `max_pending_bytes` of unflushed replies, the reactor stops
//     reading from that connection until the peer drains below half.
#ifndef DITTO_NET_SERVER_H_
#define DITTO_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/resp.h"
#include "sim/client_iface.h"

namespace ditto::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = let the kernel pick; read back via Server::port()
  size_t max_conns = 1024;              // global live-connection cap
  size_t max_pending_bytes = 1 << 20;   // per-connection unflushed-reply cap
  size_t shed_watermark = 64 << 10;     // global in-flight cache-op cap; 0 = unlimited
  RespLimits limits;                    // parser caps (bulk size, arg count)
};

// Monotonic server-wide counters (atomically maintained, snapshot via
// Server::stats()).
struct ServerStats {
  uint64_t accepted = 0;        // connections admitted
  uint64_t rejected_conns = 0;  // accept-and-closed past max_conns
  uint64_t live_conns = 0;      // currently open
  uint64_t commands = 0;        // commands parsed (admitted + shed)
  uint64_t ops = 0;             // cache ops executed
  uint64_t shed_ops = 0;        // cache ops answered -LOADSHED
};

class Server {
 public:
  // One CacheClient per reactor; clients.size() is the reactor count. The
  // clients must share one deployment (pool + server) when there is more
  // than one of them, exactly like RunTraceContended's clients.
  Server(std::vector<sim::CacheClient*> clients, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the acceptors and spawns the reactor threads. On failure fills
  // *error and returns false (nothing keeps running).
  bool Start(std::string* error);

  // Graceful shutdown: stops accepting, closes every connection, joins the
  // reactor threads, and flushes each client's buffered work (Finish()).
  // Idempotent.
  void Stop();

  // The bound TCP port (after Start with options.port == 0).
  uint16_t port() const { return port_; }
  int reactors() const { return static_cast<int>(clients_.size()); }

  ServerStats stats() const;

 private:
  class Reactor;

  // Global in-flight cache-op budget (the -LOADSHED watermark). Acquire is
  // a single fetch_add race-checked against the watermark; no-ops when the
  // watermark is 0 (unlimited).
  bool AcquireOps(size_t n);
  void ReleaseOps(size_t n);

  std::vector<sim::CacheClient*> clients_;
  ServerOptions options_;
  uint16_t port_ = 0;
  bool started_ = false;
  std::vector<std::unique_ptr<Reactor>> reactors_;

  // Shared overload state: see Reactor::AcquireOps / connection admission.
  std::atomic<uint64_t> inflight_ops_{0};
  std::atomic<uint64_t> live_conns_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_conns_{0};
  std::atomic<uint64_t> commands_{0};
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> shed_ops_{0};
};

}  // namespace ditto::net

#endif  // DITTO_NET_SERVER_H_
