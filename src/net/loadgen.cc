#include "net/loadgen.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "net/net_util.h"
#include "net/resp.h"
#include "net/ring_buffer.h"
#include "sim/runner.h"

namespace ditto::net {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// What a command awaiting its reply was, so the reply handler knows how to
// account it and whether a nil triggers the miss re-insert.
enum class CmdKind : uint8_t { kGet, kSet, kMissSet, kDelete, kExpire };

struct PendingReply {
  CmdKind kind;
  uint64_t key;
  uint64_t send_ns;
};

struct Conn {
  int fd = -1;
  RingBuffer in;
  RingBuffer out;
  size_t cursor = 0;  // next trace index of this connection's strided stream
  std::deque<PendingReply> pending;
  // Miss re-inserts to send before the cursor advances (RunTrace's
  // set_on_miss executes before the next trace op; at depth 1 the order is
  // identical, at higher depths the re-insert goes out at the next refill).
  std::deque<uint64_t> priority_set_keys;
  bool closed = false;
  uint32_t events = 0;  // epoll interest currently installed
};

// Blocking loopback connect, then switch to nonblocking for the event loop.
int ConnectTo(const std::string& host, uint16_t port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + net::ErrnoMessage(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid host '" + host + "'";
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect: ") + net::ErrnoMessage(errno);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  return fd;
}

class Loadgen {
 public:
  Loadgen(const workload::Trace& trace, const LoadgenOptions& options)
      : trace_(trace), options_(options) {
    // The replay engines' deterministic per-key value sizing, reused so a
    // served replay stores byte-for-byte equally sized objects.
    value_rule_.value_bytes = options.value_bytes;
    value_rule_.value_bytes_max = options.value_bytes_max;
    value_.assign(std::max(options.value_bytes, options.value_bytes_max), 'v');
  }

  LoadgenResult Run();

 private:
  void EnqueueGet(Conn* conn, uint64_t key, CmdKind kind);
  void EnqueueSet(Conn* conn, uint64_t key, CmdKind kind);
  void EnqueueTraceOp(Conn* conn, const workload::Request& req);
  // Tops the connection's pipeline up to `depth` in-flight commands.
  void Refill(Conn* conn);
  // Parses every complete reply, accounting it against the pending queue.
  bool DrainReplies(Conn* conn);
  bool FlushOutput(Conn* conn);
  void UpdateInterest(Conn* conn);
  void CloseConn(Conn* conn);
  bool ConnFinished(const Conn& conn) const {
    return conn.cursor >= trace_.size() && conn.pending.empty() &&
           conn.priority_set_keys.empty();
  }

  const workload::Trace& trace_;
  const LoadgenOptions& options_;
  sim::RunOptions value_rule_;
  std::string value_;
  std::vector<std::unique_ptr<Conn>> conns_;
  int epoll_fd_ = -1;
  size_t live_ = 0;
  LoadgenResult result_;
  Histogram hist_;
  std::vector<RespReply> elems_;
};

void Loadgen::EnqueueGet(Conn* conn, uint64_t key, CmdKind kind) {
  workload::KeyBuf buf;
  AppendCommand(&conn->out, {"GET", workload::FormatKey(key, &buf)});
  conn->pending.push_back({kind, key, NowNs()});
}

void Loadgen::EnqueueSet(Conn* conn, uint64_t key, CmdKind kind) {
  workload::KeyBuf buf;
  const std::string_view val(value_.data(), value_rule_.ValueBytesFor(key));
  AppendCommand(&conn->out, {"SET", workload::FormatKey(key, &buf), val});
  conn->pending.push_back({kind, key, NowNs()});
}

void Loadgen::EnqueueTraceOp(Conn* conn, const workload::Request& req) {
  workload::KeyBuf buf;
  char ttl[24];
  switch (req.op) {
    case workload::Op::kGet:
    case workload::Op::kMultiGet:
      EnqueueGet(conn, req.key, CmdKind::kGet);
      return;
    case workload::Op::kUpdate:
    case workload::Op::kInsert:
      EnqueueSet(conn, req.key, CmdKind::kSet);
      return;
    case workload::Op::kDelete:
      AppendCommand(&conn->out, {"DEL", workload::FormatKey(req.key, &buf)});
      conn->pending.push_back({CmdKind::kDelete, req.key, NowNs()});
      return;
    case workload::Op::kExpire: {
      const int n = std::snprintf(ttl, sizeof(ttl), "%llu",
                                  static_cast<unsigned long long>(options_.expire_ttl_ticks));
      AppendCommand(&conn->out, {"EXPIRE", workload::FormatKey(req.key, &buf),
                                 std::string_view(ttl, static_cast<size_t>(n))});
      conn->pending.push_back({CmdKind::kExpire, req.key, NowNs()});
      return;
    }
  }
}

void Loadgen::Refill(Conn* conn) {
  const size_t depth = static_cast<size_t>(std::max(options_.depth, 1));
  const size_t stride = conns_.size();
  while (conn->pending.size() < depth) {
    if (!conn->priority_set_keys.empty()) {
      EnqueueSet(conn, conn->priority_set_keys.front(), CmdKind::kMissSet);
      conn->priority_set_keys.pop_front();
      continue;
    }
    if (conn->cursor >= trace_.size()) {
      break;
    }
    EnqueueTraceOp(conn, trace_[conn->cursor]);
    conn->cursor += stride;
  }
}

bool Loadgen::DrainReplies(Conn* conn) {
  while (true) {
    RespReply reply;
    elems_.clear();
    std::string error;
    const ParseStatus status = ParseReply(&conn->in, &reply, &elems_, &error);
    if (status == ParseStatus::kNeedMore) {
      return true;
    }
    if (status == ParseStatus::kError) {
      result_.error = "reply parse error: " + error;
      return false;
    }
    if (conn->pending.empty()) {
      result_.error = "unsolicited reply from server";
      return false;
    }
    const PendingReply pending = conn->pending.front();
    conn->pending.pop_front();

    const bool is_shed = reply.type == RespReply::Type::kError &&
                         reply.text.substr(0, 8) == "LOADSHED";
    const bool is_error = reply.type == RespReply::Type::kError && !is_shed;
    result_.shed += is_shed ? 1 : 0;
    result_.errors += is_error ? 1 : 0;

    // Trace requests count toward ops and the latency histogram; the miss
    // re-insert is policy traffic, mirroring RunTrace (where a miss's Set is
    // not an extra trace op).
    if (pending.kind != CmdKind::kMissSet) {
      result_.ops++;
      hist_.RecordNs(NowNs() - pending.send_ns);
    }
    switch (pending.kind) {
      case CmdKind::kGet:
        if (is_shed || is_error) {
          break;
        }
        result_.gets++;
        if (reply.type == RespReply::Type::kBulk) {
          result_.hits++;
        } else {
          result_.misses++;
          if (options_.set_on_miss) {
            conn->priority_set_keys.push_back(pending.key);
          }
        }
        break;
      case CmdKind::kSet:
      case CmdKind::kMissSet:
        if (!is_shed && !is_error) {
          result_.sets++;
        }
        break;
      case CmdKind::kDelete:
        if (!is_shed && !is_error) {
          result_.deletes++;
        }
        break;
      case CmdKind::kExpire:
        if (!is_shed && !is_error) {
          result_.expires++;
        }
        break;
    }
  }
}

bool Loadgen::FlushOutput(Conn* conn) {
  RingBuffer& out = conn->out;
  while (!out.empty()) {
    const ssize_t n = ::write(conn->fd, out.data(), out.size());
    if (n > 0) {
      out.Consume(static_cast<size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return true;
    }
    result_.error = std::string("write: ") + net::ErrnoMessage(errno);
    return false;
  }
  return true;
}

void Loadgen::UpdateInterest(Conn* conn) {
  const uint32_t want = (conn->pending.empty() ? 0 : static_cast<uint32_t>(EPOLLIN)) |
                        (conn->out.empty() ? 0 : static_cast<uint32_t>(EPOLLOUT));
  if (want == conn->events) {
    return;
  }
  conn->events = want;
  epoll_event ev{};
  ev.events = want;
  ev.data.ptr = conn;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Loadgen::CloseConn(Conn* conn) {
  if (conn->closed) {
    return;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->closed = true;
  --live_;
}

LoadgenResult Loadgen::Run() {
  const int num_conns = std::max(options_.connections, 1);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    result_.error = std::string("epoll_create1: ") + net::ErrnoMessage(errno);
    return result_;
  }
  for (int c = 0; c < num_conns; ++c) {
    auto conn = std::make_unique<Conn>();
    conn->fd = ConnectTo(options_.host, options_.port, &result_.error);
    if (conn->fd < 0) {
      for (auto& open : conns_) {
        CloseConn(open.get());
      }
      ::close(epoll_fd_);
      return result_;
    }
    conn->cursor = static_cast<size_t>(c);
    epoll_event ev{};
    ev.events = 0;
    ev.data.ptr = conn.get();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev);
    conns_.push_back(std::move(conn));
  }
  live_ = conns_.size();

  const uint64_t begin_ns = NowNs();
  for (auto& conn : conns_) {
    Refill(conn.get());
    if (!FlushOutput(conn.get())) {
      break;
    }
    if (ConnFinished(*conn)) {
      CloseConn(conn.get());  // empty stream (more connections than requests)
    } else {
      UpdateInterest(conn.get());
    }
  }

  epoll_event events[64];
  uint64_t last_progress_ns = NowNs();
  while (live_ > 0 && result_.error.empty()) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, 200);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      result_.error = std::string("epoll_wait: ") + net::ErrnoMessage(errno);
      break;
    }
    if (n == 0) {
      if (NowNs() - last_progress_ns >
          static_cast<uint64_t>(options_.idle_timeout_ms) * 1000000ULL) {
        result_.error = "server made no progress within idle timeout";
        break;
      }
      continue;
    }
    last_progress_ns = NowNs();
    for (int i = 0; i < n; ++i) {
      Conn* conn = static_cast<Conn*>(events[i].data.ptr);
      if (conn->closed) {
        continue;
      }
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        result_.error = "server closed the connection mid-replay";
        CloseConn(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        while (true) {
          char* dst = conn->in.Reserve(16 << 10);
          const ssize_t r = ::read(conn->fd, dst, 16 << 10);
          if (r > 0) {
            conn->in.Commit(static_cast<size_t>(r));
            if (r < (16 << 10)) {
              break;
            }
            continue;
          }
          if (r == 0) {
            result_.error = "server closed the connection mid-replay";
            CloseConn(conn);
          } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            result_.error = std::string("read: ") + net::ErrnoMessage(errno);
            CloseConn(conn);
          }
          break;
        }
        if (conn->closed) {
          continue;
        }
        if (!DrainReplies(conn)) {
          CloseConn(conn);
          continue;
        }
        Refill(conn);
      }
      if (!FlushOutput(conn)) {
        CloseConn(conn);
        continue;
      }
      if (ConnFinished(*conn)) {
        CloseConn(conn);
        continue;
      }
      UpdateInterest(conn);
    }
  }

  const uint64_t end_ns = NowNs();
  for (auto& conn : conns_) {
    CloseConn(conn.get());
  }
  ::close(epoll_fd_);

  result_.wall_s = static_cast<double>(end_ns - begin_ns) / 1e9;
  result_.qps = result_.wall_s > 0.0 ? static_cast<double>(result_.ops) / result_.wall_s : 0.0;
  result_.p50_us = hist_.PercentileUs(50);
  result_.p99_us = hist_.PercentileUs(99);
  result_.ok = result_.error.empty();
  return result_;
}

}  // namespace

LoadgenResult RunLoadgen(const workload::Trace& trace, const LoadgenOptions& options) {
  return Loadgen(trace, options).Run();
}

}  // namespace ditto::net
