#include "net/resp.h"

#include <cstdio>
#include <cstring>

namespace ditto::net {

namespace {

// Locates the first CRLF strictly after `from` in `in`; returns the index
// of the '\r'. A bare LF reports "not found" — headers are all short, so the
// callers' line-length limits reject such input instead of stalling on it.
size_t FindCrlf(std::string_view in, size_t from) {
  const size_t nl = in.find('\n', from + 1);
  if (nl == std::string_view::npos || in[nl - 1] != '\r') {
    return std::string_view::npos;
  }
  return nl - 1;
}

// Parses the decimal integer between in[begin, end). Returns false on empty
// or non-numeric input (an optional leading '-' is accepted).
bool ParseInt(std::string_view in, size_t begin, size_t end, int64_t* value) {
  if (begin >= end) {
    return false;
  }
  bool negative = false;
  size_t i = begin;
  if (in[i] == '-') {
    negative = true;
    ++i;
    if (i >= end) {
      return false;
    }
  }
  int64_t v = 0;
  for (; i < end; ++i) {
    const char c = in[i];
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + (c - '0');
  }
  *value = negative ? -v : v;
  return true;
}

}  // namespace

ParseStatus RespParser::Parse(RingBuffer* rb, RespCommand* cmd) {
  // Empty frames (bare newlines between pipelined commands, "*0\r\n") are
  // consumed and skipped here so every kOk carries a real command.
  ParseStatus status;
  do {
    status = ParseOne(rb, cmd);
  } while (status == ParseStatus::kOk && cmd->args.empty());
  return status;
}

// ditto-lint: hot-path-begin(resp-parse)
// The per-command decode loop: runs once per pipelined request on every
// reactor thread. Steady-state parses must not allocate — args views alias
// the ring and the args vector's capacity is reused across commands.
ParseStatus RespParser::ParseOne(RingBuffer* rb, RespCommand* cmd) {
  cmd->args.clear();
  const std::string_view in = rb->view();
  if (in.empty()) {
    return ParseStatus::kNeedMore;
  }

  if (in[0] != '*') {
    // Inline command: one line, arguments split on spaces/tabs.
    const size_t eol = in.find('\n');
    if (eol == std::string_view::npos) {
      if (in.size() > limits_.max_inline_bytes) {
        error_ = "ERR Protocol error: too big inline request";
        return ParseStatus::kError;
      }
      return ParseStatus::kNeedMore;
    }
    size_t line_end = eol;
    if (line_end > 0 && in[line_end - 1] == '\r') {
      --line_end;
    }
    if (line_end > limits_.max_inline_bytes) {
      error_ = "ERR Protocol error: too big inline request";
      return ParseStatus::kError;
    }
    size_t i = 0;
    while (i < line_end) {
      while (i < line_end && (in[i] == ' ' || in[i] == '\t')) {
        ++i;
      }
      const size_t begin = i;
      while (i < line_end && in[i] != ' ' && in[i] != '\t') {
        ++i;
      }
      if (i > begin) {
        if (cmd->args.size() >= limits_.max_args) {
          error_ = "ERR Protocol error: too many arguments";
          return ParseStatus::kError;
        }
        // ditto-lint: allow(alloc): vector capacity is reused across commands
        cmd->args.push_back(in.substr(begin, i - begin));
      }
    }
    rb->Consume(eol + 1);
    return ParseStatus::kOk;  // empty line: Parse() skips and re-enters
  }

  // Multi-bulk frame: *N\r\n then N of $len\r\n<len bytes>\r\n.
  size_t pos = 0;
  size_t crlf = FindCrlf(in, 0);
  if (crlf == std::string_view::npos) {
    if (in.size() > 32) {  // a multi-bulk header is a handful of bytes
      error_ = "ERR Protocol error: invalid multibulk length";
      return ParseStatus::kError;
    }
    return ParseStatus::kNeedMore;
  }
  int64_t num_args = 0;
  if (!ParseInt(in, 1, crlf, &num_args) || num_args < 0 ||
      static_cast<size_t>(num_args) > limits_.max_args) {
    error_ = "ERR Protocol error: invalid multibulk length";
    return ParseStatus::kError;
  }
  pos = crlf + 2;
  for (int64_t a = 0; a < num_args; ++a) {
    if (pos >= in.size()) {
      return ParseStatus::kNeedMore;
    }
    if (in[pos] != '$') {
      // ditto-lint: allow(alloc): cold protocol-error path; connection closes after
      error_ = "ERR Protocol error: expected '$', got '" + std::string(1, in[pos]) + "'";
      return ParseStatus::kError;
    }
    crlf = FindCrlf(in, pos);
    if (crlf == std::string_view::npos) {
      if (in.size() - pos > 32) {
        error_ = "ERR Protocol error: invalid bulk length";
        return ParseStatus::kError;
      }
      return ParseStatus::kNeedMore;
    }
    int64_t len = 0;
    if (!ParseInt(in, pos + 1, crlf, &len) || len < 0 ||
        static_cast<size_t>(len) > limits_.max_bulk_bytes) {
      error_ = "ERR Protocol error: invalid bulk length";
      return ParseStatus::kError;
    }
    pos = crlf + 2;
    if (in.size() - pos < static_cast<size_t>(len) + 2) {
      return ParseStatus::kNeedMore;
    }
    if (in[pos + len] != '\r' || in[pos + len + 1] != '\n') {
      error_ = "ERR Protocol error: bulk string not terminated by CRLF";
      return ParseStatus::kError;
    }
    // ditto-lint: allow(alloc): vector capacity is reused across commands
    cmd->args.push_back(in.substr(pos, static_cast<size_t>(len)));
    pos += static_cast<size_t>(len) + 2;
  }
  rb->Consume(pos);
  return ParseStatus::kOk;  // "*0\r\n" yields empty args; Parse() skips it
}
// ditto-lint: hot-path-end(resp-parse)

namespace {

// Parses one non-array reply element starting at in[pos]. On success
// advances *pos past the element and fills *out.
ParseStatus ParseReplyElement(std::string_view in, size_t* pos, RespReply* out,
                              std::string* error) {
  if (*pos >= in.size()) {
    return ParseStatus::kNeedMore;
  }
  const char type = in[*pos];
  const size_t crlf = FindCrlf(in, *pos);
  if (crlf == std::string_view::npos) {
    return ParseStatus::kNeedMore;
  }
  switch (type) {
    case '+':
    case '-': {
      out->type = type == '+' ? RespReply::Type::kSimple : RespReply::Type::kError;
      out->text = in.substr(*pos + 1, crlf - *pos - 1);
      *pos = crlf + 2;
      return ParseStatus::kOk;
    }
    case ':': {
      if (!ParseInt(in, *pos + 1, crlf, &out->integer)) {
        *error = "malformed integer reply";
        return ParseStatus::kError;
      }
      out->type = RespReply::Type::kInteger;
      *pos = crlf + 2;
      return ParseStatus::kOk;
    }
    case '$': {
      int64_t len = 0;
      if (!ParseInt(in, *pos + 1, crlf, &len)) {
        *error = "malformed bulk length";
        return ParseStatus::kError;
      }
      if (len < 0) {
        out->type = RespReply::Type::kNil;
        *pos = crlf + 2;
        return ParseStatus::kOk;
      }
      const size_t body = crlf + 2;
      if (in.size() - body < static_cast<size_t>(len) + 2) {
        return ParseStatus::kNeedMore;
      }
      out->type = RespReply::Type::kBulk;
      out->text = in.substr(body, static_cast<size_t>(len));
      *pos = body + static_cast<size_t>(len) + 2;
      return ParseStatus::kOk;
    }
    default:
      *error = std::string("unexpected reply type byte '") + type + "'";
      return ParseStatus::kError;
  }
}

}  // namespace

ParseStatus ParseReply(RingBuffer* rb, RespReply* reply, std::vector<RespReply>* elems,
                       std::string* error) {
  const std::string_view in = rb->view();
  size_t pos = 0;
  if (in.empty()) {
    return ParseStatus::kNeedMore;
  }
  if (in[0] == '*') {
    const size_t crlf = FindCrlf(in, 0);
    if (crlf == std::string_view::npos) {
      return ParseStatus::kNeedMore;
    }
    int64_t count = 0;
    if (!ParseInt(in, 1, crlf, &count) || count < 0) {
      *error = "malformed array header";
      return ParseStatus::kError;
    }
    pos = crlf + 2;
    const size_t elems_before = elems != nullptr ? elems->size() : 0;
    for (int64_t i = 0; i < count; ++i) {
      RespReply elem;
      if (pos < in.size() && in[pos] == '*') {
        *error = "nested array reply unsupported";
        return ParseStatus::kError;
      }
      const ParseStatus st = ParseReplyElement(in, &pos, &elem, error);
      if (st != ParseStatus::kOk) {
        if (st == ParseStatus::kNeedMore && elems != nullptr) {
          elems->resize(elems_before);  // drop partially parsed elements
        }
        return st;
      }
      if (elems != nullptr) {
        elems->push_back(elem);
      }
    }
    reply->type = RespReply::Type::kArray;
    reply->count = static_cast<size_t>(count);
    rb->Consume(pos);
    return ParseStatus::kOk;
  }
  const ParseStatus st = ParseReplyElement(in, &pos, reply, error);
  if (st == ParseStatus::kOk) {
    rb->Consume(pos);
  }
  return st;
}

void AppendSimple(RingBuffer* out, std::string_view s) {
  out->Append("+");
  out->Append(s);
  out->Append("\r\n");
}

void AppendError(RingBuffer* out, std::string_view msg) {
  out->Append("-");
  out->Append(msg);
  out->Append("\r\n");
}

void AppendInteger(RingBuffer* out, int64_t v) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), ":%lld\r\n", static_cast<long long>(v));
  out->Append(std::string_view(buf, static_cast<size_t>(n)));
}

void AppendBulk(RingBuffer* out, std::string_view s) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "$%zu\r\n", s.size());
  out->Append(std::string_view(buf, static_cast<size_t>(n)));
  out->Append(s);
  out->Append("\r\n");
}

void AppendNil(RingBuffer* out) { out->Append("$-1\r\n"); }

void AppendArrayHeader(RingBuffer* out, size_t n) {
  char buf[32];
  const int len = std::snprintf(buf, sizeof(buf), "*%zu\r\n", n);
  out->Append(std::string_view(buf, static_cast<size_t>(len)));
}

void AppendCommand(RingBuffer* out, std::initializer_list<std::string_view> args) {
  AppendArrayHeader(out, args.size());
  for (const std::string_view arg : args) {
    AppendBulk(out, arg);
  }
}

}  // namespace ditto::net
