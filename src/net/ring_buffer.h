// A contiguous byte buffer with separate read/write cursors, used as the
// per-connection input and output staging area of the network front end.
//
// Unlike a classic circular ring, the readable region is always one
// contiguous span, so the RESP parser can hand out zero-copy
// std::string_view arguments aliasing the buffer. Consume() only advances
// the read cursor — it never moves memory — so views taken from the
// readable region stay valid until the next Reserve() (which may compact
// the buffer to reclaim consumed bytes) or Clear(). The protocol layer
// exploits this: it parses a whole pipelined batch of commands (consuming
// each frame as it goes), executes them against views into the buffer, and
// only then reads from the socket again.
#ifndef DITTO_NET_RING_BUFFER_H_
#define DITTO_NET_RING_BUFFER_H_

#include <cstddef>
#include <cstring>
#include <string_view>
#include <vector>

namespace ditto::net {

class RingBuffer {
 public:
  explicit RingBuffer(size_t initial_capacity = 4096) { buf_.resize(initial_capacity); }

  // Readable region (bytes written but not yet consumed).
  const char* data() const { return buf_.data() + read_; }
  size_t size() const { return write_ - read_; }
  bool empty() const { return read_ == write_; }
  std::string_view view() const { return std::string_view(data(), size()); }

  // Advances the read cursor past `n` consumed bytes. Never moves memory,
  // so previously returned views remain valid.
  void Consume(size_t n) {
    read_ += n;
    if (read_ == write_) {
      read_ = write_ = 0;  // cheap reset: nothing readable, nothing aliased
    }
  }

  // Returns a writable span of at least `n` bytes past the current write
  // cursor, compacting consumed bytes to the front (and growing the backing
  // store) as needed. Invalidates views into the readable region when it
  // compacts or grows, so call it only between parse batches.
  char* Reserve(size_t n) {
    if (buf_.size() - write_ < n) {
      if (read_ > 0) {
        std::memmove(buf_.data(), buf_.data() + read_, size());
        write_ -= read_;
        read_ = 0;
      }
      if (buf_.size() - write_ < n) {
        size_t target = buf_.size() * 2;
        while (target - write_ < n) {
          target *= 2;
        }
        buf_.resize(target);
      }
    }
    return buf_.data() + write_;
  }

  // Marks `n` bytes written through the last Reserve() span as readable.
  void Commit(size_t n) { write_ += n; }

  // Appends `bytes`, reserving as needed.
  void Append(std::string_view bytes) {
    char* dst = Reserve(bytes.size());
    std::memcpy(dst, bytes.data(), bytes.size());
    Commit(bytes.size());
  }

  void Clear() { read_ = write_ = 0; }

  size_t capacity() const { return buf_.size(); }

 private:
  std::vector<char> buf_;
  size_t read_ = 0;
  size_t write_ = 0;
};

}  // namespace ditto::net

#endif  // DITTO_NET_RING_BUFFER_H_
