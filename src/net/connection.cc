#include "net/connection.h"

#include <charconv>

namespace ditto::net {

namespace {

// Case-insensitive ASCII compare against an UPPERCASE literal.
bool VerbIs(std::string_view verb, std::string_view upper) {
  if (verb.size() != upper.size()) {
    return false;
  }
  for (size_t i = 0; i < verb.size(); ++i) {
    char c = verb[i];
    if (c >= 'a' && c <= 'z') {
      c = static_cast<char>(c - 'a' + 'A');
    }
    if (c != upper[i]) {
      return false;
    }
  }
  return true;
}

bool ParseU64(std::string_view s, uint64_t* value) {
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, *value);
  return ec == std::errc() && ptr == end;
}

// Cache ops a command of `argc` arguments wants to execute — the unit the
// global in-flight watermark is charged in. Commands that execute no cache
// op (PING/INFO/QUIT/unknown) are never shed.
size_t OpsForCommand(std::string_view verb, size_t argc) {
  if (VerbIs(verb, "GET") || VerbIs(verb, "SET") || VerbIs(verb, "EXPIRE") ||
      VerbIs(verb, "TTL")) {
    return argc >= 2 ? 1 : 0;
  }
  if (VerbIs(verb, "DEL") || VerbIs(verb, "MGET")) {
    return argc >= 2 ? argc - 1 : 0;
  }
  return 0;
}

}  // namespace

bool Connection::ProcessInput() {
  if (closing_) {
    return false;
  }
  // Pass 1: parse every complete pipelined command out of the input ring,
  // charging the global in-flight budget at parse time. The burst size of
  // one read batch is the connection's instantaneous demand: commands past
  // the watermark are marked shed here and never execute.
  batch_.clear();
  batch_args_.clear();
  batch_ops_acquired_ = 0;
  uint64_t shed_ops = 0;
  bool protocol_error = false;
  while (true) {
    const ParseStatus status = parser_.Parse(&in_, &cmd_);
    if (status == ParseStatus::kNeedMore) {
      break;
    }
    if (status == ParseStatus::kError) {
      protocol_error = true;
      break;
    }
    PendingCmd pending;
    pending.args_begin = batch_args_.size();
    batch_args_.insert(batch_args_.end(), cmd_.args.begin(), cmd_.args.end());
    pending.args_end = batch_args_.size();
    const size_t ops = OpsForCommand(cmd_.args[0], cmd_.args.size());
    if (ops > 0 && !host_->AcquireOps(ops)) {
      pending.shed = true;
      shed_ops += ops;
    } else {
      batch_ops_acquired_ += ops;
    }
    batch_.push_back(pending);
  }

  // Pass 2: execute admitted commands in order, formatting replies in
  // command order; shed commands answer -LOADSHED in their slot.
  uint64_t executed_ops = 0;
  for (const PendingCmd& pending : batch_) {
    if (pending.shed) {
      AppendError(&out_, "LOADSHED server over in-flight op watermark, retry");
      continue;
    }
    const std::string_view* args = batch_args_.data() + pending.args_begin;
    const size_t argc = pending.args_end - pending.args_begin;
    executed_ops += OpsForCommand(args[0], argc);
    if (!ExecuteCommand(args, argc)) {
      closing_ = true;
      break;
    }
  }
  host_->ReleaseOps(batch_ops_acquired_);
  host_->OnCommands(batch_.size(), executed_ops, shed_ops);

  if (protocol_error) {
    AppendError(&out_, parser_.error());
    closing_ = true;
  }
  return !closing_;
}

bool Connection::ExecuteCommand(const std::string_view* args, size_t argc) {
  const std::string_view verb = args[0];

  if (VerbIs(verb, "PING")) {
    if (argc == 1) {
      AppendSimple(&out_, "PONG");
    } else {
      AppendBulk(&out_, args[1]);
    }
    return true;
  }
  if (VerbIs(verb, "QUIT")) {
    AppendSimple(&out_, "OK");
    return false;
  }
  if (VerbIs(verb, "INFO")) {
    info_.clear();
    host_->FormatInfo(&info_);
    AppendBulk(&out_, info_);
    return true;
  }

  if (VerbIs(verb, "GET")) {
    if (argc != 2) {
      WrongArity("get");
      return true;
    }
    ops_.assign(1, sim::CacheOp::Get(args[1], /*want_value=*/true));
    ExecuteOps();
    if (AnyUnavailable()) {
      Unavailable("get");
    } else if (results_[0].hit()) {
      AppendBulk(&out_, results_[0].value);
    } else {
      AppendNil(&out_);
    }
    return true;
  }

  if (VerbIs(verb, "SET")) {
    uint64_t ttl_ticks = 0;
    if (argc == 5 && (VerbIs(args[3], "EX") || VerbIs(args[3], "PX") || VerbIs(args[3], "TTL"))) {
      if (!ParseU64(args[4], &ttl_ticks)) {
        AppendError(&out_, "ERR value is not an integer or out of range");
        return true;
      }
    } else if (argc != 3) {
      argc < 3 ? WrongArity("set") : AppendError(&out_, "ERR syntax error");
      return true;
    }
    ops_.assign(1, sim::CacheOp::Set(args[1], args[2], ttl_ticks));
    ExecuteOps();
    if (AnyUnavailable()) {
      Unavailable("set");
    } else if (results_[0].status == sim::OpStatus::kStored) {
      AppendSimple(&out_, "OK");
    } else {
      AppendError(&out_, "OOM store dropped (memory exhausted, nothing evictable)");
    }
    return true;
  }

  if (VerbIs(verb, "DEL")) {
    if (argc < 2) {
      WrongArity("del");
      return true;
    }
    ops_.clear();
    for (size_t i = 1; i < argc; ++i) {
      ops_.push_back(sim::CacheOp::Delete(args[i]));
    }
    ExecuteOps();
    if (AnyUnavailable()) {
      Unavailable("del");
      return true;
    }
    int64_t deleted = 0;
    for (const sim::CacheResult& r : results_) {
      deleted += r.status == sim::OpStatus::kDeleted ? 1 : 0;
    }
    AppendInteger(&out_, deleted);
    return true;
  }

  if (VerbIs(verb, "EXPIRE")) {
    uint64_t ttl_ticks = 0;
    if (argc != 3) {
      WrongArity("expire");
      return true;
    }
    if (!ParseU64(args[2], &ttl_ticks)) {
      AppendError(&out_, "ERR value is not an integer or out of range");
      return true;
    }
    ops_.assign(1, sim::CacheOp::Expire(args[1], ttl_ticks));
    ExecuteOps();
    if (AnyUnavailable()) {
      Unavailable("expire");
      return true;
    }
    AppendInteger(&out_, results_[0].status == sim::OpStatus::kStored ? 1 : 0);
    return true;
  }

  if (VerbIs(verb, "MGET")) {
    if (argc < 2) {
      WrongArity("mget");
      return true;
    }
    // A run of kMultiGet ops in one batch is the client protocol's fused
    // multi-get: batching-capable clients chain the whole run's metadata
    // verbs behind one NIC doorbell.
    ops_.clear();
    for (size_t i = 1; i < argc; ++i) {
      ops_.push_back(sim::CacheOp::MultiGet(args[i], /*want_value=*/true));
    }
    ExecuteOps();
    if (AnyUnavailable()) {
      // RESP2 has no per-element error inside an array: one unrouteable key
      // fails the whole MGET rather than masquerading as a nil.
      Unavailable("mget");
      return true;
    }
    AppendArrayHeader(&out_, results_.size());
    for (const sim::CacheResult& r : results_) {
      if (r.hit()) {
        AppendBulk(&out_, r.value);
      } else {
        AppendNil(&out_);
      }
    }
    return true;
  }

  if (VerbIs(verb, "TTL")) {
    if (argc != 2) {
      WrongArity("ttl");
      return true;
    }
    // The CacheOp protocol has no TTL read-back; probe existence with a
    // valueless Get. -1 = cached (remaining ticks not exposed), -2 = absent,
    // matching redis's "no TTL" / "no key" distinction.
    ops_.assign(1, sim::CacheOp::Get(args[1], /*want_value=*/false));
    ExecuteOps();
    if (AnyUnavailable()) {
      Unavailable("ttl");
      return true;
    }
    AppendInteger(&out_, results_[0].hit() ? -1 : -2);
    return true;
  }

  AppendError(&out_, "ERR unknown command '" + std::string(verb) + "'");
  return true;
}

void Connection::ExecuteOps() {
  results_.assign(ops_.size(), sim::CacheResult{});
  host_->client()->ExecuteBatch({ops_.data(), ops_.size()}, results_.data());
}

void Connection::WrongArity(std::string_view verb) {
  AppendError(&out_,
              "ERR wrong number of arguments for '" + std::string(verb) + "' command");
}

bool Connection::AnyUnavailable() const {
  for (const sim::CacheResult& r : results_) {
    if (r.status == sim::OpStatus::kUnavailable) {
      return true;
    }
  }
  return false;
}

void Connection::Unavailable(std::string_view verb) {
  AppendError(&out_, "UNAVAILABLE '" + std::string(verb) +
                         "' aborted: backing node crashed or retries exhausted, retry");
}

}  // namespace ditto::net
