// Small shared helpers for the socket front end.
#ifndef DITTO_NET_NET_UTIL_H_
#define DITTO_NET_NET_UTIL_H_

#include <string.h>

#include <string>

namespace ditto::net {

// Thread-safe strerror: the reactor threads report errors concurrently, and
// std::strerror's static buffer is a data race (clang-tidy concurrency-mt-unsafe).
// glibc's GNU strerror_r either fills `buf` or returns a pointer to an
// immutable table entry; both are safe to read from any thread.
inline std::string ErrnoMessage(int err) {
  char buf[128];
  return std::string(strerror_r(err, buf, sizeof(buf)));
}

}  // namespace ditto::net

#endif  // DITTO_NET_NET_UTIL_H_
