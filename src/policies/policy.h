// The client-centric caching framework's algorithm interface (paper §4.2).
//
// A caching algorithm is a pair of rules over per-object access metadata:
//   Priority(meta) -> double   eviction priority; the SMALLEST priority in a
//                              sample is evicted first.
//   Update(meta)               metadata update rule applied on each access.
//                              The framework always maintains the default
//                              fields (last_ts WRITE, freq FAA); Update is
//                              for algorithm-specific extension words that
//                              are stored with the object.
//
// This mirrors the paper's `double priority(Metadata)` / `void
// update(Metadata)` interfaces; the LOC counts in Table 3 correspond to the
// bodies of these two functions per algorithm.
#ifndef DITTO_POLICIES_POLICY_H_
#define DITTO_POLICIES_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ditto::policy {

// Access information available to priority/update rules (paper Table 1).
struct Metadata {
  // Global, maintained in the sample-friendly hash table.
  uint64_t hash = 0;
  uint64_t insert_ts = 0;
  uint64_t last_ts = 0;
  uint64_t freq = 0;
  uint32_t size_bytes = 1;

  // Local, estimated by the client (not stored remotely).
  double latency_us = 2.0;
  double cost = 1.0;

  // Current logical time, supplied by the framework at evaluation.
  uint64_t now = 0;

  // Extension words stored in the object's metadata header (paper §4.4).
  static constexpr int kMaxExtensionWords = 4;
  uint64_t ext[kMaxExtensionWords] = {0, 0, 0, 0};
};

class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  virtual std::string name() const = 0;

  // Eviction priority; the lowest-priority sampled object is the candidate.
  virtual double Priority(const Metadata& m) const = 0;

  // Called on every access (Get hit or Set) before extension words are
  // written back. Default algorithms need no extension state.
  virtual void Update(Metadata& /*m*/) const {}

  // Called when the object is first inserted.
  virtual void OnInsert(Metadata& /*m*/) const {}

  // Number of extension words this algorithm persists with each object.
  virtual int extension_words() const { return 0; }

  // Called when an object chosen by this policy is evicted; lets
  // inflation-based algorithms (GDS family) advance their aging value L.
  virtual void OnEvict(const Metadata& /*victim*/) const {}
};

// Creates a policy by name. Known names: lru, lfu, mru, fifo, size, gds,
// gdsf, lfuda, lruk, lrfu, lirs, hyperbolic, plus anything registered with
// RegisterPolicy. Returns nullptr for unknown names. Each client owns its
// own instances (inflation state is local).
std::unique_ptr<CachePolicy> MakePolicy(const std::string& name);

// Registers a user-defined caching algorithm under `name` (overrides a
// built-in of the same name). This is the integration point the paper
// highlights: a new algorithm is a priority function, optionally an update
// rule — typically around a dozen lines.
using PolicyFactory = std::unique_ptr<CachePolicy> (*)();
void RegisterPolicy(const std::string& name, PolicyFactory factory);

// All built-in algorithm names (Table 3 order).
const std::vector<std::string>& AllPolicyNames();

}  // namespace ditto::policy

#endif  // DITTO_POLICIES_POLICY_H_
