#include "policies/policy.h"

#include "policies/algorithms.h"

#include <map>

namespace ditto::policy {
namespace {

std::map<std::string, PolicyFactory>& Registry() {
  static std::map<std::string, PolicyFactory> registry;
  return registry;
}

}  // namespace

void RegisterPolicy(const std::string& name, PolicyFactory factory) {
  Registry()[name] = factory;
}

std::unique_ptr<CachePolicy> MakePolicy(const std::string& name) {
  const auto it = Registry().find(name);
  if (it != Registry().end()) {
    return it->second();
  }
  if (name == "lru") {
    return std::make_unique<LruPolicy>();
  }
  if (name == "lfu") {
    return std::make_unique<LfuPolicy>();
  }
  if (name == "mru") {
    return std::make_unique<MruPolicy>();
  }
  if (name == "fifo") {
    return std::make_unique<FifoPolicy>();
  }
  if (name == "size") {
    return std::make_unique<SizePolicy>();
  }
  if (name == "gds") {
    return std::make_unique<GdsPolicy>();
  }
  if (name == "gdsf") {
    return std::make_unique<GdsfPolicy>();
  }
  if (name == "lfuda") {
    return std::make_unique<LfudaPolicy>();
  }
  if (name == "lruk") {
    return std::make_unique<LrukPolicy>();
  }
  if (name == "lrfu") {
    return std::make_unique<LrfuPolicy>();
  }
  if (name == "lirs") {
    return std::make_unique<LirsPolicy>();
  }
  if (name == "hyperbolic") {
    return std::make_unique<HyperbolicPolicy>();
  }
  return nullptr;
}

const std::vector<std::string>& AllPolicyNames() {
  static const std::vector<std::string> kNames = {"lru",  "lfu",  "mru",  "gds",
                                                  "lirs", "fifo", "size", "gdsf",
                                                  "lrfu", "lruk", "lfuda", "hyperbolic"};
  return kNames;
}

}  // namespace ditto::policy
