// The 12 caching algorithms of paper Table 3, expressed as priority /
// update rules over the default metadata plus (for the advanced ones)
// extension words persisted with objects.
//
// Priority convention: the sampled object with the LOWEST priority is
// evicted. Timestamps are logical ticks.
#ifndef DITTO_POLICIES_ALGORITHMS_H_
#define DITTO_POLICIES_ALGORITHMS_H_

#include <algorithm>
#include <cmath>

#include "policies/policy.h"

namespace ditto::policy {

// Extension words hold doubles as bit patterns for value-based algorithms.
inline uint64_t DoubleToBits(double d) {
  uint64_t bits;
  __builtin_memcpy(&bits, &d, 8);
  return bits;
}
inline double BitsToDouble(uint64_t bits) {
  double d;
  __builtin_memcpy(&d, &bits, 8);
  return d;
}

// ---- Recency / frequency basics ------------------------------------------

class LruPolicy : public CachePolicy {
 public:
  std::string name() const override { return "lru"; }
  double Priority(const Metadata& m) const override { return static_cast<double>(m.last_ts); }
};

class LfuPolicy : public CachePolicy {
 public:
  std::string name() const override { return "lfu"; }
  double Priority(const Metadata& m) const override {
    // Equal frequencies tie-break by recency (as exact LFU implementations
    // do); the epsilon keeps the recency term far below one access.
    return static_cast<double>(m.freq) + 1e-10 * static_cast<double>(m.last_ts);
  }
};

class MruPolicy : public CachePolicy {
 public:
  std::string name() const override { return "mru"; }
  double Priority(const Metadata& m) const override { return -static_cast<double>(m.last_ts); }
};

class FifoPolicy : public CachePolicy {
 public:
  std::string name() const override { return "fifo"; }
  double Priority(const Metadata& m) const override { return static_cast<double>(m.insert_ts); }
};

// SIZE: evict the largest object first.
class SizePolicy : public CachePolicy {
 public:
  std::string name() const override { return "size"; }
  double Priority(const Metadata& m) const override { return -static_cast<double>(m.size_bytes); }
};

// ---- GreedyDual family (inflation value L kept client-locally) ------------

class GdsPolicy : public CachePolicy {
 public:
  std::string name() const override { return "gds"; }
  double Priority(const Metadata& m) const override {
    return inflation_ + m.cost / static_cast<double>(m.size_bytes);
  }
  void OnEvict(const Metadata& victim) const override {
    inflation_ = std::max(inflation_, Priority(victim));
  }

 protected:
  mutable double inflation_ = 0.0;
};

class GdsfPolicy : public CachePolicy {
 public:
  std::string name() const override { return "gdsf"; }
  double Priority(const Metadata& m) const override {
    return inflation_ + static_cast<double>(m.freq) * m.cost / static_cast<double>(m.size_bytes);
  }
  void OnEvict(const Metadata& victim) const override {
    inflation_ = std::max(inflation_, Priority(victim));
  }

 private:
  mutable double inflation_ = 0.0;
};

// LFU with Dynamic Aging: an object's key K = freq + L(at last access) is
// baked into ext[0] on each access, so stale-hot objects age out once the
// inflation value L passes their frozen key.
class LfudaPolicy : public CachePolicy {
 public:
  std::string name() const override { return "lfuda"; }
  int extension_words() const override { return 1; }

  void Update(Metadata& m) const override {
    m.ext[0] = DoubleToBits(static_cast<double>(m.freq) + inflation_);
  }

  double Priority(const Metadata& m) const override {
    const double key = BitsToDouble(m.ext[0]);
    return key > 0.0 ? key : inflation_ + static_cast<double>(m.freq);
  }

  void OnEvict(const Metadata& victim) const override {
    inflation_ = std::max(inflation_, Priority(victim));
  }

 private:
  mutable double inflation_ = 0.0;
};

// ---- Algorithms with extension metadata -----------------------------------

// LRU-K (paper Listing 1): evict the object with the smallest K-th most
// recent access timestamp; objects with fewer than K accesses fall back to
// FIFO on their insert timestamp. ext[0..K-1] is a ring of timestamps.
class LrukPolicy : public CachePolicy {
 public:
  static constexpr int kK = 2;

  std::string name() const override { return "lruk"; }
  int extension_words() const override { return kK; }

  void Update(Metadata& m) const override { m.ext[m.freq % kK] = m.now; }

  double Priority(const Metadata& m) const override {
    if (m.freq < kK) {
      return static_cast<double>(m.insert_ts);
    }
    return static_cast<double>(m.ext[(m.freq - kK + 1) % kK]);
  }
};

// LRFU: combined recency-frequency value CRF(t) = sum over accesses of
// 2^(-lambda * (t - t_access)). ext[0] holds the CRF as a double bit
// pattern, ext[1] the timestamp of the last CRF update.
class LrfuPolicy : public CachePolicy {
 public:
  static constexpr double kLambda = 1e-4;

  std::string name() const override { return "lrfu"; }
  int extension_words() const override { return 2; }

  void Update(Metadata& m) const override {
    const double crf = Decayed(BitsToDouble(m.ext[0]), m.ext[1], m.now);
    m.ext[0] = DoubleToBits(crf + 1.0);
    m.ext[1] = m.now;
  }

  double Priority(const Metadata& m) const override {
    return Decayed(BitsToDouble(m.ext[0]), m.ext[1], m.now);
  }

 private:
  static double Decayed(double crf, uint64_t from, uint64_t now) {
    const double age = now >= from ? static_cast<double>(now - from) : 0.0;
    return crf * std::exp2(-kLambda * age);
  }
};

// LIRS (approximated for sampling): objects are ranked by inter-reference
// recency (IRR), the gap between the last two accesses; cold objects seen
// once rank by plain recency. ext[0] stores the previous access timestamp.
// This is the standard sampling approximation of the LIRS stack.
class LirsPolicy : public CachePolicy {
 public:
  std::string name() const override { return "lirs"; }
  int extension_words() const override { return 1; }

  void Update(Metadata& m) const override { m.ext[0] = m.last_ts; }

  double Priority(const Metadata& m) const override {
    if (m.freq < 2) {
      return static_cast<double>(m.last_ts);  // HIR: rank by recency
    }
    const uint64_t irr = m.last_ts - m.ext[0];
    // LIR blocks (small IRR) get a large priority so they survive sampling.
    return static_cast<double>(m.last_ts) - static_cast<double>(irr);
  }
};

// Hyperbolic caching: priority = freq / age-in-cache (evict smallest rate).
class HyperbolicPolicy : public CachePolicy {
 public:
  std::string name() const override { return "hyperbolic"; }
  double Priority(const Metadata& m) const override {
    const double age =
        m.now > m.insert_ts ? static_cast<double>(m.now - m.insert_ts) : 1.0;
    return static_cast<double>(m.freq) * m.cost /
           (static_cast<double>(m.size_bytes) * age);
  }
};

}  // namespace ditto::policy

#endif  // DITTO_POLICIES_ALGORITHMS_H_
