// Precise (non-sampled) cache replacement structures used by server-centric
// baselines (CliqueMap's LRU list and LFU heap) and by the single-machine
// hit-rate simulator behind the motivation figures.
#ifndef DITTO_POLICIES_PRECISE_H_
#define DITTO_POLICIES_PRECISE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

namespace ditto::policy {

// O(1) exact LRU over uint64 keys (doubly-linked list + index).
class PreciseLru {
 public:
  bool Contains(uint64_t key) const { return index_.count(key) > 0; }
  size_t size() const { return order_.size(); }

  // Moves key to the MRU position; inserts it if absent.
  void Touch(uint64_t key);
  void Erase(uint64_t key);
  // Removes and returns the LRU key. Precondition: not empty.
  uint64_t EvictVictim();
  // Peeks the LRU key without removing it. Precondition: not empty.
  uint64_t Victim() const { return order_.back(); }

 private:
  std::list<uint64_t> order_;  // front = MRU, back = LRU
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

// Exact LFU with LRU tie-breaking (frequency buckets, O(1) amortized).
class PreciseLfu {
 public:
  bool Contains(uint64_t key) const { return index_.count(key) > 0; }
  size_t size() const { return index_.size(); }

  // Increments key's frequency; inserts with frequency 1 if absent.
  void Touch(uint64_t key);
  void Erase(uint64_t key);
  // Removes and returns the least-frequent (oldest on tie) key.
  uint64_t EvictVictim();
  uint64_t Victim() const { return buckets_.begin()->second.back(); }
  uint64_t FrequencyOf(uint64_t key) const;

 private:
  struct Where {
    uint64_t freq;
    std::list<uint64_t>::iterator it;
  };
  // freq -> keys at that freq (front = most recently touched).
  std::map<uint64_t, std::list<uint64_t>> buckets_;
  std::unordered_map<uint64_t, Where> index_;
};

// A complete exact cache (capacity in objects) with a pluggable precise
// policy, used by the hit-rate simulator and baseline servers.
enum class PrecisePolicyKind { kLru, kLfu, kFifo, kRandom };

class PreciseCache {
 public:
  PreciseCache(size_t capacity, PrecisePolicyKind kind, uint64_t seed = 1);

  // Processes one access. Returns true on hit; on miss the key is admitted
  // (evicting a victim first if at capacity).
  bool Access(uint64_t key);
  bool Contains(uint64_t key) const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Changes capacity; evicts immediately if shrinking.
  void Resize(size_t capacity);

  uint64_t hits = 0;
  uint64_t misses = 0;
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

 private:
  void EvictOne();

  size_t capacity_;
  PrecisePolicyKind kind_;
  PreciseLru lru_;
  PreciseLfu lfu_;
  std::list<uint64_t> fifo_order_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> fifo_index_;
  std::unordered_map<uint64_t, size_t> random_index_;  // key -> position in random_keys_
  std::vector<uint64_t> random_keys_;
  uint64_t rng_state_;
};

}  // namespace ditto::policy

#endif  // DITTO_POLICIES_PRECISE_H_
