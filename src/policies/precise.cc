#include "policies/precise.h"

#include <cassert>
#include <vector>

#include "common/hash.h"

namespace ditto::policy {

void PreciseLru::Touch(uint64_t key) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    order_.erase(it->second);
  }
  order_.push_front(key);
  index_[key] = order_.begin();
}

void PreciseLru::Erase(uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return;
  }
  order_.erase(it->second);
  index_.erase(it);
}

uint64_t PreciseLru::EvictVictim() {
  assert(!order_.empty());
  const uint64_t key = order_.back();
  order_.pop_back();
  index_.erase(key);
  return key;
}

void PreciseLfu::Touch(uint64_t key) {
  const auto it = index_.find(key);
  uint64_t freq = 1;
  if (it != index_.end()) {
    freq = it->second.freq + 1;
    auto& old_bucket = buckets_[it->second.freq];
    old_bucket.erase(it->second.it);
    if (old_bucket.empty()) {
      buckets_.erase(it->second.freq);
    }
  }
  auto& bucket = buckets_[freq];
  bucket.push_front(key);
  index_[key] = Where{freq, bucket.begin()};
}

void PreciseLfu::Erase(uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return;
  }
  auto& bucket = buckets_[it->second.freq];
  bucket.erase(it->second.it);
  if (bucket.empty()) {
    buckets_.erase(it->second.freq);
  }
  index_.erase(it);
}

uint64_t PreciseLfu::EvictVictim() {
  assert(!buckets_.empty());
  auto& [freq, bucket] = *buckets_.begin();
  const uint64_t key = bucket.back();
  bucket.pop_back();
  if (bucket.empty()) {
    buckets_.erase(freq);
  }
  index_.erase(key);
  return key;
}

uint64_t PreciseLfu::FrequencyOf(uint64_t key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.freq;
}

PreciseCache::PreciseCache(size_t capacity, PrecisePolicyKind kind, uint64_t seed)
    : capacity_(capacity), kind_(kind), rng_state_(Mix64(seed | 1)) {}

bool PreciseCache::Contains(uint64_t key) const {
  switch (kind_) {
    case PrecisePolicyKind::kLru:
      return lru_.Contains(key);
    case PrecisePolicyKind::kLfu:
      return lfu_.Contains(key);
    case PrecisePolicyKind::kFifo:
      return fifo_index_.count(key) > 0;
    case PrecisePolicyKind::kRandom:
      return random_index_.count(key) > 0;
  }
  return false;
}

size_t PreciseCache::size() const {
  switch (kind_) {
    case PrecisePolicyKind::kLru:
      return lru_.size();
    case PrecisePolicyKind::kLfu:
      return lfu_.size();
    case PrecisePolicyKind::kFifo:
      return fifo_index_.size();
    case PrecisePolicyKind::kRandom:
      return random_index_.size();
  }
  return 0;
}

void PreciseCache::EvictOne() {
  switch (kind_) {
    case PrecisePolicyKind::kLru:
      lru_.EvictVictim();
      break;
    case PrecisePolicyKind::kLfu:
      lfu_.EvictVictim();
      break;
    case PrecisePolicyKind::kFifo: {
      const uint64_t key = fifo_order_.back();
      fifo_order_.pop_back();
      fifo_index_.erase(key);
      break;
    }
    case PrecisePolicyKind::kRandom: {
      rng_state_ = Mix64(rng_state_);
      const size_t pos = rng_state_ % random_keys_.size();
      const uint64_t key = random_keys_[pos];
      random_keys_[pos] = random_keys_.back();
      random_index_[random_keys_[pos]] = pos;
      random_keys_.pop_back();
      random_index_.erase(key);
      break;
    }
  }
}

bool PreciseCache::Access(uint64_t key) {
  const bool hit = Contains(key);
  if (hit) {
    hits++;
  } else {
    misses++;
    while (size() >= capacity_ && capacity_ > 0) {
      EvictOne();
    }
    if (capacity_ == 0) {
      return false;
    }
  }
  switch (kind_) {
    case PrecisePolicyKind::kLru:
      lru_.Touch(key);
      break;
    case PrecisePolicyKind::kLfu:
      lfu_.Touch(key);
      break;
    case PrecisePolicyKind::kFifo:
      if (!hit) {
        fifo_order_.push_front(key);
        fifo_index_[key] = fifo_order_.begin();
      }
      break;
    case PrecisePolicyKind::kRandom:
      if (!hit) {
        random_keys_.push_back(key);
        random_index_[key] = random_keys_.size() - 1;
      }
      break;
  }
  return hit;
}

void PreciseCache::Resize(size_t capacity) {
  capacity_ = capacity;
  while (size() > capacity_) {
    EvictOne();
  }
}

}  // namespace ditto::policy
