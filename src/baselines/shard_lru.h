// Shard-LRU baseline (paper §5.1) and the KVC / KVC-S / KVS microbenchmark
// structures (paper Figure 2).
//
// A straightforward DM cache: clients index objects through the hash table
// and maintain lock-protected LRU lists in the memory pool with one-sided
// verbs. The list maintenance on every access costs, under the lock:
//   CAS (acquire) + READ (list node) + 2 WRITE (splice) + WRITE (release),
// and failed lock acquisitions burn an RDMA_CAS each, then back off 5 us.
//
// Lock contention is modelled with a per-shard virtual-time FCFS queue: the
// queueing delay a client sees is converted into the number of failed CAS
// attempts it would have issued (delay / (backoff + CAS RTT)), and those
// messages are charged to the NIC — which is exactly the paper's observed
// collapse mode ("the RNIC of the MN is overwhelmed by useless RDMA_CASes").
// Victim selection is mirrored host-side (the shadow is only read while the
// shard lock is logically held, so it is consistent with a real remote list).
#ifndef DITTO_BASELINES_SHARD_LRU_H_
#define DITTO_BASELINES_SHARD_LRU_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "dm/allocator.h"
#include "dm/pool.h"
#include "hashtable/hash_table.h"
#include "policies/precise.h"
#include "rdma/nic_model.h"
#include "rdma/verbs.h"
#include "sim/client_iface.h"

namespace ditto::baselines {

struct ShardLruConfig {
  int num_shards = 32;           // 1 = KVC, 32 = KVC-S / Shard-LRU
  bool maintain_list = true;     // false = KVS (no caching structure)
  double backoff_us = 5.0;       // sleep after a failed lock CAS
  uint64_t capacity_objects = 0; // 0 = pool capacity
};

// Shared state: the shard locks' queueing servers plus the host-side shadow
// of each shard's LRU list. One instance per pool.
class ShardLruDirectory {
 public:
  ShardLruDirectory(dm::MemoryPool* pool, const ShardLruConfig& config);

  const ShardLruConfig& config() const { return config_; }
  uint64_t capacity() const { return capacity_.load(std::memory_order_relaxed); }
  // Elastic scaling: publishes a new aggregate capacity. Enforcement (the
  // evict-down) is performed by the clients, which own the verbs.
  void SetCapacity(uint64_t capacity) {
    capacity_.store(capacity, std::memory_order_relaxed);
  }
  uint64_t total_objects() const { return total_objects_.load(std::memory_order_relaxed); }

 private:
  friend class ShardLruClient;

  struct Shard {
    rdma::QueueingServer lock_queue;
    Mutex mu;
    // The shadow LRU list and the location index are only consistent with
    // the remote list while the shard lock is held; WithShardLock holds mu
    // around its body, and the bodies state that fact with mu.AssertHeld()
    // (the analysis cannot see through the std::function indirection).
    policy::PreciseLru lru GUARDED_BY(mu);
    // hash -> {slot_addr, obj_addr, blocks} so evictions can clear the slot.
    struct Loc {
      uint64_t slot_addr;
      uint64_t obj_addr;
      int blocks;
    };
    std::unordered_map<uint64_t, Loc> index GUARDED_BY(mu);
  };

  ShardLruConfig config_;
  std::atomic<uint64_t> capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> total_objects_{0};
};

class ShardLruClient : public sim::CacheClient {
 public:
  ShardLruClient(dm::MemoryPool* pool, ShardLruDirectory* dir, rdma::ClientContext* ctx);

  // Typed batch dispatch; kMultiGet runs replay as sequential lookups (the
  // baseline has no doorbell-chained metadata path to fuse).
  void ExecuteBatch(std::span<const sim::CacheOp> ops, sim::CacheResult* results) override;

  rdma::ClientContext& ctx() override { return *ctx_; }
  sim::ClientCounters counters() const override { return counters_; }
  void ResetForMeasurement() override;

  // Elastic scaling: publishes the new aggregate capacity through the shared
  // directory and evicts LRU victims round-robin across the shards until the
  // cached count fits (no-op on expand). Idempotent across clients.
  bool ResizeCapacity(uint64_t capacity_objects) override;

  uint64_t lock_retries() const { return lock_retries_; }

 private:
  bool DoGet(std::string_view key, std::string* value);
  // Returns false if the store was dropped (no space, bucket full).
  bool DoSet(std::string_view key, std::string_view value, uint64_t ttl_ticks);
  bool DoDelete(std::string_view key);
  bool DoExpire(std::string_view key, uint64_t ttl_ticks);

  // Removes `hash`'s entry from its shard's list/index (under the shard
  // lock), clears the slot, and frees the blocks. Returns true if removed.
  bool RemoveEntry(uint64_t hash);

  // Evicts the LRU victim of shard `shard_sel % num_shards` under its lock,
  // clearing the slot and freeing the blocks. Returns true if one went.
  bool EvictShardVictim(uint64_t shard_sel);

  // Performs the locked critical section around `body`, charging lock
  // acquisition (with retries), the body's verbs, and the release.
  void WithShardLock(uint64_t hash, const std::function<void()>& body);

  // List maintenance verbs under the lock: READ node + 2 WRITE splices.
  void ChargeListSplice();

  dm::MemoryPool* pool_;
  ShardLruDirectory* dir_;
  rdma::ClientContext* ctx_;
  rdma::Verbs verbs_;
  ht::HashTable table_;
  dm::RemoteAllocator alloc_;
  sim::ClientCounters counters_;
  uint64_t lock_retries_ = 0;
  std::vector<uint8_t> object_buf_;
  std::vector<ht::SlotView> bucket_buf_;
  std::vector<uint8_t> encode_buf_;
};

}  // namespace ditto::baselines

#endif  // DITTO_BASELINES_SHARD_LRU_H_
