#include "baselines/cliquemap.h"

#include <cassert>
#include <cstring>

#include "common/hash.h"
#include "core/object.h"

namespace ditto::baselines {
namespace {

struct SetRequestHeader {
  uint32_t val_len;
  uint16_t key_len;
  uint16_t reserved;
  uint64_t expiry_tick;  // absolute tick; 0 = never expires
};
static_assert(sizeof(SetRequestHeader) == 16);

// Set response: status byte + little-endian count of evictions the Set
// caused, so clients can surface server-side eviction pressure.
std::string SetResponse(bool ok, uint64_t evictions) {
  std::string response(9, '\0');
  response[0] = ok ? '\1' : '\0';
  std::memcpy(response.data() + 1, &evictions, 8);
  return response;
}

}  // namespace

CliqueMapServer::CliqueMapServer(dm::MemoryPool* pool, const CliqueMapConfig& config)
    : pool_(pool),
      config_(config),
      capacity_(config.capacity_objects != 0 ? config.capacity_objects
                                             : pool->capacity_objects()),
      bump_(pool->heap_addr() + dm::kBlockBytes),
      free_runs_(dm::kMaxRunBlocks + 1) {
  // The handlers keep their string-returning form (server-side cost is
  // modelled by CpuModel, not allocator traffic); the adaptor writes into the
  // dispatcher-provided caller buffer.
  pool->RegisterRpc(kRpcCmSet, [this](std::string_view request, std::string* response) {
    *response = HandleSet(request);
  });
  pool->RegisterRpc(kRpcCmSync, [this](std::string_view request, std::string* response) {
    *response = HandleSync(request);
  });
  pool->RegisterRpc(kRpcCmDelete, [this](std::string_view request, std::string* response) {
    *response = HandleDelete(request);
  });
  pool->RegisterRpc(kRpcCmExpire, [this](std::string_view request, std::string* response) {
    *response = HandleExpire(request);
  });
  pool->RegisterRpc(kRpcCmResize, [this](std::string_view request, std::string* response) {
    *response = HandleResize(request);
  });
}

uint64_t CliqueMapServer::size() const {
  MutexLock lock(&mu_);
  return index_.size();
}

uint64_t CliqueMapServer::capacity() const {
  MutexLock lock(&mu_);
  return capacity_;
}

std::string CliqueMapServer::HandleResize(std::string_view request) {
  if (request.size() != 8) {
    return SetResponse(false, 0);  // malformed: reject
  }
  uint64_t capacity = 0;
  std::memcpy(&capacity, request.data(), 8);
  if (capacity == 0) {
    return SetResponse(false, 0);
  }
  MutexLock lock(&mu_);
  capacity_ = capacity;
  uint64_t evictions = 0;
  while (index_.size() > capacity_) {
    EvictOneLocked();
    evictions++;
  }
  return SetResponse(true, evictions);
}

uint64_t CliqueMapServer::AllocBlocksLocked(int blocks) {
  if (!free_runs_[blocks].empty()) {
    const uint64_t addr = free_runs_[blocks].back();
    free_runs_[blocks].pop_back();
    return addr;
  }
  const uint64_t want = static_cast<uint64_t>(blocks) * dm::kBlockBytes;
  if (bump_ + want > pool_->heap_addr() + pool_->heap_bytes()) {
    return 0;
  }
  const uint64_t addr = bump_;
  bump_ += want;
  return addr;
}

void CliqueMapServer::FreeBlocksLocked(uint64_t addr, int blocks) {
  free_runs_[blocks].push_back(addr);
}

void CliqueMapServer::TouchLocked(uint64_t hash, uint64_t count) {
  if (index_.count(hash) == 0) {
    return;  // access info for an already-evicted object
  }
  if (config_.policy == CmPolicy::kLru) {
    lru_.Touch(hash);
  } else {
    for (uint64_t i = 0; i < count; ++i) {
      lfu_.Touch(hash);
    }
  }
}

void CliqueMapServer::EvictOneLocked() {
  uint64_t victim;
  if (config_.policy == CmPolicy::kLru) {
    victim = lru_.EvictVictim();
  } else {
    victim = lfu_.EvictVictim();
  }
  const auto it = index_.find(victim);
  assert(it != index_.end());
  // Clear the slot so client RMA Gets observe the eviction.
  pool_->node().arena().WriteU64(it->second.slot_addr + ht::kAtomicOff, 0);
  FreeBlocksLocked(it->second.obj_addr, it->second.blocks);
  index_.erase(it);
}

std::string CliqueMapServer::HandleSet(std::string_view request) {
  // Validate the payload size before decoding: the fixed header must be
  // whole (the unchecked memcpy here was an out-of-bounds read for short
  // payloads) and the declared key/value lengths must match the bytes that
  // actually arrived — a header promising more than the payload holds would
  // otherwise silently cache a truncated object.
  if (request.size() < sizeof(SetRequestHeader)) {
    return SetResponse(false, 0);
  }
  SetRequestHeader header;
  std::memcpy(&header, request.data(), sizeof(header));
  if (request.size() != sizeof(header) + header.key_len + header.val_len) {
    return SetResponse(false, 0);
  }
  const std::string_view key = request.substr(sizeof(header), header.key_len);
  const std::string_view value = request.substr(sizeof(header) + header.key_len, header.val_len);
  const uint64_t hash = HashKey(key);
  const uint8_t fp = Fingerprint(hash);

  MutexLock lock(&mu_);
  const int blocks = core::ObjectBlocks(key.size(), value.size(), 0);
  auto it = index_.find(hash);
  if (it != index_.end()) {
    // Update in place: rewrite the object (reallocate if the size changed).
    FreeBlocksLocked(it->second.obj_addr, it->second.blocks);
    const uint64_t addr = AllocBlocksLocked(blocks);
    if (addr == 0) {
      return SetResponse(false, 0);
    }
    std::vector<uint8_t> buf;
    core::EncodeObject(key, value, nullptr, 0, &buf, header.expiry_tick);
    pool_->node().arena().Write(addr, buf.data(), buf.size());
    pool_->node().arena().WriteU64(it->second.slot_addr + ht::kAtomicOff,
                                   ht::PackAtomic(fp, static_cast<uint8_t>(blocks), addr));
    it->second.obj_addr = addr;
    it->second.blocks = blocks;
    TouchLocked(hash, 1);
    return SetResponse(true, 0);
  }

  uint64_t evictions = 0;
  while (index_.size() >= capacity_ && !index_.empty()) {
    EvictOneLocked();
    evictions++;
  }
  uint64_t addr = AllocBlocksLocked(blocks);
  while (addr == 0 && !index_.empty()) {
    // Heap fragmentation/pressure: evict until an allocation fits.
    EvictOneLocked();
    evictions++;
    addr = AllocBlocksLocked(blocks);
  }
  if (addr == 0) {
    return SetResponse(false, evictions);
  }
  return FinishInsertLocked(addr, key, value, hash, fp, blocks, header.expiry_tick,
                            &evictions);
}

std::string CliqueMapServer::HandleDelete(std::string_view request) {
  const uint64_t hash = HashKey(request);
  MutexLock lock(&mu_);
  if (index_.count(hash) == 0) {
    return std::string(1, '\0');
  }
  EvictSpecificLocked(hash);
  return std::string(1, '\1');
}

std::string CliqueMapServer::HandleExpire(std::string_view request) {
  // Request: expiry_tick u64 + key bytes. A payload shorter than the expiry
  // word is malformed (the unchecked memcpy read out of bounds and the
  // substr(8) below threw std::out_of_range, taking the whole server down).
  if (request.size() < 8) {
    return std::string(1, '\0');
  }
  uint64_t expiry = 0;
  std::memcpy(&expiry, request.data(), 8);
  const std::string_view key = request.substr(8);
  const uint64_t hash = HashKey(key);
  MutexLock lock(&mu_);
  const auto it = index_.find(hash);
  if (it == index_.end()) {
    return std::string(1, '\0');
  }
  pool_->node().arena().WriteU64(it->second.obj_addr + core::kExpiryOff, expiry);
  return std::string(1, '\1');
}

void CliqueMapServer::EvictSpecificLocked(uint64_t hash) {
  const auto it = index_.find(hash);
  if (it == index_.end()) {
    return;
  }
  lru_.Erase(hash);
  lfu_.Erase(hash);
  pool_->node().arena().WriteU64(it->second.slot_addr + ht::kAtomicOff, 0);
  FreeBlocksLocked(it->second.obj_addr, it->second.blocks);
  index_.erase(it);
}

std::string CliqueMapServer::FinishInsertLocked(uint64_t addr, std::string_view key,
                                                std::string_view value, uint64_t hash,
                                                uint8_t fp, int blocks, uint64_t expiry_tick,
                                                uint64_t* evictions) {
  std::vector<uint8_t> buf;
  core::EncodeObject(key, value, nullptr, 0, &buf, expiry_tick);
  rdma::MemoryArena& arena = pool_->node().arena();
  arena.Write(addr, buf.data(), buf.size());

  // Find a slot in the key's bucket; if the bucket is full, evict one of its
  // occupants (the index stays consistent because the server is the only
  // writer of the table).
  const uint64_t bucket = hash % pool_->num_buckets();
  const int slots = pool_->slots_per_bucket();
  int target = -1;
  for (int sweep = 0; sweep < 2 && target < 0; ++sweep) {
    for (int i = 0; i < slots; ++i) {
      const uint64_t slot_addr = pool_->table_addr() + (bucket * slots + i) * ht::kSlotBytes;
      if (arena.ReadU64(slot_addr + ht::kAtomicOff) == 0) {
        target = i;
        break;
      }
    }
    if (target < 0) {
      // Evict the first occupant of the bucket to make room.
      const uint64_t first_slot = pool_->table_addr() + bucket * slots * ht::kSlotBytes;
      EvictSpecificLocked(arena.ReadU64(first_slot + ht::kHashOff));
      (*evictions)++;
    }
  }
  if (target < 0) {
    FreeBlocksLocked(addr, blocks);
    return SetResponse(false, *evictions);
  }
  const uint64_t slot_addr = pool_->table_addr() + (bucket * slots + target) * ht::kSlotBytes;
  arena.WriteU64(slot_addr + ht::kHashOff, hash);
  arena.WriteU64(slot_addr + ht::kAtomicOff,
                 ht::PackAtomic(fp, static_cast<uint8_t>(blocks), addr));

  index_[hash] = Entry{slot_addr, addr, blocks};
  if (config_.policy == CmPolicy::kLru) {
    lru_.Touch(hash);
  } else {
    lfu_.Touch(hash);
  }
  return SetResponse(true, *evictions);
}

std::string CliqueMapServer::HandleSync(std::string_view request) {
  // Request: repeated {hash u64, count u64}. Validate the size before
  // decoding: a ragged payload means the client and server disagree about
  // the record layout, so reject it instead of merging a truncated prefix.
  if (request.size() % 16 != 0) {
    return std::string(1, '\0');
  }
  MutexLock lock(&mu_);
  const size_t entries = request.size() / 16;
  for (size_t i = 0; i < entries; ++i) {
    uint64_t hash;
    uint64_t count;
    std::memcpy(&hash, request.data() + i * 16, 8);
    std::memcpy(&count, request.data() + i * 16 + 8, 8);
    TouchLocked(hash, count);
  }
  return std::string(1, '\1');
}

CliqueMapClient::CliqueMapClient(dm::MemoryPool* pool, CliqueMapServer* server,
                                 rdma::ClientContext* ctx)
    : pool_(pool), server_(server), ctx_(ctx), verbs_(&pool->node(), ctx), table_(pool, &verbs_) {}

void CliqueMapClient::ExecuteBatch(std::span<const sim::CacheOp> ops,
                                   sim::CacheResult* results) {
  for (size_t i = 0; i < ops.size(); ++i) {
    sim::DispatchSingleOp(
        *ctx_, ops[i], &results[i],
        [this](std::string_view key, std::string* value) { return DoGet(key, value); },
        [this](std::string_view key, std::string_view value, uint64_t ttl) {
          return DoSet(key, value, ttl);
        },
        [this](std::string_view key) { return DoDelete(key); },
        [this](std::string_view key, uint64_t ttl) { return DoExpire(key, ttl); });
  }
}

bool CliqueMapClient::DoGet(std::string_view key, std::string* value) {
  counters_.gets++;
  const uint64_t hash = HashKey(key);
  const uint8_t fp = Fingerprint(hash);
  const uint64_t bucket = table_.BucketIndexFor(hash);
  table_.ReadBucket(bucket, &bucket_buf_);
  for (int i = 0; i < table_.slots_per_bucket(); ++i) {
    const ht::SlotView& slot = bucket_buf_[i];
    if (!slot.IsObject() || slot.fp() != fp || slot.hash != hash) {
      continue;
    }
    const size_t bytes = static_cast<size_t>(slot.size_blocks()) * dm::kBlockBytes;
    object_buf_.resize(bytes);
    verbs_.Read(slot.pointer(), object_buf_.data(), bytes);
    core::DecodedObject obj;
    if (!core::DecodeObject(object_buf_.data(), bytes, &obj) || obj.key != key) {
      continue;
    }
    if (obj.ExpiredAt(pool_->clock().Tick())) {
      // Lazy expiry: ask the server (the only writer of its structures) to
      // drop the dead object, then report a miss.
      verbs_.Rpc(kRpcCmDelete, key, &rpc_response_, server_->config().set_service_us);
      counters_.expired++;
      counters_.misses++;
      return false;
    }
    if (value != nullptr) {
      value->assign(obj.value);
    }
    RecordAccess(hash);
    counters_.hits++;
    return true;
  }
  counters_.misses++;
  return false;
}

bool CliqueMapClient::DoSet(std::string_view key, std::string_view value, uint64_t ttl_ticks) {
  counters_.sets++;
  SetRequestHeader header{static_cast<uint32_t>(value.size()), static_cast<uint16_t>(key.size()),
                          0, ttl_ticks == 0 ? 0 : pool_->clock().Tick() + ttl_ticks};
  rpc_request_.resize(sizeof(header) + key.size() + value.size());
  std::memcpy(rpc_request_.data(), &header, sizeof(header));
  std::memcpy(rpc_request_.data() + sizeof(header), key.data(), key.size());
  std::memcpy(rpc_request_.data() + sizeof(header) + key.size(), value.data(), value.size());
  verbs_.Rpc(kRpcCmSet, rpc_request_, &rpc_response_, server_->config().set_service_us);
  if (rpc_response_.size() >= 9) {
    uint64_t evictions = 0;
    std::memcpy(&evictions, rpc_response_.data() + 1, 8);
    counters_.evictions += evictions;
  }
  return !rpc_response_.empty() && rpc_response_[0] == '\1';
}

bool CliqueMapClient::DoDelete(std::string_view key) {
  verbs_.Rpc(kRpcCmDelete, key, &rpc_response_, server_->config().set_service_us);
  const bool deleted = !rpc_response_.empty() && rpc_response_[0] == '\1';
  if (deleted) {
    counters_.deletes++;
  }
  return deleted;
}

bool CliqueMapClient::DoExpire(std::string_view key, uint64_t ttl_ticks) {
  const uint64_t expiry = ttl_ticks == 0 ? 0 : pool_->clock().Tick() + ttl_ticks;
  rpc_request_.resize(8 + key.size());
  std::memcpy(rpc_request_.data(), &expiry, 8);
  std::memcpy(rpc_request_.data() + 8, key.data(), key.size());
  verbs_.Rpc(kRpcCmExpire, rpc_request_, &rpc_response_, server_->config().set_service_us);
  return !rpc_response_.empty() && rpc_response_[0] == '\1';
}

bool CliqueMapClient::ResizeCapacity(uint64_t capacity_objects) {
  std::string request(8, '\0');
  std::memcpy(request.data(), &capacity_objects, 8);
  const std::string response =
      verbs_.Rpc(kRpcCmResize, request, server_->config().set_service_us);
  if (response.size() >= 9) {
    uint64_t evictions = 0;
    std::memcpy(&evictions, response.data() + 1, 8);
    counters_.evictions += evictions;
    // The shrink's precise evictions run on the MN CPU; their count is only
    // known from the response, so the per-entry structure cost (same rate as
    // the access-info merge) is charged to the caller's clock after the fact
    // — otherwise a 100k-object evict-down would look as cheap as one Set.
    if (evictions > 0) {
      ctx_->clock().AdvanceUs(server_->config().sync_service_us_per_entry *
                              static_cast<double>(evictions));
    }
  }
  return !response.empty() && response[0] == '\1';
}

void CliqueMapClient::RecordAccess(uint64_t hash) {
  access_buffer_[hash]++;
  buffered_++;
  if (buffered_ >= server_->config().sync_every) {
    SyncAccessInfo();
  }
}

void CliqueMapClient::SyncAccessInfo() {
  if (access_buffer_.empty()) {
    return;
  }
  rpc_request_.resize(access_buffer_.size() * 16);
  size_t i = 0;
  for (const auto& [hash, count] : access_buffer_) {
    std::memcpy(rpc_request_.data() + i * 16, &hash, 8);
    std::memcpy(rpc_request_.data() + i * 16 + 8, &count, 8);
    ++i;
  }
  const double service_us =
      server_->config().sync_service_us_per_entry * static_cast<double>(access_buffer_.size());
  verbs_.Rpc(kRpcCmSync, rpc_request_, &rpc_response_, service_us);
  access_buffer_.clear();
  buffered_ = 0;
}

void CliqueMapClient::Finish() { SyncAccessInfo(); }

void CliqueMapClient::ResetForMeasurement() {
  counters_ = sim::ClientCounters{};
  ctx_->op_hist().Reset();
}

}  // namespace ditto::baselines
