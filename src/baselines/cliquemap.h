// CliqueMap baseline (Singhvi et al., SIGCOMM'21), reimplemented from its
// paper as the authors of Ditto did: Gets are client-side RMA (index READ +
// object READ); Sets are RPCs executed by the memory-node CPU, which also
// maintains a precise LRU list or LFU structure and evicts when the cache is
// at capacity. Clients buffer access information locally and periodically
// ship it to the server, whose CPU merges it into the caching structure
// (this merge is what saturates the weak MN CPU on read-heavy workloads).
// Replication and fault tolerance are omitted, as in the paper's comparison.
#ifndef DITTO_BASELINES_CLIQUEMAP_H_
#define DITTO_BASELINES_CLIQUEMAP_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "dm/pool.h"
#include "hashtable/hash_table.h"
#include "policies/precise.h"
#include "rdma/verbs.h"
#include "sim/client_iface.h"

namespace ditto::baselines {

enum class CmPolicy { kLru, kLfu };

struct CliqueMapConfig {
  CmPolicy policy = CmPolicy::kLru;
  uint64_t capacity_objects = 0;  // 0 = pool capacity
  int sync_every = 100;           // accesses buffered before the access-info RPC
  double set_service_us = 2.0;    // MN CPU cost of one Set (alloc+index+structure)
  double sync_service_us_per_entry = 0.3;  // MN CPU cost of merging one access record
};

// RPC ids (distinct from the dm:: ones).
inline constexpr uint32_t kRpcCmSet = 10;
inline constexpr uint32_t kRpcCmSync = 11;
inline constexpr uint32_t kRpcCmDelete = 12;
inline constexpr uint32_t kRpcCmExpire = 13;
// Elastic scaling: the MN CPU rewrites its capacity and — being the only
// writer of the caching structure — evicts down precisely on shrink.
inline constexpr uint32_t kRpcCmResize = 14;

// Host-side server. Owns the index layout inside the pool's arena (so client
// Gets can RMA-read it) and the precise caching structure. Construct once.
class CliqueMapServer {
 public:
  CliqueMapServer(dm::MemoryPool* pool, const CliqueMapConfig& config);

  uint64_t size() const;
  uint64_t capacity() const;
  const CliqueMapConfig& config() const { return config_; }

 private:
  friend class CliqueMapClient;

  std::string HandleSet(std::string_view request);
  std::string HandleSync(std::string_view request);
  std::string HandleDelete(std::string_view request);
  std::string HandleExpire(std::string_view request);
  std::string HandleResize(std::string_view request);

  // Precondition: mu_ held (machine-checked via REQUIRES under clang).
  void TouchLocked(uint64_t hash, uint64_t count) REQUIRES(mu_);
  void EvictOneLocked() REQUIRES(mu_);
  void EvictSpecificLocked(uint64_t hash) REQUIRES(mu_);
  uint64_t AllocBlocksLocked(int blocks) REQUIRES(mu_);
  void FreeBlocksLocked(uint64_t addr, int blocks) REQUIRES(mu_);
  std::string FinishInsertLocked(uint64_t addr, std::string_view key, std::string_view value,
                                 uint64_t hash, uint8_t fp, int blocks, uint64_t expiry_tick,
                                 uint64_t* evictions) REQUIRES(mu_);

  dm::MemoryPool* pool_;
  CliqueMapConfig config_;

  mutable Mutex mu_;
  uint64_t capacity_ GUARDED_BY(mu_);
  // hash -> (bucket slot index in table, object addr, blocks)
  struct Entry {
    uint64_t slot_addr;
    uint64_t obj_addr;
    int blocks;
  };
  std::unordered_map<uint64_t, Entry> index_ GUARDED_BY(mu_);
  policy::PreciseLru lru_ GUARDED_BY(mu_);
  policy::PreciseLfu lfu_ GUARDED_BY(mu_);
  // Host-managed heap: bump + per-run-length freelists.
  uint64_t bump_ GUARDED_BY(mu_);
  std::vector<std::vector<uint64_t>> free_runs_ GUARDED_BY(mu_);
};

class CliqueMapClient : public sim::CacheClient {
 public:
  CliqueMapClient(dm::MemoryPool* pool, CliqueMapServer* server, rdma::ClientContext* ctx);

  // Typed batch dispatch. Gets stay client-side RMA; Set/Delete/Expire are
  // RPCs to the memory-node CPU. kMultiGet runs replay as sequential RMA
  // lookups (the access-info sync is already client-buffered).
  void ExecuteBatch(std::span<const sim::CacheOp> ops, sim::CacheResult* results) override;

  rdma::ClientContext& ctx() override { return *ctx_; }
  sim::ClientCounters counters() const override { return counters_; }
  void Finish() override;
  void ResetForMeasurement() override;

  // Elastic scaling: one RPC; the server CPU evicts down precisely on shrink
  // (evictions are reported back and surface in counters()).
  bool ResizeCapacity(uint64_t capacity_objects) override;

 private:
  bool DoGet(std::string_view key, std::string* value);
  // Returns false if the server dropped the store.
  bool DoSet(std::string_view key, std::string_view value, uint64_t ttl_ticks);
  bool DoDelete(std::string_view key);
  bool DoExpire(std::string_view key, uint64_t ttl_ticks);

  void RecordAccess(uint64_t hash);
  void SyncAccessInfo();

  dm::MemoryPool* pool_;
  CliqueMapServer* server_;
  rdma::ClientContext* ctx_;
  rdma::Verbs verbs_;
  ht::HashTable table_;
  sim::ClientCounters counters_;
  std::unordered_map<uint64_t, uint64_t> access_buffer_;  // hash -> count
  int buffered_ = 0;
  std::vector<uint8_t> object_buf_;
  std::vector<ht::SlotView> bucket_buf_;
  // RPC scratch reused across ops (Set/Delete/Expire/Sync sit on the hot
  // path; steady-state RPCs reuse these buffers' capacity).
  std::string rpc_request_;
  std::string rpc_response_;
};

}  // namespace ditto::baselines

#endif  // DITTO_BASELINES_CLIQUEMAP_H_
