// RedisModel: a performance model of a sharded monolithic-server caching
// cluster (ElastiCache-style Redis deployment) used by the elasticity
// experiments (paper Figures 1, 13 and 15).
//
// Each Redis node is one CPU core serving one data shard; keys are hashed to
// shards. Under a skewed workload, the cluster's throughput is bounded by
// its hottest shard. Scaling the node count triggers resharding: keys move
// at a bounded migration rate, consuming CPU and network on the involved
// shards, which reproduces the paper's measured throughput dip, latency
// bump, and minutes-long delay before the new capacity (or reclaimed
// resources) takes effect.
#ifndef DITTO_BASELINES_REDIS_MODEL_H_
#define DITTO_BASELINES_REDIS_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "policies/precise.h"
#include "sim/client_iface.h"

namespace ditto::baselines {

struct RedisModelConfig {
  int initial_shards = 32;
  double per_shard_mops = 0.16;       // single Redis core service rate
  uint64_t num_keys = 10'000'000;
  double zipf_theta = 0.99;
  size_t object_bytes = 256;
  // Redis slot migration is key-rate bound (per-key RESTORE round trips),
  // not bandwidth bound: ~500 keys/s per participating shard reproduces the
  // paper's ~5-minute migration of 5M moved 256-B pairs across 32 shards.
  double migration_keys_per_s_per_shard = 500.0;
  double migration_cpu_overhead = 0.10;  // CPU fraction consumed while migrating
  double base_p99_us = 180.0;
  double base_p50_us = 85.0;
};

struct RedisSample {
  double time_s;
  double throughput_mops;
  double p50_us;
  double p99_us;
  bool migrating;
  int active_shards;   // shards currently serving (old count until cutover)
  int target_shards;
};

class RedisModel {
 public:
  explicit RedisModel(const RedisModelConfig& config);

  // Requests a scale-out/in to `shards` nodes. Migration starts immediately;
  // the new shard map takes effect when migration completes.
  void Resize(int shards);

  // Capacity-oriented resize: a monolithic cluster scales memory by adding
  // or removing whole nodes, so a capacity target in objects maps to the
  // nearest whole shard count (ceil; at least one shard) and pays the same
  // migration before the new capacity takes effect.
  void ResizeToCapacityObjects(uint64_t capacity_objects, uint64_t objects_per_shard);

  // Advances the model by dt seconds and returns the interval's metrics.
  RedisSample Tick(double dt);

  // Seconds of migration remaining (0 when stable).
  double migration_remaining_s() const { return migration_remaining_s_; }
  int active_shards() const { return active_shards_; }

  // Steady-state cluster throughput with `shards` nodes under the skewed
  // workload (bounded by the hottest shard).
  double SteadyThroughputMops(int shards) const;

 private:
  // Fraction of total traffic hitting the hottest of `shards` shards.
  double HottestShardLoad(int shards) const;

  RedisModelConfig config_;
  int active_shards_;
  int target_shards_;
  double migration_remaining_s_ = 0.0;
  double time_s_ = 0.0;
  std::vector<double> top_key_weights_;  // zipf weights of the hottest keys
  double tail_weight_;                   // aggregate weight of all other keys
};

// ---------------------------------------------------------------------------
// RedisClusterClient: a functional client for the sharded monolithic-server
// cluster the analytic RedisModel above describes. Keys hash to single-core
// shards, each shard keeps an exact LRU over its resident keys, and every
// command pays one network round trip plus the shard CPU's per-op service
// time. kMultiGet runs are pipelined the way redis clients pipeline MGET:
// the whole run shares one round trip and pays only per-op service — the
// monolithic-server analogue of Ditto's doorbell-chained multi-get. TTLs are
// native (Redis EXPIRE): entries carry an expiry tick in the client's
// logical op counter and are reclaimed lazily on lookup.
// ---------------------------------------------------------------------------

struct RedisClusterConfig {
  int shards = 16;
  uint64_t capacity_objects = 10000;  // aggregate across the cluster
  double rtt_us = 100.0;              // client <-> cluster network round trip
  double service_us = 6.25;           // per-op shard CPU time (0.16 Mops/core)
  uint64_t partition_seed = 1;        // key -> shard routing seed
};

class RedisClusterClient : public sim::CacheClient {
 public:
  RedisClusterClient(rdma::ClientContext* ctx, const RedisClusterConfig& config);

  void ExecuteBatch(std::span<const sim::CacheOp> ops, sim::CacheResult* results) override;

  rdma::ClientContext& ctx() override { return *ctx_; }
  sim::ClientCounters counters() const override { return counters_; }
  void ResetForMeasurement() override;

  // Elastic scaling: re-splits the aggregate capacity over the fixed shard
  // set and evicts each shard's LRU tail on shrink. One admin round trip is
  // charged; evictions surface in counters().
  bool ResizeCapacity(uint64_t capacity_objects) override;

  uint64_t cached_objects() const;

 private:
  struct Entry {
    std::string value;
    uint64_t expiry_tick;  // in ops_issued_ ticks; 0 = never
  };
  struct Shard {
    std::unordered_map<uint64_t, Entry> map;
    policy::PreciseLru lru;
  };

  Shard& ShardFor(uint64_t hash);
  // One command's network + CPU charge. Pipelined ops skip the round trip.
  void ChargeOp(bool pipelined);
  bool GetInShard(Shard& shard, uint64_t hash, std::string* value);
  bool SetInShard(Shard& shard, uint64_t hash, std::string_view value, uint64_t ttl_ticks);
  bool DeleteInShard(Shard& shard, uint64_t hash);
  bool ExpireInShard(Shard& shard, uint64_t hash, uint64_t ttl_ticks);

  rdma::ClientContext* ctx_;
  RedisClusterConfig config_;
  std::vector<Shard> shards_;
  uint64_t capacity_per_shard_;
  uint64_t ops_issued_ = 0;  // the TTL tick domain
  sim::ClientCounters counters_;
};

}  // namespace ditto::baselines

#endif  // DITTO_BASELINES_REDIS_MODEL_H_
