#include "baselines/redis_model.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace ditto::baselines {
namespace {
// Number of head keys whose Zipf weights are tracked exactly; the remainder
// is treated as uniformly spread tail traffic.
constexpr int kTrackedKeys = 4096;
}  // namespace

RedisModel::RedisModel(const RedisModelConfig& config)
    : config_(config), active_shards_(config.initial_shards), target_shards_(config.initial_shards) {
  // Zipf weight of rank r is 1/r^theta / zeta(n). Approximate zeta(n) with
  // the head sum plus the integral of the tail.
  double head = 0.0;
  top_key_weights_.resize(kTrackedKeys);
  for (int r = 1; r <= kTrackedKeys; ++r) {
    top_key_weights_[r - 1] = 1.0 / std::pow(static_cast<double>(r), config.zipf_theta);
    head += top_key_weights_[r - 1];
  }
  const double n = static_cast<double>(config.num_keys);
  const double tail_integral =
      (std::pow(n, 1.0 - config.zipf_theta) - std::pow(static_cast<double>(kTrackedKeys),
                                                       1.0 - config.zipf_theta)) /
      (1.0 - config.zipf_theta);
  const double zeta = head + tail_integral;
  for (double& w : top_key_weights_) {
    w /= zeta;
  }
  tail_weight_ = tail_integral / zeta;
}

double RedisModel::HottestShardLoad(int shards) const {
  // Hash the tracked hot keys to shards; add the uniform tail share.
  std::vector<double> load(shards, tail_weight_ / static_cast<double>(shards));
  for (int r = 0; r < kTrackedKeys; ++r) {
    const int shard = static_cast<int>(Mix64(static_cast<uint64_t>(r) + 0x5bd1e995) %
                                       static_cast<uint64_t>(shards));
    load[shard] += top_key_weights_[r];
  }
  return *std::max_element(load.begin(), load.end());
}

double RedisModel::SteadyThroughputMops(int shards) const {
  // The hottest shard saturates first: total_tput * hottest_load = shard rate.
  return config_.per_shard_mops / HottestShardLoad(shards);
}

void RedisModel::Resize(int shards) {
  if (shards == target_shards_) {
    return;
  }
  target_shards_ = shards;
  // Fraction of keys that change shards under consistent rehashing.
  const int from = active_shards_;
  const double moved_frac =
      std::abs(shards - from) / static_cast<double>(std::max(shards, from));
  const double moved_keys = moved_frac * static_cast<double>(config_.num_keys);
  // Migration proceeds in parallel across the participating shards but is
  // key-rate bound on each of them.
  const double movers = static_cast<double>(std::min(shards, from));
  migration_remaining_s_ = moved_keys / (config_.migration_keys_per_s_per_shard * movers);
}

RedisSample RedisModel::Tick(double dt) {
  time_s_ += dt;
  const bool migrating = migration_remaining_s_ > 0.0;
  if (migrating) {
    migration_remaining_s_ = std::max(0.0, migration_remaining_s_ - dt);
    if (migration_remaining_s_ == 0.0) {
      active_shards_ = target_shards_;  // cutover: new shard map live
    }
  }

  double tput = SteadyThroughputMops(active_shards_);
  double p99 = config_.base_p99_us;
  double p50 = config_.base_p50_us;
  if (migrating) {
    // CPU/network spent moving data: throughput dips, tail latency grows.
    tput *= 1.0 - config_.migration_cpu_overhead * 0.7;
    p99 *= 1.21;
    p50 *= 1.05;
  }
  return RedisSample{time_s_, tput, p50, p99, migrating, active_shards_, target_shards_};
}

}  // namespace ditto::baselines
