#include "baselines/redis_model.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace ditto::baselines {
namespace {
// Number of head keys whose Zipf weights are tracked exactly; the remainder
// is treated as uniformly spread tail traffic.
constexpr int kTrackedKeys = 4096;
}  // namespace

RedisModel::RedisModel(const RedisModelConfig& config)
    : config_(config), active_shards_(config.initial_shards), target_shards_(config.initial_shards) {
  // Zipf weight of rank r is 1/r^theta / zeta(n). Approximate zeta(n) with
  // the head sum plus the integral of the tail.
  double head = 0.0;
  top_key_weights_.resize(kTrackedKeys);
  for (int r = 1; r <= kTrackedKeys; ++r) {
    top_key_weights_[r - 1] = 1.0 / std::pow(static_cast<double>(r), config.zipf_theta);
    head += top_key_weights_[r - 1];
  }
  const double n = static_cast<double>(config.num_keys);
  const double tail_integral =
      (std::pow(n, 1.0 - config.zipf_theta) - std::pow(static_cast<double>(kTrackedKeys),
                                                       1.0 - config.zipf_theta)) /
      (1.0 - config.zipf_theta);
  const double zeta = head + tail_integral;
  for (double& w : top_key_weights_) {
    w /= zeta;
  }
  tail_weight_ = tail_integral / zeta;
}

double RedisModel::HottestShardLoad(int shards) const {
  // Hash the tracked hot keys to shards; add the uniform tail share.
  std::vector<double> load(shards, tail_weight_ / static_cast<double>(shards));
  for (int r = 0; r < kTrackedKeys; ++r) {
    const int shard = static_cast<int>(Mix64(static_cast<uint64_t>(r) + 0x5bd1e995) %
                                       static_cast<uint64_t>(shards));
    load[shard] += top_key_weights_[r];
  }
  return *std::max_element(load.begin(), load.end());
}

double RedisModel::SteadyThroughputMops(int shards) const {
  // The hottest shard saturates first: total_tput * hottest_load = shard rate.
  return config_.per_shard_mops / HottestShardLoad(shards);
}

void RedisModel::Resize(int shards) {
  if (shards == target_shards_) {
    return;
  }
  target_shards_ = shards;
  // Fraction of keys that change shards under consistent rehashing.
  const int from = active_shards_;
  const double moved_frac =
      std::abs(shards - from) / static_cast<double>(std::max(shards, from));
  const double moved_keys = moved_frac * static_cast<double>(config_.num_keys);
  // Migration proceeds in parallel across the participating shards but is
  // key-rate bound on each of them.
  const double movers = static_cast<double>(std::min(shards, from));
  migration_remaining_s_ = moved_keys / (config_.migration_keys_per_s_per_shard * movers);
}

void RedisModel::ResizeToCapacityObjects(uint64_t capacity_objects,
                                         uint64_t objects_per_shard) {
  objects_per_shard = std::max<uint64_t>(1, objects_per_shard);
  const uint64_t shards =
      std::max<uint64_t>(1, (capacity_objects + objects_per_shard - 1) / objects_per_shard);
  Resize(static_cast<int>(shards));
}

RedisSample RedisModel::Tick(double dt) {
  time_s_ += dt;
  const bool migrating = migration_remaining_s_ > 0.0;
  if (migrating) {
    migration_remaining_s_ = std::max(0.0, migration_remaining_s_ - dt);
    if (migration_remaining_s_ == 0.0) {
      active_shards_ = target_shards_;  // cutover: new shard map live
    }
  }

  double tput = SteadyThroughputMops(active_shards_);
  double p99 = config_.base_p99_us;
  double p50 = config_.base_p50_us;
  if (migrating) {
    // CPU/network spent moving data: throughput dips, tail latency grows.
    tput *= 1.0 - config_.migration_cpu_overhead * 0.7;
    p99 *= 1.21;
    p50 *= 1.05;
  }
  return RedisSample{time_s_, tput, p50, p99, migrating, active_shards_, target_shards_};
}



// ---------------------------------------------------------------------------
// RedisClusterClient
// ---------------------------------------------------------------------------

RedisClusterClient::RedisClusterClient(rdma::ClientContext* ctx,
                                       const RedisClusterConfig& config)
    : ctx_(ctx),
      config_(config),
      shards_(std::max(1, config.shards)),
      capacity_per_shard_(std::max<uint64_t>(
          1, config.capacity_objects / static_cast<uint64_t>(std::max(1, config.shards)))) {}

RedisClusterClient::Shard& RedisClusterClient::ShardFor(uint64_t hash) {
  return shards_[SeededPartition(hash, shards_.size(), config_.partition_seed)];
}

void RedisClusterClient::ChargeOp(bool pipelined) {
  ops_issued_++;
  ctx_->clock().AdvanceUs(config_.service_us + (pipelined ? 0.0 : config_.rtt_us));
}

bool RedisClusterClient::GetInShard(Shard& shard, uint64_t hash, std::string* value) {
  counters_.gets++;
  const auto it = shard.map.find(hash);
  if (it == shard.map.end()) {
    counters_.misses++;
    return false;
  }
  if (it->second.expiry_tick != 0 && ops_issued_ >= it->second.expiry_tick) {
    // Native lazy expiry, as in Redis: the lookup reclaims the dead entry.
    shard.lru.Erase(hash);
    shard.map.erase(it);
    counters_.expired++;
    counters_.misses++;
    return false;
  }
  if (value != nullptr) {
    value->assign(it->second.value);
  }
  shard.lru.Touch(hash);
  counters_.hits++;
  return true;
}

bool RedisClusterClient::SetInShard(Shard& shard, uint64_t hash, std::string_view value,
                                    uint64_t ttl_ticks) {
  counters_.sets++;
  const uint64_t expiry = ttl_ticks == 0 ? 0 : ops_issued_ + ttl_ticks;
  const auto it = shard.map.find(hash);
  if (it != shard.map.end()) {
    it->second.value.assign(value);
    it->second.expiry_tick = expiry;
    shard.lru.Touch(hash);
    return true;
  }
  while (shard.map.size() >= capacity_per_shard_ && shard.lru.size() > 0) {
    shard.map.erase(shard.lru.EvictVictim());
    counters_.evictions++;
  }
  shard.map.emplace(hash, Entry{std::string(value), expiry});
  shard.lru.Touch(hash);
  return true;
}

bool RedisClusterClient::DeleteInShard(Shard& shard, uint64_t hash) {
  if (shard.map.erase(hash) == 0) {
    return false;
  }
  shard.lru.Erase(hash);
  counters_.deletes++;
  return true;
}

bool RedisClusterClient::ExpireInShard(Shard& shard, uint64_t hash, uint64_t ttl_ticks) {
  const auto it = shard.map.find(hash);
  if (it == shard.map.end()) {
    return false;
  }
  it->second.expiry_tick = ttl_ticks == 0 ? 0 : ops_issued_ + ttl_ticks;
  return true;
}

void RedisClusterClient::ExecuteBatch(std::span<const sim::CacheOp> ops,
                                      sim::CacheResult* results) {
  size_t i = 0;
  while (i < ops.size()) {
    // A run of kMultiGets is one pipelined MGET: one round trip for the run.
    size_t run_end = i + 1;
    if (ops[i].kind == sim::OpKind::kMultiGet) {
      while (run_end < ops.size() && ops[run_end].kind == sim::OpKind::kMultiGet) {
        ++run_end;
      }
    }
    for (size_t j = i; j < run_end; ++j) {
      const bool pipelined = j > i;  // first op of a run pays the round trip
      sim::DispatchSingleOp(
          *ctx_, ops[j], &results[j],
          [this, pipelined](std::string_view key, std::string* value) {
            const uint64_t hash = HashKey(key);
            Shard& shard = ShardFor(hash);
            ChargeOp(pipelined);
            return GetInShard(shard, hash, value);
          },
          [this](std::string_view key, std::string_view value, uint64_t ttl) {
            const uint64_t hash = HashKey(key);
            Shard& shard = ShardFor(hash);
            ChargeOp(/*pipelined=*/false);
            return SetInShard(shard, hash, value, ttl);
          },
          [this](std::string_view key) {
            const uint64_t hash = HashKey(key);
            Shard& shard = ShardFor(hash);
            ChargeOp(/*pipelined=*/false);
            return DeleteInShard(shard, hash);
          },
          [this](std::string_view key, uint64_t ttl) {
            const uint64_t hash = HashKey(key);
            Shard& shard = ShardFor(hash);
            ChargeOp(/*pipelined=*/false);
            return ExpireInShard(shard, hash, ttl);
          });
    }
    i = run_end;
  }
}

bool RedisClusterClient::ResizeCapacity(uint64_t capacity_objects) {
  if (capacity_objects == 0) {
    return false;
  }
  config_.capacity_objects = capacity_objects;
  capacity_per_shard_ = std::max<uint64_t>(
      1, capacity_objects / static_cast<uint64_t>(shards_.size()));
  // One admin command round trip; the per-shard evictions run server-side.
  ctx_->clock().AdvanceUs(config_.rtt_us + config_.service_us);
  for (Shard& shard : shards_) {
    while (shard.map.size() > capacity_per_shard_ && shard.lru.size() > 0) {
      shard.map.erase(shard.lru.EvictVictim());
      counters_.evictions++;
    }
  }
  return true;
}

void RedisClusterClient::ResetForMeasurement() {
  counters_ = sim::ClientCounters{};
  ctx_->op_hist().Reset();
}

uint64_t RedisClusterClient::cached_objects() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.map.size();
  }
  return total;
}

}  // namespace ditto::baselines
