#include "baselines/shard_lru.h"

#include <cassert>
#include <functional>

#include "common/hash.h"
#include "core/object.h"

namespace ditto::baselines {

ShardLruDirectory::ShardLruDirectory(dm::MemoryPool* pool, const ShardLruConfig& config)
    : config_(config),
      capacity_(config.capacity_objects != 0 ? config.capacity_objects
                                             : pool->capacity_objects()) {
  shards_.reserve(config.num_shards);
  for (int i = 0; i < config.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardLruClient::ShardLruClient(dm::MemoryPool* pool, ShardLruDirectory* dir,
                               rdma::ClientContext* ctx)
    : pool_(pool),
      dir_(dir),
      ctx_(ctx),
      verbs_(&pool->node(), ctx),
      table_(pool, &verbs_),
      alloc_(pool, &verbs_) {}

void ShardLruClient::ChargeListSplice() {
  // READ the neighbouring node, then two WRITEs to splice the accessed node
  // to the list head.
  uint8_t node[24];
  verbs_.Read(dm::kFreeListBase, node, sizeof(node));  // address is immaterial to the model
  verbs_.WriteAsync(dm::kFreeListBase, node, 8);
  verbs_.Write(dm::kFreeListBase + 8, node, 8);
}

void ShardLruClient::WithShardLock(uint64_t hash, const std::function<void()>& body) {
  const rdma::CostModel& cost = pool_->node().cost();
  auto& shard = *dir_->shards_[hash % dir_->config_.num_shards];

  // One CAS to acquire the lock.
  const uint64_t acquire_start_ns = ctx_->now_ns();
  verbs_.FetchAdd(dm::kFreeListBase + 16, 0);  // the acquire CAS message

  // Queue for the critical section in virtual time. The hold time is the
  // body's verb latency; we approximate it upfront with the steady-state
  // cost (measured after the body, the queue is corrected by charging the
  // difference on the next acquisition — in practice the body cost is
  // constant: READ + 2 WRITE + release WRITE).
  const double hold_us = cost.enabled
                             ? (cost.read_rtt_us + cost.write_rtt_us + cost.async_post_us * 2 +
                                cost.atomic_rtt_us)
                             : 0.0;
  const uint64_t queue_ns =
      shard.lock_queue.Charge(acquire_start_ns, static_cast<uint64_t>(hold_us * 1000.0));
  if (cost.enabled && queue_ns > 0) {
    // While waiting, the client retries CAS every (backoff + CAS RTT); each
    // retry is a wasted atomic burning NIC message rate.
    const double retry_period_us = dir_->config_.backoff_us + cost.atomic_rtt_us;
    const auto retries = static_cast<uint64_t>(
        static_cast<double>(queue_ns) / 1000.0 / retry_period_us);
    for (uint64_t r = 0; r < retries; ++r) {
      pool_->node().nic().ChargeMessage(ctx_->now_ns(), cost.atomic_msg_cost);
      ctx_->atomics++;
      lock_retries_++;
    }
    ctx_->clock().AdvanceNs(queue_ns);
  }

  {
    MutexLock lock(&shard.mu);
    body();
  }

  // Release WRITE.
  uint64_t zero = 0;
  verbs_.WriteAsync(dm::kFreeListBase + 16, &zero, 8);
}

void ShardLruClient::ExecuteBatch(std::span<const sim::CacheOp> ops,
                                  sim::CacheResult* results) {
  for (size_t i = 0; i < ops.size(); ++i) {
    sim::DispatchSingleOp(
        *ctx_, ops[i], &results[i],
        [this](std::string_view key, std::string* value) { return DoGet(key, value); },
        [this](std::string_view key, std::string_view value, uint64_t ttl) {
          return DoSet(key, value, ttl);
        },
        [this](std::string_view key) { return DoDelete(key); },
        [this](std::string_view key, uint64_t ttl) { return DoExpire(key, ttl); });
  }
}

bool ShardLruClient::RemoveEntry(uint64_t hash) {
  bool removed = false;
  WithShardLock(hash, [this, hash, &removed] {
    auto& shard = *dir_->shards_[hash % dir_->config_.num_shards];
    shard.mu.AssertHeld();  // WithShardLock holds it around the body
    const auto it = shard.index.find(hash);
    if (it == shard.index.end()) {
      return;
    }
    shard.lru.Erase(hash);
    verbs_.CompareSwap(it->second.slot_addr + ht::kAtomicOff,
                       pool_->node().arena().ReadU64(it->second.slot_addr + ht::kAtomicOff),
                       0);
    alloc_.FreeBlocks(it->second.obj_addr, it->second.blocks);
    shard.index.erase(it);
    dir_->total_objects_.fetch_sub(1, std::memory_order_relaxed);
    removed = true;
  });
  return removed;
}

bool ShardLruClient::EvictShardVictim(uint64_t shard_sel) {
  bool evicted = false;
  WithShardLock(shard_sel, [this, shard_sel, &evicted] {
    auto& shard = *dir_->shards_[shard_sel % dir_->config_.num_shards];
    shard.mu.AssertHeld();  // WithShardLock holds it around the body
    if (shard.lru.size() == 0) {
      return;
    }
    const uint64_t victim = shard.lru.EvictVictim();
    const auto it = shard.index.find(victim);
    if (it == shard.index.end()) {
      return;
    }
    // Clear the victim's slot and free its blocks (verbs under lock).
    verbs_.CompareSwap(it->second.slot_addr + ht::kAtomicOff,
                       pool_->node().arena().ReadU64(it->second.slot_addr + ht::kAtomicOff),
                       0);
    alloc_.FreeBlocks(it->second.obj_addr, it->second.blocks);
    shard.index.erase(it);
    dir_->total_objects_.fetch_sub(1, std::memory_order_relaxed);
    evicted = true;
  });
  if (evicted) {
    counters_.evictions++;
  }
  return evicted;
}

bool ShardLruClient::ResizeCapacity(uint64_t capacity_objects) {
  dir_->SetCapacity(capacity_objects);
  if (!dir_->config_.maintain_list) {
    return false;  // KVS mode has no caching structure to shrink through
  }
  // Evict round-robin over the shards until the aggregate fits; a full sweep
  // that evicts nothing means every remaining shard is already empty.
  const int num_shards = dir_->config_.num_shards;
  while (dir_->total_objects() > capacity_objects) {
    bool any = false;
    for (int s = 0; s < num_shards && dir_->total_objects() > capacity_objects; ++s) {
      any = EvictShardVictim(static_cast<uint64_t>(s)) || any;
    }
    if (!any) {
      break;
    }
  }
  return dir_->total_objects() <= capacity_objects;
}

bool ShardLruClient::DoGet(std::string_view key, std::string* value) {
  counters_.gets++;
  const uint64_t hash = HashKey(key);
  const uint8_t fp = Fingerprint(hash);
  const uint64_t bucket = table_.BucketIndexFor(hash);
  table_.ReadBucket(bucket, &bucket_buf_);
  for (int i = 0; i < table_.slots_per_bucket(); ++i) {
    const ht::SlotView& slot = bucket_buf_[i];
    if (!slot.IsObject() || slot.fp() != fp || slot.hash != hash) {
      continue;
    }
    const size_t bytes = static_cast<size_t>(slot.size_blocks()) * dm::kBlockBytes;
    object_buf_.resize(bytes);
    verbs_.Read(slot.pointer(), object_buf_.data(), bytes);
    core::DecodedObject obj;
    if (!core::DecodeObject(object_buf_.data(), bytes, &obj) || obj.key != key) {
      continue;
    }
    if (obj.ExpiredAt(pool_->clock().Tick())) {
      // Lazy expiry: the looker-up reclaims the dead object.
      if (dir_->config_.maintain_list) {
        RemoveEntry(hash);
      } else if (table_.CasAtomic(table_.BucketSlotAddr(bucket, i), slot.atomic_word, 0)) {
        alloc_.FreeBlocks(slot.pointer(), slot.size_blocks());
      }
      counters_.expired++;
      counters_.misses++;
      return false;
    }
    if (value != nullptr) {
      value->assign(obj.value);
    }
    if (dir_->config_.maintain_list) {
      WithShardLock(hash, [this, hash] {
        ChargeListSplice();
        auto& shard = *dir_->shards_[hash % dir_->config_.num_shards];
        shard.mu.AssertHeld();  // WithShardLock holds it around the body
        if (shard.index.count(hash) > 0) {
          shard.lru.Touch(hash);
        }
      });
    }
    counters_.hits++;
    return true;
  }
  counters_.misses++;
  return false;
}

bool ShardLruClient::DoDelete(std::string_view key) {
  const uint64_t hash = HashKey(key);
  if (dir_->config_.maintain_list) {
    if (RemoveEntry(hash)) {
      counters_.deletes++;
      return true;
    }
    return false;
  }
  // KVS mode (no caching structure): clear the slot directly.
  const uint8_t fp = Fingerprint(hash);
  const uint64_t bucket = table_.BucketIndexFor(hash);
  table_.ReadBucket(bucket, &bucket_buf_);
  for (int i = 0; i < table_.slots_per_bucket(); ++i) {
    const ht::SlotView& slot = bucket_buf_[i];
    if (slot.IsObject() && slot.fp() == fp && slot.hash == hash) {
      if (table_.CasAtomic(table_.BucketSlotAddr(bucket, i), slot.atomic_word, 0)) {
        alloc_.FreeBlocks(slot.pointer(), slot.size_blocks());
        counters_.deletes++;
        return true;
      }
      return false;
    }
  }
  return false;
}

bool ShardLruClient::DoExpire(std::string_view key, uint64_t ttl_ticks) {
  const uint64_t hash = HashKey(key);
  const uint8_t fp = Fingerprint(hash);
  const uint64_t bucket = table_.BucketIndexFor(hash);
  for (int attempt = 0; attempt < 4; ++attempt) {
    table_.ReadBucket(bucket, &bucket_buf_);
    int found = -1;
    for (int i = 0; i < table_.slots_per_bucket(); ++i) {
      const ht::SlotView& slot = bucket_buf_[i];
      if (slot.IsObject() && slot.fp() == fp && slot.hash == hash) {
        found = i;
        break;
      }
    }
    if (found < 0) {
      return false;
    }
    const ht::SlotView& slot = bucket_buf_[found];
    // Validate the slot still publishes this object before writing into its
    // blocks (same-word CAS fails iff the slot changed underneath us).
    if (!table_.CasAtomic(table_.BucketSlotAddr(bucket, found), slot.atomic_word,
                          slot.atomic_word)) {
      continue;
    }
    const uint64_t expiry = ttl_ticks == 0 ? 0 : pool_->clock().Tick() + ttl_ticks;
    verbs_.WriteAsync(slot.pointer() + core::kExpiryOff, &expiry, 8);
    return true;
  }
  return false;
}

bool ShardLruClient::DoSet(std::string_view key, std::string_view value, uint64_t ttl_ticks) {
  counters_.sets++;
  const uint64_t hash = HashKey(key);
  const uint8_t fp = Fingerprint(hash);
  const uint64_t bucket = table_.BucketIndexFor(hash);
  const int blocks = core::ObjectBlocks(key.size(), value.size(), 0);
  const uint64_t expiry = ttl_ticks == 0 ? 0 : pool_->clock().Tick() + ttl_ticks;

  for (int attempt = 0; attempt < 8; ++attempt) {
    table_.ReadBucket(bucket, &bucket_buf_);
    int found = -1;
    int empty = -1;
    for (int i = 0; i < table_.slots_per_bucket(); ++i) {
      const ht::SlotView& slot = bucket_buf_[i];
      if (slot.IsObject() && slot.fp() == fp && slot.hash == hash) {
        found = i;
        break;
      }
      if (slot.IsEmpty() && empty < 0) {
        empty = i;
      }
    }

    uint64_t addr = alloc_.AllocBlocks(blocks);
    if (addr == 0 && dir_->config_.maintain_list) {
      // Evict the LRU victim of this key's shard to free space.
      if (!EvictShardVictim(hash)) {
        return false;
      }
      addr = alloc_.AllocBlocks(blocks);
    }
    if (addr == 0) {
      return false;
    }
    core::EncodeObject(key, value, nullptr, 0, &encode_buf_, expiry);
    verbs_.Write(addr, encode_buf_.data(), encode_buf_.size());
    const uint64_t desired = ht::PackAtomic(fp, static_cast<uint8_t>(blocks), addr);

    uint64_t slot_addr = 0;
    uint64_t expected = 0;
    if (found >= 0) {
      slot_addr = table_.BucketSlotAddr(bucket, found);
      expected = bucket_buf_[found].atomic_word;
    } else if (empty >= 0) {
      slot_addr = table_.BucketSlotAddr(bucket, empty);
      expected = 0;
    } else {
      alloc_.FreeBlocks(addr, blocks);
      return false;  // bucket full: drop (matches the simple baseline's behaviour)
    }
    if (!table_.CasAtomic(slot_addr, expected, desired)) {
      alloc_.FreeBlocks(addr, blocks);
      continue;
    }
    uint64_t meta[1] = {hash};
    verbs_.Write(slot_addr + ht::kHashOff, meta, 8);
    if (found >= 0) {
      alloc_.FreeBlocks(bucket_buf_[found].pointer(), bucket_buf_[found].size_blocks());
    }
    if (dir_->config_.maintain_list) {
      WithShardLock(hash, [this, hash, slot_addr, addr, blocks, found] {
        ChargeListSplice();
        auto& shard = *dir_->shards_[hash % dir_->config_.num_shards];
        shard.mu.AssertHeld();  // WithShardLock holds it around the body
        shard.lru.Touch(hash);
        shard.index[hash] =
            ShardLruDirectory::Shard::Loc{slot_addr, addr, blocks};
        if (found < 0) {
          dir_->total_objects_.fetch_add(1, std::memory_order_relaxed);
        }
      });
      // Capacity enforcement: evict while over budget.
      while (dir_->total_objects() > dir_->capacity()) {
        if (!EvictShardVictim(hash)) {
          break;
        }
      }
    }
    return true;
  }
  return false;  // lost the publish race on every attempt
}

void ShardLruClient::ResetForMeasurement() {
  counters_ = sim::ClientCounters{};
  ctx_->op_hist().Reset();
}

}  // namespace ditto::baselines
