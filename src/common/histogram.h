// Log-bucketed latency histogram with percentile queries. Thread-compatible;
// per-client instances are merged after a run.
#ifndef DITTO_COMMON_HISTOGRAM_H_
#define DITTO_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace ditto {

class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 64;
  static constexpr int kNumBuckets = 8 * kBucketsPerDecade;  // covers 1ns .. ~100s

  void RecordNs(uint64_t ns);
  void RecordUs(double us) { RecordNs(static_cast<uint64_t>(us * 1000.0)); }
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double MeanNs() const;
  // p in [0, 100]. Returns the bucket-upper-bound latency in nanoseconds.
  double PercentileNs(double p) const;
  double PercentileUs(double p) const { return PercentileNs(p) / 1000.0; }

  std::string Summary() const;

 private:
  static int BucketFor(uint64_t ns);
  static double BucketUpperNs(int bucket);

  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ns_ = 0;
  uint64_t max_ns_ = 0;
};

}  // namespace ditto

#endif  // DITTO_COMMON_HISTOGRAM_H_
