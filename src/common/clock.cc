#include "common/clock.h"

namespace ditto {

LogicalClock& LogicalClock::Global() {
  static LogicalClock clock;
  return clock;
}

}  // namespace ditto
