// Clang thread-safety analysis annotations plus the annotated ditto::Mutex /
// ditto::MutexLock shim every lock user in the tree goes through.
//
// Under clang the macros expand to the [[clang::...]] capability attributes
// and `-Wthread-safety -Werror` turns unguarded accesses to GUARDED_BY
// fields into compile errors (the clang CI leg builds libditto exactly that
// way; see scripts/thread_safety_compile_test.py for the negative-compile
// pin). Under every other compiler they expand to nothing and the shim is a
// plain std::mutex wrapper, so the annotations cost nothing at runtime and
// nothing on non-clang toolchains.
//
// Conventions:
//   * protected fields carry GUARDED_BY(mu_);
//   * private members that assume the lock carry REQUIRES(mu_) (the *Locked
//     naming convention is kept as documentation on top of the attribute);
//   * code that provably runs under a lock the analysis cannot see through
//     (a lambda invoked via std::function by a locking wrapper) states the
//     fact with mu.AssertHeld() instead of a blanket
//     NO_THREAD_SAFETY_ANALYSIS opt-out.
#ifndef DITTO_COMMON_THREAD_ANNOTATIONS_H_
#define DITTO_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__)
#define DITTO_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DITTO_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

// A type that acts as a lock (clang calls these capabilities).
#define CAPABILITY(x) DITTO_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// An RAII type that acquires a capability in its constructor and releases it
// in its destructor.
#define SCOPED_CAPABILITY DITTO_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Data members readable/writable only with the named capability held.
#define GUARDED_BY(x) DITTO_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Pointer members whose pointee is protected by the named capability.
#define PT_GUARDED_BY(x) DITTO_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Functions callable only with the named capabilities already held.
#define REQUIRES(...) \
  DITTO_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// Functions that acquire / release capabilities.
#define ACQUIRE(...) DITTO_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define RELEASE(...) DITTO_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Functions callable only with the named capabilities NOT held.
#define EXCLUDES(...) DITTO_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Runtime assertion that a capability is held; teaches the analysis about
// locks it cannot track (e.g. across a std::function boundary).
#define ASSERT_CAPABILITY(x) DITTO_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

// Annotated-return: the function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) DITTO_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Last-resort opt-out. Prefer AssertHeld; the repo linter treats naked uses
// of this as a review flag.
#define NO_THREAD_SAFETY_ANALYSIS \
  DITTO_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace ditto {

// Annotated std::mutex wrapper. Same cost, same semantics; the capability
// attribute is what lets clang check GUARDED_BY fields against it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  // States (to the analysis) that this thread holds the mutex. Used inside
  // callbacks that a locking wrapper invokes with the lock held — the
  // analysis cannot see through the std::function indirection, the runtime
  // contract is documented at the wrapper.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

// RAII lock for ditto::Mutex, the std::lock_guard replacement.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace ditto

#endif  // DITTO_COMMON_THREAD_ANNOTATIONS_H_
