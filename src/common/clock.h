// Time sources for the simulated disaggregated-memory substrate.
//
// LogicalClock: a global atomic tick used as the timestamp domain for cache
// metadata (insert_ts / last_ts). Deterministic across runs.
//
// VirtualClock: per-client accumulated busy time in nanoseconds. One-sided
// verbs, lock backoffs and miss penalties charge latency here; experiment
// elapsed time is derived from these accounts plus the NIC / MN-CPU serial
// components (see rdma::NicModel, rdma::CpuModel).
#ifndef DITTO_COMMON_CLOCK_H_
#define DITTO_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace ditto {

class LogicalClock {
 public:
  // Returns a strictly increasing tick.
  uint64_t Tick() { return now_.fetch_add(1, std::memory_order_relaxed) + 1; }
  uint64_t Now() const { return now_.load(std::memory_order_relaxed); }
  void Reset() { now_.store(0, std::memory_order_relaxed); }

  // Global instance shared by all clients of a process-wide simulation.
  static LogicalClock& Global();

 private:
  std::atomic<uint64_t> now_{0};
};

class VirtualClock {
 public:
  void AdvanceNs(uint64_t ns) { busy_ns_ += ns; }
  void AdvanceUs(double us) { busy_ns_ += static_cast<uint64_t>(us * 1000.0); }
  // Advances to an absolute busy-time point (no-op when already past it).
  // Used when retiring pipelined operations: the client blocks until the
  // op's completion timestamp unless later work already moved the clock.
  void AdvanceToNs(uint64_t ns) {
    if (ns > busy_ns_) {
      busy_ns_ = ns;
    }
  }
  uint64_t busy_ns() const { return busy_ns_; }
  double busy_us() const { return static_cast<double>(busy_ns_) / 1000.0; }
  void Reset() { busy_ns_ = 0; }

 private:
  uint64_t busy_ns_ = 0;
};

}  // namespace ditto

#endif  // DITTO_COMMON_CLOCK_H_
