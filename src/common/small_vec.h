// SmallBuf: a fixed-inline-capacity result buffer for batch hot paths.
//
// ExecuteBatch callers need a contiguous `CacheResult results[n]` (or
// `CacheOp ops[n]`) per batch; allocating a std::vector per fused multi-get
// run put a malloc/free pair on the replay hot path. SmallBuf hands out a
// default-initialized array of n elements from inline storage whenever
// n <= N (the common case: fused runs are bounded by multiget_batch, default
// 8) and falls back to a reused heap vector — which keeps its capacity across
// calls — beyond that. Not thread-safe; one instance per owner, like the
// other per-client scratch buffers.
#ifndef DITTO_COMMON_SMALL_VEC_H_
#define DITTO_COMMON_SMALL_VEC_H_

#include <array>
#include <cstddef>
#include <vector>

namespace ditto {

template <typename T, size_t N>
class SmallBuf {
 public:
  // Returns a pointer to n default-valued elements, valid until the next
  // Acquire on this buffer. Elements are reset to T{} so callers see the
  // same freshly-constructed state a new vector would give them.
  T* Acquire(size_t n) {
    if (n <= N) {
      for (size_t i = 0; i < n; ++i) {
        inline_[i] = T{};
      }
      return inline_.data();
    }
    heap_.clear();            // keeps capacity: at most one allocation per
    heap_.resize(n);          // high-water mark, none at steady state
    return heap_.data();
  }

  static constexpr size_t inline_capacity() { return N; }

 private:
  std::array<T, N> inline_{};
  std::vector<T> heap_;
};

}  // namespace ditto

#endif  // DITTO_COMMON_SMALL_VEC_H_
