#include "common/rand.h"

namespace ditto {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t /*seed*/)
    : n_(n), theta_(theta) {
  if (theta_ < 0.0 || theta_ >= 0.995) {
    theta_ = theta_ < 0.0 ? 0.0 : 0.99;  // the Gray method diverges at theta = 1
  }
  zetan_ = ZetaStatic(n, theta_);
  zeta2theta_ = ZetaStatic(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::ZetaStatic(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double x = static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(x);
  if (rank >= n_) {
    rank = n_ - 1;
  }
  return rank;
}

}  // namespace ditto
