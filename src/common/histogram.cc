#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ditto {

namespace {

// Authoritative bucket upper edges, computed once: edges[b] = 10^((b+1)/64).
// Placement and percentile reporting both read this table, so a sample can
// never land in a bucket inconsistent with the edge the percentile reports.
const std::array<double, Histogram::kNumBuckets>& BucketEdges() {
  static const std::array<double, Histogram::kNumBuckets> edges = [] {
    std::array<double, Histogram::kNumBuckets> e{};
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      e[b] = std::pow(10.0, static_cast<double>(b + 1) / Histogram::kBucketsPerDecade);
    }
    return e;
  }();
  return edges;
}

}  // namespace

int Histogram::BucketFor(uint64_t ns) {
  if (ns == 0) {
    return 0;
  }
  const double log = std::log10(static_cast<double>(ns));
  int bucket = static_cast<int>(log * kBucketsPerDecade);
  if (bucket < 0) {
    bucket = 0;
  }
  if (bucket >= kNumBuckets) {
    bucket = kNumBuckets - 1;
  }
  // log10 is only an estimate: at exact bucket edges libm can round a hair
  // below the integer (log10(1000) = 2.999…96), dropping the sample one
  // bucket low. Clamp against the authoritative edges so bucket b always
  // covers [BucketUpperNs(b-1), BucketUpperNs(b)).
  const auto& edges = BucketEdges();
  const double v = static_cast<double>(ns);
  while (bucket + 1 < kNumBuckets && v >= edges[bucket]) {
    ++bucket;
  }
  while (bucket > 0 && v < edges[bucket - 1]) {
    --bucket;
  }
  return bucket;
}

double Histogram::BucketUpperNs(int bucket) { return BucketEdges()[bucket]; }

void Histogram::RecordNs(uint64_t ns) {
  buckets_[BucketFor(ns)]++;
  count_++;
  sum_ns_ += ns;
  if (ns > max_ns_) {
    max_ns_ = ns;
  }
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  if (other.max_ns_ > max_ns_) {
    max_ns_ = other.max_ns_;
  }
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ns_ = 0;
  max_ns_ = 0;
}

double Histogram::MeanNs() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_ns_) / static_cast<double>(count_);
}

double Histogram::PercentileNs(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  // Nearest-rank percentile: the bucket holding the ceil(p/100 * n)-th
  // smallest sample. floor() with a strict `seen > target` comparison landed
  // one rank too high (p99 over 100 samples reported the maximum's bucket).
  // The epsilon keeps ceil from overshooting when p/100 * n is an integer
  // whose double product rounds up (0.55 * 100 == 55.000000000000007).
  auto target =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_) - 1e-9));
  target = std::min(std::max<uint64_t>(target, 1), count_);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return BucketUpperNs(i);
    }
  }
  return static_cast<double>(max_ns_);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.1fus p50=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_), MeanNs() / 1000.0,
                PercentileNs(50) / 1000.0, PercentileNs(99) / 1000.0,
                static_cast<double>(max_ns_) / 1000.0);
  return buf;
}

}  // namespace ditto
