// Minimal command-line flag parsing for bench and example binaries.
// Syntax: --name=value or --name value. Unknown flags abort with a message.
#ifndef DITTO_COMMON_FLAGS_H_
#define DITTO_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace ditto {

class Flags {
 public:
  // Parses argv. Aborts (exit 2) on malformed input.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string GetString(const std::string& name, const std::string& def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ditto

#endif  // DITTO_COMMON_FLAGS_H_
