// Deterministic random number generation: xoshiro256** engine plus the
// Zipfian generator used by YCSB-style workloads.
#ifndef DITTO_COMMON_RAND_H_
#define DITTO_COMMON_RAND_H_

#include <cmath>
#include <cstdint>

#include "common/hash.h"

namespace ditto {

// xoshiro256** by Blackman & Vigna. Fast, high-quality, seedable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x6974746f6e5fULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four state words.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      word = Mix64(seed);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

// Zipfian generator over [0, n) with parameter theta, using the Gray et al.
// method adopted by YCSB. Item 0 is the hottest. The method is only valid
// for theta in [0, 1); requests outside that range are clamped to 0.99 (the
// YCSB default), which is also the skew every experiment in this repo uses.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 1);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double ZetaStatic(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

// Scrambled Zipfian: Zipfian rank mapped through a hash so that hot keys are
// spread over the key space (matches YCSB's ScrambledZipfianGenerator).
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta, uint64_t seed = 1)
      : n_(n), zipf_(n, theta, seed) {}

  uint64_t Next(Rng& rng) { return Mix64(zipf_.Next(rng)) % n_; }

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

}  // namespace ditto

#endif  // DITTO_COMMON_RAND_H_
