// 64-bit hashing utilities shared by the hash table, workloads, and baselines.
#ifndef DITTO_COMMON_HASH_H_
#define DITTO_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace ditto {

// SplitMix64 finalizer. Good avalanche behaviour for integer keys.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a / mix hybrid for byte strings. Stable across platforms and runs.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  size_t i = 0;
  // Consume 8-byte words, then the tail.
  for (; i + 8 <= len; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = (h ^ w) * 0x100000001b3ULL;
    h = Mix64(h);
  }
  uint64_t tail = 0;
  for (size_t j = 0; i < len; ++i, j += 8) {
    tail |= static_cast<uint64_t>(p[i]) << j;
  }
  h = (h ^ tail ^ len) * 0x100000001b3ULL;
  return Mix64(h);
}

inline uint64_t HashKey(std::string_view key) { return HashBytes(key.data(), key.size()); }

// Fast integrity checksum for torn-read detection (objects read while a
// concurrent writer reuses their blocks). Weaker per-word mixing than
// HashBytes — a rotate-xor-multiply accumulator with one final Mix64 — which
// is plenty to make a mixed-generation buffer miss with ~2^-64 probability,
// at a fraction of the hashing cost on the Get/Set hot path. Not for hash
// tables: dispersion of low bits is deliberately traded for speed.
inline uint64_t ChecksumBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (len * 0xff51afd7ed558ccdULL);
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = ((h << 27) | (h >> 37)) ^ w;
    h *= 0xc2b2ae3d27d4eb4fULL;
  }
  uint64_t tail = 0;
  for (size_t j = 0; i < len; ++i, j += 8) {
    tail |= static_cast<uint64_t>(p[i]) << j;
  }
  return Mix64(h ^ tail);
}

// Seeded partition of a 64-bit key or hash into n buckets. The single mixing
// formula shared by ShardedPool::NodeFor (over string-key hashes) and the
// concurrent runner's sim::ShardForKey (over raw integer trace keys); note
// the two call sites hash different domains, so their partitions are not
// interchangeable even at the same seed.
constexpr uint32_t SeededPartition(uint64_t h, size_t n, uint64_t seed) {
  return static_cast<uint32_t>(Mix64(h ^ (seed * 0x9e3779b97f4a7c15ULL)) % n);
}

// 1-byte fingerprint stored in hash-table slots; never zero so that zero can
// mean "empty".
inline uint8_t Fingerprint(uint64_t hash) {
  uint8_t fp = static_cast<uint8_t>(hash >> 56);
  return fp == 0 ? 1 : fp;
}

}  // namespace ditto

#endif  // DITTO_COMMON_HASH_H_
