#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ditto {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg);
      std::exit(2);
    }
    std::string body = arg + 2;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace ditto
