// Figure 13: Ditto's throughput when dynamically adjusting compute and
// memory resources under YCSB-C. Unlike Redis (Figure 1), adding or removing
// client CPU cores takes effect immediately (no data migration), and memory
// capacity changes take effect immediately because cached data is shared by
// all compute nodes.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 50000);
  const uint64_t requests = flags.GetInt("requests", 200000) * flags.GetInt("scale", 1);

  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = keys;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, 1);

  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  bench::DittoDeployment d = bench::MakeDitto(bench::MakePoolConfig(keys * 2), config, 32);
  bench::Preload(d.raw, trace, 232);

  bench::PrintHeader("Figure 13", "Ditto throughput under dynamic resource adjustment (YCSB-C)");
  std::printf("%-28s %8s %10s %10s %9s %9s\n", "phase", "clients", "capacity", "tput_mops",
              "p50_us", "p99_us");

  sim::RunOptions options;
  options.set_on_miss = false;

  auto run_phase = [&](const char* phase, int clients, uint64_t capacity) {
    d.Resize(clients, config);
    d.pool->SetCapacityObjects(capacity);
    const sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
    std::printf("%-28s %8d %10llu %10.3f %9.1f %9.1f\n", phase, clients,
                static_cast<unsigned long long>(capacity), r.throughput_mops, r.p50_us,
                r.p99_us);
  };

  // Compute elasticity: 32 -> 64 -> 32 clients. Takes effect instantly; no
  // migration phase exists at all (contrast with Figure 1's 5+ minutes).
  const uint64_t cap = keys * 2;
  run_phase("baseline (32 cores)", 32, cap);
  run_phase("scale-out (+32 cores)", 64, cap);
  run_phase("scale-in (back to 32)", 32, cap);

  // Memory elasticity: grow and shrink the cache; throughput is unaffected
  // because no data moves.
  run_phase("memory grow (2x capacity)", 32, cap * 2);
  run_phase("memory shrink (0.5x)", 32, cap / 2);
  run_phase("memory restore", 32, cap);

  std::printf("\n# expected shape: throughput follows the client count immediately and is\n"
              "# insensitive to capacity changes; no migration window exists.\n");
  return 0;
}
