// Shared deployment and reporting helpers for the per-figure bench binaries.
//
// Every bench prints a header naming the paper figure it regenerates, the
// cost-model parameters, and tab-separated data rows suitable for plotting.
// Request counts are scaled down from the paper's 10M-request runs so the
// full suite finishes in minutes; pass --scale=N (default 1) to multiply all
// workload sizes.
#ifndef DITTO_BENCH_BENCH_COMMON_H_
#define DITTO_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/cliquemap.h"
#include "baselines/shard_lru.h"
#include "common/flags.h"
#include "core/cluster.h"
#include "core/ditto_client.h"
#include "core/sharded_client.h"
#include "dm/pool.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/synthetic_traces.h"
#include "workloads/trace.h"
#include "workloads/ycsb.h"

namespace ditto::bench {

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("# %s\n# %s\n", figure, what);
  std::printf("# cost model: READ/WRITE rtt 2.0us, ATOMIC 2.5us, NIC 75 Mmsg/s, "
              "RPC 1.2us/op/core\n");
}

// Escapes `"` and `\` so no bench/label string can corrupt the one-line
// BENCH_JSON stream (control characters never appear in bench labels).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

// Host wall-clock stopwatch for bench-local sections that do not go through
// a replay engine (preload phases, legacy comparison loops). Engine runs
// carry their own measurement in RunResult::wall_mops.
class WallTimer {
 public:
  WallTimer() : begin_(std::chrono::steady_clock::now()) {}
  void Reset() { begin_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin_).count();
  }
  double Mops(uint64_t ops) const {
    const double s = Seconds();
    return s > 0.0 ? static_cast<double>(ops) / (s * 1e6) : 0.0;
  }

 private:
  std::chrono::steady_clock::time_point begin_;
};

// Machine-readable result row: scripts/run_benches.sh collects every
// BENCH_JSON line of a bench's stdout into bench/out/BENCH_<name>.json
// (grouped by each row's own "bench" field), so CI and future PRs can diff
// ops / hit rate / nearest-rank p50/p99 without parsing the human tables.
// wall_mops is the measured host wall-clock replay rate — the number that
// moves when the replay hot path itself gets faster (the virtual-time
// throughput_mops only reflects the modeled network). It defaults to the
// engine's own measurement (RunResult::wall_mops); pass wall_mops >= 0 only
// when the bench timed a wider section itself (e.g. with WallTimer).
inline void EmitBenchJson(const char* bench, const char* label, const sim::RunResult& r,
                          double wall_mops = -1.0) {
  const std::string bench_esc = JsonEscape(bench);
  const std::string label_esc = JsonEscape(label);
  const double wall = wall_mops >= 0.0 ? wall_mops : r.wall_mops;
  const int threads = r.threads > 0 ? r.threads : 1;
  std::printf("BENCH_JSON {\"bench\": \"%s\", \"label\": \"%s\", \"ops\": %llu, "
              "\"throughput_mops\": %.6f, \"hit_rate\": %.6f, \"p50_us\": %.3f, "
              "\"p99_us\": %.3f, \"cas_failures\": %llu, \"insert_retries\": %llu, "
              "\"wall_mops\": %.6f, \"threads\": %d, \"ops_per_core_mops\": %.6f}\n",
              bench_esc.c_str(), label_esc.c_str(),
              static_cast<unsigned long long>(r.ops), r.throughput_mops,
              r.hit_rate, r.p50_us, r.p99_us,
              static_cast<unsigned long long>(r.cas_failures),
              static_cast<unsigned long long>(r.insert_retries),
              wall, threads, wall / static_cast<double>(threads));
}

inline dm::PoolConfig MakePoolConfig(uint64_t capacity_objects, int controller_cores = 1,
                                     bool costed = true) {
  dm::PoolConfig config;
  // Size the table at ~4 slots per cached object (objects + history slack)
  // and the heap generously; capacity is enforced in objects.
  config.num_buckets = 1;
  while (config.num_buckets * 8 < capacity_objects * 4) {
    config.num_buckets *= 2;
  }
  config.memory_bytes =
      std::max<size_t>(size_t{32} << 20, capacity_objects * 1024 + (size_t{8} << 20));
  config.capacity_objects = capacity_objects;
  config.controller_cores = controller_cores;
  if (!costed) {
    config.cost = rdma::CostModel::Disabled();
  }
  return config;
}

// A Ditto deployment: pool + server + n clients, driven through the runner.
struct DittoDeployment {
  std::unique_ptr<dm::MemoryPool> pool;
  std::unique_ptr<core::DittoServer> server;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;

  void Resize(int num_clients, const core::DittoConfig& config) {
    while (static_cast<int>(clients.size()) > num_clients) {
      clients.pop_back();
      ctxs.pop_back();
      raw.pop_back();
    }
    // A client added mid-experiment joins at the current virtual time, not
    // at t=0 (otherwise it would observe all previously accumulated NIC work
    // as queueing backlog).
    uint64_t now_ns = 0;
    for (const auto& ctx : ctxs) {
      now_ns = std::max(now_ns, ctx->clock().busy_ns());
    }
    while (static_cast<int>(clients.size()) < num_clients) {
      const auto id = static_cast<uint32_t>(ctxs.size());
      ctxs.push_back(std::make_unique<rdma::ClientContext>(id));
      ctxs.back()->clock().AdvanceNs(now_ns);
      clients.push_back(
          std::make_unique<sim::DittoCacheClient>(pool.get(), ctxs.back().get(), config));
      raw.push_back(clients.back().get());
    }
  }
};

inline DittoDeployment MakeDitto(const dm::PoolConfig& pool_config,
                                 const core::DittoConfig& config, int num_clients) {
  DittoDeployment d;
  d.pool = std::make_unique<dm::MemoryPool>(pool_config);
  d.server = std::make_unique<core::DittoServer>(d.pool.get(), config);
  d.Resize(num_clients, config);
  return d;
}

// A sharded-engine deployment for sim::RunTraceSharded: one memory node,
// server, context, and Ditto client per shard, so every shard's cache state
// (and virtual-time accounting) is private to the worker thread driving it.
struct ShardedEngineDeployment {
  std::unique_ptr<core::ShardedPool> pool;
  std::vector<std::unique_ptr<core::DittoServer>> servers;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> shards;
  std::vector<sim::CacheClient*> raw;
  std::vector<rdma::RemoteNode*> nodes;
};

inline ShardedEngineDeployment MakeShardedEngine(const dm::PoolConfig& per_node_config,
                                                 const core::DittoConfig& config,
                                                 int num_shards) {
  ShardedEngineDeployment d;
  // The pool's own key routing (NodeFor) is unused here: every client is
  // bound directly to its node, and RunTraceSharded's dispatcher routes
  // requests with sim::ShardForKey(options.partition_seed).
  d.pool = std::make_unique<core::ShardedPool>(per_node_config, num_shards);
  for (int i = 0; i < num_shards; ++i) {
    d.servers.push_back(std::make_unique<core::DittoServer>(&d.pool->node(i), config));
    d.ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
    d.shards.push_back(
        std::make_unique<sim::DittoCacheClient>(&d.pool->node(i), d.ctxs.back().get(), config));
    d.raw.push_back(d.shards.back().get());
    d.nodes.push_back(&d.pool->node(i).node());
  }
  return d;
}

// A fault-tolerant cluster deployment: N memory nodes behind a hash ring,
// driven by retrying ClusterCacheClients (see core/cluster.h). Lifecycle
// steps come from RunOptions::lifecycle_schedule.
struct ClusterDeployment {
  std::unique_ptr<core::ClusterPool> pool;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::ClusterCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;
  std::vector<rdma::RemoteNode*> nodes;
};

inline ClusterDeployment MakeCluster(const core::ClusterConfig& config, int num_clients) {
  ClusterDeployment d;
  d.pool = std::make_unique<core::ClusterPool>(config);
  for (int i = 0; i < num_clients; ++i) {
    d.ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
    d.clients.push_back(std::make_unique<sim::ClusterCacheClient>(d.pool.get(),
                                                                  d.ctxs.back().get(),
                                                                  config.ditto));
    d.raw.push_back(d.clients.back().get());
  }
  for (int i = 0; i < d.pool->num_nodes(); ++i) {
    d.nodes.push_back(&d.pool->node(i).node());
  }
  return d;
}

// A CliqueMap deployment.
struct CmDeployment {
  std::unique_ptr<dm::MemoryPool> pool;
  std::unique_ptr<baselines::CliqueMapServer> server;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<baselines::CliqueMapClient>> clients;
  std::vector<sim::CacheClient*> raw;
};

inline CmDeployment MakeCliqueMap(const dm::PoolConfig& pool_config,
                                  const baselines::CliqueMapConfig& config, int num_clients) {
  CmDeployment d;
  d.pool = std::make_unique<dm::MemoryPool>(pool_config);
  d.server = std::make_unique<baselines::CliqueMapServer>(d.pool.get(), config);
  for (int i = 0; i < num_clients; ++i) {
    d.ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
    d.clients.push_back(std::make_unique<baselines::CliqueMapClient>(d.pool.get(),
                                                                     d.server.get(),
                                                                     d.ctxs.back().get()));
    d.raw.push_back(d.clients.back().get());
  }
  return d;
}

// A Shard-LRU (or KVC/KVC-S/KVS) deployment.
struct ShardDeployment {
  std::unique_ptr<dm::MemoryPool> pool;
  std::unique_ptr<baselines::ShardLruDirectory> dir;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<baselines::ShardLruClient>> clients;
  std::vector<sim::CacheClient*> raw;
};

inline ShardDeployment MakeShardLru(const dm::PoolConfig& pool_config,
                                    const baselines::ShardLruConfig& config, int num_clients) {
  ShardDeployment d;
  d.pool = std::make_unique<dm::MemoryPool>(pool_config);
  d.dir = std::make_unique<baselines::ShardLruDirectory>(d.pool.get(), config);
  for (int i = 0; i < num_clients; ++i) {
    d.ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
    d.clients.push_back(std::make_unique<baselines::ShardLruClient>(d.pool.get(), d.dir.get(),
                                                                    d.ctxs.back().get()));
    d.raw.push_back(d.clients.back().get());
  }
  return d;
}

// Preloads all distinct keys of a trace so a subsequent read phase has no
// cold misses (the paper's "no cache miss" throughput experiments).
inline void Preload(const std::vector<sim::CacheClient*>& clients, const workload::Trace& trace,
                    size_t value_bytes) {
  const std::string value(value_bytes, 'v');
  std::vector<bool> seen;
  uint64_t max_key = 0;
  for (const auto& r : trace) {
    max_key = std::max(max_key, r.key);
  }
  seen.assign(max_key + 1, false);
  size_t i = 0;
  for (const auto& r : trace) {
    if (!seen[r.key]) {
      seen[r.key] = true;
      clients[i % clients.size()]->Set(workload::KeyString(r.key), value);
      ++i;
    }
  }
}

}  // namespace ditto::bench

#endif  // DITTO_BENCH_BENCH_COMMON_H_
