// Contended multi-client engine bench: N client threads share ONE memory
// pool with overlapping key ranges, exercising the CAS/retry paths the paper
// depends on (clients execute the cache logic, so they race on slots).
//
// Two sections:
//   1. Hot-path cost: single-client replay through the pre-refactor
//      allocation style (one heap std::string key per request) vs the
//      allocation-free runner path. Identical access order, so hit rates are
//      equal; the wall_mops ratio isolates the hot-path win.
//   2. --clients x --overlap sweep through sim::RunTraceContended: overlap
//      1.0 = all clients replay one shared key window (maximum racing),
//      0.0 = disjoint windows (contention only via shared freelists and
//      global counters). Window sizes shrink as overlap falls so the
//      aggregate footprint — and with it the expected hit rate — stays
//      roughly constant.
//
// Flags:
//   --keys=N        shared-universe key count          (default 8192)
//   --requests=N    trace length (x --scale)           (default 300000)
//   --clients=N     fix the client sweep to one value  (default 1,2,4,8)
//   --overlap=F     fix the overlap sweep to one value (default 0,0.5,1)
//   --workload=X    YCSB core workload                 (default A)
//   --theta=F       YCSB zipf skew                     (default 1.1)
//   --seed=N        trace seed                         (default 42)
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using namespace ditto;

// Replays the trace the way the runner did before the allocation-free
// refactor: a heap std::string key rendered with snprintf per request, plus a
// fresh result object per op. The access order matches sim::RunTrace with one
// client exactly, so the two paths report identical hit rates.
sim::RunResult ReplayAllocString(sim::CacheClient* client, const workload::Trace& trace,
                                 size_t value_bytes) {
  client->ResetForMeasurement();
  const std::string value(value_bytes, 'v');
  for (const workload::Request& req : trace) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "k%016llx", static_cast<unsigned long long>(req.key));
    const std::string key = buf;  // the pre-refactor per-op heap allocation
    sim::CacheOp op;
    switch (req.op) {
      case workload::Op::kGet:
      case workload::Op::kMultiGet:
        op = sim::CacheOp::Get(key, /*want_value=*/false);
        break;
      case workload::Op::kUpdate:
      case workload::Op::kInsert:
        op = sim::CacheOp::Set(key, value);
        break;
      case workload::Op::kDelete:
        op = sim::CacheOp::Delete(key);
        break;
      case workload::Op::kExpire:
        op = sim::CacheOp::Expire(key, 64);
        break;
    }
    sim::CacheResult result;
    client->ExecuteBatch({&op, 1}, &result);
    if (op.kind == sim::OpKind::kGet && !result.hit()) {
      client->Set(key, value);  // set_on_miss, as the runner does
    }
  }
  client->Finish();
  const sim::ClientCounters c = client->counters();
  sim::RunResult r;
  r.ops = trace.size();
  r.gets = c.gets;
  r.hits = c.hits;
  r.misses = c.misses;
  r.sets = c.sets;
  r.hit_rate = c.gets == 0 ? 0.0 : static_cast<double>(c.hits) / static_cast<double>(c.gets);
  return r;
}

// Remaps the trace for an overlap level in [0, 1]: client c of n owns the key
// window [start_c, start_c + W) with start_c = c*(1-overlap)*W, and W chosen
// so the last window ends at `keys` — the aggregate footprint stays ~constant
// across overlap levels while the shared fraction of any two windows is
// `overlap`. Request i belongs to client i % n (the contended engine's
// striding), so its key is folded into that client's window.
workload::Trace RemapForOverlap(const workload::Trace& trace, uint64_t keys, int clients,
                                double overlap) {
  const double span = 1.0 + (clients - 1) * (1.0 - overlap);
  const uint64_t window = std::max<uint64_t>(1, static_cast<uint64_t>(
                                                    static_cast<double>(keys) / span));
  workload::Trace out = trace;
  for (size_t i = 0; i < out.size(); ++i) {
    const size_t c = i % static_cast<size_t>(clients);
    const uint64_t start = static_cast<uint64_t>(
        std::llround(static_cast<double>(c) * (1.0 - overlap) * static_cast<double>(window)));
    out[i].key = start + out[i].key % window;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ditto;
  constexpr int kHotPathRounds = 3;  // best-of-N damps scheduler noise
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 8192);
  const uint64_t requests = flags.GetInt("requests", 300000) * flags.GetInt("scale", 1);
  const uint64_t seed = flags.GetInt("seed", 42);
  const std::string workload_name = flags.GetString("workload", "A");
  const double theta = flags.GetDouble("theta", 1.1);
  const uint64_t capacity = std::max<uint64_t>(1, keys / 4);

  bench::PrintHeader("contended-engine",
                     "multi-client replay against ONE shared pool: clients x overlap sweep");

  workload::YcsbConfig ycsb;
  ycsb.workload = workload_name.empty() ? 'A' : workload_name[0];
  ycsb.num_keys = keys;
  // A hot head (theta > 1) plus a 4x-over-subscribed capacity keeps the
  // update-CAS and eviction/victim races busy; that contention is what this
  // bench exists to measure.
  ycsb.zipf_theta = theta;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, seed);

  core::DittoConfig config;
  config.experts = {"lru", "lfu"};

  // --- Section 1: hot-path cost, single client, cost model off ------------
  // The comparison deployment fits the whole keyspace (capacity = keys): at a
  // steady ~100% hit rate the replay loop itself dominates, which is exactly
  // the path the allocation-free refactor targets. The churny sweep capacity
  // below would bury that signal under eviction sampling.
  std::printf("# workload=YCSB-%c keys=%llu requests=%llu sweep_capacity=%llu\n",
              ycsb.workload, static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(capacity));
  std::printf("# single-thread replay hot path (cost model off; wall clock; best of %d)\n",
              kHotPathRounds);
  std::printf("%-22s %12s %10s\n", "path", "wall_mops", "hit_pct");

  double wall_string = 0.0;
  double wall_free = 0.0;
  double hit_string = 0.0;
  double hit_free = 0.0;
  for (int round = 0; round < kHotPathRounds; ++round) {
    {
      bench::DittoDeployment d = bench::MakeDitto(
          bench::MakePoolConfig(keys, 1, /*costed=*/false), config, 1);
      const bench::WallTimer timer;
      sim::RunResult r = ReplayAllocString(d.raw[0], trace, 128);
      wall_string = std::max(wall_string, timer.Mops(r.ops));
      hit_string = r.hit_rate;
      if (round + 1 == kHotPathRounds) {
        std::printf("%-22s %12.3f %10.2f\n", "alloc-string", wall_string,
                    r.hit_rate * 100.0);
        bench::EmitBenchJson("contended", "clients=1,path=alloc-string", r, wall_string);
      }
    }
    {
      bench::DittoDeployment d = bench::MakeDitto(
          bench::MakePoolConfig(keys, 1, /*costed=*/false), config, 1);
      sim::RunOptions options;
      options.value_bytes = 128;
      // No warmup here, so the engine's own wall measurement covers the whole
      // replay — the same region ReplayAllocString's timer covers above.
      sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
      wall_free = std::max(wall_free, r.wall_mops);
      hit_free = r.hit_rate;
      if (round + 1 == kHotPathRounds) {
        std::printf("%-22s %12.3f %10.2f\n", "alloc-free", wall_free, r.hit_rate * 100.0);
        // The deployment is uncosted, so the virtual-time fields are
        // artifacts (~1ns elapsed); report only the measured wall rate so
        // the JSON trajectory stays diffable.
        r.throughput_mops = 0.0;
        r.p50_us = 0.0;
        r.p99_us = 0.0;
        bench::EmitBenchJson("contended", "clients=1,path=alloc-free", r, wall_free);
      }
    }
  }
  if (hit_string != hit_free) {
    std::printf("# WARNING: hit rates diverged (%.6f vs %.6f) — paths are not equivalent\n",
                hit_string, hit_free);
  }
  std::printf("# alloc-free / alloc-string speedup: %.2fx\n\n",
              wall_string > 0.0 ? wall_free / wall_string : 0.0);

  // --- Section 2: clients x overlap sweep ---------------------------------
  std::vector<int> client_counts = {1, 2, 4, 8};
  if (flags.Has("clients")) {
    client_counts = {static_cast<int>(flags.GetInt("clients", 1))};
  }
  std::vector<double> overlaps = {0.0, 0.5, 1.0};
  if (flags.Has("overlap")) {
    overlaps = {flags.GetDouble("overlap", 1.0)};
  }

  std::printf("%-8s %8s %12s %12s %8s %14s %14s\n", "clients", "overlap", "wall_mops",
              "tput_mops", "hit_pct", "cas_failures", "insert_retries");
  for (const int clients : client_counts) {
    for (const double overlap : overlaps) {
      const workload::Trace contended = RemapForOverlap(trace, keys, clients, overlap);
      core::DittoConfig contended_config = config;
      contended_config.validate_inserts = true;  // shared pool: insert races possible
      bench::DittoDeployment d =
          bench::MakeDitto(bench::MakePoolConfig(capacity), contended_config, clients);
      sim::RunOptions options;
      options.value_bytes = 128;
      options.warmup_fraction = 0.2;
      // The engine measures wall time over the measured region only (warmup
      // excluded), consistent with every other bench's wall_mops.
      const sim::RunResult r =
          sim::RunTraceContended(d.raw, contended, {&d.pool->node()}, options);
      std::printf("%-8d %8.2f %12.3f %12.3f %8.2f %14llu %14llu\n", clients, overlap,
                  r.wall_mops, r.throughput_mops, r.hit_rate * 100.0,
                  static_cast<unsigned long long>(r.cas_failures),
                  static_cast<unsigned long long>(r.insert_retries));
      char label[64];
      std::snprintf(label, sizeof(label), "clients=%d,overlap=%.2f", clients, overlap);
      bench::EmitBenchJson("contended", label, r);
    }
  }
  std::printf("\n# expected shape: cas_failures grow with clients and overlap; the\n"
              "# alloc-free row beats alloc-string at identical hit rate.\n");
  return 0;
}
