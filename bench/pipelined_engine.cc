// Completion-queue verb-pipeline engine bench: sweeps the per-client
// pipeline depth (RunOptions::pipeline_depth) and reports simulated
// throughput, latency, and hit rate at each depth.
//
// Depth 1 replays through the classic blocking path — every signalled verb
// charges a full RTT before the next issues, capping a client at ~1/RTT ops.
// Depth K keeps K independent ops in flight per client on the rdma::Verbs
// completion queue: ops still execute (and mutate cache state) in issue
// order, so the hit rate is bit-identical at every depth, while the verb
// latencies overlap and throughput scales until the NIC message rate (or the
// op mix's inherent dependency chain) binds. The sweep prints the speedup
// over depth 1 and asserts hit-rate invariance.
//
// Flags:
//   --keys=N       key-space size                       (default 16384)
//   --requests=N   trace length (x --scale)             (default 400000)
//   --clients=N    concurrent clients on one pool       (default 4)
//   --depth=N      fix the sweep to one depth           (default 1,2,4,8,16,32)
//   --workload=X   YCSB core workload                   (default C)
//   --theta=F      zipfian skew                         (default 0.99)
//   --penalty=F    miss penalty in us                   (default 0)
//   --seed=N       trace seed                           (default 42)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 16384);
  const uint64_t requests = flags.GetInt("requests", 400000) * flags.GetInt("scale", 1);
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const uint64_t seed = flags.GetInt("seed", 42);
  const std::string workload_name = flags.GetString("workload", "C");
  const double theta = flags.GetDouble("theta", 0.99);
  const double penalty_us = flags.GetDouble("penalty", 0.0);
  const uint64_t capacity = std::max<uint64_t>(1, keys / 4);

  bench::PrintHeader("pipelined_engine",
                     "completion-queue verb pipeline: K in-flight ops per client");
  std::printf("# workload=%s theta=%.2f keys=%llu requests=%llu clients=%d capacity=%llu\n",
              workload_name.c_str(), theta, static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(requests), clients,
              static_cast<unsigned long long>(capacity));

  workload::YcsbConfig ycsb;
  ycsb.workload = workload_name.empty() ? 'C' : workload_name[0];
  ycsb.num_keys = keys;
  ycsb.zipf_theta = theta;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, seed);

  std::vector<size_t> depths = {1, 2, 4, 8, 16, 32};
  if (flags.GetInt("depth", 0) > 0) {
    depths = {static_cast<size_t>(flags.GetInt("depth", 0))};
  }

  std::printf("%-8s %10s %9s %10s %8s %9s %9s %12s\n", "depth", "tput_mops", "speedup",
              "wall_mops", "hit_pct", "p50_us", "p99_us", "nic_msgs");
  double base_tput = 0.0;
  double base_hit = -1.0;
  bool hit_invariant = true;
  for (const size_t depth : depths) {
    // Fresh deployment per depth: identical cold-start state, so any hit-rate
    // difference across rows could only come from the pipeline itself.
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    bench::DittoDeployment d =
        bench::MakeDitto(bench::MakePoolConfig(capacity), config, clients);

    sim::RunOptions options;
    options.warmup_fraction = 0.2;
    options.miss_penalty_us = penalty_us;
    options.pipeline_depth = depth;
    const sim::RunResult r =
        sim::RunTrace(d.raw, trace, &d.pool->node(), options);

    if (base_hit < 0.0) {
      base_tput = r.throughput_mops;
      base_hit = r.hit_rate;
    } else if (std::abs(r.hit_rate - base_hit) > 1e-12) {
      hit_invariant = false;
    }
    const double speedup = base_tput > 0.0 ? r.throughput_mops / base_tput : 0.0;
    std::printf("%-8zu %10.3f %8.2fx %10.3f %8.3f %9.2f %9.2f %12llu\n", depth,
                r.throughput_mops, speedup, r.wall_mops, r.hit_rate * 100.0, r.p50_us,
                r.p99_us, static_cast<unsigned long long>(r.nic_messages));
    char label[64];
    std::snprintf(label, sizeof(label), "depth=%zu clients=%d", depth, clients);
    bench::EmitBenchJson("pipeline", label, r);
  }
  if (!hit_invariant) {
    std::printf("ERROR: hit rate varied across pipeline depths\n");
    return 1;
  }
  std::printf("# hit rate identical across all depths (pipelining overlaps time, not state)\n");
  return 0;
}
