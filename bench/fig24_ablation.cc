// Figure 24: contribution of each technique, measured by disabling them one
// at a time on the webmail-like workload (no miss penalty):
//   SFHT - sample-friendly hash table (metadata co-located with slots)
//   LWH  - lightweight (embedded) eviction history
//   LWU  - lazy weight updates
//   FC   - frequency-counter cache
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t requests = flags.GetInt("requests", 150000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 16000);
  // Enough clients to put the MN RNIC near saturation: the techniques save
  // messages, so their contribution shows when the message rate binds.
  const int clients = static_cast<int>(flags.GetInt("clients", 128));

  const workload::Trace trace = workload::MakeNamedTrace("webmail", requests, footprint, 24);
  const uint64_t capacity = workload::Footprint(trace) / 10;

  bench::PrintHeader("Figure 24", "ablation: disable one technique at a time (webmail-like)");
  std::printf("%-22s %12s %10s %10s %12s\n", "configuration", "tput_mops", "hit_rate",
              "p99_us", "vs_full");

  auto run = [&](const char* label, auto mutate, double full_tput) -> double {
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    mutate(config);
    bench::DittoDeployment d =
        bench::MakeDitto(bench::MakePoolConfig(capacity), config, clients);
    sim::RunOptions options;
    options.warmup_fraction = 0.3;
    const sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
    const double rel = full_tput > 0.0 ? r.throughput_mops / full_tput : 1.0;
    std::printf("%-22s %12.4f %10.4f %10.1f %11.1f%%\n", label, r.throughput_mops,
                r.hit_rate, r.p99_us, rel * 100.0);
    return r.throughput_mops;
  };

  const double full = run("ditto (full)", [](core::DittoConfig&) {}, 0.0);
  run("- SFHT", [](core::DittoConfig& c) { c.enable_sfht = false; }, full);
  run("- LWH", [](core::DittoConfig& c) { c.enable_history = false; }, full);
  run("- LWU", [](core::DittoConfig& c) { c.enable_lazy_weights = false; }, full);
  run("- FC cache", [](core::DittoConfig& c) { c.enable_fc_cache = false; }, full);
  run("- all four", [](core::DittoConfig& c) {
    c.enable_sfht = false;
    c.enable_history = false;
    c.enable_lazy_weights = false;
    c.enable_fc_cache = false;
  }, full);

  std::printf("\n# expected shape (paper): SFHT contributes ~42%% throughput, LWH ~13%%,\n"
              "# LWU+FC ~4%%; each ablation lands below the full configuration.\n");
  return 0;
}
