// Figure 3: hit rates of LRU and LFU when two applications — one
// LRU-friendly, one LFU-friendly — share a cache and the number of client
// threads assigned to each application varies. The overall access pattern is
// the mixture, so the best algorithm flips with the compute allocation.
#include <cstdio>

#include "common/flags.h"
#include "common/rand.h"
#include "sim/hit_rate.h"
#include "workloads/synthetic_traces.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t requests = flags.GetInt("requests", 200000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 20000);
  const size_t capacity = footprint / 10;
  const int total_clients = 16;

  std::printf("# Figure 3: hit rate vs client allocation across two applications\n");
  std::printf("# app A: LRU-friendly (shifting hot set); app B: LFU-friendly (zipf+noise)\n");
  std::printf("%-14s %10s %10s %8s\n", "lfu_clients", "lru_hit", "lfu_hit", "best");

  for (int lfu_clients = 0; lfu_clients <= total_clients; lfu_clients += 4) {
    const double frac_b = static_cast<double>(lfu_clients) / total_clients;
    const auto n_b = static_cast<uint64_t>(frac_b * static_cast<double>(requests));
    // App A keys live in [0, footprint); app B keys start at 2*footprint.
    workload::Trace a = workload::MakeShiftingHotSet(
        requests - n_b, footprint, footprint / 10, requests / 60, footprint / 16, 3);
    workload::Trace b =
        workload::MakeLfuFriendly(n_b, footprint / 2, 0.99, 0.3, 4, 2 * footprint);
    // Interleave the two applications' request streams.
    workload::Trace mixed;
    mixed.reserve(a.size() + b.size());
    size_t ia = 0;
    size_t ib = 0;
    Rng rng(7);
    while (ia < a.size() || ib < b.size()) {
      const bool from_a = ib >= b.size() || (ia < a.size() && rng.NextDouble() < 1.0 - frac_b);
      mixed.push_back(from_a ? a[ia++] : b[ib++]);
    }
    const double lru = sim::ReplayHitRate(mixed, capacity, policy::PrecisePolicyKind::kLru);
    const double lfu = sim::ReplayHitRate(mixed, capacity, policy::PrecisePolicyKind::kLfu);
    std::printf("%-14d %10.4f %10.4f %8s\n", lfu_clients, lru, lfu,
                lru >= lfu ? "LRU" : "LFU");
  }
  std::printf("\n# expected shape: LRU wins when most clients run the LRU-friendly app;\n"
              "# LFU overtakes as compute shifts to the LFU-friendly app.\n");
  return 0;
}
