// Figure 4: LRU vs LFU hit rates on the same workload (webmail-like) across
// cache sizes. The best algorithm flips with the memory allocation, which is
// why memory elasticity on DM demands adaptive caching.
#include <cstdio>

#include "common/flags.h"
#include "sim/hit_rate.h"
#include "workloads/synthetic_traces.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t requests = flags.GetInt("requests", 300000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 20000);

  const workload::Trace trace = workload::MakeNamedTrace("webmail", requests, footprint, 1);
  const uint64_t actual_footprint = workload::Footprint(trace);

  std::printf("# Figure 4: hit rate vs cache size (webmail-like trace, footprint %llu)\n",
              static_cast<unsigned long long>(actual_footprint));
  std::printf("%-12s %10s %10s %8s\n", "cache_frac", "lru_hit", "lfu_hit", "best");
  for (const double frac : {0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.60}) {
    const auto capacity = static_cast<size_t>(frac * static_cast<double>(actual_footprint));
    const double lru = sim::ReplayHitRate(trace, capacity, policy::PrecisePolicyKind::kLru);
    const double lfu = sim::ReplayHitRate(trace, capacity, policy::PrecisePolicyKind::kLfu);
    std::printf("%-12.2f %10.4f %10.4f %8s\n", frac, lru, lfu, lru >= lfu ? "LRU" : "LFU");
  }
  std::printf("\n# expected shape: the winner flips across cache sizes (paper: LRU small,\n"
              "# LFU large on webmail).\n");
  return 0;
}
