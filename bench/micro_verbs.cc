// Microbenchmarks of the simulated-RDMA substrate primitives (real wall-clock
// cost of the simulation itself, via google-benchmark). These guard against
// the simulator becoming the bottleneck of the experiment harness.
#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/rand.h"
#include "core/ditto_client.h"
#include "dm/pool.h"
#include "rdma/verbs.h"
#include "workloads/trace.h"

namespace {

using namespace ditto;

void BM_ArenaRead256(benchmark::State& state) {
  rdma::MemoryArena arena(1 << 20);
  uint8_t buf[256];
  uint64_t addr = 0;
  for (auto _ : state) {
    arena.Read(addr, buf, sizeof(buf));
    addr = (addr + 256) & ((1 << 20) - 256 - 1) & ~7ULL;
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_ArenaRead256);

void BM_ArenaCas(benchmark::State& state) {
  rdma::MemoryArena arena(4096);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.CompareSwap(64, i, i + 1));
    ++i;
  }
}
BENCHMARK(BM_ArenaCas);

void BM_VerbReadCosted(benchmark::State& state) {
  rdma::RemoteNode node(1 << 20, rdma::CostModel{});
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&node, &ctx);
  uint8_t buf[320];
  for (auto _ : state) {
    verbs.Read(0, buf, sizeof(buf));
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_VerbReadCosted);

void BM_HashKey(benchmark::State& state) {
  const std::string key = workload::KeyString(0x123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashKey(key));
  }
}
BENCHMARK(BM_HashKey);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(1);
  ScrambledZipfianGenerator zipf(10'000'000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_DittoGetHit(benchmark::State& state) {
  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 32 << 20;
  pool_config.num_buckets = 4096;
  pool_config.cost = rdma::CostModel::Disabled();
  dm::MemoryPool pool(pool_config);
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  core::DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  core::DittoClient client(&pool, &ctx, config);
  client.Set("bench-key", std::string(232, 'v'));
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Get("bench-key", &value));
  }
}
BENCHMARK(BM_DittoGetHit);

void BM_DittoSetUpdate(benchmark::State& state) {
  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 32 << 20;
  pool_config.num_buckets = 4096;
  pool_config.cost = rdma::CostModel::Disabled();
  dm::MemoryPool pool(pool_config);
  core::DittoConfig config;
  config.experts = {"lru"};
  core::DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  core::DittoClient client(&pool, &ctx, config);
  const std::string value(232, 'v');
  client.Set("bench-key", value);
  for (auto _ : state) {
    client.Set("bench-key", value);
  }
}
BENCHMARK(BM_DittoSetUpdate);

}  // namespace

BENCHMARK_MAIN();
