// Figure 23 + Table 3: all twelve caching algorithms run as single-expert
// Ditto configurations on the webmail-like workload with variable object
// sizes (64..960-byte values) and a byte-bounded cache, so the size-aware
// algorithms (SIZE, GDS, GDSF) have a real size signal to exploit. Reports
// penalized throughput, hit rate, and the integration effort (lines of
// priority/update code) per algorithm.
#include <cstdio>
#include <map>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t requests = flags.GetInt("requests", 200000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 40000);
  const int clients = static_cast<int>(flags.GetInt("clients", 16));
  const double cache_frac = flags.GetDouble("cache_frac", 0.15);

  const workload::Trace trace = workload::MakeNamedTrace("webmail", requests, footprint, 23);
  const uint64_t fp = workload::Footprint(trace);

  // Byte-bounded pool: the heap is the cache budget; the object-count gate is
  // effectively disabled so evictions trigger on allocator exhaustion.
  const size_t avg_object_bytes = 576;  // header + 17-B key + ~512-B value, padded
  const auto heap_budget =
      static_cast<size_t>(cache_frac * static_cast<double>(fp) * avg_object_bytes);
  const uint64_t approx_objects = heap_budget / avg_object_bytes;

  sim::RunOptions options;
  options.value_bytes = 64;
  options.value_bytes_max = 960;
  options.miss_penalty_us = 500.0;
  options.warmup_fraction = 0.3;

  // Lines of priority/update code in src/policies/algorithms.h per
  // algorithm (this repo), next to the paper's Table 3 counts.
  const std::map<std::string, std::pair<int, int>> loc = {
      {"lru", {3, 9}},       {"lfu", {4, 9}},        {"mru", {3, 9}},
      {"gds", {7, 14}},      {"lirs", {10, 12}},     {"fifo", {3, 9}},
      {"size", {3, 9}},      {"gdsf", {8, 14}},      {"lrfu", {14, 17}},
      {"lruk", {9, 23}},     {"lfuda", {12, 14}},    {"hyperbolic", {7, 11}}};

  bench::PrintHeader("Figure 23 + Table 3",
                     "12 caching algorithms, variable-size objects, byte-bounded cache");
  std::printf("%-12s %12s %10s %10s %12s\n", "algorithm", "tput_mops", "hit_rate",
              "loc(ours)", "loc(paper)");
  for (const std::string& name : policy::AllPolicyNames()) {
    dm::PoolConfig pool_config;
    pool_config.num_buckets = 1;
    while (pool_config.num_buckets * 8 < approx_objects * 4) {
      pool_config.num_buckets *= 2;
    }
    pool_config.segment_bytes = 8 << 10;
    pool_config.memory_bytes = dm::kSuperblockBytes +
                               pool_config.num_buckets * 8 * 40 + heap_budget;
    pool_config.capacity_objects = uint64_t{1} << 40;  // byte-gated, not count-gated
    dm::MemoryPool pool(pool_config);
    pool.SetHistorySize(approx_objects);

    core::DittoConfig config;
    config.experts = {name};
    bench::DittoDeployment d;
    d.pool = std::make_unique<dm::MemoryPool>(pool_config);
    d.pool->SetHistorySize(approx_objects);
    d.server = std::make_unique<core::DittoServer>(d.pool.get(), config);
    d.Resize(clients, config);

    const sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
    std::printf("%-12s %12.4f %10.4f %10d %12d\n", name.c_str(), r.throughput_mops,
                r.hit_rate, loc.at(name).first, loc.at(name).second);
  }
  std::printf("\n# expected shape: size-aware algorithms (SIZE/GDS/GDSF) lead under the\n"
              "# byte budget (paper: SIZE best, MRU worst); every algorithm integrates in\n"
              "# ~a dozen lines of priority/update code.\n");
  return 0;
}
