// Figure 18: box plot of the hit rates of Ditto, max(Ditto-LRU, Ditto-LFU)
// and min(Ditto-LRU, Ditto-LFU), each normalized over random eviction, on a
// 33-workload suite (IBM/CloudPhysics-like). Prints box statistics
// (min/q1/median/q3/max).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "realworld_common.h"
#include "sim/hit_rate.h"

namespace {

struct Box {
  double min, q1, median, q3, max;
};

Box BoxOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const auto at = [&](double q) { return v[static_cast<size_t>(q * (v.size() - 1))]; };
  return Box{v.front(), at(0.25), at(0.5), at(0.75), v.back()};
}

void PrintBox(const char* label, const Box& b) {
  std::printf("%-22s %8.3f %8.3f %8.3f %8.3f %8.3f\n", label, b.min, b.q1, b.median, b.q3,
              b.max);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const int num_workloads = static_cast<int>(flags.GetInt("workloads", 33));
  const uint64_t requests = flags.GetInt("requests", 60000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 8000);
  const int clients = static_cast<int>(flags.GetInt("clients", 8));

  bench::PrintHeader("Figure 18",
                     "relative hit rates (normalized over random eviction), 33 workloads");

  std::vector<double> ditto_rel;
  std::vector<double> best_rel;
  std::vector<double> worst_rel;
  for (int w = 0; w < num_workloads; ++w) {
    const workload::Trace trace = workload::MakeSuiteWorkload(w, requests, footprint, 23);
    const uint64_t capacity = workload::Footprint(trace) / 10;
    const double random_rate = sim::ReplayHitRate(trace, capacity,
                                                  policy::PrecisePolicyKind::kRandom);
    const double base = std::max(random_rate, 1e-3);
    const double ditto = bench::RunVariant("ditto", trace, capacity, clients, 0.0).hit_rate;
    const double lru = bench::RunVariant("ditto-lru", trace, capacity, clients, 0.0).hit_rate;
    const double lfu = bench::RunVariant("ditto-lfu", trace, capacity, clients, 0.0).hit_rate;
    ditto_rel.push_back(ditto / base);
    best_rel.push_back(std::max(lru, lfu) / base);
    worst_rel.push_back(std::min(lru, lfu) / base);
  }

  std::printf("%-22s %8s %8s %8s %8s %8s\n", "series", "min", "q1", "median", "q3", "max");
  PrintBox("ditto", BoxOf(ditto_rel));
  PrintBox("max(lru,lfu)", BoxOf(best_rel));
  PrintBox("min(lru,lfu)", BoxOf(worst_rel));

  int above_worst = 0;
  for (int i = 0; i < num_workloads; ++i) {
    if (ditto_rel[i] >= worst_rel[i] - 0.02) {
      above_worst++;
    }
  }
  std::printf("\n# ditto >= min(lru,lfu) on %d/%d workloads "
              "(paper: ditto's box approaches max(lru,lfu))\n",
              above_worst, num_workloads);
  return 0;
}
