// Figure 5: the effect of concurrent clients on hit rates.
//   (a) CDF of the relative hit-rate change (h_max - h_min)/h_max across a
//       74-workload suite when the client count varies from 1 to 512;
//   (b) an example trace where LFU wins at low client counts but loses to
//       LRU as concurrency grows.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "sim/hit_rate.h"
#include "workloads/synthetic_traces.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const int num_workloads = static_cast<int>(flags.GetInt("workloads", 74));
  const uint64_t requests = flags.GetInt("requests", 80000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 8000);
  const std::vector<int> client_counts = {1, 8, 64, 512};

  std::printf("# Figure 5a: CDF of relative hit-rate change across %d workloads\n",
              num_workloads);
  std::vector<double> lru_changes;
  std::vector<double> lfu_changes;
  int best_changes = 0;
  for (int w = 0; w < num_workloads; ++w) {
    const workload::Trace trace = workload::MakeSuiteWorkload(w, requests, footprint, 11);
    const size_t capacity = footprint / 10;
    lru_changes.push_back(sim::RelativeHitRateChange(trace, capacity,
                                                     policy::PrecisePolicyKind::kLru,
                                                     client_counts));
    lfu_changes.push_back(sim::RelativeHitRateChange(trace, capacity,
                                                     policy::PrecisePolicyKind::kLfu,
                                                     client_counts));
    // Does the better algorithm flip with the client count?
    int lru_best = 0;
    int lfu_best = 0;
    for (const int clients : client_counts) {
      const double lru =
          sim::ReplayHitRate(trace, capacity, policy::PrecisePolicyKind::kLru, clients);
      const double lfu =
          sim::ReplayHitRate(trace, capacity, policy::PrecisePolicyKind::kLfu, clients);
      (lru >= lfu ? lru_best : lfu_best)++;
    }
    if (lru_best != 0 && lfu_best != 0) {
      best_changes++;
    }
  }
  std::sort(lru_changes.begin(), lru_changes.end());
  std::sort(lfu_changes.begin(), lfu_changes.end());
  std::printf("%-10s %12s %12s\n", "percentile", "lru_change", "lfu_change");
  for (const double p : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    const auto idx = std::min(lru_changes.size() - 1,
                              static_cast<size_t>(p * static_cast<double>(lru_changes.size())));
    std::printf("%-10.1f %12.4f %12.4f\n", p, lru_changes[idx], lfu_changes[idx]);
  }
  std::printf("# workloads whose best algorithm changes with client count: %d/%d "
              "(paper: 36%%)\n",
              best_changes, num_workloads);

  std::printf("\n# Figure 5b: example trace whose best algorithm flips with concurrency\n");
  // Pick the first suite workload where the winner at 1 client differs from
  // the winner at 512 clients (the paper's example FIU trace behaves so).
  int example_index = 7;
  for (int w = 0; w < num_workloads; ++w) {
    const workload::Trace t = workload::MakeSuiteWorkload(w, requests, footprint, 11);
    const size_t cap = footprint / 10;
    const bool lfu_at_1 = sim::ReplayHitRate(t, cap, policy::PrecisePolicyKind::kLfu, 1) >
                          sim::ReplayHitRate(t, cap, policy::PrecisePolicyKind::kLru, 1);
    const bool lfu_at_512 = sim::ReplayHitRate(t, cap, policy::PrecisePolicyKind::kLfu, 512) >
                            sim::ReplayHitRate(t, cap, policy::PrecisePolicyKind::kLru, 512);
    if (lfu_at_1 != lfu_at_512) {
      example_index = w;
      break;
    }
  }
  std::printf("# suite workload %d\n", example_index);
  std::printf("%-10s %10s %10s %8s\n", "clients", "lru_hit", "lfu_hit", "best");
  const workload::Trace example =
      workload::MakeSuiteWorkload(example_index, requests * 2, footprint, 11);
  for (const int clients : {1, 4, 16, 64, 256, 512}) {
    const double lru = sim::ReplayHitRate(example, footprint / 10,
                                          policy::PrecisePolicyKind::kLru, clients);
    const double lfu = sim::ReplayHitRate(example, footprint / 10,
                                          policy::PrecisePolicyKind::kLfu, clients);
    std::printf("%-10d %10.4f %10.4f %8s\n", clients, lru, lfu, lru >= lfu ? "LRU" : "LFU");
  }
  return 0;
}
