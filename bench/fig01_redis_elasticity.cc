// Figure 1: throughput and tail latency of a sharded Redis cluster while
// scaling 32 -> 64 -> 32 nodes under YCSB-C (10M 256-B pairs).
//
// Reproduces the paper's observations: migration takes minutes, throughput
// dips and p99 rises while migrating, and resource reclamation after the
// shrink is delayed by the reverse migration.
#include <cstdio>

#include "baselines/redis_model.h"
#include "common/flags.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);

  baselines::RedisModelConfig config;
  config.initial_shards = static_cast<int>(flags.GetInt("shards", 32));
  config.num_keys = flags.GetInt("keys", 10'000'000);
  baselines::RedisModel model(config);

  std::printf("# Figure 1: Redis elasticity under YCSB-C (%llu keys, 256B)\n",
              static_cast<unsigned long long>(config.num_keys));
  std::printf("# scale-out to 64 at t=180s; scale-in to 32 at 180s after cutover\n");
  std::printf("%8s %8s %10s %9s %9s %10s %7s\n", "time_s", "shards", "tput_mops", "p50_us",
              "p99_us", "migrating", "target");

  const double dt = 15.0;
  bool scaled_out = false;
  bool scaled_in = false;
  double stable_since = -1.0;
  double scale_out_start = 0.0;
  double scale_out_done = 0.0;
  double scale_in_start = 0.0;
  double scale_in_done = 0.0;

  for (double t = 0.0; t <= 1500.0; t += dt) {
    if (!scaled_out && t >= 180.0) {
      model.Resize(64);
      scaled_out = true;
      scale_out_start = t;
    }
    const baselines::RedisSample s = model.Tick(dt);
    if (scaled_out && scale_out_done == 0.0 && s.active_shards == 64) {
      scale_out_done = s.time_s;
      stable_since = s.time_s;
    }
    if (scaled_out && !scaled_in && stable_since > 0.0 && s.time_s >= stable_since + 180.0) {
      model.Resize(32);
      scaled_in = true;
      scale_in_start = s.time_s;
    }
    if (scaled_in && scale_in_done == 0.0 && s.active_shards == 32) {
      scale_in_done = s.time_s;
    }
    std::printf("%8.0f %8d %10.3f %9.1f %9.1f %10s %7d\n", s.time_s, s.active_shards,
                s.throughput_mops, s.p50_us, s.p99_us, s.migrating ? "yes" : "no",
                s.target_shards);
  }

  std::printf("\n# summary\n");
  std::printf("scale-out migration: %.1f s (paper: 5.3 min = 318 s)\n",
              scale_out_done - scale_out_start);
  std::printf("scale-in  reclamation delay: %.1f s (paper: 5.6 min = 336 s)\n",
              scale_in_done - scale_in_start);
  std::printf("steady tput 32 shards: %.2f Mops, 64 shards: %.2f Mops\n",
              model.SteadyThroughputMops(32), model.SteadyThroughputMops(64));
  return 0;
}
