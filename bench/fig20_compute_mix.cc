// Figure 20: relative hit rates (normalized to Ditto-LRU) as the proportion
// of clients assigned to an LRU-friendly application vs an LFU-friendly one
// varies. Ditto adapts to whichever mixture the compute allocation creates.
#include <cstdio>

#include "realworld_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t requests = flags.GetInt("requests", 150000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 16000);
  const int clients = static_cast<int>(flags.GetInt("clients", 16));

  bench::PrintHeader("Figure 20", "hit rate vs LRU-app client proportion (normalized to "
                                  "ditto-lru)");
  std::printf("%-12s %10s %10s %10s %12s %12s\n", "lru_portion", "ditto", "d-lru", "d-lfu",
              "ditto_rel", "lfu_rel");

  for (const double lru_portion : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto n_lru = static_cast<uint64_t>(lru_portion * static_cast<double>(requests));
    workload::Trace lru_app = workload::MakeShiftingHotSet(
        n_lru, footprint, footprint / 10, requests / 60, footprint / 16, 3);
    workload::Trace lfu_app = workload::MakeLfuFriendly(requests - n_lru, footprint / 2, 0.99,
                                                        0.3, 4, 2 * footprint);
    workload::Trace mixed;
    mixed.reserve(requests);
    size_t ia = 0;
    size_t ib = 0;
    Rng rng(7);
    while (ia < lru_app.size() || ib < lfu_app.size()) {
      const bool from_a =
          ib >= lfu_app.size() || (ia < lru_app.size() && rng.NextDouble() < lru_portion);
      mixed.push_back(from_a ? lru_app[ia++] : lfu_app[ib++]);
    }
    const uint64_t capacity = workload::Footprint(mixed) / 10;
    const double ditto = bench::RunVariant("ditto", mixed, capacity, clients, 0.0).hit_rate;
    const double lru = bench::RunVariant("ditto-lru", mixed, capacity, clients, 0.0).hit_rate;
    const double lfu = bench::RunVariant("ditto-lfu", mixed, capacity, clients, 0.0).hit_rate;
    std::printf("%-12.1f %10.4f %10.4f %10.4f %12.3f %12.3f\n", lru_portion, ditto, lru, lfu,
                ditto / std::max(lru, 1e-9), lfu / std::max(lru, 1e-9));
  }
  std::printf("\n# expected shape: ditto >= ditto-lru at low LRU portions (tracks LFU) and\n"
              "# converges to ditto-lru as the LRU portion grows.\n");
  return 0;
}
