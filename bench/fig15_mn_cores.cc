// Figure 15: throughput of Ditto, CliqueMap and the Redis model as the
// number of memory-node CPU cores grows (256 clients, YCSB-A and YCSB-C).
//
// Expected shape: Ditto is flat (it never uses MN compute); CliqueMap scales
// with cores and needs 20+ to approach Ditto on YCSB-C; Redis is bounded by
// its hottest shard regardless of core count on the skewed workload.
#include <cstdio>

#include "baselines/redis_model.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 50000);
  const uint64_t requests = flags.GetInt("requests", 120000) * flags.GetInt("scale", 1);
  const int clients = static_cast<int>(flags.GetInt("clients", 128));

  bench::PrintHeader("Figure 15", "throughput vs MN CPU cores (256 clients in the paper)");

  for (const char workload : {'A', 'C'}) {
    workload::YcsbConfig ycsb;
    ycsb.workload = workload;
    ycsb.num_keys = keys;
    const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, 1);

    std::printf("\n# YCSB-%c\n", workload);
    std::printf("%-8s %12s %12s %12s\n", "cores", "ditto_mops", "cm_mops", "redis_mops");
    for (const int cores : {1, 2, 4, 8, 16, 32}) {
      core::DittoConfig ditto_config;
      ditto_config.experts = {"lru", "lfu"};
      bench::DittoDeployment ditto =
          bench::MakeDitto(bench::MakePoolConfig(keys * 2, cores), ditto_config, clients);
      bench::Preload(ditto.raw, trace, 232);

      baselines::CliqueMapConfig cm_config;
      cm_config.sync_every = 100;
      bench::CmDeployment cm =
          bench::MakeCliqueMap(bench::MakePoolConfig(keys * 2, cores), cm_config, clients);
      bench::Preload(cm.raw, trace, 232);

      sim::RunOptions options;
      options.set_on_miss = false;
      const sim::RunResult rd = sim::RunTrace(ditto.raw, trace, &ditto.pool->node(), options);
      const sim::RunResult rc = sim::RunTrace(cm.raw, trace, &cm.pool->node(), options);

      baselines::RedisModelConfig redis_config;
      redis_config.initial_shards = cores;
      redis_config.num_keys = keys;
      baselines::RedisModel redis(redis_config);
      std::printf("%-8d %12.3f %12.3f %12.3f\n", cores, rd.throughput_mops,
                  rc.throughput_mops, redis.SteadyThroughputMops(cores));
    }
  }
  std::printf("\n# expected shape: Ditto flat; CliqueMap scales with cores; Redis bounded\n"
              "# by its hottest shard under the zipfian skew.\n");
  return 0;
}
