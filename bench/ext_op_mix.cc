// Typed-operation mix sweep over the CacheOp/ExecuteBatch protocol: replays
// a zipfian GET stream with controlled fractions of DELETE / EXPIRE /
// MULTIGET ops at several multi-get pipeline widths, reporting throughput,
// hit rate, op-outcome counters, and modeled wire traffic.
//
// The headline comparison is the last sweep block: the same lookup stream
// replayed with unfused multi-gets (batch=1, every key its own doorbell
// chain) versus fused pipelines (batch=8/32) must show strictly fewer NIC
// doorbells at equal hit rate — the protocol-level payoff of redesigning the
// client surface around batches.
//
// Flags:
//   --keys=N          key-space size                  (default 20000)
//   --requests=N      trace length (x --scale)        (default 100000)
//   --clients=N       concurrent clients              (default 4)
//   --delete=F        DELETE fraction of Gets         (default sweep)
//   --expire=F        EXPIRE fraction of Gets         (default sweep)
//   --multiget=F      MULTIGET fraction of Gets       (default sweep)
//   --batch=N         multi-get pipeline width        (default sweep 1/8/32)
//   --ttl=N           EXPIRE TTL in logical ticks     (default 256)
//   --seed=N          trace seed                      (default 42)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

struct MixRow {
  const char* label;
  ditto::workload::OpMix mix;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 20000);
  const uint64_t requests = flags.GetInt("requests", 100000) * flags.GetInt("scale", 1);
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const uint64_t seed = flags.GetInt("seed", 42);
  const uint64_t ttl = flags.GetInt("ttl", 256);

  bench::PrintHeader("ext-op-mix",
                     "typed op mix (GET/SET/DELETE/EXPIRE/MULTIGET) x multi-get batch sweep");

  workload::YcsbConfig ycsb;
  ycsb.workload = 'B';  // 95% reads: a realistic cache mix to rewrite
  ycsb.num_keys = keys;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, seed);

  std::vector<MixRow> mixes;
  if (flags.Has("delete") || flags.Has("expire") || flags.Has("multiget")) {
    workload::OpMix mix;
    mix.delete_fraction = flags.GetDouble("delete", 0.0);
    mix.expire_fraction = flags.GetDouble("expire", 0.0);
    mix.multiget_fraction = flags.GetDouble("multiget", 0.0);
    mixes.push_back({"custom", mix});
  } else {
    mixes.push_back({"pure-get", {}});
    mixes.push_back({"del-10%", {0.10, 0.0, 0.0}});
    mixes.push_back({"exp-10%", {0.0, 0.10, 0.0}});
    mixes.push_back({"mget-50%", {0.0, 0.0, 0.50}});
    mixes.push_back({"mixed", {0.05, 0.05, 0.40}});
  }
  std::vector<size_t> batch_sweep = {1, 8, 32};
  if (flags.Has("batch")) {
    batch_sweep = {static_cast<size_t>(flags.GetInt("batch", 8))};
  }

  std::printf("# workload=YCSB-%c keys=%llu requests=%llu clients=%d ttl=%llu\n", ycsb.workload,
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(requests), clients,
              static_cast<unsigned long long>(ttl));
  std::printf("%-10s %6s %10s %8s %9s %9s %9s %13s %11s\n", "mix", "batch", "tput_mops",
              "hit_pct", "deletes", "expired", "evicts", "nic_messages", "doorbells");

  for (const MixRow& row : mixes) {
    // Only multi-get-bearing mixes react to the pipeline width; sweep the
    // others once at batch=1 to keep the table compact.
    const bool sweeps_batch = row.mix.multiget_fraction > 0.0;
    for (const size_t batch : batch_sweep) {
      if (!sweeps_batch && batch != batch_sweep.front()) {
        continue;
      }
      core::DittoConfig config;
      config.experts = {"lru", "lfu"};
      bench::DittoDeployment d = bench::MakeDitto(
          bench::MakePoolConfig(std::max<uint64_t>(1, keys / 2)), config, clients);
      sim::RunOptions options;
      options.warmup_fraction = 0.2;
      options.op_mix = row.mix;
      options.multiget_batch = batch;
      options.expire_ttl_ticks = ttl;
      const sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
      std::printf("%-10s %6zu %10.3f %8.2f %9llu %9llu %9llu %13llu %11llu\n", row.label,
                  sweeps_batch ? batch : 1, r.throughput_mops, r.hit_rate * 100.0,
                  static_cast<unsigned long long>(r.deletes),
                  static_cast<unsigned long long>(r.expired),
                  static_cast<unsigned long long>(r.evictions),
                  static_cast<unsigned long long>(r.nic_messages),
                  static_cast<unsigned long long>(r.nic_doorbells));
    }
  }
  std::printf("\n# expected shape: within a mget row, batch=8/32 issue strictly fewer\n"
              "# doorbells than batch=1 at identical hit_pct; delete/expire mixes surface\n"
              "# nonzero deletes/expired without disturbing the remaining GET hit rate.\n");
  return 0;
}
