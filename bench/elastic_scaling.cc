// Elastic scaling: hit-rate trajectory under a shrink -> hold -> expand
// resize schedule (the paper's defining scenario, Figures 13/22 family).
//
// Three systems absorb the same capacity schedule over the same trace:
//   ditto      Ditto clients observe the kRpcResize'd capacity and evict
//              down with the sampled multi-expert path; expansion takes
//              effect on the next admission.
//   lru-warm   precise LRU whose structure survives the resize (the best a
//              warm cache can do; upper bound).
//   lru-cold   precise LRU that COLD-RESTARTS at every scale event — the
//              monolithic-cluster behaviour, where a scale event rebuilds
//              the node set and the cache starts empty.
// The Redis migration model then prices the identical capacity change on a
// monolithic sharded cluster: minutes of key migration before the new
// capacity takes effect, with a throughput dip and p99 bump meanwhile.
//
// Flags: --keys=N --requests=N --capacity=N --shrink_num=N/--shrink_den=N
//        --clients=N --scale=N
#include <cstdio>

#include "baselines/redis_model.h"
#include "bench_common.h"
#include "sim/elastic_oracle.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 20000);
  const uint64_t requests = flags.GetInt("requests", 200000) * flags.GetInt("scale", 1);
  const uint64_t capacity = flags.GetInt("capacity", 5000);
  const uint64_t shrunk =
      capacity * flags.GetInt("shrink_num", 1) / std::max<int64_t>(1, flags.GetInt("shrink_den", 3));
  const int clients = static_cast<int>(flags.GetInt("clients", 8));

  bench::PrintHeader("elastic-scaling",
                     "hit-rate trajectory under a shrink -> hold -> expand capacity schedule");

  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = keys;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, /*seed=*/13);

  sim::RunOptions options;
  options.warmup_fraction = 0.2;
  options.resize_schedule = {{0.25, shrunk}, {0.625, capacity}};

  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  bench::DittoDeployment d = bench::MakeDitto(bench::MakePoolConfig(capacity), config, clients);
  const sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);

  const size_t measure_begin =
      static_cast<size_t>(options.warmup_fraction * static_cast<double>(trace.size()));
  const sim::OracleTrajectory warm = sim::ReplayLruOracle(
      trace, measure_begin, options.resize_schedule, capacity, /*cold_restart=*/false);
  const sim::OracleTrajectory cold = sim::ReplayLruOracle(
      trace, measure_begin, options.resize_schedule, capacity, /*cold_restart=*/true);

  std::printf("# keys=%llu requests=%llu clients=%d schedule: %llu -> %llu -> %llu objects\n",
              static_cast<unsigned long long>(keys), static_cast<unsigned long long>(requests),
              clients, static_cast<unsigned long long>(capacity),
              static_cast<unsigned long long>(shrunk),
              static_cast<unsigned long long>(capacity));
  std::printf("%-10s %10s %10s %10s %10s\n", "phase", "capacity", "ditto", "lru_warm",
              "lru_cold");
  const char* names[] = {"steady", "shrink", "expand"};
  for (size_t p = 0; p < r.phases.size(); ++p) {
    const uint64_t cap = p == 0 ? capacity : r.phases[p].capacity_objects;
    std::printf("%-10s %10llu %10.4f %10.4f %10.4f\n", p < 3 ? names[p] : "?",
                static_cast<unsigned long long>(cap), r.phases[p].hit_rate, warm.HitRate(p),
                cold.HitRate(p));
  }

  const double ditto_drop = r.phases[0].hit_rate - r.phases[1].hit_rate;
  const double cold_drop = cold.HitRate(0) - cold.HitRate(1);
  std::printf("\n# shrink cost (hit-rate drop): ditto %.4f vs cold-restart LRU %.4f\n",
              ditto_drop, cold_drop);

  // What the same shrink+expand costs a monolithic sharded cluster: key
  // migration at a bounded rate before any capacity change takes effect.
  baselines::RedisModelConfig redis_config;
  baselines::RedisModel redis(redis_config);
  const uint64_t per_shard = redis_config.num_keys / redis_config.initial_shards;
  redis.ResizeToCapacityObjects(redis_config.num_keys * shrunk / capacity, per_shard);
  const double migration_min = redis.migration_remaining_s() / 60.0;
  const baselines::RedisSample during = redis.Tick(1.0);
  std::printf("# redis-migration: the shrink reshards for %.1f min before reclaiming memory;\n"
              "# meanwhile tput dips to %.2f Mops and p99 rises to %.0f us. Ditto's resize\n"
              "# is one 8-byte controller RPC plus client-side eviction.\n",
              migration_min, during.throughput_mops, during.p99_us);

  bench::EmitBenchJson("elastic_scaling", "ditto", r);
  std::printf("\n# expected shape: ditto's shrink column drops less than lru_cold at equal\n"
              "# capacity, and the expand phase recovers toward the steady phase.\n");
  return 0;
}
