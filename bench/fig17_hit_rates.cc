// Figure 17: hit rates of Ditto, Ditto-LRU, Ditto-LFU, CM-LRU and CM-LFU on
// five real-world-like workloads across cache sizes (fraction of footprint).
#include <cstdio>

#include "realworld_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t requests = flags.GetInt("requests", 150000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 20000);
  const int clients = static_cast<int>(flags.GetInt("clients", 16));

  bench::PrintHeader("Figure 17", "hit rates on real-world-like workloads vs cache size");
  std::printf("%-20s %-8s %10s %10s %10s %10s %10s\n", "workload", "frac", "ditto",
              "ditto-lru", "ditto-lfu", "cm-lru", "cm-lfu");

  const std::vector<std::string> workloads = {"webmail", "twitter-transient",
                                              "twitter-storage", "twitter-compute", "ibm"};
  const std::vector<std::string> variants = {"ditto", "ditto-lru", "ditto-lfu", "cm-lru",
                                             "cm-lfu"};
  for (const std::string& name : workloads) {
    const workload::Trace trace = workload::MakeNamedTrace(name, requests, footprint, 5);
    const uint64_t fp = workload::Footprint(trace);
    for (const double frac : {0.05, 0.10, 0.20, 0.40}) {
      const auto capacity = static_cast<uint64_t>(frac * static_cast<double>(fp));
      std::printf("%-20s %-8.2f", name.c_str(), frac);
      for (const std::string& variant : variants) {
        const bench::VariantResult r =
            bench::RunVariant(variant, trace, capacity, clients, 0.0);
        std::printf(" %10.4f", r.hit_rate);
      }
      std::printf("\n");
    }
  }
  std::printf("\n# expected shape: Ditto approaches max(Ditto-LRU, Ditto-LFU) everywhere.\n");
  return 0;
}
