// Figure 2: the cost of maintaining caching data structures on DM.
//   (a) single-client throughput and latency of KVC (one lock-protected LRU
//       list), KVC-S (32 sharded lists, 5us backoff) and KVS (no structure);
//   (b) multi-client throughput: KVC/KVC-S collapse as lock-failure CAS
//       retries overwhelm the memory node's RNIC, KVS scales.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace ditto;

bench::ShardDeployment MakeVariant(const std::string& name, uint64_t keys, int clients) {
  baselines::ShardLruConfig config;
  if (name == "KVS") {
    config.maintain_list = false;
  } else if (name == "KVC") {
    config.num_shards = 1;
  } else {  // KVC-S
    config.num_shards = 32;
  }
  return bench::MakeShardLru(bench::MakePoolConfig(keys * 2), config, clients);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 20000);
  const uint64_t requests = flags.GetInt("requests", 60000) * flags.GetInt("scale", 1);

  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = keys;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, 1);

  bench::PrintHeader("Figure 2", "cost of caching data structures on DM (YCSB-C, no misses)");

  std::printf("\n# (a) single-client performance\n");
  std::printf("%-8s %10s %9s %9s\n", "system", "tput_mops", "p50_us", "p99_us");
  for (const std::string name : {"KVS", "KVC", "KVC-S"}) {
    bench::ShardDeployment d = MakeVariant(name, keys, 1);
    bench::Preload(d.raw, trace, 232);
    sim::RunOptions options;
    options.set_on_miss = false;
    const sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
    std::printf("%-8s %10.3f %9.1f %9.1f\n", name.c_str(), r.throughput_mops, r.p50_us,
                r.p99_us);
  }

  std::printf("\n# (b) multi-client throughput (Mops)\n");
  std::printf("%-8s", "clients");
  for (const std::string name : {"KVS", "KVC", "KVC-S"}) {
    std::printf(" %10s", name.c_str());
  }
  std::printf("\n");
  for (const int clients : {1, 2, 4, 8, 16, 32, 64, 96}) {
    std::printf("%-8d", clients);
    for (const std::string name : {"KVS", "KVC", "KVC-S"}) {
      bench::ShardDeployment d = MakeVariant(name, keys, clients);
      bench::Preload(d.raw, trace, 232);
      sim::RunOptions options;
      options.set_on_miss = false;
      const sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
      std::printf(" %10.3f", r.throughput_mops);
    }
    std::printf("\n");
  }
  std::printf("\n# expected shape: KVS scales with clients; KVC flat-lines early and\n"
              "# degrades as retry CASes saturate the RNIC; KVC-S degrades more mildly.\n");
  return 0;
}
