// Concurrent sharded engine on YCSB: sweeps host thread counts and doorbell
// batch sizes over a key-partitioned multi-node Ditto deployment, printing
// throughput, hit rate, and modeled wire traffic. Hit rates are identical
// for every --threads value (shard state is thread-private); batched runs
// put strictly fewer messages on the wire whenever hot keys repeat inside
// the batch window.
//
// Flags:
//   --workload=A|B|C|D  YCSB core workload            (default A)
//   --keys=N            key-space size                (default 50000)
//   --requests=N        trace length (x --scale)      (default 200000)
//   --shards=N          memory nodes / shards         (default 8)
//   --threads=LIST      comma-free sweep handled below; single int
//   --batch_ops=N       doorbell chain length, 0=off  (default 0)
//   --seed=N            partition + trace seed        (default 42)
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 50000);
  const uint64_t requests = flags.GetInt("requests", 200000) * flags.GetInt("scale", 1);
  const int shards = static_cast<int>(flags.GetInt("shards", 8));
  const uint64_t seed = flags.GetInt("seed", 42);
  const size_t batch_ops = flags.GetInt("batch_ops", 0);
  const std::string workload = flags.GetString("workload", "A");

  bench::PrintHeader("sharded-engine", "concurrent sharded replay: threads x batching sweep");

  workload::YcsbConfig ycsb;
  ycsb.workload = workload.empty() ? 'A' : workload[0];
  ycsb.num_keys = keys;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, seed);

  std::printf("# workload=YCSB-%c keys=%llu requests=%llu shards=%d\n", ycsb.workload,
              static_cast<unsigned long long>(keys), static_cast<unsigned long long>(requests),
              shards);
  std::printf("%-8s %10s %12s %12s %12s %10s %14s %14s\n", "threads", "batch", "tput_mops",
              "wall_mops", "wall/core", "hit_pct", "nic_messages", "doorbells");

  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (flags.Has("threads")) {
    thread_counts = {static_cast<int>(flags.GetInt("threads", 1))};
  }
  std::vector<size_t> batch_sweep = {0, 8, 32};
  if (flags.Has("batch_ops")) {
    batch_sweep = {batch_ops};
  }

  for (const int threads : thread_counts) {
    for (const size_t batch : batch_sweep) {
      // Fresh deployment per cell so runs are independent and reproducible.
      core::DittoConfig config;
      config.experts = {"lru", "lfu"};
      // Aggregate capacity = half the keyspace (the single-node benches'
      // convention); MakePoolConfig capacity is per node.
      const uint64_t capacity_per_node =
          std::max<uint64_t>(1, keys / 2 / static_cast<uint64_t>(shards));
      bench::ShardedEngineDeployment d =
          bench::MakeShardedEngine(bench::MakePoolConfig(capacity_per_node), config, shards);
      sim::RunOptions options;
      options.threads = threads;
      options.partition_seed = seed;
      options.batch_ops = batch;
      options.warmup_fraction = 0.2;
      const sim::RunResult r = sim::RunTraceSharded(d.raw, trace, d.nodes, options);
      std::printf("%-8d %10zu %12.3f %12.3f %12.3f %10.2f %14llu %14llu\n", threads, batch,
                  r.throughput_mops, r.wall_mops, r.ops_per_core_mops, r.hit_rate * 100.0,
                  static_cast<unsigned long long>(r.nic_messages),
                  static_cast<unsigned long long>(r.nic_doorbells));
      char label[64];
      std::snprintf(label, sizeof(label), "threads=%d,batch=%zu", threads, batch);
      bench::EmitBenchJson("sharded_engine", label, r);
    }
  }
  std::printf("\n# expected shape: hit_pct constant down the threads column; batched rows\n"
              "# show fewer nic_messages and far fewer doorbells than batch=0.\n"
              "# wall_mops is host wall-clock replay rate (the real thread-scaling curve);\n"
              "# on a single-core host it stays flat or dips as threads contend for the core.\n");
  return 0;
}
