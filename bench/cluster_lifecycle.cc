// Cluster lifecycle: hit-rate recovery after a 1-of-4 node crash, warm re-join
// after a scheduled restart, and the cost of planned join/leave key migration.
//
// Three experiments over the same YCSB-C trace:
//   crash     one of four nodes crashes at 50% of the measured replay. The
//             retrying cluster client keeps serving (survivors absorb the
//             crashed node's capacity share); the windowed hit-rate trajectory
//             is compared against a cold-restart LRU oracle — the monolithic
//             cluster whose cache rebuilds empty on ANY membership change.
//   rejoin    the node crashes at 40% and a scheduled restart re-joins it
//             (wiped cold) at 70%; survivors migrate its keys back, so the
//             rejoin recovers hit rate instead of re-cratering it.
//   migrate   a planned leave drains a healthy node through the checksummed
//             chunk-wise migration path, then a join pulls the keys back. The
//             measured virtual-time cost is priced against what moving the
//             same keys costs CliqueMap (per-key RPC SET on the destination
//             MN CPUs) and the Redis migration model (RESTORE-rate bound at
//             migration_keys_per_s_per_shard).
//
// recovery_ops is the bench's headline robustness metric: ops after the fault
// until the windowed hit rate returns to 99% of the pre-fault mean
// (0 = recovered within the fault window itself; the full post-fault op count
// when the run never recovers).
//
// Flags: --keys=N --requests=N --capacity=N --nodes=N --clients=N
//        --window=N --scale=N
#include <cstdio>

#include "baselines/cliquemap.h"
#include "baselines/redis_model.h"
#include "bench_common.h"
#include "sim/elastic_oracle.h"

namespace {

using ditto::sim::RecoverySample;

double MeanHitRate(const std::vector<RecoverySample>& windows, size_t begin, size_t end) {
  uint64_t gets = 0;
  uint64_t hits = 0;
  for (size_t i = begin; i < end && i < windows.size(); ++i) {
    gets += windows[i].gets;
    hits += windows[i].hits;
  }
  return gets == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(gets);
}

// Ops from the fault window until the first window whose hit rate is back at
// `target`; sums every post-fault window when the run never recovers.
uint64_t RecoveryOps(const std::vector<RecoverySample>& windows, size_t fault_window,
                     double target) {
  uint64_t ops = 0;
  for (size_t i = fault_window; i < windows.size(); ++i) {
    if (windows[i].HitRate() >= target) {
      return ops;
    }
    ops += windows[i].gets;
  }
  return ops;
}

// EmitBenchJson plus the recovery_ops field (scripts/bench_report.py tracks it
// in the trend table for this bench). The rows' bench field is "cluster", so
// run_benches.sh collects them into BENCH_cluster.json.
void EmitClusterJson(const char* label, const ditto::sim::RunResult& r,
                     uint64_t recovery_ops) {
  const int threads = r.threads > 0 ? r.threads : 1;
  std::printf("BENCH_JSON {\"bench\": \"cluster\", \"label\": \"%s\", "
              "\"ops\": %llu, \"throughput_mops\": %.6f, \"hit_rate\": %.6f, "
              "\"p50_us\": %.3f, \"p99_us\": %.3f, \"cas_failures\": %llu, "
              "\"insert_retries\": %llu, \"wall_mops\": %.6f, \"threads\": %d, "
              "\"ops_per_core_mops\": %.6f, \"recovery_ops\": %llu}\n",
              ditto::bench::JsonEscape(label).c_str(),
              static_cast<unsigned long long>(r.ops), r.throughput_mops, r.hit_rate,
              r.p50_us, r.p99_us, static_cast<unsigned long long>(r.cas_failures),
              static_cast<unsigned long long>(r.insert_retries), r.wall_mops, threads,
              r.wall_mops / static_cast<double>(threads),
              static_cast<unsigned long long>(recovery_ops));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 20000);
  const uint64_t requests = flags.GetInt("requests", 200000) * flags.GetInt("scale", 1);
  const uint64_t capacity = flags.GetInt("capacity", 5000);
  const int nodes = static_cast<int>(flags.GetInt("nodes", 4));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const size_t window = static_cast<size_t>(flags.GetInt("window", 2000));
  const uint32_t victim = static_cast<uint32_t>(nodes - 1);

  bench::PrintHeader("cluster-lifecycle",
                     "hit-rate recovery after a 1-of-4 crash, warm re-join, and "
                     "join/leave migration cost");

  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';  // pure Get: replay windows align 1:1 with the oracle's
  ycsb.num_keys = keys;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, /*seed=*/13);

  core::ClusterConfig cluster_config;
  cluster_config.nodes = nodes;
  cluster_config.pool = bench::MakePoolConfig(capacity / static_cast<uint64_t>(nodes));
  cluster_config.ditto.experts = {"lru", "lfu"};

  sim::RunOptions options;
  options.warmup_fraction = 0.2;
  // The resize step at fraction 0 pins the aggregate capacity so survivors
  // absorb a departed node's share when the lifecycle re-splits it.
  options.resize_schedule = {{0.0, capacity}};
  options.recovery_window_ops = window;

  const size_t measure_begin =
      static_cast<size_t>(options.warmup_fraction * static_cast<double>(trace.size()));
  const auto window_of = [&](double fraction) {
    return (sim::ResizeStepIndex(fraction, measure_begin, trace.size()) - measure_begin) /
           window;
  };

  // --- crash: 1 of `nodes` at 50% ------------------------------------------
  options.lifecycle_schedule = {{0.5, sim::LifecycleKind::kCrash, victim}};
  bench::ClusterDeployment crash_d = bench::MakeCluster(cluster_config, clients);
  const sim::RunResult crash_r = sim::RunTrace(crash_d.raw, trace, crash_d.nodes, options);

  const std::vector<RecoverySample> cold = sim::ReplayRecoveryOracle(
      trace, measure_begin, options.lifecycle_schedule, capacity, window);

  const size_t crash_w = window_of(0.5);
  const double pre_ditto = MeanHitRate(crash_r.recovery, 0, crash_w);
  const double pre_cold = MeanHitRate(cold, 0, crash_w);
  const uint64_t rec_ditto = RecoveryOps(crash_r.recovery, crash_w, 0.99 * pre_ditto);
  const uint64_t rec_cold = RecoveryOps(cold, crash_w, 0.99 * pre_cold);
  const double post_ditto =
      MeanHitRate(crash_r.recovery, crash_w, crash_r.recovery.size());
  const double post_cold = MeanHitRate(cold, crash_w, cold.size());

  std::printf("# keys=%llu requests=%llu nodes=%d clients=%d capacity=%llu window=%zu\n",
              static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(requests), nodes, clients,
              static_cast<unsigned long long>(capacity), window);
  std::printf("# crash: node %u at 50%% of the measured replay (window %zu)\n",
              victim, crash_w);
  std::printf("%-8s %10s %10s\n", "window", "ditto", "lru_cold");
  for (size_t w = 0; w < crash_r.recovery.size(); ++w) {
    std::printf("%-8zu %10.4f %10.4f\n", w, crash_r.recovery[w].HitRate(),
                w < cold.size() ? cold[w].HitRate() : 0.0);
  }
  std::printf("\n# crash recovery: ditto %llu ops vs cold-restart LRU %llu ops "
              "(to 99%% of pre-crash %.4f / %.4f)\n",
              static_cast<unsigned long long>(rec_ditto),
              static_cast<unsigned long long>(rec_cold), pre_ditto, pre_cold);
  std::printf("# post-crash mean hit rate: ditto %.4f vs cold-restart %.4f\n",
              post_ditto, post_cold);

  // --- rejoin: crash at 40%, scheduled restart at 70% ----------------------
  options.lifecycle_schedule = {{0.4, sim::LifecycleKind::kCrash, victim},
                                {0.7, sim::LifecycleKind::kRestart, victim}};
  bench::ClusterDeployment rejoin_d = bench::MakeCluster(cluster_config, clients);
  const sim::RunResult rejoin_r =
      sim::RunTrace(rejoin_d.raw, trace, rejoin_d.nodes, options);

  const size_t rejoin_w = window_of(0.7);
  const double pre_rejoin = MeanHitRate(rejoin_r.recovery, 0, window_of(0.4));
  const uint64_t rec_rejoin =
      RecoveryOps(rejoin_r.recovery, rejoin_w, 0.99 * pre_rejoin);
  const double tail_rejoin =
      MeanHitRate(rejoin_r.recovery, rejoin_w, rejoin_r.recovery.size());
  std::printf("\n# rejoin: crash@40%% restart@70%%; after the re-join the hit rate is "
              "back to 99%% of\n# pre-crash (%.4f) within %llu ops; post-rejoin mean "
              "%.4f; %llu keys migrated back\n",
              pre_rejoin, static_cast<unsigned long long>(rec_rejoin), tail_rejoin,
              static_cast<unsigned long long>(rejoin_d.pool->migrated_objects()));

  // --- migrate: planned leave + join, priced vs baselines ------------------
  bench::ClusterDeployment mig_d = bench::MakeCluster(cluster_config, 1);
  bench::Preload(mig_d.raw, trace, options.value_bytes);
  core::ClusterClient& mig = mig_d.clients[0]->cluster();
  VirtualClock& mig_clock = mig_d.ctxs[0]->clock();

  const uint64_t leave_begin_ns = mig_clock.busy_ns();
  mig.ApplyLeave(victim);
  const double leave_s =
      static_cast<double>(mig_clock.busy_ns() - leave_begin_ns) / 1e9;
  const uint64_t moved_leave = mig_d.pool->migrated_objects();

  const uint64_t join_begin_ns = mig_clock.busy_ns();
  mig.ApplyJoin(victim);
  const double join_s = static_cast<double>(mig_clock.busy_ns() - join_begin_ns) / 1e9;
  const uint64_t moved_join = mig_d.pool->migrated_objects() - moved_leave;

  // CliqueMap re-homes a key with one RPC SET on the destination MN CPU
  // (request parse + structure maintenance), migration parallel over the
  // destination nodes; Redis moves keys at the RESTORE-bound per-shard rate.
  const rdma::CostModel cost;
  const baselines::CliqueMapConfig cm;
  const double cm_leave_s = static_cast<double>(moved_leave) *
                            (cost.rpc_service_us + cm.set_service_us) / 1e6 /
                            static_cast<double>(nodes - 1);
  baselines::RedisModelConfig redis_config;
  redis_config.initial_shards = nodes;
  redis_config.num_keys = mig_d.pool->cached_objects() + moved_leave;
  baselines::RedisModel redis(redis_config);
  redis.Resize(nodes - 1);
  const double redis_leave_s = redis.migration_remaining_s();

  std::printf("\n# migrate: leave drains %llu keys in %.3f s virtual (%.3f Mkeys/s); "
              "join pulls %llu back in %.3f s\n",
              static_cast<unsigned long long>(moved_leave), leave_s,
              leave_s > 0.0 ? static_cast<double>(moved_leave) / (leave_s * 1e6) : 0.0,
              static_cast<unsigned long long>(moved_join), join_s);
  std::printf("# same leave priced on baselines: cliquemap %.3f s (per-key RPC SET on "
              "%d MN cores),\n# redis %.1f s (RESTORE-bound at %.0f keys/s/shard)\n",
              cm_leave_s, nodes - 1, redis_leave_s,
              redis_config.migration_keys_per_s_per_shard);

  EmitClusterJson("ditto-crash", crash_r, rec_ditto);
  {
    sim::RunResult oracle_row;
    oracle_row.ops = crash_r.ops;
    oracle_row.hit_rate = post_cold;
    EmitClusterJson("oracle-cold", oracle_row, rec_cold);
  }
  EmitClusterJson("ditto-rejoin", rejoin_r, rec_rejoin);
  {
    sim::RunResult mig_row;
    mig_row.ops = moved_leave + moved_join;
    mig_row.throughput_mops =
        leave_s + join_s > 0.0
            ? static_cast<double>(moved_leave + moved_join) / ((leave_s + join_s) * 1e6)
            : 0.0;
    EmitClusterJson("migrate-leave-join", mig_row, 0);
  }

  std::printf("\n# expected shape: ditto's post-crash windows dip then climb back while "
              "lru_cold\n# restarts from zero, so ditto's recovery_ops and post-crash "
              "mean strictly beat the\n# oracle; the rejoin run recovers to the "
              "pre-crash level after the restart window.\n");
  return 0;
}
