// server_loadgen: measures the RESP front end over real loopback sockets.
//
// Two modes:
//   (default)      self-hosted sweep: starts a net::Server in-process on an
//                  ephemeral port (fresh deployment per point) and replays a
//                  YCSB trace through net::RunLoadgen at each connection
//                  count, emitting BENCH_JSON rows with bench="server" —
//                  served wall-clock QPS, hit rate, and wire-level p50/p99.
//   --connect=PORT replay against an already-running ditto_server on that
//                  port (CI's smoke job). Prints the summary and exits
//                  nonzero on any transport/protocol error.
//
// Flags:
//   --requests=N    trace length (x --scale)            (default 200000)
//   --keys=N        YCSB key-space size                 (default 16384)
//   --workload=X    YCSB core workload                  (default A)
//   --theta=F       YCSB zipf skew                      (default 0.99)
//   --seed=N        trace seed                          (default 42)
//   --conns=N       fix the sweep to one connection count (default 1,8,64)
//   --depth=N       pipelined commands per connection   (default 16)
//   --reactors=N    server reactor threads (self-host)  (default 2)
//   --capacity=N    cache capacity in objects           (default keys/4)
//   --value=N       value bytes                         (default 232)
//   --connect=PORT  external mode: skip the in-process server
//   --host=ADDR     external server address             (default 127.0.0.1)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "net/loadgen.h"
#include "net/server.h"

namespace {

using namespace ditto;

// Shapes a served replay's wire-level measurements as a RunResult row so the
// BENCH_JSON stream (and bench_report floors) treat served QPS like every
// engine's wall_mops.
sim::RunResult ToRunResult(const net::LoadgenResult& lr, int threads) {
  sim::RunResult r;
  r.ops = lr.ops;
  r.gets = lr.gets;
  r.hits = lr.hits;
  r.misses = lr.misses;
  r.sets = lr.sets;
  r.deletes = lr.deletes;
  r.hit_rate = lr.hit_rate();
  r.p50_us = lr.p50_us;
  r.p99_us = lr.p99_us;
  r.wall_s = lr.wall_s;
  r.wall_mops = lr.qps / 1e6;
  r.threads = threads;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 16384);
  const uint64_t requests = flags.GetInt("requests", 200000) * flags.GetInt("scale", 1);
  const uint64_t seed = flags.GetInt("seed", 42);
  const std::string workload_name = flags.GetString("workload", "A");
  const int depth = static_cast<int>(flags.GetInt("depth", 16));
  const int reactors = static_cast<int>(flags.GetInt("reactors", 2));
  const uint64_t capacity = flags.GetInt("capacity", std::max<uint64_t>(1, keys / 4));
  const size_t value_bytes = static_cast<size_t>(flags.GetInt("value", 232));

  workload::YcsbConfig ycsb;
  ycsb.workload = workload_name.empty() ? 'A' : workload_name[0];
  ycsb.num_keys = keys;
  ycsb.zipf_theta = flags.GetDouble("theta", 0.99);
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, seed);

  net::LoadgenOptions lg;
  lg.host = flags.GetString("host", "127.0.0.1");
  lg.depth = depth;
  lg.value_bytes = value_bytes;

  if (flags.Has("connect")) {
    // External mode: one replay against a running server, pass/fail result.
    lg.port = static_cast<uint16_t>(flags.GetInt("connect", 0));
    lg.connections = static_cast<int>(flags.GetInt("conns", 8));
    const net::LoadgenResult r = net::RunLoadgen(trace, lg);
    std::printf("served %llu ops in %.3fs: %.0f qps, hit %.2f%%, p50 %.1fus, p99 %.1fus, "
                "shed %llu, errors %llu\n",
                static_cast<unsigned long long>(r.ops), r.wall_s, r.qps,
                r.hit_rate() * 100.0, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.errors));
    if (!r.ok) {
      std::fprintf(stderr, "server_loadgen: %s\n", r.error.c_str());
      return 1;
    }
    if (r.errors > 0 || r.ops != trace.size()) {
      std::fprintf(stderr, "server_loadgen: %llu error replies, %llu/%zu ops completed\n",
                   static_cast<unsigned long long>(r.errors),
                   static_cast<unsigned long long>(r.ops), trace.size());
      return 1;
    }
    return 0;
  }

  bench::PrintHeader("server-loadgen",
                     "RESP front end over loopback: connection sweep, wire-level latency");
  std::printf("# workload=YCSB-%c keys=%llu requests=%llu capacity=%llu reactors=%d depth=%d\n",
              ycsb.workload, static_cast<unsigned long long>(keys),
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(capacity), reactors, depth);
  std::printf("%-8s %12s %10s %10s %10s %8s %8s\n", "conns", "qps", "hit_pct", "p50_us",
              "p99_us", "shed", "errors");

  std::vector<int> conn_counts = {1, 8, 64};
  if (flags.Has("conns")) {
    conn_counts = {static_cast<int>(flags.GetInt("conns", 1))};
  }

  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  config.validate_inserts = reactors > 1;  // reactors share one pool

  int failures = 0;
  for (const int conns : conn_counts) {
    // Fresh deployment and server per point: every sweep row starts cold,
    // so rows are comparable to each other and across runs.
    bench::DittoDeployment d =
        bench::MakeDitto(bench::MakePoolConfig(capacity), config, reactors);
    net::ServerOptions options;
    net::Server server(d.raw, options);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "server_loadgen: start failed: %s\n", error.c_str());
      return 1;
    }
    lg.port = server.port();
    lg.connections = conns;
    const net::LoadgenResult r = net::RunLoadgen(trace, lg);
    server.Stop();
    std::printf("%-8d %12.0f %10.2f %10.1f %10.1f %8llu %8llu\n", conns, r.qps,
                r.hit_rate() * 100.0, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.errors));
    if (!r.ok) {
      std::fprintf(stderr, "server_loadgen: conns=%d: %s\n", conns, r.error.c_str());
      ++failures;
      continue;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "conns=%d,depth=%d,reactors=%d", conns, depth,
                  reactors);
    bench::EmitBenchJson("server", label, ToRunResult(r, reactors));
  }
  std::printf("\n# expected shape: served qps grows with connection count until the\n"
              "# reactor threads saturate; p99 grows with pipeline depth.\n");
  return failures == 0 ? 0 : 1;
}
