// Figure 22: hit rate while the cache's memory capacity grows at run time
// (webmail-like workload). The best fixed algorithm changes with cache size;
// Ditto adapts at every size.
#include <cstdio>

#include "realworld_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t requests = flags.GetInt("requests", 150000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 16000);
  const int clients = static_cast<int>(flags.GetInt("clients", 16));

  const workload::Trace trace = workload::MakeNamedTrace("webmail", requests, footprint, 22);
  const uint64_t fp = workload::Footprint(trace);

  bench::PrintHeader("Figure 22", "hit rate under dynamically growing cache sizes "
                                  "(webmail-like)");
  std::printf("%-12s %10s %10s %10s %8s\n", "cache_frac", "ditto", "d-lru", "d-lfu", "best");
  for (const double frac : {0.05, 0.10, 0.20, 0.30, 0.40, 0.60}) {
    const auto capacity = static_cast<uint64_t>(frac * static_cast<double>(fp));
    const double ditto = bench::RunVariant("ditto", trace, capacity, clients, 0.0).hit_rate;
    const double lru = bench::RunVariant("ditto-lru", trace, capacity, clients, 0.0).hit_rate;
    const double lfu = bench::RunVariant("ditto-lfu", trace, capacity, clients, 0.0).hit_rate;
    std::printf("%-12.2f %10.4f %10.4f %10.4f %8s\n", frac, ditto, lru, lfu,
                lru >= lfu ? "LRU" : "LFU");
  }
  std::printf("\n# expected shape: the better fixed expert changes with cache size; ditto\n"
              "# tracks whichever is better at each size.\n");
  return 0;
}
