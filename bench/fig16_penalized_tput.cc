// Figure 16: penalized throughput (each miss pays a 500us fetch from the
// backing distributed store) of Ditto, Ditto-LRU, Ditto-LFU, CM-LRU and
// CM-LFU across five real-world-like workloads.
#include <cstdio>

#include "realworld_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t requests = flags.GetInt("requests", 150000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 20000);
  // The paper uses 64 clients and sets cache sizes where hit rates are high;
  // that is where CliqueMap's MN-CPU ceiling binds and Ditto pulls ahead.
  const int clients = static_cast<int>(flags.GetInt("clients", 64));
  const double cache_frac = flags.GetDouble("cache_frac", 0.3);

  bench::PrintHeader("Figure 16",
                     "penalized throughput on real-world-like workloads (500us miss penalty)");
  std::printf("%-20s %10s %10s %10s %10s %10s  (Mops)\n", "workload", "ditto", "ditto-lru",
              "ditto-lfu", "cm-lru", "cm-lfu");

  const std::vector<std::string> workloads = {"webmail", "twitter-transient",
                                              "twitter-storage", "twitter-compute", "ibm"};
  const std::vector<std::string> variants = {"ditto", "ditto-lru", "ditto-lfu", "cm-lru",
                                             "cm-lfu"};
  for (const std::string& name : workloads) {
    const workload::Trace trace = workload::MakeNamedTrace(name, requests, footprint, 5);
    const auto capacity = static_cast<uint64_t>(
        cache_frac * static_cast<double>(workload::Footprint(trace)));
    std::printf("%-20s", name.c_str());
    for (const std::string& variant : variants) {
      const bench::VariantResult r =
          bench::RunVariant(variant, trace, capacity, clients, 500.0);
      std::printf(" %10.4f", r.throughput_mops);
    }
    std::printf("\n");
  }
  // High-hit-rate regime: the paper's Twitter workloads run at ~95%+ hit
  // rates, where the request rate exceeds what the weak MN CPU can serve for
  // CliqueMap (Set RPCs + access-info merging) while Ditto stays NIC-bound.
  std::printf("\n# high-hit regime (cache ~= footprint): CliqueMap's MN-CPU ceiling binds\n");
  std::printf("%-20s", "twitter-storage-hot");
  const workload::Trace hot = workload::MakeNamedTrace("twitter-storage", requests,
                                                       footprint / 4, 6);
  const uint64_t hot_capacity = workload::Footprint(hot);
  for (const std::string& variant : variants) {
    const bench::VariantResult r = bench::RunVariant(variant, hot, hot_capacity, clients, 500.0);
    std::printf(" %10.4f", r.throughput_mops);
  }
  std::printf("\n");

  std::printf("\n# expected shape: Ditto tracks the better of Ditto-LRU/Ditto-LFU. At\n"
              "# moderate hit rates all systems are miss-penalty-bound (within ~5%%); in\n"
              "# the high-hit regime CliqueMap hits its MN-CPU ceiling and Ditto wins.\n");
  return 0;
}
