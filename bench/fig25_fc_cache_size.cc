// Figure 25: YCSB-C throughput and p99 latency of Ditto as the client-side
// frequency-counter cache grows from disabled to 10 MB. Bigger FC caches
// absorb more RDMA_FAAs and save the MN RNIC's message rate.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 50000);
  const uint64_t requests = flags.GetInt("requests", 150000) * flags.GetInt("scale", 1);
  const int clients = static_cast<int>(flags.GetInt("clients", 128));

  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = keys;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, 1);

  bench::PrintHeader("Figure 25", "YCSB-C throughput/p99 vs FC-cache size (256 clients in "
                                  "the paper)");
  std::printf("%-12s %12s %10s %14s\n", "fc_bytes", "tput_mops", "p99_us", "nic_msgs/op");

  // The interesting range scales with the hot-key working set; at this
  // repo's scaled-down key counts the savings saturate in the tens of KB
  // (the paper's 10M-key runs saturate around 5 MB).
  const std::vector<std::pair<const char*, size_t>> sizes = {
      {"disabled", 0},     {"1KB", 1 << 10},   {"4KB", 4 << 10},  {"16KB", 16 << 10},
      {"64KB", 64 << 10},  {"1MB", 1 << 20},   {"10MB", 10 << 20}};
  for (const auto& [label, bytes] : sizes) {
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    config.enable_fc_cache = bytes != 0;
    config.fc_capacity_bytes = bytes;
    bench::DittoDeployment d =
        bench::MakeDitto(bench::MakePoolConfig(keys * 2), config, clients);
    bench::Preload(d.raw, trace, 232);
    sim::RunOptions options;
    options.set_on_miss = false;
    const sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
    std::printf("%-12s %12.4f %10.1f %14.2f\n", label, r.throughput_mops, r.p99_us,
                static_cast<double>(r.nic_messages) / static_cast<double>(r.ops));
  }
  std::printf("\n# expected shape: throughput rises and p99 falls with FC size; gains\n"
              "# saturate once the hot keys' counters fit (paper: ~5 MB).\n");
  return 0;
}
