// Extension experiment (paper §5.1 notes Ditto "is compatible with memory
// pools with multiple MNs"): throughput of a sharded Ditto deployment as the
// memory pool grows from 1 to 8 memory nodes under read-only YCSB-C with 128
// clients. The single-MN system is bounded by one RNIC's message rate;
// sharding keys across nodes multiplies the pool's aggregate message rate.
#include <cstdio>

#include "bench_common.h"
#include "core/sharded_client.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 50000);
  const uint64_t requests = flags.GetInt("requests", 150000) * flags.GetInt("scale", 1);
  const int clients = static_cast<int>(flags.GetInt("clients", 128));

  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = keys;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, 1);

  bench::PrintHeader("Extension: multi-MN scaling",
                     "YCSB-C throughput vs number of memory nodes (128 clients)");
  std::printf("%-8s %12s %10s %14s\n", "nodes", "tput_mops", "p99_us", "msgs/op(total)");

  for (const int nodes : {1, 2, 4, 8}) {
    dm::PoolConfig per_node;
    per_node.memory_bytes = 64 << 20;
    per_node.num_buckets = 16384;
    per_node.capacity_objects = keys * 2;
    core::ShardedPool pool(per_node, nodes);
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    core::ShardedDittoServer server(&pool, config);

    std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
    std::vector<std::unique_ptr<sim::ShardedDittoCacheClient>> cache_clients;
    std::vector<sim::CacheClient*> raw;
    std::vector<rdma::RemoteNode*> remote_nodes;
    for (int n = 0; n < nodes; ++n) {
      remote_nodes.push_back(&pool.node(n).node());
    }
    for (int i = 0; i < clients; ++i) {
      ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
      cache_clients.push_back(
          std::make_unique<sim::ShardedDittoCacheClient>(&pool, ctxs.back().get(), config));
      raw.push_back(cache_clients.back().get());
    }
    const std::string value(232, 'v');
    for (uint64_t k = 0; k < keys; ++k) {
      cache_clients[k % clients]->Set(workload::KeyString(k), value);
    }
    sim::RunOptions options;
    options.set_on_miss = false;
    const sim::RunResult r = sim::RunTrace(raw, trace, remote_nodes, options);
    std::printf("%-8d %12.3f %10.1f %14.2f\n", nodes, r.throughput_mops, r.p99_us,
                static_cast<double>(r.nic_messages) / static_cast<double>(r.ops));
  }
  std::printf("\n# expected shape: near-linear scaling while the NIC is the bottleneck,\n"
              "# tapering once per-client request rates bound throughput instead.\n");
  return 0;
}
