// Figure 21: hit rates (normalized to Ditto-LRU) while the number of
// concurrent clients grows at run time on the webmail-like workload. The
// interleaving of more clients changes the access pattern; Ditto re-adapts.
#include <cstdio>

#include "realworld_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t requests = flags.GetInt("requests", 120000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 16000);

  const workload::Trace trace = workload::MakeNamedTrace("webmail", requests, footprint, 21);
  const uint64_t capacity = workload::Footprint(trace) / 10;

  bench::PrintHeader("Figure 21", "hit rate while dynamically growing the client count "
                                  "(webmail-like)");
  std::printf("%-10s %10s %10s %10s %12s\n", "clients", "ditto", "d-lru", "d-lfu",
              "ditto_rel");
  for (const int clients : {4, 8, 16, 32, 64}) {
    const double ditto = bench::RunVariant("ditto", trace, capacity, clients, 0.0).hit_rate;
    const double lru = bench::RunVariant("ditto-lru", trace, capacity, clients, 0.0).hit_rate;
    const double lfu = bench::RunVariant("ditto-lfu", trace, capacity, clients, 0.0).hit_rate;
    std::printf("%-10d %10.4f %10.4f %10.4f %12.3f\n", clients, ditto, lru, lfu,
                ditto / std::max(lru, 1e-9));
  }
  std::printf("\n# expected shape: ditto stays at or above both fixed experts as the\n"
              "# client count (and thus the interleaved access pattern) changes.\n");
  return 0;
}
