// Figure 19: penalized throughput and hit rate on the LeCaR-style synthetic
// changing workload (four phases alternating LFU- and LRU-friendly). Only
// adaptive Ditto can follow the switches: its expert weights flip each phase
// (reported below), so it tracks the per-phase winner while each fixed
// algorithm loses half the phases.
#include <cstdio>
#include <vector>

#include "realworld_common.h"

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t phase_len = flags.GetInt("phase_len", 120000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 10000);
  const int clients = static_cast<int>(flags.GetInt("clients", 16));
  constexpr int kPhases = 4;

  const workload::Trace trace =
      workload::MakeChangingWorkload(kPhases, phase_len, footprint, 19);
  // Size the cache at half the hot core of the LFU-friendly phases so the
  // frequency signal matters (the LeCaR setup).
  const uint64_t capacity = footprint / 4;

  bench::PrintHeader("Figure 19", "changing workload (4 phases LFU/LRU-friendly alternating)");

  std::printf("%-12s", "system");
  for (int p = 0; p < kPhases; ++p) {
    std::printf("   phase%d_hit", p);
  }
  std::printf("  overall_hit  ptput_mops\n");

  for (const std::string variant :
       {"ditto", "ditto-lru", "ditto-lfu", "cm-lru", "cm-lfu"}) {
    // Replay phase by phase against one persistent deployment so adaptation
    // carries across phase switches (as in the paper's time series).
    sim::RunOptions options;
    options.miss_penalty_us = 500.0;

    double total_hits = 0.0;
    double total_gets = 0.0;
    double total_tput = 0.0;
    std::vector<double> phase_hits;

    if (variant.rfind("cm-", 0) == 0) {
      baselines::CliqueMapConfig config;
      config.policy =
          variant == "cm-lru" ? baselines::CmPolicy::kLru : baselines::CmPolicy::kLfu;
      config.capacity_objects = capacity;
      bench::CmDeployment d = bench::MakeCliqueMap(bench::MakePoolConfig(capacity), config,
                                                   clients);
      for (int p = 0; p < kPhases; ++p) {
        const workload::Trace phase(trace.begin() + p * phase_len,
                                    trace.begin() + (p + 1) * phase_len);
        const sim::RunResult r = sim::RunTrace(d.raw, phase, &d.pool->node(), options);
        phase_hits.push_back(r.hit_rate);
        total_hits += r.hit_rate * static_cast<double>(r.gets);
        total_gets += static_cast<double>(r.gets);
        total_tput += r.throughput_mops;
      }
    } else {
      core::DittoConfig config;
      if (variant == "ditto") {
        config.experts = {"lru", "lfu"};
      } else {
        config.experts = {variant == "ditto-lru" ? "lru" : "lfu"};
      }
      bench::DittoDeployment d =
          bench::MakeDitto(bench::MakePoolConfig(capacity), config, clients);
      for (int p = 0; p < kPhases; ++p) {
        const workload::Trace phase(trace.begin() + p * phase_len,
                                    trace.begin() + (p + 1) * phase_len);
        const sim::RunResult r = sim::RunTrace(d.raw, phase, &d.pool->node(), options);
        phase_hits.push_back(r.hit_rate);
        total_hits += r.hit_rate * static_cast<double>(r.gets);
        total_gets += static_cast<double>(r.gets);
        total_tput += r.throughput_mops;
      }
    }

    std::printf("%-12s", variant.c_str());
    for (const double h : phase_hits) {
      std::printf("   %10.4f", h);
    }
    std::printf("   %10.4f  %10.4f\n", total_hits / total_gets, total_tput / kPhases);
  }
  std::printf("\n# expected shape: ditto tracks the per-phase winner (LFU in even phases,\n"
              "# LRU in odd phases) and leads both fixed experts overall.\n");
  return 0;
}
