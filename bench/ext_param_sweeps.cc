// Parameter-sensitivity sweeps for the design parameters the paper fixes by
// grid search (§5.1): the eviction sample count, the eviction-history size,
// the adaptive learning rate, and the lazy weight-update batch. One table
// per parameter, all on the webmail-like workload with the 500us penalty.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace ditto;

struct SweepResult {
  double hit_rate;
  double tput;
};

SweepResult Run(const workload::Trace& trace, uint64_t capacity, int clients,
                const core::DittoConfig& config, uint64_t history_size = 0) {
  bench::DittoDeployment d = bench::MakeDitto(bench::MakePoolConfig(capacity), config, clients);
  if (history_size != 0) {
    d.pool->SetHistorySize(history_size);
  }
  sim::RunOptions options;
  options.miss_penalty_us = 500.0;
  options.warmup_fraction = 0.3;
  const sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
  return SweepResult{r.hit_rate, r.throughput_mops};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t requests = flags.GetInt("requests", 150000) * flags.GetInt("scale", 1);
  const uint64_t footprint = flags.GetInt("footprint", 16000);
  const int clients = static_cast<int>(flags.GetInt("clients", 16));

  const workload::Trace trace = workload::MakeNamedTrace("webmail", requests, footprint, 31);
  const uint64_t capacity = workload::Footprint(trace) / 10;

  bench::PrintHeader("Extension: parameter sweeps",
                     "sensitivity of the paper's grid-searched parameters (webmail-like)");

  std::printf("\n# eviction sample count (paper/Redis default: 5)\n");
  std::printf("%-10s %10s %12s\n", "samples", "hit_rate", "ptput_mops");
  for (const int samples : {1, 3, 5, 10, 20}) {
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    config.num_samples = samples;
    const SweepResult r = Run(trace, capacity, clients, config);
    std::printf("%-10d %10.4f %12.4f\n", samples, r.hit_rate, r.tput);
  }

  std::printf("\n# eviction-history size as a fraction of cache size (paper: 1.0)\n");
  std::printf("%-10s %10s %12s\n", "hist/cap", "hit_rate", "ptput_mops");
  for (const double frac : {0.1, 0.5, 1.0, 2.0}) {
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    const SweepResult r = Run(trace, capacity, clients, config,
                              static_cast<uint64_t>(frac * static_cast<double>(capacity)));
    std::printf("%-10.1f %10.4f %12.4f\n", frac, r.hit_rate, r.tput);
  }

  std::printf("\n# adaptive learning rate lambda (paper: 0.1)\n");
  std::printf("%-10s %10s %12s\n", "lambda", "hit_rate", "ptput_mops");
  for (const double lr : {0.01, 0.05, 0.1, 0.3, 1.0}) {
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    config.learning_rate = lr;
    const SweepResult r = Run(trace, capacity, clients, config);
    std::printf("%-10.2f %10.4f %12.4f\n", lr, r.hit_rate, r.tput);
  }

  std::printf("\n# lazy weight-update batch size (paper: 100; 1 = eager RPC per regret)\n");
  std::printf("%-10s %10s %12s %14s\n", "batch", "hit_rate", "ptput_mops", "weight_rpcs");
  for (const int batch : {1, 10, 100, 1000}) {
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    config.penalty_batch = batch;
    bench::DittoDeployment d =
        bench::MakeDitto(bench::MakePoolConfig(capacity), config, clients);
    sim::RunOptions options;
    options.miss_penalty_us = 500.0;
    options.warmup_fraction = 0.3;
    const sim::RunResult r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
    std::printf("%-10d %10.4f %12.4f %14llu\n", batch, r.hit_rate, r.throughput_mops,
                static_cast<unsigned long long>(r.rpc_ops));
  }

  std::printf("\n# expected shape: hit rate improves steeply from 1 to 5 samples then\n"
              "# flattens; tiny histories slow adaptation; lambda is forgiving across an\n"
              "# order of magnitude; batching cuts weight-update RPCs ~100x at no hit-rate\n"
              "# cost (the lazy weight update claim).\n");
  return 0;
}
