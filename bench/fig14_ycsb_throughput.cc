// Figure 14: throughput and p99 latency of Ditto, CliqueMap (CM-LRU) and
// Shard-LRU on YCSB A-D with no cache misses, as the number of clients grows
// from 1 to 256.
//
// Expected shape (paper): Ditto is bottlenecked only by the MN RNIC message
// rate and reaches ~10.5-13.2 Mops; CliqueMap saturates the weak MN CPU
// (Sets on A; access-info merging on B/C/D); Shard-LRU collapses under lock
// contention. Ditto wins by up to 9x.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace ditto;

sim::RunResult RunDitto(const workload::Trace& trace, uint64_t keys, int clients) {
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  bench::DittoDeployment d = bench::MakeDitto(bench::MakePoolConfig(keys * 2), config, clients);
  bench::Preload(d.raw, trace, 232);
  sim::RunOptions options;
  options.set_on_miss = false;
  return sim::RunTrace(d.raw, trace, &d.pool->node(), options);
}

sim::RunResult RunCm(const workload::Trace& trace, uint64_t keys, int clients) {
  baselines::CliqueMapConfig config;
  bench::CmDeployment d =
      bench::MakeCliqueMap(bench::MakePoolConfig(keys * 2), config, clients);
  bench::Preload(d.raw, trace, 232);
  sim::RunOptions options;
  options.set_on_miss = false;
  return sim::RunTrace(d.raw, trace, &d.pool->node(), options);
}

sim::RunResult RunShard(const workload::Trace& trace, uint64_t keys, int clients) {
  baselines::ShardLruConfig config;
  bench::ShardDeployment d =
      bench::MakeShardLru(bench::MakePoolConfig(keys * 2), config, clients);
  bench::Preload(d.raw, trace, 232);
  sim::RunOptions options;
  options.set_on_miss = false;
  return sim::RunTrace(d.raw, trace, &d.pool->node(), options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ditto;
  Flags flags(argc, argv);
  const uint64_t keys = flags.GetInt("keys", 50000);
  const uint64_t requests = flags.GetInt("requests", 120000) * flags.GetInt("scale", 1);

  bench::PrintHeader("Figure 14", "YCSB A-D throughput/p99 vs clients (no misses)");

  for (const char workload : {'A', 'B', 'C', 'D'}) {
    workload::YcsbConfig ycsb;
    ycsb.workload = workload == 'D' ? 'B' : workload;  // D's inserts replayed as updates
    ycsb.num_keys = keys;
    workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, 1);
    if (workload == 'D') {
      // Workload D: 5% inserts of fresh keys, reads skewed to recent.
      ycsb.workload = 'D';
      trace = workload::MakeYcsbTrace(ycsb, requests, 1);
    }

    std::printf("\n# YCSB-%c\n", workload);
    std::printf("%-8s %12s %12s %12s %12s %12s %12s\n", "clients", "ditto_mops", "ditto_p99",
                "cm_mops", "cm_p99", "shard_mops", "shard_p99");
    for (const int clients : {1, 4, 16, 64, 128, 256}) {
      const sim::RunResult ditto = RunDitto(trace, keys, clients);
      const sim::RunResult cm = RunCm(trace, keys, clients);
      const sim::RunResult shard = RunShard(trace, keys, clients);
      std::printf("%-8d %12.3f %12.1f %12.3f %12.1f %12.3f %12.1f\n", clients,
                  ditto.throughput_mops, ditto.p99_us, cm.throughput_mops, cm.p99_us,
                  shard.throughput_mops, shard.p99_us);
    }
  }
  std::printf("\n# expected shape: Ditto plateaus at the NIC message-rate bound; CliqueMap\n"
              "# saturates the 1-core MN CPU; Shard-LRU collapses under lock contention.\n");
  return 0;
}
