// Helpers shared by the real-world-workload benches (Figures 16-23): run a
// named system variant over a trace with the paper's 500us miss penalty.
#ifndef DITTO_BENCH_REALWORLD_COMMON_H_
#define DITTO_BENCH_REALWORLD_COMMON_H_

#include <string>

#include "bench_common.h"

namespace ditto::bench {

struct VariantResult {
  double hit_rate = 0.0;
  double throughput_mops = 0.0;
  double p99_us = 0.0;
};

// variant: "ditto" (adaptive LRU+LFU), "ditto-lru", "ditto-lfu", "cm-lru",
// "cm-lfu", or any single caching-algorithm name ("gdsf", "lruk", ...) run
// as a one-expert Ditto. Capacity is in objects.
inline VariantResult RunVariant(const std::string& variant, const workload::Trace& trace,
                                uint64_t capacity, int num_clients, double miss_penalty_us,
                                double warmup_fraction = 0.3) {
  sim::RunOptions options;
  options.miss_penalty_us = miss_penalty_us;
  options.warmup_fraction = warmup_fraction;

  sim::RunResult r;
  if (variant == "cm-lru" || variant == "cm-lfu") {
    baselines::CliqueMapConfig config;
    config.policy = variant == "cm-lru" ? baselines::CmPolicy::kLru : baselines::CmPolicy::kLfu;
    config.capacity_objects = capacity;
    config.sync_every = 100;
    CmDeployment d = MakeCliqueMap(MakePoolConfig(capacity), config, num_clients);
    r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
  } else {
    core::DittoConfig config;
    if (variant == "ditto") {
      config.experts = {"lru", "lfu"};
    } else if (variant == "ditto-lru") {
      config.experts = {"lru"};
    } else if (variant == "ditto-lfu") {
      config.experts = {"lfu"};
    } else {
      config.experts = {variant};
    }
    DittoDeployment d = MakeDitto(MakePoolConfig(capacity), config, num_clients);
    r = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
  }
  return VariantResult{r.hit_rate, r.throughput_mops, r.p99_us};
}

}  // namespace ditto::bench

#endif  // DITTO_BENCH_REALWORLD_COMMON_H_
