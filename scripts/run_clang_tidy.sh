#!/usr/bin/env bash
# Runs the curated .clang-tidy gate over src/ (CI job `clang-tidy`).
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#   build-dir: a CMake build tree configured with
#              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (default: build-tidy,
#              configured here if absent).
#
# Exit codes: 0 clean, 77 when clang-tidy is not installed (local gcc-only
# containers; ctest/CI treat it as a skip), 1 on findings.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tidy}"

tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    tidy="${candidate}"
    break
  fi
done
if [[ -z "${tidy}" ]]; then
  echo "SKIP: clang-tidy not installed (the clang-tidy CI job runs this gate)"
  exit 77
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DDITTO_BUILD_TESTS=OFF -DDITTO_BUILD_BENCHES=OFF \
        -DDITTO_BUILD_EXAMPLES=OFF || exit 1
fi

# Library sources only: tests/benches use gtest/benchmark idioms the curated
# profile is not tuned for, and the invariants the gate protects live in src/.
mapfile -t sources < <(find "${repo_root}/src" -name '*.cc' | sort)
echo "clang-tidy (${tidy}) over ${#sources[@]} files..."
"${tidy}" -p "${build_dir}" --quiet "${sources[@]}"
status=$?
if [[ ${status} -ne 0 ]]; then
  echo "clang-tidy: findings above must be fixed or NOLINT'd with a reason" >&2
  exit 1
fi
echo "clang-tidy: clean"
