#!/usr/bin/env bash
# Smoke-tests the RESP front end as a real process: starts ditto_server on an
# ephemeral-ish port, replays 50k ops over loopback with server_loadgen
# --connect, then SIGTERMs the server and asserts a clean exit (exit code 0 —
# under ASan that also means no leaked fds/allocations survived shutdown).
#
# Usage: scripts/server_smoke.sh <build_dir> [port]
set -euo pipefail

build_dir="${1:?usage: server_smoke.sh <build_dir> [port]}"
port="${2:-6399}"

server="${build_dir}/ditto_server"
loadgen="${build_dir}/server_loadgen"
[ -x "${server}" ] || { echo "server_smoke: ${server} not built" >&2; exit 1; }
[ -x "${loadgen}" ] || { echo "server_smoke: ${loadgen} not built" >&2; exit 1; }

log="$(mktemp)"
"${server}" --port="${port}" --reactors=2 > "${log}" 2>&1 &
server_pid=$!
trap 'kill -9 "${server_pid}" 2>/dev/null || true; cat "${log}"; rm -f "${log}"' EXIT

# Wait for the listening line (the server prints it once the acceptors are up).
for _ in $(seq 1 100); do
  grep -q "listening on" "${log}" && break
  kill -0 "${server_pid}" 2>/dev/null || { echo "server_smoke: server died at startup" >&2; exit 1; }
  sleep 0.1
done
grep -q "listening on" "${log}" || { echo "server_smoke: server never came up" >&2; exit 1; }

echo ">> replaying 50k ops over loopback"
"${loadgen}" --connect="${port}" --requests=50000 --conns=8 --depth=8

echo ">> SIGTERM: expecting a graceful exit 0"
kill -TERM "${server_pid}"
status=0
wait "${server_pid}" || status=$?
trap 'rm -f "${log}"' EXIT
cat "${log}"
if [ "${status}" -ne 0 ]; then
  echo "server_smoke: server exited ${status} after SIGTERM" >&2
  exit 1
fi
grep -q "shutting down" "${log}" || { echo "server_smoke: no graceful-shutdown line" >&2; exit 1; }
echo "server_smoke: OK"
