#!/usr/bin/env python3
"""Self-test for scripts/ditto_lint.py (runs in ctest as `ditto_lint_test`).

Each check class gets a good fixture (must pass) and bad fixtures (must fail
with the expected message), built in a temp tree so the test is hermetic.
The real repo is linted too: the pinned configuration must hold on HEAD.
"""

import pathlib
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import ditto_lint  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class FixtureTree:
    """A throwaway src/ tree the checks can run against."""

    def __init__(self):
        self.dir = pathlib.Path(tempfile.mkdtemp(prefix="ditto_lint_test_"))

    def write(self, rel, text):
        path = self.dir / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return rel

    def cleanup(self):
        shutil.rmtree(self.dir, ignore_errors=True)


class LintTestCase(unittest.TestCase):
    def setUp(self):
        self.tree = FixtureTree()
        self.addCleanup(self.tree.cleanup)

    @property
    def root(self):
        return self.tree.dir


class WireStructTest(LintTestCase):
    GOOD = """
struct Frame { int a; int b; };
static_assert(std::is_trivially_copyable_v<Frame>, "wire");
static_assert(sizeof(Frame) == 8, "wire");
"""

    def test_good_fixture_passes(self):
        rel = self.tree.write("src/wire/frame.h", self.GOOD)
        errors = ditto_lint.check_wire_structs(self.root, [(rel, "Frame")])
        self.assertEqual(errors, [])

    def test_missing_trivially_copyable_assert_fails(self):
        rel = self.tree.write("src/wire/frame.h",
                              "struct Frame { int a; };\n"
                              "static_assert(sizeof(Frame) == 4);\n")
        errors = ditto_lint.check_wire_structs(self.root, [(rel, "Frame")])
        self.assertEqual(len(errors), 1)
        self.assertIn("is_trivially_copyable_v<Frame>", errors[0])

    def test_missing_size_assert_fails(self):
        rel = self.tree.write("src/wire/frame.h",
                              "struct Frame { int a; };\n"
                              "static_assert(std::is_trivially_copyable_v<Frame>);\n")
        errors = ditto_lint.check_wire_structs(self.root, [(rel, "Frame")])
        self.assertEqual(len(errors), 1)
        self.assertIn("sizeof(Frame)", errors[0])

    def test_missing_file_fails(self):
        errors = ditto_lint.check_wire_structs(self.root, [("src/gone.h", "Frame")])
        self.assertEqual(len(errors), 1)
        self.assertIn("file missing", errors[0])


class HotPathTest(LintTestCase):
    def check(self, required=None):
        return ditto_lint.check_hot_paths(self.root, required or {})

    def test_clean_region_passes(self):
        self.tree.write("src/a.cc", """
// ditto-lint: hot-path-begin(scan)
int Scan(const int* v, int n) {
  int sum = 0;
  for (int i = 0; i < n; ++i) sum += v[i];
  return sum;
}
// ditto-lint: hot-path-end(scan)
""")
        self.assertEqual(self.check(), [])

    def test_alloc_in_region_fails(self):
        for snippet, what in [
            ("auto* p = new int[8];", "operator new"),
            ("std::string s(\"x\");", "std::string construction"),
            ("v.push_back(1);", "push_back"),
            ("v.emplace_back(1);", "emplace_back"),
            ("v.resize(8);", "resize"),
            ("v.reserve(8);", "reserve"),
            ("auto s = std::to_string(8);", "std::to_string"),
            ("void* p = malloc(8);", "malloc family"),
            ("auto p = std::make_unique<int>(1);", "make_unique/make_shared"),
        ]:
            with self.subTest(snippet=snippet):
                tree = FixtureTree()
                try:
                    tree.write("src/a.cc",
                               "// ditto-lint: hot-path-begin(r)\n"
                               f"{snippet}\n"
                               "// ditto-lint: hot-path-end(r)\n")
                    errors = ditto_lint.check_hot_paths(tree.dir, {})
                    self.assertEqual(len(errors), 1, errors)
                    self.assertIn(what, errors[0])
                finally:
                    tree.cleanup()

    def test_string_view_is_not_flagged(self):
        self.tree.write("src/a.cc",
                        "// ditto-lint: hot-path-begin(r)\n"
                        "std::string_view s = in.substr(0, 4);\n"
                        "int news_count = 0;  // 'news_count' must not match new\n"
                        "// ditto-lint: hot-path-end(r)\n")
        self.assertEqual(self.check(), [])

    def test_alloc_outside_region_passes(self):
        self.tree.write("src/a.cc", "std::string s(\"cold path\");\n")
        self.assertEqual(self.check(), [])

    def test_allow_same_line_and_preceding_line(self):
        self.tree.write("src/a.cc", """
// ditto-lint: hot-path-begin(r)
v.push_back(1);  // ditto-lint: allow(alloc): capacity reused
// ditto-lint: allow(alloc): capacity reused
v.push_back(2);
// ditto-lint: hot-path-end(r)
""")
        self.assertEqual(self.check(), [])

    def test_allow_without_reason_fails(self):
        self.tree.write("src/a.cc",
                        "// ditto-lint: hot-path-begin(r)\n"
                        "v.push_back(1);  // ditto-lint: allow(alloc):\n"
                        "// ditto-lint: hot-path-end(r)\n")
        errors = self.check()
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("non-empty reason", errors[0])

    def test_unclosed_region_fails(self):
        self.tree.write("src/a.cc", "// ditto-lint: hot-path-begin(r)\nint x;\n")
        errors = self.check()
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("never closed", errors[0])

    def test_end_without_begin_fails(self):
        self.tree.write("src/a.cc", "// ditto-lint: hot-path-end(r)\n")
        errors = self.check()
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("without matching begin", errors[0])

    def test_required_region_missing_fails(self):
        self.tree.write("src/a.cc", "int x;\n")
        errors = ditto_lint.check_hot_paths(self.root, {"scan": "src/a.cc"})
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("required region scan is missing", errors[0])

    def test_required_region_in_wrong_file_fails(self):
        self.tree.write("src/b.cc",
                        "// ditto-lint: hot-path-begin(scan)\n"
                        "// ditto-lint: hot-path-end(scan)\n")
        errors = ditto_lint.check_hot_paths(self.root, {"scan": "src/a.cc"})
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("pinned to src/a.cc", errors[0])


class ReinterpretCastTest(LintTestCase):
    def test_exact_pin_passes(self):
        rel = self.tree.write("src/a.cc",
                              "auto* p = reinterpret_cast<char*>(q);\n"
                              "auto* r = reinterpret_cast<int*>(q);\n")
        errors = ditto_lint.check_reinterpret_casts(self.root, {rel: 2})
        self.assertEqual(errors, [])

    def test_new_cast_in_unlisted_file_fails(self):
        self.tree.write("src/a.cc", "auto* p = reinterpret_cast<char*>(q);\n")
        errors = ditto_lint.check_reinterpret_casts(self.root, {})
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("not on the allowlist", errors[0])

    def test_count_above_pin_fails(self):
        rel = self.tree.write("src/a.cc",
                              "auto* p = reinterpret_cast<char*>(q);\n"
                              "auto* r = reinterpret_cast<int*>(q);\n")
        errors = ditto_lint.check_reinterpret_casts(self.root, {rel: 1})
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("allowlist pins 1", errors[0])

    def test_stale_pin_fails(self):
        self.tree.write("src/a.cc", "int x;\n")
        errors = ditto_lint.check_reinterpret_casts(self.root, {"src/a.cc": 1})
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("stale pin", errors[0])

    def test_cast_in_comment_is_ignored(self):
        self.tree.write("src/a.cc", "// reinterpret_cast would be wrong here\n")
        errors = ditto_lint.check_reinterpret_casts(self.root, {})
        self.assertEqual(errors, [])


class RpcHandlerTest(LintTestCase):
    GOOD = """
std::string S::HandleSet(std::string_view request) {
  if (request.size() < 16) {
    return std::string(1, '\\0');
  }
  Header h;
  std::memcpy(&h, request.data(), sizeof(h));
  return Do(h, request.substr(sizeof(h)));
}
"""
    BAD = """
std::string S::HandleSet(std::string_view request) {
  Header h;
  std::memcpy(&h, request.data(), sizeof(h));
  if (request.size() < 16) {
    return std::string(1, '\\0');
  }
  return Do(h, request.substr(sizeof(h)));
}
"""

    def test_validate_before_decode_passes(self):
        rel = self.tree.write("src/a.cc", self.GOOD)
        errors = ditto_lint.check_rpc_handlers(self.root, [(rel, "HandleSet")])
        self.assertEqual(errors, [])

    def test_decode_before_validate_fails(self):
        rel = self.tree.write("src/a.cc", self.BAD)
        errors = ditto_lint.check_rpc_handlers(self.root, [(rel, "HandleSet")])
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("decodes the payload before validating", errors[0])

    def test_no_validation_at_all_fails(self):
        rel = self.tree.write("src/a.cc", """
void S::HandleSet(std::string_view request) { Do(request); }
""")
        errors = ditto_lint.check_rpc_handlers(self.root, [(rel, "HandleSet")])
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("never validates", errors[0])

    def test_missing_handler_fails(self):
        rel = self.tree.write("src/a.cc", "int x;\n")
        errors = ditto_lint.check_rpc_handlers(self.root, [(rel, "HandleSet")])
        self.assertEqual(len(errors), 1, errors)
        self.assertIn("not found", errors[0])


class RealRepoTest(unittest.TestCase):
    """The pinned configuration must hold on the real tree."""

    def test_repo_is_clean(self):
        errors = ditto_lint.run(REPO_ROOT)
        self.assertEqual(errors, [], "\n".join(errors))

    def test_pinned_cast_budget_is_seven(self):
        # The whole point of the pin: growing it is a reviewed decision.
        self.assertEqual(sum(ditto_lint.ALLOWED_REINTERPRET_CASTS.values()), 7)


if __name__ == "__main__":
    unittest.main(verbosity=2)
