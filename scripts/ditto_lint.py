#!/usr/bin/env python3
"""Repo-invariant linter for the Ditto codebase (runs in ctest as `ditto_lint`).

Four machine-checked invariants that code review kept re-litigating:

1. wire-structs   Every struct that is memcpy'd to/from a wire or arena
                  layout must pin its ABI with two static_asserts
                  (trivially-copyable + sizeof). The struct list is pinned
                  below: adding a wire struct means adding it here too.

2. hot-paths      Regions bracketed by `// ditto-lint: hot-path-begin(name)`
                  / `hot-path-end(name)` must not allocate: no std::string
                  construction, no new/make_unique/make_shared/malloc, no
                  push_back/emplace_back/resize/reserve, no std::to_string.
                  A line may opt out with
                  `// ditto-lint: allow(alloc): <non-empty reason>` on the
                  same or the immediately preceding line. The four regions
                  named in REQUIRED_HOT_PATHS must exist — deleting a marker
                  does not silence the check.

3. casts          reinterpret_cast appears only at the pinned sites below
                  (exact per-file counts). A new cast anywhere — or a removed
                  one leaving the pin stale — is an error; the fix is a
                  reviewed edit of ALLOWED_REINTERPRET_CASTS.

4. rpc-handlers   Every RPC handler must validate request.size() before the
                  first decode (memcpy / substr) of the payload. The handler
                  list is pinned below; registering a new RPC means adding
                  its handler here.

Exit status: 0 clean, 1 findings (printed one per line as file:line: message).
"""

import argparse
import pathlib
import re
import sys

# --- pinned repo facts ----------------------------------------------------

# (relative file, struct name): both asserts must appear in the file.
WIRE_STRUCTS = [
    ("src/hashtable/layout.h", "SlotView"),
    ("src/core/object.h", "ObjectHeader"),
    ("src/net/resp.h", "RespReply"),
    ("src/core/ring.h", "RingEntry"),
    ("src/core/ring.h", "RingEpochHeader"),
]

# region name -> relative file that must contain it.
REQUIRED_HOT_PATHS = {
    "slot-scan": "src/hashtable/layout.h",
    "op-dispatch": "src/sim/runner.cc",
    "resp-parse": "src/net/resp.cc",
    "arena-copy": "src/rdma/arena.cc",
    "migrate-copy": "src/core/cluster.cc",
}

# relative file -> exact number of reinterpret_cast tokens allowed.
# Today's seven: sockaddr casts at the socket boundary (3), the arena's
# edge-word byte views (2), and the object decoder's ext/key views (2).
ALLOWED_REINTERPRET_CASTS = {
    "src/net/server.cc": 2,
    "src/net/loadgen.cc": 1,
    "src/rdma/arena.cc": 2,
    "src/core/object.h": 2,
}

# (relative file, handler name): the handler body must check request.size()
# before its first memcpy/substr of the payload. HandleDelete (cliquemap) is
# absent on purpose: its whole payload is the key, any length is valid.
RPC_HANDLERS = [
    ("src/dm/pool.cc", "HandleResize"),
    ("src/dm/pool.cc", "HandleAllocSegment"),
    ("src/core/adaptive.cc", "HandleUpdate"),
    ("src/baselines/cliquemap.cc", "HandleSet"),
    ("src/baselines/cliquemap.cc", "HandleSync"),
    ("src/baselines/cliquemap.cc", "HandleExpire"),
    ("src/baselines/cliquemap.cc", "HandleResize"),
]

# --- hot-path machinery ---------------------------------------------------

BANNED_ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"std::string\b"), "std::string construction"),
    (re.compile(r"std::to_string\b"), "std::to_string"),
    (re.compile(r"\.push_back\s*\(|->push_back\s*\("), "push_back"),
    (re.compile(r"\.emplace_back\s*\(|->emplace_back\s*\("), "emplace_back"),
    (re.compile(r"\.resize\s*\(|->resize\s*\("), "resize"),
    (re.compile(r"\.reserve\s*\(|->reserve\s*\("), "reserve"),
    (re.compile(r"\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\("), "malloc family"),
    (re.compile(r"\bmake_unique\s*<|\bmake_shared\s*<"), "make_unique/make_shared"),
]

BEGIN_RE = re.compile(r"//\s*ditto-lint:\s*hot-path-begin\(([A-Za-z0-9_-]+)\)")
END_RE = re.compile(r"//\s*ditto-lint:\s*hot-path-end\(([A-Za-z0-9_-]+)\)")
ALLOW_RE = re.compile(r"//\s*ditto-lint:\s*allow\(alloc\)\s*:\s*(\S.*)?$")
CAST_RE = re.compile(r"\breinterpret_cast\b")


def strip_comment(line):
    """Drops a trailing // comment (naive: fine for this codebase, which has
    no // inside string literals on hot paths)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def iter_source_files(root):
    for pattern in ("src/**/*.h", "src/**/*.cc"):
        yield from sorted(root.glob(pattern))


def rel(root, path):
    return path.relative_to(root).as_posix()


def check_wire_structs(root, wire_structs=None, errors=None):
    errors = errors if errors is not None else []
    for rel_path, struct in (wire_structs if wire_structs is not None else WIRE_STRUCTS):
        path = root / rel_path
        if not path.is_file():
            errors.append(f"{rel_path}:1: wire-structs: file missing (pinned for {struct})")
            continue
        text = path.read_text()
        if not re.search(r"static_assert\s*\(\s*std::is_trivially_copyable_v<\s*" +
                         re.escape(struct) + r"\s*>", text):
            errors.append(f"{rel_path}:1: wire-structs: {struct} lacks a "
                          f"static_assert(std::is_trivially_copyable_v<{struct}>...)")
        if not re.search(r"static_assert\s*\(\s*sizeof\s*\(\s*" + re.escape(struct) +
                         r"\s*\)\s*==", text):
            errors.append(f"{rel_path}:1: wire-structs: {struct} lacks a "
                          f"static_assert(sizeof({struct}) == ...)")
    return errors


def check_hot_paths(root, required=None, errors=None):
    errors = errors if errors is not None else []
    required = dict(required if required is not None else REQUIRED_HOT_PATHS)
    seen = {}  # name -> rel file
    for path in iter_source_files(root):
        lines = path.read_text().splitlines()
        rel_path = rel(root, path)
        open_region = None  # (name, begin_lineno)
        for lineno, line in enumerate(lines, start=1):
            begin = BEGIN_RE.search(line)
            end = END_RE.search(line)
            if begin:
                if open_region is not None:
                    errors.append(f"{rel_path}:{lineno}: hot-paths: begin({begin.group(1)}) "
                                  f"inside unclosed region {open_region[0]}")
                open_region = (begin.group(1), lineno)
                if begin.group(1) in seen:
                    errors.append(f"{rel_path}:{lineno}: hot-paths: duplicate region "
                                  f"{begin.group(1)} (also in {seen[begin.group(1)]})")
                seen[begin.group(1)] = rel_path
                continue
            if end:
                if open_region is None or open_region[0] != end.group(1):
                    errors.append(f"{rel_path}:{lineno}: hot-paths: end({end.group(1)}) "
                                  f"without matching begin")
                open_region = None
                continue
            if open_region is None:
                continue
            allowed_here = ALLOW_RE.search(line) or (
                lineno >= 2 and ALLOW_RE.search(lines[lineno - 2]))
            code = strip_comment(line)
            for pattern, what in BANNED_ALLOC_PATTERNS:
                if not pattern.search(code):
                    continue
                if allowed_here:
                    if not allowed_here.group(1):
                        errors.append(f"{rel_path}:{lineno}: hot-paths: allow(alloc) "
                                      f"needs a non-empty reason")
                    break  # one allow covers the line
                errors.append(f"{rel_path}:{lineno}: hot-paths: {what} in hot-path "
                              f"region {open_region[0]}")
        if open_region is not None:
            errors.append(f"{rel_path}:{open_region[1]}: hot-paths: region "
                          f"{open_region[0]} never closed")
    for name, rel_path in required.items():
        if name not in seen:
            errors.append(f"{rel_path}:1: hot-paths: required region {name} is missing")
        elif seen[name] != rel_path:
            errors.append(f"{seen[name]}:1: hot-paths: region {name} pinned to "
                          f"{rel_path} but found here")
    return errors


def check_reinterpret_casts(root, allowed=None, errors=None):
    errors = errors if errors is not None else []
    allowed = dict(allowed if allowed is not None else ALLOWED_REINTERPRET_CASTS)
    counts = {}
    first_line = {}
    for path in iter_source_files(root):
        rel_path = rel(root, path)
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            hits = len(CAST_RE.findall(strip_comment(line)))
            if hits:
                counts[rel_path] = counts.get(rel_path, 0) + hits
                first_line.setdefault(rel_path, lineno)
    for rel_path, count in sorted(counts.items()):
        want = allowed.get(rel_path)
        if want is None:
            errors.append(f"{rel_path}:{first_line[rel_path]}: casts: reinterpret_cast in a "
                          f"file not on the allowlist ({count} found)")
        elif count != want:
            errors.append(f"{rel_path}:{first_line[rel_path]}: casts: {count} "
                          f"reinterpret_casts but the allowlist pins {want} "
                          f"(update ALLOWED_REINTERPRET_CASTS in a reviewed change)")
    for rel_path, want in sorted(allowed.items()):
        if rel_path not in counts:
            errors.append(f"{rel_path}:1: casts: allowlist pins {want} reinterpret_casts "
                          f"but the file has none (stale pin)")
    return errors


def extract_function_body(text, name):
    """Returns (body, start_lineno) of `name(std::string_view request...)`,
    or (None, 0). Brace-matched from the signature's opening brace."""
    sig = re.search(r"\b" + re.escape(name) + r"\s*\(\s*std::string_view\s+request\b",
                    text)
    if sig is None:
        return None, 0
    brace = text.find("{", sig.end())
    if brace < 0:
        return None, 0
    depth = 0
    for i in range(brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[brace:i + 1], text.count("\n", 0, sig.start()) + 1
    return None, 0


def check_rpc_handlers(root, handlers=None, errors=None):
    errors = errors if errors is not None else []
    for rel_path, name in (handlers if handlers is not None else RPC_HANDLERS):
        path = root / rel_path
        if not path.is_file():
            errors.append(f"{rel_path}:1: rpc-handlers: file missing (pinned for {name})")
            continue
        body, lineno = extract_function_body(path.read_text(), name)
        if body is None:
            errors.append(f"{rel_path}:1: rpc-handlers: handler {name} not found "
                          f"(signature must take std::string_view request)")
            continue
        code = "\n".join(strip_comment(l) for l in body.splitlines())
        decode = re.search(r"memcpy\s*\(|request\.substr\s*\(", code)
        check = re.search(r"request\.size\s*\(\s*\)", code)
        if decode and (check is None or check.start() > decode.start()):
            errors.append(f"{rel_path}:{lineno}: rpc-handlers: {name} decodes the payload "
                          f"before validating request.size()")
        elif decode is None and check is None:
            errors.append(f"{rel_path}:{lineno}: rpc-handlers: {name} never validates "
                          f"request.size()")
    return errors


ALL_CHECKS = [check_wire_structs, check_hot_paths, check_reinterpret_casts,
              check_rpc_handlers]


def run(root):
    errors = []
    for check in ALL_CHECKS:
        check(root, errors=errors)
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout containing this script)")
    args = parser.parse_args(argv)
    errors = run(args.root.resolve())
    for err in errors:
        print(err)
    if errors:
        print(f"ditto_lint: {len(errors)} finding(s)", file=sys.stderr)
        return 1
    print("ditto_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
