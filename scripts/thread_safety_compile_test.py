#!/usr/bin/env python3
"""Negative-compile test for the thread-safety annotations (ctest:
`thread_safety_compile_test`).

Verifies, with a real clang invocation, that the macros in
src/common/thread_annotations.h actually gate anything: a well-locked
snippet must compile under `-Wthread-safety -Werror=thread-safety`, and an
unguarded access to a GUARDED_BY field must NOT. This catches the silent
failure mode where the macros get stubbed out (or the CI leg loses the
warning flags) and the whole analysis becomes a no-op.

Exit codes: 0 = both outcomes as expected, 77 = no clang++ on PATH (ctest
records a skip; the clang CI leg runs it for real), 1 = the gate is broken.
"""

import argparse
import pathlib
import shutil
import subprocess
import sys
import tempfile

GOOD = """
#include "common/thread_annotations.h"

class Counter {
 public:
  void Add(int x) {
    ditto::MutexLock lock(&mu_);
    total_ += x;
  }
  int total() const {
    ditto::MutexLock lock(&mu_);
    return total_;
  }

 private:
  mutable ditto::Mutex mu_;
  int total_ GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Add(1);
  return c.total() == 1 ? 0 : 1;
}
"""

# Identical, except total() forgets the lock: must fail to compile.
BAD = GOOD.replace(
    """  int total() const {
    ditto::MutexLock lock(&mu_);
    return total_;
  }""",
    """  int total() const {
    return total_;  // unguarded read of a GUARDED_BY field
  }""")


def compile_snippet(clang, src_dir, code, workdir):
    source = workdir / "snippet.cc"
    source.write_text(code)
    return subprocess.run(
        [clang, "-std=c++20", "-fsyntax-only", "-I", str(src_dir),
         "-Wthread-safety", "-Werror=thread-safety", str(source)],
        capture_output=True, text=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--src", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent / "src",
                        help="include root containing common/thread_annotations.h")
    parser.add_argument("--clang", default=None,
                        help="clang++ binary (default: first of clang++, clang++-18..14)")
    args = parser.parse_args()

    candidates = ([args.clang] if args.clang else
                  ["clang++"] + [f"clang++-{v}" for v in range(18, 13, -1)])
    clang = next((c for c in candidates if c and shutil.which(c)), None)
    if clang is None:
        print("SKIP: no clang++ on PATH (thread-safety analysis is clang-only)")
        return 77

    with tempfile.TemporaryDirectory(prefix="ditto_tsa_") as tmp:
        workdir = pathlib.Path(tmp)
        good = compile_snippet(clang, args.src, GOOD, workdir)
        if good.returncode != 0:
            print("FAIL: the well-locked snippet did not compile:")
            print(good.stderr)
            return 1
        bad = compile_snippet(clang, args.src, BAD, workdir)
        if bad.returncode == 0:
            print("FAIL: unguarded GUARDED_BY access compiled clean — the "
                  "thread-safety gate is a no-op (stubbed macros or lost flags?)")
            return 1
        if "-Wthread-safety" not in bad.stderr and "thread-safety" not in bad.stderr:
            print("FAIL: the bad snippet failed for an unrelated reason:")
            print(bad.stderr)
            return 1

    print(f"OK: {clang} accepts guarded access and rejects unguarded access")
    return 0


if __name__ == "__main__":
    sys.exit(main())
