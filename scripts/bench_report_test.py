#!/usr/bin/env python3
"""Tests for scripts/bench_report.py: row collection/grouping, strict
failure on malformed input, trend deltas against a committed baseline, and
the CI wall-clock floor check. Run directly or via ctest (bench_report_test).
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "bench_report", os.path.join(_HERE, "bench_report.py"))
bench_report = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_report)


def write(path, text):
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)


def row(bench, label, wall_mops, throughput_mops=1.0, ops=1000):
    return {"bench": bench, "label": label, "ops": ops,
            "throughput_mops": throughput_mops, "hit_rate": 0.9,
            "p50_us": 2.0, "p99_us": 9.0, "wall_mops": wall_mops,
            "threads": 1, "ops_per_core_mops": wall_mops}


class CollectTest(unittest.TestCase):
    def test_groups_rows_by_their_own_bench_field(self):
        # The regression: collection used to read the FIRST row's bench field
        # and file every row of the stdout under it. A binary emitting rows
        # for two benches must produce two files with the right rows in each.
        with tempfile.TemporaryDirectory() as tmp:
            stdout_file = os.path.join(tmp, "stdout.txt")
            write(stdout_file, "\n".join([
                "some banner line",
                "BENCH_JSON " + json.dumps(row("alpha", "a1", 1.0)),
                "BENCH_JSON " + json.dumps(row("beta", "b1", 2.0)),
                "BENCH_JSON " + json.dumps(row("alpha", "a2", 3.0)),
                "trailing non-JSON line",
            ]) + "\n")
            self.assertEqual(
                bench_report.main(["collect", stdout_file, "--out-dir", tmp]), 0)
            with open(os.path.join(tmp, "BENCH_alpha.json"), encoding="utf-8") as f:
                alpha = json.load(f)
            with open(os.path.join(tmp, "BENCH_beta.json"), encoding="utf-8") as f:
                beta = json.load(f)
            self.assertEqual([r["label"] for r in alpha], ["a1", "a2"])
            self.assertEqual([r["label"] for r in beta], ["b1"])

    def test_fallback_name_used_when_bench_field_missing(self):
        with tempfile.TemporaryDirectory() as tmp:
            stdout_file = os.path.join(tmp, "stdout.txt")
            write(stdout_file, "BENCH_JSON " + json.dumps({"label": "x", "ops": 1}) + "\n")
            self.assertEqual(
                bench_report.main(["collect", stdout_file, "--out-dir", tmp,
                                   "--fallback-name", "orphan"]), 0)
            self.assertTrue(os.path.exists(os.path.join(tmp, "BENCH_orphan.json")))

    def test_malformed_row_is_a_hard_failure(self):
        with tempfile.TemporaryDirectory() as tmp:
            stdout_file = os.path.join(tmp, "stdout.txt")
            # An unescaped quote inside a label used to produce exactly this
            # kind of truncated/invalid JSON; it must fail the collection.
            write(stdout_file, 'BENCH_JSON {"bench": "x", "label": "bad "quote""}\n')
            self.assertEqual(
                bench_report.main(["collect", stdout_file, "--out-dir", tmp]), 1)


class ReportTest(unittest.TestCase):
    def test_trend_delta_against_fixture_baseline(self):
        with tempfile.TemporaryDirectory() as tmp:
            out_dir = os.path.join(tmp, "out")
            base_dir = os.path.join(tmp, "base")
            os.makedirs(out_dir)
            os.makedirs(base_dir)
            # Current run: 3.0 wall Mops; previous PR's committed baseline: 2.0
            # -> the trend row must report +50.0% on wall and -20.0% on tput.
            write(os.path.join(out_dir, "BENCH_demo.json"),
                  json.dumps([row("demo", "hot", 3.0, throughput_mops=4.0)]))
            write(os.path.join(base_dir, "BENCH_demo.json"),
                  json.dumps([row("demo", "hot", 2.0, throughput_mops=5.0),
                              row("demo", "unmatched", 9.0)]))
            self.assertEqual(
                bench_report.main(["report", "--out-dir", out_dir,
                                   "--baseline-dir", base_dir]), 0)
            with open(os.path.join(out_dir, "report.md"), encoding="utf-8") as f:
                md = f.read()
            self.assertIn("+50.0", md)
            self.assertIn("-20.0", md)
            self.assertIn("1/1 rows matched a baseline row", md)
            with open(os.path.join(out_dir, "report.json"), encoding="utf-8") as f:
                merged = json.load(f)
            self.assertEqual(len(merged), 1)
            self.assertEqual(merged[0]["wall_mops"], 3.0)

    def test_recovery_metric_in_trend_table(self):
        # Cluster lifecycle rows carry recovery_ops (ops until the windowed
        # hit rate is back at 99% of the pre-fault mean). The trend table must
        # report its delta — recovering in 4000 ops against a 16000-op
        # baseline is -75%. Rows without the field show "-" and never break
        # the table.
        with tempfile.TemporaryDirectory() as tmp:
            out_dir = os.path.join(tmp, "out")
            base_dir = os.path.join(tmp, "base")
            os.makedirs(out_dir)
            os.makedirs(base_dir)
            cur = row("cluster", "ditto-crash", 1.5)
            cur["recovery_ops"] = 4000
            base = row("cluster", "ditto-crash", 1.5)
            base["recovery_ops"] = 16000
            write(os.path.join(out_dir, "BENCH_cluster.json"),
                  json.dumps([cur, row("demo", "no-faults", 1.0)]))
            write(os.path.join(base_dir, "BENCH_cluster.json"),
                  json.dumps([base, row("demo", "no-faults", 1.0)]))
            self.assertEqual(
                bench_report.main(["report", "--out-dir", out_dir,
                                   "--baseline-dir", base_dir]), 0)
            with open(os.path.join(out_dir, "report.md"), encoding="utf-8") as f:
                md = f.read()
            self.assertIn("| recovery_ops |", md)
            self.assertIn("| recovery |", md)
            self.assertIn("4000", md)
            self.assertIn("16000", md)
            self.assertIn("-75.0", md)

    def test_every_row_keeps_wall_mops_in_the_table(self):
        with tempfile.TemporaryDirectory() as tmp:
            write(os.path.join(tmp, "BENCH_demo.json"),
                  json.dumps([row("demo", "r1", 1.25), row("demo", "r2", 2.5)]))
            self.assertEqual(bench_report.main(
                ["report", "--out-dir", tmp, "--baseline-dir", tmp]), 0)
            with open(os.path.join(tmp, "report.md"), encoding="utf-8") as f:
                md = f.read()
            self.assertIn("| wall_mops |", md)
            self.assertIn("1.2500", md)
            self.assertIn("2.5000", md)

    def test_malformed_result_file_is_a_hard_failure(self):
        with tempfile.TemporaryDirectory() as tmp:
            write(os.path.join(tmp, "BENCH_demo.json"), "{not json")
            self.assertEqual(bench_report.main(
                ["report", "--out-dir", tmp, "--baseline-dir", tmp]), 1)


class FloorTest(unittest.TestCase):
    def _dir_with_wall(self, tmp, wall):
        write(os.path.join(tmp, "BENCH_demo.json"),
              json.dumps([row("demo", "hot", wall)]))

    def test_floor_passes_at_or_above(self):
        with tempfile.TemporaryDirectory() as tmp:
            self._dir_with_wall(tmp, 2.0)
            self.assertEqual(bench_report.main(
                ["floor", "--out-dir", tmp, "--min-wall-mops", "1.5"]), 0)

    def test_floor_fails_below(self):
        with tempfile.TemporaryDirectory() as tmp:
            self._dir_with_wall(tmp, 1.0)
            self.assertEqual(bench_report.main(
                ["floor", "--out-dir", tmp, "--min-wall-mops", "1.5"]), 1)

    def test_floor_fails_when_bench_filter_matches_nothing(self):
        with tempfile.TemporaryDirectory() as tmp:
            self._dir_with_wall(tmp, 5.0)
            self.assertEqual(bench_report.main(
                ["floor", "--out-dir", tmp, "--bench", "absent",
                 "--min-wall-mops", "0.1"]), 1)


if __name__ == "__main__":
    unittest.main(verbosity=2)
