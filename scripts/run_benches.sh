#!/usr/bin/env bash
# Builds Release and runs every fig* bench plus the sharded-engine and
# elastic-scaling sweeps, capturing each bench's stdout under bench/out/ and
# writing a JSON manifest (name, exit code, wall seconds, output path) to
# bench/out/summary.json — the seed of the repo's performance trajectory
# across PRs.
#
# Benches that print machine-readable "BENCH_JSON {...}" lines (see
# bench::EmitBenchJson: ops, throughput, hit rate, nearest-rank p50/p99) get
# those rows collected into bench/out/BENCH_<name>.json, so CI and future PRs
# can diff perf numbers without parsing the human tables.
#
# Usage: scripts/run_benches.sh [--native] [--scale=N]
#   --native  builds with DITTO_NATIVE=ON (-O3 -march=native) in a separate
#             build dir, so wall-clock numbers reflect the host hardware.
# Extra args are forwarded to every bench binary.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"
out_dir="${repo_root}/bench/out"
native=OFF
args=()
for arg in "$@"; do
  if [ "${arg}" = "--native" ]; then
    native=ON
    build_dir="${repo_root}/build-bench-native"
    # Keep host-tuned numbers out of the portable perf trajectory: native
    # runs get their own output dir, so BENCH_*.json rows never mix flavors.
    out_dir="${repo_root}/bench/out-native"
  else
    args+=("${arg}")
  fi
done
set -- ${args[@]+"${args[@]}"}
out_rel="${out_dir#${repo_root}/}"
mkdir -p "${out_dir}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
      -DDITTO_NATIVE="${native}" -DDITTO_BUILD_TESTS=OFF >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" >/dev/null

summary="${out_dir}/summary.json"
echo "[" > "${summary}"
first=1

for bench in "${build_dir}"/fig* "${build_dir}"/sharded_engine "${build_dir}"/elastic_scaling \
             "${build_dir}"/contended_engine "${build_dir}"/pipelined_engine; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  out_file="${out_dir}/${name}.txt"
  echo ">> ${name}"
  start="$(date +%s.%N)"
  status=0
  "${bench}" "$@" > "${out_file}" 2>&1 || status=$?
  end="$(date +%s.%N)"
  seconds="$(echo "${end} ${start}" | awk '{printf "%.2f", $1 - $2}')"
  [ "${first}" -eq 1 ] || echo "," >> "${summary}"
  first=0
  printf '  {"bench": "%s", "exit_code": %d, "seconds": %s, "output": "%s/%s.txt"}' \
         "${name}" "${status}" "${seconds}" "${out_rel}" "${name}" >> "${summary}"
  if [ "${status}" -ne 0 ]; then
    echo "   FAILED (exit ${status}) — see ${out_file}"
  fi
  # Collect the bench's machine-readable rows (if it emits any) into a JSON
  # array at BENCH_<x>.json, where <x> is the "bench" field the rows carry
  # (contended_engine emits bench="contended" -> BENCH_contended.json);
  # falls back to the binary name if the field is missing.
  if grep -q '^BENCH_JSON ' "${out_file}"; then
    json_name="$(grep -m1 '^BENCH_JSON ' "${out_file}" \
                 | sed -nE 's/.*"bench": "([^"]+)".*/\1/p')"
    [ -n "${json_name}" ] || json_name="${name}"
    bench_json="${out_dir}/BENCH_${json_name}.json"
    {
      echo "["
      grep '^BENCH_JSON ' "${out_file}" | sed 's/^BENCH_JSON //' | sed '$!s/$/,/'
      echo "]"
    } > "${bench_json}"
    echo "   wrote ${bench_json}"
  fi
done

echo >> "${summary}"
echo "]" >> "${summary}"
echo "wrote ${summary}"

# Merge every BENCH_*.json into the cross-PR trajectory table. Individual
# bench failures are tolerated above, so an empty collection is a warning,
# not a script failure.
python3 "${repo_root}/scripts/bench_report.py" --out-dir "${out_dir}" ||
  echo "bench_report: no machine-readable rows collected" 
