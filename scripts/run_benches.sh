#!/usr/bin/env bash
# Builds Release and runs every fig* bench plus the sharded-engine, elastic-
# scaling, contended-engine, pipelined-engine and server-loadgen (RESP front
# end over loopback sockets) sweeps, capturing each
# bench's stdout under bench/out/ and writing a JSON manifest (name, exit
# code, wall seconds, output path) to bench/out/summary.json.
#
# Benches that print machine-readable "BENCH_JSON {...}" lines (see
# bench::EmitBenchJson: ops, throughput, hit rate, nearest-rank p50/p99,
# wall_mops) get those rows collected — grouped by each row's own "bench"
# field — into bench/out/BENCH_<bench>.json by `bench_report.py collect`.
# The report step then diffs the fresh rows against the committed root-level
# BENCH_*.json (the previous PR's numbers) and writes bench/out/report.md.
#
# Portable (non --native) runs finish by PROMOTING bench/out/BENCH_*.json to
# the repo root; committing those files is what gives the next PR a baseline,
# i.e. the cross-PR performance trajectory.
#
# Usage: scripts/run_benches.sh [--native] [--no-promote] [--scale=N]
#   --native      builds with DITTO_NATIVE=ON (-O3 -march=native) in a
#                 separate build dir and output dir (bench/out-native), so
#                 host-tuned wall-clock numbers never mix into the portable
#                 trajectory. When `perf` is available, each bench also gets
#                 hardware counters captured to bench/out-native/perf_<x>.txt.
#   --no-promote  skip the root-level BENCH_*.json promotion step.
# Extra args are forwarded to every bench binary.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"
out_dir="${repo_root}/bench/out"
native=OFF
promote=1
args=()
for arg in "$@"; do
  if [ "${arg}" = "--native" ]; then
    native=ON
    build_dir="${repo_root}/build-bench-native"
    # Keep host-tuned numbers out of the portable perf trajectory: native
    # runs get their own output dir, so BENCH_*.json rows never mix flavors.
    out_dir="${repo_root}/bench/out-native"
  elif [ "${arg}" = "--no-promote" ]; then
    promote=0
  else
    args+=("${arg}")
  fi
done
set -- ${args[@]+"${args[@]}"}
out_rel="${out_dir#${repo_root}/}"
mkdir -p "${out_dir}"

# Hardware counters only make sense for host-tuned builds, and only when the
# container actually has perf (it often does not).
perf_cmd=()
if [ "${native}" = ON ] && command -v perf >/dev/null 2>&1; then
  perf_cmd=(perf stat)
  echo ">> perf found: capturing hardware counters per bench"
fi

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
      -DDITTO_NATIVE="${native}" -DDITTO_BUILD_TESTS=OFF >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" >/dev/null

summary="${out_dir}/summary.json"
echo "[" > "${summary}"
first=1

for bench in "${build_dir}"/fig* "${build_dir}"/sharded_engine "${build_dir}"/elastic_scaling \
             "${build_dir}"/contended_engine "${build_dir}"/pipelined_engine \
             "${build_dir}"/server_loadgen "${build_dir}"/cluster_lifecycle; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  out_file="${out_dir}/${name}.txt"
  echo ">> ${name}"
  start="$(date +%s.%N)"
  status=0
  if [ "${#perf_cmd[@]}" -gt 0 ]; then
    "${perf_cmd[@]}" -o "${out_dir}/perf_${name}.txt" -- \
      "${bench}" "$@" > "${out_file}" 2>&1 || status=$?
  else
    "${bench}" "$@" > "${out_file}" 2>&1 || status=$?
  fi
  end="$(date +%s.%N)"
  seconds="$(echo "${end} ${start}" | awk '{printf "%.2f", $1 - $2}')"
  [ "${first}" -eq 1 ] || echo "," >> "${summary}"
  first=0
  printf '  {"bench": "%s", "exit_code": %d, "seconds": %s, "output": "%s/%s.txt"}' \
         "${name}" "${status}" "${seconds}" "${out_rel}" "${name}" >> "${summary}"
  if [ "${status}" -ne 0 ]; then
    echo "   FAILED (exit ${status}) — see ${out_file}"
  fi
  # Collect the bench's machine-readable rows (if any) into one JSON array
  # per DISTINCT "bench" field the rows carry — a binary emitting rows for
  # several benches produces several BENCH_<x>.json files. A malformed row
  # is a hard error: corrupt trajectory files must never be written.
  python3 "${repo_root}/scripts/bench_report.py" collect "${out_file}" \
          --out-dir "${out_dir}" --fallback-name "${name}"
done

echo >> "${summary}"
echo "]" >> "${summary}"
echo "wrote ${summary}"

# Merge every BENCH_*.json into the trajectory table, diffing against the
# committed root-level baseline from the previous PR. Individual bench
# failures are tolerated above, so an empty collection is a warning, not a
# script failure — but a MALFORMED collection fails the script.
python3 "${repo_root}/scripts/bench_report.py" report --out-dir "${out_dir}" \
        --baseline-dir "${repo_root}" ||
  echo "bench_report: no machine-readable rows collected"

# Promote portable results to the repo root so this PR can commit them as
# the next PR's baseline. Runs after the report step: the report must diff
# against the PREVIOUS baseline before it is overwritten. Native numbers are
# host-specific and never promoted.
if [ "${native}" = OFF ] && [ "${promote}" -eq 1 ] &&
   ls "${out_dir}"/BENCH_*.json >/dev/null 2>&1; then
  cp "${out_dir}"/BENCH_*.json "${repo_root}/"
  echo "promoted $(ls "${out_dir}"/BENCH_*.json | wc -l) BENCH_*.json to repo root (commit them)"
fi
