#!/usr/bin/env python3
"""Merge bench/out/BENCH_*.json into one performance-trajectory table.

Every bench that prints machine-readable "BENCH_JSON {...}" rows (see
bench::EmitBenchJson) gets those rows collected by scripts/run_benches.sh into
bench/out/BENCH_<name>.json. This script merges all of them into:

  bench/out/report.json  - one flat JSON array of every row, tagged by file
  bench/out/report.md    - a markdown table of the same rows

so CI artifacts and future PRs can diff ops / throughput / hit rate /
nearest-rank p50/p99 (and wall_mops where measured) across the repo's history
without parsing bench stdout.

Usage: scripts/bench_report.py [--out-dir bench/out]
Exits non-zero when no BENCH_*.json files are found.
"""

import argparse
import glob
import json
import os
import sys

COLUMNS = [
    ("bench", "bench"),
    ("label", "label"),
    ("ops", "ops"),
    ("throughput_mops", "tput_mops"),
    ("hit_rate", "hit_rate"),
    ("p50_us", "p50_us"),
    ("p99_us", "p99_us"),
    ("wall_mops", "wall_mops"),
]


def format_cell(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="bench/out",
                        help="directory holding BENCH_*.json (default bench/out)")
    args = parser.parse_args()

    paths = sorted(glob.glob(os.path.join(args.out_dir, "BENCH_*.json")))
    if not paths:
        print(f"bench_report: no BENCH_*.json under {args.out_dir}", file=sys.stderr)
        return 1

    rows = []
    for path in paths:
        with open(path, encoding="utf-8") as f:
            try:
                data = json.load(f)
            except json.JSONDecodeError as e:
                print(f"bench_report: skipping malformed {path}: {e}", file=sys.stderr)
                continue
        if not isinstance(data, list):
            print(f"bench_report: skipping {path}: expected a JSON array", file=sys.stderr)
            continue
        for row in data:
            if not isinstance(row, dict):
                print(f"bench_report: skipping non-object row in {path}", file=sys.stderr)
                continue
            row["source"] = os.path.basename(path)
            rows.append(row)

    report_json = os.path.join(args.out_dir, "report.json")
    with open(report_json, "w", encoding="utf-8") as f:
        json.dump(rows, f, indent=2)
        f.write("\n")

    report_md = os.path.join(args.out_dir, "report.md")
    with open(report_md, "w", encoding="utf-8") as f:
        f.write("# Bench trajectory\n\n")
        f.write(f"{len(rows)} rows from {len(paths)} bench result files.\n\n")
        f.write("| " + " | ".join(header for _, header in COLUMNS) + " |\n")
        f.write("|" + "|".join("---" for _ in COLUMNS) + "|\n")
        for row in rows:
            f.write("| " + " | ".join(format_cell(row.get(key)) for key, _ in COLUMNS) + " |\n")

    print(f"bench_report: wrote {report_md} and {report_json} ({len(rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
