#!/usr/bin/env python3
"""Bench harness: collect BENCH_JSON rows, merge them, and track the trajectory.

Every bench that prints machine-readable "BENCH_JSON {...}" rows (see
bench::EmitBenchJson) participates in the repo's cross-PR performance
trajectory. Three subcommands:

  collect <stdout.txt> --out-dir DIR [--fallback-name NAME]
      Extract the BENCH_JSON rows from one bench's captured stdout and write
      them to DIR/BENCH_<bench>.json, grouping rows by each row's OWN "bench"
      field (a binary emitting rows for several benches produces several
      files). Exits non-zero on an unparseable row — corruption is an error,
      never a silent skip.

  report [--out-dir DIR] [--baseline-dir DIR]
      Merge DIR/BENCH_*.json into DIR/report.json (flat array) and
      DIR/report.md (markdown tables). When --baseline-dir holds committed
      BENCH_*.json from the previous PR (default: the repo root), report.md
      also gets a per-bench trend table with wall_mops / throughput deltas.
      Hardware-counter files (DIR/perf_*.txt, written by run_benches.sh
      --native when `perf` exists) are appended verbatim as a section.
      Exits non-zero when a BENCH_*.json fails to parse.

  floor --out-dir DIR --min-wall-mops X [--bench NAME]
      Assert the best wall_mops row in DIR (optionally restricted to one
      bench) sustains at least X Mops — the CI wall-clock floor for the
      native Release build.

Invoking with no subcommand behaves as `report` (back-compat).
"""

import argparse
import glob
import json
import os
import sys

COLUMNS = [
    ("bench", "bench"),
    ("label", "label"),
    ("ops", "ops"),
    ("throughput_mops", "tput_mops"),
    ("hit_rate", "hit_rate"),
    ("p50_us", "p50_us"),
    ("p99_us", "p99_us"),
    ("wall_mops", "wall_mops"),
    ("threads", "threads"),
    ("ops_per_core_mops", "wall/core"),
    # Fault-recovery metric (cluster lifecycle rows only): ops after the fault
    # until the windowed hit rate is back at 99% of the pre-fault mean. Lower
    # is better; rows without faults show "-".
    ("recovery_ops", "recovery_ops"),
]

TREND_COLUMNS = ["bench", "label", "wall_mops", "base_wall", "wall Δ%",
                 "tput_mops", "base_tput", "tput Δ%",
                 "recovery", "base_rec", "rec Δ%"]


def format_cell(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def load_rows(out_dir):
    """Loads every BENCH_*.json under out_dir. Raises on malformed files."""
    paths = sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json")))
    rows = []
    for path in paths:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)  # a JSONDecodeError here is fatal by design
        if not isinstance(data, list):
            raise ValueError(f"{path}: expected a JSON array of rows")
        for row in data:
            if not isinstance(row, dict):
                raise ValueError(f"{path}: expected every row to be an object")
            row["source"] = os.path.basename(path)
            rows.append(row)
    return rows, paths


def cmd_collect(args):
    with open(args.stdout_file, encoding="utf-8") as f:
        lines = [line[len("BENCH_JSON "):] for line in f
                 if line.startswith("BENCH_JSON ")]
    if not lines:
        print(f"bench_report: no BENCH_JSON rows in {args.stdout_file}")
        return 0
    groups = {}
    for i, line in enumerate(lines):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as e:
            print(f"bench_report: malformed BENCH_JSON row {i} in "
                  f"{args.stdout_file}: {e}\n  {line.rstrip()}", file=sys.stderr)
            return 1
        name = row.get("bench") or args.fallback_name
        if not name:
            print(f"bench_report: row {i} in {args.stdout_file} has no "
                  "\"bench\" field and no --fallback-name given", file=sys.stderr)
            return 1
        groups.setdefault(name, []).append(row)
    os.makedirs(args.out_dir, exist_ok=True)
    for name, rows in sorted(groups.items()):
        path = os.path.join(args.out_dir, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(rows, f, indent=2)
            f.write("\n")
        print(f"bench_report: wrote {path} ({len(rows)} rows)")
    return 0


def trend_table(rows, baseline_dir):
    """Rows of (current, baseline) matched by (bench, label)."""
    try:
        base_rows, base_paths = load_rows(baseline_dir)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        return None, f"baseline unreadable: {e}"
    if not base_paths:
        return None, f"no committed BENCH_*.json under {baseline_dir}"
    base = {(r.get("bench"), r.get("label")): r for r in base_rows}
    matched = []
    for row in rows:
        b = base.get((row.get("bench"), row.get("label")))
        if b is not None:
            matched.append((row, b))
    return matched, None


def delta_pct(cur, base):
    if cur is None or base is None or not base:
        return None
    return (cur - base) / base * 100.0


def cmd_report(args):
    try:
        rows, paths = load_rows(args.out_dir)
    except (ValueError, json.JSONDecodeError) as e:
        print(f"bench_report: malformed bench results: {e}", file=sys.stderr)
        return 1
    if not paths:
        print(f"bench_report: no BENCH_*.json under {args.out_dir}", file=sys.stderr)
        return 1

    report_json = os.path.join(args.out_dir, "report.json")
    with open(report_json, "w", encoding="utf-8") as f:
        json.dump(rows, f, indent=2)
        f.write("\n")

    report_md = os.path.join(args.out_dir, "report.md")
    with open(report_md, "w", encoding="utf-8") as f:
        f.write("# Bench trajectory\n\n")
        f.write(f"{len(rows)} rows from {len(paths)} bench result files.\n\n")
        f.write("| " + " | ".join(header for _, header in COLUMNS) + " |\n")
        f.write("|" + "|".join("---" for _ in COLUMNS) + "|\n")
        for row in rows:
            f.write("| " + " | ".join(format_cell(row.get(key))
                                      for key, _ in COLUMNS) + " |\n")

        matched, why_not = trend_table(rows, args.baseline_dir)
        f.write(f"\n## Trend vs committed baseline ({args.baseline_dir})\n\n")
        if matched is None:
            f.write(f"No trend: {why_not}.\n")
        elif not matched:
            f.write("No (bench, label) pairs matched the baseline.\n")
        else:
            f.write(f"{len(matched)}/{len(rows)} rows matched a baseline row.\n\n")
            f.write("| " + " | ".join(TREND_COLUMNS) + " |\n")
            f.write("|" + "|".join("---" for _ in TREND_COLUMNS) + "|\n")
            for cur, base in matched:
                wall_d = delta_pct(cur.get("wall_mops"), base.get("wall_mops"))
                tput_d = delta_pct(cur.get("throughput_mops"),
                                   base.get("throughput_mops"))
                rec_d = delta_pct(cur.get("recovery_ops"), base.get("recovery_ops"))
                cells = [
                    format_cell(cur.get("bench")), format_cell(cur.get("label")),
                    format_cell(cur.get("wall_mops")),
                    format_cell(base.get("wall_mops")),
                    "-" if wall_d is None else f"{wall_d:+.1f}",
                    format_cell(cur.get("throughput_mops")),
                    format_cell(base.get("throughput_mops")),
                    "-" if tput_d is None else f"{tput_d:+.1f}",
                    format_cell(cur.get("recovery_ops")),
                    format_cell(base.get("recovery_ops")),
                    "-" if rec_d is None else f"{rec_d:+.1f}",
                ]
                f.write("| " + " | ".join(cells) + " |\n")

        perf_files = sorted(glob.glob(os.path.join(args.out_dir, "perf_*.txt")))
        if perf_files:
            f.write("\n## Hardware counters (perf stat)\n")
            for path in perf_files:
                name = os.path.basename(path)[len("perf_"):-len(".txt")]
                f.write(f"\n### {name}\n\n```\n")
                with open(path, encoding="utf-8") as pf:
                    f.write(pf.read())
                f.write("```\n")

    print(f"bench_report: wrote {report_md} and {report_json} ({len(rows)} rows)")
    return 0


def cmd_floor(args):
    try:
        rows, paths = load_rows(args.out_dir)
    except (ValueError, json.JSONDecodeError) as e:
        print(f"bench_report: malformed bench results: {e}", file=sys.stderr)
        return 1
    if args.bench:
        rows = [r for r in rows if r.get("bench") == args.bench]
    walls = [r.get("wall_mops") for r in rows
             if isinstance(r.get("wall_mops"), (int, float)) and r.get("wall_mops") > 0]
    what = f"bench '{args.bench}'" if args.bench else f"{len(paths)} result files"
    if not walls:
        print(f"bench_report: floor check failed: no wall_mops rows for {what}",
              file=sys.stderr)
        return 1
    best = max(walls)
    if best < args.min_wall_mops:
        print(f"bench_report: floor check FAILED: best wall_mops {best:.3f} < "
              f"floor {args.min_wall_mops:.3f} ({what})", file=sys.stderr)
        return 1
    print(f"bench_report: floor check ok: best wall_mops {best:.3f} >= "
          f"{args.min_wall_mops:.3f} ({what})")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command")

    p_collect = sub.add_parser("collect", help="extract BENCH_JSON rows from bench stdout")
    p_collect.add_argument("stdout_file")
    p_collect.add_argument("--out-dir", default="bench/out")
    p_collect.add_argument("--fallback-name", default=None,
                           help="bench name for rows missing the field")

    p_report = sub.add_parser("report", help="merge BENCH_*.json into report.md/json")
    p_report.add_argument("--out-dir", default="bench/out")
    p_report.add_argument("--baseline-dir", default=".",
                          help="dir of committed baseline BENCH_*.json (default: repo root)")

    p_floor = sub.add_parser("floor", help="assert a minimum wall_mops")
    p_floor.add_argument("--out-dir", default="bench/out")
    p_floor.add_argument("--bench", default=None)
    p_floor.add_argument("--min-wall-mops", type=float, required=True)

    # Back-compat: `bench_report.py --out-dir X` still means `report`.
    if not argv or argv[0] not in ("collect", "report", "floor", "-h", "--help"):
        argv = ["report"] + argv
    args = parser.parse_args(argv)
    return {"collect": cmd_collect, "report": cmd_report, "floor": cmd_floor}[args.command](args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
