// Tests of multi-memory-node deployments (ShardedPool / ShardedDittoClient).
#include <gtest/gtest.h>

#include <string>

#include "common/hash.h"
#include "core/sharded_client.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/ycsb.h"

namespace ditto::core {
namespace {

dm::PoolConfig PerNode(uint64_t capacity) {
  dm::PoolConfig config;
  config.memory_bytes = 16 << 20;
  config.num_buckets = 1024;
  config.capacity_objects = capacity;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

DittoConfig LruLfu() {
  DittoConfig config;
  config.experts = {"lru", "lfu"};
  return config;
}

TEST(ShardedTest, RoutingIsDeterministicAndCovered) {
  ShardedPool pool(PerNode(1000), 4);
  int seen[4] = {0, 0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    const int node = pool.NodeFor(HashKey("key-" + std::to_string(i)));
    ASSERT_GE(node, 0);
    ASSERT_LT(node, 4);
    seen[node]++;
  }
  for (int n = 0; n < 4; ++n) {
    EXPECT_GT(seen[n], 1800) << "hash routing must spread keys roughly evenly";
  }
}

TEST(ShardedTest, SetGetAcrossNodes) {
  ShardedPool pool(PerNode(1000), 3);
  DittoConfig config = LruLfu();
  ShardedDittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  ShardedDittoClient client(&pool, &ctx, config);

  for (int i = 0; i < 500; ++i) {
    client.Set("key-" + std::to_string(i), "value-" + std::to_string(i));
  }
  std::string value;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(client.Get("key-" + std::to_string(i), &value)) << i;
    EXPECT_EQ(value, "value-" + std::to_string(i));
  }
  // Objects actually landed on multiple nodes.
  int populated = 0;
  for (int n = 0; n < 3; ++n) {
    if (pool.node(n).cached_objects() > 50) {
      populated++;
    }
  }
  EXPECT_EQ(populated, 3);
  EXPECT_EQ(pool.cached_objects(), 500u);
}

TEST(ShardedTest, DeleteRoutesToOwningNode) {
  ShardedPool pool(PerNode(1000), 2);
  DittoConfig config = LruLfu();
  ShardedDittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  ShardedDittoClient client(&pool, &ctx, config);

  client.Set("a", "1");
  client.Set("b", "2");
  EXPECT_TRUE(client.Delete("a"));
  EXPECT_FALSE(client.Get("a", nullptr));
  EXPECT_TRUE(client.Get("b", nullptr));
}

TEST(ShardedTest, PerNodeCapacityEnforced) {
  ShardedPool pool(PerNode(100), 4);  // 400 objects aggregate
  DittoConfig config = LruLfu();
  ShardedDittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  ShardedDittoClient client(&pool, &ctx, config);

  for (int i = 0; i < 2000; ++i) {
    client.Set("key-" + std::to_string(i), "v");
  }
  EXPECT_LE(pool.cached_objects(), 440u);
  EXPECT_GT(client.stats().evictions, 1000u);
}

TEST(ShardedTest, StatsAggregateAcrossNodes) {
  ShardedPool pool(PerNode(1000), 2);
  DittoConfig config = LruLfu();
  ShardedDittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  ShardedDittoClient client(&pool, &ctx, config);

  for (int i = 0; i < 100; ++i) {
    client.Set("k" + std::to_string(i), "v");
  }
  for (int i = 0; i < 200; ++i) {
    client.Get("k" + std::to_string(i), nullptr);  // half hit, half miss
  }
  const DittoStats stats = client.stats();
  EXPECT_EQ(stats.sets, 100u);
  EXPECT_EQ(stats.gets, 200u);
  EXPECT_EQ(stats.hits, 100u);
  EXPECT_EQ(stats.misses, 100u);
}

TEST(ShardedTest, AggregateNicScalesThroughput) {
  // The paper's single-MN Ditto is bounded by one RNIC's message rate;
  // sharding the pool over more memory nodes must scale throughput.
  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = 10000;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, 60000, 1);

  const auto run_with_nodes = [&](int nodes) {
    dm::PoolConfig per_node;
    per_node.memory_bytes = 32 << 20;
    per_node.num_buckets = 8192;
    per_node.capacity_objects = 40000;
    ShardedPool pool(per_node, nodes);
    DittoConfig config;
    config.experts = {"lru", "lfu"};
    ShardedDittoServer server(&pool, config);

    // Enough clients that aggregate demand (~ clients / 4.3us per Get)
    // clearly exceeds one NIC's ~13 Mops ceiling.
    constexpr int kClients = 128;
    std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
    std::vector<std::unique_ptr<sim::ShardedDittoCacheClient>> clients;
    std::vector<sim::CacheClient*> raw;
    std::vector<rdma::RemoteNode*> remote_nodes;
    for (int n = 0; n < nodes; ++n) {
      remote_nodes.push_back(&pool.node(n).node());
    }
    for (int i = 0; i < kClients; ++i) {
      ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
      clients.push_back(
          std::make_unique<sim::ShardedDittoCacheClient>(&pool, ctxs.back().get(), config));
      raw.push_back(clients.back().get());
    }
    // Preload so the measured phase has no misses.
    const std::string value(232, 'v');
    for (uint64_t k = 0; k < ycsb.num_keys; ++k) {
      clients[k % kClients]->Set(workload::KeyString(k), value);
    }
    sim::RunOptions options;
    options.set_on_miss = false;
    return sim::RunTrace(raw, trace, remote_nodes, options).throughput_mops;
  };

  const double one = run_with_nodes(1);
  const double four = run_with_nodes(4);
  EXPECT_GT(four, one * 1.5) << "adding memory nodes must relieve the NIC bottleneck";
}

}  // namespace
}  // namespace ditto::core
