// Wall-clock measurement smoke tests: every replay engine (interleaved,
// pipelined, concurrent sharded, contended) must fill the host wall-clock
// fields of RunResult — wall_s, wall_mops, threads, ops_per_core_mops — with
// positive, mutually consistent values. These fields are what the bench
// harness reports as "real" throughput alongside the modelled virtual-time
// numbers, so an engine that forgets to stamp them silently reports 0 Mops.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/ditto_client.h"
#include "core/sharded_client.h"
#include "dm/pool.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/ycsb.h"

namespace ditto {
namespace {

workload::Trace SmallTrace() {
  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = 500;
  return workload::MakeYcsbTrace(ycsb, /*count=*/20000, /*seed=*/11);
}

dm::PoolConfig SmallPool() {
  dm::PoolConfig config;
  config.memory_bytes = 16 << 20;
  config.num_buckets = 1024;
  config.capacity_objects = 1000;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

core::DittoConfig LruLfu() {
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  return config;
}

// The invariants every engine must satisfy, given the host thread count it
// is expected to report.
void ExpectWallFilled(const sim::RunResult& r, int expected_threads) {
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.wall_s, 0.0);
  EXPECT_GT(r.wall_mops, 0.0);
  EXPECT_EQ(r.threads, expected_threads);
  EXPECT_NEAR(r.ops_per_core_mops, r.wall_mops / static_cast<double>(r.threads),
              1e-12);
  // wall_mops is derived from the same ops counter the result reports.
  EXPECT_NEAR(r.wall_mops, static_cast<double>(r.ops) / (r.wall_s * 1e6),
              r.wall_mops * 1e-9 + 1e-12);
}

TEST(WallClockTest, RunTraceFillsWallFields) {
  dm::MemoryPool pool(SmallPool());
  const core::DittoConfig config = LruLfu();
  core::DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  sim::DittoCacheClient client(&pool, &ctx, config);
  std::vector<sim::CacheClient*> raw = {&client};

  sim::RunOptions options;
  options.warmup_fraction = 0.1;
  const sim::RunResult r = sim::RunTrace(raw, SmallTrace(), &pool.node(), options);
  ExpectWallFilled(r, /*expected_threads=*/1);
}

TEST(WallClockTest, PipelinedRunTraceFillsWallFields) {
  dm::MemoryPool pool(SmallPool());
  const core::DittoConfig config = LruLfu();
  core::DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  sim::DittoCacheClient client(&pool, &ctx, config);
  std::vector<sim::CacheClient*> raw = {&client};

  sim::RunOptions options;
  options.pipeline_depth = 4;
  const sim::RunResult r = sim::RunTrace(raw, SmallTrace(), &pool.node(), options);
  ExpectWallFilled(r, /*expected_threads=*/1);
}

TEST(WallClockTest, RunTraceShardedReportsWorkerThreadCount) {
  constexpr int kShards = 4;
  const core::DittoConfig config = LruLfu();
  core::ShardedPool pool(SmallPool(), kShards);
  std::vector<std::unique_ptr<core::DittoServer>> servers;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> shards;
  std::vector<sim::CacheClient*> raw;
  std::vector<rdma::RemoteNode*> nodes;
  for (int i = 0; i < kShards; ++i) {
    servers.push_back(std::make_unique<core::DittoServer>(&pool.node(i), config));
    ctxs.push_back(std::make_unique<rdma::ClientContext>(static_cast<uint32_t>(i)));
    shards.push_back(
        std::make_unique<sim::DittoCacheClient>(&pool.node(i), ctxs.back().get(), config));
    raw.push_back(shards.back().get());
    nodes.push_back(&pool.node(i).node());
  }

  sim::RunOptions options;
  options.threads = 2;
  options.partition_seed = 42;
  const sim::RunResult r = sim::RunTraceSharded(raw, SmallTrace(), nodes, options);
  // Workers driving the shards: min(options.threads, num_shards).
  ExpectWallFilled(r, /*expected_threads=*/2);
}

TEST(WallClockTest, RunTraceShardedClampsThreadsToShardCount) {
  constexpr int kShards = 2;
  const core::DittoConfig config = LruLfu();
  core::ShardedPool pool(SmallPool(), kShards);
  std::vector<std::unique_ptr<core::DittoServer>> servers;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> shards;
  std::vector<sim::CacheClient*> raw;
  std::vector<rdma::RemoteNode*> nodes;
  for (int i = 0; i < kShards; ++i) {
    servers.push_back(std::make_unique<core::DittoServer>(&pool.node(i), config));
    ctxs.push_back(std::make_unique<rdma::ClientContext>(static_cast<uint32_t>(i)));
    shards.push_back(
        std::make_unique<sim::DittoCacheClient>(&pool.node(i), ctxs.back().get(), config));
    raw.push_back(shards.back().get());
    nodes.push_back(&pool.node(i).node());
  }

  sim::RunOptions options;
  options.threads = 8;  // more workers than shards: only kShards can run
  options.partition_seed = 42;
  const sim::RunResult r = sim::RunTraceSharded(raw, SmallTrace(), nodes, options);
  ExpectWallFilled(r, /*expected_threads=*/kShards);
}

TEST(WallClockTest, RunTraceContendedReportsOneThreadPerClient) {
  constexpr int kClients = 2;
  core::DittoConfig config = LruLfu();
  config.validate_inserts = true;
  dm::MemoryPool pool(SmallPool());
  core::DittoServer server(&pool, config);
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;
  for (int i = 0; i < kClients; ++i) {
    ctxs.push_back(std::make_unique<rdma::ClientContext>(static_cast<uint32_t>(i)));
    clients.push_back(
        std::make_unique<sim::DittoCacheClient>(&pool, ctxs.back().get(), config));
    raw.push_back(clients.back().get());
  }

  sim::RunOptions options;
  std::vector<rdma::RemoteNode*> nodes = {&pool.node()};
  std::vector<sim::RunResult> per_client;
  const sim::RunResult r =
      sim::RunTraceContended(raw, SmallTrace(), nodes, options, &per_client);
  ExpectWallFilled(r, /*expected_threads=*/kClients);
  // Per-client results share the run's wall window and thread count.
  ASSERT_EQ(per_client.size(), static_cast<size_t>(kClients));
}

}  // namespace
}  // namespace ditto
