// Paper-fidelity tests of the network cost of each operation: the number of
// one-sided verbs Ditto issues per Get/Set is the core of its performance
// argument (§4.1: Gets are two RDMA_READs; Sets are READ + WRITE + CAS).
// These tests pin the verb budget so refactors cannot silently add RTTs.
#include <gtest/gtest.h>

#include <string>

#include "core/ditto_client.h"
#include "dm/pool.h"

namespace ditto::core {
namespace {

struct VerbCounts {
  uint64_t reads;
  uint64_t writes;
  uint64_t atomics;
  uint64_t rpcs;
};

class VerbCountTest : public ::testing::Test {
 protected:
  VerbCountTest() : pool_(MakePool()), server_(&pool_, Config()), ctx_(0) {
    client_ = std::make_unique<DittoClient>(&pool_, &ctx_, Config());
    // Pre-populate and warm the allocator so steady-state ops are measured.
    for (int i = 0; i < 64; ++i) {
      client_->Set("warm-" + std::to_string(i), "v");
    }
  }

  static dm::PoolConfig MakePool() {
    dm::PoolConfig config;
    config.memory_bytes = 16 << 20;
    config.num_buckets = 1024;
    config.capacity_objects = 10000;
    config.cost = rdma::CostModel::Disabled();
    return config;
  }

  static DittoConfig Config() {
    DittoConfig config;
    config.experts = {"lru", "lfu"};
    config.fc_threshold = 1000000;        // keep freq FAAs out of the counts
    config.fc_max_age_accesses = 0;       // no age-based flushes either
    return config;
  }

  VerbCounts Snapshot() const { return VerbCounts{ctx_.reads, ctx_.writes, ctx_.atomics,
                                                  ctx_.rpcs}; }
  VerbCounts Delta(const VerbCounts& before) const {
    return VerbCounts{ctx_.reads - before.reads, ctx_.writes - before.writes,
                      ctx_.atomics - before.atomics, ctx_.rpcs - before.rpcs};
  }

  dm::MemoryPool pool_;
  DittoServer server_;
  rdma::ClientContext ctx_;
  std::unique_ptr<DittoClient> client_;
};

TEST_F(VerbCountTest, GetHitIsTwoReadsPlusOneAsyncMetadataWrite) {
  client_->Set("key", "value");
  const VerbCounts before = Snapshot();
  EXPECT_TRUE(client_->Get("key", nullptr));
  const VerbCounts d = Delta(before);
  EXPECT_EQ(d.reads, 2u) << "bucket READ + object READ (paper §4.1)";
  EXPECT_EQ(d.writes, 1u) << "async last_ts update (off the critical path)";
  EXPECT_EQ(d.atomics, 0u) << "freq updates are absorbed by the FC cache";
  EXPECT_EQ(d.rpcs, 0u);
}

TEST_F(VerbCountTest, GetMissIsOneRead) {
  const VerbCounts before = Snapshot();
  EXPECT_FALSE(client_->Get("absent-key", nullptr));
  const VerbCounts d = Delta(before);
  EXPECT_EQ(d.reads, 1u) << "bucket READ only (no history entry to check)";
  EXPECT_EQ(d.writes, 0u);
  EXPECT_EQ(d.atomics, 0u);
}

TEST_F(VerbCountTest, SetUpdateIsReadWriteCas) {
  client_->Set("key", "value");
  client_->Get("key", nullptr);  // ensure recycled runs exist locally
  const VerbCounts before = Snapshot();
  client_->Set("key", "new-value");
  const VerbCounts d = Delta(before);
  EXPECT_EQ(d.reads, 1u) << "bucket READ (paper: search the remote hash table)";
  // Object WRITE (sync) + async last_ts metadata write.
  EXPECT_EQ(d.writes, 2u);
  EXPECT_EQ(d.atomics, 1u) << "slot pointer CAS";
  EXPECT_EQ(d.rpcs, 0u) << "allocation recycles a local run: zero verbs";
}

TEST_F(VerbCountTest, SetInsertUnderCapacityCost) {
  const VerbCounts before = Snapshot();
  client_->Set("brand-new-key", "value");
  const VerbCounts d = Delta(before);
  // Insert path: update-check bucket READ + superblock READ + claim-phase
  // bucket READ, object WRITE + combined metadata WRITE, count FAA + slot
  // CAS. No eviction (under capacity), no RPC (local segment).
  EXPECT_EQ(d.reads, 3u);
  EXPECT_EQ(d.writes, 2u);
  EXPECT_EQ(d.atomics, 2u);
  EXPECT_EQ(d.rpcs, 0u);
}

TEST_F(VerbCountTest, ValidatedInsertPaysOneExtraRead) {
  // Contended deployments (validate_inserts) add exactly one duplicate-
  // validation bucket READ after publishing — the RACE-hashing re-read that
  // lets concurrent inserters of one key converge on a single copy.
  DittoConfig config = Config();
  config.validate_inserts = true;
  rdma::ClientContext ctx(2);
  DittoClient client(&pool_, &ctx, config);
  client.Set("warm", "v");  // warm the allocator/segment
  const uint64_t reads_before = ctx.reads;
  client.Set("validated-new-key", "value");
  EXPECT_EQ(ctx.reads - reads_before, 4u) << "3 insert READs + 1 validation READ";
}

TEST_F(VerbCountTest, DeleteIsReadPlusCas) {
  client_->Set("key", "value");
  const VerbCounts before = Snapshot();
  EXPECT_TRUE(client_->Delete("key"));
  const VerbCounts d = Delta(before);
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.atomics, 2u) << "slot CAS + async object-count FAA";
}

TEST_F(VerbCountTest, SamplingEvictionUsesOneReadPerSampleBatch) {
  // Fill to capacity so the next insert evicts.
  dm::PoolConfig pool_config = MakePool();
  pool_config.capacity_objects = 128;
  pool_config.num_buckets = 64;  // dense table: one sample READ suffices
  dm::MemoryPool pool(pool_config);
  DittoServer server(&pool, Config());
  rdma::ClientContext ctx(1);
  DittoClient client(&pool, &ctx, Config());
  for (int i = 0; i < 128; ++i) {
    client.Set("fill-" + std::to_string(i), "v");
  }
  const uint64_t reads_before = ctx.reads;
  client.Set("overflow-key", "v");
  const uint64_t eviction_reads = ctx.reads - reads_before;
  // Insert costs 3 reads (see above); the sampled eviction should add only a
  // couple of sample READs on a dense table.
  EXPECT_LE(eviction_reads, 3u + 4u) << "sampling must not scan the table";
  EXPECT_GE(client.stats().evictions, 1u);
}

}  // namespace
}  // namespace ditto::core
