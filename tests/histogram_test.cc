// Histogram bucket-boundary and percentile pins.
//
// The regression this guards: BucketFor used to place a sample by
// floor(log10(ns) * 64) alone, and log10(1000) evaluates to 2.999... in
// binary floating point, so a sample at an exact decade power landed one
// bucket LOW and PercentileNs reported a value <= the sample instead of the
// upper edge of the bucket containing it. BucketFor now clamps the log10
// estimate against the precomputed edge table that PercentileNs reports
// from, so placement and reporting can never disagree.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/histogram.h"

namespace ditto {
namespace {

// Multiplicative width of one bucket: 10^(1/64).
double BucketStep() { return std::pow(10.0, 1.0 / Histogram::kBucketsPerDecade); }

// Bucket b covers [edge(b-1), edge(b)) and percentiles report edge(b), so a
// single sample at value v must report strictly above v and at most one
// bucket-step above it.
void ExpectReportsOwnBucketUpper(uint64_t ns) {
  Histogram h;
  h.RecordNs(ns);
  const double p = h.PercentileNs(50);
  EXPECT_GT(p, static_cast<double>(ns)) << "ns=" << ns;
  EXPECT_LE(p, static_cast<double>(ns) * BucketStep() * (1.0 + 1e-9)) << "ns=" << ns;
}

TEST(HistogramTest, DecadePowersLandInTheBucketAboveTheirEdge) {
  // Exact decade powers sit ON a bucket edge; half-open buckets put them in
  // the bucket whose lower edge they are. Before the clamp, 1000ns reported
  // p50 = 1000.0 exactly (one bucket low).
  for (uint64_t ns :
       {10ull, 100ull, 1000ull, 10000ull, 100000ull, 1000000ull, 10000000ull}) {
    ExpectReportsOwnBucketUpper(ns);
  }
}

TEST(HistogramTest, NonBoundarySamplesAlsoReportTheirBucketUpper) {
  for (uint64_t ns : {1ull, 3ull, 999ull, 1001ull, 4242ull, 12345678ull}) {
    ExpectReportsOwnBucketUpper(ns);
  }
}

TEST(HistogramTest, SamplesBeyondTheRangeSaturateIntoTheTopBucket) {
  // The histogram covers [1ns, 10^(kNumBuckets/64) ns); anything at or above
  // the top edge lands in the last bucket and reports that edge.
  const double top =
      std::pow(10.0, static_cast<double>(Histogram::kNumBuckets) /
                         Histogram::kBucketsPerDecade);
  Histogram h;
  h.RecordNs(static_cast<uint64_t>(top) * 10);
  EXPECT_DOUBLE_EQ(h.PercentileNs(50), top);
}

TEST(HistogramTest, NearestRankPercentilePins) {
  // 100 distinct samples: 1us, 2us, ..., 100us. Nearest-rank pN is the
  // ceil(N)-th smallest sample; the histogram reports the upper edge of the
  // bucket containing it.
  Histogram h;
  for (int us = 1; us <= 100; ++us) {
    h.RecordNs(static_cast<uint64_t>(us) * 1000);
  }
  EXPECT_EQ(h.count(), 100u);
  const struct {
    double p;
    double sample_ns;  // the nearest-rank sample for this percentile
  } pins[] = {
      {1.0, 1000.0}, {50.0, 50000.0}, {99.0, 99000.0}, {100.0, 100000.0}};
  for (const auto& pin : pins) {
    const double got = h.PercentileNs(pin.p);
    EXPECT_GT(got, pin.sample_ns) << "p" << pin.p;
    EXPECT_LE(got, pin.sample_ns * BucketStep() * (1.0 + 1e-9)) << "p" << pin.p;
  }
}

TEST(HistogramTest, MeanIsExactAndMergeAddsCounts) {
  Histogram a;
  a.RecordNs(1000);
  a.RecordNs(3000);
  EXPECT_DOUBLE_EQ(a.MeanNs(), 2000.0);

  Histogram b;
  b.RecordNs(5000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.MeanNs(), 3000.0);
  // After merging, p100 reports the bucket upper of the largest sample.
  EXPECT_GT(a.PercentileNs(100), 5000.0);
  EXPECT_LE(a.PercentileNs(100), 5000.0 * BucketStep() * (1.0 + 1e-9));
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 0.0);
  EXPECT_DOUBLE_EQ(h.PercentileNs(50), 0.0);
}

}  // namespace
}  // namespace ditto
