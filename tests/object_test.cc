#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "core/object.h"

namespace ditto::core {
namespace {

TEST(ObjectTest, HeaderIsEightBytes) {
  static_assert(sizeof(ObjectHeader) == 8);
  EXPECT_EQ(kChecksumOff, 8u) << "integrity word directly after the header";
  EXPECT_EQ(kExpiryOff, 16u) << "expiry word after the checksum";
  EXPECT_EQ(kExtWordsOff, 24u) << "extension words after the expiry word";
}

TEST(ObjectTest, EncodeDecodeRoundTrip) {
  std::vector<uint8_t> buf;
  EncodeObject("my-key", "my-value", nullptr, 0, &buf);
  EXPECT_EQ(buf.size() % dm::kBlockBytes, 0u) << "padded to block granularity";

  DecodedObject obj;
  ASSERT_TRUE(DecodeObject(buf.data(), buf.size(), &obj));
  EXPECT_EQ(obj.key, "my-key");
  EXPECT_EQ(obj.value, "my-value");
  EXPECT_EQ(obj.header.ext_words, 0);
  EXPECT_EQ(obj.expiry_tick, 0u) << "no TTL by default";
}

TEST(ObjectTest, ExpiryTickRoundTripsAndCompares) {
  std::vector<uint8_t> buf;
  EncodeObject("k", "v", nullptr, 0, &buf, /*expiry_tick=*/123);
  DecodedObject obj;
  ASSERT_TRUE(DecodeObject(buf.data(), buf.size(), &obj));
  EXPECT_EQ(obj.expiry_tick, 123u);
  EXPECT_FALSE(obj.ExpiredAt(122));
  EXPECT_TRUE(obj.ExpiredAt(123));
  EXPECT_TRUE(obj.ExpiredAt(10'000));
  // expiry 0 never expires.
  EncodeObject("k", "v", nullptr, 0, &buf, 0);
  ASSERT_TRUE(DecodeObject(buf.data(), buf.size(), &obj));
  EXPECT_FALSE(obj.ExpiredAt(UINT64_MAX));
}

TEST(ObjectTest, ExtensionWordsPreserved) {
  const uint64_t ext[3] = {0xAAA, 0xBBB, 0xCCC};
  std::vector<uint8_t> buf;
  EncodeObject("k", "v", ext, 3, &buf);
  DecodedObject obj;
  ASSERT_TRUE(DecodeObject(buf.data(), buf.size(), &obj));
  ASSERT_EQ(obj.header.ext_words, 3);
  EXPECT_EQ(obj.ext[0], 0xAAAu);
  EXPECT_EQ(obj.ext[1], 0xBBBu);
  EXPECT_EQ(obj.ext[2], 0xCCCu);
  EXPECT_EQ(obj.key, "k");
  EXPECT_EQ(obj.value, "v");
}

TEST(ObjectTest, EmptyKeyAndValue) {
  std::vector<uint8_t> buf;
  EncodeObject("", "", nullptr, 0, &buf);
  DecodedObject obj;
  ASSERT_TRUE(DecodeObject(buf.data(), buf.size(), &obj));
  EXPECT_TRUE(obj.key.empty());
  EXPECT_TRUE(obj.value.empty());
}

TEST(ObjectTest, NullDataEmptyViewsEncode) {
  // A default-constructed string_view is empty with data() == nullptr —
  // unlike "" above, whose data() points at the literal. EncodeObject must
  // not hand that null pointer to memcpy even for a zero-byte copy (UB that
  // the UBSan leg traps via memcpy's nonnull attribute).
  std::vector<uint8_t> buf;
  EncodeObject(std::string_view(), std::string_view(), nullptr, 0, &buf);
  DecodedObject obj;
  ASSERT_TRUE(DecodeObject(buf.data(), buf.size(), &obj));
  EXPECT_TRUE(obj.key.empty());
  EXPECT_TRUE(obj.value.empty());
}

TEST(ObjectTest, BlockCountMatchesSize) {
  EXPECT_EQ(ObjectBlocks(0, 0, 0), 1);       // 24-byte header+checksum+expiry
  EXPECT_EQ(ObjectBlocks(8, 32, 0), 1);      // exactly 64 bytes
  EXPECT_EQ(ObjectBlocks(8, 41, 0), 2);      // over one block
  EXPECT_EQ(ObjectBlocks(17, 232, 0), 5);    // the benches' KV pair
  EXPECT_EQ(ObjectBlocks(0, 0, 2), 1);       // 24 + 16 bytes of extensions
}

TEST(ObjectTest, DecodeRejectsTruncatedBuffers) {
  std::vector<uint8_t> buf;
  EncodeObject("some-key", std::string(100, 'x'), nullptr, 0, &buf);
  DecodedObject obj;
  EXPECT_TRUE(DecodeObject(buf.data(), buf.size(), &obj));
  EXPECT_FALSE(DecodeObject(buf.data(), 4, &obj)) << "shorter than the header";
  EXPECT_FALSE(DecodeObject(buf.data(), 32, &obj)) << "header claims more than available";
}

// The self-verification contract behind the two-READ contended Get: a
// buffer whose immutable bytes were torn by a concurrent free/reuse fails
// DecodeObject, while the words that are legitimately rewritten in place
// after publication (expiry, extension metadata) stay outside the checksum.
TEST(ObjectTest, ChecksumRejectsTornBuffersButAllowsInPlaceWords) {
  std::vector<uint8_t> buf;
  EncodeObject("torn-key", std::string(64, 'v'), nullptr, 0, &buf, /*expiry_tick=*/5);
  DecodedObject obj;
  ASSERT_TRUE(DecodeObject(buf.data(), buf.size(), &obj));

  // A single flipped value byte (another object's bytes bleeding in) fails.
  std::vector<uint8_t> torn = buf;
  torn[kExtWordsOff + 10] ^= 0x01;
  EXPECT_FALSE(DecodeObject(torn.data(), torn.size(), &obj));
  // A torn header word fails too.
  torn = buf;
  torn[0] ^= 0x01;
  EXPECT_FALSE(DecodeObject(torn.data(), torn.size(), &obj));

  // Expire's in-place expiry rewrite must NOT invalidate the object...
  std::vector<uint8_t> rearmed = buf;
  const uint64_t new_expiry = 999;
  std::memcpy(rearmed.data() + kExpiryOff, &new_expiry, 8);
  ASSERT_TRUE(DecodeObject(rearmed.data(), rearmed.size(), &obj));
  EXPECT_EQ(obj.expiry_tick, 999u);

  // ...and neither must TouchObject's in-place extension-word updates.
  std::vector<uint8_t> ext_buf;
  const uint64_t ext[2] = {1, 2};
  EncodeObject("k", "v", ext, 2, &ext_buf);
  const uint64_t updated[2] = {7, 8};
  std::memcpy(ext_buf.data() + kExtWordsOff, updated, sizeof(updated));
  ASSERT_TRUE(DecodeObject(ext_buf.data(), ext_buf.size(), &obj));
  EXPECT_EQ(obj.ext[0], 7u);
  EXPECT_EQ(obj.ext[1], 8u);
}

TEST(ObjectTest, DecodeRejectsAbsurdExtensionCount) {
  std::vector<uint8_t> buf(64, 0);
  ObjectHeader header{0, 0, 200};  // ext_words > kMaxExtensionWords
  std::memcpy(buf.data(), &header, sizeof(header));
  DecodedObject obj;
  EXPECT_FALSE(DecodeObject(buf.data(), buf.size(), &obj));
}

TEST(ObjectTest, LargeValuesUpToMaxRun) {
  // kMaxRunBlocks * 64 = 1024 bytes total; the 24-byte preamble + an 8-byte
  // key leave 992 for the value.
  const std::string key = "8bytekey";
  const std::string value(992, 'z');
  ASSERT_LE(ObjectBlocks(key.size(), value.size(), 0), dm::kMaxRunBlocks);
  std::vector<uint8_t> buf;
  EncodeObject(key, value, nullptr, 0, &buf);
  DecodedObject obj;
  ASSERT_TRUE(DecodeObject(buf.data(), buf.size(), &obj));
  EXPECT_EQ(obj.value, value);
}

TEST(ObjectTest, BinarySafeKeysAndValues) {
  std::string key("k\0ey", 4);
  std::string value("v\0\xff\x01", 4);
  std::vector<uint8_t> buf;
  EncodeObject(key, value, nullptr, 0, &buf);
  DecodedObject obj;
  ASSERT_TRUE(DecodeObject(buf.data(), buf.size(), &obj));
  EXPECT_EQ(obj.key, key);
  EXPECT_EQ(obj.value, value);
}

}  // namespace
}  // namespace ditto::core
