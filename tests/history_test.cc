// Tests of the lightweight eviction history: embedded entries, the logical
// FIFO queue (48-bit circular counter), lazy eviction and regret collection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ditto_client.h"
#include "dm/pool.h"
#include "hashtable/hash_table.h"

namespace ditto::core {
namespace {

dm::PoolConfig PoolFor(uint64_t capacity, size_t buckets) {
  dm::PoolConfig config;
  config.memory_bytes = 16 << 20;
  config.num_buckets = buckets;
  config.capacity_objects = capacity;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

DittoConfig Adaptive() {
  DittoConfig config;
  config.experts = {"lru", "lfu"};
  return config;
}

// Counts history-tagged slots in the whole table.
int CountHistoryEntries(dm::MemoryPool* pool) {
  rdma::ClientContext ctx(77);
  rdma::Verbs verbs(&pool->node(), &ctx);
  ht::HashTable table(pool, &verbs);
  int count = 0;
  std::vector<ht::SlotView> bucket;
  for (size_t b = 0; b < table.num_buckets(); ++b) {
    table.ReadBucket(b, &bucket);
    for (const auto& slot : bucket) {
      if (slot.IsHistory()) {
        count++;
      }
    }
  }
  return count;
}

TEST(HistoryTest, EvictionCreatesEmbeddedHistoryEntry) {
  dm::MemoryPool pool(PoolFor(32, 512));
  DittoServer server(&pool, Adaptive());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Adaptive());

  for (int i = 0; i < 100; ++i) {
    client.Set("k-" + std::to_string(i), "v");
  }
  EXPECT_GT(client.stats().evictions, 0u);
  EXPECT_GT(CountHistoryEntries(&pool), 0);
  // The global history counter advanced once per (sampled) eviction.
  const uint64_t counter = pool.node().arena().ReadU64(dm::kHistCounterAddr);
  EXPECT_GE(counter, client.stats().evictions);
}

TEST(HistoryTest, NonAdaptiveModeWritesNoHistory) {
  dm::MemoryPool pool(PoolFor(32, 512));
  DittoConfig config;
  config.experts = {"lru"};
  DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, config);

  for (int i = 0; i < 100; ++i) {
    client.Set("k-" + std::to_string(i), "v");
  }
  EXPECT_GT(client.stats().evictions, 0u);
  EXPECT_EQ(CountHistoryEntries(&pool), 0);
  EXPECT_EQ(pool.node().arena().ReadU64(dm::kHistCounterAddr), 0u);
}

TEST(HistoryTest, MissOnEvictedKeyCollectsRegret) {
  dm::MemoryPool pool(PoolFor(32, 512));
  DittoServer server(&pool, Adaptive());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Adaptive());

  // Fill well past capacity so early keys are evicted into history...
  for (int i = 0; i < 300; ++i) {
    client.Set("k-" + std::to_string(i), "v");
  }
  // ...then request the evicted keys again.
  for (int i = 0; i < 300; ++i) {
    client.Get("k-" + std::to_string(i), nullptr);
  }
  EXPECT_GT(client.stats().misses, 0u);
  EXPECT_GT(client.stats().regrets, 0u) << "misses on freshly evicted keys must hit history";
}

TEST(HistoryTest, RegretsShiftWeightsAwayFromBadExpert) {
  dm::MemoryPool pool(PoolFor(64, 1024));
  DittoConfig config = Adaptive();
  config.penalty_batch = 10;
  DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, config);

  // LRU-hostile loop: cycle through 3x capacity so LRU always evicts what is
  // about to be needed; LFU keeps the repeatedly-seen keys.
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 192; ++i) {
      const std::string key = "k-" + std::to_string(i);
      if (!client.Get(key, nullptr)) {
        client.Set(key, "v");
      }
    }
  }
  EXPECT_GT(client.stats().regrets, 0u);
  const auto& w = client.expert_weights();
  EXPECT_NEAR(w[0] + w[1], 1.0, 0.05);
}

TEST(HistoryTest, ExpiredEntriesAreNotRegrets) {
  dm::MemoryPool pool(PoolFor(32, 512));
  pool.SetHistorySize(4);  // tiny logical FIFO window
  DittoServer server(&pool, Adaptive());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Adaptive());

  client.Set("target", "v");
  // Push far more than 4 evictions so "target"'s entry (if any) expires.
  for (int i = 0; i < 400; ++i) {
    client.Set("filler-" + std::to_string(i), "v");
  }
  const uint64_t regrets_before = client.stats().regrets;
  client.Get("target", nullptr);
  // Either the key is still cached (no miss) or its history entry is beyond
  // the 4-entry logical window: no new regret in the latter case is only
  // guaranteed when > 4 evictions happened after target's eviction, which the
  // 400 fillers ensure.
  EXPECT_LE(client.stats().regrets - regrets_before, 0u);
}

TEST(HistoryTest, HistorySlotsAreReclaimedByInserts) {
  dm::MemoryPool pool(PoolFor(32, 64));  // tiny table: 512 slots
  pool.SetHistorySize(16);
  DittoServer server(&pool, Adaptive());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Adaptive());

  // Long workload over a small table: if expired history entries were never
  // reclaimed, the 512 slots would fill and inserts would start failing.
  for (int i = 0; i < 3000; ++i) {
    client.Set("k-" + std::to_string(i), "v");
  }
  std::string value;
  int alive = 0;
  for (int i = 2990; i < 3000; ++i) {
    if (client.Get("k-" + std::to_string(i), &value)) {
      alive++;
    }
  }
  EXPECT_GE(alive, 8) << "recent inserts must be present: history cannot squeeze objects out";
}

TEST(HistoryTest, CounterWrapAgeArithmetic) {
  // The 48-bit circular counter: validity must be computed mod 2^48.
  dm::MemoryPool pool(PoolFor(32, 512));
  // Pre-position the global counter near the wrap point.
  const uint64_t near_wrap = (uint64_t{1} << 48) - 10;
  pool.node().arena().WriteU64(dm::kHistCounterAddr, near_wrap);
  DittoServer server(&pool, Adaptive());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Adaptive());

  for (int i = 0; i < 300; ++i) {
    client.Set("k-" + std::to_string(i), "v");
  }
  for (int i = 0; i < 300; ++i) {
    client.Get("k-" + std::to_string(i), nullptr);
  }
  // Counter wrapped during the run; regrets must still be collected (ages
  // computed mod 2^48 remain small).
  EXPECT_GT(client.stats().regrets, 0u);
}

TEST(HistoryTest, HistoryEntryCarriesExpertBitmap) {
  dm::MemoryPool pool(PoolFor(16, 256));
  DittoServer server(&pool, Adaptive());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Adaptive());

  for (int i = 0; i < 200; ++i) {
    client.Set("k-" + std::to_string(i), "v");
  }
  // Scan for history entries and check their bitmaps name at least one of
  // the two experts.
  rdma::ClientContext ctx2(1);
  rdma::Verbs verbs2(&pool.node(), &ctx2);
  ht::HashTable table(&pool, &verbs2);
  std::vector<ht::SlotView> bucket;
  int with_bmap = 0;
  int entries = 0;
  for (size_t b = 0; b < table.num_buckets(); ++b) {
    table.ReadBucket(b, &bucket);
    for (const auto& slot : bucket) {
      if (slot.IsHistory()) {
        entries++;
        if ((slot.expert_bmap() & 0b11) != 0) {
          with_bmap++;
        }
      }
    }
  }
  ASSERT_GT(entries, 0);
  // The bitmap is written asynchronously right after the CAS, so in this
  // single-threaded test every entry must have it.
  EXPECT_EQ(with_bmap, entries);
}

}  // namespace
}  // namespace ditto::core
