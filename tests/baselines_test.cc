#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "baselines/cliquemap.h"
#include "baselines/redis_model.h"
#include "baselines/shard_lru.h"
#include "dm/pool.h"
#include "rdma/verbs.h"

namespace ditto::baselines {
namespace {

dm::PoolConfig PoolFor(uint64_t capacity, bool costed = false) {
  dm::PoolConfig config;
  config.memory_bytes = 16 << 20;
  config.num_buckets = 1024;
  config.capacity_objects = capacity;
  if (!costed) {
    config.cost = rdma::CostModel::Disabled();
  }
  return config;
}

// ---- CliqueMap -------------------------------------------------------------

TEST(CliqueMapTest, SetGetRoundTrip) {
  dm::MemoryPool pool(PoolFor(1000));
  CliqueMapServer server(&pool, CliqueMapConfig{});
  rdma::ClientContext ctx(0);
  CliqueMapClient client(&pool, &server, &ctx);

  client.Set("alpha", "value-1");
  std::string value;
  EXPECT_TRUE(client.Get("alpha", &value));
  EXPECT_EQ(value, "value-1");
  EXPECT_FALSE(client.Get("missing", &value));
}

TEST(CliqueMapTest, SetsGoThroughServerCpu) {
  dm::MemoryPool pool(PoolFor(1000));
  CliqueMapServer server(&pool, CliqueMapConfig{});
  rdma::ClientContext ctx(0);
  CliqueMapClient client(&pool, &server, &ctx);

  const uint64_t rpcs_before = pool.node().cpu().ops();
  for (int i = 0; i < 10; ++i) {
    client.Set("k" + std::to_string(i), "v");
  }
  EXPECT_EQ(pool.node().cpu().ops() - rpcs_before, 10u) << "every Set is an RPC";
}

TEST(CliqueMapTest, GetsAreOneSidedOnly) {
  dm::MemoryPool pool(PoolFor(1000));
  CliqueMapConfig config;
  config.sync_every = 1000000;  // no sync during this test
  CliqueMapServer server(&pool, config);
  rdma::ClientContext ctx(0);
  CliqueMapClient client(&pool, &server, &ctx);

  client.Set("k", "v");
  const uint64_t rpcs_before = ctx.rpcs;
  for (int i = 0; i < 20; ++i) {
    client.Get("k", nullptr);
  }
  EXPECT_EQ(ctx.rpcs, rpcs_before) << "Gets must not invoke the server CPU";
}

TEST(CliqueMapTest, AccessInfoSyncsEveryN) {
  dm::MemoryPool pool(PoolFor(1000));
  CliqueMapConfig config;
  config.sync_every = 10;
  CliqueMapServer server(&pool, config);
  rdma::ClientContext ctx(0);
  CliqueMapClient client(&pool, &server, &ctx);

  client.Set("k", "v");
  const uint64_t rpcs_before = ctx.rpcs;
  for (int i = 0; i < 30; ++i) {
    client.Get("k", nullptr);
  }
  EXPECT_EQ(ctx.rpcs - rpcs_before, 3u) << "one sync RPC per 10 accesses";
}

TEST(CliqueMapTest, LruEvictionKeepsRecent) {
  dm::MemoryPool pool(PoolFor(50));
  CliqueMapConfig config;
  config.policy = CmPolicy::kLru;
  config.capacity_objects = 50;
  config.sync_every = 1;  // precise, immediate access info
  CliqueMapServer server(&pool, config);
  rdma::ClientContext ctx(0);
  CliqueMapClient client(&pool, &server, &ctx);

  for (int i = 0; i < 200; ++i) {
    client.Set("k" + std::to_string(i), "v");
  }
  EXPECT_EQ(server.size(), 50u);
  // The most recent 50 inserts survive under precise LRU.
  int alive = 0;
  for (int i = 150; i < 200; ++i) {
    if (client.Get("k" + std::to_string(i), nullptr)) {
      alive++;
    }
  }
  EXPECT_EQ(alive, 50);
  EXPECT_FALSE(client.Get("k0", nullptr));
}

TEST(CliqueMapTest, LfuEvictionKeepsFrequent) {
  dm::MemoryPool pool(PoolFor(50));
  CliqueMapConfig config;
  config.policy = CmPolicy::kLfu;
  config.capacity_objects = 50;
  config.sync_every = 1;
  CliqueMapServer server(&pool, config);
  rdma::ClientContext ctx(0);
  CliqueMapClient client(&pool, &server, &ctx);

  client.Set("hot", "v");
  for (int i = 0; i < 30; ++i) {
    client.Get("hot", nullptr);
  }
  for (int i = 0; i < 200; ++i) {
    client.Set("cold" + std::to_string(i), "v");
  }
  EXPECT_TRUE(client.Get("hot", nullptr)) << "frequent key must survive LFU eviction";
}

TEST(CliqueMapTest, UpdateInPlaceDoesNotGrow) {
  dm::MemoryPool pool(PoolFor(100));
  CliqueMapServer server(&pool, CliqueMapConfig{});
  rdma::ClientContext ctx(0);
  CliqueMapClient client(&pool, &server, &ctx);
  for (int i = 0; i < 20; ++i) {
    client.Set("same-key", "value-" + std::to_string(i));
  }
  EXPECT_EQ(server.size(), 1u);
  std::string value;
  ASSERT_TRUE(client.Get("same-key", &value));
  EXPECT_EQ(value, "value-19");
}

// ---- Shard-LRU -------------------------------------------------------------

TEST(ShardLruTest, SetGetRoundTrip) {
  dm::MemoryPool pool(PoolFor(1000));
  ShardLruDirectory dir(&pool, ShardLruConfig{});
  rdma::ClientContext ctx(0);
  ShardLruClient client(&pool, &dir, &ctx);

  client.Set("alpha", "beta");
  std::string value;
  EXPECT_TRUE(client.Get("alpha", &value));
  EXPECT_EQ(value, "beta");
  EXPECT_FALSE(client.Get("gamma", &value));
}

TEST(ShardLruTest, ListMaintenanceCostsExtraVerbs) {
  dm::MemoryPool pool(PoolFor(1000, /*costed=*/true));
  ShardLruConfig kvs_config;
  kvs_config.maintain_list = false;
  ShardLruDirectory kvs_dir(&pool, kvs_config);
  ShardLruDirectory kvc_dir(&pool, ShardLruConfig{});

  rdma::ClientContext ctx_kvs(0);
  rdma::ClientContext ctx_kvc(1);
  ShardLruClient kvs(&pool, &kvs_dir, &ctx_kvs);
  ShardLruClient kvc(&pool, &kvc_dir, &ctx_kvc);

  kvs.Set("k", "v");
  kvc.Set("k2", "v");
  const double kvs_before = ctx_kvs.clock().busy_us();
  const double kvc_before = ctx_kvc.clock().busy_us();
  for (int i = 0; i < 10; ++i) {
    kvs.Get("k", nullptr);
    kvc.Get("k2", nullptr);
  }
  const double kvs_cost = ctx_kvs.clock().busy_us() - kvs_before;
  const double kvc_cost = ctx_kvc.clock().busy_us() - kvc_before;
  EXPECT_GT(kvc_cost, kvs_cost * 1.5)
      << "maintaining the LRU list must add substantial per-Get latency";
}

TEST(ShardLruTest, CapacityEnforcedViaLruEviction) {
  dm::MemoryPool pool(PoolFor(64));
  ShardLruConfig config;
  config.capacity_objects = 64;
  ShardLruDirectory dir(&pool, config);
  rdma::ClientContext ctx(0);
  ShardLruClient client(&pool, &dir, &ctx);

  for (int i = 0; i < 300; ++i) {
    client.Set("k" + std::to_string(i), "v");
  }
  // Recent keys survive.
  int recent_alive = 0;
  for (int i = 290; i < 300; ++i) {
    if (client.Get("k" + std::to_string(i), nullptr)) {
      recent_alive++;
    }
  }
  EXPECT_GE(recent_alive, 8);
}

TEST(ShardLruTest, LockContentionBurnsNicMessages) {
  dm::MemoryPool pool(PoolFor(1000, /*costed=*/true));
  ShardLruConfig config;
  config.num_shards = 1;  // single lock: worst case (the KVC of Figure 2)
  ShardLruDirectory dir(&pool, config);

  // Several clients hammer the same lock: lock demand (4 holders per round)
  // exceeds what one lock can serve, so waiters burn retry CASes.
  constexpr int kClients = 4;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<ShardLruClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
    clients.push_back(std::make_unique<ShardLruClient>(&pool, &dir, ctxs.back().get()));
    clients.back()->Set("k" + std::to_string(i), "v");
  }
  const uint64_t nic_before = pool.node().nic().messages();
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < kClients; ++i) {
      clients[i]->Get("k" + std::to_string(i), nullptr);
    }
  }
  uint64_t retries = 0;
  for (const auto& c : clients) {
    retries += c->lock_retries();
  }
  EXPECT_GT(retries, 100u) << "saturated lock must generate CAS retry storms";
  EXPECT_GT(pool.node().nic().messages() - nic_before, uint64_t{200} * kClients * 4)
      << "retries must show up as extra NIC messages";
}

// ---- Redis model -----------------------------------------------------------

TEST(RedisModelTest, SteadyThroughputBoundedByHotShard) {
  RedisModel model(RedisModelConfig{});
  const double t32 = model.SteadyThroughputMops(32);
  const double t64 = model.SteadyThroughputMops(64);
  // More shards help, but sublinearly (the hottest key pins one shard).
  EXPECT_GT(t64, t32);
  EXPECT_LT(t64, t32 * 2.0);
  // The skew bound: 32 cores at 0.16 Mops would give 5.1 Mops unsharded; the
  // skewed cluster achieves far less.
  EXPECT_LT(t32, 32 * 0.16 * 0.8);
}

TEST(RedisModelTest, ResizeTriggersMinutesOfMigration) {
  RedisModel model(RedisModelConfig{});
  model.Resize(64);
  // The paper measured 5.3 minutes for 10M 256-B pairs; the model should be
  // in that regime (minutes, not seconds).
  EXPECT_GT(model.migration_remaining_s(), 60.0);
  EXPECT_LT(model.migration_remaining_s(), 1200.0);
}

TEST(RedisModelTest, ThroughputDipsDuringMigrationAndRecoversHigher) {
  RedisModel model(RedisModelConfig{});
  const double before = model.Tick(1.0).throughput_mops;
  model.Resize(64);
  const RedisSample during = model.Tick(1.0);
  EXPECT_TRUE(during.migrating);
  EXPECT_LT(during.throughput_mops, before);
  EXPECT_GT(during.p99_us, model.Tick(0.0).p99_us * 0.99);
  // Run the migration to completion.
  while (model.migration_remaining_s() > 0.0) {
    model.Tick(10.0);
  }
  const RedisSample after = model.Tick(1.0);
  EXPECT_FALSE(after.migrating);
  EXPECT_EQ(after.active_shards, 64);
  EXPECT_GT(after.throughput_mops, before);
}

TEST(RedisModelTest, ShrinkAlsoMigrates) {
  RedisModelConfig config;
  config.initial_shards = 64;
  RedisModel model(config);
  model.Resize(32);
  EXPECT_GT(model.migration_remaining_s(), 60.0);
  EXPECT_EQ(model.active_shards(), 64) << "reclamation is delayed until migration completes";
}

// ---- Malformed RPC payloads (regression: unchecked payload decodes) --------
//
// The handlers used to memcpy the fixed header out of whatever bytes arrived:
// a short kRpcCmSet read past the payload, a short kRpcCmExpire additionally
// threw std::out_of_range from substr(8) and took the server down, and a
// ragged kRpcCmSync silently merged a truncated prefix. Every handler now
// validates request.size() before decoding (pinned by ditto_lint).

TEST(CliqueMapTest, RejectsTruncatedSetPayloads) {
  dm::MemoryPool pool(PoolFor(1000));
  CliqueMapServer server(&pool, CliqueMapConfig{});
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&pool.node(), &ctx);

  for (const size_t len : {size_t{0}, size_t{1}, size_t{15}}) {
    const std::string response = verbs.Rpc(kRpcCmSet, std::string(len, 'x'));
    ASSERT_EQ(response.size(), 9u) << "payload of " << len << " bytes";
    EXPECT_EQ(response[0], '\0') << "short Set payload must be rejected, not decoded";
  }
  EXPECT_EQ(server.size(), 0u);
}

TEST(CliqueMapTest, RejectsSetHeaderLyingAboutLengths) {
  dm::MemoryPool pool(PoolFor(1000));
  CliqueMapServer server(&pool, CliqueMapConfig{});
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&pool.node(), &ctx);

  // Header declaring a 100-byte key + 100-byte value, but only 4 body bytes.
  std::string request(16 + 4, '\0');
  const uint32_t val_len = 100;
  const uint16_t key_len = 100;
  std::memcpy(request.data(), &val_len, 4);
  std::memcpy(request.data() + 4, &key_len, 2);
  const std::string response = verbs.Rpc(kRpcCmSet, request);
  ASSERT_EQ(response.size(), 9u);
  EXPECT_EQ(response[0], '\0') << "declared lengths must match the bytes that arrived";
  EXPECT_EQ(server.size(), 0u);

  // A well-formed Set on the same server still works.
  CliqueMapClient client(&pool, &server, &ctx);
  client.Set("alpha", "value-1");
  std::string value;
  EXPECT_TRUE(client.Get("alpha", &value));
  EXPECT_EQ(value, "value-1");
}

TEST(CliqueMapTest, RejectsTruncatedExpirePayloads) {
  dm::MemoryPool pool(PoolFor(1000));
  CliqueMapServer server(&pool, CliqueMapConfig{});
  rdma::ClientContext ctx(0);
  CliqueMapClient client(&pool, &server, &ctx);
  client.Set("alpha", "value-1");

  rdma::Verbs verbs(&pool.node(), &ctx);
  for (const size_t len : {size_t{0}, size_t{3}, size_t{7}}) {
    const std::string response = verbs.Rpc(kRpcCmExpire, std::string(len, 'x'));
    ASSERT_EQ(response.size(), 1u) << "payload of " << len << " bytes";
    EXPECT_EQ(response[0], '\0') << "payload shorter than the expiry word must be rejected";
  }
  std::string value;
  EXPECT_TRUE(client.Get("alpha", &value)) << "server must survive malformed Expire";
}

TEST(CliqueMapTest, RejectsRaggedSyncPayloads) {
  dm::MemoryPool pool(PoolFor(1000));
  CliqueMapServer server(&pool, CliqueMapConfig{});
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&pool.node(), &ctx);

  for (const size_t len : {size_t{7}, size_t{17}, size_t{31}}) {
    const std::string response = verbs.Rpc(kRpcCmSync, std::string(len, '\0'));
    ASSERT_EQ(response.size(), 1u) << "payload of " << len << " bytes";
    EXPECT_EQ(response[0], '\0') << "ragged access-info payload must be rejected whole";
  }
  // An empty batch and a whole batch are both fine.
  EXPECT_EQ(verbs.Rpc(kRpcCmSync, std::string())[0], '\1');
  EXPECT_EQ(verbs.Rpc(kRpcCmSync, std::string(32, '\0'))[0], '\1');
}

}  // namespace
}  // namespace ditto::baselines
