#include <gtest/gtest.h>

#include "common/rand.h"
#include "core/fc_cache.h"
#include "dm/pool.h"
#include "hashtable/hash_table.h"
#include "rdma/verbs.h"

namespace ditto::core {
namespace {

class FcCacheTest : public ::testing::Test {
 protected:
  FcCacheTest()
      : pool_(MakeConfig()), ctx_(0), verbs_(&pool_.node(), &ctx_), table_(&pool_, &verbs_) {}

  static dm::PoolConfig MakeConfig() {
    dm::PoolConfig config;
    config.memory_bytes = 1 << 20;
    config.num_buckets = 64;
    config.cost = rdma::CostModel::Disabled();
    return config;
  }

  uint64_t FreqAt(uint64_t slot_addr) { return table_.ReadSlot(slot_addr).freq; }

  dm::MemoryPool pool_;
  rdma::ClientContext ctx_;
  rdma::Verbs verbs_;
  ht::HashTable table_;
};

TEST_F(FcCacheTest, BuffersUntilThreshold) {
  FcCache fc(&table_, /*threshold=*/10, /*capacity_bytes=*/1 << 20, /*enabled=*/true);
  const uint64_t slot = table_.BucketSlotAddr(1, 0);
  for (int i = 0; i < 9; ++i) {
    fc.RecordAccess(slot, 16);
  }
  EXPECT_EQ(FreqAt(slot), 0u) << "no remote FAA before the threshold";
  EXPECT_EQ(fc.flushes(), 0u);
  fc.RecordAccess(slot, 16);  // 10th access triggers the flush
  EXPECT_EQ(FreqAt(slot), 10u);
  EXPECT_EQ(fc.flushes(), 1u);
  EXPECT_EQ(fc.entry_count(), 0u);
}

TEST_F(FcCacheTest, ReducesFaaByThresholdFactor) {
  FcCache fc(&table_, 10, 1 << 20, true);
  const uint64_t slot = table_.BucketSlotAddr(1, 0);
  const uint64_t atomics_before = ctx_.atomics;
  for (int i = 0; i < 100; ++i) {
    fc.RecordAccess(slot, 16);
  }
  EXPECT_EQ(ctx_.atomics - atomics_before, 10u) << "1 FAA per 10 accesses";
  EXPECT_EQ(FreqAt(slot), 100u);
}

TEST_F(FcCacheTest, CapacityEvictsOldestEntry) {
  // Each entry costs 16 + 24 = 40 bytes; capacity of 100 holds two entries.
  FcCache fc(&table_, 100, /*capacity_bytes=*/100, true);
  const uint64_t s1 = table_.BucketSlotAddr(1, 0);
  const uint64_t s2 = table_.BucketSlotAddr(2, 0);
  const uint64_t s3 = table_.BucketSlotAddr(3, 0);
  fc.RecordAccess(s1, 16);
  fc.RecordAccess(s2, 16);
  fc.RecordAccess(s3, 16);  // evicts s1 (earliest insert)
  EXPECT_EQ(FreqAt(s1), 1u) << "evicted entry flushed its delta";
  EXPECT_EQ(FreqAt(s2), 0u);
  EXPECT_LE(fc.bytes_used(), 100u);
}

TEST_F(FcCacheTest, FlushAllDrainsEverything) {
  FcCache fc(&table_, 100, 1 << 20, true);
  const uint64_t s1 = table_.BucketSlotAddr(1, 0);
  const uint64_t s2 = table_.BucketSlotAddr(2, 0);
  fc.RecordAccess(s1, 16);
  fc.RecordAccess(s1, 16);
  fc.RecordAccess(s2, 16);
  fc.FlushAll();
  EXPECT_EQ(FreqAt(s1), 2u);
  EXPECT_EQ(FreqAt(s2), 1u);
  EXPECT_EQ(fc.entry_count(), 0u);
  EXPECT_EQ(fc.bytes_used(), 0u);
}

TEST_F(FcCacheTest, DisabledModeIssuesOneFaaPerAccess) {
  FcCache fc(&table_, 10, 1 << 20, /*enabled=*/false);
  const uint64_t slot = table_.BucketSlotAddr(1, 0);
  const uint64_t atomics_before = ctx_.atomics;
  for (int i = 0; i < 7; ++i) {
    fc.RecordAccess(slot, 16);
  }
  EXPECT_EQ(ctx_.atomics - atomics_before, 7u);
  EXPECT_EQ(FreqAt(slot), 7u);
}

TEST_F(FcCacheTest, DisabledPassthroughDoesNotCountFlushes) {
  // Regression: the disabled-mode passthrough used to bump flushes_ per
  // access, which skewed the flush metric benches compare across the
  // ablation. A per-access FAA is not a flush of a buffered delta.
  FcCache fc(&table_, 10, 1 << 20, /*enabled=*/false);
  const uint64_t slot = table_.BucketSlotAddr(1, 0);
  for (int i = 0; i < 25; ++i) {
    fc.RecordAccess(slot, 16);
  }
  EXPECT_EQ(fc.flushes(), 0u) << "passthrough FAAs must not count as flushes";
  EXPECT_EQ(fc.entry_count(), 0u);
  EXPECT_EQ(fc.bytes_used(), 0u);
}

TEST_F(FcCacheTest, CapacityHoldsOnThresholdFlushAccesses) {
  // Regression: the threshold-flush branch used to skip the capacity-eviction
  // loop, so an access that triggered a flush could return with bytes_used_
  // still above capacity_bytes_. The capacity bound must hold after EVERY
  // access, whichever branch it takes.
  constexpr size_t kCapacity = 120;  // three 40-byte entries
  FcCache fc(&table_, /*threshold=*/2, kCapacity, /*enabled=*/true);
  Rng rng(0xFCFC);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t slot = table_.BucketSlotAddr(1 + rng.NextBelow(8), 0);
    // Vary the entry footprint so threshold flushes interleave with inserts
    // that push the buffer over capacity.
    fc.RecordAccess(slot, 8 + rng.NextBelow(64));
    ASSERT_LE(fc.bytes_used(), kCapacity)
        << "access " << i << " left the buffer over capacity";
  }
  fc.FlushAll();
  EXPECT_EQ(fc.bytes_used(), 0u);
}

TEST_F(FcCacheTest, SeparateSlotsTrackedIndependently) {
  FcCache fc(&table_, 3, 1 << 20, true);
  const uint64_t s1 = table_.BucketSlotAddr(1, 0);
  const uint64_t s2 = table_.BucketSlotAddr(2, 0);
  fc.RecordAccess(s1, 16);
  fc.RecordAccess(s2, 16);
  fc.RecordAccess(s1, 16);
  fc.RecordAccess(s1, 16);  // s1 hits threshold 3
  EXPECT_EQ(FreqAt(s1), 3u);
  EXPECT_EQ(FreqAt(s2), 0u);
  EXPECT_EQ(fc.entry_count(), 1u);
}

}  // namespace
}  // namespace ditto::core
