#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sim/adapters.h"
#include "sim/hit_rate.h"
#include "sim/runner.h"
#include "workloads/synthetic_traces.h"
#include "workloads/ycsb.h"

namespace ditto::sim {
namespace {

TEST(HitRateSimTest, CapacityMonotonicity) {
  const workload::Trace t = workload::MakeStationaryZipf(50000, 5000, 0.99, 1);
  const double small = ReplayHitRate(t, 100, policy::PrecisePolicyKind::kLru);
  const double medium = ReplayHitRate(t, 500, policy::PrecisePolicyKind::kLru);
  const double large = ReplayHitRate(t, 2500, policy::PrecisePolicyKind::kLru);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
}

TEST(HitRateSimTest, FullCapacityMeansOnlyColdMisses) {
  const workload::Trace t = workload::MakeStationaryZipf(20000, 1000, 0.99, 1);
  const double rate = ReplayHitRate(t, 1000, policy::PrecisePolicyKind::kLru);
  // Footprint fits: only compulsory misses.
  EXPECT_GT(rate, 0.9);
}

TEST(HitRateSimTest, InterleavingShiftsHitRate) {
  // A drifting workload is order-sensitive: concurrent-client interleaving
  // must change the measured hit rate (the Figure 5 effect).
  const workload::Trace t =
      workload::MakeShiftingHotSet(100000, 10000, 1000, 2000, 500, 1);
  const double h1 = ReplayHitRate(t, 800, policy::PrecisePolicyKind::kLru, 1);
  const double h64 = ReplayHitRate(t, 800, policy::PrecisePolicyKind::kLru, 64);
  EXPECT_NE(h1, h64);
}

TEST(HitRateSimTest, RelativeChangeIsNonNegativeAndBounded) {
  const workload::Trace t =
      workload::MakeShiftingHotSet(50000, 5000, 500, 1000, 250, 1);
  const double change =
      RelativeHitRateChange(t, 400, policy::PrecisePolicyKind::kLru, {1, 8, 64});
  EXPECT_GE(change, 0.0);
  EXPECT_LE(change, 1.0);
}

class RunnerTest : public ::testing::Test {
 protected:
  static dm::PoolConfig PoolFor(uint64_t capacity) {
    dm::PoolConfig config;
    config.memory_bytes = 32 << 20;
    config.num_buckets = 8192;
    config.capacity_objects = capacity;
    return config;  // cost model ON: the runner is about timing
  }
};

TEST_F(RunnerTest, ThroughputAndHitRateReported) {
  dm::MemoryPool pool(PoolFor(20000));
  core::DittoConfig config;
  config.experts = {"lru"};
  core::DittoServer server(&pool, config);

  constexpr int kClients = 4;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<DittoCacheClient>> clients;
  std::vector<CacheClient*> raw;
  for (int i = 0; i < kClients; ++i) {
    ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
    clients.push_back(std::make_unique<DittoCacheClient>(&pool, ctxs.back().get(), config));
    raw.push_back(clients.back().get());
  }

  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = 5000;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, 20000, 1);

  RunOptions options;
  options.warmup_fraction = 0.25;
  const RunResult result = RunTrace(raw, trace, &pool.node(), options);

  EXPECT_GT(result.ops, 10000u);
  EXPECT_GT(result.throughput_mops, 0.0);
  EXPECT_GT(result.hit_rate, 0.5) << "after warmup most zipf traffic hits";
  EXPECT_GT(result.p50_us, 1.0) << "a Get costs at least two RTTs";
  EXPECT_LE(result.p50_us, result.p99_us);
  EXPECT_GT(result.nic_messages, result.ops) << "every op issues multiple verbs";
}

TEST_F(RunnerTest, MissPenaltyCrushesThroughput) {
  dm::MemoryPool pool(PoolFor(500));
  core::DittoConfig config;
  config.experts = {"lru"};
  core::DittoServer server(&pool, config);

  rdma::ClientContext ctx(0);
  DittoCacheClient client(&pool, &ctx, config);
  std::vector<CacheClient*> raw = {&client};

  // Footprint 10x capacity: most Gets miss and pay 500us.
  const workload::Trace trace = workload::MakeStationaryZipf(5000, 5000, 0.2, 1);
  RunOptions options;
  options.miss_penalty_us = 500.0;
  const RunResult result = RunTrace(raw, trace, &pool.node(), options);
  EXPECT_LT(result.hit_rate, 0.5);
  EXPECT_LT(result.throughput_mops, 0.01) << "500us penalties dominate";
}

TEST_F(RunnerTest, ReplayIsDeterministic) {
  // Identical deployments replaying the same trace must produce bit-identical
  // results: the runner interleaves clients with a seeded model in virtual
  // time, so nothing depends on host scheduling.
  workload::YcsbConfig ycsb;
  ycsb.workload = 'A';
  ycsb.num_keys = 3000;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, 15000, 3);

  const auto run_once = [&] {
    dm::MemoryPool pool(PoolFor(1000));
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    core::DittoServer server(&pool, config);
    std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
    std::vector<std::unique_ptr<DittoCacheClient>> clients;
    std::vector<CacheClient*> raw;
    for (int i = 0; i < 8; ++i) {
      ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
      clients.push_back(std::make_unique<DittoCacheClient>(&pool, ctxs.back().get(), config));
      raw.push_back(clients.back().get());
    }
    RunOptions options;
    options.warmup_fraction = 0.2;
    options.miss_penalty_us = 500.0;
    return RunTrace(raw, trace, &pool.node(), options);
  };

  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.sets, b.sets);
  EXPECT_EQ(a.nic_messages, b.nic_messages);
  EXPECT_DOUBLE_EQ(a.throughput_mops, b.throughput_mops);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
}

TEST_F(RunnerTest, VariableValueSizesAreDeterministicPerKey) {
  RunOptions options;
  options.value_bytes = 64;
  options.value_bytes_max = 960;
  std::set<size_t> sizes;
  for (uint64_t key = 0; key < 200; ++key) {
    const size_t a = options.ValueBytesFor(key);
    EXPECT_EQ(a, options.ValueBytesFor(key)) << "size must be a pure function of the key";
    EXPECT_GE(a, options.value_bytes);
    EXPECT_LE(a, options.value_bytes_max);
    sizes.insert(a);
  }
  EXPECT_GT(sizes.size(), 50u) << "sizes must actually vary across keys";
}

TEST_F(RunnerTest, MoreClientsMoreThroughputUntilNicBound) {
  dm::MemoryPool pool(PoolFor(20000));
  core::DittoConfig config;
  config.experts = {"lru"};
  core::DittoServer server(&pool, config);

  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = 5000;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, 30000, 1);

  auto run_with = [&](int n) {
    std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
    std::vector<std::unique_ptr<DittoCacheClient>> clients;
    std::vector<CacheClient*> raw;
    for (int i = 0; i < n; ++i) {
      ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
      clients.push_back(std::make_unique<DittoCacheClient>(&pool, ctxs.back().get(), config));
      raw.push_back(clients.back().get());
    }
    RunOptions options;
    options.warmup_fraction = 0.2;
    return RunTrace(raw, trace, &pool.node(), options).throughput_mops;
  };
  const double t1 = run_with(1);
  const double t8 = run_with(8);
  EXPECT_GT(t8, t1 * 3.0) << "throughput must scale with clients before the NIC saturates";
}

}  // namespace
}  // namespace ditto::sim
