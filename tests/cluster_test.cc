// Cluster lifecycle and fault-injection pins.
//
// The load-bearing guarantees:
//   * With an empty FaultPlan and stable membership, the cluster client is
//     BIT-IDENTICAL to ShardedDittoClient — same hits, verb counts, NIC
//     messages, and virtual-time accounting — so the fault layer is free
//     until something actually fails.
//   * A fixed fault seed makes whole runs reproducible: identical seeds give
//     identical recovery trajectories, counter for counter.
//   * Crashing 1 of 4 nodes mid-replay never stops service, and the windowed
//     hit-rate recovery strictly beats the cold-restart LRU oracle (the
//     monolithic cluster that rebuilds empty on any membership change).
//   * A scheduled restart re-joins the wiped node and recovers the hit rate
//     (survivors migrate its keys back).
//   * Live migration racing 8 genuinely concurrent clients is safe: ops are
//     never lost, only (at worst) degraded to misses. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/cluster.h"
#include "core/sharded_client.h"
#include "sim/adapters.h"
#include "sim/elastic_oracle.h"
#include "sim/runner.h"
#include "workloads/trace.h"
#include "workloads/ycsb.h"

namespace ditto {
namespace {

constexpr int kNodes = 4;
constexpr uint64_t kPartitionSeed = 1;

dm::PoolConfig PerNodePool(uint64_t capacity_objects) {
  dm::PoolConfig config;
  config.memory_bytes = 32 << 20;
  config.num_buckets = 2048;
  config.capacity_objects = capacity_objects;
  return config;  // cost model enabled: time accounting is part of the pins
}

struct ClusterDeployment {
  explicit ClusterDeployment(const core::ClusterConfig& config, int num_clients) {
    pool = std::make_unique<core::ClusterPool>(config);
    for (int i = 0; i < num_clients; ++i) {
      ctxs.push_back(std::make_unique<rdma::ClientContext>(static_cast<uint32_t>(i)));
      clients.push_back(std::make_unique<sim::ClusterCacheClient>(pool.get(),
                                                                  ctxs.back().get(),
                                                                  config.ditto));
      raw.push_back(clients.back().get());
    }
    for (int i = 0; i < pool->num_nodes(); ++i) {
      nodes.push_back(&pool->node(i).node());
    }
  }

  std::unique_ptr<core::ClusterPool> pool;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::ClusterCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;
  std::vector<rdma::RemoteNode*> nodes;
};

core::ClusterConfig TestClusterConfig(uint64_t per_node_capacity) {
  core::ClusterConfig config;
  config.nodes = kNodes;
  config.partition_seed = kPartitionSeed;
  config.pool = PerNodePool(per_node_capacity);
  return config;
}

workload::Trace MixedTrace(uint64_t requests) {
  workload::YcsbConfig ycsb;
  ycsb.workload = 'A';
  ycsb.num_keys = 4096;
  workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, /*seed=*/21);
  workload::OpMix mix;
  mix.delete_fraction = 0.03;
  mix.expire_fraction = 0.03;
  mix.multiget_fraction = 0.15;
  workload::ApplyOpMix(&trace, mix);
  return trace;
}

workload::Trace GetTrace(uint64_t requests) {
  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';
  ycsb.num_keys = 8192;
  return workload::MakeYcsbTrace(ycsb, requests, /*seed=*/13);
}

void ExpectIdenticalResults(const sim::RunResult& a, const sim::RunResult& b) {
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.sets, b.sets);
  EXPECT_EQ(a.deletes, b.deletes);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.nic_messages, b.nic_messages);
  EXPECT_EQ(a.nic_doorbells, b.nic_doorbells);
  EXPECT_EQ(a.rpc_ops, b.rpc_ops);
  EXPECT_EQ(a.cas_failures, b.cas_failures);
  EXPECT_EQ(a.insert_retries, b.insert_retries);
  EXPECT_DOUBLE_EQ(a.hit_rate, b.hit_rate);
  EXPECT_DOUBLE_EQ(a.elapsed_s, b.elapsed_s);
  EXPECT_DOUBLE_EQ(a.throughput_mops, b.throughput_mops);
  EXPECT_DOUBLE_EQ(a.p50_us, b.p50_us);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
}

double MeanHitRate(const std::vector<sim::RecoverySample>& windows, size_t begin,
                   size_t end) {
  uint64_t gets = 0;
  uint64_t hits = 0;
  for (size_t i = begin; i < end && i < windows.size(); ++i) {
    gets += windows[i].gets;
    hits += windows[i].hits;
  }
  return gets == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(gets);
}

uint64_t RecoveryOps(const std::vector<sim::RecoverySample>& windows, size_t fault_window,
                     double target) {
  uint64_t ops = 0;
  for (size_t i = fault_window; i < windows.size(); ++i) {
    if (windows[i].HitRate() >= target) {
      return ops;
    }
    ops += windows[i].gets;
  }
  return ops;
}

// With an empty FaultPlan and stable membership, a ClusterPool deployment
// must be indistinguishable — op for op, verb for verb, nanosecond for
// nanosecond — from the pre-existing ShardedPool deployment it generalizes.
TEST(ClusterFaultFreeTest, BitIdenticalToShardedClient) {
  const workload::Trace trace = MixedTrace(40000);
  sim::RunOptions options;
  options.warmup_fraction = 0.2;
  options.miss_penalty_us = 100.0;

  core::ShardedPool sharded_pool(PerNodePool(512), kNodes, kPartitionSeed);
  std::vector<std::unique_ptr<core::DittoServer>> sharded_servers;
  std::vector<std::unique_ptr<rdma::ClientContext>> sharded_ctxs;
  std::vector<std::unique_ptr<sim::ShardedDittoCacheClient>> sharded_clients;
  std::vector<sim::CacheClient*> sharded_raw;
  std::vector<rdma::RemoteNode*> sharded_nodes;
  core::DittoConfig ditto_config;
  for (int i = 0; i < kNodes; ++i) {
    sharded_servers.push_back(
        std::make_unique<core::DittoServer>(&sharded_pool.node(i), ditto_config));
  }
  for (int i = 0; i < 2; ++i) {
    sharded_ctxs.push_back(std::make_unique<rdma::ClientContext>(static_cast<uint32_t>(i)));
    sharded_clients.push_back(std::make_unique<sim::ShardedDittoCacheClient>(
        &sharded_pool, sharded_ctxs.back().get(), ditto_config));
    sharded_raw.push_back(sharded_clients.back().get());
  }
  for (int i = 0; i < kNodes; ++i) {
    sharded_nodes.push_back(&sharded_pool.node(i).node());
  }
  const sim::RunResult sharded = sim::RunTrace(sharded_raw, trace, sharded_nodes, options);

  ClusterDeployment cluster(TestClusterConfig(512), 2);
  const sim::RunResult clustered = sim::RunTrace(cluster.raw, trace, cluster.nodes, options);

  ExpectIdenticalResults(sharded, clustered);
  EXPECT_GT(clustered.hits, 0u);
  EXPECT_EQ(cluster.pool->migrated_objects(), 0u);
}

// A fixed fault seed pins the whole run: rerunning the identical deployment,
// schedule, and probabilistic fault plan reproduces the recovery trajectory
// (and every aggregate counter) exactly.
TEST(ClusterFaultSeedTest, IdenticalSeedsIdenticalRecoveryTrajectories) {
  const workload::Trace trace = GetTrace(40000);
  sim::RunOptions options;
  options.warmup_fraction = 0.2;
  options.miss_penalty_us = 100.0;
  options.recovery_window_ops = 1000;
  options.resize_schedule = {{0.0, uint64_t{2048}}};
  options.lifecycle_schedule = {{0.5, sim::LifecycleKind::kCrash, kNodes - 1}};

  core::ClusterConfig config = TestClusterConfig(512);
  config.fault.seed = 7;
  config.fault.verb_timeout_prob = 0.001;
  config.fault.rpc_drop_prob = 0.0005;

  ClusterDeployment first(config, 2);
  const sim::RunResult a = sim::RunTrace(first.raw, trace, first.nodes, options);
  ClusterDeployment second(config, 2);
  const sim::RunResult b = sim::RunTrace(second.raw, trace, second.nodes, options);

  ExpectIdenticalResults(a, b);
  ASSERT_EQ(a.recovery.size(), b.recovery.size());
  ASSERT_GT(a.recovery.size(), 0u);
  for (size_t i = 0; i < a.recovery.size(); ++i) {
    EXPECT_EQ(a.recovery[i].gets, b.recovery[i].gets) << "window " << i;
    EXPECT_EQ(a.recovery[i].hits, b.recovery[i].hits) << "window " << i;
  }
}

// Crash 1 of 4 nodes at 50% of the measured replay: the client keeps serving
// every request, and the windowed post-crash trajectory strictly beats the
// cold-restart LRU oracle on both recovery speed and mean hit rate.
TEST(ClusterCrashTest, RecoveryBeatsColdRestartOracle) {
  const workload::Trace trace = GetTrace(60000);
  const uint64_t capacity = 2048;
  const size_t window = 1000;
  sim::RunOptions options;
  options.warmup_fraction = 0.2;
  options.miss_penalty_us = 100.0;
  options.recovery_window_ops = window;
  options.resize_schedule = {{0.0, capacity}};
  options.lifecycle_schedule = {{0.5, sim::LifecycleKind::kCrash, kNodes - 1}};

  ClusterDeployment d(TestClusterConfig(capacity / kNodes), 2);
  const sim::RunResult r = sim::RunTrace(d.raw, trace, d.nodes, options);

  const size_t measure_begin = trace.size() / 5;
  // Every measured request was served (no hang, no drop) even though a
  // quarter of the cluster vanished mid-replay.
  EXPECT_EQ(r.ops, trace.size() - measure_begin);
  EXPECT_EQ(r.gets, r.hits + r.misses);

  const std::vector<sim::RecoverySample> cold = sim::ReplayRecoveryOracle(
      trace, measure_begin, options.lifecycle_schedule, capacity, window);
  ASSERT_EQ(r.recovery.size(), cold.size());

  const size_t crash_window =
      (sim::ResizeStepIndex(0.5, measure_begin, trace.size()) - measure_begin) / window;
  const double pre_ditto = MeanHitRate(r.recovery, 0, crash_window);
  const double pre_cold = MeanHitRate(cold, 0, crash_window);
  const double post_ditto = MeanHitRate(r.recovery, crash_window, r.recovery.size());
  const double post_cold = MeanHitRate(cold, crash_window, cold.size());
  EXPECT_GT(pre_ditto, 0.5);
  // Losing 1/4 of the keys strictly beats losing all of them.
  EXPECT_GT(post_ditto, post_cold);
  const uint64_t rec_ditto = RecoveryOps(r.recovery, crash_window, 0.99 * pre_ditto);
  const uint64_t rec_cold = RecoveryOps(cold, crash_window, 0.99 * pre_cold);
  EXPECT_LT(rec_ditto, rec_cold);
}

// A scheduled restart re-joins the wiped node: survivors migrate its keys
// back and the tail of the run recovers to the pre-crash hit rate.
TEST(ClusterCrashTest, RejoinRecoversHitRate) {
  const workload::Trace trace = GetTrace(60000);
  const uint64_t capacity = 2048;
  const size_t window = 1000;
  sim::RunOptions options;
  options.warmup_fraction = 0.2;
  options.miss_penalty_us = 100.0;
  options.recovery_window_ops = window;
  options.resize_schedule = {{0.0, capacity}};
  options.lifecycle_schedule = {{0.4, sim::LifecycleKind::kCrash, kNodes - 1},
                                {0.7, sim::LifecycleKind::kRestart, kNodes - 1}};

  ClusterDeployment d(TestClusterConfig(capacity / kNodes), 2);
  const sim::RunResult r = sim::RunTrace(d.raw, trace, d.nodes, options);

  const size_t measure_begin = trace.size() / 5;
  EXPECT_EQ(r.ops, trace.size() - measure_begin);

  const size_t crash_window =
      (sim::ResizeStepIndex(0.4, measure_begin, trace.size()) - measure_begin) / window;
  const size_t rejoin_window =
      (sim::ResizeStepIndex(0.7, measure_begin, trace.size()) - measure_begin) / window;
  const double pre_crash = MeanHitRate(r.recovery, 0, crash_window);
  const double tail = MeanHitRate(r.recovery, rejoin_window + 1, r.recovery.size());
  EXPECT_GT(pre_crash, 0.5);
  EXPECT_GE(tail, 0.98 * pre_crash);
  // The restart migrated keys back into the re-joined node.
  EXPECT_GT(d.pool->migrated_objects(), 0u);
  EXPECT_TRUE(d.pool->IsLive(kNodes - 1));
}

// Live migration racing 8 genuinely concurrent clients (TSan-checked in CI):
// a planned leave drains a node while the other clients keep hammering the
// shared pools, the node joins back, and late in the run another node
// crashes. No op may be lost or double-counted — at worst a racing op
// degrades to a miss or an unavailability, never a wrong value.
TEST(ClusterContendedTest, MigrationRacesEightClientsSafely) {
  const workload::Trace trace = GetTrace(40000);
  sim::RunOptions options;
  options.warmup_fraction = 0.1;
  options.miss_penalty_us = 100.0;
  options.lifecycle_schedule = {{0.3, sim::LifecycleKind::kLeave, 1},
                                {0.55, sim::LifecycleKind::kJoin, 1},
                                {0.8, sim::LifecycleKind::kCrash, 2}};

  core::ClusterConfig config = TestClusterConfig(512);
  config.ditto.validate_inserts = true;
  ClusterDeployment d(config, 8);
  const sim::RunResult r = sim::RunTraceContended(d.raw, trace, d.nodes, options);

  const size_t measure_begin = trace.size() / 10;
  EXPECT_EQ(r.ops, trace.size() - measure_begin);
  EXPECT_EQ(r.gets, r.hits + r.misses);
  EXPECT_GT(r.hits, 0u);
  // The leave drained node 1's keys while traffic raced the sweep.
  EXPECT_GT(d.pool->migrated_objects(), 0u);
  EXPECT_TRUE(d.pool->IsLive(1));
  EXPECT_FALSE(d.pool->IsLive(2));
}

}  // namespace
}  // namespace ditto
