#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "workloads/trace_file.h"

namespace ditto::workload {
namespace {

TEST(TraceFileTest, ParsesSimpleFormat) {
  std::istringstream in(
      "GET,user:1\n"
      "SET,user:2\n"
      "GET,user:1\n"
      "INSERT,user:3\n");
  TraceFileStats stats;
  const Trace trace = ParseTrace(in, &stats);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(stats.parsed, 4u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.distinct_keys, 3u);
  EXPECT_EQ(trace[0].op, Op::kGet);
  EXPECT_EQ(trace[1].op, Op::kUpdate);
  EXPECT_EQ(trace[3].op, Op::kInsert);
  EXPECT_EQ(trace[0].key, trace[2].key) << "same key string -> same interned id";
  EXPECT_NE(trace[0].key, trace[1].key);
}

TEST(TraceFileTest, ParsesBareKeysAsGets) {
  std::istringstream in("alpha\nbeta\nalpha\n");
  const Trace trace = ParseTrace(in);
  ASSERT_EQ(trace.size(), 3u);
  for (const auto& r : trace) {
    EXPECT_EQ(r.op, Op::kGet);
  }
  EXPECT_EQ(trace[0].key, trace[2].key);
}

TEST(TraceFileTest, ParsesTwitterFormat) {
  // timestamp,key,key_size,value_size,client_id,op,ttl
  std::istringstream in(
      "0,kAAA,4,100,7,get,0\n"
      "1,kBBB,4,150,7,set,3600\n"
      "2,kAAA,4,100,8,gets,0\n"
      "3,kCCC,4,80,9,add,0\n"
      "4,kAAA,4,0,9,delete,0\n");
  TraceFileStats stats;
  const Trace trace = ParseTrace(in, &stats);
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(stats.skipped, 0u) << "delete replays as a typed op";
  EXPECT_EQ(trace[0].op, Op::kGet);
  EXPECT_EQ(trace[1].op, Op::kUpdate);
  EXPECT_EQ(trace[2].op, Op::kGet);
  EXPECT_EQ(trace[3].op, Op::kInsert);
  EXPECT_EQ(trace[4].op, Op::kDelete);
  EXPECT_EQ(trace[0].key, trace[2].key);
}

TEST(TraceFileTest, SkipsCommentsBlanksAndMalformed) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "GET,ok\n"
      "bogus,stuff,too,many\n"
      "FLUSH,key\n");
  TraceFileStats stats;
  const Trace trace = ParseTrace(in, &stats);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(stats.lines, 3u) << "comments and blanks are not counted";
  EXPECT_EQ(stats.skipped, 2u);
}

TEST(TraceFileTest, HandlesCrlfLineEndings) {
  std::istringstream in("GET,a\r\nGET,b\r\n");
  TraceFileStats stats;
  const Trace trace = ParseTrace(in, &stats);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(stats.distinct_keys, 2u) << "\\r must be stripped from keys";
}

TEST(TraceFileTest, WriteParseRoundTrip) {
  Trace original = {{Op::kGet, 0},    {Op::kUpdate, 1}, {Op::kGet, 0},
                    {Op::kInsert, 2}, {Op::kDelete, 1}, {Op::kExpire, 0},
                    {Op::kMultiGet, 2}};
  std::ostringstream out;
  WriteTraceFile(original, out);
  std::istringstream in(out.str());
  const Trace parsed = ParseTrace(in);
  ASSERT_EQ(parsed.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].op, original[i].op) << i;
  }
  // Interned ids preserve identity structure.
  EXPECT_EQ(parsed[0].key, parsed[2].key);
  EXPECT_NE(parsed[0].key, parsed[1].key);
}

TEST(TraceFileTest, MissingFileIsEmpty) {
  TraceFileStats stats;
  const Trace trace = LoadTraceFile("/nonexistent/path/trace.csv", &stats);
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(stats.lines, 0u);
}

TEST(TraceFileTest, LoadFromDisk) {
  const std::string path = ::testing::TempDir() + "/ditto_trace_test.csv";
  {
    std::ofstream out(path);
    out << "GET,x\nSET,y\n";
  }
  TraceFileStats stats;
  const Trace trace = LoadTraceFile(path, &stats);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(stats.distinct_keys, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ditto::workload
