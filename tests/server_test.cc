// End-to-end tests of the RESP front end over real loopback sockets.
//
// The load-bearing test is replay fidelity: a trace replayed through
// ditto_server's network path (net::Server + net::RunLoadgen, one connection
// at depth 1) must produce hit rates, verb counts, and NIC message counts
// identical to the in-process sim::RunTrace of the same trace on an
// identical deployment. The rest pins the overload contract: connections
// past max_conns are answered `-ERR max connections reached` and closed,
// commands past the shed watermark are answered `-LOADSHED` (never stalled
// or crashed), malformed frames get a RESP error and a close, QUIT closes
// after the flush, and a cluster-backed front end answers `-UNAVAILABLE`
// (never a silent nil) when the backing nodes are crashed. Runs in the
// ASan/TSan CI matrix.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "core/ditto_client.h"
#include "dm/pool.h"
#include "net/loadgen.h"
#include "net/resp.h"
#include "net/ring_buffer.h"
#include "net/server.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/trace.h"
#include "workloads/ycsb.h"

namespace ditto {
namespace {

dm::PoolConfig TestPool(uint64_t capacity_objects) {
  dm::PoolConfig config;
  config.memory_bytes = 32 << 20;
  config.num_buckets = 1024;
  config.capacity_objects = capacity_objects;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

// One pool + server + n clients, one client per reactor.
struct Deployment {
  Deployment(const dm::PoolConfig& pool_config, core::DittoConfig config, int num_clients)
      : pool(pool_config), server(&pool, config) {
    config.validate_inserts = config.validate_inserts || num_clients > 1;
    for (int i = 0; i < num_clients; ++i) {
      ctxs.push_back(std::make_unique<rdma::ClientContext>(static_cast<uint32_t>(i)));
      clients.push_back(
          std::make_unique<sim::DittoCacheClient>(&pool, ctxs.back().get(), config));
      raw.push_back(clients.back().get());
    }
  }

  dm::MemoryPool pool;
  core::DittoServer server;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;
};

workload::Trace TestTrace(uint64_t requests) {
  workload::YcsbConfig ycsb;
  ycsb.workload = 'A';
  ycsb.num_keys = 2048;
  ycsb.zipf_theta = 0.99;
  workload::Trace trace = workload::MakeYcsbTrace(ycsb, requests, /*seed=*/42);
  // Exercise DEL and EXPIRE on the wire too (MultiGet stays out: the
  // in-process engine fuses adjacent MultiGets into pipelined runs, which
  // the one-command-at-a-time wire protocol intentionally does not).
  workload::OpMix mix;
  mix.delete_fraction = 0.05;
  mix.expire_fraction = 0.05;
  workload::ApplyOpMix(&trace, mix);
  return trace;
}

// Blocking loopback connection with a receive timeout, for the raw-socket
// overload tests.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  ~RawConn() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  bool ok() const { return fd_ >= 0; }

  bool Send(std::string_view bytes) {
    while (!bytes.empty()) {
      const ssize_t n = ::write(fd_, bytes.data(), bytes.size());
      if (n <= 0) {
        return false;
      }
      bytes.remove_prefix(static_cast<size_t>(n));
    }
    return true;
  }

  // Reads `count` complete replies, returning each as its raw first line
  // rendering ("+PONG", "-LOADSHED ...", ":3", "$value", "(nil)", "*2").
  std::vector<std::string> ReadReplies(size_t count) {
    std::vector<std::string> out;
    std::string error;
    while (out.size() < count) {
      net::RespReply reply;
      std::vector<net::RespReply> elems;
      const net::ParseStatus st = net::ParseReply(&in_, &reply, &elems, &error);
      if (st == net::ParseStatus::kOk) {
        out.push_back(Render(reply));
        continue;
      }
      if (st == net::ParseStatus::kError || !FillFromSocket()) {
        break;
      }
    }
    return out;
  }

  // Reads until the peer closes; returns everything received.
  std::string ReadUntilEof() {
    std::string out(in_.view());
    in_.Clear();
    char buf[4096];
    while (true) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) {
        break;
      }
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  static std::string Render(const net::RespReply& reply) {
    switch (reply.type) {
      case net::RespReply::Type::kSimple:
        return "+" + std::string(reply.text);
      case net::RespReply::Type::kError:
        return "-" + std::string(reply.text);
      case net::RespReply::Type::kInteger:
        return ":" + std::to_string(reply.integer);
      case net::RespReply::Type::kBulk:
        return "$" + std::string(reply.text);
      case net::RespReply::Type::kNil:
        return "(nil)";
      case net::RespReply::Type::kArray:
        return "*" + std::to_string(reply.count);
    }
    return "?";
  }

  bool FillFromSocket() {
    char* dst = in_.Reserve(4096);
    const ssize_t n = ::read(fd_, dst, 4096);
    if (n <= 0) {
      return false;
    }
    in_.Commit(static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  net::RingBuffer in_;
};

// A trace served over the socket path must be indistinguishable — hit for
// hit, verb for verb, NIC message for NIC message — from the in-process
// replay of the same trace on an identical deployment.
TEST(ServerFidelityTest, ServedReplayMatchesInProcessRunTrace) {
  const workload::Trace trace = TestTrace(20000);
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  constexpr size_t kValueBytes = 64;
  constexpr uint64_t kTtlTicks = 64;

  // In-process side.
  Deployment in_process(TestPool(512), config, 1);
  sim::RunOptions options;
  options.value_bytes = kValueBytes;
  options.expire_ttl_ticks = kTtlTicks;
  const sim::RunResult expected =
      sim::RunTrace(in_process.raw, trace, &in_process.pool.node(), options);

  // Served side: fresh deployment, one reactor, one connection at depth 1
  // (both sides then execute the trace in its original order).
  Deployment served(TestPool(512), config, 1);
  served.raw[0]->ResetForMeasurement();
  const uint64_t nic_before = served.pool.node().nic().messages();
  net::Server server(served.raw, net::ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  net::LoadgenOptions lg;
  lg.port = server.port();
  lg.connections = 1;
  lg.depth = 1;
  lg.value_bytes = kValueBytes;
  lg.expire_ttl_ticks = kTtlTicks;
  const net::LoadgenResult r = net::RunLoadgen(trace, lg);
  server.Stop();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.ops, trace.size());

  // Wire-observed counts match the in-process result...
  EXPECT_EQ(r.gets, expected.gets);
  EXPECT_EQ(r.hits, expected.hits);
  EXPECT_EQ(r.misses, expected.misses);
  EXPECT_EQ(r.sets, expected.sets);
  // The wire counts DEL round trips; the client counts successful deletions.
  size_t trace_deletes = 0;
  for (const workload::Request& req : trace) {
    trace_deletes += req.op == workload::Op::kDelete ? 1 : 0;
  }
  EXPECT_EQ(r.deletes, trace_deletes);

  // ...and so do the cache client's own counters and the NIC message count
  // (the strongest equivalence: the server issued the identical verbs).
  const sim::ClientCounters counters = served.raw[0]->counters();
  EXPECT_EQ(counters.gets, expected.gets);
  EXPECT_EQ(counters.hits, expected.hits);
  EXPECT_EQ(counters.misses, expected.misses);
  EXPECT_EQ(counters.sets, expected.sets);
  EXPECT_EQ(counters.deletes, expected.deletes);
  EXPECT_EQ(counters.evictions, expected.evictions);
  EXPECT_EQ(counters.expired, expected.expired);
  EXPECT_EQ(served.pool.node().nic().messages() - nic_before, expected.nic_messages);
}

// More connections and reactors still serve every request exactly once
// (counts sum correctly on the wire even though the interleaving differs).
TEST(ServerFidelityTest, MultiConnectionReplayServesEveryRequest) {
  const workload::Trace trace = TestTrace(20000);
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  config.validate_inserts = true;
  Deployment d(TestPool(512), config, 2);
  net::Server server(d.raw, net::ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  net::LoadgenOptions lg;
  lg.port = server.port();
  lg.connections = 8;
  lg.depth = 4;
  lg.value_bytes = 64;
  const net::LoadgenResult r = net::RunLoadgen(trace, lg);
  server.Stop();
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.ops, trace.size());
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.hits, 0u);
  EXPECT_GT(r.qps, 0.0);

  const net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 8u);
  EXPECT_EQ(stats.live_conns, 0u);
  EXPECT_GE(stats.commands, trace.size());
}

TEST(ServerOverloadTest, ConnCapAnswersErrorAndCloses) {
  core::DittoConfig config;
  Deployment d(TestPool(256), config, 1);
  net::ServerOptions options;
  options.max_conns = 2;
  net::Server server(d.raw, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  RawConn first(server.port());
  RawConn second(server.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // A round trip on each guarantees both are admitted before the third
  // connection arrives.
  ASSERT_TRUE(first.Send("PING\r\n"));
  ASSERT_TRUE(second.Send("PING\r\n"));
  EXPECT_EQ(first.ReadReplies(1), std::vector<std::string>{"+PONG"});
  EXPECT_EQ(second.ReadReplies(1), std::vector<std::string>{"+PONG"});

  RawConn third(server.port());
  ASSERT_TRUE(third.ok());  // TCP accept succeeds; rejection is in-protocol
  const std::string rejection = third.ReadUntilEof();
  EXPECT_EQ(rejection, "-ERR max connections reached\r\n");

  // The admitted connections keep working.
  ASSERT_TRUE(first.Send("PING\r\n"));
  EXPECT_EQ(first.ReadReplies(1), std::vector<std::string>{"+PONG"});
  EXPECT_GE(server.stats().rejected_conns, 1u);
  server.Stop();
}

TEST(ServerOverloadTest, ShedWatermarkAnswersLoadshedNotStall) {
  core::DittoConfig config;
  Deployment d(TestPool(256), config, 1);
  net::ServerOptions options;
  options.shed_watermark = 4;
  net::Server server(d.raw, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  // One write of 256 pipelined GETs: only the watermark's worth of each
  // arriving batch may execute; the rest must be answered (with -LOADSHED),
  // never dropped or stalled.
  std::string burst;
  for (int i = 0; i < 256; ++i) {
    burst += "GET key" + std::to_string(i) + "\r\n";
  }
  ASSERT_TRUE(conn.Send(burst));
  const std::vector<std::string> replies = conn.ReadReplies(256);
  ASSERT_EQ(replies.size(), 256u);
  size_t served = 0;
  size_t shed = 0;
  for (const std::string& reply : replies) {
    if (reply == "(nil)" || reply[0] == '$') {
      ++served;
    } else if (reply.rfind("-LOADSHED", 0) == 0) {
      ++shed;
    } else {
      FAIL() << "unexpected reply: " << reply;
    }
  }
  EXPECT_EQ(served + shed, 256u);
  EXPECT_GT(shed, 0u);  // 256 commands cannot all fit under watermark 4
  EXPECT_GT(served, 0u);
  EXPECT_EQ(server.stats().shed_ops, shed);

  // The connection is still healthy after shedding.
  ASSERT_TRUE(conn.Send("PING\r\n"));
  EXPECT_EQ(conn.ReadReplies(1), std::vector<std::string>{"+PONG"});
  server.Stop();
}

TEST(ServerProtocolTest, MalformedFrameGetsErrorThenClose) {
  core::DittoConfig config;
  Deployment d(TestPool(256), config, 1);
  net::Server server(d.raw, net::ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Send("*2\r\n$4\r\nPING\r\n#bad\r\n"));
  const std::string reply = conn.ReadUntilEof();  // error reply, then close
  EXPECT_EQ(reply.rfind("-ERR Protocol error", 0), 0u) << reply;
  server.Stop();
}

TEST(ServerProtocolTest, QuitFlushesPipelinedRepliesThenCloses) {
  core::DittoConfig config;
  Deployment d(TestPool(256), config, 1);
  net::Server server(d.raw, net::ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Send("SET k v\r\nGET k\r\nQUIT\r\n"));
  const std::string replies = conn.ReadUntilEof();
  EXPECT_EQ(replies, "+OK\r\n$1\r\nv\r\n+OK\r\n");

  RawConn again(server.port());
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again.Send("GET k\r\n"));  // state survives the closed conn
  EXPECT_EQ(again.ReadReplies(1), std::vector<std::string>{"$v"});
  server.Stop();
}

// A cluster-backed front end answers -UNAVAILABLE when no backing node can
// serve the op — a silent nil would read as "key absent" and poison negative
// caches. While any node is live, keys re-route through the ring and the wire
// stays fully functional.
TEST(ServerClusterTest, CrashedClusterAnswersUnavailableOnWire) {
  core::ClusterConfig cluster_config;
  cluster_config.nodes = 2;
  cluster_config.pool = TestPool(256);
  core::ClusterPool pool(cluster_config);
  rdma::ClientContext ctx(0);
  sim::ClusterCacheClient client(&pool, &ctx, cluster_config.ditto);
  std::vector<sim::CacheClient*> raw{&client};
  net::Server server(raw, net::ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Send("SET k v\r\nGET k\r\n"));
  EXPECT_EQ(conn.ReadReplies(2), (std::vector<std::string>{"+OK", "$v"}));

  // Crash 1 of 2 nodes: keys re-route to the survivor, the wire stays up.
  // (Round trips order each crash strictly before the next command batch.)
  pool.Crash(0);
  ASSERT_TRUE(conn.Send("SET k2 w\r\nGET k2\r\n"));
  EXPECT_EQ(conn.ReadReplies(2), (std::vector<std::string>{"+OK", "$w"}));

  // Crash the survivor: every data command answers -UNAVAILABLE; PING (no
  // cache op) still answers, and the connection stays open.
  pool.Crash(1);
  ASSERT_TRUE(conn.Send(
      "GET k\r\nSET k v\r\nDEL k\r\nEXPIRE k 5\r\nTTL k\r\nMGET a b\r\nPING\r\n"));
  const std::vector<std::string> replies = conn.ReadReplies(7);
  ASSERT_EQ(replies.size(), 7u);
  for (size_t i = 0; i + 1 < replies.size(); ++i) {
    EXPECT_EQ(replies[i].rfind("-UNAVAILABLE", 0), 0u) << replies[i];
  }
  EXPECT_EQ(replies.back(), "+PONG");
  server.Stop();
}

TEST(ServerProtocolTest, UnknownCommandAndArityErrorsKeepConnectionOpen) {
  core::DittoConfig config;
  Deployment d(TestPool(256), config, 1);
  net::Server server(d.raw, net::ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Send("FLUSHALL\r\nGET\r\nPING\r\n"));
  const std::vector<std::string> replies = conn.ReadReplies(3);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].rfind("-ERR unknown command", 0), 0u) << replies[0];
  EXPECT_EQ(replies[1].rfind("-ERR wrong number of arguments", 0), 0u) << replies[1];
  EXPECT_EQ(replies[2], "+PONG");
  server.Stop();
}

}  // namespace
}  // namespace ditto
