// RESP codec tests: incremental command parsing (1-byte feeds, many
// pipelined commands in one read, inline commands), malformed input answered
// with kError and never a crash (bad prefixes, non-numeric and oversized
// lengths, too many arguments, overlong inline lines), and the reply parser
// the load generator uses. Runs in the ASan/TSan CI matrix.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/resp.h"
#include "net/ring_buffer.h"

namespace ditto::net {
namespace {

std::vector<std::string> Args(const RespCommand& cmd) {
  return {cmd.args.begin(), cmd.args.end()};
}

TEST(RingBufferTest, ConsumeKeepsViewsValidReserveCompacts) {
  RingBuffer rb;
  rb.Append("hello world");
  const std::string_view hello = rb.view().substr(0, 5);
  rb.Consume(6);  // consume "hello " — no memory moves
  EXPECT_EQ(hello, "hello");
  EXPECT_EQ(rb.view(), "world");
  // Draining everything resets both cursors.
  rb.Consume(5);
  EXPECT_TRUE(rb.empty());
  // Growth past capacity keeps unconsumed bytes intact.
  rb.Append("abc");
  const std::string big(10000, 'x');
  rb.Append(big);
  EXPECT_EQ(rb.view().substr(0, 3), "abc");
  EXPECT_EQ(rb.size(), 3 + big.size());
}

TEST(RespParserTest, ParsesMultiBulkCommand) {
  RingBuffer rb;
  rb.Append("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nvalue\r\n");
  RespParser parser;
  RespCommand cmd;
  ASSERT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kOk);
  EXPECT_EQ(Args(cmd), (std::vector<std::string>{"SET", "k", "value"}));
  EXPECT_TRUE(rb.empty());  // exactly the frame's bytes consumed
}

TEST(RespParserTest, OneByteFeedsNeverLoseAFrame) {
  const std::string frame = "*2\r\n$3\r\nGET\r\n$7\r\nmykey12\r\n";
  RingBuffer rb;
  RespParser parser;
  RespCommand cmd;
  for (size_t i = 0; i < frame.size(); ++i) {
    rb.Append(frame.substr(i, 1));
    const ParseStatus status = parser.Parse(&rb, &cmd);
    if (i + 1 < frame.size()) {
      ASSERT_EQ(status, ParseStatus::kNeedMore) << "byte " << i;
      ASSERT_EQ(rb.size(), i + 1) << "partial parse must not consume";
    } else {
      ASSERT_EQ(status, ParseStatus::kOk);
    }
  }
  EXPECT_EQ(Args(cmd), (std::vector<std::string>{"GET", "mykey12"}));
  EXPECT_TRUE(rb.empty());
}

TEST(RespParserTest, ManyPipelinedCommandsInOneRead) {
  RingBuffer rb;
  constexpr int kCommands = 257;
  for (int i = 0; i < kCommands; ++i) {
    const std::string key = "key" + std::to_string(i);
    rb.Append("*2\r\n$3\r\nGET\r\n$" + std::to_string(key.size()) + "\r\n" + key + "\r\n");
  }
  RespParser parser;
  RespCommand cmd;
  for (int i = 0; i < kCommands; ++i) {
    ASSERT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kOk) << "command " << i;
    ASSERT_EQ(cmd.args.size(), 2u);
    EXPECT_EQ(cmd.args[1], "key" + std::to_string(i));
  }
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kNeedMore);
}

TEST(RespParserTest, InlineCommands) {
  RingBuffer rb;
  RespParser parser;
  RespCommand cmd;

  rb.Append("PING\r\n");
  ASSERT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kOk);
  EXPECT_EQ(Args(cmd), (std::vector<std::string>{"PING"}));

  // Multiple arguments split on runs of spaces/tabs; bare-LF termination.
  rb.Append("SET  key1\t value1\n");
  ASSERT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kOk);
  EXPECT_EQ(Args(cmd), (std::vector<std::string>{"SET", "key1", "value1"}));

  // Blank lines between commands are skipped, not surfaced as empty frames.
  rb.Append("\r\n\r\nGET key1\r\n");
  ASSERT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kOk);
  EXPECT_EQ(Args(cmd), (std::vector<std::string>{"GET", "key1"}));
}

TEST(RespParserTest, EmptyMultiBulkFramesAreSkipped) {
  RingBuffer rb;
  rb.Append("*0\r\n*1\r\n$4\r\nPING\r\n");
  RespParser parser;
  RespCommand cmd;
  ASSERT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kOk);
  EXPECT_EQ(Args(cmd), (std::vector<std::string>{"PING"}));
}

TEST(RespParserTest, MalformedInputYieldsErrorNotCrash) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"*2\r\n$3\r\nGET\r\n#3\r\nfoo\r\n", "bad bulk prefix"},
      {"*abc\r\n", "non-numeric array length"},
      {"*2\r\n$zz\r\nGET\r\n", "non-numeric bulk length"},
      {"*2\r\n$3\r\nGET\r\n$3\r\nkeyXY", "bulk not CRLF-terminated"},
      {"*-5\r\n", "negative array length"},
      {"*2\r\n$-1\r\nx\r\n", "negative bulk length in a command"},
  };
  for (const auto& [input, what] : cases) {
    RingBuffer rb;
    rb.Append(input);
    RespParser parser;
    RespCommand cmd;
    // Feed until the parser decides; partial prefixes may legitimately be
    // kNeedMore, but a complete malformed frame must land on kError.
    ParseStatus status = parser.Parse(&rb, &cmd);
    EXPECT_EQ(status, ParseStatus::kError) << what << ": " << input;
    EXPECT_FALSE(parser.error().empty()) << what;
  }
}

TEST(RespParserTest, OversizedBulkRejected) {
  RespLimits limits;
  limits.max_bulk_bytes = 16;
  RingBuffer rb;
  rb.Append("*2\r\n$3\r\nSET\r\n$17\r\n");  // declared length > cap: reject
  RespParser parser(limits);                 // before the payload even arrives
  RespCommand cmd;
  EXPECT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kError);
  EXPECT_FALSE(parser.error().empty());
}

TEST(RespParserTest, TooManyArgumentsRejected) {
  RespLimits limits;
  limits.max_args = 4;
  RingBuffer rb;
  rb.Append("*5\r\n");
  RespParser parser(limits);
  RespCommand cmd;
  EXPECT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kError);
}

TEST(RespParserTest, OverlongInlineLineRejected) {
  RespLimits limits;
  limits.max_inline_bytes = 32;
  RingBuffer rb;
  rb.Append("GET " + std::string(64, 'k'));  // no terminator yet, already over cap
  RespParser parser(limits);
  RespCommand cmd;
  EXPECT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kError);
}

TEST(RespParserTest, UnterminatedGarbageHeaderRejected) {
  // A multi-bulk header that never sends CRLF must not buffer forever: past
  // the 32-byte header guard the parser gives up with an error.
  RingBuffer rb;
  rb.Append("*" + std::string(128, '1'));
  RespParser parser;
  RespCommand cmd;
  EXPECT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kError);
}

TEST(RespReplyTest, ParsesEveryReplyType) {
  RingBuffer rb;
  rb.Append("+OK\r\n-ERR boom\r\n:42\r\n$5\r\nhello\r\n$-1\r\n*2\r\n$1\r\na\r\n$-1\r\n");
  RespReply reply;
  std::vector<RespReply> elems;
  std::string error;

  ASSERT_EQ(ParseReply(&rb, &reply, &elems, &error), ParseStatus::kOk);
  EXPECT_EQ(reply.type, RespReply::Type::kSimple);
  EXPECT_EQ(reply.text, "OK");

  ASSERT_EQ(ParseReply(&rb, &reply, &elems, &error), ParseStatus::kOk);
  EXPECT_EQ(reply.type, RespReply::Type::kError);
  EXPECT_EQ(reply.text, "ERR boom");

  ASSERT_EQ(ParseReply(&rb, &reply, &elems, &error), ParseStatus::kOk);
  EXPECT_EQ(reply.type, RespReply::Type::kInteger);
  EXPECT_EQ(reply.integer, 42);

  ASSERT_EQ(ParseReply(&rb, &reply, &elems, &error), ParseStatus::kOk);
  EXPECT_EQ(reply.type, RespReply::Type::kBulk);
  EXPECT_EQ(reply.text, "hello");

  ASSERT_EQ(ParseReply(&rb, &reply, &elems, &error), ParseStatus::kOk);
  EXPECT_EQ(reply.type, RespReply::Type::kNil);

  elems.clear();
  ASSERT_EQ(ParseReply(&rb, &reply, &elems, &error), ParseStatus::kOk);
  EXPECT_EQ(reply.type, RespReply::Type::kArray);
  ASSERT_EQ(elems.size(), 2u);
  EXPECT_EQ(elems[0].type, RespReply::Type::kBulk);
  EXPECT_EQ(elems[0].text, "a");
  EXPECT_EQ(elems[1].type, RespReply::Type::kNil);
  EXPECT_TRUE(rb.empty());
}

TEST(RespReplyTest, PartialReplyNeedsMoreWithoutConsuming) {
  RingBuffer rb;
  rb.Append("*2\r\n$1\r\na\r\n");  // second element missing
  RespReply reply;
  std::vector<RespReply> elems;
  std::string error;
  EXPECT_EQ(ParseReply(&rb, &reply, &elems, &error), ParseStatus::kNeedMore);
  EXPECT_EQ(rb.size(), 11u);
  rb.Append("$1\r\nb\r\n");
  elems.clear();
  ASSERT_EQ(ParseReply(&rb, &reply, &elems, &error), ParseStatus::kOk);
  ASSERT_EQ(elems.size(), 2u);
  EXPECT_EQ(elems[1].text, "b");
}

TEST(RespFormatTest, AppendCommandRoundTrips) {
  RingBuffer rb;
  AppendCommand(&rb, {"SET", "key", "value with spaces"});
  RespParser parser;
  RespCommand cmd;
  ASSERT_EQ(parser.Parse(&rb, &cmd), ParseStatus::kOk);
  EXPECT_EQ(Args(cmd), (std::vector<std::string>{"SET", "key", "value with spaces"}));
}

}  // namespace
}  // namespace ditto::net
