#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "rdma/arena.h"
#include "rdma/nic_model.h"
#include "rdma/node.h"
#include "rdma/verbs.h"

namespace ditto::rdma {
namespace {

TEST(ArenaTest, ReadWriteRoundTrip) {
  MemoryArena arena(4096);
  const std::string data = "hello disaggregated world";
  arena.Write(128, data.data(), data.size());
  std::string out(data.size(), '\0');
  arena.Read(128, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST(ArenaTest, UnalignedEdgesPreserveNeighbors) {
  MemoryArena arena(64);
  uint8_t full[16];
  std::memset(full, 0xAA, sizeof(full));
  arena.Write(0, full, sizeof(full));
  // Write 3 bytes at offset 5 (inside the first word, crossing into none).
  const uint8_t patch[3] = {1, 2, 3};
  arena.Write(5, patch, 3);
  uint8_t out[16];
  arena.Read(0, out, sizeof(out));
  EXPECT_EQ(out[4], 0xAA);
  EXPECT_EQ(out[5], 1);
  EXPECT_EQ(out[6], 2);
  EXPECT_EQ(out[7], 3);
  EXPECT_EQ(out[8], 0xAA);
}

TEST(ArenaTest, CompareSwapSemantics) {
  MemoryArena arena(64);
  arena.WriteU64(8, 100);
  EXPECT_EQ(arena.CompareSwap(8, 100, 200), 100u);  // success returns expected
  EXPECT_EQ(arena.ReadU64(8), 200u);
  EXPECT_EQ(arena.CompareSwap(8, 100, 300), 200u);  // failure returns observed
  EXPECT_EQ(arena.ReadU64(8), 200u);
}

TEST(ArenaTest, FetchAddReturnsPrior) {
  MemoryArena arena(64);
  arena.WriteU64(0, 41);
  EXPECT_EQ(arena.FetchAdd(0, 1), 41u);
  EXPECT_EQ(arena.ReadU64(0), 42u);
}

TEST(ArenaTest, FetchAddNegativeDeltaWraps) {
  MemoryArena arena(64);
  arena.WriteU64(0, 10);
  arena.FetchAdd(0, ~uint64_t{0});  // -1 in two's complement
  EXPECT_EQ(arena.ReadU64(0), 9u);
}

TEST(ArenaTest, ConcurrentFetchAddIsExact) {
  MemoryArena arena(64);
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena] {
      for (int i = 0; i < kIters; ++i) {
        arena.FetchAdd(16, 1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(arena.ReadU64(16), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ArenaTest, ConcurrentCasExactlyOneWinnerPerRound) {
  MemoryArena arena(64);
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, &winners, t] {
      if (arena.CompareSwap(0, 0, static_cast<uint64_t>(t) + 1) == 0) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(winners.load(), 1);
}

TEST(QueueingServerTest, UnloadedServerHasNoDelay) {
  QueueingServer server;
  EXPECT_EQ(server.Charge(1000, 100), 0u);
  EXPECT_EQ(server.next_free_ns(), 100u) << "work-sum advances by the service time";
}

TEST(QueueingServerTest, BacklogDelaysRequestsBehindIt) {
  QueueingServer server;
  server.Charge(0, 100);                         // W = 100
  const uint64_t delay = server.Charge(0, 100);  // arrives at t=0 behind 100ns of work
  EXPECT_EQ(delay, 100u);
  EXPECT_EQ(server.next_free_ns(), 200u);
}

TEST(QueueingServerTest, DrainedBacklogCausesNoDelay) {
  QueueingServer server;
  server.Charge(0, 100);
  EXPECT_EQ(server.Charge(5000, 100), 0u) << "by t=5000 the 100ns of work has drained";
  EXPECT_EQ(server.next_free_ns(), 200u) << "work-sum is load, not wall time";
}

TEST(NicModelTest, ThroughputCapsAtMessageRate) {
  CostModel cost;
  cost.nic_mops = 10.0;  // 100ns per message
  NicModel nic(cost);
  for (int i = 0; i < 1000; ++i) {
    nic.ChargeMessage(0, 1.0);
  }
  EXPECT_EQ(nic.messages(), 1000u);
  EXPECT_EQ(nic.busy_horizon_ns(), 100000u);  // 1000 msgs x 100ns
}

TEST(NicModelTest, AtomicsCostMoreSlots) {
  CostModel cost;
  cost.nic_mops = 10.0;
  cost.atomic_msg_cost = 3.0;
  NicModel nic(cost);
  nic.ChargeMessage(0, cost.atomic_msg_cost);
  EXPECT_EQ(nic.busy_horizon_ns(), 300u);
}

TEST(NicModelTest, DisabledCostSkipsTimeAccounting) {
  NicModel nic(CostModel::Disabled());
  EXPECT_EQ(nic.ChargeMessage(0, 1.0), 0u);
  EXPECT_EQ(nic.busy_horizon_ns(), 0u);
  EXPECT_EQ(nic.messages(), 1u);  // counters still work
}

TEST(CpuModelTest, MoreCoresServeFaster) {
  CostModel cost;
  CpuModel one(cost, 1);
  CpuModel four(cost, 4);
  for (int i = 0; i < 100; ++i) {
    one.ChargeRpc(0, 1.0);
    four.ChargeRpc(0, 1.0);
  }
  EXPECT_EQ(one.busy_horizon_ns(), 100000u);
  EXPECT_EQ(four.busy_horizon_ns(), 25000u);
}

TEST(VerbsTest, ReadChargesRttAndBytes) {
  CostModel cost;
  RemoteNode node(4096, cost);
  ClientContext ctx(0);
  Verbs verbs(&node, &ctx);
  uint8_t buf[256];
  verbs.Read(0, buf, sizeof(buf));
  // 2us RTT + 256/12500 us wire time.
  EXPECT_NEAR(ctx.clock().busy_us(), 2.0 + 256.0 / 12500.0, 0.01);
  EXPECT_EQ(ctx.reads, 1u);
  EXPECT_EQ(node.nic().messages(), 1u);
}

TEST(VerbsTest, AsyncWriteChargesOnlyPostOverhead) {
  CostModel cost;
  RemoteNode node(4096, cost);
  ClientContext ctx(0);
  Verbs verbs(&node, &ctx);
  uint64_t v = 7;
  verbs.WriteAsync(64, &v, 8);
  EXPECT_NEAR(ctx.clock().busy_us(), cost.async_post_us, 1e-9);
  // The data still lands.
  EXPECT_EQ(node.arena().ReadU64(64), 7u);
  // And the NIC still counts the message.
  EXPECT_EQ(node.nic().messages(), 1u);
}

TEST(VerbsTest, RpcRunsHandlerAndChargesCpu) {
  CostModel cost;
  RemoteNode node(4096, cost, /*controller_cores=*/1);
  node.RegisterRpc(99, [](std::string_view req, std::string* response) {
    response->assign(req);
    response->append("-pong");
  });
  ClientContext ctx(0);
  Verbs verbs(&node, &ctx);
  EXPECT_EQ(verbs.Rpc(99, "ping"), "ping-pong");
  EXPECT_EQ(node.cpu().ops(), 1u);
  std::string reused;
  verbs.Rpc(99, "ping", &reused);
  EXPECT_EQ(reused, "ping-pong") << "caller-buffer overload returns the same payload";
  EXPECT_EQ(node.cpu().ops(), 2u) << "both overloads charge the controller CPU";
  EXPECT_GT(ctx.clock().busy_us(), cost.rpc_service_us);
}

TEST(VerbsTest, SleepAdvancesOnlyClientClock) {
  RemoteNode node(4096, CostModel{});
  ClientContext ctx(0);
  Verbs verbs(&node, &ctx);
  verbs.Sleep(500.0);
  EXPECT_NEAR(ctx.clock().busy_us(), 500.0, 1e-9);
  EXPECT_EQ(node.nic().messages(), 0u);
}

TEST(VerbsTest, SaturatedNicInflatesLatency) {
  CostModel cost;
  cost.nic_mops = 1.0;  // 1us per message: very slow NIC
  RemoteNode node(4096, cost);
  ClientContext a(0);
  ClientContext b(1);
  Verbs va(&node, &a);
  Verbs vb(&node, &b);
  uint64_t buf;
  // Client a floods the NIC at virtual time 0.
  for (int i = 0; i < 1000; ++i) {
    va.Read(0, &buf, 8);
  }
  // Client b arrives at virtual time 0 and must queue behind a's traffic in
  // proportion to the backlog.
  vb.Read(0, &buf, 8);
  EXPECT_GT(b.clock().busy_us(), 100.0);
}

}  // namespace
}  // namespace ditto::rdma
