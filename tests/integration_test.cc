// End-to-end reproduction checks of the paper's core claims, scaled down to
// test sizes:
//   1. Ditto's sampled single-policy variants track their exact counterparts.
//   2. Adaptive Ditto approaches max(Ditto-LRU, Ditto-LFU) on workloads with
//      a clear algorithm affinity.
//   3. On phase-changing workloads, adaptive Ditto beats BOTH fixed experts.
//   4. The cache keeps functioning across runtime capacity changes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/ditto_client.h"
#include "dm/pool.h"
#include "sim/adapters.h"
#include "sim/hit_rate.h"
#include "sim/runner.h"
#include "workloads/synthetic_traces.h"

namespace ditto {
namespace {

struct Deployment {
  std::unique_ptr<dm::MemoryPool> pool;
  std::unique_ptr<core::DittoServer> server;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;
};

Deployment MakeDeployment(uint64_t capacity, const std::vector<std::string>& experts,
                          int num_clients) {
  Deployment d;
  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 64 << 20;
  // ~4 slots per cached object so samples are dense.
  pool_config.num_buckets = 1;
  while (pool_config.num_buckets * 8 < capacity * 4) {
    pool_config.num_buckets *= 2;
  }
  pool_config.capacity_objects = capacity;
  pool_config.cost = rdma::CostModel::Disabled();
  d.pool = std::make_unique<dm::MemoryPool>(pool_config);

  core::DittoConfig config;
  config.experts = experts;
  d.server = std::make_unique<core::DittoServer>(d.pool.get(), config);
  for (int i = 0; i < num_clients; ++i) {
    d.ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
    d.clients.push_back(
        std::make_unique<sim::DittoCacheClient>(d.pool.get(), d.ctxs.back().get(), config));
    d.raw.push_back(d.clients.back().get());
  }
  return d;
}

double RunHitRate(const workload::Trace& trace, uint64_t capacity,
                  const std::vector<std::string>& experts, int num_clients = 2,
                  double warmup = 0.3) {
  Deployment d = MakeDeployment(capacity, experts, num_clients);
  sim::RunOptions options;
  options.warmup_fraction = warmup;
  const sim::RunResult result = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
  return result.hit_rate;
}

constexpr uint64_t kRequests = 120000;
constexpr uint64_t kFootprint = 8000;
constexpr uint64_t kCapacity = 1000;

TEST(IntegrationTest, SampledLruTracksExactLru) {
  const workload::Trace trace =
      workload::MakeShiftingHotSet(kRequests, kFootprint, kFootprint / 10, kRequests / 50,
                                   kFootprint / 20, 3);
  const double sampled = RunHitRate(trace, kCapacity, {"lru"}, 1);
  const double exact =
      sim::ReplayHitRate(trace, kCapacity, policy::PrecisePolicyKind::kLru);
  EXPECT_NEAR(sampled, exact, 0.10) << "5-sample LRU approximates exact LRU";
}

TEST(IntegrationTest, SampledLfuTracksExactLfu) {
  const workload::Trace trace = workload::MakeStationaryZipf(kRequests, kFootprint, 1.0, 3);
  const double sampled = RunHitRate(trace, kCapacity, {"lfu"}, 1);
  const double exact =
      sim::ReplayHitRate(trace, kCapacity, policy::PrecisePolicyKind::kLfu);
  EXPECT_NEAR(sampled, exact, 0.10);
}

TEST(IntegrationTest, AdaptiveApproachesBestExpertOnLfuFriendly) {
  const workload::Trace trace =
      workload::MakeLfuFriendly(kRequests, kFootprint / 2, 0.99, 0.3, 5);
  const double lru = RunHitRate(trace, kCapacity, {"lru"});
  const double lfu = RunHitRate(trace, kCapacity, {"lfu"});
  const double adaptive = RunHitRate(trace, kCapacity, {"lru", "lfu"});
  ASSERT_GT(lfu, lru) << "precondition: the workload must be LFU-friendly";
  const double best = std::max(lru, lfu);
  const double worst = std::min(lru, lfu);
  EXPECT_GT(adaptive, worst + (best - worst) * 0.5)
      << "adaptive must close most of the gap to the better expert";
}

TEST(IntegrationTest, AdaptiveApproachesBestExpertOnLruFriendly) {
  const workload::Trace trace =
      workload::MakeShiftingHotSet(kRequests, kFootprint, kFootprint / 10, kRequests / 60,
                                   kFootprint / 16, 5);
  const double lru = RunHitRate(trace, kCapacity, {"lru"});
  const double lfu = RunHitRate(trace, kCapacity, {"lfu"});
  ASSERT_GT(lru, lfu) << "precondition: the workload must be LRU-friendly";
  const double adaptive = RunHitRate(trace, kCapacity, {"lru", "lfu"});
  const double best = std::max(lru, lfu);
  const double worst = std::min(lru, lfu);
  EXPECT_GT(adaptive, worst + (best - worst) * 0.5);
}

TEST(IntegrationTest, AdaptiveBeatsBothOnChangingWorkload) {
  const workload::Trace trace =
      workload::MakeChangingWorkload(4, kRequests / 4, kFootprint, 5);
  const double lru = RunHitRate(trace, kCapacity, {"lru"}, 2, 0.1);
  const double lfu = RunHitRate(trace, kCapacity, {"lfu"}, 2, 0.1);
  const double adaptive = RunHitRate(trace, kCapacity, {"lru", "lfu"}, 2, 0.1);
  EXPECT_GT(adaptive, std::min(lru, lfu))
      << "adaptive must never be pinned to the losing expert";
  // The paper's Figure 19 claim: on phase-switching workloads the adaptive
  // cache outperforms (or at worst matches) both fixed algorithms.
  EXPECT_GE(adaptive, std::max(lru, lfu) - 0.03);
}

TEST(IntegrationTest, CapacityGrowthImprovesHitRate) {
  const workload::Trace trace = workload::MakeStationaryZipf(kRequests, kFootprint, 0.9, 7);
  const double small = RunHitRate(trace, 500, {"lru", "lfu"});
  const double large = RunHitRate(trace, 4000, {"lru", "lfu"});
  EXPECT_GT(large, small + 0.05);
}

TEST(IntegrationTest, RuntimeCapacityShrinkTakesEffect) {
  Deployment d = MakeDeployment(2000, {"lru", "lfu"}, 1);
  auto& client = *d.clients[0];
  for (int i = 0; i < 2000; ++i) {
    client.Set(workload::KeyString(i), "v");
  }
  const uint64_t count_before = d.pool->cached_objects();
  EXPECT_GT(count_before, 1500u);
  // Shrink the cache at runtime; continued inserts must drain it toward the
  // new capacity.
  d.pool->SetCapacityObjects(500);
  for (int i = 2000; i < 4500; ++i) {
    client.Set(workload::KeyString(i), "v");
  }
  EXPECT_LT(d.pool->cached_objects(), 700u);
}

TEST(IntegrationTest, MultiClientAdaptiveConvergesLikeSingle) {
  const workload::Trace trace = workload::MakeStationaryZipf(kRequests, kFootprint, 1.05, 9);
  const double single = RunHitRate(trace, kCapacity, {"lru", "lfu"}, 1);
  const double multi = RunHitRate(trace, kCapacity, {"lru", "lfu"}, 8);
  EXPECT_NEAR(single, multi, 0.12)
      << "distributed weight updates must not derail adaptivity";
}

TEST(IntegrationTest, TwelveAlgorithmsRunEndToEnd) {
  const workload::Trace trace = workload::MakeNamedTrace("webmail", 20000, 2000, 11);
  for (const std::string& name : policy::AllPolicyNames()) {
    Deployment d = MakeDeployment(300, {name}, 1);
    sim::RunOptions options;
    options.warmup_fraction = 0.2;
    const sim::RunResult result = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
    EXPECT_GT(result.ops, 0u) << name;
    EXPECT_GE(result.hit_rate, 0.0) << name;
    EXPECT_GT(d.clients[0]->ditto().stats().evictions, 0u) << name;
  }
}

}  // namespace
}  // namespace ditto
