// Contended multi-client tests: real threads racing on one shared
// dm::MemoryPool. Covers the slot-CAS serialization contract (no lost
// updates), duplicate-insert resolution converging to a single live copy,
// and sim::RunTraceContended end to end (aggregate vs per-client counters,
// nonzero contention counters under full key overlap). Runs in the ASan/TSan
// CI matrix; everything here must be sanitizer-clean.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "core/ditto_client.h"
#include "dm/pool.h"
#include "hashtable/hash_table.h"
#include "rdma/verbs.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/synthetic_traces.h"
#include "workloads/ycsb.h"

namespace ditto {
namespace {

dm::PoolConfig ContendedPool(uint64_t capacity_objects, size_t num_buckets = 1024) {
  dm::PoolConfig config;
  config.memory_bytes = 32 << 20;
  config.num_buckets = num_buckets;
  config.capacity_objects = capacity_objects;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

// A shared-pool Ditto deployment: one pool + server, one context/client per
// thread, with insert validation on (the contended engine's contract: racing
// inserters must converge on a single copy of a key).
struct ContendedDeployment {
  explicit ContendedDeployment(const dm::PoolConfig& pool_config,
                               core::DittoConfig config, int num_clients)
      : pool(pool_config), server(&pool, config) {
    config.validate_inserts = true;
    for (int i = 0; i < num_clients; ++i) {
      ctxs.push_back(std::make_unique<rdma::ClientContext>(static_cast<uint32_t>(i)));
      clients.push_back(
          std::make_unique<sim::DittoCacheClient>(&pool, ctxs.back().get(), config));
      raw.push_back(clients.back().get());
    }
  }

  dm::MemoryPool pool;
  core::DittoServer server;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;
};

// Two clients spinning CAS-increments on one slot's atomic word: every
// update must land exactly once (8-byte CAS linearizes them), and the sum of
// successful CASes equals the final word.
TEST(ContendedCasTest, TwoClientsSpinningOnOneSlotSerialize) {
  dm::MemoryPool pool(ContendedPool(1000));
  const uint64_t slot_addr = pool.table_addr() + 7 * ht::kSlotBytes;  // slot 7 of bucket 0
  constexpr int kThreads = 2;
  constexpr uint64_t kIncrementsPerThread = 20000;
  std::atomic<uint64_t> observed_failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, slot_addr, &observed_failures, t] {
      rdma::ClientContext ctx(static_cast<uint32_t>(t) + 1);
      rdma::Verbs verbs(&pool.node(), &ctx);
      ht::HashTable table(&pool, &verbs);
      uint64_t failures = 0;
      for (uint64_t i = 0; i < kIncrementsPerThread; ++i) {
        uint64_t expected = table.ReadSlot(slot_addr).atomic_word;
        while (!table.CasAtomic(slot_addr, expected, expected + 1)) {
          failures++;
          expected = table.ReadSlot(slot_addr).atomic_word;
        }
      }
      observed_failures.fetch_add(failures);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  rdma::ClientContext ctx(99);
  rdma::Verbs verbs(&pool.node(), &ctx);
  ht::HashTable table(&pool, &verbs);
  EXPECT_EQ(table.ReadSlot(slot_addr).atomic_word, kThreads * kIncrementsPerThread)
      << "a lost update slipped through the CAS path";
  // Not asserted nonzero (a pathological schedule could serialize the
  // threads), but reported: contention is the point of this test.
  SUCCEED() << "observed " << observed_failures.load() << " CAS failures";
}

// Racing inserters of one key must converge on a single live copy: the
// post-publish duplicate-resolution pass (RACE-hashing style) reclaims every
// copy but the lowest-indexed slot.
TEST(ContendedCasTest, ConcurrentInsertsOfOneKeyConvergeToSingleCopy) {
  core::DittoConfig config;
  config.experts = {"lru"};
  ContendedDeployment d(ContendedPool(1000), config, 8);
  const std::string key = "contended-key";
  const std::string value = "same-value-on-every-client";

  std::atomic<int> start_gate{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < d.clients.size(); ++c) {
    threads.emplace_back([&, c] {
      start_gate.fetch_add(1);
      while (start_gate.load() < static_cast<int>(d.clients.size())) {
      }
      EXPECT_TRUE(d.clients[c]->ditto().Set(key, value));
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  // Scan the key's bucket: exactly one live object slot may remain.
  rdma::ClientContext ctx(100);
  rdma::Verbs verbs(&d.pool.node(), &ctx);
  ht::HashTable table(&d.pool, &verbs);
  const uint64_t hash = HashKey(key);
  std::vector<ht::SlotView> bucket;
  ASSERT_TRUE(table.ReadBucket(table.BucketIndexFor(hash), &bucket));
  int live_copies = 0;
  for (const ht::SlotView& slot : bucket) {
    if (slot.IsObject() && slot.hash == hash) {
      live_copies++;
    }
  }
  EXPECT_EQ(live_copies, 1) << "duplicate-key resolution left " << live_copies << " copies";

  std::string got;
  EXPECT_TRUE(d.clients[0]->ditto().Get(key, &got));
  EXPECT_EQ(got, value);
  EXPECT_EQ(d.pool.cached_objects(), 1u) << "count accounting must survive the race";
}

// Model-based safety under full-overlap churn: every client writes the same
// deterministic value for a key, so any hit must return exactly that value —
// cross-key corruption, torn slot publication, or stale-pointer reads would
// all surface as a mismatch. (Which keys survive eviction is racy; what a
// surviving key returns is not.)
TEST(ContendedCasTest, OverlappedChurnNeverServesCorruptValues) {
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  ContendedDeployment d(ContendedPool(400, 256), config, 4);
  constexpr int kOpsPerClient = 8000;
  constexpr int kKeySpace = 1200;  // 3x capacity: constant eviction churn

  auto value_for = [](uint64_t key) {
    return "val-" + std::to_string(key) + "-" + std::string(key % 48, 'p');
  };

  std::vector<std::thread> threads;
  std::atomic<uint64_t> corrupt{0};
  for (size_t c = 0; c < d.clients.size(); ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0xC0DE + c);
      core::DittoClient& client = d.clients[c]->ditto();
      std::string got;
      for (int i = 0; i < kOpsPerClient; ++i) {
        const uint64_t key_id = rng.NextBelow(kKeySpace);
        const std::string key = "k" + std::to_string(key_id);
        if (rng.NextBelow(100) < 50) {
          got.clear();
          if (client.Get(key, &got) && got != value_for(key_id)) {
            corrupt.fetch_add(1);
          }
        } else {
          client.Set(key, value_for(key_id));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(corrupt.load(), 0u);
  EXPECT_LE(d.pool.cached_objects(), 400u + d.clients.size())
      << "capacity must hold under contended churn";
}

TEST(RunTraceContendedTest, FullOverlapReportsContentionAndConsistentCounters) {
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};

  // 4x-over-subscribed hot keyspace: constant insert/evict/update races.
  const workload::Trace trace =
      workload::MakeStationaryZipf(60000, /*num_keys=*/2048, /*theta=*/0.99, /*seed=*/7);

  sim::RunOptions options;
  options.warmup_fraction = 0.2;
  // Whether two threads actually collide on a slot CAS is up to the host
  // scheduler; on a loaded machine (parallel ctest) all 8 threads can get
  // serialized and race zero times. Retry with fresh deployments until a
  // round shows contention — only a total absence across rounds is a bug.
  sim::RunResult r;
  std::vector<sim::RunResult> per_client;
  for (int round = 0; round < 5; ++round) {
    ContendedDeployment d(ContendedPool(512, 512), config, 8);
    per_client.clear();
    r = sim::RunTraceContended(d.raw, trace, {&d.pool.node()}, options, &per_client);
    if (r.cas_failures + r.insert_retries > 0) {
      break;
    }
  }

  const size_t measured = trace.size() - static_cast<size_t>(0.2 * trace.size());
  EXPECT_EQ(r.ops, measured);
  EXPECT_EQ(r.gets, r.hits + r.misses);
  EXPECT_GT(r.hit_rate, 0.0);
  EXPECT_GT(r.cas_failures + r.insert_retries, 0u)
      << "8 fully-overlapped clients on a 4x-over-subscribed keyspace must race";

  ASSERT_EQ(per_client.size(), 8u);
  uint64_t ops = 0, gets = 0, hits = 0, misses = 0, cas_failures = 0, insert_retries = 0;
  for (const sim::RunResult& pc : per_client) {
    ops += pc.ops;
    gets += pc.gets;
    hits += pc.hits;
    misses += pc.misses;
    cas_failures += pc.cas_failures;
    insert_retries += pc.insert_retries;
  }
  EXPECT_EQ(ops, r.ops);
  EXPECT_EQ(gets, r.gets);
  EXPECT_EQ(hits, r.hits);
  EXPECT_EQ(misses, r.misses);
  EXPECT_EQ(cas_failures, r.cas_failures);
  EXPECT_EQ(insert_retries, r.insert_retries);
}

// With a single client the contended engine degenerates to sequential
// in-order replay: hit counts match the interleaved engine exactly.
TEST(RunTraceContendedTest, SingleClientMatchesSequentialReplay) {
  core::DittoConfig config;
  config.experts = {"lru"};

  workload::YcsbConfig ycsb;
  ycsb.workload = 'A';
  ycsb.num_keys = 3000;
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, 30000, /*seed=*/11);

  sim::RunOptions options;
  options.warmup_fraction = 0.25;

  ContendedDeployment contended(ContendedPool(1024), config, 1);
  const sim::RunResult a =
      sim::RunTraceContended(contended.raw, trace, {&contended.pool.node()}, options);

  ContendedDeployment sequential(ContendedPool(1024), config, 1);
  const sim::RunResult b =
      sim::RunTrace(sequential.raw, trace, &sequential.pool.node(), options);

  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.cas_failures, 0u);
  EXPECT_EQ(a.insert_retries, 0u);
}

}  // namespace
}  // namespace ditto
