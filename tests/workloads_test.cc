#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rand.h"
#include "sim/hit_rate.h"
#include "workloads/synthetic_traces.h"
#include "workloads/trace.h"
#include "workloads/ycsb.h"

namespace ditto::workload {
namespace {

TEST(TraceTest, FootprintCountsDistinctKeys) {
  Trace trace = {{Op::kGet, 1}, {Op::kGet, 2}, {Op::kGet, 1}, {Op::kUpdate, 3}};
  EXPECT_EQ(Footprint(trace), 3u);
}

TEST(TraceTest, KeyStringIsFixedWidthAndUnique) {
  const std::string a = KeyString(1);
  const std::string b = KeyString(0xFFFFFFFFULL);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_NE(a, b);
}

TEST(TraceTest, FormatKeyMatchesKeyStringExactly) {
  // The allocation-free hot-path formatter must agree byte-for-byte with
  // KeyString — the replay engines key the cache with FormatKey while tests
  // and examples use KeyString, and the two must address the same objects.
  KeyBuf buf;
  Rng rng(0xF00D);
  const uint64_t samples[] = {0, 1, 0xF, 0x10, 0xDEADBEEF, ~uint64_t{0},
                              rng.Next(), rng.Next(), rng.Next()};
  for (const uint64_t key : samples) {
    EXPECT_EQ(KeyString(key), FormatKey(key, &buf)) << "key " << key;
  }
}

TEST(TraceTest, InterleavePreservesMultiset) {
  Trace trace;
  for (uint64_t i = 0; i < 1000; ++i) {
    trace.push_back({Op::kGet, i % 100});
  }
  const Trace mixed = InterleaveClients(trace, 8);
  ASSERT_EQ(mixed.size(), trace.size());
  std::map<uint64_t, int> before;
  std::map<uint64_t, int> after;
  for (const auto& r : trace) {
    before[r.key]++;
  }
  for (const auto& r : mixed) {
    after[r.key]++;
  }
  EXPECT_EQ(before, after);
}

TEST(TraceTest, InterleaveChangesOrder) {
  Trace trace;
  for (uint64_t i = 0; i < 1000; ++i) {
    trace.push_back({Op::kGet, i});
  }
  const Trace mixed = InterleaveClients(trace, 16);
  int displaced = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (mixed[i].key != trace[i].key) {
      displaced++;
    }
  }
  EXPECT_GT(displaced, 500);
}

TEST(TraceTest, InterleaveSingleClientIsIdentity) {
  Trace trace = {{Op::kGet, 1}, {Op::kGet, 2}};
  const Trace same = InterleaveClients(trace, 1);
  EXPECT_EQ(same.size(), 2u);
  EXPECT_EQ(same[0].key, 1u);
  EXPECT_EQ(same[1].key, 2u);
}

TEST(YcsbTest, WorkloadMixesMatchSpecs) {
  const std::map<char, double> expected_updates = {
      {'A', 0.5}, {'B', 0.05}, {'C', 0.0}, {'D', 0.05}};
  for (const auto& [workload, frac] : expected_updates) {
    YcsbConfig config;
    config.workload = workload;
    config.num_keys = 10000;
    const Trace trace = MakeYcsbTrace(config, 20000, 1);
    uint64_t non_get = 0;
    for (const auto& r : trace) {
      if (r.op != Op::kGet) {
        non_get++;
      }
    }
    EXPECT_NEAR(static_cast<double>(non_get) / trace.size(), frac, 0.01)
        << "workload " << workload;
  }
}

TEST(YcsbTest, WorkloadDInsertsFreshKeys) {
  YcsbConfig config;
  config.workload = 'D';
  config.num_keys = 1000;
  const Trace trace = MakeYcsbTrace(config, 10000, 1);
  std::set<uint64_t> inserted;
  for (const auto& r : trace) {
    if (r.op == Op::kInsert) {
      EXPECT_GE(r.key, config.num_keys) << "inserts use keys beyond the preload";
      EXPECT_TRUE(inserted.insert(r.key).second) << "every insert is a new key";
    }
  }
  EXPECT_GT(inserted.size(), 100u);
}

TEST(YcsbTest, ZipfSkewConcentratesTraffic) {
  YcsbConfig config;
  config.workload = 'C';
  config.num_keys = 100000;
  const Trace trace = MakeYcsbTrace(config, 100000, 1);
  std::map<uint64_t, int> counts;
  for (const auto& r : trace) {
    counts[r.key]++;
  }
  // Top-1% of distinct keys should draw a large share of traffic.
  std::vector<int> sorted;
  sorted.reserve(counts.size());
  for (const auto& [k, c] : counts) {
    sorted.push_back(c);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  uint64_t head = 0;
  const size_t head_n = counts.size() / 100 + 1;
  for (size_t i = 0; i < head_n; ++i) {
    head += static_cast<uint64_t>(sorted[i]);
  }
  EXPECT_GT(static_cast<double>(head) / trace.size(), 0.3);
}

TEST(YcsbTest, DeterministicForSeed) {
  YcsbConfig config;
  config.workload = 'A';
  config.num_keys = 1000;
  const Trace a = MakeYcsbTrace(config, 1000, 42);
  const Trace b = MakeYcsbTrace(config, 1000, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].op, b[i].op);
  }
}

// ---- Synthetic trace affinities (the substitution's load-bearing claim) ---

constexpr uint64_t kCount = 200000;
constexpr uint64_t kFootprint = 10000;

double LruRate(const Trace& t, size_t cap) {
  return sim::ReplayHitRate(t, cap, policy::PrecisePolicyKind::kLru);
}
double LfuRate(const Trace& t, size_t cap) {
  return sim::ReplayHitRate(t, cap, policy::PrecisePolicyKind::kLfu);
}

TEST(SyntheticTest, LfuFriendlyGeneratorFavorsLfu) {
  const Trace t = MakeLfuFriendly(kCount, kFootprint / 2, 0.99, 0.3, 1);
  const size_t cap = kFootprint / 10;
  EXPECT_GT(LfuRate(t, cap), LruRate(t, cap) + 0.02)
      << "one-hit-wonder noise must separate LFU from LRU decisively";
}

TEST(SyntheticTest, StationaryZipfNearTieBetweenLruAndLfu) {
  // Pure stationary Zipf: the classic result is that LRU and LFU are close.
  const Trace t = MakeStationaryZipf(kCount, kFootprint, 0.99, 1);
  const size_t cap = kFootprint / 10;
  EXPECT_NEAR(LfuRate(t, cap), LruRate(t, cap), 0.05);
}

TEST(SyntheticTest, ShiftingHotSetIsLruFriendly) {
  const Trace t = MakeShiftingHotSet(kCount, kFootprint, kFootprint / 10, kCount / 50,
                                     kFootprint / 20, 1);
  const size_t cap = kFootprint / 8;
  EXPECT_GT(LruRate(t, cap), LfuRate(t, cap));
}

TEST(SyntheticTest, ScansPoisonLruButNotLfu) {
  // Scan bursts of exactly cache size: each burst wipes an LRU cache
  // completely but only displaces the low-frequency fraction of an LFU one.
  const size_t cap = kFootprint / 10;
  const Trace with_scans =
      MakeZipfWithScans(kCount, kFootprint, 0.99, kCount / 20, cap, 1);
  const Trace without = MakeStationaryZipf(kCount, kFootprint, 0.99, 1);
  const double lru_drop = LruRate(without, cap) - LruRate(with_scans, cap);
  const double lfu_drop = LfuRate(without, cap) - LfuRate(with_scans, cap);
  EXPECT_GT(lru_drop, lfu_drop) << "scans must hurt LRU more than LFU";
}

TEST(SyntheticTest, ChangingWorkloadAlternatesAffinity) {
  const Trace t = MakeChangingWorkload(4, kCount / 4, kFootprint, 1);
  EXPECT_EQ(t.size(), kCount);
  // Phase 0 (stationary) must be LFU-friendly, phase 1 (drift) LRU-friendly.
  const Trace phase0(t.begin(), t.begin() + kCount / 4);
  const Trace phase1(t.begin() + kCount / 4, t.begin() + kCount / 2);
  const size_t cap = kFootprint / 10;
  EXPECT_GT(LfuRate(phase0, cap), LruRate(phase0, cap));
  EXPECT_GT(LruRate(phase1, cap), LfuRate(phase1, cap));
}

TEST(SyntheticTest, NamedFamiliesAllGenerate) {
  for (const std::string& name : NamedTraceFamilies()) {
    const Trace t = MakeNamedTrace(name, 50000, 5000, 1);
    EXPECT_EQ(t.size(), 50000u) << name;
    EXPECT_GT(Footprint(t), 1000u) << name;
  }
}

TEST(SyntheticTest, TwitterStorageVsTransientAffinitiesDiffer) {
  const Trace storage = MakeNamedTrace("twitter-storage", kCount, kFootprint, 1);
  const Trace transient = MakeNamedTrace("twitter-transient", kCount, kFootprint, 1);
  const size_t cap = kFootprint / 8;
  // Storage: stable popularity -> LFU wins. Transient: churn -> LRU wins.
  EXPECT_GT(LfuRate(storage, cap), LruRate(storage, cap));
  EXPECT_GT(LruRate(transient, cap), LfuRate(transient, cap));
}

TEST(SyntheticTest, SuiteWorkloadsSpanTheSpectrum) {
  int lru_wins = 0;
  int lfu_wins = 0;
  for (int i = 0; i < 16; ++i) {
    const Trace t = MakeSuiteWorkload(i, 60000, 6000, 1);
    const size_t cap = 600;
    if (LruRate(t, cap) > LfuRate(t, cap)) {
      lru_wins++;
    } else {
      lfu_wins++;
    }
  }
  EXPECT_GT(lru_wins, 0) << "the suite must contain LRU-friendly workloads";
  EXPECT_GT(lfu_wins, 0) << "the suite must contain LFU-friendly workloads";
}

TEST(SyntheticTest, DeterministicForSeed) {
  const Trace a = MakeNamedTrace("webmail", 10000, 1000, 9);
  const Trace b = MakeNamedTrace("webmail", 10000, 1000, 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].key, b[i].key);
  }
}

}  // namespace
}  // namespace ditto::workload
