#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>

#include "core/adaptive.h"
#include "dm/pool.h"
#include "rdma/verbs.h"

namespace ditto::core {
namespace {

class AdaptiveTest : public ::testing::Test {
 protected:
  AdaptiveTest()
      : pool_(MakeConfig()),
        controller_(&pool_, 2),
        ctx_(0),
        verbs_(&pool_.node(), &ctx_) {}

  static dm::PoolConfig MakeConfig() {
    dm::PoolConfig config;
    config.memory_bytes = 1 << 20;
    config.num_buckets = 64;
    config.cost = rdma::CostModel::Disabled();
    return config;
  }

  AdaptiveConfig StateConfig(int batch = 100, bool lazy = true) {
    AdaptiveConfig config;
    config.num_experts = 2;
    config.cache_size_objects = 1000;
    config.penalty_batch = batch;
    config.lazy = lazy;
    return config;
  }

  dm::MemoryPool pool_;
  AdaptiveController controller_;
  rdma::ClientContext ctx_;
  rdma::Verbs verbs_;
};

TEST_F(AdaptiveTest, InitialWeightsUniform) {
  AdaptiveState state(StateConfig(), &verbs_);
  EXPECT_DOUBLE_EQ(state.local_weights()[0], 0.5);
  EXPECT_DOUBLE_EQ(state.local_weights()[1], 0.5);
  EXPECT_DOUBLE_EQ(controller_.weights()[0], 0.5);
}

TEST_F(AdaptiveTest, RegretPenalizesNamedExpertLocally) {
  AdaptiveState state(StateConfig(), &verbs_);
  state.OnRegret(/*bmap=*/0b01, /*age=*/0);  // expert 0 made the bad call
  EXPECT_LT(state.local_weights()[0], state.local_weights()[1]);
}

TEST_F(AdaptiveTest, OlderRegretsPenalizedLess) {
  AdaptiveState state(StateConfig(), &verbs_);
  const double fresh = state.DiscountedPenalty(0);
  const double mid = state.DiscountedPenalty(500);
  const double old = state.DiscountedPenalty(1000);
  EXPECT_GT(fresh, mid);
  EXPECT_GT(mid, old);
  EXPECT_DOUBLE_EQ(fresh, 1.0);                    // d^0
  EXPECT_NEAR(old, 0.005, 1e-9);                   // d^N = base
}

TEST_F(AdaptiveTest, LazyFlushHappensAtBatchBoundary) {
  AdaptiveState state(StateConfig(/*batch=*/10), &verbs_);
  for (int i = 0; i < 9; ++i) {
    state.OnRegret(0b01, 0);
  }
  EXPECT_EQ(controller_.updates_received(), 0u);
  EXPECT_EQ(ctx_.rpcs, 0u);
  state.OnRegret(0b01, 0);  // 10th regret triggers the RPC
  EXPECT_EQ(controller_.updates_received(), 1u);
  EXPECT_EQ(ctx_.rpcs, 1u);
  EXPECT_EQ(state.flushes(), 1u);
}

TEST_F(AdaptiveTest, EagerModeFlushesEveryRegret) {
  AdaptiveState state(StateConfig(/*batch=*/100, /*lazy=*/false), &verbs_);
  for (int i = 0; i < 5; ++i) {
    state.OnRegret(0b10, 0);
  }
  EXPECT_EQ(controller_.updates_received(), 5u);
}

TEST_F(AdaptiveTest, GlobalWeightsReflectPenalties) {
  AdaptiveState state(StateConfig(/*batch=*/1), &verbs_);
  for (int i = 0; i < 20; ++i) {
    state.OnRegret(0b01, 0);
  }
  const std::vector<double> global = controller_.weights();
  EXPECT_LT(global[0], global[1]);
  // Local copy was replaced with the controller's response.
  EXPECT_DOUBLE_EQ(state.local_weights()[0], global[0]);
}

TEST_F(AdaptiveTest, TwoClientsShareGlobalWeights) {
  rdma::ClientContext ctx2(1);
  rdma::Verbs verbs2(&pool_.node(), &ctx2);
  AdaptiveState a(StateConfig(/*batch=*/1), &verbs_);
  AdaptiveState b(StateConfig(/*batch=*/1), &verbs2);
  // Client a observes many regrets against expert 0.
  for (int i = 0; i < 50; ++i) {
    a.OnRegret(0b01, 0);
  }
  // Client b flushes one regret and receives the global view.
  b.OnRegret(0b10, 0);
  EXPECT_LT(b.local_weights()[0], b.local_weights()[1])
      << "b must learn about expert 0's failures from the controller";
}

TEST_F(AdaptiveTest, WeightsStayNormalizedAndFloored) {
  AdaptiveState state(StateConfig(/*batch=*/1), &verbs_);
  for (int i = 0; i < 2000; ++i) {
    state.OnRegret(0b01, 0);
  }
  const auto& w = state.local_weights();
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12)
      << "the floored vector must be re-normalized before it is used";
  EXPECT_DOUBLE_EQ(w[0], 1e-3) << "the crushed expert sits exactly at the floor";
  // The controller's authoritative copy obeys the same invariants.
  const std::vector<double> global = controller_.weights();
  EXPECT_NEAR(global[0] + global[1], 1.0, 1e-12);
  EXPECT_GE(global[0], 1e-3);
}

TEST_F(AdaptiveTest, MalformedUpdatePayloadsRejected) {
  const std::vector<double> before = controller_.weights();

  // Trailing bytes: 2 doubles plus 3 stray bytes.
  EXPECT_TRUE(verbs_.Rpc(dm::kRpcUpdateWeights, std::string(19, 'x')).empty());
  // Wrong expert count: one double for a two-expert controller.
  EXPECT_TRUE(verbs_.Rpc(dm::kRpcUpdateWeights, std::string(8, '\0')).empty());
  // Deliberately short payload.
  EXPECT_TRUE(verbs_.Rpc(dm::kRpcUpdateWeights, std::string(3, '\1')).empty());
  // Empty payload: zero doubles for a two-expert controller (and a decode
  // edge: an empty view may carry null data(), which memcpy must not see).
  EXPECT_TRUE(verbs_.Rpc(dm::kRpcUpdateWeights, std::string()).empty());

  EXPECT_EQ(controller_.updates_received(), 0u);
  EXPECT_EQ(controller_.updates_rejected(), 4u);
  const std::vector<double> after = controller_.weights();
  EXPECT_DOUBLE_EQ(after[0], before[0]) << "a rejected payload must not perturb the weights";
  EXPECT_DOUBLE_EQ(after[1], before[1]);
}

TEST_F(AdaptiveTest, ClientKeepsLocalWeightsWhenControllerRejects) {
  // A client configured for three experts flushes 24-byte payloads at the
  // two-expert controller: every flush is rejected and the local weights
  // survive (instead of being truncated or zeroed by a bad response).
  AdaptiveConfig config;
  config.num_experts = 3;
  config.cache_size_objects = 1000;
  config.penalty_batch = 1;
  AdaptiveState state(config, &verbs_);
  state.OnRegret(0b001, 0);
  EXPECT_EQ(controller_.updates_rejected(), 1u);
  const auto& w = state.local_weights();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-12);
  EXPECT_LT(w[0], w[1]) << "the local penalty still applied";
}

TEST_F(AdaptiveTest, ChooseExpertFollowsWeights) {
  AdaptiveState state(StateConfig(/*batch=*/1), &verbs_);
  for (int i = 0; i < 200; ++i) {
    state.OnRegret(0b01, 0);  // crush expert 0
  }
  Rng rng(5);
  int chose_1 = 0;
  constexpr int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    if (state.ChooseExpert(rng) == 1) {
      chose_1++;
    }
  }
  EXPECT_GT(chose_1, kDraws * 9 / 10);
}

TEST_F(AdaptiveTest, BothExpertsPenalizedWhenBothNominatedVictim) {
  AdaptiveState state(StateConfig(), &verbs_);
  state.OnRegret(0b11, 0);
  EXPECT_DOUBLE_EQ(state.local_weights()[0], state.local_weights()[1]);
  EXPECT_NEAR(state.local_weights()[0], 0.5, 1e-9) << "symmetric penalty renormalizes to 0.5";
}

TEST_F(AdaptiveTest, ManualFlushDrainsPending) {
  AdaptiveState state(StateConfig(/*batch=*/100), &verbs_);
  state.OnRegret(0b01, 0);
  EXPECT_EQ(controller_.updates_received(), 0u);
  state.Flush();
  EXPECT_EQ(controller_.updates_received(), 1u);
  state.Flush();  // nothing pending: no extra RPC
  EXPECT_EQ(controller_.updates_received(), 1u);
}

// Regression: updates_received()/updates_rejected() read the mu_-guarded
// counters without the lock — a data race against concurrent HandleUpdate
// (flagged by clang -Wthread-safety once the fields were GUARDED_BY(mu_)).
// The accessors now lock; this hammers them from readers racing an updater
// so the TSan CI leg would catch a regression.
TEST_F(AdaptiveTest, CounterAccessorsAreRaceFreeUnderConcurrentUpdates) {
  constexpr int kUpdates = 200;
  std::atomic<bool> done{false};
  std::thread updater([&] {
    rdma::ClientContext ctx(1);
    rdma::Verbs verbs(&pool_.node(), &ctx);
    const std::string good(16, '\0');  // two zero penalties: accepted
    const std::string bad(3, '\1');    // not a whole double: rejected
    for (int i = 0; i < kUpdates; ++i) {
      verbs.Rpc(dm::kRpcUpdateWeights, good);
      verbs.Rpc(dm::kRpcUpdateWeights, bad);
    }
    done.store(true, std::memory_order_release);
  });
  uint64_t last_received = 0;
  uint64_t last_rejected = 0;
  while (!done.load(std::memory_order_acquire)) {
    const uint64_t received = controller_.updates_received();
    const uint64_t rejected = controller_.updates_rejected();
    EXPECT_GE(received, last_received) << "counter must be monotonic";
    EXPECT_GE(rejected, last_rejected) << "counter must be monotonic";
    last_received = received;
    last_rejected = rejected;
  }
  updater.join();
  EXPECT_EQ(controller_.updates_received(), static_cast<uint64_t>(kUpdates));
  EXPECT_EQ(controller_.updates_rejected(), static_cast<uint64_t>(kUpdates));
}

}  // namespace
}  // namespace ditto::core
