// Tests of doorbell-batched async verb submission: batched chains must
// never put more messages on the wire than unbatched posting, duplicate
// addresses must coalesce, and batching must not perturb cache behaviour or
// the per-op verb budget pinned by verb_count_test.cc.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/ditto_client.h"
#include "dm/pool.h"
#include "rdma/verbs.h"
#include "workloads/ycsb.h"

namespace ditto {
namespace {

TEST(VerbBatchingTest, DuplicateAsyncPostsCoalesceIntoOneMessage) {
  rdma::RemoteNode node(1 << 20, rdma::CostModel{});
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&node, &ctx);
  verbs.SetBatchOps(16);

  const uint64_t value = 7;
  verbs.WriteAsync(64, &value, 8);
  verbs.WriteAsync(64, &value, 8);
  verbs.WriteAsync(64, &value, 8);
  verbs.FetchAddAsync(128, 1);
  verbs.FetchAddAsync(128, 1);
  EXPECT_EQ(node.nic().messages(), 0u) << "costs deferred until the doorbell";
  verbs.FlushBatch();

  EXPECT_EQ(node.nic().messages(), 2u) << "one WRITE + one FAA after merging";
  EXPECT_EQ(node.nic().doorbells(), 1u);
  EXPECT_EQ(ctx.writes, 3u) << "posted WQEs still counted per post";
  EXPECT_EQ(ctx.atomics, 2u);
  // Memory effects applied immediately and in order.
  EXPECT_EQ(node.arena().ReadU64(64), 7u);
  EXPECT_EQ(node.arena().ReadU64(128), 2u);
}

TEST(VerbBatchingTest, ChainAutoFlushesAtTheConfiguredLimit) {
  rdma::RemoteNode node(1 << 20, rdma::CostModel{});
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&node, &ctx);
  verbs.SetBatchOps(4);

  const uint64_t value = 1;
  for (int i = 0; i < 4; ++i) {
    verbs.WriteAsync(64 + 8 * i, &value, 8);
  }
  EXPECT_EQ(node.nic().doorbells(), 1u) << "4th post rings the doorbell";
  EXPECT_EQ(node.nic().messages(), 4u);
  EXPECT_EQ(verbs.batch_pending(), 0u);

  // Coalesced duplicates still count toward the chain limit.
  for (int i = 0; i < 4; ++i) {
    verbs.FetchAddAsync(256, 1);
  }
  EXPECT_EQ(node.nic().doorbells(), 2u);
  EXPECT_EQ(node.nic().messages(), 5u) << "four FAAs merged into one message";
}

TEST(VerbBatchingTest, DisablingBatchingFlushesTheChain) {
  rdma::RemoteNode node(1 << 20, rdma::CostModel{});
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&node, &ctx);
  verbs.SetBatchOps(64);
  const uint64_t value = 1;
  verbs.WriteAsync(64, &value, 8);
  EXPECT_EQ(verbs.batch_pending(), 1u);
  verbs.SetBatchOps(0);
  EXPECT_EQ(verbs.batch_pending(), 0u);
  EXPECT_EQ(node.nic().messages(), 1u);

  // Unbatched again: every async post is its own doorbell + message.
  verbs.WriteAsync(64, &value, 8);
  verbs.WriteAsync(64, &value, 8);
  EXPECT_EQ(node.nic().messages(), 3u);
}

struct Deployment {
  explicit Deployment(size_t batch_ops) : pool(MakePool()), server(&pool, Config()), ctx(0) {
    client = std::make_unique<core::DittoClient>(&pool, &ctx, Config());
    client->SetBatchOps(batch_ops);
  }

  static dm::PoolConfig MakePool() {
    dm::PoolConfig config;
    config.memory_bytes = 16 << 20;
    config.num_buckets = 1024;
    config.capacity_objects = 400;
    return config;
  }

  static core::DittoConfig Config() {
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    return config;
  }

  dm::MemoryPool pool;
  core::DittoServer server;
  rdma::ClientContext ctx;
  std::unique_ptr<core::DittoClient> client;
};

// Replays the identical YCSB-A request sequence through a batched and an
// unbatched client and compares wire traffic and behaviour.
TEST(VerbBatchingTest, BatchedVerbCountNeverExceedsUnbatchedOnYcsb) {
  workload::YcsbConfig ycsb;
  ycsb.workload = 'A';
  ycsb.num_keys = 500;  // zipfian over a small key space: hot keys repeat
  const workload::Trace trace = workload::MakeYcsbTrace(ycsb, 20000, /*seed=*/3);

  Deployment unbatched(/*batch_ops=*/0);
  Deployment batched(/*batch_ops=*/32);
  for (const workload::Request& req : trace) {
    const std::string key = workload::KeyString(req.key);
    for (Deployment* d : {&unbatched, &batched}) {
      if (req.op == workload::Op::kGet) {
        if (!d->client->Get(key, nullptr)) {
          d->client->Set(key, "value");
        }
      } else {
        d->client->Set(key, "value");
      }
    }
  }
  unbatched.client->FlushBuffers();
  batched.client->FlushBuffers();

  // Identical cache behaviour and WQE counts...
  EXPECT_EQ(batched.client->stats().hits, unbatched.client->stats().hits);
  EXPECT_EQ(batched.client->stats().misses, unbatched.client->stats().misses);
  EXPECT_EQ(batched.client->stats().evictions, unbatched.client->stats().evictions);
  EXPECT_EQ(batched.ctx.reads, unbatched.ctx.reads);
  EXPECT_EQ(batched.ctx.writes, unbatched.ctx.writes);
  EXPECT_EQ(batched.ctx.atomics, unbatched.ctx.atomics);
  // ...but strictly less wire traffic and far fewer doorbells: the zipfian
  // hot keys repeat within the 32-post window, so their metadata updates
  // coalesce (the acceptance invariant: batched verbs <= unbatched).
  EXPECT_LT(batched.pool.node().nic().messages(), unbatched.pool.node().nic().messages());
  EXPECT_LT(batched.pool.node().nic().doorbells(), unbatched.pool.node().nic().doorbells());
}

}  // namespace
}  // namespace ditto
