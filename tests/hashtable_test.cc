#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/hash.h"
#include "dm/pool.h"
#include "hashtable/hash_table.h"
#include "rdma/verbs.h"

namespace ditto::ht {
namespace {

dm::PoolConfig SmallPool() {
  dm::PoolConfig config;
  config.memory_bytes = 4 << 20;
  config.num_buckets = 256;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

TEST(LayoutTest, PackUnpackRoundTrip) {
  const uint64_t word = PackAtomic(0xAB, 4, 0x123456789ABCULL);
  EXPECT_EQ(AtomicFp(word), 0xAB);
  EXPECT_EQ(AtomicSize(word), 4);
  EXPECT_EQ(AtomicPointer(word), 0x123456789ABCULL);
}

TEST(LayoutTest, HistoryTagDetected) {
  SlotView slot;
  slot.atomic_word = PackAtomic(0x11, kHistorySizeTag, 42);
  EXPECT_TRUE(slot.IsHistory());
  EXPECT_FALSE(slot.IsObject());
  EXPECT_FALSE(slot.IsEmpty());
  EXPECT_EQ(slot.history_id(), 42u);
}

TEST(LayoutTest, EmptySlotDetected) {
  SlotView slot;
  EXPECT_TRUE(slot.IsEmpty());
  EXPECT_FALSE(slot.IsObject());
  EXPECT_FALSE(slot.IsHistory());
}

class HashTableTest : public ::testing::Test {
 protected:
  HashTableTest()
      : pool_(SmallPool()), ctx_(0), verbs_(&pool_.node(), &ctx_), table_(&pool_, &verbs_) {}

  dm::MemoryPool pool_;
  rdma::ClientContext ctx_;
  rdma::Verbs verbs_;
  HashTable table_;
};

TEST_F(HashTableTest, GeometryMatchesConfig) {
  EXPECT_EQ(table_.num_buckets(), 256u);
  EXPECT_EQ(table_.slots_per_bucket(), 8);
  EXPECT_EQ(table_.num_slots(), 2048u);
  EXPECT_EQ(table_.SlotAddr(1) - table_.SlotAddr(0), kSlotBytes);
}

TEST_F(HashTableTest, CasPublishesAndReadBucketSeesIt) {
  const uint64_t slot_addr = table_.BucketSlotAddr(3, 2);
  const uint64_t desired = PackAtomic(0x42, 4, 0xC0FFEE);
  EXPECT_TRUE(table_.CasAtomic(slot_addr, 0, desired));
  EXPECT_FALSE(table_.CasAtomic(slot_addr, 0, desired)) << "second CAS must fail";

  std::vector<SlotView> bucket;
  table_.ReadBucket(3, &bucket);
  EXPECT_EQ(bucket[2].atomic_word, desired);
  EXPECT_TRUE(bucket[2].IsObject());
  EXPECT_EQ(bucket[2].fp(), 0x42);
  EXPECT_EQ(bucket[2].pointer(), 0xC0FFEEu);
}

TEST_F(HashTableTest, MetadataWriteReadRoundTrip) {
  const uint64_t slot_addr = table_.BucketSlotAddr(5, 0);
  table_.WriteAllMetadata(slot_addr, /*hash=*/111, /*insert_ts=*/222, /*last_ts=*/333,
                          /*freq=*/1);
  SlotView slot = table_.ReadSlot(slot_addr);
  EXPECT_EQ(slot.hash, 111u);
  EXPECT_EQ(slot.insert_ts, 222u);
  EXPECT_EQ(slot.last_ts, 333u);
  EXPECT_EQ(slot.freq, 1u);

  table_.WriteLastTs(slot_addr, 999);
  table_.AddFreq(slot_addr, 5);
  slot = table_.ReadSlot(slot_addr);
  EXPECT_EQ(slot.last_ts, 999u);
  EXPECT_EQ(slot.freq, 6u);
  EXPECT_EQ(slot.insert_ts, 222u) << "stateless neighbours untouched";
}

TEST_F(HashTableTest, SamplingReadsConsecutiveSlots) {
  // Fill a run of slots with recognizable pointers.
  for (uint64_t i = 100; i < 110; ++i) {
    table_.CasAtomic(table_.SlotAddr(i), 0, PackAtomic(1, 1, i));
  }
  std::vector<SlotView> sample;
  table_.ReadSlots(100, 5, &sample);
  ASSERT_EQ(sample.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sample[i].pointer(), 100u + i);
  }
}

TEST_F(HashTableTest, SamplingClampsAtTableEnd) {
  std::vector<SlotView> sample;
  EXPECT_TRUE(table_.ReadSlots(table_.num_slots() - 2, 5, &sample));
  EXPECT_EQ(sample.size(), 5u);  // clamped start, no out-of-bounds read
}

TEST_F(HashTableTest, SamplingReportsClampedStart) {
  // Mark the last slot so we can verify which window was actually read.
  const uint64_t last = table_.num_slots() - 1;
  table_.CasAtomic(table_.SlotAddr(last), 0, PackAtomic(1, 1, 0xBEEF));
  std::vector<SlotView> sample;
  uint64_t actual_start = 0;
  EXPECT_TRUE(table_.ReadSlots(table_.num_slots() + 100, 5, &sample, &actual_start));
  EXPECT_EQ(actual_start, table_.num_slots() - 5)
      << "the clamped start must be surfaced, not silently shifted";
  ASSERT_EQ(sample.size(), 5u);
  EXPECT_EQ(sample[4].pointer(), 0xBEEFu) << "window must end at the last slot";
}

TEST_F(HashTableTest, SamplingRejectsOversizedCount) {
  // Regression: count > num_slots() used to underflow `num_slots() - count`
  // and alias the READ into arbitrary table bytes. It must now fail cleanly
  // without issuing any verb.
  std::vector<SlotView> sample{SlotView{}};  // non-empty: must be cleared
  const uint64_t reads_before = ctx_.reads;
  EXPECT_FALSE(table_.ReadSlots(0, static_cast<int>(table_.num_slots()) + 1, &sample));
  EXPECT_TRUE(sample.empty());
  EXPECT_FALSE(table_.ReadSlots(0, 0, &sample));
  EXPECT_FALSE(table_.ReadSlots(0, -3, &sample));
  EXPECT_EQ(ctx_.reads, reads_before) << "rejected ranges must not touch the wire";
}

TEST_F(HashTableTest, ReadBucketRejectsOutOfRangeBucket) {
  std::vector<SlotView> bucket{SlotView{}};
  EXPECT_FALSE(table_.ReadBucket(table_.num_buckets(), &bucket))
      << "an out-of-range bucket must fail instead of aliasing the last bucket";
  EXPECT_TRUE(bucket.empty());
  EXPECT_TRUE(table_.ReadBucket(table_.num_buckets() - 1, &bucket));
  EXPECT_EQ(bucket.size(), static_cast<size_t>(table_.slots_per_bucket()));
}

TEST_F(HashTableTest, SamplingUsesSingleRead) {
  std::vector<SlotView> sample;
  const uint64_t reads_before = ctx_.reads;
  table_.ReadSlots(0, 5, &sample);
  EXPECT_EQ(ctx_.reads, reads_before + 1) << "sampling must cost exactly one READ";
}

TEST_F(HashTableTest, ExpertBmapSharesInsertTsField) {
  const uint64_t slot_addr = table_.BucketSlotAddr(9, 1);
  table_.WriteExpertBmapAsync(slot_addr, 0b101);
  const SlotView slot = table_.ReadSlot(slot_addr);
  EXPECT_EQ(slot.expert_bmap(), 0b101u);
  EXPECT_EQ(slot.insert_ts, 0b101u) << "bmap is stored in insert_ts (paper Fig. 9)";
}

// Layout contract behind WriteExpertBmapAsync targeting kInsertTsOff: the
// aliasing is INTENTIONAL (paper Fig. 9 — a history entry has no insert_ts,
// so the word is reused for the expert bitmap) and is safe for the contended
// engine because of two invariants pinned here: (1) the bmap is written only
// after the slot's atomic word was CASed to the history tag, so no live
// object's insert_ts can be hit, and (2) re-claiming the slot for an object
// runs WriteAllMetadata, whose combined WRITE covers kInsertTsOff and
// overwrites the stale bmap before the slot is ever read as an object.
TEST_F(HashTableTest, HistoryBmapAliasingSurvivesSlotLifecycle) {
  const uint64_t slot_addr = table_.BucketSlotAddr(11, 3);

  // Live object with real metadata.
  ASSERT_TRUE(table_.CasAtomic(slot_addr, 0, PackAtomic(0x21, 2, 0x1000)));
  table_.WriteAllMetadata(slot_addr, /*hash=*/777, /*insert_ts=*/41, /*last_ts=*/42,
                          /*freq=*/3);

  // Eviction converts it to a history entry, then writes the bmap. Only the
  // insert_ts word may change; hash/last_ts/freq survive for regret checks.
  const uint64_t history_word = PackAtomic(0x21, kHistorySizeTag, /*hist_id=*/12345);
  ASSERT_TRUE(table_.CasAtomic(slot_addr, PackAtomic(0x21, 2, 0x1000), history_word));
  table_.WriteExpertBmapAsync(slot_addr, 0b11);
  SlotView slot = table_.ReadSlot(slot_addr);
  EXPECT_TRUE(slot.IsHistory());
  EXPECT_EQ(slot.expert_bmap(), 0b11u);
  EXPECT_EQ(slot.hash, 777u) << "bmap write must touch only the insert_ts word";
  EXPECT_EQ(slot.last_ts, 42u);
  EXPECT_EQ(slot.freq, 3u);

  // Re-claiming the slot for a new object re-initializes all metadata: the
  // stale bmap cannot leak into the new object's insert_ts.
  ASSERT_TRUE(table_.CasAtomic(slot_addr, history_word, PackAtomic(0x33, 1, 0x2000)));
  table_.WriteAllMetadata(slot_addr, /*hash=*/888, /*insert_ts=*/100, /*last_ts=*/100,
                          /*freq=*/1);
  slot = table_.ReadSlot(slot_addr);
  EXPECT_TRUE(slot.IsObject());
  EXPECT_EQ(slot.insert_ts, 100u) << "reinsert must overwrite the aliased bmap";
}

TEST_F(HashTableTest, ConcurrentCasOnSameSlotHasOneWinner) {
  const uint64_t slot_addr = table_.BucketSlotAddr(7, 7);
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, slot_addr, &winners, t] {
      rdma::ClientContext ctx(static_cast<uint32_t>(t) + 1);
      rdma::Verbs verbs(&pool_.node(), &ctx);
      HashTable table(&pool_, &verbs);
      if (table.CasAtomic(slot_addr, 0, PackAtomic(1, 1, static_cast<uint64_t>(t) + 1))) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(winners.load(), 1);
}

}  // namespace
}  // namespace ditto::ht
