#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/hash.h"
#include "dm/pool.h"
#include "hashtable/hash_table.h"
#include "rdma/verbs.h"

namespace ditto::ht {
namespace {

dm::PoolConfig SmallPool() {
  dm::PoolConfig config;
  config.memory_bytes = 4 << 20;
  config.num_buckets = 256;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

TEST(LayoutTest, PackUnpackRoundTrip) {
  const uint64_t word = PackAtomic(0xAB, 4, 0x123456789ABCULL);
  EXPECT_EQ(AtomicFp(word), 0xAB);
  EXPECT_EQ(AtomicSize(word), 4);
  EXPECT_EQ(AtomicPointer(word), 0x123456789ABCULL);
}

TEST(LayoutTest, HistoryTagDetected) {
  SlotView slot;
  slot.atomic_word = PackAtomic(0x11, kHistorySizeTag, 42);
  EXPECT_TRUE(slot.IsHistory());
  EXPECT_FALSE(slot.IsObject());
  EXPECT_FALSE(slot.IsEmpty());
  EXPECT_EQ(slot.history_id(), 42u);
}

TEST(LayoutTest, EmptySlotDetected) {
  SlotView slot;
  EXPECT_TRUE(slot.IsEmpty());
  EXPECT_FALSE(slot.IsObject());
  EXPECT_FALSE(slot.IsHistory());
}

class HashTableTest : public ::testing::Test {
 protected:
  HashTableTest()
      : pool_(SmallPool()), ctx_(0), verbs_(&pool_.node(), &ctx_), table_(&pool_, &verbs_) {}

  dm::MemoryPool pool_;
  rdma::ClientContext ctx_;
  rdma::Verbs verbs_;
  HashTable table_;
};

TEST_F(HashTableTest, GeometryMatchesConfig) {
  EXPECT_EQ(table_.num_buckets(), 256u);
  EXPECT_EQ(table_.slots_per_bucket(), 8);
  EXPECT_EQ(table_.num_slots(), 2048u);
  EXPECT_EQ(table_.SlotAddr(1) - table_.SlotAddr(0), kSlotBytes);
}

TEST_F(HashTableTest, CasPublishesAndReadBucketSeesIt) {
  const uint64_t slot_addr = table_.BucketSlotAddr(3, 2);
  const uint64_t desired = PackAtomic(0x42, 4, 0xC0FFEE);
  EXPECT_TRUE(table_.CasAtomic(slot_addr, 0, desired));
  EXPECT_FALSE(table_.CasAtomic(slot_addr, 0, desired)) << "second CAS must fail";

  std::vector<SlotView> bucket;
  table_.ReadBucket(3, &bucket);
  EXPECT_EQ(bucket[2].atomic_word, desired);
  EXPECT_TRUE(bucket[2].IsObject());
  EXPECT_EQ(bucket[2].fp(), 0x42);
  EXPECT_EQ(bucket[2].pointer(), 0xC0FFEEu);
}

TEST_F(HashTableTest, MetadataWriteReadRoundTrip) {
  const uint64_t slot_addr = table_.BucketSlotAddr(5, 0);
  table_.WriteAllMetadata(slot_addr, /*hash=*/111, /*insert_ts=*/222, /*last_ts=*/333,
                          /*freq=*/1);
  SlotView slot = table_.ReadSlot(slot_addr);
  EXPECT_EQ(slot.hash, 111u);
  EXPECT_EQ(slot.insert_ts, 222u);
  EXPECT_EQ(slot.last_ts, 333u);
  EXPECT_EQ(slot.freq, 1u);

  table_.WriteLastTs(slot_addr, 999);
  table_.AddFreq(slot_addr, 5);
  slot = table_.ReadSlot(slot_addr);
  EXPECT_EQ(slot.last_ts, 999u);
  EXPECT_EQ(slot.freq, 6u);
  EXPECT_EQ(slot.insert_ts, 222u) << "stateless neighbours untouched";
}

TEST_F(HashTableTest, SamplingReadsConsecutiveSlots) {
  // Fill a run of slots with recognizable pointers.
  for (uint64_t i = 100; i < 110; ++i) {
    table_.CasAtomic(table_.SlotAddr(i), 0, PackAtomic(1, 1, i));
  }
  std::vector<SlotView> sample;
  table_.ReadSlots(100, 5, &sample);
  ASSERT_EQ(sample.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sample[i].pointer(), 100u + i);
  }
}

TEST_F(HashTableTest, SamplingClampsAtTableEnd) {
  std::vector<SlotView> sample;
  table_.ReadSlots(table_.num_slots() - 2, 5, &sample);
  EXPECT_EQ(sample.size(), 5u);  // clamped start, no out-of-bounds read
}

TEST_F(HashTableTest, SamplingUsesSingleRead) {
  std::vector<SlotView> sample;
  const uint64_t reads_before = ctx_.reads;
  table_.ReadSlots(0, 5, &sample);
  EXPECT_EQ(ctx_.reads, reads_before + 1) << "sampling must cost exactly one READ";
}

TEST_F(HashTableTest, ExpertBmapSharesInsertTsField) {
  const uint64_t slot_addr = table_.BucketSlotAddr(9, 1);
  table_.WriteExpertBmapAsync(slot_addr, 0b101);
  const SlotView slot = table_.ReadSlot(slot_addr);
  EXPECT_EQ(slot.expert_bmap(), 0b101u);
  EXPECT_EQ(slot.insert_ts, 0b101u) << "bmap is stored in insert_ts (paper Fig. 9)";
}

TEST_F(HashTableTest, ConcurrentCasOnSameSlotHasOneWinner) {
  const uint64_t slot_addr = table_.BucketSlotAddr(7, 7);
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, slot_addr, &winners, t] {
      rdma::ClientContext ctx(static_cast<uint32_t>(t) + 1);
      rdma::Verbs verbs(&pool_.node(), &ctx);
      HashTable table(&pool_, &verbs);
      if (table.CasAtomic(slot_addr, 0, PackAtomic(1, 1, static_cast<uint64_t>(t) + 1))) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(winners.load(), 1);
}

}  // namespace
}  // namespace ditto::ht
