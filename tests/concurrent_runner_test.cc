// Tests of the concurrent sharded simulation engine: the SPSC request
// queue, thread-count-independent determinism of RunTraceSharded, and a
// ThreadSanitizer-friendly stress of ShardedDittoClient on a shared pool.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_client.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "sim/spsc_queue.h"
#include "workloads/ycsb.h"

namespace ditto {
namespace {

TEST(SpscQueueTest, DeliversAllItemsInOrderAcrossThreads) {
  constexpr uint32_t kItems = 200000;
  sim::SpscQueue<uint32_t> queue(256);
  std::thread producer([&queue] {
    for (uint32_t i = 0; i < kItems; ++i) {
      while (!queue.TryPush(i)) {
        std::this_thread::yield();
      }
    }
  });
  uint32_t expected = 0;
  while (expected < kItems) {
    uint32_t got;
    if (queue.TryPop(&got)) {
      ASSERT_EQ(got, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(queue.Empty());
}

TEST(SpscQueueTest, PushFailsWhenFullPopFailsWhenEmpty) {
  sim::SpscQueue<int> queue(4);
  int out;
  EXPECT_FALSE(queue.TryPop(&out));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.TryPush(i));
  }
  EXPECT_FALSE(queue.TryPush(99));
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(queue.TryPush(4));
}

// A sharded Ditto deployment: one memory node, server, context, and client
// per shard, so every shard's cache state is thread-private.
struct ShardedDeployment {
  std::unique_ptr<core::ShardedPool> pool;
  std::vector<std::unique_ptr<core::DittoServer>> servers;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> shards;
  std::vector<sim::CacheClient*> raw;
  std::vector<rdma::RemoteNode*> nodes;
};

ShardedDeployment MakeDeployment(int num_shards) {
  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 16 << 20;
  pool_config.num_buckets = 1024;
  pool_config.capacity_objects = 300;  // small: evictions exercise the policies
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};

  ShardedDeployment d;
  // The pool's NodeFor routing is unused: shards are driven directly and
  // RunTraceSharded's dispatcher partitions by options.partition_seed.
  d.pool = std::make_unique<core::ShardedPool>(pool_config, num_shards);
  for (int i = 0; i < num_shards; ++i) {
    d.servers.push_back(std::make_unique<core::DittoServer>(&d.pool->node(i), config));
    d.ctxs.push_back(std::make_unique<rdma::ClientContext>(i, /*seed=*/17));
    d.shards.push_back(
        std::make_unique<sim::DittoCacheClient>(&d.pool->node(i), d.ctxs.back().get(), config));
    d.raw.push_back(d.shards.back().get());
    d.nodes.push_back(&d.pool->node(i).node());
  }
  return d;
}

sim::RunResult RunSharded(const workload::Trace& trace, int threads, size_t batch_ops) {
  ShardedDeployment d = MakeDeployment(/*num_shards=*/8);
  sim::RunOptions options;
  options.threads = threads;
  options.partition_seed = 42;
  options.batch_ops = batch_ops;
  options.warmup_fraction = 0.2;
  options.miss_penalty_us = 50.0;
  return sim::RunTraceSharded(d.raw, trace, d.nodes, options);
}

workload::Trace MakeTrace() {
  workload::YcsbConfig ycsb;
  ycsb.workload = 'A';
  ycsb.num_keys = 2000;
  return workload::MakeYcsbTrace(ycsb, /*count=*/30000, /*seed=*/7);
}

TEST(ConcurrentRunnerTest, IdenticalResultsAcrossThreadCounts) {
  const workload::Trace trace = MakeTrace();
  const sim::RunResult r1 = RunSharded(trace, /*threads=*/1, /*batch_ops=*/0);
  EXPECT_GT(r1.gets, 0u);
  EXPECT_GT(r1.hits, 0u);
  EXPECT_GT(r1.misses, 0u);
  for (const int threads : {2, 8}) {
    const sim::RunResult r = RunSharded(trace, threads, /*batch_ops=*/0);
    EXPECT_EQ(r.hits, r1.hits) << "threads=" << threads;
    EXPECT_EQ(r.misses, r1.misses) << "threads=" << threads;
    EXPECT_EQ(r.gets, r1.gets) << "threads=" << threads;
    EXPECT_EQ(r.sets, r1.sets) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.hit_rate, r1.hit_rate) << "threads=" << threads;
    // Shards own their memory nodes, so even the virtual-time accounting is
    // thread-private and the full result reproduces bit-for-bit.
    EXPECT_EQ(r.nic_messages, r1.nic_messages) << "threads=" << threads;
    EXPECT_EQ(r.nic_doorbells, r1.nic_doorbells) << "threads=" << threads;
    EXPECT_EQ(r.rpc_ops, r1.rpc_ops) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.throughput_mops, r1.throughput_mops) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.p99_us, r1.p99_us) << "threads=" << threads;
  }
}

TEST(ConcurrentRunnerTest, BatchedModeIsAlsoDeterministicAcrossThreadCounts) {
  const workload::Trace trace = MakeTrace();
  const sim::RunResult r1 = RunSharded(trace, /*threads=*/1, /*batch_ops=*/32);
  for (const int threads : {2, 8}) {
    const sim::RunResult r = RunSharded(trace, threads, /*batch_ops=*/32);
    EXPECT_EQ(r.hits, r1.hits) << "threads=" << threads;
    EXPECT_EQ(r.misses, r1.misses) << "threads=" << threads;
    EXPECT_EQ(r.nic_messages, r1.nic_messages) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.hit_rate, r1.hit_rate) << "threads=" << threads;
  }
}

TEST(ConcurrentRunnerTest, BatchingDoesNotChangeCacheBehaviour) {
  // Doorbell batching only coalesces cost accounting; hits/misses and the
  // number of posted WQEs are identical with and without it.
  const workload::Trace trace = MakeTrace();
  const sim::RunResult plain = RunSharded(trace, /*threads=*/2, /*batch_ops=*/0);
  const sim::RunResult batched = RunSharded(trace, /*threads=*/2, /*batch_ops=*/32);
  EXPECT_EQ(batched.hits, plain.hits);
  EXPECT_EQ(batched.misses, plain.misses);
  EXPECT_EQ(batched.sets, plain.sets);
  EXPECT_LE(batched.nic_messages, plain.nic_messages);
  EXPECT_LT(batched.nic_doorbells, plain.nic_doorbells);
}

TEST(ConcurrentRunnerTest, ShardForKeyIsSeededAndBalanced) {
  std::vector<int> counts(8, 0);
  bool seed_changes_route = false;
  for (uint64_t key = 0; key < 8000; ++key) {
    const uint32_t s = sim::ShardForKey(key, 8, 42);
    ASSERT_LT(s, 8u);
    counts[s]++;
    seed_changes_route = seed_changes_route || s != sim::ShardForKey(key, 8, 43);
  }
  EXPECT_TRUE(seed_changes_route);
  for (const int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

// Stress ShardedDittoClient from real threads against one shared pool: each
// thread has its own client + context (the supported concurrency model) but
// all route into the same four memory nodes, hammering the CAS/atomic paths.
// Run under -fsanitize=thread this is the data-race canary for the dm/rdma
// layers.
TEST(ShardedClientStressTest, ConcurrentClientsOnSharedPool) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeySpace = 512;

  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 16 << 20;
  pool_config.num_buckets = 1024;
  pool_config.capacity_objects = 200;
  pool_config.cost = rdma::CostModel::Disabled();
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};

  core::ShardedPool pool(pool_config, /*nodes=*/4, /*partition_seed=*/9);
  core::ShardedDittoServer server(&pool, config);

  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<core::ShardedDittoClient>> clients;
  for (int t = 0; t < kThreads; ++t) {
    ctxs.push_back(std::make_unique<rdma::ClientContext>(t, /*seed=*/t + 1));
    clients.push_back(std::make_unique<core::ShardedDittoClient>(&pool, ctxs.back().get(),
                                                                 config));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &clients] {
      core::ShardedDittoClient& client = *clients[t];
      Rng rng(1000 + t);
      std::string value(64, 'v');
      std::string got;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "stress-" + std::to_string(rng.NextBelow(kKeySpace));
        const uint64_t dice = rng.NextBelow(10);
        if (dice < 6) {
          client.Get(key, &got);
        } else if (dice < 9) {
          client.Set(key, value);
        } else {
          client.Delete(key);
        }
      }
      client.FlushBuffers();
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  uint64_t total_ops = 0;
  for (const auto& client : clients) {
    const core::DittoStats s = client->stats();
    EXPECT_EQ(s.gets, s.hits + s.misses);
    total_ops += s.gets + s.sets;
  }
  EXPECT_GT(total_ops, static_cast<uint64_t>(kThreads) * kOpsPerThread * 8 / 10);
  // Eviction must keep every node at or near its capacity bound.
  EXPECT_LE(pool.cached_objects(), 4u * pool_config.capacity_objects + kThreads);
}

}  // namespace
}  // namespace ditto
