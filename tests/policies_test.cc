#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "policies/algorithms.h"
#include "policies/policy.h"
#include "policies/precise.h"

namespace ditto::policy {
namespace {

Metadata Meta(uint64_t insert_ts, uint64_t last_ts, uint64_t freq, uint32_t size = 256,
              uint64_t now = 1000) {
  Metadata m;
  m.insert_ts = insert_ts;
  m.last_ts = last_ts;
  m.freq = freq;
  m.size_bytes = size;
  m.now = now;
  return m;
}

TEST(PolicyRegistryTest, AllTwelveAlgorithmsConstructible) {
  EXPECT_EQ(AllPolicyNames().size(), 12u);
  for (const std::string& name : AllPolicyNames()) {
    auto policy = MakePolicy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_EQ(MakePolicy("nonsense"), nullptr);
}

TEST(LruTest, OlderAccessEvictedFirst) {
  auto lru = MakePolicy("lru");
  EXPECT_LT(lru->Priority(Meta(0, 10, 5)), lru->Priority(Meta(0, 20, 1)));
}

TEST(MruTest, NewerAccessEvictedFirst) {
  auto mru = MakePolicy("mru");
  EXPECT_LT(mru->Priority(Meta(0, 20, 1)), mru->Priority(Meta(0, 10, 5)));
}

TEST(LfuTest, LessFrequentEvictedFirst) {
  auto lfu = MakePolicy("lfu");
  EXPECT_LT(lfu->Priority(Meta(0, 99, 2)), lfu->Priority(Meta(0, 1, 7)));
}

TEST(FifoTest, OlderInsertEvictedFirst) {
  auto fifo = MakePolicy("fifo");
  EXPECT_LT(fifo->Priority(Meta(5, 999, 9)), fifo->Priority(Meta(6, 1, 1)));
}

TEST(SizeTest, LargerObjectEvictedFirst) {
  auto size = MakePolicy("size");
  EXPECT_LT(size->Priority(Meta(0, 0, 0, 1024)), size->Priority(Meta(0, 0, 0, 64)));
}

TEST(GdsTest, CheaperPerByteEvictedFirst) {
  auto gds = MakePolicy("gds");
  Metadata big = Meta(0, 0, 1, 1024);
  Metadata small = Meta(0, 0, 1, 64);
  EXPECT_LT(gds->Priority(big), gds->Priority(small));
}

TEST(GdsTest, InflationRaisesFloorAfterEviction) {
  auto gds = MakePolicy("gds");
  Metadata victim = Meta(0, 0, 1, 64);
  const double before = gds->Priority(victim);
  gds->OnEvict(victim);
  // After an eviction, new priorities include the inflation value L.
  EXPECT_GT(gds->Priority(victim), before);
}

TEST(GdsfTest, FrequencyProtectsSmallHotObjects) {
  auto gdsf = MakePolicy("gdsf");
  Metadata hot = Meta(0, 0, 100, 256);
  Metadata cold = Meta(0, 0, 1, 256);
  EXPECT_LT(gdsf->Priority(cold), gdsf->Priority(hot));
}

TEST(LfudaTest, AgingBeatsStaleFrequency) {
  auto lfuda = MakePolicy("lfuda");
  // A hot object accessed 10 times while L = 0: its key freezes at 10.
  Metadata stale_hot = Meta(0, 0, 10);
  lfuda->Update(stale_hot);
  ASSERT_DOUBLE_EQ(lfuda->Priority(stale_hot), 10.0);
  // Evictions of freq-5 objects inflate L: 5, then 10, then 15.
  for (int i = 0; i < 3; ++i) {
    Metadata victim = Meta(0, 0, 5);
    lfuda->OnEvict(victim);
  }
  // A fresh object accessed once now has key L + 1 = 16 > 10: the stale-hot
  // object ages out first despite its higher raw frequency.
  Metadata fresh = Meta(0, 0, 1);
  lfuda->Update(fresh);
  EXPECT_GT(lfuda->Priority(fresh), lfuda->Priority(stale_hot));
}

TEST(LfudaTest, UsesOneExtensionWord) {
  EXPECT_EQ(MakePolicy("lfuda")->extension_words(), 1);
}

TEST(LrukTest, FallsBackToFifoBelowKAccesses) {
  LrukPolicy lruk;
  Metadata m = Meta(42, 100, 1);
  EXPECT_DOUBLE_EQ(lruk.Priority(m), 42.0);
}

TEST(LrukTest, UsesKthLastTimestampRing) {
  LrukPolicy lruk;
  Metadata m = Meta(0, 0, 0);
  // Simulate accesses at times 10, 20, 30 (K = 2).
  for (uint64_t t : {10, 20, 30}) {
    m.freq++;
    m.now = t;
    lruk.Update(m);
  }
  // After 3 accesses the 2nd-most-recent is at t=20.
  EXPECT_DOUBLE_EQ(lruk.Priority(m), 20.0);
}

TEST(LrukTest, ExtensionWordCount) {
  LrukPolicy lruk;
  EXPECT_EQ(lruk.extension_words(), 2);
}

TEST(LrfuTest, RecentFrequentHasHigherCrf) {
  LrfuPolicy lrfu;
  Metadata frequent = Meta(0, 0, 0, 256, 0);
  for (uint64_t t : {10, 20, 30}) {
    frequent.freq++;
    frequent.now = t;
    lrfu.Update(frequent);
  }
  Metadata once = Meta(0, 0, 0, 256, 0);
  once.freq = 1;
  once.now = 30;
  lrfu.Update(once);
  frequent.now = 40;
  once.now = 40;
  EXPECT_GT(lrfu.Priority(frequent), lrfu.Priority(once));
}

TEST(LrfuTest, CrfDecaysOverTime) {
  LrfuPolicy lrfu;
  Metadata m = Meta(0, 0, 0, 256, 0);
  m.freq = 1;
  m.now = 0;
  lrfu.Update(m);
  m.now = 100;
  const double soon = lrfu.Priority(m);
  m.now = 1'000'000;
  const double late = lrfu.Priority(m);
  EXPECT_LT(late, soon);
}

TEST(LirsTest, SmallIrrSurvivesSampling) {
  LirsPolicy lirs;
  // Object A: accessed at 90 and 100 (IRR 10). Object B: at 10 and 100
  // (IRR 90). LIRS keeps A (low IRR) and evicts B.
  Metadata a = Meta(0, 100, 5);
  a.ext[0] = 90;
  Metadata b = Meta(0, 100, 5);
  b.ext[0] = 10;
  EXPECT_GT(lirs.Priority(a), lirs.Priority(b));
}

TEST(LirsTest, ColdObjectsRankByRecency) {
  LirsPolicy lirs;
  Metadata seen_once_old = Meta(0, 10, 1);
  Metadata seen_once_new = Meta(0, 50, 1);
  EXPECT_LT(lirs.Priority(seen_once_old), lirs.Priority(seen_once_new));
}

TEST(HyperbolicTest, RatePerByteOrdering) {
  auto hyp = MakePolicy("hyperbolic");
  // Same age and size: higher frequency wins.
  EXPECT_LT(hyp->Priority(Meta(0, 0, 2, 256, 100)), hyp->Priority(Meta(0, 0, 50, 256, 100)));
  // Same frequency: younger object has a higher rate.
  EXPECT_LT(hyp->Priority(Meta(0, 0, 10, 256, 1000)), hyp->Priority(Meta(900, 0, 10, 256, 1000)));
}

// ---- Property sweep: every policy must give a total, finite ordering ------

class PolicyPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyPropertyTest, PrioritiesAreFinite) {
  auto policy = MakePolicy(GetParam());
  for (uint64_t ts = 0; ts < 100; ts += 7) {
    for (uint64_t freq = 0; freq < 50; freq += 5) {
      Metadata m = Meta(ts, ts + 5, freq, 64 + static_cast<uint32_t>(ts) * 8, ts + 100);
      const double p = policy->Priority(m);
      EXPECT_TRUE(std::isfinite(p)) << GetParam() << " ts=" << ts << " freq=" << freq;
    }
  }
}

TEST_P(PolicyPropertyTest, UpdateKeepsExtensionWordsInBounds) {
  auto policy = MakePolicy(GetParam());
  ASSERT_LE(policy->extension_words(), Metadata::kMaxExtensionWords);
  Metadata m = Meta(0, 0, 0);
  for (uint64_t t = 1; t <= 200; ++t) {
    m.freq++;
    m.now = t;
    m.last_ts = t;
    policy->Update(m);
  }
  EXPECT_TRUE(std::isfinite(policy->Priority(m)));
}

TEST_P(PolicyPropertyTest, PriorityIsDeterministic) {
  auto policy = MakePolicy(GetParam());
  Metadata m = Meta(3, 17, 5);
  EXPECT_DOUBLE_EQ(policy->Priority(m), policy->Priority(m));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPropertyTest,
                         ::testing::ValuesIn(AllPolicyNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---- Precise structures ----------------------------------------------------

TEST(PreciseLruTest, EvictsLeastRecentlyUsed) {
  PreciseLru lru;
  lru.Touch(1);
  lru.Touch(2);
  lru.Touch(3);
  lru.Touch(1);  // 2 is now LRU
  EXPECT_EQ(lru.EvictVictim(), 2u);
  EXPECT_EQ(lru.EvictVictim(), 3u);
  EXPECT_EQ(lru.EvictVictim(), 1u);
}

TEST(PreciseLruTest, EraseRemoves) {
  PreciseLru lru;
  lru.Touch(1);
  lru.Touch(2);
  lru.Erase(1);
  EXPECT_FALSE(lru.Contains(1));
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(lru.EvictVictim(), 2u);
}

TEST(PreciseLfuTest, EvictsLeastFrequent) {
  PreciseLfu lfu;
  lfu.Touch(1);
  lfu.Touch(1);
  lfu.Touch(2);
  lfu.Touch(3);
  lfu.Touch(3);
  lfu.Touch(3);
  EXPECT_EQ(lfu.EvictVictim(), 2u);
  EXPECT_EQ(lfu.FrequencyOf(3), 3u);
}

TEST(PreciseLfuTest, TieBrokenByRecency) {
  PreciseLfu lfu;
  lfu.Touch(1);
  lfu.Touch(2);
  // Both have frequency 1; the older (1) goes first.
  EXPECT_EQ(lfu.EvictVictim(), 1u);
}

TEST(PreciseCacheTest, CapacityIsRespected) {
  PreciseCache cache(3, PrecisePolicyKind::kLru);
  for (uint64_t k = 0; k < 10; ++k) {
    cache.Access(k);
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.misses, 10u);
}

TEST(PreciseCacheTest, LruKeepsRecentKeys) {
  PreciseCache cache(2, PrecisePolicyKind::kLru);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);
  cache.Access(3);  // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(PreciseCacheTest, LfuKeepsFrequentKeys) {
  PreciseCache cache(2, PrecisePolicyKind::kLfu);
  cache.Access(1);
  cache.Access(1);
  cache.Access(1);
  cache.Access(2);
  cache.Access(3);  // evicts 2 (freq 1), never 1 (freq 3)
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(PreciseCacheTest, ResizeShrinkEvicts) {
  PreciseCache cache(10, PrecisePolicyKind::kLru);
  for (uint64_t k = 0; k < 10; ++k) {
    cache.Access(k);
  }
  cache.Resize(4);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_TRUE(cache.Contains(9));  // most recent survive
  EXPECT_FALSE(cache.Contains(0));
}

TEST(PreciseCacheTest, RandomPolicyStaysWithinCapacity) {
  PreciseCache cache(5, PrecisePolicyKind::kRandom, /*seed=*/3);
  for (uint64_t k = 0; k < 1000; ++k) {
    cache.Access(k % 37);
    cache.Access(k % 37);  // immediate re-access: always a hit
  }
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_GE(cache.hits, 1000u);
}

// Elastic-scaling oracle: Resize must hold the size invariant and keep the
// structure's bookkeeping consistent under every policy kind — the tentpole's
// shrink behaviour is validated against this.
class PreciseCacheResizeTest : public ::testing::TestWithParam<PrecisePolicyKind> {};

TEST_P(PreciseCacheResizeTest, ShrinkEvictsDownAndExpandGrows) {
  PreciseCache cache(16, GetParam(), /*seed=*/5);
  for (uint64_t k = 0; k < 16; ++k) {
    cache.Access(k);
  }
  ASSERT_EQ(cache.size(), 16u);

  cache.Resize(5);
  EXPECT_EQ(cache.capacity(), 5u);
  EXPECT_EQ(cache.size(), 5u);
  // The index and the eviction structure must agree: every key the cache
  // claims to hold must hit, and exactly 5 of the original keys survive.
  int survivors = 0;
  for (uint64_t k = 0; k < 16; ++k) {
    if (cache.Contains(k)) {
      survivors++;
      EXPECT_TRUE(cache.Access(k)) << "contained key must hit after shrink";
    }
  }
  EXPECT_EQ(survivors, 5);
  EXPECT_EQ(cache.size(), 5u);

  // Admissions after the shrink respect the new capacity.
  for (uint64_t k = 100; k < 120; ++k) {
    cache.Access(k);
  }
  EXPECT_EQ(cache.size(), 5u);

  // Expand: no eviction, and the cache grows into the new budget.
  cache.Resize(12);
  EXPECT_EQ(cache.size(), 5u) << "expanding must not evict";
  for (uint64_t k = 200; k < 240; ++k) {
    cache.Access(k);
  }
  EXPECT_EQ(cache.size(), 12u);
}

TEST_P(PreciseCacheResizeTest, RepeatedShrinkToOneAndBack) {
  PreciseCache cache(8, GetParam(), /*seed=*/11);
  for (uint64_t round = 0; round < 20; ++round) {
    for (uint64_t k = 0; k < 8; ++k) {
      cache.Access(round * 8 + k);
    }
    cache.Resize(1);
    EXPECT_EQ(cache.size(), 1u);
    cache.Resize(8);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PreciseCacheResizeTest,
                         ::testing::Values(PrecisePolicyKind::kLru, PrecisePolicyKind::kLfu,
                                           PrecisePolicyKind::kFifo,
                                           PrecisePolicyKind::kRandom),
                         [](const ::testing::TestParamInfo<PrecisePolicyKind>& info) {
                           switch (info.param) {
                             case PrecisePolicyKind::kLru:
                               return "Lru";
                             case PrecisePolicyKind::kLfu:
                               return "Lfu";
                             case PrecisePolicyKind::kFifo:
                               return "Fifo";
                             case PrecisePolicyKind::kRandom:
                               return "Random";
                           }
                           return "Unknown";
                         });

TEST(PreciseCacheTest, RandomShrinkKeepsSwapEraseIndexConsistent) {
  // kRandom eviction swap-erases from the key vector; a shrink drives many
  // consecutive swap-erases, so every surviving key's stored position must
  // still be exact (a stale position would evict the wrong key or crash).
  PreciseCache cache(64, PrecisePolicyKind::kRandom, /*seed=*/7);
  for (uint64_t k = 0; k < 64; ++k) {
    cache.Access(k);
  }
  cache.Resize(8);
  ASSERT_EQ(cache.size(), 8u);
  uint64_t hits_before = cache.hits;
  int contained = 0;
  for (uint64_t k = 0; k < 64; ++k) {
    if (cache.Contains(k)) {
      contained++;
      EXPECT_TRUE(cache.Access(k));
    }
  }
  EXPECT_EQ(contained, 8);
  EXPECT_EQ(cache.hits, hits_before + 8);
  // Interleave shrinks with fresh admissions to churn the vector further.
  for (uint64_t round = 0; round < 10; ++round) {
    for (uint64_t k = 1000 + round * 16; k < 1016 + round * 16; ++k) {
      cache.Access(k);
    }
    cache.Resize(8 - round % 4);
    EXPECT_LE(cache.size(), 8 - round % 4);
    cache.Resize(8);
  }
}

TEST(PreciseCacheTest, FifoIgnoresReaccess) {
  PreciseCache cache(2, PrecisePolicyKind::kFifo);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);  // hit, but FIFO order unchanged
  cache.Access(3);  // evicts 1 (oldest insert)
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
}

}  // namespace
}  // namespace ditto::policy
