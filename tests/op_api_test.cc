// Tests of the typed operation API (sim::CacheOp / sim::CacheResult /
// ExecuteBatch): kDelete, kExpire with lazy expiry on lookup, and kMultiGet
// across the Ditto client and the DM baselines; the doorbell win of chained
// multi-gets; mixed-op determinism of the concurrent sharded engine; and the
// seeded key -> shard partition contract of sim::ShardForKey.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baselines/cliquemap.h"
#include "baselines/redis_model.h"
#include "baselines/shard_lru.h"
#include "core/sharded_client.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/ycsb.h"

namespace ditto {
namespace {

dm::PoolConfig SmallPool(uint64_t capacity = 5000) {
  dm::PoolConfig config;
  config.memory_bytes = 16 << 20;
  config.num_buckets = 1024;
  config.capacity_objects = capacity;
  return config;
}

core::DittoConfig DittoCfg() {
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  return config;
}

// Drives the basic typed-op contract against any CacheClient: Set / Get /
// Delete / Expire-with-lazy-expiry / MultiGet. `advance_ticks` pushes the
// implementation's TTL clock forward by at least n ticks (implementations
// differ in their tick domain).
void ExerciseOpContract(sim::CacheClient* client,
                        const std::function<void(uint64_t)>& advance_ticks) {
  // Set + Get round trip through the typed batch path.
  client->Set("op-key-1", "value-1");
  client->Set("op-key-2", "value-2");
  client->Set("op-key-3", "value-3");
  std::string got;
  EXPECT_TRUE(client->Get("op-key-1", &got));
  EXPECT_EQ(got, "value-1");

  // kDelete: removes exactly the requested key.
  EXPECT_TRUE(client->Delete("op-key-2"));
  EXPECT_FALSE(client->Delete("op-key-2")) << "second delete finds nothing";
  EXPECT_FALSE(client->Get("op-key-2", nullptr));
  EXPECT_TRUE(client->Get("op-key-3", nullptr)) << "neighbours survive the delete";

  // kExpire + lazy expiry: the key stays readable until its TTL passes, then
  // the next lookup reclaims it.
  EXPECT_TRUE(client->Expire("op-key-1", /*ttl_ticks=*/5));
  EXPECT_FALSE(client->Expire("no-such-key", 5));
  EXPECT_TRUE(client->Get("op-key-1", nullptr)) << "not yet expired";
  advance_ticks(4000);
  EXPECT_FALSE(client->Get("op-key-1", nullptr)) << "lazy expiry on lookup";
  EXPECT_GE(client->counters().expired, 1u);
  EXPECT_FALSE(client->Get("op-key-1", nullptr)) << "stays gone";

  // Set with a TTL arms expiry without a separate Expire.
  client->Set("ttl-key", "v", /*ttl_ticks=*/5);
  EXPECT_TRUE(client->Get("ttl-key", nullptr));
  advance_ticks(4000);
  EXPECT_FALSE(client->Get("ttl-key", nullptr));

  // kMultiGet: batched lookup over a mix of present and absent keys.
  client->Set("mg-1", "mv-1");
  client->Set("mg-2", "mv-2");
  const std::vector<std::string_view> keys = {"mg-1", "absent-a", "mg-2", "absent-b"};
  std::vector<sim::CacheResult> results;
  EXPECT_EQ(client->MultiGet(keys, &results), 2u);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].hit());
  EXPECT_EQ(results[0].value, "mv-1");
  EXPECT_FALSE(results[1].hit());
  EXPECT_TRUE(results[2].hit());
  EXPECT_EQ(results[2].value, "mv-2");
  EXPECT_FALSE(results[3].hit());

  // Typed statuses of a heterogeneous batch executed in order.
  const std::vector<sim::CacheOp> batch = {
      sim::CacheOp::Set("batch-key", "bv"),
      sim::CacheOp::Get("batch-key"),
      sim::CacheOp::Delete("batch-key"),
      sim::CacheOp::Get("batch-key"),
  };
  std::vector<sim::CacheResult> batch_results(batch.size());
  client->ExecuteBatch(batch, batch_results.data());
  EXPECT_EQ(batch_results[0].status, sim::OpStatus::kStored);
  EXPECT_EQ(batch_results[1].status, sim::OpStatus::kHit);
  EXPECT_EQ(batch_results[1].value, "bv");
  EXPECT_EQ(batch_results[2].status, sim::OpStatus::kDeleted);
  EXPECT_EQ(batch_results[3].status, sim::OpStatus::kMiss);

  const sim::ClientCounters counters = client->counters();
  EXPECT_GE(counters.deletes, 2u);
  EXPECT_GE(counters.expired, 2u);
}

TEST(OpApiTest, DittoClientSupportsTypedOps) {
  dm::MemoryPool pool(SmallPool());
  core::DittoServer server(&pool, DittoCfg());
  rdma::ClientContext ctx(0);
  sim::DittoCacheClient client(&pool, &ctx, DittoCfg());
  // Ditto's TTL domain is the pool's logical clock, which ticks on every
  // Set / metadata touch; a burst of filler Sets advances it.
  ExerciseOpContract(&client, [&](uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      pool.clock().Tick();
    }
  });
}

TEST(OpApiTest, ShardedDittoClientSupportsTypedOps) {
  core::ShardedPool pool(SmallPool(), /*nodes=*/3, /*partition_seed=*/7);
  core::ShardedDittoServer server(&pool, DittoCfg());
  rdma::ClientContext ctx(0);
  sim::ShardedDittoCacheClient client(&pool, &ctx, DittoCfg());
  ExerciseOpContract(&client, [&](uint64_t n) {
    for (int node = 0; node < pool.num_nodes(); ++node) {
      for (uint64_t i = 0; i < n; ++i) {
        pool.node(node).clock().Tick();
      }
    }
  });
}

TEST(OpApiTest, ShardLruBaselineSupportsTypedOps) {
  dm::MemoryPool pool(SmallPool());
  baselines::ShardLruConfig config;
  baselines::ShardLruDirectory dir(&pool, config);
  rdma::ClientContext ctx(0);
  baselines::ShardLruClient client(&pool, &dir, &ctx);
  ExerciseOpContract(&client, [&](uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      pool.clock().Tick();
    }
  });
}

TEST(OpApiTest, CliqueMapBaselineSupportsTypedOps) {
  dm::MemoryPool pool(SmallPool());
  baselines::CliqueMapConfig config;
  baselines::CliqueMapServer server(&pool, config);
  rdma::ClientContext ctx(0);
  baselines::CliqueMapClient client(&pool, &server, &ctx);
  ExerciseOpContract(&client, [&](uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      pool.clock().Tick();
    }
  });
}

TEST(OpApiTest, RedisClusterClientSupportsTypedOps) {
  baselines::RedisClusterConfig config;
  rdma::ClientContext ctx(0);
  baselines::RedisClusterClient client(&ctx, config);
  // The Redis client's TTL domain is its own op counter: issue filler Gets.
  ExerciseOpContract(&client, [&](uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) {
      client.Get("tick-filler", nullptr);
    }
  });
}

// Regression: baseline op paths must advance the pool's logical clock
// themselves — a TTL armed through a baseline client has to fire in a run
// where no Ditto client (the only other Tick caller) shares the pool.
TEST(OpApiTest, BaselineTtlFiresWithoutExternalClockTicks) {
  dm::MemoryPool lru_pool(SmallPool());
  baselines::ShardLruConfig lru_config;
  baselines::ShardLruDirectory dir(&lru_pool, lru_config);
  rdma::ClientContext lru_ctx(0);
  baselines::ShardLruClient lru_client(&lru_pool, &dir, &lru_ctx);

  dm::MemoryPool cm_pool(SmallPool());
  baselines::CliqueMapConfig cm_config;
  baselines::CliqueMapServer cm_server(&cm_pool, cm_config);
  rdma::ClientContext cm_ctx(1);
  baselines::CliqueMapClient cm_client(&cm_pool, &cm_server, &cm_ctx);

  for (sim::CacheClient* client : {static_cast<sim::CacheClient*>(&lru_client),
                                   static_cast<sim::CacheClient*>(&cm_client)}) {
    client->Set("ttl-only", "v", /*ttl_ticks=*/10);
    bool gone = false;
    for (int i = 0; i < 100 && !gone; ++i) {
      gone = !client->Get("ttl-only", nullptr);
    }
    EXPECT_TRUE(gone) << "lookups alone must advance the TTL domain";
    EXPECT_GE(client->counters().expired, 1u);
  }
}

TEST(OpApiTest, DroppedStoresReportKDropped) {
  dm::PoolConfig pool_config = SmallPool();
  pool_config.num_buckets = 1;  // every key collides into one 8-slot bucket
  dm::MemoryPool pool(pool_config);
  baselines::ShardLruConfig lru_config;
  lru_config.maintain_list = false;  // KVS mode: no eviction, the bucket can fill
  baselines::ShardLruDirectory dir(&pool, lru_config);
  rdma::ClientContext ctx(0);
  baselines::ShardLruClient client(&pool, &dir, &ctx);

  int stored = 0;
  sim::OpStatus last = sim::OpStatus::kStored;
  for (int i = 0; i < 16; ++i) {
    const std::string key = "drop-" + std::to_string(i);  // outlives the op's view
    const sim::CacheOp op = sim::CacheOp::Set(key, "v");
    sim::CacheResult r;
    client.ExecuteBatch({&op, 1}, &r);
    stored += r.status == sim::OpStatus::kStored ? 1 : 0;
    last = r.status;
  }
  EXPECT_EQ(stored, 8) << "one per slot";
  EXPECT_EQ(last, sim::OpStatus::kDropped) << "a full bucket with no eviction drops stores";
}

TEST(OpApiTest, RedisClusterEvictsAtCapacity) {
  baselines::RedisClusterConfig config;
  config.shards = 4;
  config.capacity_objects = 100;
  rdma::ClientContext ctx(0);
  baselines::RedisClusterClient client(&ctx, config);
  for (int i = 0; i < 1000; ++i) {
    client.Set("rk-" + std::to_string(i), "v");
  }
  EXPECT_LE(client.cached_objects(), 100u);
  EXPECT_GE(client.counters().evictions, 900u);
}

// The acceptance invariant of the batched path: a kMultiGet over n keys puts
// strictly fewer doorbells on the NIC than the same n keys fetched with
// single Gets, because the whole run's async metadata verbs chain behind one
// doorbell.
TEST(OpApiTest, MultiGetIssuesFewerDoorbellsThanSingleGets) {
  constexpr int kKeys = 16;
  struct Deployment {
    Deployment() : pool(SmallPool()), server(&pool, DittoCfg()), ctx(0) {
      client = std::make_unique<sim::DittoCacheClient>(&pool, &ctx, DittoCfg());
      for (int i = 0; i < kKeys; ++i) {
        client->Set("mgk-" + std::to_string(i), "value");
      }
    }
    dm::MemoryPool pool;
    core::DittoServer server;
    rdma::ClientContext ctx;
    std::unique_ptr<sim::DittoCacheClient> client;
  };

  Deployment singly;
  Deployment batched;

  std::vector<std::string> key_storage;
  for (int i = 0; i < kKeys; ++i) {
    key_storage.push_back("mgk-" + std::to_string(i));
  }

  const uint64_t singly_before = singly.pool.node().nic().doorbells();
  size_t single_hits = 0;
  for (const std::string& key : key_storage) {
    single_hits += singly.client->Get(key, nullptr) ? 1 : 0;
  }
  const uint64_t singly_doorbells = singly.pool.node().nic().doorbells() - singly_before;

  std::vector<std::string_view> keys(key_storage.begin(), key_storage.end());
  std::vector<sim::CacheResult> results;
  const uint64_t batched_before = batched.pool.node().nic().doorbells();
  const size_t batched_hits = batched.client->MultiGet(keys, &results);
  const uint64_t batched_doorbells = batched.pool.node().nic().doorbells() - batched_before;

  EXPECT_EQ(single_hits, static_cast<size_t>(kKeys));
  EXPECT_EQ(batched_hits, static_cast<size_t>(kKeys)) << "batching must not change behaviour";
  EXPECT_LT(batched_doorbells, singly_doorbells)
      << "chained multi-get metadata verbs must share doorbells";
}

// ---------------------------------------------------------------------------
// Mixed-op concurrent sharded replay: determinism across thread counts.
// ---------------------------------------------------------------------------

struct ShardedDeployment {
  std::unique_ptr<core::ShardedPool> pool;
  std::vector<std::unique_ptr<core::DittoServer>> servers;
  std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> shards;
  std::vector<sim::CacheClient*> raw;
  std::vector<rdma::RemoteNode*> nodes;
};

ShardedDeployment MakeShardedDeployment(int num_shards) {
  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 16 << 20;
  pool_config.num_buckets = 1024;
  pool_config.capacity_objects = 300;
  ShardedDeployment d;
  d.pool = std::make_unique<core::ShardedPool>(pool_config, num_shards);
  for (int i = 0; i < num_shards; ++i) {
    d.servers.push_back(std::make_unique<core::DittoServer>(&d.pool->node(i), DittoCfg()));
    d.ctxs.push_back(std::make_unique<rdma::ClientContext>(i, /*seed=*/23));
    d.shards.push_back(std::make_unique<sim::DittoCacheClient>(&d.pool->node(i),
                                                               d.ctxs.back().get(), DittoCfg()));
    d.raw.push_back(d.shards.back().get());
    d.nodes.push_back(&d.pool->node(i).node());
  }
  return d;
}

TEST(OpApiTest, MixedOpShardedReplayIsDeterministicAcrossThreadCounts) {
  workload::YcsbConfig ycsb;
  ycsb.workload = 'A';
  ycsb.num_keys = 2000;
  workload::Trace trace = workload::MakeYcsbTrace(ycsb, 30000, /*seed=*/7);
  workload::OpMix mix;
  mix.delete_fraction = 0.05;
  mix.expire_fraction = 0.05;
  mix.multiget_fraction = 0.25;
  workload::ApplyOpMix(&trace, mix);

  const auto run_with = [&trace](int threads) {
    ShardedDeployment d = MakeShardedDeployment(/*num_shards=*/8);
    sim::RunOptions options;
    options.threads = threads;
    options.partition_seed = 42;
    options.warmup_fraction = 0.2;
    options.miss_penalty_us = 50.0;
    options.multiget_batch = 8;
    options.expire_ttl_ticks = 256;
    return sim::RunTraceSharded(d.raw, trace, d.nodes, options);
  };

  const sim::RunResult r1 = run_with(1);
  EXPECT_GT(r1.gets, 0u);
  EXPECT_GT(r1.deletes, 0u) << "the mix must replay deletes";
  EXPECT_GT(r1.expired, 0u) << "expire + later lookup must reclaim objects";
  for (const int threads : {2, 8}) {
    const sim::RunResult r = run_with(threads);
    EXPECT_EQ(r.gets, r1.gets) << "threads=" << threads;
    EXPECT_EQ(r.hits, r1.hits) << "threads=" << threads;
    EXPECT_EQ(r.misses, r1.misses) << "threads=" << threads;
    EXPECT_EQ(r.sets, r1.sets) << "threads=" << threads;
    EXPECT_EQ(r.deletes, r1.deletes) << "threads=" << threads;
    EXPECT_EQ(r.evictions, r1.evictions) << "threads=" << threads;
    EXPECT_EQ(r.expired, r1.expired) << "threads=" << threads;
    EXPECT_EQ(r.nic_messages, r1.nic_messages) << "threads=" << threads;
    EXPECT_EQ(r.nic_doorbells, r1.nic_doorbells) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.hit_rate, r1.hit_rate) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.throughput_mops, r1.throughput_mops) << "threads=" << threads;
  }
}

TEST(OpApiTest, OpMixIsAPureFunctionOfIndex) {
  workload::OpMix mix;
  mix.delete_fraction = 0.1;
  mix.expire_fraction = 0.1;
  mix.multiget_fraction = 0.3;
  int deletes = 0;
  int expires = 0;
  int multigets = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    const workload::Op op = workload::MixedOpAt(workload::Op::kGet, i, mix);
    EXPECT_EQ(op, workload::MixedOpAt(workload::Op::kGet, i, mix)) << "pure function";
    deletes += op == workload::Op::kDelete ? 1 : 0;
    expires += op == workload::Op::kExpire ? 1 : 0;
    multigets += op == workload::Op::kMultiGet ? 1 : 0;
    // Writes are never rewritten.
    EXPECT_EQ(workload::MixedOpAt(workload::Op::kUpdate, i, mix), workload::Op::kUpdate);
  }
  EXPECT_NEAR(deletes, 1000, 150);
  EXPECT_NEAR(expires, 1000, 150);
  EXPECT_NEAR(multigets, 3000, 300);
}

// ---------------------------------------------------------------------------
// sim::ShardForKey: the seeded partition contract documented in runner.h.
// ---------------------------------------------------------------------------

TEST(ShardForKeyTest, PartitionIsBalancedAcrossShardCounts) {
  constexpr uint64_t kKeys = 100000;
  for (const size_t shards : {2u, 5u, 8u, 64u}) {
    std::vector<uint64_t> counts(shards, 0);
    for (uint64_t key = 0; key < kKeys; ++key) {
      const uint32_t s = sim::ShardForKey(key, shards, /*seed=*/1);
      ASSERT_LT(s, shards);
      counts[s]++;
    }
    const double expected = static_cast<double>(kKeys) / static_cast<double>(shards);
    for (const uint64_t c : counts) {
      EXPECT_GT(static_cast<double>(c), 0.8 * expected) << "shards=" << shards;
      EXPECT_LT(static_cast<double>(c), 1.2 * expected) << "shards=" << shards;
    }
  }
}

TEST(ShardForKeyTest, StableUnderAFixedSeedAndReshuffledByNewSeeds) {
  // Stability: the partition is a pure function of (key, shards, seed) — the
  // determinism contract RunTraceSharded's thread-count invariance rests on.
  std::vector<uint32_t> first;
  for (uint64_t key = 0; key < 4096; ++key) {
    first.push_back(sim::ShardForKey(key, 16, /*seed=*/99));
  }
  for (uint64_t key = 0; key < 4096; ++key) {
    EXPECT_EQ(sim::ShardForKey(key, 16, 99), first[key]) << "key=" << key;
  }
  // Different seeds produce materially different partitions (reshuffling).
  uint64_t moved = 0;
  for (uint64_t key = 0; key < 4096; ++key) {
    moved += sim::ShardForKey(key, 16, /*seed=*/100) != first[key] ? 1 : 0;
  }
  EXPECT_GT(moved, 4096u * 8 / 10) << "a new seed must reshuffle most keys";
}

}  // namespace
}  // namespace ditto
