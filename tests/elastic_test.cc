// Elastic runtime capacity scaling, end to end: the kRpcResize controller
// RPC, client evict-down on shrink (Ditto, Shard-LRU, CliqueMap, Redis
// cluster), and the deterministic resize_schedule / per-phase hit-rate
// trajectory of both replay engines.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cliquemap.h"
#include "baselines/redis_model.h"
#include "baselines/shard_lru.h"
#include "core/ditto_client.h"
#include "core/sharded_client.h"
#include "dm/pool.h"
#include "rdma/verbs.h"
#include "sim/adapters.h"
#include "sim/elastic_oracle.h"
#include "sim/runner.h"
#include "workloads/trace.h"
#include "workloads/ycsb.h"

namespace ditto {
namespace {

dm::PoolConfig PoolConfigFor(uint64_t capacity_objects) {
  dm::PoolConfig config;
  config.memory_bytes = 32 << 20;
  config.num_buckets = 4096;
  config.capacity_objects = capacity_objects;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

std::string EncodeU64(uint64_t value) {
  std::string out(8, '\0');
  std::memcpy(out.data(), &value, 8);
  return out;
}

// ---- kRpcResize controller RPC --------------------------------------------

TEST(PoolResizeRpcTest, RewritesCapacityAndReturnsPrevious) {
  dm::MemoryPool pool(PoolConfigFor(1000));
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&pool.node(), &ctx);

  const std::string response = verbs.Rpc(dm::kRpcResize, EncodeU64(250));
  ASSERT_EQ(response.size(), 8u);
  uint64_t previous = 0;
  std::memcpy(&previous, response.data(), 8);
  EXPECT_EQ(previous, 1000u);
  EXPECT_EQ(pool.capacity_objects(), 250u);
}

TEST(PoolResizeRpcTest, RejectsMalformedRequests) {
  dm::MemoryPool pool(PoolConfigFor(1000));
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&pool.node(), &ctx);

  EXPECT_TRUE(verbs.Rpc(dm::kRpcResize, "xyz").empty()) << "short payload";
  EXPECT_TRUE(verbs.Rpc(dm::kRpcResize, std::string(11, '\0')).empty()) << "trailing bytes";
  EXPECT_TRUE(verbs.Rpc(dm::kRpcResize, EncodeU64(0)).empty()) << "zero capacity";
  EXPECT_EQ(pool.capacity_objects(), 1000u) << "rejected requests leave capacity alone";
}

// ---- Client-side evict-down ------------------------------------------------

TEST(ElasticClientTest, DittoShrinkEvictsDownThenExpandGrowsAgain) {
  dm::MemoryPool pool(PoolConfigFor(600));
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  core::DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  core::DittoClient client(&pool, &ctx, config);

  for (int i = 0; i < 500; ++i) {
    client.Set("key-" + std::to_string(i), "value");
  }
  const uint64_t before = pool.cached_objects();
  ASSERT_GT(before, 400u);

  ASSERT_TRUE(client.ResizeCapacity(100));
  EXPECT_EQ(pool.capacity_objects(), 100u);
  EXPECT_LE(pool.cached_objects(), 100u) << "shrink must evict down before returning";
  EXPECT_GT(client.stats().evictions, 0u);

  // Expansion takes effect on the next admissions: no evictions required.
  ASSERT_TRUE(client.ResizeCapacity(400));
  for (int i = 1000; i < 1300; ++i) {
    client.Set("key-" + std::to_string(i), "value");
  }
  EXPECT_GT(pool.cached_objects(), 100u) << "the cache must grow into the new budget";
  EXPECT_LE(pool.cached_objects(), 400u);
}

TEST(ElasticClientTest, ShardedDittoSplitsAggregateAcrossNodes) {
  core::ShardedPool pool(PoolConfigFor(200), /*nodes=*/4);
  core::DittoConfig config;
  config.experts = {"lru"};
  core::ShardedDittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  core::ShardedDittoClient client(&pool, &ctx, config);

  for (int i = 0; i < 600; ++i) {
    client.Set("key-" + std::to_string(i), "value");
  }
  ASSERT_GT(pool.cached_objects(), 400u);

  ASSERT_TRUE(client.ResizeCapacity(100));
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(pool.node(n).capacity_objects(), 25u) << "even split of the aggregate";
    EXPECT_LE(pool.node(n).cached_objects(), 25u);
  }
  EXPECT_LE(pool.cached_objects(), 100u);

  // A remainder goes to the lowest-numbered nodes, and an aggregate below
  // the node count rounds up to one object per node (dm::CapacityShare).
  ASSERT_TRUE(client.ResizeCapacity(6));
  EXPECT_EQ(pool.node(0).capacity_objects(), 2u);
  EXPECT_EQ(pool.node(1).capacity_objects(), 2u);
  EXPECT_EQ(pool.node(2).capacity_objects(), 1u);
  EXPECT_EQ(pool.node(3).capacity_objects(), 1u);
  ASSERT_TRUE(client.ResizeCapacity(2));
  for (int n = 0; n < 4; ++n) {
    EXPECT_EQ(pool.node(n).capacity_objects(), 1u);
  }
}

TEST(ElasticClientTest, ShardLruShrinkEvictsAcrossShards) {
  dm::MemoryPool pool(PoolConfigFor(400));
  baselines::ShardLruConfig config;
  config.num_shards = 8;
  baselines::ShardLruDirectory dir(&pool, config);
  rdma::ClientContext ctx(0);
  baselines::ShardLruClient client(&pool, &dir, &ctx);

  for (int i = 0; i < 300; ++i) {
    client.Set("key-" + std::to_string(i), "value");
  }
  ASSERT_GT(dir.total_objects(), 250u);

  ASSERT_TRUE(client.ResizeCapacity(50));
  EXPECT_EQ(dir.capacity(), 50u);
  EXPECT_LE(dir.total_objects(), 50u);
  EXPECT_GE(client.counters().evictions, 200u);

  // Expand and refill.
  ASSERT_TRUE(client.ResizeCapacity(200));
  for (int i = 1000; i < 1150; ++i) {
    client.Set("key-" + std::to_string(i), "value");
  }
  EXPECT_GT(dir.total_objects(), 50u);
  EXPECT_LE(dir.total_objects(), 200u);
}

TEST(ElasticClientTest, CliqueMapResizeRpcEvictsOnTheServer) {
  dm::MemoryPool pool(PoolConfigFor(300));
  baselines::CliqueMapConfig config;
  baselines::CliqueMapServer server(&pool, config);
  rdma::ClientContext ctx(0);
  baselines::CliqueMapClient client(&pool, &server, &ctx);

  for (int i = 0; i < 200; ++i) {
    client.Set("key-" + std::to_string(i), "value");
  }
  ASSERT_GT(server.size(), 150u);

  ASSERT_TRUE(client.ResizeCapacity(40));
  EXPECT_EQ(server.capacity(), 40u);
  EXPECT_LE(server.size(), 40u);
  EXPECT_GE(client.counters().evictions, 100u) << "server-side evictions are reported back";

  // Malformed resize requests are rejected without touching the capacity.
  rdma::Verbs verbs(&pool.node(), &ctx);
  const std::string response = verbs.Rpc(baselines::kRpcCmResize, "odd");
  ASSERT_FALSE(response.empty());
  EXPECT_EQ(response[0], '\0');
  EXPECT_EQ(server.capacity(), 40u);
}

TEST(ElasticClientTest, RedisClusterResizeResplitsAndEvicts) {
  rdma::ClientContext ctx(0);
  baselines::RedisClusterConfig config;
  config.shards = 4;
  config.capacity_objects = 1000;
  baselines::RedisClusterClient client(&ctx, config);

  for (int i = 0; i < 200; ++i) {
    client.Set(workload::KeyString(i), "value");
  }
  ASSERT_EQ(client.cached_objects(), 200u);

  ASSERT_TRUE(client.ResizeCapacity(40));
  EXPECT_LE(client.cached_objects(), 40u);
  EXPECT_GT(client.counters().evictions, 0u);
  EXPECT_FALSE(client.ResizeCapacity(0));

  ASSERT_TRUE(client.ResizeCapacity(400));
  for (int i = 1000; i < 1200; ++i) {
    client.Set(workload::KeyString(i), "value");
  }
  EXPECT_GT(client.cached_objects(), 40u);
  EXPECT_LE(client.cached_objects(), 400u);
}

TEST(ElasticClientTest, RedisModelMapsCapacityToShardCountWithMigration) {
  baselines::RedisModelConfig config;
  config.initial_shards = 32;
  baselines::RedisModel model(config);
  // Per-shard capacity of 10M keys / 32 shards; doubling the capacity target
  // doubles the node count and triggers a minutes-long migration.
  const uint64_t per_shard = config.num_keys / 32;
  model.ResizeToCapacityObjects(config.num_keys * 2, per_shard);
  EXPECT_GT(model.migration_remaining_s(), 60.0);
  EXPECT_EQ(model.active_shards(), 32) << "old shard map serves until cutover";
}

// ---- Replay-engine resize schedules ---------------------------------------

workload::Trace ZipfReadTrace(uint64_t keys, uint64_t requests, uint64_t seed) {
  workload::YcsbConfig ycsb;
  ycsb.workload = 'C';  // read-only zipfian
  ycsb.num_keys = keys;
  return workload::MakeYcsbTrace(ycsb, requests, seed);
}

TEST(ElasticScheduleTest, ShrinkLosesLessThanColdRestartAndExpandRecovers) {
  constexpr uint64_t kKeys = 4000;
  constexpr uint64_t kRequests = 45000;
  constexpr uint64_t kCapacity = 1200;
  constexpr uint64_t kShrunk = 400;
  const workload::Trace trace = ZipfReadTrace(kKeys, kRequests, /*seed=*/3);

  sim::RunOptions options;
  options.warmup_fraction = 1.0 / 3.0;
  options.resize_schedule = {{1.0 / 3.0, kShrunk}, {2.0 / 3.0, kCapacity}};

  dm::MemoryPool pool(PoolConfigFor(kCapacity));
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  core::DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  sim::DittoCacheClient client(&pool, &ctx, config);
  const sim::RunResult r =
      sim::RunTrace({&client}, trace, &pool.node(), options);

  ASSERT_EQ(r.phases.size(), 3u);
  EXPECT_EQ(r.phases[1].capacity_objects, kShrunk);
  EXPECT_EQ(r.phases[2].capacity_objects, kCapacity);
  for (const sim::PhaseResult& phase : r.phases) {
    EXPECT_GT(phase.gets, 0u);
  }
  // The trajectory totals reconcile with the run totals.
  uint64_t phase_hits = 0;
  uint64_t phase_gets = 0;
  for (const sim::PhaseResult& phase : r.phases) {
    phase_hits += phase.hits;
    phase_gets += phase.gets;
  }
  EXPECT_EQ(phase_hits, r.hits);
  EXPECT_EQ(phase_gets, r.gets);

  const size_t measure_begin = static_cast<size_t>(
      options.warmup_fraction * static_cast<double>(trace.size()));
  // The oracle shares the runner's schedule arithmetic (sim/elastic_oracle),
  // so it cold-restarts at the identical request indices as Ditto's resizes.
  const sim::OracleTrajectory lru_cold = sim::ReplayLruOracle(
      trace, measure_begin, options.resize_schedule, kCapacity, /*cold_restart=*/true);

  // Paper claim: the shrink costs Ditto strictly less hit rate than a
  // precise LRU that cold-restarts at the same (equal) capacity.
  const double ditto_drop = r.phases[0].hit_rate - r.phases[1].hit_rate;
  const double cold_drop = lru_cold.HitRate(0) - lru_cold.HitRate(1);
  EXPECT_LT(ditto_drop, cold_drop)
      << "ditto p0=" << r.phases[0].hit_rate << " p1=" << r.phases[1].hit_rate
      << " lru-cold p0=" << lru_cold.HitRate(0) << " p1=" << lru_cold.HitRate(1);

  // The expand step recovers hit rate.
  EXPECT_GT(r.phases[2].hit_rate, r.phases[1].hit_rate);
}

TEST(ElasticScheduleTest, ShardedTrajectoryIsThreadCountInvariant) {
  constexpr int kShards = 4;
  constexpr uint64_t kKeys = 3000;
  constexpr uint64_t kRequests = 30000;
  const workload::Trace trace = ZipfReadTrace(kKeys, kRequests, /*seed=*/9);

  const auto run_with_threads = [&](int threads) {
    core::DittoConfig config;
    config.experts = {"lru", "lfu"};
    auto pool = std::make_unique<core::ShardedPool>(PoolConfigFor(300), kShards);
    std::vector<std::unique_ptr<core::DittoServer>> servers;
    std::vector<std::unique_ptr<rdma::ClientContext>> ctxs;
    std::vector<std::unique_ptr<sim::DittoCacheClient>> shards;
    std::vector<sim::CacheClient*> raw;
    std::vector<rdma::RemoteNode*> nodes;
    for (int i = 0; i < kShards; ++i) {
      servers.push_back(std::make_unique<core::DittoServer>(&pool->node(i), config));
      ctxs.push_back(std::make_unique<rdma::ClientContext>(i));
      shards.push_back(
          std::make_unique<sim::DittoCacheClient>(&pool->node(i), ctxs.back().get(), config));
      raw.push_back(shards.back().get());
      nodes.push_back(&pool->node(i).node());
    }
    sim::RunOptions options;
    options.threads = threads;
    options.partition_seed = 7;
    options.warmup_fraction = 0.2;
    options.resize_schedule = {{0.3, 400}, {0.7, 1200}};
    return sim::RunTraceSharded(raw, trace, nodes, options);
  };

  const sim::RunResult r1 = run_with_threads(1);
  const sim::RunResult r2 = run_with_threads(2);
  const sim::RunResult r8 = run_with_threads(8);

  ASSERT_EQ(r1.phases.size(), 3u);
  for (const sim::RunResult* other : {&r2, &r8}) {
    ASSERT_EQ(other->phases.size(), r1.phases.size());
    for (size_t p = 0; p < r1.phases.size(); ++p) {
      EXPECT_EQ(other->phases[p].capacity_objects, r1.phases[p].capacity_objects) << p;
      EXPECT_EQ(other->phases[p].ops, r1.phases[p].ops) << p;
      EXPECT_EQ(other->phases[p].gets, r1.phases[p].gets) << p;
      EXPECT_EQ(other->phases[p].hits, r1.phases[p].hits) << p;
      EXPECT_EQ(other->phases[p].misses, r1.phases[p].misses) << p;
      EXPECT_DOUBLE_EQ(other->phases[p].hit_rate, r1.phases[p].hit_rate) << p;
    }
    EXPECT_EQ(other->hits, r1.hits);
    EXPECT_EQ(other->misses, r1.misses);
    EXPECT_DOUBLE_EQ(other->hit_rate, r1.hit_rate);
  }
  // The shrink phase actually ran at the smaller capacity.
  EXPECT_GT(r1.phases[0].hit_rate, r1.phases[1].hit_rate);
  EXPECT_GT(r1.phases[2].hit_rate, r1.phases[1].hit_rate);
}

TEST(ElasticScheduleTest, EmptyScheduleYieldsSingleWholeRunPhase) {
  const workload::Trace trace = ZipfReadTrace(500, 4000, /*seed=*/1);
  dm::MemoryPool pool(PoolConfigFor(250));
  core::DittoConfig config;
  config.experts = {"lru"};
  core::DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  sim::DittoCacheClient client(&pool, &ctx, config);
  const sim::RunResult r = sim::RunTrace({&client}, trace, &pool.node(), sim::RunOptions{});
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_EQ(r.phases[0].capacity_objects, 0u);
  EXPECT_EQ(r.phases[0].gets, r.gets);
  EXPECT_EQ(r.phases[0].hits, r.hits);
  EXPECT_DOUBLE_EQ(r.phases[0].hit_rate, r.hit_rate);
}

}  // namespace
}  // namespace ditto
