// Failure-injection and boundary-condition tests: pool exhaustion, bucket
// overflow, tiny capacities, oversized objects, and runtime reconfiguration
// corner cases.
#include <gtest/gtest.h>

#include <string>

#include "core/ditto_client.h"
#include "dm/pool.h"
#include "workloads/trace.h"

namespace ditto::core {
namespace {

dm::PoolConfig PoolFor(uint64_t capacity, size_t buckets, size_t memory = 16 << 20) {
  dm::PoolConfig config;
  config.memory_bytes = memory;
  config.num_buckets = buckets;
  config.capacity_objects = capacity;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

DittoConfig Lru() {
  DittoConfig config;
  config.experts = {"lru"};
  return config;
}

TEST(EdgeCaseTest, HeapExhaustionFallsBackToEviction) {
  // Object-count capacity effectively unlimited; a tiny heap forces the
  // allocator-exhaustion eviction path.
  dm::PoolConfig config = PoolFor(uint64_t{1} << 40, 256, /*memory=*/1 << 20);
  config.segment_bytes = 8 << 10;
  dm::MemoryPool pool(config);
  pool.SetHistorySize(256);
  DittoServer server(&pool, Lru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Lru());

  for (int i = 0; i < 4000; ++i) {
    client.Set(workload::KeyString(i), std::string(200, 'v'));
  }
  EXPECT_GT(client.stats().evictions, 1000u) << "byte pressure must drive evictions";
  // Recent keys must be retrievable: the cache keeps cycling, not wedging.
  int alive = 0;
  for (int i = 3990; i < 4000; ++i) {
    if (client.Get(workload::KeyString(i), nullptr)) {
      alive++;
    }
  }
  EXPECT_GE(alive, 8);
}

TEST(EdgeCaseTest, CapacityOneStillServes) {
  dm::MemoryPool pool(PoolFor(1, 64));
  DittoServer server(&pool, Lru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Lru());

  client.Set("a", "1");
  client.Set("b", "2");
  std::string value;
  // Exactly one of the two survives; the cache must not wedge or crash.
  const int hits = (client.Get("a", &value) ? 1 : 0) + (client.Get("b", &value) ? 1 : 0);
  EXPECT_LE(pool.cached_objects(), 2u);
  EXPECT_GE(hits, 1);
}

TEST(EdgeCaseTest, SingleBucketTableHandlesOverflow) {
  // Every key collides into one 8-slot bucket: inserts beyond 8 must evict
  // in place and keep serving the most recent keys.
  dm::MemoryPool pool(PoolFor(1000, 1));
  DittoServer server(&pool, Lru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Lru());

  for (int i = 0; i < 64; ++i) {
    client.Set("key-" + std::to_string(i), "v");
  }
  EXPECT_LE(pool.cached_objects(), 8u);
  EXPECT_TRUE(client.Get("key-63", nullptr)) << "last insert must be present";
}

TEST(EdgeCaseTest, KeyAtMaximumObjectSizeRoundTrips) {
  dm::MemoryPool pool(PoolFor(100, 256));
  DittoServer server(&pool, Lru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Lru());

  // kMaxRunBlocks * 64 = 1024 bytes: header(8) + checksum(8) + expiry(8) +
  // key(24) leaves 976.
  const std::string key(24, 'k');
  const std::string value(976, 'v');
  EXPECT_TRUE(client.Set(key, value));
  std::string out;
  ASSERT_TRUE(client.Get(key, &out));
  EXPECT_EQ(out, value);

  // One byte past the longest allocatable run must be dropped cleanly (it
  // used to index past the allocator's freelist array in release builds).
  EXPECT_FALSE(client.Set(key, value + "x"));
  EXPECT_TRUE(client.Get(key, &out)) << "the oversized Set must not disturb the cached object";
}

TEST(EdgeCaseTest, RepeatedSetDeleteCycleDoesNotLeak) {
  dm::MemoryPool pool(PoolFor(100, 256, 2 << 20));
  DittoServer server(&pool, Lru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Lru());

  // If Delete leaked blocks, the small heap would exhaust quickly.
  for (int i = 0; i < 20000; ++i) {
    const std::string key = "cycle-" + std::to_string(i % 3);
    client.Set(key, std::string(500, 'x'));
    EXPECT_TRUE(client.Delete(key)) << "iteration " << i;
  }
  EXPECT_EQ(pool.cached_objects(), 0u);
}

TEST(EdgeCaseTest, GetWithNullValuePointer) {
  dm::MemoryPool pool(PoolFor(100, 64));
  DittoServer server(&pool, Lru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Lru());
  client.Set("k", "v");
  EXPECT_TRUE(client.Get("k", nullptr)) << "nullptr skips the value copy";
}

TEST(EdgeCaseTest, CapacityZeroGrowsAtRuntime) {
  dm::MemoryPool pool(PoolFor(1, 256));
  DittoServer server(&pool, Lru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, Lru());

  pool.SetCapacityObjects(1);
  for (int i = 0; i < 50; ++i) {
    client.Set("k" + std::to_string(i), "v");
  }
  EXPECT_LE(pool.cached_objects(), 3u);
  // Grow and refill: the new capacity must be usable immediately.
  pool.SetCapacityObjects(500);
  for (int i = 0; i < 400; ++i) {
    client.Set("g" + std::to_string(i), "v");
  }
  EXPECT_GT(pool.cached_objects(), 300u);
}

TEST(EdgeCaseTest, AdaptiveWithThreeExperts) {
  dm::MemoryPool pool(PoolFor(200, 512));
  DittoConfig config;
  config.experts = {"lru", "lfu", "fifo"};
  DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, config);

  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(i % 600);
    if (!client.Get(key, nullptr)) {
      client.Set(key, "v");
    }
  }
  const auto& w = client.expert_weights();
  ASSERT_EQ(w.size(), 3u);
  double sum = 0.0;
  for (const double x : w) {
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 0.05);
  EXPECT_GT(client.stats().evictions, 0u);
}

TEST(EdgeCaseTest, MixedExtensionAndPlainExperts) {
  // lruk carries 2 extension words, lru none: both must coexist in one
  // adaptive configuration (the paper's §4.2 mixed-metadata case).
  dm::MemoryPool pool(PoolFor(200, 512));
  DittoConfig config;
  config.experts = {"lru", "lruk"};
  DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, config);

  for (int i = 0; i < 1500; ++i) {
    const std::string key = "k" + std::to_string(i % 400);
    if (!client.Get(key, nullptr)) {
      client.Set(key, "v");
    }
  }
  EXPECT_GT(client.stats().hits, 0u);
  EXPECT_GT(client.stats().evictions, 0u);
}

}  // namespace
}  // namespace ditto::core
