// Completion-queue verb pipeline tests.
//
// 1. CQ unit tests: Post*/WaitWr/PollCq semantics — completion ordering, the
//    sync-verb == post+wait cost identity, and NIC-occupancy charging for
//    overlapping posts.
// 2. Replay equivalence: depth-1 pipelined replay is bit-identical (hit
//    rate, verb counts, virtual time) to the sequential engine; hit rate is
//    invariant across depths 1/4/16; throughput at depth 8 is at least 2x
//    depth 1 at identical hit rate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/shard_lru.h"
#include "sim/adapters.h"
#include "sim/runner.h"
#include "workloads/ycsb.h"

namespace ditto {
namespace {

using rdma::ClientContext;
using rdma::Completion;
using rdma::CostModel;
using rdma::RemoteNode;
using rdma::Verbs;

// ---------------------------------------------------------------------------
// Completion-queue unit tests
// ---------------------------------------------------------------------------

TEST(CompletionQueueTest, SyncReadEqualsPostPlusWait) {
  const CostModel cost;
  // Two identical nodes so the NIC fluid servers don't couple the QPs.
  RemoteNode node_a(1 << 20, cost);
  RemoteNode node_b(1 << 20, cost);
  ClientContext ctx_a(0);
  ClientContext ctx_b(1);
  Verbs sync_verbs(&node_a, &ctx_a);
  Verbs async_verbs(&node_b, &ctx_b);

  uint64_t dst = 0;
  sync_verbs.Read(64, &dst, 8);
  const uint64_t wr = async_verbs.PostRead(64, &dst, 8);
  EXPECT_EQ(ctx_b.clock().busy_ns(), 0u) << "posting must not advance the clock";
  async_verbs.WaitWr(wr);
  EXPECT_EQ(ctx_a.clock().busy_ns(), ctx_b.clock().busy_ns())
      << "a blocking READ is exactly post + wait";
  EXPECT_EQ(ctx_a.reads, ctx_b.reads);
}

TEST(CompletionQueueTest, AtomicResultsAvailableAtPostAndCostMatchesSync) {
  const CostModel cost;
  RemoteNode node_a(1 << 20, cost);
  RemoteNode node_b(1 << 20, cost);
  ClientContext ctx_a(0);
  ClientContext ctx_b(1);
  Verbs sync_verbs(&node_a, &ctx_a);
  Verbs async_verbs(&node_b, &ctx_b);

  // Same arena state on both nodes.
  const uint64_t addr = 128;
  sync_verbs.Write(addr, "\0\0\0\0\0\0\0\0", 8);
  async_verbs.Write(addr, "\0\0\0\0\0\0\0\0", 8);

  const uint64_t sync_prior = sync_verbs.FetchAdd(addr, 5);
  uint64_t async_prior = 123;
  const uint64_t wr_faa = async_verbs.PostFaa(addr, 5, &async_prior);
  EXPECT_EQ(async_prior, sync_prior) << "FAA result is captured at post";
  async_verbs.WaitWr(wr_faa);

  const uint64_t sync_obs = sync_verbs.CompareSwap(addr, 5, 9);
  uint64_t async_obs = 0;
  const uint64_t wr_cas = async_verbs.PostCas(addr, 5, 9, &async_obs);
  EXPECT_EQ(async_obs, sync_obs);
  async_verbs.WaitWr(wr_cas);

  // Serialized post+wait pairs cost exactly what the blocking atomics cost.
  EXPECT_EQ(ctx_a.clock().busy_ns(), ctx_b.clock().busy_ns());
  EXPECT_EQ(ctx_a.atomics, ctx_b.atomics);
}

TEST(CompletionQueueTest, OverlappingPostsChargeNicOccupancy) {
  const CostModel cost;
  RemoteNode node(1 << 20, cost);
  ClientContext ctx(0);
  Verbs verbs(&node, &ctx);

  constexpr int kPosts = 32;
  uint64_t dst = 0;
  for (int i = 0; i < kPosts; ++i) {
    verbs.PostRead(64, &dst, 8);
  }
  ASSERT_EQ(verbs.cq_depth(), static_cast<size_t>(kPosts));

  // All posts were issued at client time 0, so the i-th one observes i
  // message-slots of NIC backlog: completions are spaced by exactly the NIC
  // per-message service time — a deep pipeline drains at the NIC rate, not
  // infinitely fast.
  const auto service_ns = static_cast<uint64_t>(cost.NicServiceNs(1.0));
  Completion prev{};
  ASSERT_TRUE(verbs.PollCq(&prev));
  for (int i = 1; i < kPosts; ++i) {
    Completion c{};
    ASSERT_TRUE(verbs.PollCq(&c));
    EXPECT_EQ(c.wr_id, prev.wr_id + 1) << "same-cost posts complete in post order";
    EXPECT_EQ(c.complete_ns - prev.complete_ns, service_ns)
        << "completion spacing == NIC per-message service time";
    prev = c;
  }
  EXPECT_EQ(verbs.cq_depth(), 0u);
  EXPECT_EQ(ctx.clock().busy_ns(), prev.complete_ns)
      << "PollCq advances the clock to the delivered completion";
}

TEST(CompletionQueueTest, PollCqDeliversInCompletionTimeOrder) {
  const CostModel cost;
  RemoteNode node(1 << 20, cost);
  ClientContext ctx(0);
  Verbs verbs(&node, &ctx);

  // An atomic posted first (2.5us RTT) completes AFTER a READ posted second
  // (2.0us RTT): PollCq must deliver the READ first.
  uint64_t prior = 0;
  const uint64_t wr_atomic = verbs.PostFaa(256, 1, &prior);
  uint64_t dst = 0;
  const uint64_t wr_read = verbs.PostRead(64, &dst, 8);

  Completion first{};
  Completion second{};
  ASSERT_TRUE(verbs.PollCq(&first));
  ASSERT_TRUE(verbs.PollCq(&second));
  EXPECT_EQ(first.wr_id, wr_read);
  EXPECT_EQ(second.wr_id, wr_atomic);
  EXPECT_LE(first.complete_ns, second.complete_ns);
}

TEST(CompletionQueueTest, WaitWrTargetsASpecificCompletion) {
  const CostModel cost;
  RemoteNode node(1 << 20, cost);
  ClientContext ctx(0);
  Verbs verbs(&node, &ctx);

  uint64_t dst = 0;
  const uint64_t wr1 = verbs.PostRead(64, &dst, 8);
  const uint64_t wr2 = verbs.PostRead(64, &dst, 8);
  const uint64_t done2 = verbs.WaitWr(wr2);
  EXPECT_EQ(ctx.clock().busy_ns(), done2);
  EXPECT_EQ(verbs.cq_depth(), 1u);
  // wr1 completed earlier than wr2; consuming it now must not rewind or
  // re-advance the clock.
  const uint64_t done1 = verbs.WaitWr(wr1);
  EXPECT_LE(done1, done2);
  EXPECT_EQ(ctx.clock().busy_ns(), done2);
  EXPECT_EQ(verbs.cq_depth(), 0u);
}

TEST(PipelinedOpTest, DetachedTimelineChargesCursorNotClock) {
  const CostModel cost;
  RemoteNode node(1 << 20, cost);
  ClientContext ctx(0);
  Verbs verbs(&node, &ctx);

  verbs.BeginOp(/*start_ns=*/5000);
  EXPECT_TRUE(verbs.in_op());
  uint64_t dst = 0;
  verbs.Read(64, &dst, 8);  // blocking verb: waits on the op cursor
  EXPECT_EQ(ctx.clock().busy_ns(), 0u) << "waits inside an op land on the cursor";
  const uint64_t complete_ns = verbs.EndOp();
  EXPECT_FALSE(verbs.in_op());
  // An uncontended READ completes one RTT (plus 8 B of wire time, sub-ns
  // here) after the op's start cursor.
  EXPECT_EQ(complete_ns, 5000u + static_cast<uint64_t>(cost.read_rtt_us * 1000.0));
  EXPECT_EQ(ctx.clock().busy_ns(), 0u) << "EndOp never touches the real clock";
}

// ---------------------------------------------------------------------------
// Replay equivalence
// ---------------------------------------------------------------------------

struct Deployment {
  std::unique_ptr<dm::MemoryPool> pool;
  std::unique_ptr<core::DittoServer> server;
  std::vector<std::unique_ptr<ClientContext>> ctxs;
  std::vector<std::unique_ptr<sim::DittoCacheClient>> clients;
  std::vector<sim::CacheClient*> raw;

  uint64_t TotalVerbs() const {
    uint64_t total = 0;
    for (const auto& ctx : ctxs) {
      total += ctx->reads + ctx->writes + ctx->atomics + ctx->rpcs;
    }
    return total;
  }
};

Deployment MakeDeployment(uint64_t capacity, int num_clients) {
  Deployment d;
  dm::PoolConfig pool_config;
  pool_config.memory_bytes = 32 << 20;
  pool_config.num_buckets = 4096;
  pool_config.capacity_objects = capacity;  // cost model ON: timing matters here
  core::DittoConfig config;
  config.experts = {"lru", "lfu"};
  d.pool = std::make_unique<dm::MemoryPool>(pool_config);
  d.server = std::make_unique<core::DittoServer>(d.pool.get(), config);
  for (int i = 0; i < num_clients; ++i) {
    d.ctxs.push_back(std::make_unique<ClientContext>(i));
    d.clients.push_back(
        std::make_unique<sim::DittoCacheClient>(d.pool.get(), d.ctxs.back().get(), config));
    d.raw.push_back(d.clients.back().get());
  }
  return d;
}

workload::Trace TestTrace(char workload, uint64_t requests) {
  workload::YcsbConfig ycsb;
  ycsb.workload = workload;
  ycsb.num_keys = 3000;
  const uint64_t seed = 7;
  return workload::MakeYcsbTrace(ycsb, requests, seed);
}

class PipelineReplayTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kCapacity = 800;
  static constexpr int kClients = 3;

  struct Run {
    sim::RunResult result;
    uint64_t verbs = 0;
  };

  static Run Replay(const workload::Trace& trace, const sim::RunOptions& options) {
    Deployment d = MakeDeployment(kCapacity, kClients);
    Run run;
    run.result = sim::RunTrace(d.raw, trace, &d.pool->node(), options);
    run.verbs = d.TotalVerbs();
    return run;
  }
};

TEST_F(PipelineReplayTest, Depth1PipelinedBitIdenticalToSequentialEngine) {
  const workload::Trace trace = TestTrace('A', 40000);
  sim::RunOptions options;
  options.warmup_fraction = 0.1;
  options.miss_penalty_us = 50.0;

  const Run sequential = Replay(trace, options);
  options.pipeline_force = true;  // depth stays 1: the pipelined issue loop
  const Run pipelined = Replay(trace, options);

  EXPECT_EQ(pipelined.result.hits, sequential.result.hits);
  EXPECT_EQ(pipelined.result.misses, sequential.result.misses);
  EXPECT_EQ(pipelined.result.gets, sequential.result.gets);
  EXPECT_EQ(pipelined.result.sets, sequential.result.sets);
  EXPECT_EQ(pipelined.result.evictions, sequential.result.evictions);
  EXPECT_EQ(pipelined.result.hit_rate, sequential.result.hit_rate);
  EXPECT_EQ(pipelined.verbs, sequential.verbs) << "identical verb counts";
  EXPECT_EQ(pipelined.result.nic_messages, sequential.result.nic_messages);
  EXPECT_EQ(pipelined.result.nic_doorbells, sequential.result.nic_doorbells);
  // Virtual time is bit-identical, not merely close.
  EXPECT_EQ(pipelined.result.elapsed_s, sequential.result.elapsed_s);
  EXPECT_EQ(pipelined.result.p50_us, sequential.result.p50_us);
  EXPECT_EQ(pipelined.result.p99_us, sequential.result.p99_us);
  EXPECT_EQ(pipelined.result.throughput_mops, sequential.result.throughput_mops);
}

TEST_F(PipelineReplayTest, HitRateInvariantAcrossDepths) {
  const workload::Trace trace = TestTrace('A', 40000);
  sim::RunOptions options;
  options.warmup_fraction = 0.1;
  options.miss_penalty_us = 50.0;

  options.pipeline_depth = 1;
  const Run d1 = Replay(trace, options);
  options.pipeline_depth = 4;
  const Run d4 = Replay(trace, options);
  options.pipeline_depth = 16;
  const Run d16 = Replay(trace, options);

  // Pipelining overlaps virtual time only; cache state evolution — and with
  // it every counter — is identical at any depth.
  EXPECT_EQ(d4.result.hits, d1.result.hits);
  EXPECT_EQ(d16.result.hits, d1.result.hits);
  EXPECT_EQ(d4.result.misses, d1.result.misses);
  EXPECT_EQ(d16.result.misses, d1.result.misses);
  EXPECT_EQ(d4.result.evictions, d1.result.evictions);
  EXPECT_EQ(d16.result.evictions, d1.result.evictions);
  EXPECT_EQ(d4.result.hit_rate, d1.result.hit_rate);
  EXPECT_EQ(d16.result.hit_rate, d1.result.hit_rate);
  EXPECT_EQ(d4.verbs, d1.verbs);
  EXPECT_EQ(d16.verbs, d1.verbs);
  EXPECT_EQ(d4.result.nic_messages, d1.result.nic_messages);
  EXPECT_EQ(d16.result.nic_messages, d1.result.nic_messages);
}

TEST_F(PipelineReplayTest, Depth8AtLeastTwiceDepth1Throughput) {
  const workload::Trace trace = TestTrace('C', 40000);
  sim::RunOptions options;
  options.warmup_fraction = 0.1;

  options.pipeline_depth = 1;
  const Run d1 = Replay(trace, options);
  options.pipeline_depth = 8;
  const Run d8 = Replay(trace, options);

  EXPECT_EQ(d8.result.hit_rate, d1.result.hit_rate);
  EXPECT_GE(d8.result.throughput_mops, 2.0 * d1.result.throughput_mops)
      << "8 in-flight ops must at least double simulated throughput";
  EXPECT_GT(d1.result.throughput_mops, 0.0);
}

TEST_F(PipelineReplayTest, BaselineClientsDegradeToDepth1IncludingMissPenalty) {
  // Baselines have no completion-queue model: at any depth the fallback
  // ExecutePipelined must reproduce depth-1 behaviour exactly — including
  // the miss penalty, which the pipelined issue loop encodes as the chained
  // re-insert's start offset (regression: the fallback used to ignore
  // start_ns, silently dropping every penalty from elapsed time).
  const workload::Trace trace = TestTrace('C', 20000);
  auto run = [&](size_t depth) {
    dm::PoolConfig pool_config;
    pool_config.memory_bytes = 16 << 20;
    pool_config.num_buckets = 1024;
    pool_config.capacity_objects = 500;
    auto pool = std::make_unique<dm::MemoryPool>(pool_config);
    baselines::ShardLruConfig config;
    auto dir = std::make_unique<baselines::ShardLruDirectory>(pool.get(), config);
    ClientContext ctx(0);
    baselines::ShardLruClient client(pool.get(), dir.get(), &ctx);
    sim::RunOptions options;
    options.miss_penalty_us = 500.0;
    options.pipeline_depth = depth;
    return sim::RunTrace({&client}, trace, &pool->node(), options);
  };
  const sim::RunResult d1 = run(1);
  const sim::RunResult d8 = run(8);
  EXPECT_EQ(d8.hit_rate, d1.hit_rate);
  EXPECT_EQ(d8.elapsed_s, d1.elapsed_s) << "no CQ model: no overlap, penalties included";
  EXPECT_EQ(d8.p99_us, d1.p99_us);
}

TEST_F(PipelineReplayTest, ShardedEngineDepthInvariantAcrossThreadCounts) {
  // The pipelined issue loop lives in the per-shard dispatcher, so the
  // sharded engine's thread-count invariance must survive pipelining.
  const workload::Trace trace = TestTrace('B', 30000);
  auto run_sharded = [&](int threads) {
    constexpr int kShards = 4;
    dm::PoolConfig pool_config;
    pool_config.memory_bytes = 16 << 20;
    pool_config.num_buckets = 1024;
    pool_config.capacity_objects = 200;
    core::DittoConfig config;
    config.experts = {"lru"};
    auto pool = std::make_unique<core::ShardedPool>(pool_config, kShards);
    std::vector<std::unique_ptr<core::DittoServer>> servers;
    std::vector<std::unique_ptr<ClientContext>> ctxs;
    std::vector<std::unique_ptr<sim::DittoCacheClient>> shards;
    std::vector<sim::CacheClient*> raw;
    std::vector<rdma::RemoteNode*> nodes;
    for (int i = 0; i < kShards; ++i) {
      servers.push_back(std::make_unique<core::DittoServer>(&pool->node(i), config));
      ctxs.push_back(std::make_unique<ClientContext>(i));
      shards.push_back(
          std::make_unique<sim::DittoCacheClient>(&pool->node(i), ctxs.back().get(), config));
      raw.push_back(shards.back().get());
      nodes.push_back(&pool->node(i).node());
    }
    sim::RunOptions options;
    options.threads = threads;
    options.pipeline_depth = 8;
    return sim::RunTraceSharded(raw, trace, nodes, options);
  };
  const sim::RunResult t1 = run_sharded(1);
  const sim::RunResult t4 = run_sharded(4);
  EXPECT_EQ(t1.hits, t4.hits);
  EXPECT_EQ(t1.misses, t4.misses);
  EXPECT_EQ(t1.hit_rate, t4.hit_rate);
}

}  // namespace
}  // namespace ditto
