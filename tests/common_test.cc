#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/flags.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/rand.h"
#include "common/small_vec.h"

namespace ditto {
namespace {

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  constexpr int kTrials = 64;
  for (int bit = 0; bit < kTrials; ++bit) {
    const uint64_t a = Mix64(0x1234567890abcdefULL);
    const uint64_t b = Mix64(0x1234567890abcdefULL ^ (uint64_t{1} << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / kTrials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, HashBytesDistinguishesKeys) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 10000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    hashes.insert(HashKey(key));
  }
  EXPECT_EQ(hashes.size(), 10000u);
}

TEST(HashTest, HashIsStableAcrossCalls) {
  EXPECT_EQ(HashKey("hello"), HashKey("hello"));
  EXPECT_NE(HashKey("hello"), HashKey("hellp"));
}

TEST(HashTest, HashHandlesAllLengths) {
  // Exercise the word loop and every tail length.
  std::set<uint64_t> hashes;
  std::string s;
  for (int len = 0; len < 64; ++len) {
    hashes.insert(HashBytes(s.data(), s.size()));
    s.push_back(static_cast<char>('a' + len % 26));
  }
  EXPECT_EQ(hashes.size(), 64u);
}

TEST(HashTest, FingerprintNeverZero) {
  for (uint64_t i = 0; i < 4096; ++i) {
    EXPECT_NE(Fingerprint(i << 56), 0);
  }
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(ZipfianTest, Rank0IsHottest) {
  Rng rng(3);
  ZipfianGenerator zipf(1000, 0.99);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  // Rank 0 must dominate rank 1, which must dominate rank 10.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
}

TEST(ZipfianTest, Theta099MatchesExpectedSkew) {
  Rng rng(3);
  ZipfianGenerator zipf(10000, 0.99);
  int head = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next(rng) < 100) {
      head++;
    }
  }
  // With theta=0.99 and n=10^4, the top-100 keys draw roughly half the
  // traffic (zeta(100)/zeta(10000) ~ 0.55).
  const double frac = static_cast<double>(head) / kDraws;
  EXPECT_GT(frac, 0.45);
  EXPECT_LT(frac, 0.70);
}

TEST(ZipfianTest, UniformWhenThetaZero) {
  Rng rng(3);
  ZipfianGenerator zipf(100, 0.0);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[zipf.Next(rng)]++;
  }
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, kDraws / 100, kDraws / 100 * 0.5) << "rank " << rank;
  }
}

TEST(ZipfianTest, ScrambledCoversKeySpace) {
  Rng rng(3);
  ScrambledZipfianGenerator zipf(1000, 0.99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t k = zipf.Next(rng);
    EXPECT_LT(k, 1000u);
    seen.insert(k);
  }
  // Scrambling spreads hot ranks across the space; most keys get touched.
  EXPECT_GT(seen.size(), 500u);
}

TEST(LogicalClockTest, StrictlyIncreasing) {
  LogicalClock clock;
  uint64_t prev = clock.Tick();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t next = clock.Tick();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(VirtualClockTest, AccumulatesAdvances) {
  VirtualClock clock;
  clock.AdvanceUs(1.5);
  clock.AdvanceNs(500);
  EXPECT_EQ(clock.busy_ns(), 2000u);
  EXPECT_DOUBLE_EQ(clock.busy_us(), 2.0);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.RecordNs(static_cast<uint64_t>(i) * 1000);
  }
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_LE(hist.PercentileNs(50), hist.PercentileNs(99));
  EXPECT_LE(hist.PercentileNs(99), hist.PercentileNs(100));
  // p50 of 1..1000us should be near 500us (log-bucket resolution ~4%).
  EXPECT_NEAR(hist.PercentileUs(50), 500.0, 50.0);
  EXPECT_NEAR(hist.PercentileUs(99), 990.0, 100.0);
}

TEST(HistogramTest, P99IsNinetyNinthRankNotMax) {
  // Regression: floor(p/100 * n) with a strict `seen > target` comparison
  // landed one rank too high, so p99 over 100 samples returned the maximum's
  // bucket. 99 samples at 10us and one at 10ms: the 99th-rank sample is 10us.
  Histogram hist;
  for (int i = 0; i < 99; ++i) {
    hist.RecordNs(10'000);
  }
  hist.RecordNs(10'000'000);
  EXPECT_LT(hist.PercentileNs(99), 20'000.0) << "p99 must land in the 10us bucket";
  EXPECT_GT(hist.PercentileNs(100), 9'000'000.0) << "p100 is the max bucket";
  EXPECT_GT(hist.PercentileNs(99.5), 9'000'000.0) << "rank ceil(99.5) = 100 = the max";
}

TEST(HistogramTest, NearestRankPinnedOnTwoBucketFixture) {
  // 50 samples at 1us, 50 at 1ms: rank 50 (p50) is the last low sample, rank
  // 51 (p51) the first high one; p1 is the smallest sample's bucket.
  Histogram hist;
  for (int i = 0; i < 50; ++i) {
    hist.RecordNs(1'000);
    hist.RecordNs(1'000'000);
  }
  EXPECT_LT(hist.PercentileNs(1), 2'000.0);
  EXPECT_LT(hist.PercentileNs(50), 2'000.0) << "rank 50 is still in the low bucket";
  EXPECT_GT(hist.PercentileNs(51), 900'000.0) << "rank 51 crosses into the high bucket";
}

TEST(HistogramTest, ExactRankBoundaryNotSkewedByFloatRounding) {
  // 0.55 * 100 is 55.000000000000007 in doubles; a bare ceil() would ask for
  // rank 56. With 55 low samples and 45 high ones, p55 must stay low.
  Histogram hist;
  for (int i = 0; i < 55; ++i) {
    hist.RecordNs(10'000);
  }
  for (int i = 0; i < 45; ++i) {
    hist.RecordNs(10'000'000);
  }
  EXPECT_LT(hist.PercentileNs(55), 20'000.0) << "rank 55 is the last low sample";
  EXPECT_GT(hist.PercentileNs(56), 9'000'000.0);
}

TEST(HistogramTest, PercentileBoundsClamped) {
  Histogram hist;
  hist.RecordNs(5'000);
  // A single sample: every percentile (including p0) is that sample's bucket.
  EXPECT_GT(hist.PercentileNs(0), 4'000.0);
  EXPECT_LT(hist.PercentileNs(0), 6'000.0);
  EXPECT_DOUBLE_EQ(hist.PercentileNs(0), hist.PercentileNs(100));
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.RecordUs(10);
  b.RecordUs(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.MeanNs(), 15000.0, 1.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.PercentileNs(99), 0.0);
  EXPECT_DOUBLE_EQ(hist.MeanNs(), 0.0);
}

TEST(SmallBufTest, InlineForSmallCountsHeapBeyond) {
  SmallBuf<int, 4> buf;
  int* a = buf.Acquire(3);
  a[0] = 1;
  a[1] = 2;
  a[2] = 3;
  // A second inline acquire reuses the same storage, reset to defaults.
  int* b = buf.Acquire(4);
  EXPECT_EQ(a, b) << "small counts must come from inline storage";
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(b[i], 0) << "elements must be freshly default-valued";
  }
  // Beyond the inline capacity the buffer falls back to (reused) heap.
  int* big = buf.Acquire(100);
  EXPECT_NE(big, b);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(big[i], 0);
    big[i] = i;
  }
  int* big2 = buf.Acquire(100);
  EXPECT_EQ(big2[99], 0) << "heap reuse must also reset elements";
}

TEST(SmallBufTest, WorksWithNonTrivialElementTypes) {
  SmallBuf<std::string, 2> buf;
  std::string* s = buf.Acquire(2);
  s[0] = "hello";
  s[1] = std::string(128, 'x');
  s = buf.Acquire(2);
  EXPECT_TRUE(s[0].empty());
  EXPECT_TRUE(s[1].empty());
  s = buf.Acquire(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(s[i].empty());
  }
}

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "2.5", "--gamma", "--name=x"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0.0), 2.5);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("name", ""), "x");
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_FALSE(flags.Has("missing"));
}

}  // namespace
}  // namespace ditto
