#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "dm/allocator.h"
#include "dm/pool.h"
#include "rdma/verbs.h"

namespace ditto::dm {
namespace {

PoolConfig SmallPool() {
  PoolConfig config;
  config.memory_bytes = 4 << 20;
  config.num_buckets = 512;
  config.segment_bytes = 16 << 10;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

TEST(PoolTest, LayoutIsSane) {
  MemoryPool pool(SmallPool());
  EXPECT_EQ(pool.table_addr(), kSuperblockBytes);
  EXPECT_GT(pool.heap_addr(), pool.table_addr());
  EXPECT_EQ(pool.heap_addr() % kBlockBytes, 0u);
  EXPECT_EQ(pool.heap_addr() + pool.heap_bytes(), pool.config().memory_bytes);
}

TEST(PoolTest, DefaultCapacityDerivedFromHeap) {
  MemoryPool pool(SmallPool());
  EXPECT_EQ(pool.capacity_objects(), pool.heap_bytes() / 256);
}

TEST(PoolTest, CapacityIsRuntimeAdjustable) {
  MemoryPool pool(SmallPool());
  pool.SetCapacityObjects(1234);
  EXPECT_EQ(pool.capacity_objects(), 1234u);
  pool.SetHistorySize(777);
  EXPECT_EQ(pool.node().arena().ReadU64(kHistSizeAddr), 777u);
}

TEST(AllocatorTest, AllocatesDistinctAlignedRuns) {
  MemoryPool pool(SmallPool());
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&pool.node(), &ctx);
  RemoteAllocator alloc(&pool, &verbs);

  std::set<uint64_t> addrs;
  for (int i = 0; i < 100; ++i) {
    const uint64_t addr = alloc.AllocBlocks(4);
    ASSERT_NE(addr, 0u);
    EXPECT_EQ(addr % kBlockBytes, 0u);
    EXPECT_GE(addr, pool.heap_addr());
    EXPECT_LT(addr + 4 * kBlockBytes, pool.heap_addr() + pool.heap_bytes());
    EXPECT_TRUE(addrs.insert(addr).second) << "duplicate allocation";
  }
}

TEST(AllocatorTest, FreedRunsAreRecycledLocallyWithoutVerbs) {
  MemoryPool pool(SmallPool());
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&pool.node(), &ctx);
  RemoteAllocator alloc(&pool, &verbs);

  const uint64_t a = alloc.AllocBlocks(4);
  const uint64_t verbs_before = ctx.reads + ctx.writes + ctx.atomics;
  alloc.FreeBlocks(a, 4);
  const uint64_t b = alloc.AllocBlocks(4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ctx.reads + ctx.writes + ctx.atomics, verbs_before)
      << "local recycling must cost zero verbs (keeps Set at 3 RTTs)";
}

TEST(AllocatorTest, CrossClientRecyclingAfterRelease) {
  MemoryPool pool(SmallPool());
  rdma::ClientContext ctx1(1);
  rdma::ClientContext ctx2(2);
  rdma::Verbs verbs1(&pool.node(), &ctx1);
  rdma::Verbs verbs2(&pool.node(), &ctx2);
  RemoteAllocator alloc1(&pool, &verbs1);
  RemoteAllocator alloc2(&pool, &verbs2);

  const uint64_t a = alloc1.AllocBlocks(2);
  alloc1.FreeBlocks(a, 2);
  EXPECT_EQ(alloc1.local_cached_runs(), 1u);
  alloc1.ReleaseLocalCache();
  EXPECT_EQ(alloc1.local_cached_runs(), 0u);
  // Once released, the shared freelist in remote memory serves other clients
  // (fresh segments are preferred, so drain until the recycled run shows up).
  bool found = false;
  for (int i = 0; i < 1'000'000 && !found; ++i) {
    const uint64_t got = alloc2.AllocBlocks(2);
    if (got == a) {
      found = true;
    }
    ASSERT_NE(got, 0u) << "pool exhausted before the released run was served";
  }
  EXPECT_TRUE(found);
}

TEST(AllocatorTest, LocalCacheOverflowSpillsToSharedFreelist) {
  MemoryPool pool(SmallPool());
  rdma::ClientContext ctx1(1);
  rdma::ClientContext ctx2(2);
  rdma::Verbs verbs1(&pool.node(), &ctx1);
  rdma::Verbs verbs2(&pool.node(), &ctx2);
  RemoteAllocator alloc1(&pool, &verbs1);
  RemoteAllocator alloc2(&pool, &verbs2);

  // Fill the local cache past its byte bound; the overflow run must become
  // visible to other clients through the remote freelist.
  const size_t max_runs = RemoteAllocator::kLocalCacheBytes / kBlockBytes;
  std::vector<uint64_t> runs;
  for (size_t i = 0; i < max_runs + 1; ++i) {
    runs.push_back(alloc1.AllocBlocks(1));
    ASSERT_NE(runs.back(), 0u);
  }
  for (const uint64_t addr : runs) {
    alloc1.FreeBlocks(addr, 1);
  }
  EXPECT_EQ(alloc1.local_cached_runs(), max_runs);
  EXPECT_NE(alloc2.AllocBlocks(1), 0u) << "spilled run must be poppable remotely";
}

TEST(AllocatorTest, ExhaustionReturnsZero) {
  PoolConfig config = SmallPool();
  config.memory_bytes = 256 << 10;
  config.num_buckets = 64;
  MemoryPool pool(config);
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&pool.node(), &ctx);
  RemoteAllocator alloc(&pool, &verbs);

  uint64_t allocated = 0;
  while (alloc.AllocBlocks(4) != 0) {
    allocated++;
    ASSERT_LT(allocated, 10'000'000u);
  }
  EXPECT_GT(allocated, 0u);
  // All further allocations fail until something is freed.
  EXPECT_EQ(alloc.AllocBlocks(4), 0u);
}

TEST(AllocatorTest, SplitsLargerRunsUnderExhaustion) {
  PoolConfig config = SmallPool();
  config.memory_bytes = 256 << 10;
  config.num_buckets = 64;
  MemoryPool pool(config);
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&pool.node(), &ctx);
  RemoteAllocator alloc(&pool, &verbs);

  // Exhaust the heap with 8-block runs.
  std::vector<uint64_t> runs;
  uint64_t addr;
  while ((addr = alloc.AllocBlocks(8)) != 0) {
    runs.push_back(addr);
  }
  ASSERT_FALSE(runs.empty());
  // Free one big run; a smaller request must succeed by splitting it.
  alloc.FreeBlocks(runs[0], 8);
  const uint64_t small = alloc.AllocBlocks(3);
  EXPECT_EQ(small, runs[0]);
  // The 5-block remainder is immediately allocatable too.
  EXPECT_EQ(alloc.AllocBlocks(5), runs[0] + 3 * kBlockBytes);
}

TEST(AllocatorTest, ConcurrentAllocFreeKeepsRunsDisjoint) {
  MemoryPool pool(SmallPool());
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::set<uint64_t>> held(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &held, t] {
      rdma::ClientContext ctx(static_cast<uint32_t>(t));
      rdma::Verbs verbs(&pool.node(), &ctx);
      RemoteAllocator alloc(&pool, &verbs);
      std::vector<uint64_t> mine;
      for (int i = 0; i < kIters; ++i) {
        const uint64_t addr = alloc.AllocBlocks(2);
        if (addr != 0) {
          mine.push_back(addr);
        }
        if (i % 3 == 0 && !mine.empty()) {
          alloc.FreeBlocks(mine.back(), 2);
          mine.pop_back();
        }
      }
      held[t] = std::set<uint64_t>(mine.begin(), mine.end());
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // No address may be held by two threads simultaneously.
  std::set<uint64_t> all;
  size_t total = 0;
  for (const auto& s : held) {
    total += s.size();
    all.insert(s.begin(), s.end());
  }
  EXPECT_EQ(all.size(), total);
}

TEST(PoolTest, SegmentRpcGrantsDisjointSegments) {
  MemoryPool pool(SmallPool());
  rdma::ClientContext ctx(0);
  rdma::Verbs verbs(&pool.node(), &ctx);
  std::string request(8, '\0');
  const uint64_t want = 4096;
  std::memcpy(request.data(), &want, 8);
  std::set<uint64_t> grants;
  for (int i = 0; i < 16; ++i) {
    const std::string resp = verbs.Rpc(kRpcAllocSegment, request);
    uint64_t granted = 0;
    std::memcpy(&granted, resp.data(), 8);
    ASSERT_NE(granted, 0u);
    EXPECT_TRUE(grants.insert(granted).second);
  }
  EXPECT_EQ(pool.segments_allocated(), 16u);
}

}  // namespace
}  // namespace ditto::dm
