#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/ditto_client.h"
#include "dm/pool.h"
#include "sim/adapters.h"

namespace ditto::core {
namespace {

dm::PoolConfig PoolFor(uint64_t capacity_objects, size_t buckets = 2048) {
  dm::PoolConfig config;
  config.memory_bytes = 16 << 20;
  config.num_buckets = buckets;
  config.capacity_objects = capacity_objects;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

DittoConfig SingleLru() {
  DittoConfig config;
  config.experts = {"lru"};
  return config;
}

DittoConfig LruLfu() {
  DittoConfig config;
  config.experts = {"lru", "lfu"};
  return config;
}

TEST(DittoClientTest, SetGetRoundTrip) {
  dm::MemoryPool pool(PoolFor(1000));
  DittoServer server(&pool, SingleLru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, SingleLru());

  client.Set("alpha", "value-1");
  std::string value;
  EXPECT_TRUE(client.Get("alpha", &value));
  EXPECT_EQ(value, "value-1");
  EXPECT_EQ(client.stats().hits, 1u);
  EXPECT_EQ(client.stats().sets, 1u);
}

TEST(DittoClientTest, GetMissReturnsFalse) {
  dm::MemoryPool pool(PoolFor(1000));
  DittoServer server(&pool, SingleLru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, SingleLru());

  std::string value;
  EXPECT_FALSE(client.Get("never-set", &value));
  EXPECT_EQ(client.stats().misses, 1u);
}

TEST(DittoClientTest, UpdateReplacesValue) {
  dm::MemoryPool pool(PoolFor(1000));
  DittoServer server(&pool, SingleLru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, SingleLru());

  client.Set("k", "old");
  client.Set("k", "new-and-longer-value");
  std::string value;
  ASSERT_TRUE(client.Get("k", &value));
  EXPECT_EQ(value, "new-and-longer-value");
  EXPECT_EQ(pool.cached_objects(), 1u) << "update must not grow the object count";
}

TEST(DittoClientTest, DeleteRemovesKey) {
  dm::MemoryPool pool(PoolFor(1000));
  DittoServer server(&pool, SingleLru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, SingleLru());

  client.Set("k", "v");
  EXPECT_TRUE(client.Delete("k"));
  EXPECT_FALSE(client.Get("k", nullptr));
  EXPECT_FALSE(client.Delete("k")) << "double delete must be false";
  EXPECT_EQ(pool.cached_objects(), 0u);
}

TEST(DittoClientTest, ValueSizesAcrossBlockBoundaries) {
  dm::MemoryPool pool(PoolFor(1000));
  DittoServer server(&pool, SingleLru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, SingleLru());

  for (const size_t len : {size_t{1}, size_t{55}, size_t{56}, size_t{256}, size_t{900}}) {
    const std::string key = "key-" + std::to_string(len);
    const std::string value(len, 'x');
    client.Set(key, value);
    std::string out;
    ASSERT_TRUE(client.Get(key, &out)) << "len=" << len;
    EXPECT_EQ(out, value) << "len=" << len;
  }
}

TEST(DittoClientTest, EmptyValueSupported) {
  dm::MemoryPool pool(PoolFor(1000));
  DittoServer server(&pool, SingleLru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, SingleLru());
  client.Set("k", "");
  std::string out = "sentinel";
  ASSERT_TRUE(client.Get("k", &out));
  EXPECT_EQ(out, "");
}

TEST(DittoClientTest, ManyKeysAllRetrievableUnderCapacity) {
  dm::MemoryPool pool(PoolFor(2000));
  DittoServer server(&pool, SingleLru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, SingleLru());

  for (int i = 0; i < 1000; ++i) {
    client.Set("key-" + std::to_string(i), "value-" + std::to_string(i));
  }
  int found = 0;
  std::string value;
  for (int i = 0; i < 1000; ++i) {
    if (client.Get("key-" + std::to_string(i), &value)) {
      EXPECT_EQ(value, "value-" + std::to_string(i));
      found++;
    }
  }
  // Everything fits under capacity; only bucket-overflow evictions (rare at
  // 1000 keys over 16384 slots) may drop a handful.
  EXPECT_GE(found, 990);
}

TEST(DittoClientTest, CapacityTriggersEviction) {
  dm::MemoryPool pool(PoolFor(100));
  DittoServer server(&pool, SingleLru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, SingleLru());

  for (int i = 0; i < 500; ++i) {
    client.Set("key-" + std::to_string(i), "v");
  }
  EXPECT_GT(client.stats().evictions, 300u);
  EXPECT_LE(pool.cached_objects(), 110u) << "object count must track capacity";
}

TEST(DittoClientTest, LruEvictionKeepsHotKeys) {
  // Table sized like a production deployment: ~8x slots per cached object so
  // one 5-slot sample usually carries several candidates.
  dm::MemoryPool pool(PoolFor(64, 64));
  DittoServer server(&pool, SingleLru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, SingleLru());

  // Insert hot keys and keep touching them while cold keys stream through.
  const std::vector<std::string> hot = {"hot-0", "hot-1", "hot-2", "hot-3"};
  for (const auto& k : hot) {
    client.Set(k, "hot");
  }
  for (int i = 0; i < 400; ++i) {
    client.Set("cold-" + std::to_string(i), "c");
    for (const auto& k : hot) {
      client.Get(k, nullptr);
    }
  }
  int hot_alive = 0;
  for (const auto& k : hot) {
    if (client.Get(k, nullptr)) {
      hot_alive++;
    }
  }
  EXPECT_GE(hot_alive, 3) << "sampled LRU must overwhelmingly keep the hot set";
}

TEST(DittoClientTest, AdaptiveModeMaintainsWeights) {
  dm::MemoryPool pool(PoolFor(50, 1024));
  DittoServer server(&pool, LruLfu());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, LruLfu());

  for (int i = 0; i < 300; ++i) {
    client.Set("k-" + std::to_string(i), "v");
    client.Get("k-" + std::to_string(i % 25), nullptr);
  }
  const auto& w = client.expert_weights();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0] + w[1], 1.0, 0.05);
  EXPECT_GT(client.stats().evictions, 0u);
}

TEST(DittoClientTest, StatsCountersConsistent) {
  dm::MemoryPool pool(PoolFor(1000));
  DittoServer server(&pool, SingleLru());
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, SingleLru());

  for (int i = 0; i < 50; ++i) {
    client.Set("k-" + std::to_string(i), "v");
  }
  for (int i = 0; i < 100; ++i) {
    client.Get("k-" + std::to_string(i), nullptr);  // half hit, half miss
  }
  EXPECT_EQ(client.stats().gets, 100u);
  EXPECT_EQ(client.stats().hits + client.stats().misses, 100u);
  EXPECT_EQ(client.stats().hits, 50u);
  EXPECT_EQ(client.stats().sets, 50u);
}

TEST(DittoClientTest, FrequencyCounterReachesTableAfterFlush) {
  dm::MemoryPool pool(PoolFor(1000));
  DittoConfig config = SingleLru();
  config.fc_threshold = 100;  // large: nothing flushes organically
  DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, config);

  client.Set("k", "v");
  for (int i = 0; i < 7; ++i) {
    client.Get("k", nullptr);
  }
  client.FlushBuffers();
  // freq = 1 (insert) + 8 buffered accesses? Insert writes freq=1; the 7
  // Gets and the Set-touch buffered in the FC cache land on flush.
  rdma::ClientContext ctx2(1);
  rdma::Verbs verbs2(&pool.node(), &ctx2);
  ht::HashTable table(&pool, &verbs2);
  const uint64_t hash = HashKey("k");
  std::vector<ht::SlotView> bucket;
  table.ReadBucket(table.BucketIndexFor(hash), &bucket);
  bool checked = false;
  for (const auto& slot : bucket) {
    if (slot.IsObject() && slot.hash == hash) {
      EXPECT_GE(slot.freq, 8u);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(DittoClientTest, ConcurrentClientsDisjointKeys) {
  dm::MemoryPool pool(PoolFor(5000, 8192));
  DittoServer server(&pool, LruLfu());
  constexpr int kThreads = 8;
  constexpr int kKeys = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failures, t] {
      rdma::ClientContext ctx(static_cast<uint32_t>(t));
      DittoClient client(&pool, &ctx, LruLfu());
      for (int i = 0; i < kKeys; ++i) {
        const std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
        client.Set(key, "value-" + key);
      }
      std::string value;
      for (int i = 0; i < kKeys; ++i) {
        const std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
        if (!client.Get(key, &value) || value != "value-" + key) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_LE(failures.load(), kThreads * kKeys / 100) << "under capacity, losses must be rare";
}

TEST(DittoClientTest, ConcurrentSameKeyUpdatesConverge) {
  dm::MemoryPool pool(PoolFor(1000));
  DittoServer server(&pool, SingleLru());
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      rdma::ClientContext ctx(static_cast<uint32_t>(t));
      DittoClient client(&pool, &ctx, SingleLru());
      for (int i = 0; i < 100; ++i) {
        client.Set("shared", "writer-" + std::to_string(t));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  rdma::ClientContext ctx(99);
  DittoClient reader(&pool, &ctx, SingleLru());
  std::string value;
  ASSERT_TRUE(reader.Get("shared", &value));
  EXPECT_EQ(value.rfind("writer-", 0), 0u) << "value must be one of the written values";
}

TEST(DittoClientTest, ExtensionPolicyPersistsMetadata) {
  dm::MemoryPool pool(PoolFor(1000));
  DittoConfig config;
  config.experts = {"lruk"};
  DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, config);

  client.Set("k", "v");
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(client.Get("k", nullptr));
  }
  // LRU-K ring timestamps live in the object's metadata header; a fresh
  // client must be able to keep operating on them (no corruption).
  rdma::ClientContext ctx2(1);
  DittoClient client2(&pool, &ctx2, config);
  EXPECT_TRUE(client2.Get("k", nullptr));
}

TEST(DittoClientTest, SfhtDisabledStillCorrect) {
  dm::MemoryPool pool(PoolFor(200, 1024));
  DittoConfig config = SingleLru();
  config.enable_sfht = false;
  DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, config);
  for (int i = 0; i < 300; ++i) {
    client.Set("k-" + std::to_string(i), "v");
  }
  EXPECT_GT(client.stats().evictions, 0u);
  EXPECT_TRUE(client.Get("k-299", nullptr));
}

}  // namespace
}  // namespace ditto::core
