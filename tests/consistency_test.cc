// Model-based randomized consistency test: a long random Get/Set/Delete
// sequence executed against DittoClient and mirrored in an in-memory
// reference map. While the cache stays under capacity nothing may ever be
// silently lost or corrupted; over capacity, anything the cache still serves
// must be the value the reference holds (staleness is impossible because
// Set is linearized through the slot CAS).
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/rand.h"
#include "core/ditto_client.h"
#include "dm/pool.h"

namespace ditto::core {
namespace {

dm::PoolConfig PoolFor(uint64_t capacity) {
  dm::PoolConfig config;
  config.memory_bytes = 32 << 20;
  config.num_buckets = 4096;
  config.capacity_objects = capacity;
  config.cost = rdma::CostModel::Disabled();
  return config;
}

class ConsistencyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConsistencyTest, RandomOpsMatchReferenceUnderCapacity) {
  dm::MemoryPool pool(PoolFor(10000));
  DittoConfig config;
  config.experts = {GetParam()};
  DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, config);

  std::unordered_map<std::string, std::string> reference;
  Rng rng(0xD1770 + HashKey(GetParam()));
  constexpr int kOps = 20000;
  constexpr int kKeySpace = 2000;  // well under capacity: no evictions

  for (int i = 0; i < kOps; ++i) {
    const std::string key = "k" + std::to_string(rng.NextBelow(kKeySpace));
    const uint64_t roll = rng.NextBelow(100);
    if (roll < 50) {
      // Get: must agree with the reference exactly.
      std::string value;
      const bool hit = client.Get(key, &value);
      const auto it = reference.find(key);
      ASSERT_EQ(hit, it != reference.end()) << "op " << i << " key " << key;
      if (hit) {
        ASSERT_EQ(value, it->second) << "op " << i << " key " << key;
      }
    } else if (roll < 90) {
      // Set with a value that encodes the op index (catches stale reads).
      const std::string value = "v" + std::to_string(i) + std::string(rng.NextBelow(64), 'x');
      client.Set(key, value);
      reference[key] = value;
    } else {
      const bool existed = reference.erase(key) > 0;
      ASSERT_EQ(client.Delete(key), existed) << "op " << i << " key " << key;
    }
  }
  EXPECT_EQ(pool.cached_objects(), reference.size());
}

TEST_P(ConsistencyTest, HitsAreNeverStaleOverCapacity) {
  dm::MemoryPool pool(PoolFor(500));
  DittoConfig config;
  config.experts = {GetParam()};
  DittoServer server(&pool, config);
  rdma::ClientContext ctx(0);
  DittoClient client(&pool, &ctx, config);

  std::unordered_map<std::string, std::string> reference;
  Rng rng(0xCAFE + HashKey(GetParam()));
  constexpr int kOps = 30000;
  constexpr int kKeySpace = 3000;  // 6x capacity: constant eviction churn

  uint64_t hits = 0;
  for (int i = 0; i < kOps; ++i) {
    const std::string key = "k" + std::to_string(rng.NextBelow(kKeySpace));
    if (rng.NextBelow(100) < 50) {
      std::string value;
      if (client.Get(key, &value)) {
        hits++;
        const auto it = reference.find(key);
        ASSERT_NE(it, reference.end()) << "cache served a key never written: " << key;
        ASSERT_EQ(value, it->second) << "stale value for " << key << " at op " << i;
      }
      // A miss is always legal over capacity (the key may have been evicted).
    } else {
      const std::string value = "v" + std::to_string(i);
      client.Set(key, value);
      reference[key] = value;
    }
  }
  EXPECT_GT(hits, 1000u) << "the test must actually exercise the hit path";
  EXPECT_LE(pool.cached_objects(), 550u) << "capacity must hold under churn";
}

INSTANTIATE_TEST_SUITE_P(Policies, ConsistencyTest,
                         ::testing::Values("lru", "lfu", "fifo", "gdsf", "lruk", "hyperbolic"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace ditto::core
